// Decompose: the Section 5 story end to end. Takes the Table-2
// data-flow matrix T = [[1,2],[3,7]], decomposes it into L·U, runs
// both the direct and the decomposed execution on the Paragon-like
// mesh, and then sweeps the grouped partition of Section 5.3 against
// the standard distributions (Figure 8).
package main

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/intmat"
	"repro/internal/machine"
)

func main() {
	T := intmat.New(2, 2, 1, 2, 3, 7)
	fs, ok := decomp.DecomposeAtMost(T, 4)
	if !ok {
		panic("T must decompose")
	}
	fmt.Printf("T = %v = ", T)
	for i, f := range fs {
		if i > 0 {
			fmt.Print(" · ")
		}
		fmt.Print(f)
	}
	fmt.Printf("   (%d elementary factors, minimal length %d)\n\n", len(fs), decomp.MinimalLength(T))

	fmt.Print(experiments.FormatTable2(experiments.Table2(8, 8, 64, 64)))
	fmt.Println()

	// the grouped partition in isolation: U_4 under four distributions
	mesh := machine.DefaultMesh(8, 8)
	const k, n, bytes = 4, 64, 64
	for _, d0 := range []distrib.Dist1D{
		distrib.Grouped{K: k}, distrib.Cyclic{}, distrib.BlockCyclic{B: 4}, distrib.Block{},
	} {
		d := distrib.Dist2D{D0: d0, D1: distrib.Block{}}
		msgs := machine.ElementaryRowComm(mesh, d, k, n, n, bytes)
		st := mesh.PatternStats(msgs)
		fmt.Printf("U_%d under %-12s %8.0f µs  (%d messages, max degree %d)\n",
			k, d0.Name(), mesh.Time(msgs), st.Messages, st.MaxDegree)
	}
	fmt.Println()
	fmt.Print(experiments.FormatFigure8(experiments.Figure8(8, 8, 64, []int{2, 4, 8})))
}
