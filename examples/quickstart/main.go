// Quickstart: run the paper's two-step heuristic on its motivating
// example (Section 2, Example 1) and walk through the outcome:
// the access graph, the maximum branching, the allocation matrices,
// the residual broadcast (rotated axis-parallel) and the residual
// decomposition into two elementary communications.
package main

import (
	"fmt"
	"log"

	"repro/internal/accessgraph"
	"repro/internal/affine"
	"repro/internal/core"
)

func main() {
	prog := affine.PaperExample1()
	fmt.Print(prog)
	fmt.Println()

	// Step 0: the access graph for a 2-D virtual grid.
	g, err := accessgraph.Build(prog, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g)
	fmt.Printf("communications in graph: %d of %d\n\n", g.GraphComms(), len(g.Comms))

	// Steps 1+2: alignment, macro-communications, decomposition.
	res, err := core.Optimize(prog, 2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	fmt.Println("\nwhat happened:")
	for _, pl := range res.Plans {
		switch pl.Class {
		case core.MacroComm:
			fmt.Printf("- the read of %s in %s became a %s", pl.Comm.Access.Array, pl.Comm.Stmt.Name, pl.Macro)
			if pl.Rotation != nil {
				fmt.Printf(", after rotating the component by %v to make it axis-parallel", pl.Rotation)
			}
			fmt.Println()
		case core.Decomposed:
			fmt.Printf("- the read of %s in %s has data-flow matrix %v = product of %d elementary matrices %v\n",
				pl.Comm.Access.Array, pl.Comm.Stmt.Name, pl.Dataflow, len(pl.Factors), pl.Factors)
		}
	}
}
