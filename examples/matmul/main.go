// Matmul: map the matrix-product nest onto a 2-D virtual grid. The
// paper's Section 1 observes that such kernels cannot be mapped onto
// 2-D grids without residual communications; this example shows the
// heuristic making one access local and classifying the two others
// as macro-communications, then prices the mapping on the CM-5-like
// model against an all-general mapping.
package main

import (
	"fmt"
	"log"

	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	prog := affine.MatMul()
	fmt.Print(prog)
	fmt.Println()

	res, err := core.Optimize(prog, 2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// Price the residuals on a 32-processor CM-5-like machine,
	// one 8-byte element per virtual processor, 64 steps worth of
	// traffic per residual.
	f := machine.DefaultFatTree(32)
	const bytes = 8 * 64
	var optimized, naive float64
	for _, pl := range res.Plans {
		switch pl.Class {
		case core.Local:
			// free
		case core.MacroComm:
			optimized += f.Broadcast(bytes) // reduction priced alike
			naive += f.General(1, bytes)
		default:
			optimized += f.General(1, bytes)
			naive += f.General(1, bytes)
		}
		if pl.Class != core.Local {
			naive += 0 // every non-local comm is general in the naive mapping
		}
	}
	fmt.Printf("\nmodel cost with macro-communications: %8.0f µs\n", optimized)
	fmt.Printf("model cost treating them as general:  %8.0f µs\n", naive)
	fmt.Printf("speedup from step 2 of the heuristic: %.1fx\n", naive/optimized)
}
