// Platonoff: the Section 7.2 comparison. On Example 5 the macro-first
// strategy (detect broadcasts in the source, constrain the mapping to
// preserve them, then minimize the rest) keeps one partial broadcast
// per time step, while the paper's local-first strategy reaches a
// communication-free mapping — macro-communications should optimize
// *residual* communications, not create them.
package main

import (
	"fmt"
	"log"

	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/baselines"
	"repro/internal/experiments"
)

func main() {
	prog := affine.Example5()
	fmt.Print(prog)
	fmt.Println()

	plat, err := baselines.Platonoff(prog, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("macro-first (Platonoff): %d communications preserved as broadcasts, %d local, %d residual\n",
		len(plat.Preserved), plat.LocalCount(), plat.ResidualCount())

	ours, err := alignment.Align(prog, 2, alignment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local-first (ours):      %d local, %d residual\n",
		ours.LocalCount(), len(ours.ResidualComms()))
	fmt.Printf("allocations: M_S = %v, M_a = %v, M_b = %v\n\n",
		ours.Alloc["S"], ours.Alloc["a"], ours.Alloc["b"])

	for _, steps := range []int{10, 100, 1000} {
		r, err := experiments.Example5(32, steps, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatExample5(r, steps))
	}

	// the greedy baseline for context
	greedy, err := baselines.FeautrierGreedy(prog, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvolume-greedy baseline: %d local, %d residual\n",
		greedy.LocalCount(), greedy.ResidualCount())
}
