// Gauss: map the Gaussian-elimination update nest. The pivot-row and
// pivot-column reads are the classic broadcasts of Section 4.1: the
// example shows their detection, their directions in the processor
// space, and the message-vectorization test of Section 4.5.
package main

import (
	"fmt"
	"log"

	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/macro"
)

func main() {
	prog := affine.Gauss()
	fmt.Print(prog)
	fmt.Println()

	res, err := core.Optimize(prog, 2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// Force the owner-computes mapping M_S = [[0,1,0],[0,0,1]] (the
	// processor owning a(i,j) executes iteration (k,i,j)) and look at
	// the broadcasts explicitly.
	ar, err := alignment.Align(prog, 2, alignment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ar.Alloc["S"] = intmat.New(2, 3, 0, 1, 0, 0, 0, 1)
	ar.Alloc["a"] = intmat.Identity(2)
	fmt.Println("\nowner-computes mapping: broadcasts in the residual reads")
	for _, c := range ar.Graph.Comms {
		if c.Access.Write {
			continue
		}
		for _, m := range macro.Detect(ar, c) {
			if m.Kind != macro.Broadcast || m.Hidden() {
				continue
			}
			fmt.Printf("  access %d: %s, directions %v, axis-parallel=%v, vectorizable=%v\n",
				c.AccessIdx, m, m.Directions, m.AxisParallel(), macro.Vectorizable(ar, c))
		}
	}
}
