// Command paperfigs regenerates every table and figure of the
// paper's evaluation section on the machine models:
//
//	paperfigs            # everything
//	paperfigs -table1    # CM-5 data-movement ratios
//	paperfigs -table2    # decomposed vs direct on the mesh
//	paperfigs -fig8      # grouped partition ratio curves
//	paperfigs -motivating
//	paperfigs -example5
//	paperfigs -sweep        # batch sweep over the generated scenario suite
//	paperfigs -collectives  # collective algorithm selection vs flat baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
)

func main() {
	t1 := flag.Bool("table1", false, "print Table 1 only")
	t2 := flag.Bool("table2", false, "print Table 2 only")
	f8 := flag.Bool("fig8", false, "print Figure 8 only")
	mot := flag.Bool("motivating", false, "print the Section 2-3 walkthrough only")
	ex5 := flag.Bool("example5", false, "print the Section 7.2 comparison only")
	sweep := flag.Bool("sweep", false, "print the batch sweep only")
	colls := flag.Bool("collectives", false, "print the collective-selection table only")
	collBytes := flag.Int64("coll-bytes", 1024, "collective table: payload bytes")
	procs := flag.Int("procs", 32, "CM-5-like processor count for Table 1")
	bytes := flag.Int64("bytes", 512, "payload per processor for Table 1 (bytes)")
	sweepSeed := flag.Int64("sweep-seed", 1, "batch sweep: scenario generation seed")
	sweepRandom := flag.Int("sweep-random", 15, "batch sweep: number of random nests")
	sweepWorkers := flag.Int("sweep-workers", 0, "batch sweep: worker pool size (0: GOMAXPROCS)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("paperfigs"))
		return
	}

	all := !*t1 && !*t2 && !*f8 && !*mot && !*ex5 && !*sweep && !*colls
	if all || *t1 {
		fmt.Print(experiments.FormatTable1(experiments.Table1(*procs, *bytes)))
		fmt.Println()
	}
	if all || *t2 {
		fmt.Print(experiments.FormatTable2(experiments.Table2(8, 8, 64, 64)))
		fmt.Println()
	}
	if all || *f8 {
		fmt.Print(experiments.FormatFigure8(experiments.Figure8(8, 8, 64, []int{2, 4, 8})))
		fmt.Println()
	}
	if all || *mot {
		res, err := experiments.MotivatingExample()
		if err != nil {
			fmt.Fprintln(os.Stderr, "motivating example:", err)
			os.Exit(1)
		}
		fmt.Println("Motivating example (Sections 2-3):")
		fmt.Print(res.Report())
		fmt.Println()
	}
	if all || *ex5 {
		const steps = 100
		r, err := experiments.Example5(*procs, steps, 256)
		if err != nil {
			fmt.Fprintln(os.Stderr, "example 5:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatExample5(r, steps))
		fmt.Println()
	}
	if all || *colls {
		fmt.Print(experiments.FormatCollectiveSelection(experiments.CollectiveSelection(*collBytes)))
		fmt.Println()
	}
	if all || *sweep {
		b := experiments.BatchSweep(*sweepSeed, *sweepRandom, *sweepWorkers)
		fmt.Print(experiments.FormatBatchSweep(b))
	}
}
