// Command resoptd serves the residual-communication optimizer over
// HTTP: the versioned /v1 API of internal/api (plus the deprecated
// unversioned shims). One engine session backs every request, so
// concurrent clients share the worker pool, the in-memory memo cache
// and the optional disk store — a nest optimized once is served from
// cache thereafter, across requests and (with -store) across
// restarts.
//
//	resoptd                              # serve on :8080, no persistence
//	resoptd -addr :9000 -store ./plans   # persistent plan store
//	resoptd -workers 8 -cache-cap 4096   # bounded pool and cache
//	resoptd -rate 50 -burst 100          # per-client rate limiting
//	resoptd -rate 50 -rate-key api-key   # buckets per X-Api-Key header
//	resoptd -rate 50 -rate-key forwarded # buckets per X-Forwarded-For hop
//
// Every request runs under a trace: the root span adopts a valid
// inbound W3C traceparent header (minting a fresh trace otherwise),
// the response carries a Trace-Id header, and recent traces are
// retrievable from the ops listener. Logs are structured (log/slog):
//
//	resoptd -log-format json -log-level debug   # machine-readable logs
//	resoptd -trace-slow 250ms                   # log span trees of slow requests
//	resoptd -trace-cap 256                      # deeper trace ring
//
// The ops listener (-ops-addr, default off) serves the operational
// endpoints away from API clients: GET /metrics (Prometheus text
// format with the resopt_go_* runtime families; OpenMetrics with
// trace exemplars when negotiated), GET /metrics/cluster (the fleet's
// scrapes federated under a node label), GET /healthz (clustered:
// peers_up/peers_total, "degraded" when a peer is down),
// GET /debug/traces[/{id}] (clustered: span trees stitched across
// every node a forwarded request touched), and GET /debug/pprof/*.
// The fleet's aggregated counters are one call away on the API
// listener: GET /v1/cluster/stats (see docs/OPERATIONS.md,
// "Observing a fleet").
// Clustered serving shards the plan-key space across a static fleet
// of daemons on a consistent-hash ring: requests for keys owned by a
// peer are forwarded one hop, cold plans consult the replica peers
// before computing, and finished plans/snapshots replicate to the
// ring successors (see docs/OPERATIONS.md, "Running a cluster"):
//
//	resoptd -addr :8080 -store ./a -node-id node1 \
//	        -cluster node1=http://hostA:8080,node2=http://hostB:8080
//	resoptd -cluster-file fleet.json -node-id node2   # {"id": "url", ...}
//	resoptd -cluster ... -cluster-replicas 3          # R=3 replication
//	resoptd -cluster ... -probe-interval 5s           # slower health sweep
//
// The background sweeper (-sweep-interval, default off) ages finished
// jobs and GCs the store tiers on a ticker, without a client asking:
//
//	resoptd -store ./plans -ops-addr 127.0.0.1:9090 \
//	        -sweep-interval 10m -job-ttl 24h -job-keep 500 \
//	        -gc-age 168h -gc-keep 100000
//
//	curl -s localhost:9090/metrics
//	curl -s localhost:9090/healthz
//	curl -s localhost:9090/debug/traces?min=100ms
//	go tool pprof localhost:9090/debug/pprof/heap
//
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/optimize -d '{"example":"matmul"}'
//	curl -s -X POST localhost:8080/v1/batch -d '{"random":2,"no_examples":true}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"deep":50,"m":3}'
//
// SIGINT/SIGTERM drain in-flight requests, stop the sweeper and exit
// cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/store"
)

// newLogger builds the process logger from the -log-format and
// -log-level flags (exits on bad values — logging misconfiguration
// should fail loudly, not silently default).
func newLogger(format, level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "resoptd: bad -log-level %q (want debug, info, warn or error)\n", level)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "resoptd: bad -log-format %q (want json or text)\n", format)
		os.Exit(2)
	}
	return slog.New(h)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listener address serving /metrics, /healthz, /debug/traces and /debug/pprof (empty: disabled; bind it to localhost or an internal interface — it is not rate limited)")
	storeDir := flag.String("store", "", "directory of the persistent plan store (empty: none)")
	workers := flag.Int("workers", 0, "engine worker pool size (0: GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 0, "in-memory cache entry cap (0: default, <0: unbounded)")
	rate := flag.Float64("rate", 0, "per-client sustained request rate limit in req/s (0: unlimited)")
	burst := flag.Int("burst", 0, "per-client burst above -rate (0: twice the rate)")
	rateKey := flag.String("rate-key", "ip", "rate-limiter client identity: ip | api-key (X-Api-Key header) | forwarded (first X-Forwarded-For hop); header modes trust the header — use behind a proxy that validates it")
	jobsCap := flag.Int("jobs-cap", 0, "retained finished async jobs (0: default)")
	sweepInterval := flag.Duration("sweep-interval", 0, "background sweeper tick period (0: disabled)")
	jobTTL := flag.Duration("job-ttl", 0, "sweeper: retire finished jobs older than this (0: no age bound)")
	jobKeep := flag.Int("job-keep", 0, "sweeper: keep at most this many finished jobs (0: no count bound)")
	gcAge := flag.Duration("gc-age", 0, "sweeper: GC store files unused for longer than this (0: no age criterion)")
	gcKeep := flag.Int("gc-keep", 0, "sweeper: GC store files beyond this many per tier, least recently used first (0: no count criterion)")
	clusterSpec := flag.String("cluster", "", "static cluster membership as comma-separated id=url pairs, e.g. node1=http://a:8080,node2=http://b:8080 (requires -node-id)")
	clusterFile := flag.String("cluster-file", "", "JSON file mapping node id to base URL — the file variant of -cluster")
	nodeID := flag.String("node-id", "", "this node's id within the -cluster/-cluster-file membership")
	clusterVNodes := flag.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0: default)")
	clusterReplicas := flag.Int("cluster-replicas", 0, "replication factor R, owner included (0: default 2)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health probe sweep period (0: default 2s)")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	traceSlow := flag.Duration("trace-slow", 0, "log the full span tree of requests slower than this (0: disabled)")
	traceCap := flag.Int("trace-cap", 0, "recent traces retained for /debug/traces (0: default)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("resoptd"))
		return
	}
	logger := newLogger(*logFormat, *logLevel)

	valid := false
	for _, m := range server.RateKeyModes() {
		if *rateKey == m {
			valid = true
		}
	}
	if !valid {
		logger.Error("bad -rate-key", slog.String("got", *rateKey), slog.Any("want", server.RateKeyModes()))
		os.Exit(1)
	}
	opts := server.Options{
		Workers:    *workers,
		CacheCap:   *cacheCap,
		RatePerSec: *rate,
		RateBurst:  *burst,
		RateKey:    *rateKey,
		JobsCap:    *jobsCap,
		Logger:     logger,
		TraceSlow:  *traceSlow,
		TraceCap:   *traceCap,
	}
	logger.Info("starting",
		slog.String("version", buildinfo.Version),
		slog.String("go", runtime.Version()))
	if *rate > 0 {
		logger.Info("rate limiting", slog.Float64("req_per_sec", *rate), slog.String("keyed_by", *rateKey))
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			logger.Error("opening store", slog.Any("err", err))
			os.Exit(1)
		}
		opts.Store = st
		logger.Info("plan store open", slog.String("dir", st.Dir()))
	}
	switch {
	case *clusterSpec != "" && *clusterFile != "":
		logger.Error("-cluster and -cluster-file are mutually exclusive")
		os.Exit(1)
	case *clusterSpec != "" || *clusterFile != "":
		nodes, err := cluster.ParseSpec(*clusterSpec)
		if *clusterFile != "" {
			nodes, err = cluster.LoadFile(*clusterFile)
		}
		if err != nil {
			logger.Error("cluster membership", slog.Any("err", err))
			os.Exit(1)
		}
		cl, err := cluster.New(cluster.Config{
			Self:     *nodeID,
			Nodes:    nodes,
			VNodes:   *clusterVNodes,
			Replicas: *clusterReplicas,
		})
		if err != nil {
			logger.Error("cluster config", slog.Any("err", err))
			os.Exit(1)
		}
		if opts.Store == nil {
			logger.Warn("clustered without -store: plans and snapshots cannot replicate to or from this node")
		}
		opts.Cluster = cl
		opts.ClusterProbeInterval = *probeInterval
		logger.Info("clustered",
			slog.String("node", cl.Self()),
			slog.Int("members", cl.Size()),
			slog.Int("replicas", cl.Replicas()))
	default:
		if *nodeID != "" {
			logger.Error("-node-id needs -cluster or -cluster-file")
			os.Exit(1)
		}
	}
	srv := server.New(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sweep := server.SweepOptions{
		Interval: *sweepInterval,
		JobTTL:   *jobTTL,
		JobKeep:  *jobKeep,
		GCAge:    *gcAge,
		GCKeep:   *gcKeep,
	}
	switch {
	case *sweepInterval < 0:
		logger.Error("bad -sweep-interval (want a positive duration)", slog.Duration("got", *sweepInterval))
		os.Exit(1)
	case *sweepInterval > 0:
		if *jobTTL == 0 && *jobKeep == 0 && *gcAge == 0 && *gcKeep == 0 {
			logger.Warn("-sweep-interval set but no -job-ttl/-job-keep/-gc-age/-gc-keep criteria; the sweeper will tick and do nothing")
		}
		if (*gcAge > 0 || *gcKeep > 0) && *storeDir == "" {
			logger.Warn("-gc-age/-gc-keep need -store; the sweeper will only prune jobs")
		}
		srv.StartSweeper(ctx, sweep)
		logger.Info("sweeper on",
			slog.Duration("interval", *sweepInterval),
			slog.Duration("job_ttl", *jobTTL), slog.Int("job_keep", *jobKeep),
			slog.Duration("gc_age", *gcAge), slog.Int("gc_keep", *gcKeep))
	default:
		if *jobTTL != 0 || *jobKeep != 0 || *gcAge != 0 || *gcKeep != 0 {
			logger.Warn("-job-ttl/-job-keep/-gc-age/-gc-keep have no effect without -sweep-interval")
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", slog.String("addr", *addr))

	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{Addr: *opsAddr, Handler: srv.OpsHandler()}
		go func() { errc <- ops.ListenAndServe() }()
		logger.Info("ops listener on (metrics, healthz, traces, pprof)", slog.String("addr", *opsAddr))
	}

	select {
	case err := <-errc:
		logger.Error("listener failed", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if ops != nil {
		// The ops listener has no long-lived requests worth draining;
		// a failed shutdown must not block the API drain below.
		opsCtx, opsCancel := context.WithTimeout(shutdownCtx, 2*time.Second)
		ops.Shutdown(opsCtx)
		opsCancel()
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// Handlers may still be mid-request and submitting work to the
		// shared session; closing it now would race them. The process
		// is exiting anyway, so skip the session teardown.
		logger.Warn("shutdown", slog.Any("err", err))
		return
	}
	// Clean drain: no handler is running, the session can close.
	srv.Close()
}
