// Command resoptd serves the residual-communication optimizer over
// HTTP: the versioned /v1 API of internal/api (plus the deprecated
// unversioned shims). One engine session backs every request, so
// concurrent clients share the worker pool, the in-memory memo cache
// and the optional disk store — a nest optimized once is served from
// cache thereafter, across requests and (with -store) across
// restarts.
//
//	resoptd                              # serve on :8080, no persistence
//	resoptd -addr :9000 -store ./plans   # persistent plan store
//	resoptd -workers 8 -cache-cap 4096   # bounded pool and cache
//	resoptd -rate 50 -burst 100          # per-client rate limiting
//	resoptd -rate 50 -rate-key api-key   # buckets per X-Api-Key header
//	resoptd -rate 50 -rate-key forwarded # buckets per X-Forwarded-For hop
//
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:8080/v1/optimize -d '{"example":"matmul"}'
//	curl -s -X POST localhost:8080/v1/batch -d '{"random":2,"no_examples":true}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"deep":50,"m":3}'
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "directory of the persistent plan store (empty: none)")
	workers := flag.Int("workers", 0, "engine worker pool size (0: GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 0, "in-memory cache entry cap (0: default, <0: unbounded)")
	rate := flag.Float64("rate", 0, "per-client sustained request rate limit in req/s (0: unlimited)")
	burst := flag.Int("burst", 0, "per-client burst above -rate (0: twice the rate)")
	rateKey := flag.String("rate-key", "ip", "rate-limiter client identity: ip | api-key (X-Api-Key header) | forwarded (first X-Forwarded-For hop); header modes trust the header — use behind a proxy that validates it")
	jobsCap := flag.Int("jobs-cap", 0, "retained finished async jobs (0: default)")
	flag.Parse()
	log.SetPrefix("resoptd: ")
	log.SetFlags(0)

	valid := false
	for _, m := range server.RateKeyModes() {
		if *rateKey == m {
			valid = true
		}
	}
	if !valid {
		log.Fatalf("bad -rate-key %q (want one of %v)", *rateKey, server.RateKeyModes())
	}
	opts := server.Options{
		Workers:    *workers,
		CacheCap:   *cacheCap,
		RatePerSec: *rate,
		RateBurst:  *burst,
		RateKey:    *rateKey,
		JobsCap:    *jobsCap,
	}
	if *rate > 0 {
		log.Printf("rate limiting clients to %g req/s (keyed by %s)", *rate, *rateKey)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = st
		log.Printf("plan store at %s", st.Dir())
	}
	srv := server.New(opts)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		// Handlers may still be mid-request and submitting work to the
		// shared session; closing it now would race them. The process
		// is exiting anyway, so skip the session teardown.
		log.Print("shutdown: ", err)
		return
	}
	// Clean drain: no handler is running, the session can close.
	srv.Close()
}
