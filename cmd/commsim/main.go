// Command commsim simulates communication patterns on the
// Paragon-like mesh model: a general affine communication, its
// decomposed phases, or an elementary U_k communication under a
// chosen data distribution.
//
//	commsim -pattern general -t 1,2,3,7
//	commsim -pattern decomposed -t 1,2,3,7
//	commsim -pattern uk -k 4 -dist grouped
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/decomp"
	"repro/internal/distrib"
	"repro/internal/intmat"
	"repro/internal/machine"
)

func main() {
	pattern := flag.String("pattern", "general", "general | decomposed | uk")
	tspec := flag.String("t", "1,2,3,7", "2x2 data-flow matrix, row-major")
	k := flag.Int("k", 2, "k of the elementary U_k communication")
	dist := flag.String("dist", "cyclic", "block | cyclic | cyclicb | grouped (dimension 0)")
	p := flag.Int("p", 8, "mesh rows")
	q := flag.Int("q", 8, "mesh cols")
	n := flag.Int("n", 64, "virtual grid extent (n x n)")
	bytes := flag.Int64("bytes", 64, "bytes per virtual processor")
	flag.Parse()

	mesh := machine.DefaultMesh(*p, *q)
	d0 := pick(*dist, *k)
	d := distrib.Dist2D{D0: d0, D1: distrib.Block{}}

	switch *pattern {
	case "general", "decomposed":
		t, err := parseT(*tspec)
		if err != nil {
			fatal(err)
		}
		cyc := distrib.Dist2D{D0: distrib.Cyclic{}, D1: distrib.Cyclic{}}
		if *pattern == "general" {
			msgs := machine.GeneralComm2D(mesh, cyc, t, nil, *n, *n, *bytes)
			report(mesh, "general "+t.String(), msgs)
			return
		}
		if t.Det() != 1 {
			fatal(fmt.Errorf("decomposition needs det T = 1, got %d", t.Det()))
		}
		fs := decomp.Decompose(t)
		fmt.Printf("T = %v decomposes into %d elementary factors\n", t, len(fs))
		total := 0.0
		for i := len(fs) - 1; i >= 0; i-- {
			msgs := machine.AffineComm2D(mesh, cyc, fs[i], nil, *n, *n, *bytes)
			tm := mesh.Time(msgs)
			fmt.Printf("  phase %v: %.0f µs\n", fs[i], tm)
			total += tm
		}
		fmt.Printf("  total decomposed: %.0f µs\n", total)
	case "uk":
		msgs := machine.ElementaryRowComm(mesh, d, int64(*k), *n, *n, *bytes)
		report(mesh, fmt.Sprintf("U_%d under %s", *k, d.Name()), msgs)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
}

func report(mesh *machine.Mesh2D, name string, msgs []machine.Message) {
	st := mesh.PatternStats(msgs)
	fmt.Printf("%s on %dx%d mesh:\n", name, mesh.P, mesh.Q)
	fmt.Printf("  time          %.0f µs\n", mesh.Time(msgs))
	fmt.Printf("  messages      %d\n", st.Messages)
	fmt.Printf("  total bytes   %d\n", st.TotalBytes)
	fmt.Printf("  max degree    %d\n", st.MaxDegree)
	fmt.Printf("  max hops      %d\n", st.MaxHops)
}

func pick(name string, k int) distrib.Dist1D {
	switch name {
	case "block":
		return distrib.Block{}
	case "cyclic":
		return distrib.Cyclic{}
	case "cyclicb":
		return distrib.BlockCyclic{B: 4}
	case "grouped":
		return distrib.Grouped{K: k}
	}
	fatal(fmt.Errorf("unknown distribution %q", name))
	return nil
}

func parseT(spec string) (*intmat.Mat, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("want 4 comma-separated entries, got %q", spec)
	}
	vals := make([]int64, 4)
	for i, s := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return intmat.New(2, 2, vals...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commsim:", err)
	os.Exit(1)
}
