// Command commsim simulates communication patterns on the
// Paragon-like mesh model: a general affine communication, its
// decomposed phases, an elementary U_k communication under a chosen
// data distribution, or a software collective (broadcast/reduction)
// with cost-driven algorithm selection.
//
//	commsim -pattern general -t 1,2,3,7
//	commsim -pattern decomposed -t 1,2,3,7
//	commsim -pattern uk -k 4 -dist grouped
//	commsim -pattern collective -op broadcast -p 64 -q 2 -bytes 4096
//	commsim -pattern collective -op reduction -cdim 0     # along axis 0
//	commsim -pattern collective -cdim 0,1 -schedule       # p≥2: per-plane
//	commsim -pattern collective -algo chain -schedule     # rounds, one by one
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/collective"
	"repro/internal/decomp"
	"repro/internal/distrib"
	"repro/internal/intmat"
	"repro/internal/machine"
)

func main() {
	pattern := flag.String("pattern", "general", "general | decomposed | uk | collective")
	tspec := flag.String("t", "1,2,3,7", "2x2 data-flow matrix, row-major")
	k := flag.Int("k", 2, "k of the elementary U_k communication")
	dist := flag.String("dist", "cyclic", "block | cyclic | cyclicb | grouped (dimension 0)")
	p := flag.Int("p", 8, "mesh rows")
	q := flag.Int("q", 8, "mesh cols")
	n := flag.Int("n", 64, "virtual grid extent (n x n)")
	bytes := flag.Int64("bytes", 64, "bytes per virtual processor")
	op := flag.String("op", "broadcast", "collective: broadcast | reduction")
	cdim := flag.String("cdim", "", "collective: grid axes of a partial collective — \"0\" or \"1\" for per-line, \"0,1\" for per-plane (empty or -1: total)")
	root := flag.Int("root", 0, "collective: root rank of a total collective")
	algo := flag.String("algo", "", "collective: pin one algorithm instead of cost-driven selection")
	schedule := flag.Bool("schedule", false, "collective: print the chosen schedule round by round")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("commsim"))
		return
	}

	mesh := machine.DefaultMesh(*p, *q)
	d0 := pick(*dist, *k)
	d := distrib.Dist2D{D0: d0, D1: distrib.Block{}}

	switch *pattern {
	case "general", "decomposed":
		t, err := parseT(*tspec)
		if err != nil {
			fatal(err)
		}
		cyc := distrib.Dist2D{D0: distrib.Cyclic{}, D1: distrib.Cyclic{}}
		if *pattern == "general" {
			msgs := machine.GeneralComm2D(mesh, cyc, t, nil, *n, *n, *bytes)
			report(mesh, "general "+t.String(), msgs)
			return
		}
		if t.Det() != 1 {
			fatal(fmt.Errorf("decomposition needs det T = 1, got %d", t.Det()))
		}
		fs := decomp.Decompose(t)
		fmt.Printf("T = %v decomposes into %d elementary factors\n", t, len(fs))
		total := 0.0
		for i := len(fs) - 1; i >= 0; i-- {
			msgs := machine.AffineComm2D(mesh, cyc, fs[i], nil, *n, *n, *bytes)
			tm := mesh.Time(msgs)
			fmt.Printf("  phase %v: %.0f µs\n", fs[i], tm)
			total += tm
		}
		fmt.Printf("  total decomposed: %.0f µs\n", total)
	case "uk":
		msgs := machine.ElementaryRowComm(mesh, d, int64(*k), *n, *n, *bytes)
		report(mesh, fmt.Sprintf("U_%d under %s", *k, d.Name()), msgs)
	case "collective":
		dims, err := parseDims(*cdim)
		if err != nil {
			fatal(err)
		}
		runCollective(mesh, *op, dims, *root, *bytes, *algo, *schedule)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
}

// parseDims parses the -cdim flag: "" or "-1" is a total collective
// (nil), otherwise a comma-separated list of grid axes (0 and/or 1).
func parseDims(spec string) ([]int, error) {
	if spec == "" || spec == "-1" {
		return nil, nil
	}
	var dims []int
	seen := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 0 || d > 1 {
			return nil, fmt.Errorf("bad -cdim %q (want 0, 1 or 0,1)", spec)
		}
		if !seen[d] {
			seen[d] = true
			dims = append(dims, d)
		}
	}
	sort.Ints(dims)
	return dims, nil
}

// runCollective prints the per-algorithm cost table for the
// collective, the selector's choice, and (with -schedule) the chosen
// schedule round by round. A two-axis -cdim prints the per-plane
// candidates (both phase orders) against the machine-spanning
// execution instead of the single-algorithm table.
func runCollective(mesh *machine.Mesh2D, op string, dims []int, root int, bytes int64, algo string, schedule bool) {
	var pat collective.Pattern
	switch op {
	case "broadcast":
		pat = collective.Broadcast
	case "reduction":
		pat = collective.Reduction
	default:
		fatal(fmt.Errorf("unknown collective op %q (want broadcast or reduction)", op))
	}
	if algo != "" && !collective.KnownAlgorithm(algo) {
		fatal(fmt.Errorf("unknown algorithm %q (have %v)", algo, collective.AllAlgorithms()))
	}
	where := fmt.Sprintf("root %d", root)
	switch len(dims) {
	case 1:
		where = fmt.Sprintf("along axis %d", dims[0])
	case 2:
		where = "per plane (axes 0,1)"
	}
	fmt.Printf("%s of %d bytes on %dx%d mesh (%s):\n", op, bytes, mesh.P, mesh.Q, where)

	var choice collective.Choice
	if len(dims) == 2 {
		// Per-plane: the interesting comparison is scope versus scope,
		// not algorithm versus algorithm within one scope.
		for _, cand := range []collective.Choice{
			collective.SelectMeshPlanes(mesh, pat, []collective.Plane{collective.FullPlane(mesh)}, bytes, algo),
			collective.SelectMesh(mesh, pat, 0, bytes, algo),
		} {
			scope := cand.Scope
			if scope == "" {
				scope = "total"
			}
			fmt.Printf("  %-8s %-22s %12.0f µs  (%d rounds)\n", scope, cand.Algorithm, cand.Cost, cand.Rounds)
		}
		choice = collective.SelectMeshMacro(mesh, pat, dims, bytes, algo)
		if algo != "" && choice.Algorithm != algo && choice.Algorithm != algo+"+"+algo {
			// Same fail-loud rule as the single-scope path below: a
			// pinned algorithm the selector fell back from would corrupt
			// an ablation. A plane composition counts as pinned when both
			// phases run the forced algorithm.
			fatal(fmt.Errorf("algorithm %q is not applicable here (selector would use %s)", algo, choice.Algorithm))
		}
	} else {
		build := func(name string) (*collective.Schedule, error) {
			if len(dims) == 1 {
				return collective.ScheduleMeshDim(mesh, pat, dims[0], bytes, name)
			}
			return collective.ScheduleMesh(mesh, pat, root, bytes, name)
		}
		for _, name := range collective.MeshAlgorithms() {
			sched, err := build(name)
			if err != nil {
				fmt.Printf("  %-18s %15s\n", name, "n/a")
				continue
			}
			fmt.Printf("  %-18s %12.0f µs  (%d rounds)\n", name, sched.Cost, len(sched.Rounds))
		}
		if len(dims) == 1 {
			choice = collective.SelectMeshDim(mesh, pat, dims[0], bytes, algo)
		} else {
			choice = collective.SelectMesh(mesh, pat, root, bytes, algo)
		}
		if algo != "" && choice.Algorithm != algo {
			// The selector silently falls back when a pinned algorithm
			// cannot run here (a fat-tree name, or dim-tree on a partial
			// collective); for an explicit -algo that would corrupt an
			// ablation, so fail loudly instead.
			fatal(fmt.Errorf("algorithm %q is not applicable here (selector would use %s)", algo, choice.Algorithm))
		}
	}
	scope := ""
	if choice.Scope != "" {
		scope = " [" + choice.Scope + "]"
	}
	fmt.Printf("selected: %s%s at %.0f µs\n", choice.Algorithm, scope, choice.Cost)

	if !schedule {
		return
	}
	var sched *collective.Schedule
	var err error
	if len(dims) == 2 {
		sched, err = collective.MacroSchedule(mesh, pat, dims, bytes, algo)
	} else if len(dims) == 1 {
		sched, err = collective.ScheduleMeshDim(mesh, pat, dims[0], bytes, choice.Algorithm)
	} else {
		sched, err = collective.ScheduleMesh(mesh, pat, root, bytes, choice.Algorithm)
	}
	if err != nil {
		fatal(err)
	}
	for i, r := range sched.Rounds {
		fmt.Printf("round %2d (%6.0f µs):", i, mesh.Time(r))
		const maxShown = 8
		for j, msg := range r {
			if j == maxShown {
				fmt.Printf(" … +%d more", len(r)-maxShown)
				break
			}
			fmt.Printf(" %d→%d[%dB]", msg.Src, msg.Dst, msg.Bytes)
		}
		fmt.Println()
	}
}

func report(mesh *machine.Mesh2D, name string, msgs []machine.Message) {
	st := mesh.PatternStats(msgs)
	fmt.Printf("%s on %dx%d mesh:\n", name, mesh.P, mesh.Q)
	fmt.Printf("  time          %.0f µs\n", mesh.Time(msgs))
	fmt.Printf("  messages      %d\n", st.Messages)
	fmt.Printf("  total bytes   %d\n", st.TotalBytes)
	fmt.Printf("  max degree    %d\n", st.MaxDegree)
	fmt.Printf("  max hops      %d\n", st.MaxHops)
}

func pick(name string, k int) distrib.Dist1D {
	switch name {
	case "block":
		return distrib.Block{}
	case "cyclic":
		return distrib.Cyclic{}
	case "cyclicb":
		return distrib.BlockCyclic{B: 4}
	case "grouped":
		return distrib.Grouped{K: k}
	}
	fatal(fmt.Errorf("unknown distribution %q", name))
	return nil
}

func parseT(spec string) (*intmat.Mat, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("want 4 comma-separated entries, got %q", spec)
	}
	vals := make([]int64, 4)
	for i, s := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return intmat.New(2, 2, vals...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commsim:", err)
	os.Exit(1)
}
