package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/api"
	"repro/internal/client"
)

// remoteConfig is resopt's -remote mode: drive a resoptd daemon over
// the /v1 API with the Go client instead of optimizing in-process.
type remoteConfig struct {
	base                 string
	batch, snapshots     bool
	example, nestFile    string
	outFile              string
	saveAs, fromSnapshot string
	spec                 api.BatchSpec
	m                    int
}

func runRemote(cfg remoteConfig) {
	c, err := client.New(cfg.base, nil)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	switch {
	case cfg.snapshots:
		remoteSnapshots(ctx, c)
	case cfg.batch:
		remoteBatch(ctx, c, cfg)
	default:
		remoteOptimize(ctx, c, cfg)
	}
}

func remoteSnapshots(ctx context.Context, c *client.Client) {
	snaps, err := c.Snapshots(ctx)
	if err != nil {
		fatal(err)
	}
	if len(snaps) == 0 {
		fmt.Println("no snapshots stored")
		return
	}
	fmt.Printf("%-30s %10s %8s %14s  %s\n", "NAME", "SCENARIOS", "ERRORS", "MODEL µs", "RERUNNABLE")
	for _, s := range snaps {
		rerun := ""
		if s.Rerunnable {
			rerun = "yes"
		}
		fmt.Printf("%-30s %10d %8d %14.0f  %s\n", s.Name, s.Scenarios, s.Errors, s.TotalModelTime, rerun)
	}
}

func remoteOptimize(ctx context.Context, c *client.Client, cfg remoteConfig) {
	req := api.OptimizeRequest{
		M:               cfg.spec.M,
		NoMacro:         cfg.spec.NoMacro,
		NoDecomposition: cfg.spec.NoDecomposition,
	}
	switch {
	case cfg.example != "":
		req.Example = cfg.example
	case cfg.nestFile != "":
		src, err := os.ReadFile(cfg.nestFile)
		if err != nil {
			fatal(err)
		}
		req.Nest = string(src)
	default:
		req.Example = "example1"
	}
	res, err := c.Optimize(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %d local, %d macro, %d decomposed, %d general (%d vectorizable), model time %.1f µs\n",
		res.Name, res.Machine, res.Local, res.Macro, res.Decomposed, res.General, res.Vectorizable, res.ModelTimeUs)
	if res.Collectives != "" {
		fmt.Printf("collectives: %s\n", res.Collectives)
	}
}

// remoteBatch streams a batch run: NDJSON result lines to stdout (or
// -o FILE), the human summary — including the server-side snapshot
// diff for -from-snapshot re-runs — to stderr. Exits 1 when the
// server reports regressions against the snapshot baseline.
func remoteBatch(ctx context.Context, c *client.Client, cfg remoteConfig) {
	spec := cfg.spec
	spec.SaveAs = cfg.saveAs
	if cfg.fromSnapshot != "" {
		// A snapshot-named spec carries only the name; the server
		// resolves the recorded generation fields.
		spec = api.BatchSpec{Snapshot: cfg.fromSnapshot, SaveAs: cfg.saveAs}
	}

	// -o writes via a temp file renamed into place on success, so a
	// failed or interrupted run never truncates an existing results
	// file (a previous good NDJSON would otherwise be lost to an
	// empty one, and empty-vs-empty comparisons pass vacuously).
	var out *os.File = os.Stdout
	var tmpName string
	if cfg.outFile != "" {
		f, err := os.CreateTemp(filepath.Dir(cfg.outFile), ".resopt-*")
		if err != nil {
			fatal(err)
		}
		tmpName = f.Name()
		out = f
	}
	// fatal os.Exits (defers do not run), so failure paths remove the
	// temp file explicitly before exiting.
	fail := func(err error) {
		if tmpName != "" {
			out.Close()
			os.Remove(tmpName)
		}
		fatal(err)
	}
	enc := json.NewEncoder(out)
	sum, err := c.Batch(ctx, spec, func(l api.BatchLine) error { return enc.Encode(l) })
	if err != nil {
		fail(err)
	}
	if tmpName != "" {
		if err := out.Close(); err != nil {
			fail(err)
		}
		if err := os.Rename(tmpName, cfg.outFile); err != nil {
			fail(err)
		}
	}
	s := sum.Summary
	fmt.Fprintf(os.Stderr, "batch: %d scenarios, %d errors, communications [%d %d %d %d], model time %.0f µs\n",
		s.Scenarios, s.Errors, s.ClassTotals[0], s.ClassTotals[1], s.ClassTotals[2], s.ClassTotals[3], s.TotalModelTime)
	if s.Snapshot != "" {
		fmt.Fprintf(os.Stderr, "recorded server-side as snapshot %q\n", s.Snapshot)
	}
	if d := s.Diff; d != nil {
		fmt.Fprintf(os.Stderr, "diff vs %q: %d unchanged, %d changed (%d regressions), %d added, %d removed\n",
			d.Baseline, d.Unchanged, d.Changed, d.Regressions, d.Added, d.Removed)
		if d.Regressions > 0 {
			os.Exit(1)
		}
	}
}
