package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/cluster"
)

// remoteConfig is resopt's -remote mode: drive a resoptd daemon (or a
// comma-separated fleet of them) over the /v1 API with the Go client
// instead of optimizing in-process.
type remoteConfig struct {
	base                 string
	batch, snapshots     bool
	stats                bool
	clusterStats         bool
	lattice              string
	retries              int
	example, nestFile    string
	outFile              string
	saveAs, fromSnapshot string
	spec                 api.BatchSpec
	m                    int
}

// remoteFleet is the client-side view of one or more resoptd
// endpoints: a consistent-hash ring over the endpoint URLs routes
// each key to a stable endpoint (so repeat requests hit the same
// daemon's cache), and the remaining endpoints are the failover
// order. A single endpoint degenerates to "try it".
type remoteFleet struct {
	urls    []string
	clients map[string]*client.Client
	ring    *cluster.Ring
}

func newRemoteFleet(spec string, retries int) (*remoteFleet, error) {
	f := &remoteFleet{clients: map[string]*client.Client{}}
	for _, u := range strings.Split(spec, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		c, err := client.New(u, nil, client.WithRetry(retries))
		if err != nil {
			return nil, err
		}
		f.urls = append(f.urls, u)
		f.clients[u] = c
	}
	if len(f.urls) == 0 {
		return nil, fmt.Errorf("-remote: empty endpoint list")
	}
	f.ring = cluster.NewRing(f.urls, 0)
	return f, nil
}

// order returns every endpoint, the ring successors of key first —
// the shard map plus its failover tail. An empty key keeps the flag
// order (no affinity to exploit).
func (f *remoteFleet) order(key string) []*client.Client {
	urls := f.urls
	if key != "" {
		urls = f.ring.Successors(key, len(f.urls))
	}
	out := make([]*client.Client, 0, len(urls))
	for _, u := range urls {
		out = append(out, f.clients[u])
	}
	return out
}

// try runs fn against each endpoint in order until one answers. A
// typed api.Error is an answer — the daemon is alive and said no, so
// another endpoint would say the same — and only transport-level
// failures move on to the next endpoint.
func (f *remoteFleet) try(order []*client.Client, fn func(*client.Client) error) error {
	var lastErr error
	for _, c := range order {
		err := fn(c)
		if err == nil {
			return nil
		}
		var ae *api.Error
		if errors.As(err, &ae) {
			return err
		}
		fmt.Fprintf(os.Stderr, "resopt: %s unreachable: %v\n", c.BaseURL(), err)
		lastErr = err
	}
	return lastErr
}

func runRemote(cfg remoteConfig) {
	f, err := newRemoteFleet(cfg.base, cfg.retries)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	switch {
	case cfg.stats && cfg.clusterStats:
		remoteClusterStats(ctx, f)
	case cfg.stats:
		remoteStats(ctx, f)
	case cfg.snapshots:
		remoteSnapshots(ctx, f)
	case cfg.lattice != "":
		remoteLattice(ctx, f, cfg)
	case cfg.batch:
		remoteBatch(ctx, f, cfg)
	default:
		remoteOptimize(ctx, f, cfg)
	}
}

func remoteSnapshots(ctx context.Context, f *remoteFleet) {
	var snaps []api.SnapshotInfo
	err := f.try(f.order(""), func(c *client.Client) error {
		var err error
		snaps, err = c.Snapshots(ctx)
		return err
	})
	if err != nil {
		fatal(err)
	}
	if len(snaps) == 0 {
		fmt.Println("no snapshots stored")
		return
	}
	fmt.Printf("%-30s %10s %8s %14s  %s\n", "NAME", "SCENARIOS", "ERRORS", "MODEL µs", "RERUNNABLE")
	for _, s := range snaps {
		rerun := ""
		if s.Rerunnable {
			rerun = "yes"
		}
		fmt.Printf("%-30s %10d %8d %14.0f  %s\n", s.Name, s.Scenarios, s.Errors, s.TotalModelTime, rerun)
	}
}

// remoteStats prints the daemon's /v1/stats — and, for a clustered
// daemon, its node section: identity, ring, peer health and forward
// traffic, the fleet-level picture a lone stats body cannot give.
func remoteStats(ctx context.Context, f *remoteFleet) {
	var st *api.StatsResponse
	var from string
	err := f.try(f.order(""), func(c *client.Client) error {
		var err error
		st, err = c.Stats(ctx)
		from = c.BaseURL()
		return err
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: api %s, %d workers\n", from, st.Version, st.Workers)
	fmt.Printf("cache: plan %d/%d, kernel %d/%d, select %d/%d (hits/misses); disk plan %d/%d, kernel %d/%d\n",
		st.Cache.PlanHits, st.Cache.PlanMisses, st.Cache.KernelHits, st.Cache.KernelMisses,
		st.Cache.SelectHits, st.Cache.SelectMisses,
		st.Cache.DiskHits, st.Cache.DiskMisses, st.Cache.KernelDiskHits, st.Cache.KernelDiskMisses)
	fmt.Printf("requests: %d optimize, %d batch, %d lattice, %d jobs, %d rate-limited\n",
		st.Requests.Optimize, st.Requests.Batch, st.Requests.Lattice, st.Requests.Jobs, st.Requests.RateLimited)
	n := st.Node
	if n == nil {
		fmt.Println("cluster: standalone (no -cluster)")
		return
	}
	fmt.Printf("cluster: node %s, ring of %d, R=%d\n", n.ID, n.RingSize, n.Replicas)
	fmt.Printf("  forwards: %d out, %d in, %d fallbacks; peer plan hits %d, plans replicated %d\n",
		n.ForwardsOut, n.ForwardsIn, n.ForwardFallbacks, n.PeerPlanHits, n.PlansReplicated)
	for _, p := range n.Peers {
		state := "up"
		if !p.Up {
			state = fmt.Sprintf("DOWN (%d failures: %s)", p.Failures, p.LastErr)
		}
		fmt.Printf("  peer %-12s %-28s %s\n", p.Node, p.URL, state)
	}
}

// remoteClusterStats prints the fleet view from /v1/cluster/stats:
// one line per member (unreachable ones flagged) and the aggregated
// rollup. Any member can answer — the endpoint fans out server-side.
func remoteClusterStats(ctx context.Context, f *remoteFleet) {
	var cs *api.ClusterStatsResponse
	var from string
	err := f.try(f.order(""), func(c *client.Client) error {
		var err error
		cs, err = c.ClusterStats(ctx)
		from = c.BaseURL()
		return err
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet via %s (assembled by node %q): %d members, %d unreachable\n",
		from, cs.Node, cs.Rollup.Nodes, cs.Rollup.Unreachable)
	for _, m := range cs.Members {
		if m.Stats == nil {
			fmt.Printf("  %-12s %-28s UNREACHABLE (%s)\n", m.ID, m.URL, m.Error)
			continue
		}
		st := m.Stats
		fmt.Printf("  %-12s %-28s %d workers, %d optimize, %d batch, %d jobs; plan cache %d/%d\n",
			m.ID, m.URL, st.Workers, st.Requests.Optimize, st.Requests.Batch, st.Requests.Jobs,
			st.Cache.PlanHits, st.Cache.PlanMisses)
	}
	ru := cs.Rollup
	fmt.Printf("rollup: %d workers, %d optimize, %d batch, %d jobs, %d rate-limited\n",
		ru.Workers, ru.Requests.Optimize, ru.Requests.Batch, ru.Requests.Jobs, ru.Requests.RateLimited)
	fmt.Printf("rollup: plan hit rate %.1f%%, kernel hit rate %.1f%%; %d scenarios, engine total %.0f µs\n",
		100*ru.PlanHitRate, 100*ru.KernelHitRate, ru.Phases.Scenarios, ru.Phases.TotalUs)
	fmt.Printf("rollup: forwards %d out / %d in (%d fallbacks), peer plan hits %d, plans replicated %d\n",
		ru.ForwardsOut, ru.ForwardsIn, ru.ForwardFallbacks, ru.PeerPlanHits, ru.PlansReplicated)
}

func remoteOptimize(ctx context.Context, f *remoteFleet, cfg remoteConfig) {
	req := api.OptimizeRequest{
		M:               cfg.spec.M,
		NoMacro:         cfg.spec.NoMacro,
		NoDecomposition: cfg.spec.NoDecomposition,
	}
	switch {
	case cfg.example != "":
		req.Example = cfg.example
	case cfg.nestFile != "":
		src, err := os.ReadFile(cfg.nestFile)
		if err != nil {
			fatal(err)
		}
		req.Nest = string(src)
	default:
		req.Example = "example1"
	}
	// Shard by the nest itself: the same program always lands on the
	// same endpoint first, whose caches (and cluster routing) take it
	// from there.
	var res *api.OptimizeResponse
	err := f.try(f.order(req.Example+req.Nest), func(c *client.Client) error {
		var err error
		res, err = c.Optimize(ctx, req)
		return err
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %d local, %d macro, %d decomposed, %d general (%d vectorizable), model time %.1f µs\n",
		res.Name, res.Machine, res.Local, res.Macro, res.Decomposed, res.General, res.Vectorizable, res.ModelTimeUs)
	if res.Collectives != "" {
		fmt.Printf("collectives: %s\n", res.Collectives)
	}
	if res.Node != "" {
		fmt.Printf("answered by cluster node %s\n", res.Node)
	}
}

// remoteBatch streams a batch run: NDJSON result lines to stdout (or
// -o FILE), the human summary — including the server-side snapshot
// diff for -from-snapshot re-runs — to stderr. Exits 1 when the
// server reports regressions against the snapshot baseline. Endpoint
// failover happens only until the first line arrives; a stream that
// dies midway must not restart elsewhere and emit duplicate lines.
func remoteBatch(ctx context.Context, f *remoteFleet, cfg remoteConfig) {
	spec := cfg.spec
	spec.SaveAs = cfg.saveAs
	if cfg.fromSnapshot != "" {
		// A snapshot-named spec carries only the name; the server
		// resolves the recorded generation fields.
		spec = api.BatchSpec{Snapshot: cfg.fromSnapshot, SaveAs: cfg.saveAs}
	}

	// -o writes via a temp file renamed into place on success, so a
	// failed or interrupted run never truncates an existing results
	// file (a previous good NDJSON would otherwise be lost to an
	// empty one, and empty-vs-empty comparisons pass vacuously).
	var out *os.File = os.Stdout
	var tmpName string
	if cfg.outFile != "" {
		fl, err := os.CreateTemp(filepath.Dir(cfg.outFile), ".resopt-*")
		if err != nil {
			fatal(err)
		}
		tmpName = fl.Name()
		out = fl
	}
	// fatal os.Exits (defers do not run), so failure paths remove the
	// temp file explicitly before exiting.
	fail := func(err error) {
		if tmpName != "" {
			out.Close()
			os.Remove(tmpName)
		}
		fatal(err)
	}
	enc := json.NewEncoder(out)
	var sum *api.BatchSummary
	streaming := false
	err := f.try(f.order(spec.Snapshot+spec.SaveAs), func(c *client.Client) error {
		var err error
		sum, err = c.Batch(ctx, spec, func(l api.BatchLine) error {
			streaming = true
			return enc.Encode(l)
		})
		if err != nil && streaming {
			// Lines were already emitted; surface the failure instead of
			// replaying the suite on another endpoint.
			fail(err)
		}
		return err
	})
	if err != nil {
		fail(err)
	}
	if tmpName != "" {
		if err := out.Close(); err != nil {
			fail(err)
		}
		if err := os.Rename(tmpName, cfg.outFile); err != nil {
			fail(err)
		}
	}
	s := sum.Summary
	fmt.Fprintf(os.Stderr, "batch: %d scenarios, %d errors, communications [%d %d %d %d], model time %.0f µs\n",
		s.Scenarios, s.Errors, s.ClassTotals[0], s.ClassTotals[1], s.ClassTotals[2], s.ClassTotals[3], s.TotalModelTime)
	if s.Snapshot != "" {
		fmt.Fprintf(os.Stderr, "recorded server-side as snapshot %q\n", s.Snapshot)
	}
	if d := s.Diff; d != nil {
		fmt.Fprintf(os.Stderr, "diff vs %q: %d unchanged, %d changed (%d regressions), %d added, %d removed\n",
			d.Baseline, d.Unchanged, d.Changed, d.Regressions, d.Added, d.Removed)
		if d.Regressions > 0 {
			os.Exit(1)
		}
	}
}
