// Command resopt runs the paper's two-step residual-communication
// optimization on an affine loop nest and prints the mapping report:
// allocation matrices, local communications, macro-communications
// (with axis-alignment rotations) and decompositions.
//
//	resopt -example example1          # a built-in example nest
//	resopt -nest mynest.txt           # a nest in the DSL of nestlang
//	resopt -m 2                       # target grid dimension
//	resopt -list                      # list built-in examples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/nestlang"
)

func main() {
	example := flag.String("example", "", "built-in example name")
	nestFile := flag.String("nest", "", "path to a nest description file")
	m := flag.Int("m", 2, "dimension of the target virtual processor grid")
	list := flag.Bool("list", false, "list built-in examples")
	noMacro := flag.Bool("no-macro", false, "disable macro-communication detection")
	noDecomp := flag.Bool("no-decomp", false, "disable communication decomposition")
	flag.Parse()

	if *list {
		for _, p := range affine.AllExamples() {
			fmt.Println(p.Name)
		}
		return
	}

	var prog *affine.Program
	switch {
	case *nestFile != "":
		src, err := os.ReadFile(*nestFile)
		if err != nil {
			fatal(err)
		}
		prog, err = nestlang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	case *example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == *example {
				prog = p
			}
		}
		if prog == nil {
			fatal(fmt.Errorf("unknown example %q (try -list)", *example))
		}
	default:
		prog = affine.PaperExample1()
	}

	res, err := core.Optimize(prog, *m, core.Options{
		NoMacro:         *noMacro,
		NoDecomposition: *noDecomp,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.String())
	fmt.Println()
	fmt.Print(res.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resopt:", err)
	os.Exit(1)
}
