// Command resopt runs the paper's two-step residual-communication
// optimization on an affine loop nest and prints the mapping report:
// allocation matrices, local communications, macro-communications
// (with axis-alignment rotations) and decompositions.
//
//	resopt -example example1          # a built-in example nest
//	resopt -nest mynest.txt           # a nest in the DSL of nestlang
//	resopt -m 2                       # target grid dimension
//	resopt -list                      # list built-in examples
//
// Batch mode runs the concurrent optimization engine over a
// generated scenario suite (built-in examples plus random nests,
// crossed with machine models and distributions) and prints the
// aggregated report:
//
//	resopt -batch                     # default 100-scenario suite
//	resopt -batch -random 40 -seed 3  # bigger suite, different nests
//	resopt -batch -workers 1          # sequential baseline
//	resopt -batch -no-cache           # memo-cache ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nestlang"
	"repro/internal/scenarios"
)

func main() {
	example := flag.String("example", "", "built-in example name")
	nestFile := flag.String("nest", "", "path to a nest description file")
	m := flag.Int("m", 2, "dimension of the target virtual processor grid")
	list := flag.Bool("list", false, "list built-in examples")
	noMacro := flag.Bool("no-macro", false, "disable macro-communication detection")
	noDecomp := flag.Bool("no-decomp", false, "disable communication decomposition")
	batch := flag.Bool("batch", false, "run the batch engine over a generated scenario suite")
	random := flag.Int("random", 0, "batch: number of random nests (0: default)")
	seed := flag.Int64("seed", 0, "batch: scenario generation seed (0: default)")
	workers := flag.Int("workers", 0, "batch: worker pool size (0: GOMAXPROCS)")
	noCache := flag.Bool("no-cache", false, "batch: disable the memo cache")
	flag.Parse()

	if *batch {
		suite := scenarios.Generate(scenarios.Config{
			Seed:   *seed,
			Random: *random,
			M:      *m,
			Opts:   core.Options{NoMacro: *noMacro, NoDecomposition: *noDecomp},
		})
		res := engine.Run(suite, engine.Options{Workers: *workers, DisableCache: *noCache})
		fmt.Print(res.Report())
		return
	}

	if *list {
		for _, p := range affine.AllExamples() {
			fmt.Println(p.Name)
		}
		return
	}

	var prog *affine.Program
	switch {
	case *nestFile != "":
		src, err := os.ReadFile(*nestFile)
		if err != nil {
			fatal(err)
		}
		prog, err = nestlang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	case *example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == *example {
				prog = p
			}
		}
		if prog == nil {
			fatal(fmt.Errorf("unknown example %q (try -list)", *example))
		}
	default:
		prog = affine.PaperExample1()
	}

	res, err := core.Optimize(prog, *m, core.Options{
		NoMacro:         *noMacro,
		NoDecomposition: *noDecomp,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.String())
	fmt.Println()
	fmt.Print(res.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resopt:", err)
	os.Exit(1)
}
