// Command resopt runs the paper's two-step residual-communication
// optimization on an affine loop nest and prints the mapping report:
// allocation matrices, local communications, macro-communications
// (with axis-alignment rotations) and decompositions.
//
//	resopt -example example1          # a built-in example nest
//	resopt -nest mynest.txt           # a nest in the DSL of nestlang
//	resopt -m 2                       # target grid dimension
//	resopt -list                      # list built-in examples
//
// Batch mode runs the concurrent optimization engine over a
// generated scenario suite (built-in examples plus random nests,
// crossed with machine models and distributions) and prints the
// aggregated report:
//
//	resopt -batch                     # default 100-scenario suite
//	resopt -batch -random 40 -seed 3  # bigger suite, different nests
//	resopt -batch -deep 10 -m 3 -skew # deep nests, m=3, skewed grids
//	resopt -batch -workers 1          # sequential baseline
//	resopt -batch -no-cache           # memo-cache ablation
//
// Lattice mode answers the capacity-planning question — how does the
// optimized nest price across machine sizes and payload scales, and
// where does the best collective schedule switch? The nest is
// compiled once (the structural phase); every grid point is then
// priced by cheap template evaluation, so wide sweeps cost
// milliseconds instead of one full optimization per point:
//
//	resopt -lattice "mesh{4..64}x{2..64}:bytes=1k..16M" -example matmul
//	resopt -lattice "fattree{32..256}" -nest mynest.txt
//	resopt -remote http://localhost:8080 -lattice "mesh{4..32}x8:bytes=1k..32M"
//
// Rows stream as NDJSON to stdout (machines in declaration order,
// payloads ascending), switch points flagged in place; the summary
// goes to stderr.
//
// The persistent plan store makes repeated sweeps
// compile-once/reuse-many across processes, and snapshots make them
// diffable across commits and re-runnable by name:
//
//	resopt -batch -store ./plans                  # warm the store
//	resopt -batch -store ./plans                  # ≥90% served from disk
//	resopt -batch -emit json -o after.json        # persist the results
//	resopt -batch -store ./plans -snapshot after  # ... or into the store
//	resopt -batch -store ./plans -from-snapshot after  # re-run + diff it
//	resopt -diff before.json after.json           # exit 1 on regressions
//	resopt -store ./plans -gc -gc-age 720h        # collect stale plans
//
// Remote mode drives a resoptd daemon over its /v1 API with the Go
// client instead of optimizing locally:
//
//	resopt -remote http://localhost:8080 -example matmul
//	resopt -remote http://localhost:8080 -batch -random 20 -o lines.ndjson
//	resopt -remote http://localhost:8080 -batch -snapshot nightly
//	resopt -remote http://localhost:8080 -batch -from-snapshot nightly
//	resopt -remote http://localhost:8080 -snapshots
//	resopt -remote http://localhost:8080 -stats
//	resopt -remote http://localhost:8080 -stats -cluster
//
// -remote also takes a comma-separated endpoint list for a resoptd
// cluster: requests are routed to a consistent endpoint per nest (the
// client-side shard map, so repeat requests hit the same daemon's
// cache) and fail over to the remaining endpoints when it is down.
// Transient failures (429, 502/503/504, connection errors) are
// retried with backoff, bounded by -retries:
//
//	resopt -remote http://hostA:8080,http://hostB:8080 -example matmul
//	resopt -remote http://hostA:8080,http://hostB:8080 -stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/affine"
	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nestlang"
	"repro/internal/scenarios"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	example := flag.String("example", "", "built-in example name")
	nestFile := flag.String("nest", "", "path to a nest description file")
	m := flag.Int("m", 2, "dimension of the target virtual processor grid")
	list := flag.Bool("list", false, "list built-in examples")
	noMacro := flag.Bool("no-macro", false, "disable macro-communication detection")
	noDecomp := flag.Bool("no-decomp", false, "disable communication decomposition")
	batch := flag.Bool("batch", false, "run the batch engine over a generated scenario suite")
	lattice := flag.String("lattice", "", `sweep the nest over a capacity-planning grid (e.g. "mesh{4..64}x{2..64}:bytes=1k..16M"): compiled once, every point priced by template evaluation; NDJSON rows to stdout, summary to stderr`)
	random := flag.Int("random", 0, "batch: number of random nests (0: default)")
	deep := flag.Int("deep", 0, "batch: number of deep (depth 4-5) random nests")
	skew := flag.Bool("skew", false, "batch: add skewed machine grids to the suite")
	bigMeshes := flag.Bool("big-meshes", false, "batch: add the 64x2/2x64/16x16 meshes where collective tree shape matters")
	seed := flag.Int64("seed", 0, "batch: scenario generation seed (0: default)")
	workers := flag.Int("workers", 0, "batch: worker pool size (0: GOMAXPROCS)")
	noCache := flag.Bool("no-cache", false, "batch: disable the memo cache")
	cacheCap := flag.Int("cache-cap", 0, "batch: in-memory cache entry cap (0: default, <0: unbounded)")
	storeDir := flag.String("store", "", "directory of the persistent plan store")
	snapshot := flag.String("snapshot", "", "batch: save the results as a named snapshot (in the -store, or remotely)")
	fromSnapshot := flag.String("from-snapshot", "", "batch: re-run the suite recorded under this snapshot name and diff against it")
	emit := flag.String("emit", "", "batch: also emit the results as \"json\" or \"csv\"")
	outFile := flag.String("o", "", "batch: write the -emit output (or remote NDJSON lines) to this file (default stdout)")
	diff := flag.Bool("diff", false, "compare two snapshots (args: paths, or names with -store); exit 1 on regressions")
	remote := flag.String("remote", "", "drive the resoptd daemon at this base URL over /v1 instead of optimizing locally; a comma-separated list shards and fails over across a cluster")
	snapshots := flag.Bool("snapshots", false, "remote: list the daemon's stored snapshots")
	stats := flag.Bool("stats", false, "remote: print the daemon's /v1/stats, including its cluster node view")
	clusterStats := flag.Bool("cluster", false, "remote -stats: print the fleet-wide /v1/cluster/stats aggregation instead (per-member snapshots + rollup)")
	retries := flag.Int("retries", 2, "remote: retry budget for transient failures (429, 502/503/504, connection errors; 0: no retries)")
	gc := flag.Bool("gc", false, "store: sweep the plan tier (needs -store and -gc-age and/or -gc-keep)")
	gcAge := flag.Duration("gc-age", 0, "gc: remove plans unused for longer than this (0: no age limit)")
	gcKeep := flag.Int("gc-keep", 0, "gc: keep at most this many plans, least recently used removed first (0: no count limit)")
	gcDryRun := flag.Bool("gc-dry-run", false, "gc: report what would be removed without removing it")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("resopt"))
		return
	}

	if *diff {
		runDiff(*storeDir, flag.Args())
		return
	}

	if *gc {
		runGC(*storeDir, store.GCOptions{MaxAge: *gcAge, MaxPlans: *gcKeep, DryRun: *gcDryRun})
		return
	}

	if *list {
		for _, p := range affine.AllExamples() {
			fmt.Println(p.Name)
		}
		return
	}

	if *remote != "" {
		runRemote(remoteConfig{
			base:         *remote,
			batch:        *batch,
			lattice:      *lattice,
			snapshots:    *snapshots,
			stats:        *stats,
			clusterStats: *clusterStats,
			retries:      *retries,
			example:      *example,
			nestFile:     *nestFile,
			outFile:      *outFile,
			saveAs:       *snapshot,
			fromSnapshot: *fromSnapshot,
			spec: api.BatchSpec{
				Seed:            *seed,
				Random:          *random,
				Deep:            *deep,
				Skew:            *skew,
				BigMeshes:       *bigMeshes,
				M:               *m,
				NoMacro:         *noMacro,
				NoDecomposition: *noDecomp,
			},
			m: *m,
		})
		return
	}

	if *lattice != "" {
		runLattice(latticeConfig{
			grid:     *lattice,
			example:  *example,
			nestFile: *nestFile,
			m:        *m,
			noMacro:  *noMacro,
			noDecomp: *noDecomp,
			storeDir: *storeDir,
		})
		return
	}

	if *batch {
		runBatch(batchConfig{
			spec: api.BatchSpec{
				Seed:            *seed,
				Random:          *random,
				Deep:            *deep,
				Skew:            *skew,
				BigMeshes:       *bigMeshes,
				M:               *m,
				NoMacro:         *noMacro,
				NoDecomposition: *noDecomp,
			},
			workers:      *workers,
			noCache:      *noCache,
			cacheCap:     *cacheCap,
			storeDir:     *storeDir,
			snapshot:     *snapshot,
			fromSnapshot: *fromSnapshot,
			emit:         *emit,
			outFile:      *outFile,
		})
		return
	}

	var prog *affine.Program
	switch {
	case *nestFile != "":
		src, err := os.ReadFile(*nestFile)
		if err != nil {
			fatal(err)
		}
		prog, err = nestlang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	case *example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == *example {
				prog = p
			}
		}
		if prog == nil {
			fatal(fmt.Errorf("unknown example %q (try -list)", *example))
		}
	default:
		prog = affine.PaperExample1()
	}

	res, err := core.Optimize(prog, *m, core.Options{
		NoMacro:         *noMacro,
		NoDecomposition: *noDecomp,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.String())
	fmt.Println()
	fmt.Print(res.Report())
}

type batchConfig struct {
	spec                   api.BatchSpec
	workers                int
	noCache                bool
	cacheCap               int
	storeDir               string
	snapshot, fromSnapshot string
	emit, outFile          string
}

func runBatch(cfg batchConfig) {
	// Flag validation first: a sweep can take minutes, so a typo must
	// fail before the run, not discard its results after.
	switch cfg.emit {
	case "", "json", "csv":
	default:
		fatal(fmt.Errorf("unknown -emit format %q (want json or csv)", cfg.emit))
	}
	if cfg.snapshot != "" && cfg.storeDir == "" {
		fatal(fmt.Errorf("-snapshot requires -store"))
	}
	if cfg.fromSnapshot != "" && cfg.storeDir == "" {
		fatal(fmt.Errorf("-from-snapshot requires -store (or -remote)"))
	}
	if cfg.outFile != "" && cfg.emit == "" {
		fatal(fmt.Errorf("-o requires -emit json|csv"))
	}
	if cfg.noCache && cfg.storeDir != "" {
		// The disk tier hangs off the memory cache (memory → disk →
		// compute); without the cache nothing would be read or
		// persisted, so fail loudly instead of silently skipping it.
		fatal(fmt.Errorf("-no-cache disables the plan cache the store extends; drop -store or -no-cache"))
	}
	var out *os.File
	if cfg.emit != "" && cfg.outFile != "" {
		f, err := os.Create(cfg.outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	opts := engine.Options{Workers: cfg.workers, DisableCache: cfg.noCache, CacheCap: cfg.cacheCap}
	var st *store.Store
	if cfg.storeDir != "" {
		var err error
		st, err = store.Open(cfg.storeDir)
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}

	// Resolve the suite spec: -from-snapshot replays the spec recorded
	// in the store, exactly like the server's snapshot resolver.
	spec := cfg.spec
	var baseline *store.Snapshot
	if cfg.fromSnapshot != "" {
		snap, err := st.LoadSnapshot(cfg.fromSnapshot)
		if err != nil {
			fatal(err)
		}
		if snap.Spec == nil {
			fatal(fmt.Errorf("snapshot %q predates spec recording and cannot be re-run by name", cfg.fromSnapshot))
		}
		baseline = snap
		spec = *snap.Spec
		spec.Snapshot, spec.SaveAs = "", ""
	}
	suite := scenarios.Generate(server.SpecConfig(spec))
	res := engine.Run(suite, opts)
	// When the snapshot itself goes to stdout, the human report moves
	// to stderr so the emitted stream stays machine-parseable.
	report := os.Stdout
	if cfg.emit != "" && cfg.outFile == "" {
		report = os.Stderr
	}
	fmt.Fprint(report, res.Report())

	snap := store.Take(res)
	snap.Spec = &spec
	if cfg.snapshot != "" {
		path, err := st.SaveSnapshot(cfg.snapshot, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(report, "snapshot saved to %s\n", path)
	}
	if cfg.emit != "" {
		var w io.Writer = os.Stdout
		if out != nil {
			w = out
		}
		var err error
		if cfg.emit == "json" {
			err = snap.WriteJSON(w)
		} else {
			err = snap.WriteCSV(w)
		}
		if err != nil {
			fatal(err)
		}
	}
	if baseline != nil {
		d := store.Compare(baseline, snap)
		fmt.Fprint(report, d.Report())
		if d.Regressions > 0 {
			os.Exit(1)
		}
	}
}

// runGC sweeps the plan store.
func runGC(storeDir string, opts store.GCOptions) {
	if storeDir == "" {
		fatal(fmt.Errorf("-gc requires -store"))
	}
	if opts.MaxAge <= 0 && opts.MaxPlans <= 0 {
		fatal(fmt.Errorf("-gc needs -gc-age and/or -gc-keep (it would remove nothing)"))
	}
	st, err := store.Open(storeDir)
	if err != nil {
		fatal(err)
	}
	res, err := st.GC(opts)
	if err != nil {
		fatal(err)
	}
	mode := ""
	if opts.DryRun {
		mode = " (dry run)"
	}
	fmt.Printf("gc%s: scanned %d plans, removed %d (%d aged out, %d over LRU cap, %d stale temp), kept %d, freed %d bytes\n",
		mode, res.Scanned, res.Removed(), res.RemovedAge, res.RemovedLRU, res.RemovedTemp, res.Kept, res.BytesFreed)
	for _, w := range st.Warnings() {
		fmt.Fprintln(os.Stderr, "resopt: gc warning:", w)
	}
}

// runDiff loads two snapshots — file paths, or names inside the
// -store directory — and reports their scenario-by-scenario diff.
func runDiff(storeDir string, args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("-diff needs exactly two snapshot arguments, got %d", len(args)))
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir)
		if err != nil {
			fatal(err)
		}
	}
	load := func(arg string) *store.Snapshot {
		if _, err := os.Stat(arg); err == nil {
			s, err := store.ReadSnapshot(arg)
			if err != nil {
				fatal(err)
			}
			return s
		}
		if st != nil {
			s, err := st.LoadSnapshot(arg)
			if err != nil {
				fatal(err)
			}
			return s
		}
		fatal(fmt.Errorf("snapshot %q: no such file (use -store to resolve names)", arg))
		return nil
	}
	d := store.Compare(load(args[0]), load(args[1]))
	fmt.Print(d.Report())
	if d.Regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	// Remote failures carry the server-side trace ID: print it so the
	// failure can be looked up under /debug/traces/{id} on the daemon's
	// ops listener.
	var ae *api.Error
	if errors.As(err, &ae) && ae.TraceID != "" {
		fmt.Fprintf(os.Stderr, "resopt: %v [trace %s]\n", err, ae.TraceID)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "resopt:", err)
	os.Exit(1)
}
