package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/affine"
	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/engine"
	"repro/internal/nestlang"
	"repro/internal/scenarios"
	"repro/internal/store"
)

// latticeConfig is resopt's -lattice mode run locally: one nest,
// compiled once through the engine's compiled-plan tier, priced at
// every point of a capacity-planning grid.
type latticeConfig struct {
	grid              string
	example, nestFile string
	m                 int
	noMacro, noDecomp bool
	storeDir          string
}

func runLattice(cfg latticeConfig) {
	grid, err := compiled.ParseGrid(cfg.grid)
	if err != nil {
		fatal(err)
	}
	var prog *affine.Program
	switch {
	case cfg.nestFile != "":
		src, err := os.ReadFile(cfg.nestFile)
		if err != nil {
			fatal(err)
		}
		prog, err = nestlang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	case cfg.example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == cfg.example {
				prog = p
			}
		}
		if prog == nil {
			fatal(fmt.Errorf("unknown example %q (try -list)", cfg.example))
		}
	default:
		prog = affine.PaperExample1()
	}
	sc := &scenarios.Scenario{
		Name:      prog.Name,
		Program:   prog,
		M:         cfg.m,
		Opts:      core.Options{NoMacro: cfg.noMacro, NoDecomposition: cfg.noDecomp},
		Machine:   grid.Machines[0],
		Dist:      distrib.Dist2D{D0: distrib.Block{}, D1: distrib.Block{}},
		N:         16,
		ElemBytes: 64,
	}
	opts := engine.Options{Workers: 1}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}
	s := engine.NewSession(opts)
	defer s.Close()
	art := s.CompiledArtifact(context.Background(), sc)
	if art.Err != "" {
		fatal(fmt.Errorf("optimization failed: %s", art.Err))
	}
	rows := grid.Sweep(art, s.Pricer(), sc.Dist, sc.N)
	enc := json.NewEncoder(os.Stdout)
	switches := 0
	for _, row := range rows {
		if row.Switched {
			switches++
		}
		enc.Encode(latticeRowWire(row))
	}
	fmt.Fprintf(os.Stderr, "lattice: %s over %s: %d points on %d machines, %d switch points\n",
		sc.Name, cfg.grid, len(rows), len(grid.Machines), switches)
}

// latticeRowWire renders a sweep row in the /v1/lattice wire shape, so
// local and remote lattice output are interchangeable downstream.
func latticeRowWire(row compiled.SweepRow) api.LatticeRow {
	return api.LatticeRow{
		Machine:      row.Machine.String(),
		ElemBytes:    row.ElemBytes,
		Classes:      row.Point.Classes,
		Vectorizable: row.Point.Vectorizable,
		ModelTimeUs:  row.Point.ModelTime,
		Collectives:  row.Point.Collectives,
		Switched:     row.Switched,
		SwitchedFrom: row.SwitchedFrom,
	}
}

// remoteLattice streams a lattice sweep from a resoptd daemon: NDJSON
// rows to stdout, the human summary to stderr. Like remoteBatch,
// endpoint failover stops once the first row arrives — a stream that
// dies midway must not restart elsewhere and emit duplicate rows.
func remoteLattice(ctx context.Context, f *remoteFleet, cfg remoteConfig) {
	req := api.LatticeRequest{
		Grid:            cfg.lattice,
		M:               cfg.spec.M,
		NoMacro:         cfg.spec.NoMacro,
		NoDecomposition: cfg.spec.NoDecomposition,
	}
	switch {
	case cfg.example != "":
		req.Example = cfg.example
	case cfg.nestFile != "":
		src, err := os.ReadFile(cfg.nestFile)
		if err != nil {
			fatal(err)
		}
		req.Nest = string(src)
	default:
		req.Example = "example1"
	}
	enc := json.NewEncoder(os.Stdout)
	var sum *api.LatticeSummary
	streaming := false
	// Shard by nest + grid: a repeat of the same sweep lands on the
	// endpoint whose compiled-artifact cache is already warm.
	err := f.try(f.order(req.Example+req.Nest+req.Grid), func(c *client.Client) error {
		var err error
		sum, err = c.Lattice(ctx, req, func(row api.LatticeRow) error {
			streaming = true
			return enc.Encode(row)
		})
		if err != nil && streaming {
			fatal(err)
		}
		return err
	})
	if err != nil {
		fatal(err)
	}
	s := sum.Summary
	fmt.Fprintf(os.Stderr, "lattice: %s over %s: %d points on %d machines, %d switch points\n",
		s.Name, s.Grid, s.Points, s.Machines, s.Switches)
}
