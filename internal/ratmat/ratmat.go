// Package ratmat implements exact dense rational matrices on top of
// math/big.Rat. It complements intmat with the operations the paper
// needs over Q: inverses, one-sided pseudo-inverses (appendix §9.2)
// and the general solution of the matrix equation X·F = S (Lemma 2).
package ratmat

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/intmat"
)

// Mat is a dense rows×cols rational matrix.
type Mat struct {
	rows, cols int
	a          []*big.Rat // row-major
}

// Zero returns the rows×cols zero matrix.
func Zero(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("ratmat: negative dimension")
	}
	m := &Mat{rows: rows, cols: cols, a: make([]*big.Rat, rows*cols)}
	for i := range m.a {
		m.a[i] = new(big.Rat)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Mat {
	m := Zero(n, n)
	for i := 0; i < n; i++ {
		m.a[i*n+i].SetInt64(1)
	}
	return m
}

// FromInt converts an integer matrix to a rational one.
func FromInt(im *intmat.Mat) *Mat {
	m := Zero(im.Rows(), im.Cols())
	for i := 0; i < im.Rows(); i++ {
		for j := 0; j < im.Cols(); j++ {
			m.Set(i, j, new(big.Rat).SetInt64(im.At(i, j)))
		}
	}
	return m
}

// New builds a matrix from int64 numerators (denominator 1), row-major.
func New(rows, cols int, vals ...int64) *Mat {
	return FromInt(intmat.New(rows, cols, vals...))
}

// Rows returns the row count.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Mat) Cols() int { return m.cols }

// At returns the entry at (i, j). The returned value is shared; use
// Set to modify entries.
func (m *Mat) At(i, j int) *big.Rat {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set stores a copy of v at (i, j).
func (m *Mat) Set(i, j int, v *big.Rat) {
	m.check(i, j)
	m.a[i*m.cols+j] = new(big.Rat).Set(v)
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("ratmat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := Zero(m.rows, m.cols)
	for i := range m.a {
		c.a[i].Set(m.a[i])
	}
	return c
}

// Equal reports shape and entry equality.
func (m *Mat) Equal(n *Mat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if m.a[i].Cmp(n.a[i]) != 0 {
			return false
		}
	}
	return true
}

// IsZero reports whether all entries are zero.
func (m *Mat) IsZero() bool {
	for _, v := range m.a {
		if v.Sign() != 0 {
			return false
		}
	}
	return true
}

// IsIdentity reports whether m is the identity.
func (m *Mat) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	one := big.NewRat(1, 1)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.At(i, j)
			if i == j {
				if v.Cmp(one) != 0 {
					return false
				}
			} else if v.Sign() != 0 {
				return false
			}
		}
	}
	return true
}

// IsInteger reports whether every entry has denominator 1.
func (m *Mat) IsInteger() bool {
	for _, v := range m.a {
		if !v.IsInt() {
			return false
		}
	}
	return true
}

// ToInt converts to an integer matrix; the second result is false if
// some entry is not an integer or overflows int64.
func (m *Mat) ToInt() (*intmat.Mat, bool) {
	out := intmat.Zero(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.At(i, j)
			if !v.IsInt() || !v.Num().IsInt64() {
				return nil, false
			}
			out.Set(i, j, v.Num().Int64())
		}
	}
	return out, true
}

// ScaledInt clears denominators: it returns an integer matrix N and a
// positive scalar λ such that m = N / λ, with λ the lcm of all entry
// denominators.
func (m *Mat) ScaledInt() (*intmat.Mat, int64) {
	l := big.NewInt(1)
	g := new(big.Int)
	for _, v := range m.a {
		d := v.Denom()
		g.GCD(nil, nil, l, d)
		l.Div(l, g)
		l.Mul(l, d)
	}
	out := intmat.Zero(m.rows, m.cols)
	t := new(big.Int)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.At(i, j)
			t.Div(l, v.Denom())
			t.Mul(t, v.Num())
			if !t.IsInt64() {
				panic("ratmat: ScaledInt overflows int64")
			}
			out.Set(i, j, t.Int64())
		}
	}
	if !l.IsInt64() {
		panic("ratmat: ScaledInt denominator lcm overflows int64")
	}
	return out, l.Int64()
}

// Transpose returns the transpose.
func (m *Mat) Transpose() *Mat {
	t := Zero(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// String renders the matrix like "[1 2/3; 0 1]".
func (m *Mat) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.At(i, j).RatString())
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Add returns m + n.
func Add(m, n *Mat) *Mat {
	if m.rows != n.rows || m.cols != n.cols {
		panic("ratmat: Add shape mismatch")
	}
	r := Zero(m.rows, m.cols)
	for i := range r.a {
		r.a[i].Add(m.a[i], n.a[i])
	}
	return r
}

// Sub returns m − n.
func Sub(m, n *Mat) *Mat {
	if m.rows != n.rows || m.cols != n.cols {
		panic("ratmat: Sub shape mismatch")
	}
	r := Zero(m.rows, m.cols)
	for i := range r.a {
		r.a[i].Sub(m.a[i], n.a[i])
	}
	return r
}

// Mul returns m·n.
func Mul(m, n *Mat) *Mat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("ratmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	r := Zero(m.rows, n.cols)
	t := new(big.Rat)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < n.cols; j++ {
			acc := r.a[i*r.cols+j]
			for k := 0; k < m.cols; k++ {
				t.Mul(m.At(i, k), n.At(k, j))
				acc.Add(acc, t)
			}
		}
	}
	return r
}

// MulAll multiplies one or more matrices left to right.
func MulAll(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("ratmat: MulAll of nothing")
	}
	r := ms[0]
	for _, m := range ms[1:] {
		r = Mul(r, m)
	}
	return r
}

// Scale returns k·m.
func Scale(k *big.Rat, m *Mat) *Mat {
	r := Zero(m.rows, m.cols)
	for i := range r.a {
		r.a[i].Mul(k, m.a[i])
	}
	return r
}

// Rank returns the rank of m (exact Gaussian elimination over Q).
func (m *Mat) Rank() int {
	w := m.Clone()
	rank := 0
	for col := 0; col < w.cols && rank < w.rows; col++ {
		piv := -1
		for r := rank; r < w.rows; r++ {
			if w.At(r, col).Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			continue
		}
		// swap rows rank, piv
		for c := 0; c < w.cols; c++ {
			a, b := w.At(rank, c), w.At(piv, c)
			w.a[rank*w.cols+c] = b
			w.a[piv*w.cols+c] = a
		}
		p := w.At(rank, col)
		t := new(big.Rat)
		for r := rank + 1; r < w.rows; r++ {
			f := new(big.Rat).Quo(w.At(r, col), p)
			if f.Sign() == 0 {
				continue
			}
			for c := col; c < w.cols; c++ {
				t.Mul(f, w.At(rank, c))
				w.a[r*w.cols+c].Sub(w.At(r, c), t)
			}
		}
		rank++
	}
	return rank
}

// FullRank reports rank(m) == min(rows, cols).
func (m *Mat) FullRank() bool {
	want := m.rows
	if m.cols < want {
		want = m.cols
	}
	return m.Rank() == want
}

// Inverse returns m⁻¹ for square non-singular m; the second result is
// false when m is singular.
func (m *Mat) Inverse() (*Mat, bool) {
	if m.rows != m.cols {
		panic("ratmat: Inverse of non-square matrix")
	}
	n := m.rows
	w := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if w.At(r, col).Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		for c := 0; c < n; c++ {
			a, b := w.At(col, c), w.At(piv, c)
			w.a[col*n+c] = b
			w.a[piv*n+c] = a
			a, b = inv.At(col, c), inv.At(piv, c)
			inv.a[col*n+c] = b
			inv.a[piv*n+c] = a
		}
		p := new(big.Rat).Set(w.At(col, col))
		for c := 0; c < n; c++ {
			w.a[col*n+c].Quo(w.At(col, c), p)
			inv.a[col*n+c].Quo(inv.At(col, c), p)
		}
		t := new(big.Rat)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := new(big.Rat).Set(w.At(r, col))
			if f.Sign() == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				t.Mul(f, w.At(col, c))
				w.a[r*n+c].Sub(w.At(r, c), t)
				t.Mul(f, inv.At(col, c))
				inv.a[r*n+c].Sub(inv.At(r, c), t)
			}
		}
	}
	return inv, true
}
