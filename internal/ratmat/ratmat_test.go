package ratmat

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/intmat"
)

func TestBasicOps(t *testing.T) {
	a := New(2, 2, 1, 2, 3, 4)
	b := New(2, 2, 5, 6, 7, 8)
	if !Add(a, b).Equal(New(2, 2, 6, 8, 10, 12)) {
		t.Fatal("Add wrong")
	}
	if !Sub(b, a).Equal(New(2, 2, 4, 4, 4, 4)) {
		t.Fatal("Sub wrong")
	}
	if !Mul(a, b).Equal(New(2, 2, 19, 22, 43, 50)) {
		t.Fatal("Mul wrong")
	}
	if !Mul(a, Identity(2)).Equal(a) {
		t.Fatal("identity fails")
	}
	half := big.NewRat(1, 2)
	s := Scale(half, a)
	if s.At(0, 0).Cmp(big.NewRat(1, 2)) != 0 || s.At(1, 1).Cmp(big.NewRat(2, 1)) != 0 {
		t.Fatalf("Scale wrong: %v", s)
	}
}

func TestInverse(t *testing.T) {
	m := New(2, 2, 1, 2, 3, 7)
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("claimed singular")
	}
	if !Mul(m, inv).IsIdentity() || !Mul(inv, m).IsIdentity() {
		t.Fatalf("bad inverse %v", inv)
	}
	if _, ok := New(2, 2, 1, 2, 2, 4).Inverse(); ok {
		t.Fatal("inverted singular matrix")
	}
}

func TestInverseRational(t *testing.T) {
	m := New(2, 2, 2, 0, 0, 4)
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("singular?")
	}
	if inv.At(0, 0).Cmp(big.NewRat(1, 2)) != 0 || inv.At(1, 1).Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("inverse = %v", inv)
	}
	if inv.IsInteger() {
		t.Fatal("IsInteger wrong")
	}
	if _, ok := inv.ToInt(); ok {
		t.Fatal("ToInt should fail")
	}
	n, lam := inv.ScaledInt()
	if lam != 4 || !n.Equal(intmat.New(2, 2, 2, 0, 0, 1)) {
		t.Fatalf("ScaledInt = %v / %d", n, lam)
	}
}

func TestRank(t *testing.T) {
	if r := New(2, 2, 1, 2, 2, 4).Rank(); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	if !Identity(3).FullRank() {
		t.Fatal("identity not full rank")
	}
	if Zero(2, 2).Rank() != 0 {
		t.Fatal("zero rank wrong")
	}
}

func TestPseudoInverseSquare(t *testing.T) {
	f := intmat.New(2, 2, 1, 2, 3, 7)
	fi, ok := PseudoInverse(f)
	if !ok {
		t.Fatal("failed")
	}
	if !Mul(fi, FromInt(f)).IsIdentity() {
		t.Fatal("square pseudo-inverse is not inverse")
	}
}

func TestPseudoInverseFlat(t *testing.T) {
	// flat u<v: F·F⁻ = Id_u
	f := intmat.New(2, 3, 1, 0, 1, 0, 1, 1)
	fi, ok := PseudoInverse(f)
	if !ok {
		t.Fatal("failed")
	}
	if !Mul(FromInt(f), fi).IsIdentity() {
		t.Fatalf("F·F⁻ = %v", Mul(FromInt(f), fi))
	}
}

func TestPseudoInverseNarrow(t *testing.T) {
	// narrow u>v: F⁻·F = Id_v
	f := intmat.New(3, 2, 1, 0, 0, 1, 1, 1)
	fi, ok := PseudoInverse(f)
	if !ok {
		t.Fatal("failed")
	}
	if !Mul(fi, FromInt(f)).IsIdentity() {
		t.Fatalf("F⁻·F = %v", Mul(fi, FromInt(f)))
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	if _, ok := PseudoInverse(intmat.New(2, 3, 1, 1, 1, 2, 2, 2)); ok {
		t.Fatal("pseudo-inverse of rank-deficient matrix")
	}
}

func TestPseudoInverseProperty(t *testing.T) {
	// F·F⁻·F = F for all full-rank F (both orientations).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		f := intmat.RandFullRank(rng, rows, cols, 4)
		fi, ok := PseudoInverse(f)
		if !ok {
			t.Fatalf("full-rank pseudo-inverse failed for %v", f)
		}
		F := FromInt(f)
		if !Mul(Mul(F, fi), F).Equal(F) {
			t.Fatalf("F·F⁻·F != F for %v", f)
		}
	}
}

func TestSolveXF(t *testing.T) {
	// Solvable instance: S = X·F by construction.
	f := intmat.New(3, 2, 1, 0, 0, 1, 1, 1) // 3x2 full column rank
	x := New(2, 3, 1, 2, 0, 0, 1, 3)
	s := Mul(x, FromInt(f))
	x0, proj, ok := SolveXF(s, f)
	if !ok {
		t.Fatal("solvable system reported unsolvable")
	}
	if !Mul(x0, FromInt(f)).Equal(s) {
		t.Fatalf("X0·F = %v != %v", Mul(x0, FromInt(f)), s)
	}
	// any Y·proj added stays a solution
	y := New(2, 3, 7, -1, 2, 0, 4, 4)
	x2 := Add(x0, Mul(y, proj))
	if !Mul(x2, FromInt(f)).Equal(s) {
		t.Fatal("projector does not preserve solutions")
	}
}

func TestSolveXFIncompatible(t *testing.T) {
	// S whose rows are not in the row space of F has no solution.
	// F = [1 0; 0 0; 0 0]ᵗ... use f 3x2 with rank 2 but S incompatible:
	f := intmat.New(3, 2, 1, 0, 2, 0, 0, 1) // full column rank 2
	// rows of any X·F live in span of F's rows as combinations with the
	// 3 columns of X; compatibility may still fail for specific S:
	s := New(1, 2, 1, 1)
	x0, _, ok := SolveXF(s, f)
	if ok {
		// verify honestly: if claimed solvable, it must actually solve.
		if !Mul(x0, FromInt(f)).Equal(s) {
			t.Fatal("claimed solvable but solution wrong")
		}
	}
}

func TestLeftGeneralizedInverse(t *testing.T) {
	f := intmat.New(3, 2, 1, 0, 0, 1, 1, 1)
	g, isInt := LeftGeneralizedInverse(f)
	if !isInt {
		t.Fatalf("expected integer generalized inverse for %v", f)
	}
	if !Mul(g, FromInt(f)).IsIdentity() {
		t.Fatal("G·F != Id")
	}
	// A column of content 2 forces the rational fallback.
	f2 := intmat.New(2, 1, 2, 0)
	g2, isInt2 := LeftGeneralizedInverse(f2)
	if isInt2 {
		t.Fatal("claimed integer inverse of [2;0]")
	}
	if !Mul(g2, FromInt(f2)).IsIdentity() {
		t.Fatal("rational fallback wrong")
	}
}

func TestStringAndClone(t *testing.T) {
	m := New(1, 2, 1, -3)
	if m.String() != "[1 -3]" {
		t.Fatalf("String = %q", m.String())
	}
	c := m.Clone()
	c.Set(0, 0, big.NewRat(9, 1))
	if m.At(0, 0).Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatal("clone aliases")
	}
}
