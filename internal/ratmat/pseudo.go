package ratmat

import "repro/internal/intmat"

// PseudoInverse returns the one-sided pseudo-inverse X⁻ of a full-rank
// rectangular integer matrix X, as defined in the paper's appendix
// (§9.2):
//
//   - u = v (square, non-singular): the ordinary inverse;
//   - u < v (flat): the right inverse X⁻ = Xᵗ·(X·Xᵗ)⁻¹, X·X⁻ = Id_u;
//   - u > v (narrow): the left inverse X⁻ = (Xᵗ·X)⁻¹·Xᵗ, X⁻·X = Id_v.
//
// The second result is false when X is not of full rank.
func PseudoInverse(x *intmat.Mat) (*Mat, bool) {
	if !x.FullRank() {
		return nil, false
	}
	X := FromInt(x)
	switch {
	case x.Rows() == x.Cols():
		return X.Inverse()
	case x.Rows() < x.Cols(): // flat: right inverse
		xt := X.Transpose()
		gram := Mul(X, xt)
		gi, ok := gram.Inverse()
		if !ok {
			return nil, false
		}
		return Mul(xt, gi), true
	default: // narrow: left inverse
		xt := X.Transpose()
		gram := Mul(xt, X)
		gi, ok := gram.Inverse()
		if !ok {
			return nil, false
		}
		return Mul(gi, xt), true
	}
}

// SolveXF solves the matrix equation X·F = S for X (Lemma 2 of the
// paper's appendix): F is a×d of full rank d, S is m×d. A solution
// exists iff the compatibility condition S·F⁻·F = S holds; then
// X₀ = S·F⁻ is a particular solution and the full solution set is
// X₀ + Y·(Id_a − F·F⁻) for arbitrary Y.
//
// SolveXF returns the particular solution X₀ and the projector
// P = Id_a − F·F⁻ onto the solution-space degrees of freedom. ok is
// false when the equation has no solution or F is rank-deficient.
func SolveXF(s *Mat, f *intmat.Mat) (x0, proj *Mat, ok bool) {
	if f.Rank() != f.Cols() {
		return nil, nil, false
	}
	if s.Cols() != f.Cols() {
		panic("ratmat: SolveXF shape mismatch")
	}
	fi, okInv := PseudoInverse(f)
	if !okInv {
		return nil, nil, false
	}
	F := FromInt(f)
	x0 = Mul(s, fi)
	if !Mul(x0, F).Equal(s) {
		return nil, nil, false
	}
	proj = Sub(Identity(f.Rows()), Mul(F, fi))
	return x0, proj, true
}

// LeftGeneralizedInverse returns an integer matrix G with G·F = Id
// when one exists over Z (preferred, as in the paper's Remark in
// §2.2.2), falling back to the rational left pseudo-inverse otherwise.
// The boolean reports whether the result is integral.
func LeftGeneralizedInverse(f *intmat.Mat) (*Mat, bool) {
	if g, ok := intmat.LeftInverseInt(f); ok {
		return FromInt(g), true
	}
	g, ok := PseudoInverse(f)
	if !ok {
		panic("ratmat: LeftGeneralizedInverse of rank-deficient matrix")
	}
	return g, false
}
