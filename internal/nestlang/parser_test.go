package nestlang

import (
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/intmat"
)

const matmulSrc = `
# classic matrix product
nest matmul {
  array a[2]
  array b[2]
  array c[2]
  loop (i, j, k) {
    S: c[i, j] += a[i, k]
  }
}
`

func TestParseMatMulLike(t *testing.T) {
	p := MustParse(matmulSrc)
	if p.Name != "matmul" || len(p.Arrays) != 3 || len(p.Statements) != 1 {
		t.Fatalf("shape wrong: %v", p)
	}
	s := p.Statements[0]
	if s.Depth != 3 {
		t.Fatalf("depth = %d", s.Depth)
	}
	w := s.Accesses[0]
	if !w.Write || !w.Reduction || w.Array != "c" {
		t.Fatalf("lhs = %v", w)
	}
	wantFc := intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	if !w.F.Equal(wantFc) {
		t.Fatalf("Fc = %v, want %v", w.F, wantFc)
	}
	r := s.Accesses[1]
	wantFa := intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	if r.Write || !r.F.Equal(wantFa) {
		t.Fatalf("Fa = %v, want %v", r.F, wantFa)
	}
}

func TestParseAffineCoefficients(t *testing.T) {
	p := MustParse(`
nest t {
  array a[2]
  array r[1]
  loop (i, j) {
    S: r[i] = a[5*i - 2*j + 3, -7*i + 3*j - 1]
  }
}
`)
	acc := p.Statements[0].Accesses[1]
	wantF := intmat.New(2, 2, 5, -2, -7, 3)
	if !acc.F.Equal(wantF) {
		t.Fatalf("F = %v, want %v", acc.F, wantF)
	}
	if acc.C[0] != 3 || acc.C[1] != -1 {
		t.Fatalf("c = %v", acc.C)
	}
}

func TestParseRepeatedIndexAccumulates(t *testing.T) {
	p := MustParse(`
nest t {
  array a[1]
  array r[1]
  loop (i) {
    S: r[i] = a[i + 2*i - i]
  }
}
`)
	if got := p.Statements[0].Accesses[1].F.At(0, 0); got != 2 {
		t.Fatalf("coefficient = %d, want 2", got)
	}
}

func TestParseSeqAndFunctionRHS(t *testing.T) {
	p := MustParse(`
nest gauss {
  array a[2]
  loop (k, i, j) seq(k) {
    S: a[i, j] = g(a[i, j], a[i, k], a[k, j])
  }
}
`)
	s := p.Statements[0]
	if len(s.Accesses) != 4 {
		t.Fatalf("accesses = %d, want 4", len(s.Accesses))
	}
	th := s.ScheduleOrEmpty()
	if !th.Equal(intmat.New(1, 3, 1, 0, 0)) {
		t.Fatalf("schedule = %v", th)
	}
}

func TestParseMultipleLoops(t *testing.T) {
	p := MustParse(`
nest multi {
  array a[2]
  array b[2]
  loop (i, j) {
    S1: b[i, j] = a[j, i];
  }
  loop (i, j, k) {
    S2: a[i, k] = b[i, j]
    S3: b[j, k] = a[i, j]
  }
}
`)
	if len(p.Statements) != 3 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
	if p.Statements[0].Depth != 2 || p.Statements[2].Depth != 3 {
		t.Fatal("depths wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`nest {`, "expected identifier"},
		{`x t {}`, `expected "nest"`},
		{`nest t { array a[2] }x`, "trailing input"},
		{`nest t { blah }`, `expected "array"`},
		{`nest t { array a[2] array a[3] }`, "redeclared"},
		{`nest t { array a[2] loop (i, i) { } }`, "duplicate loop index"},
		{`nest t { array a[2] loop (i) seq(z) { } }`, "not a loop index"},
		{`nest t { array a[1] loop (i) { S: a[i] = b[i] } }`, "undeclared array"},
		{`nest t { array a[1] loop (i) { S: a[i, i] = a[i] } }`, "too many subscripts"},
		{`nest t { array a[2] loop (i) { S: a[i] = a[i, i] } }`, "got 1 subscripts"},
		{`nest t { array a[1] loop (i) { S: a[i] a[i] } }`, `expected "="`},
		{`nest t { array a[1] loop (i) { S: a[j] = a[i] } }`, "unknown loop index"},
		{`nest t { array a[1] loop (i) { S: a[*] = a[i] } }`, "expected term"},
		{`nest t { array a[1] loop (i) { S: a[i] = a[i] S: a[i] = a[i] } }`, "duplicate statement"},
		{`nest t @`, "unexpected character"},
		{`nest t { array a[99999999999999999999] }`, "bad integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParsedProgramsValidate(t *testing.T) {
	for _, src := range []string{matmulSrc} {
		p := MustParse(src)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("nest t {\n  array a[2]\n  oops\n}")
	if err == nil || !strings.Contains(err.Error(), "3:3") {
		t.Fatalf("error = %v, want line 3 col 3", err)
	}
}

var _ = affine.Program{} // keep the import explicit for documentation
