package nestlang

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/intmat"
)

// Parse parses a nest description and returns the validated program.
func Parse(src string) (*affine.Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *affine.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(s string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == s
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("nestlang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(s string) error {
	if !p.at(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectInt() (int64, error) {
	t := p.cur()
	if t.kind != tokInt {
		return 0, p.errorf("expected integer, found %s", t)
	}
	p.advance()
	return t.val, nil
}

func (p *parser) parseProgram() (*affine.Program, error) {
	if err := p.expect("nest"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	prog := &affine.Program{Name: name}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.at("}") {
		switch {
		case p.at("array"):
			if err := p.parseArray(prog); err != nil {
				return nil, err
			}
		case p.at("loop"):
			if err := p.parseLoop(prog); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected \"array\", \"loop\" or \"}\", found %s", p.cur())
		}
	}
	p.advance() // }
	if p.cur().kind != tokEOF {
		return nil, p.errorf("trailing input after program: %s", p.cur())
	}
	return prog, nil
}

func (p *parser) parseArray(prog *affine.Program) error {
	p.advance() // array
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect("["); err != nil {
		return err
	}
	dim, err := p.expectInt()
	if err != nil {
		return err
	}
	if err := p.expect("]"); err != nil {
		return err
	}
	if prog.Array(name) != nil {
		return p.errorf("array %q redeclared", name)
	}
	prog.AddArray(name, int(dim))
	return nil
}

func (p *parser) parseIdentList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var ids []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		if p.at(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ids, nil
}

func (p *parser) parseLoop(prog *affine.Program) error {
	p.advance() // loop
	indices, err := p.parseIdentList()
	if err != nil {
		return err
	}
	idx := map[string]int{}
	for i, id := range indices {
		if _, dup := idx[id]; dup {
			return p.errorf("duplicate loop index %q", id)
		}
		idx[id] = i
	}
	var seqDims []int
	if p.at("seq") {
		p.advance()
		seqIDs, err := p.parseIdentList()
		if err != nil {
			return err
		}
		for _, id := range seqIDs {
			d, ok := idx[id]
			if !ok {
				return p.errorf("seq index %q is not a loop index", id)
			}
			seqDims = append(seqDims, d)
		}
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.at("}") {
		if err := p.parseStmt(prog, indices, idx, seqDims); err != nil {
			return err
		}
	}
	p.advance() // }
	return nil
}

func (p *parser) parseStmt(prog *affine.Program, indices []string, idx map[string]int, seqDims []int) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	st := prog.NewStatement(name, indices...)
	if len(seqDims) > 0 {
		st.Seq(seqDims...)
	}

	lhs, err := p.parseAccess(prog, idx)
	if err != nil {
		return err
	}
	reduction := false
	switch {
	case p.at("="):
		p.advance()
	case p.at("+="):
		p.advance()
		reduction = true
	default:
		return p.errorf("expected \"=\" or \"+=\", found %s", p.cur())
	}
	lhs.Write = true
	lhs.Reduction = reduction
	st.Accesses = append(st.Accesses, lhs)

	// rhs: either a single access, or f(access, access, ...)
	fn, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.at("[") {
		// plain access: fn is the array name
		p.pos-- // unread array name
		acc, err := p.parseAccess(prog, idx)
		if err != nil {
			return err
		}
		st.Accesses = append(st.Accesses, acc)
	} else {
		_ = fn // arbitrary function name g1, g2, … (paper Example 1)
		if err := p.expect("("); err != nil {
			return err
		}
		for {
			acc, err := p.parseAccess(prog, idx)
			if err != nil {
				return err
			}
			st.Accesses = append(st.Accesses, acc)
			if p.at(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	if p.at(";") {
		p.advance()
	}
	return nil
}

func (p *parser) parseAccess(prog *affine.Program, idx map[string]int) (affine.Access, error) {
	name, err := p.expectIdent()
	if err != nil {
		return affine.Access{}, err
	}
	arr := prog.Array(name)
	if arr == nil {
		return affine.Access{}, p.errorf("access to undeclared array %q", name)
	}
	if err := p.expect("["); err != nil {
		return affine.Access{}, err
	}
	d := len(idx)
	f := intmat.Zero(arr.Dim, d)
	c := make([]int64, arr.Dim)
	row := 0
	for {
		if row >= arr.Dim {
			return affine.Access{}, p.errorf("too many subscripts for %q (dimension %d)", name, arr.Dim)
		}
		coefs, off, err := p.parseAffineExpr(idx)
		if err != nil {
			return affine.Access{}, err
		}
		for j, v := range coefs {
			f.Set(row, j, v)
		}
		c[row] = off
		row++
		if p.at(",") {
			p.advance()
			continue
		}
		break
	}
	if row != arr.Dim {
		return affine.Access{}, p.errorf("array %q has dimension %d, got %d subscripts", name, arr.Dim, row)
	}
	if err := p.expect("]"); err != nil {
		return affine.Access{}, err
	}
	return affine.Access{Array: name, F: f, C: c}, nil
}

// parseAffineExpr parses a single affine subscript expression over
// the loop indices and returns its coefficient vector and constant.
func (p *parser) parseAffineExpr(idx map[string]int) ([]int64, int64, error) {
	coefs := make([]int64, len(idx))
	var off int64
	sign := int64(1)
	first := true
	for {
		if p.at("+") {
			p.advance()
			sign = 1
		} else if p.at("-") {
			p.advance()
			sign = -1
		} else if !first {
			return coefs, off, nil
		}
		t := p.cur()
		switch t.kind {
		case tokInt:
			p.advance()
			k := sign * t.val
			if p.at("*") {
				p.advance()
				id, err := p.expectIdent()
				if err != nil {
					return nil, 0, err
				}
				j, ok := idx[id]
				if !ok {
					return nil, 0, p.errorf("unknown loop index %q", id)
				}
				coefs[j] += k
			} else {
				off += k
			}
		case tokIdent:
			p.advance()
			j, ok := idx[t.text]
			if !ok {
				return nil, 0, p.errorf("unknown loop index %q", t.text)
			}
			coefs[j] += sign
		default:
			return nil, 0, p.errorf("expected term, found %s", t)
		}
		first = false
		sign = 1
		if !p.at("+") && !p.at("-") {
			return coefs, off, nil
		}
	}
}
