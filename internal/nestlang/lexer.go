// Package nestlang implements a small textual front end for affine
// loop nests. It plays the role of the HPF-style compiler front end
// the paper assumes: a nest description is parsed into the affine IR
// (package affine), from which the alignment machinery proceeds.
//
// Grammar (comments start with '#', newlines are insignificant):
//
//	program   = "nest" IDENT "{" decl* "}"
//	decl      = "array" IDENT "[" INT "]"
//	          | "loop" "(" idents ")" [ "seq" "(" idents ")" ] "{" stmt* "}"
//	stmt      = IDENT ":" access ("=" | "+=") rhs [";"]
//	rhs       = access | IDENT "(" access ("," access)* ")"
//	access    = IDENT "[" expr ("," expr)* "]"
//	expr      = ["+"|"-"] term (("+"|"-") term)*
//	term      = INT [ "*" IDENT ] | IDENT
//
// "+=" marks a reduction (the paper's Example 4). "seq" lists the
// loop indices executed sequentially, outermost first; all others are
// parallel (DOALL).
package nestlang

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokPunct // single-rune punctuation, and "+="
)

type token struct {
	kind tokenKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("number %d", t.val)
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("nestlang: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextRune() rune {
	r := l.peekRune()
	if r == 0 {
		return 0
	}
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r := l.peekRune()
		if r == '#' {
			for r != 0 && r != '\n' {
				l.nextRune()
				r = l.peekRune()
			}
			continue
		}
		if r == 0 || !unicode.IsSpace(r) {
			return
		}
		l.nextRune()
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r := l.peekRune()
	switch {
	case r == 0:
		return token{kind: tokEOF, line: line, col: col}, nil
	case unicode.IsLetter(r) || r == '_':
		var s []rune
		for {
			r := l.peekRune()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			s = append(s, l.nextRune())
		}
		return token{kind: tokIdent, text: string(s), line: line, col: col}, nil
	case unicode.IsDigit(r):
		var s []rune
		for unicode.IsDigit(l.peekRune()) {
			s = append(s, l.nextRune())
		}
		v, err := strconv.ParseInt(string(s), 10, 64)
		if err != nil {
			return token{}, l.errorf(line, col, "bad integer %q", string(s))
		}
		return token{kind: tokInt, text: string(s), val: v, line: line, col: col}, nil
	case r == '+':
		l.nextRune()
		if l.peekRune() == '=' {
			l.nextRune()
			return token{kind: tokPunct, text: "+=", line: line, col: col}, nil
		}
		return token{kind: tokPunct, text: "+", line: line, col: col}, nil
	default:
		switch r {
		case '{', '}', '(', ')', '[', ']', ',', ':', ';', '=', '*', '-':
			l.nextRune()
			return token{kind: tokPunct, text: string(r), line: line, col: col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected character %q", r)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
