package core

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/intmat"
	"repro/internal/nestlang"
	"repro/internal/validate"
)

// End-to-end: DSL source → parser → two-step heuristic → concrete
// validation of the mapping on an enumerated domain.

const gaussSrc = `
# Gaussian elimination update
nest gauss {
  array a[2]
  loop (k, i, j) seq(k) {
    S: a[i, j] = g(a[i, j], a[i, k], a[k, j])
  }
}
`

const sweepSrc = `
nest sweep {
  array a[2]
  array b[2]
  array c[3]
  loop (i, j) {
    S1: b[j, i] = a[i, j]
  }
  loop (i, j, k) seq(k) {
    S2: c[i, j, k] = b[i, j]
  }
}
`

func TestDSLGaussPipeline(t *testing.T) {
	prog := nestlang.MustParse(gaussSrc)
	res, err := Optimize(prog, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, res)
	// write+read of a(i,j) local; a(i,k) and a(k,j) cannot both be;
	// a(k,k) is rank-deficient.
	c := res.Counts()
	if c[Local] < 2 {
		t.Fatalf("local = %d, want >= 2", c[Local])
	}
	if err := validate.Check(res.Align, 4); err != nil {
		t.Fatal(err)
	}
}

func TestDSLSweepPipeline(t *testing.T) {
	prog := nestlang.MustParse(sweepSrc)
	res, err := Optimize(prog, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, res)
	if err := validate.Check(res.Align, 3); err != nil {
		t.Fatal(err)
	}
	// the b[i,j] read in S2 repeats over k: either local or a
	// detected macro/vectorizable communication, never plain general
	for _, pl := range res.Plans {
		if pl.Comm.Stmt.Name == "S2" && pl.Comm.Access.Array == "b" {
			if pl.Class == General {
				t.Fatalf("b read in S2 left general:\n%s", res.Report())
			}
		}
	}
}

func TestValidateAfterRotation(t *testing.T) {
	// the motivating example applies a unimodular rotation in step 2a;
	// validation must still hold afterwards (rotation preserves the
	// whole communication structure).
	res, err := Optimize(affine.PaperExample1(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Check(res.Align, 4); err != nil {
		t.Fatal(err)
	}
}

func TestThreeDimensionalTarget(t *testing.T) {
	// m = 3 exercise: 3-D arrays on a 3-D virtual grid with a skewed
	// residual whose 3×3 data-flow matrix decomposes into elementary
	// factors (the Cray T3D case).
	p := &affine.Program{Name: "m3"}
	p.AddArray("a", 3)
	p.AddArray("r", 3)
	f := intmat.New(3, 3,
		1, 2, 1,
		2, 5, 3,
		1, 3, 3) // det 1
	p.NewStatement("S", "i", "j", "k").
		Write("r", intmat.Identity(3)).
		Read("a", intmat.Identity(3)).
		Read("a", f)
	res, err := Optimize(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, res)
	var dec *Plan
	for i := range res.Plans {
		if res.Plans[i].Class == Decomposed && len(res.Plans[i].Factors) > 0 {
			dec = &res.Plans[i]
		}
	}
	if dec == nil {
		t.Fatalf("no 3-D decomposition:\n%s", res.Report())
	}
	if dec.Dataflow.Rows() != 3 {
		t.Fatalf("dataflow is %dx%d", dec.Dataflow.Rows(), dec.Dataflow.Cols())
	}
	if !intmat.MulAll(dec.Factors...).Equal(dec.Dataflow) {
		t.Fatal("3-D factors do not multiply back")
	}
}

func TestMacroSurvivesPipelineOrder(t *testing.T) {
	// regression guard: the decomposition step must not rotate a
	// component whose broadcast was already axis-aligned.
	res, err := Optimize(affine.PaperExample1(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range res.Plans {
		if pl.Class == MacroComm && pl.Macro.Partial() {
			if !pl.Macro.AxisParallel() {
				t.Fatal("macro lost its axis alignment")
			}
		}
	}
	// and alignment-level invariants still hold
	if _, err := alignment.Align(affine.PaperExample1(), 2, alignment.Options{}); err != nil {
		t.Fatal(err)
	}
}
