package core

import (
	"strings"
	"testing"

	"repro/internal/affine"
	"repro/internal/intmat"
	"repro/internal/macro"
)

func mustOptimize(t *testing.T, p *affine.Program, m int, opts Options) *Result {
	t.Helper()
	res, err := Optimize(p, m, opts)
	if err != nil {
		t.Fatalf("Optimize(%s): %v", p.Name, err)
	}
	return res
}

// checkConsistency verifies every plan against the final allocations.
func checkConsistency(t *testing.T, res *Result) {
	t.Helper()
	for _, pl := range res.Plans {
		ms := res.Align.Alloc[pl.Comm.Stmt.Name]
		mx := res.Align.Alloc[pl.Comm.Access.Array]
		local := intmat.Mul(mx, pl.Comm.Access.F).Equal(ms)
		if (pl.Class == Local) != local {
			t.Errorf("comm %d classified %s but local=%v", pl.Comm.ID, pl.Class, local)
		}
		if pl.Class == Decomposed && pl.Dataflow != nil && len(pl.Factors) > 0 {
			if !intmat.MulAll(pl.Factors...).Equal(pl.Dataflow) {
				t.Errorf("comm %d: factors do not multiply to T", pl.Comm.ID)
			}
		}
	}
}

func TestMotivatingExampleFullPipeline(t *testing.T) {
	// Section 3's complete outcome: 6 local communications, one
	// residual becomes an axis-parallel partial broadcast, one
	// residual decomposes into exactly 2 elementary communications,
	// and F9 (rank-deficient) remains.
	res := mustOptimize(t, affine.PaperExample1(), 2, Options{})
	checkConsistency(t, res)
	c := res.Counts()
	if c[Local] != 6 {
		t.Fatalf("local = %d, want 6", c[Local])
	}
	if c[MacroComm] < 1 {
		t.Fatalf("macro = %d, want >= 1", c[MacroComm])
	}
	if c[Decomposed] < 1 {
		t.Fatalf("decomposed = %d, want >= 1", c[Decomposed])
	}
	if c[General] != 0 {
		t.Fatalf("general = %d, want 0", c[General])
	}

	// the F7 broadcast: partial, axis-parallel after rotation
	var bcast, dec *Plan
	for i := range res.Plans {
		pl := &res.Plans[i]
		if pl.Class == MacroComm && pl.Comm.Stmt.Name == "S2" {
			bcast = pl
		}
		if pl.Class == Decomposed && pl.Comm.Stmt.Name == "S1" {
			dec = pl
		}
	}
	if bcast == nil || bcast.Macro.Kind != macro.Broadcast || !bcast.Macro.Partial() {
		t.Fatalf("F7 plan wrong: %+v", bcast)
	}
	if !bcast.Macro.AxisParallel() {
		t.Fatal("broadcast not axis-parallel after step 2a")
	}
	if bcast.Rotation == nil || bcast.Rotation.IsIdentity() {
		t.Fatal("expected a non-trivial rotation (the canonical mapping is skewed)")
	}
	// the F3 decomposition: exactly two elementary factors
	if dec == nil {
		t.Fatal("no decomposition plan for S1")
	}
	if len(dec.Factors) != 2 {
		t.Fatalf("F3 decomposes into %d factors, want 2: %v", len(dec.Factors), dec.Factors)
	}
	if dec.Dataflow.Det() != 1 {
		t.Fatalf("dataflow det = %d", dec.Dataflow.Det())
	}
}

func TestExample5CommunicationFree(t *testing.T) {
	res := mustOptimize(t, affine.Example5(), 2, Options{})
	checkConsistency(t, res)
	c := res.Counts()
	if c[Local] != 2 || c[MacroComm]+c[Decomposed]+c[General] != 0 {
		t.Fatalf("counts = %v, want all 2 comms local", c)
	}
}

func TestMatMulGetsMacros(t *testing.T) {
	// the two non-local accesses of matmul should be classified as
	// macro-communications (broadcast/reduction), never general.
	res := mustOptimize(t, affine.MatMul(), 2, Options{})
	checkConsistency(t, res)
	c := res.Counts()
	if c[General] != 0 {
		t.Fatalf("matmul has %d general comms:\n%s", c[General], res.Report())
	}
	if c[Local] != 1 {
		t.Fatalf("local = %d, want 1", c[Local])
	}
}

func TestSkewedCopyDecomposes(t *testing.T) {
	// SkewedCopy's only non-local communication has the Table-2
	// data-flow matrix [[1,2],[3,7]] = L(3)·U(2).
	res := mustOptimize(t, affine.SkewedCopy(), 2, Options{})
	checkConsistency(t, res)
	var found *Plan
	for i := range res.Plans {
		if res.Plans[i].Class == Decomposed {
			found = &res.Plans[i]
		}
	}
	if found == nil {
		t.Fatalf("no decomposition:\n%s", res.Report())
	}
	if len(found.Factors) > 2 {
		t.Fatalf("factors = %v, want <= 2", found.Factors)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, opts := range []Options{
		{NoMacro: true},
		{NoDecomposition: true},
		{NoMacro: true, NoDecomposition: true},
		{MaxFactors: 2},
		{SimilarityBound: 0},
	} {
		res := mustOptimize(t, affine.PaperExample1(), 2, opts)
		checkConsistency(t, res)
	}
	// disabling both steps leaves residuals general
	res := mustOptimize(t, affine.PaperExample1(), 2, Options{NoMacro: true, NoDecomposition: true})
	if res.Counts()[General] == 0 {
		t.Fatal("expected general residuals with both optimizations off")
	}
}

func TestAllExamplesOptimize(t *testing.T) {
	for _, p := range affine.AllExamples() {
		res, err := Optimize(p, 2, Options{})
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		checkConsistency(t, res)
	}
}

func TestReport(t *testing.T) {
	res := mustOptimize(t, affine.PaperExample1(), 2, Options{})
	rep := res.Report()
	for _, want := range []string{"example1", "M_a", "M_S1", "summary:", "local"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestClassString(t *testing.T) {
	if Local.String() != "local" || MacroComm.String() != "macro" ||
		Decomposed.String() != "decomposed" || General.String() != "general" {
		t.Fatal("class strings wrong")
	}
}
