// Package core assembles the paper's complete two-step heuristic
// (Section 6):
//
//  1. Zero out non-local communications — access graph, maximum
//     branching, augmentation by identity cycles / equal parallel
//     paths, deficient-rank zeroing (package alignment).
//  2. Optimize residual communications — detect macro-communications
//     and rotate the allocation matrices so partial broadcasts run
//     parallel to the processor axes (package macro); decompose the
//     remaining general affine communications into elementary, or
//     unirow, factors (package decomp).
//
// The result classifies every communication of the nest as local, a
// macro-communication, a decomposed communication, or a general
// communication, with everything needed to cost it on the machine
// models of package machine.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/accessgraph"
	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/decomp"
	"repro/internal/intmat"
	"repro/internal/macro"
	"repro/internal/ratmat"
	"repro/internal/trace"
)

// Class is the final classification of one communication.
type Class int

// Classification of a communication after both heuristic steps.
const (
	// Local: the non-local term was zeroed out; only a constant
	// translation may remain.
	Local Class = iota
	// MacroComm: the residual is a broadcast/scatter/gather/reduction
	// implementable with the machine's collective facilities.
	MacroComm
	// Decomposed: the residual's data-flow matrix was factored into
	// elementary (or unirow) communications.
	Decomposed
	// General: nothing better than a general affine communication was
	// found.
	General
)

func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case MacroComm:
		return "macro"
	case Decomposed:
		return "decomposed"
	case General:
		return "general"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Plan is the optimization outcome for one communication.
type Plan struct {
	Comm  accessgraph.Comm
	Class Class
	// Macro is set for MacroComm plans (and may accompany Decomposed
	// plans when a hidden macro pattern was found but not used).
	Macro *macro.Macro
	// Rotation is the unimodular component rotation applied to make
	// the macro-communication axis-parallel, if any.
	Rotation *intmat.Mat
	// Dataflow is the data-flow matrix T (processor → processor) of
	// the residual, when defined (square, integral).
	Dataflow *intmat.Mat
	// Factors is the elementary/unirow factorization of Dataflow for
	// Decomposed plans.
	Factors []*intmat.Mat
	// Similarity is the unimodular conjugator applied before
	// decomposition, if one was used.
	Similarity *intmat.Mat
	// Vectorizable reports the message-vectorization condition of
	// Section 4.5.
	Vectorizable bool
}

// Result is the outcome of the full heuristic.
type Result struct {
	Align *alignment.Result
	Plans []Plan
	// Timing is the wall-clock phase breakdown of the run that produced
	// this result.
	Timing Timing
}

// Timing attributes the heuristic's wall-clock time to its phases:
// alignment (step 1), macro detection and rotation (step 2a), and
// decomposition plus plan assembly (step 2b). Filled by every run; a
// pure function of nothing — two runs over the same input produce
// equal Plans and different Timings.
type Timing struct {
	Align     time.Duration
	Macro     time.Duration
	Decompose time.Duration
}

// Options tune the pipeline. The zero value is the paper's
// configuration.
type Options struct {
	// Alignment tunes step 1.
	Alignment alignment.Options
	// MaxFactors caps the elementary decomposition length (default 4,
	// the paper's practical bound).
	MaxFactors int
	// SimilarityBound bounds the entries of candidate unimodular
	// conjugators when searching for a shorter decomposition of
	// M·T·M⁻¹ (default 2; 0 disables the similarity search).
	SimilarityBound int64
	// NoMacro disables macro-communication detection (ablation).
	NoMacro bool
	// NoDecomposition disables communication decomposition (ablation).
	NoDecomposition bool
}

func (o *Options) maxFactors() int {
	if o.MaxFactors == 0 {
		return 4
	}
	return o.MaxFactors
}

// Optimize runs the complete two-step heuristic on p for an
// m-dimensional virtual processor space.
func Optimize(p *affine.Program, m int, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), p, m, opts)
}

// OptimizeCtx is Optimize under a context: when ctx carries an active
// trace span, each heuristic phase records a timed child span
// ("alignment", "macro", "decompose"); the same phase durations are
// always reported in Result.Timing. The context does not cancel the
// computation — phases are short and run to completion.
func OptimizeCtx(ctx context.Context, p *affine.Program, m int, opts Options) (*Result, error) {
	t0 := time.Now()
	_, alignSpan := trace.StartSpan(ctx, "alignment")
	ar, err := alignment.Align(p, m, opts.Alignment)
	alignSpan.End()
	alignDur := time.Since(t0)
	if err != nil {
		return nil, err
	}
	res := &Result{Align: ar}
	res.Timing.Align = alignDur

	// Step 2a: macro-communications, with axis alignment. Process
	// residuals one at a time, re-detecting after every rotation so
	// each plan reflects the final allocation matrices. Once a
	// component has been rotated for one macro-communication it is
	// frozen: a second rotation would undo the first alignment.
	t0 = time.Now()
	_, macroSpan := trace.StartSpan(ctx, "macro")
	planned := map[int]*Plan{}
	frozen := map[int]bool{}
	if !opts.NoMacro {
		for _, c := range ar.ResidualComms() {
			best := pickMacro(macro.Detect(ar, c))
			if best == nil {
				continue
			}
			pl := &Plan{Comm: c, Class: MacroComm, Macro: best}
			comp := ar.Component[c.Stmt.Name]
			if best.Partial() && !best.AxisParallel() && !frozen[comp] {
				rot, err := macro.AlignBroadcast(ar, best)
				if err != nil {
					macroSpan.End()
					return nil, err
				}
				pl.Rotation = rot
			}
			frozen[comp] = true
			planned[c.ID] = pl
		}
	}
	macroSpan.SetInt("macros", int64(len(planned))).End()
	res.Timing.Macro = time.Since(t0)

	// Step 2b: decompose the remaining general communications.
	t0 = time.Now()
	_, decSpan := trace.StartSpan(ctx, "decompose")
	for _, c := range ar.ResidualComms() {
		if planned[c.ID] != nil {
			continue
		}
		pl := &Plan{Comm: c, Class: General}
		if !opts.NoDecomposition {
			res.decompose(pl, ar, opts, frozen)
		}
		planned[c.ID] = pl
	}

	// Assemble plans in communication order, with vectorization info.
	for _, c := range ar.Graph.Comms {
		var pl Plan
		if ar.LocalComms[c.ID] {
			pl = Plan{Comm: c, Class: Local}
		} else {
			pl = *planned[c.ID]
		}
		pl.Vectorizable = macro.Vectorizable(ar, c)
		res.Plans = append(res.Plans, pl)
	}
	decSpan.SetInt("plans", int64(len(res.Plans))).End()
	res.Timing.Decompose = time.Since(t0)
	return res, nil
}

// pickMacro chooses the preferred macro pattern: Table 1 orders
// reduction cheapest, then broadcast; scatters/gathers follow. Hidden
// patterns are never picked.
func pickMacro(ms []*macro.Macro) *macro.Macro {
	rank := func(k macro.Kind) int {
		switch k {
		case macro.Reduction:
			return 0
		case macro.Broadcast:
			return 1
		case macro.Gather:
			return 2
		case macro.Scatter:
			return 3
		}
		return 4
	}
	var best *macro.Macro
	for _, m := range ms {
		if m.Hidden() {
			continue
		}
		if best == nil || rank(m.Kind) < rank(best.Kind) {
			best = m
		}
	}
	return best
}

// decompose computes the data-flow matrix of the residual and factors
// it (Section 5). Sender: M_x·(F·I + c); receiver: M_S·I; data-flow
// matrix T solves T·(M_x·F) = M_S.
func (r *Result) decompose(pl *Plan, ar *alignment.Result, opts Options, frozen map[int]bool) {
	c := pl.Comm
	ms := ar.Alloc[c.Stmt.Name]
	mx := ar.Alloc[c.Access.Array]
	if ms == nil || mx == nil {
		return
	}
	mxf := intmat.Mul(mx, c.Access.F)
	t, ok := dataflow(ms, mxf)
	if !ok {
		return
	}
	pl.Dataflow = t
	if t.IsIdentity() {
		// pure translation: already the cheapest non-local form
		pl.Class = Decomposed
		pl.Factors = nil
		return
	}
	if t.Rows() == 2 && t.Det() == 1 {
		if fs, found := decomp.DecomposeAtMost(t, opts.maxFactors()); found {
			pl.Class = Decomposed
			pl.Factors = fs
			return
		}
		if opts.SimilarityBound > 0 && !frozen[ar.Component[c.Stmt.Name]] {
			// conjugation = re-basing the component; only valid when
			// statement and array share a component.
			if ar.Component[c.Stmt.Name] == ar.Component[c.Access.Array] {
				if conj, fs, found := decomp.SimilarAtMost(t, 2, opts.SimilarityBound); found {
					if err := ar.RotateComponent(c.Stmt.Name, conj); err == nil {
						frozen[ar.Component[c.Stmt.Name]] = true
						pl.Class = Decomposed
						pl.Factors = fs
						pl.Similarity = conj
						pl.Dataflow = intmat.MulAll(conj, t, intmat.InverseUnimodular(conj))
						return
					}
				}
			}
		}
		pl.Class = Decomposed
		pl.Factors = decomp.DecomposeEuclid(t)
		return
	}
	// larger dimension, determinant 1: elementary factors (the 3-D
	// machine case the paper sketches for the Cray T3D)
	if t.Rows() > 2 && t.Det() == 1 {
		pl.Class = Decomposed
		pl.Factors = decomp.DecomposeElementaryN(t)
		return
	}
	// arbitrary determinant: unirow factors (Section 5.3)
	if fs, found := decomp.DecomposeUnirow(t); found {
		pl.Class = Decomposed
		pl.Factors = fs
	}
}

// dataflow solves T·(M_x·F) = M_S for an integral square T, the
// processor-to-processor map of the residual communication.
func dataflow(ms, mxf *intmat.Mat) (*intmat.Mat, bool) {
	if mxf.Rank() != mxf.Rows() {
		return nil, false
	}
	x0, _, ok := ratmat.SolveXF(ratmat.FromInt(ms), mxf)
	if !ok {
		return nil, false
	}
	ti, isInt := x0.ToInt()
	if !isInt {
		return nil, false
	}
	if !intmat.Mul(ti, mxf).Equal(ms) {
		return nil, false
	}
	return ti, true
}

// Counts returns how many communications fall into each class.
func (r *Result) Counts() map[Class]int {
	out := map[Class]int{}
	for _, pl := range r.Plans {
		out[pl.Class]++
	}
	return out
}

// Report renders a human-readable summary of the optimization.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s on a %d-dimensional virtual grid\n",
		r.Align.Program.Name, r.Align.M)
	fmt.Fprintf(&b, "allocation matrices:\n")
	for _, arr := range r.Align.Program.Arrays {
		fmt.Fprintf(&b, "  M_%s = %v\n", arr.Name, r.Align.Alloc[arr.Name])
	}
	for _, s := range r.Align.Program.Statements {
		fmt.Fprintf(&b, "  M_%s = %v\n", s.Name, r.Align.Alloc[s.Name])
	}
	fmt.Fprintf(&b, "communications:\n")
	for _, pl := range r.Plans {
		fmt.Fprintf(&b, "  [%d] %s in %s: %s", pl.Comm.ID, pl.Comm.Access.Array, pl.Comm.Stmt.Name, pl.Class)
		switch pl.Class {
		case MacroComm:
			fmt.Fprintf(&b, " (%s)", pl.Macro)
			if pl.Rotation != nil {
				fmt.Fprintf(&b, " rotated by %v", pl.Rotation)
			}
		case Decomposed:
			if pl.Dataflow != nil {
				fmt.Fprintf(&b, " T=%v into %d elementary", pl.Dataflow, len(pl.Factors))
			}
		}
		if pl.Vectorizable && pl.Class != Local {
			fmt.Fprintf(&b, " [vectorizable]")
		}
		b.WriteByte('\n')
	}
	c := r.Counts()
	fmt.Fprintf(&b, "summary: %d local, %d macro, %d decomposed, %d general\n",
		c[Local], c[MacroComm], c[Decomposed], c[General])
	return b.String()
}
