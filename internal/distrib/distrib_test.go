package distrib

import (
	"testing"
	"testing/quick"
)

func TestBlockPlace(t *testing.T) {
	// 12 virtual on 4 physical: blocks of 3
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	for i, w := range want {
		if got := (Block{}).Place(i, 12, 4); got != w {
			t.Fatalf("Block.Place(%d) = %d, want %d", i, got, w)
		}
	}
	// non-divisible: 10 on 4: blocks of 3, last processor short
	if (Block{}).Place(9, 10, 4) != 3 {
		t.Fatal("tail placement wrong")
	}
}

func TestCyclicPlace(t *testing.T) {
	for i := 0; i < 12; i++ {
		if (Cyclic{}).Place(i, 12, 4) != i%4 {
			t.Fatal("cyclic wrong")
		}
	}
}

func TestBlockCyclicPlace(t *testing.T) {
	d := BlockCyclic{B: 2}
	want := []int{0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2}
	for i, w := range want {
		if got := d.Place(i, 12, 3); got != w {
			t.Fatalf("BlockCyclic.Place(%d) = %d, want %d", i, got, w)
		}
	}
	// B=0 behaves like CYCLIC
	if (BlockCyclic{}).Place(5, 12, 4) != 1 {
		t.Fatal("B=0 guard wrong")
	}
}

func TestGroupedFigure6(t *testing.T) {
	// Figure 6: 12 virtual processors, k = 3, P = 4. Grouped order is
	// 0 3 6 9 | 1 4 7 10 | 2 5 8 11, then blocks of 3.
	d := Grouped{K: 3}
	wantIdx := map[int]int{0: 0, 3: 1, 6: 2, 9: 3, 1: 4, 4: 5, 7: 6, 10: 7, 2: 8, 5: 9, 8: 10, 11: 11}
	for i, w := range wantIdx {
		if got := d.GroupedIndex(i, 12); got != w {
			t.Fatalf("GroupedIndex(%d) = %d, want %d", i, got, w)
		}
	}
	// processor of virtual i: grouped position / 3
	if d.Place(9, 12, 4) != 1 || d.Place(0, 12, 4) != 0 || d.Place(11, 12, 4) != 3 {
		t.Fatal("grouped placement wrong")
	}
}

func TestGroupedIsBijection(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		k := int(k8%7) + 1
		n := int(n8%50) + 1
		d := Grouped{K: k}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			g := d.GroupedIndex(i, n)
			if g < 0 || g >= n || seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedClassesStayTogether(t *testing.T) {
	// the U_k communication i → i + k·j never leaves the class, and
	// within a class it is a translation in grouped space.
	d := Grouped{K: 4}
	n := 64
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			dst := (i + 4*j) % n
			if i%4 != dst%4 {
				t.Fatal("class changed")
			}
			gi, gd := d.GroupedIndex(i, n), d.GroupedIndex(dst, n)
			if (gd-gi-j)%(n/4) != 0 {
				t.Fatalf("not a translation: i=%d j=%d gi=%d gd=%d", i, j, gi, gd)
			}
		}
	}
}

func TestPlaceRangeChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Block{}).Place(12, 12, 4)
}

func TestAllSchemesInRange(t *testing.T) {
	schemes := []Dist1D{Block{}, Cyclic{}, BlockCyclic{B: 3}, Grouped{K: 3}, Grouped{K: 1}}
	for _, s := range schemes {
		for _, n := range []int{1, 7, 12, 64, 100} {
			for _, p := range []int{1, 3, 8} {
				for i := 0; i < n; i++ {
					ph := s.Place(i, n, p)
					if ph < 0 || ph >= p {
						t.Fatalf("%s.Place(%d, %d, %d) = %d out of range", s.Name(), i, n, p, ph)
					}
				}
			}
		}
	}
}

func TestNames(t *testing.T) {
	if (Block{}).Name() != "BLOCK" || (Cyclic{}).Name() != "CYCLIC" {
		t.Fatal("names wrong")
	}
	if (BlockCyclic{B: 4}).Name() != "CYCLIC(4)" {
		t.Fatal("cyclic(b) name wrong")
	}
	if (Grouped{K: 2}).Name() != "GROUPED(2)" {
		t.Fatal("grouped name wrong")
	}
	d := Dist2D{D0: Block{}, D1: Cyclic{}}
	if d.Name() != "BLOCKxCYCLIC" {
		t.Fatalf("2d name = %s", d.Name())
	}
	x, y := d.Place(5, 6, 12, 12, 4, 4)
	if x != 1 || y != 2 {
		t.Fatalf("2d place = (%d,%d)", x, y)
	}
}
