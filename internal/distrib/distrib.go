// Package distrib implements the data-distribution schemes of the
// paper (Section 5.3): the standard HPF-style BLOCK, CYCLIC and
// CYCLIC(b) foldings of a virtual processor dimension onto a physical
// one, and the paper's new *grouped partition*.
//
// The grouped partition targets an elementary communication
// U = [[1,k],[0,1]] (virtual (i,j) → (i+k·j, j)): the k residue
// classes of i mod k communicate only among themselves, so the scheme
// first orders each class contiguously (class 0: 0, k, 2k, …; class
// 1: 1, k+1, …) and then cuts the reordered line into blocks, one
// physical processor each (Figure 6). Within a class the U-move is a
// plain translation, so the folded communication is almost
// contention-free.
package distrib

import "fmt"

// Dist1D folds one virtual dimension of extent n onto p physical
// processors.
type Dist1D interface {
	// Place returns the physical coordinate (in [0, p)) of virtual
	// index i (in [0, n)).
	Place(i, n, p int) int
	// Name returns the scheme name for reports.
	Name() string
}

// Block is the HPF BLOCK distribution: contiguous chunks of size
// ⌈n/p⌉.
type Block struct{}

// Place implements Dist1D.
func (Block) Place(i, n, p int) int {
	check(i, n, p)
	b := (n + p - 1) / p
	ph := i / b
	if ph >= p {
		ph = p - 1
	}
	return ph
}

// Name implements Dist1D.
func (Block) Name() string { return "BLOCK" }

// Cyclic is the HPF CYCLIC distribution: i mod p.
type Cyclic struct{}

// Place implements Dist1D.
func (Cyclic) Place(i, n, p int) int {
	check(i, n, p)
	return i % p
}

// Name implements Dist1D.
func (Cyclic) Name() string { return "CYCLIC" }

// BlockCyclic is the HPF CYCLIC(b) distribution: blocks of size B
// dealt round-robin.
type BlockCyclic struct{ B int }

// Place implements Dist1D.
func (d BlockCyclic) Place(i, n, p int) int {
	check(i, n, p)
	b := d.B
	if b < 1 {
		b = 1
	}
	return (i / b) % p
}

// Name implements Dist1D.
func (d BlockCyclic) Name() string { return fmt.Sprintf("CYCLIC(%d)", d.B) }

// Grouped is the paper's grouped partition for class count K ≥ 1.
// K = 1 degenerates to BLOCK of the identity ordering; the paper
// notes that CYCLIC amounts to the grouped partition with k = 1 in
// its interleaving behaviour.
type Grouped struct{ K int }

// GroupedIndex returns the position of virtual index i in the
// class-major reordering: class c = i mod K occupies the contiguous
// range starting after all smaller classes (classes have size
// ⌈(n−c)/K⌉, so the reordering is a bijection of [0, n) even when K
// does not divide n).
func (d Grouped) GroupedIndex(i, n int) int {
	k := d.K
	if k < 1 {
		k = 1
	}
	c := i % k
	offset := 0
	for cc := 0; cc < c; cc++ {
		offset += (n - cc + k - 1) / k
	}
	return offset + i/k
}

// Place implements Dist1D.
func (d Grouped) Place(i, n, p int) int {
	check(i, n, p)
	return Block{}.Place(d.GroupedIndex(i, n), n, p)
}

// Name implements Dist1D.
func (d Grouped) Name() string { return fmt.Sprintf("GROUPED(%d)", d.K) }

func check(i, n, p int) {
	if p < 1 || n < 1 {
		panic(fmt.Sprintf("distrib: invalid fold %d virtual on %d physical", n, p))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("distrib: index %d out of virtual range %d", i, n))
	}
}

// Dist2D folds a 2-D virtual grid (n0×n1) onto a p0×p1 physical grid
// with independent per-dimension schemes.
type Dist2D struct {
	D0, D1 Dist1D
}

// Place returns the physical coordinates of virtual (i0, i1).
func (d Dist2D) Place(i0, i1, n0, n1, p0, p1 int) (int, int) {
	return d.D0.Place(i0, n0, p0), d.D1.Place(i1, n1, p1)
}

// Name returns "D0×D1".
func (d Dist2D) Name() string { return d.D0.Name() + "x" + d.D1.Name() }
