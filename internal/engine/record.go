package engine

import (
	"context"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/macro"
	"repro/internal/scenarios"
	"repro/internal/trace"
)

// PlanRecord is the serializable projection of one core.Plan: exactly
// the fields the cost models and batch aggregation read. It is the
// unit the disk tier persists, so a plan loaded from a warm store
// yields byte-identical batch results to a cold recomputation.
type PlanRecord struct {
	Class          int  `json:"class"`
	Vectorizable   bool `json:"vec,omitempty"`
	MacroReduction bool `json:"red,omitempty"`
	// MacroDims lists the virtual grid axes a partial axis-parallel
	// macro-communication spans (sorted; one axis for p=1, several for
	// p ≥ 2), or is empty for total/hidden/non-axis macros. The mesh
	// collective selector schedules one-axis macros along their lines
	// and multi-axis ones per plane (store layout v3; v2 recorded a
	// single MacroDim).
	MacroDims []int        `json:"mdims,omitempty"`
	Factors   []intmat.Rec `json:"factors,omitempty"`
	Dataflow  *intmat.Rec  `json:"dataflow,omitempty"`

	// ComputeUs, AlignUs, KernelUs and KernelOps are set on the first
	// record of an entry only: the wall-clock cost of the heuristic
	// run that produced the entry's plans, so a disk-loaded plan still
	// attributes its original compute cost (see PhaseTimes). They are
	// attribution metadata, not plan content — two stores may record
	// different timings for byte-identical plans, and decoding ignores
	// their absence (records written before this layout report zero).
	ComputeUs float64 `json:"compute_us,omitempty"`
	AlignUs   float64 `json:"align_us,omitempty"`
	KernelUs  float64 `json:"kernel_us,omitempty"`
	KernelOps int     `json:"kernel_ops,omitempty"`
}

// PlanStore is the disk tier consulted between the in-memory memo
// cache and a fresh computation (memory → disk → compute).
// Implementations must be safe for concurrent use and must never
// fail loudly on bad data: a missing, corrupt or mismatched entry is
// reported as ok == false, and the engine recomputes.
// internal/store provides the canonical implementation.
type PlanStore interface {
	GetPlan(key string) (plans []PlanRecord, errMsg string, ok bool)
	PutPlan(key string, plans []PlanRecord, errMsg string)
}

// KernelStore is the optional disk tier behind the kernel memo cache
// (Hermite forms, unimodular inverses, kernel bases), keyed by the
// same op:key scheme the intmat memo hooks use. A PlanStore that also
// implements KernelStore (internal/store does) gets kernel-tier
// persistence wired in automatically, so cold starts skip the exact
// linear algebra, not just the plan construction. The same
// fail-quietly contract as PlanStore applies.
type KernelStore interface {
	GetKernel(key string) (rec intmat.KernelRec, ok bool)
	PutKernel(key string, rec intmat.KernelRec)
}

// planInfo is the runtime form of one plan inside a planEntry: the
// cost-relevant projection of core.Plan, whatever tier it came from.
type planInfo struct {
	class          core.Class
	vectorizable   bool
	macroReduction bool
	// macroDims: the virtual grid axes of a partial axis-parallel
	// macro-communication (nil means total, hidden or non-axis — a
	// machine-spanning collective).
	macroDims []int
	factors   []*intmat.Mat
	dataflow  *intmat.Mat
}

// planEntry is the plan-tier cache value: the cost-relevant plan
// summaries (or the optimization error) for one distinct optimization
// problem. Entries are shared read-only across scenarios and workers.
type planEntry struct {
	plans []planInfo
	err   string
	// Compute-cost attribution, carried with the entry across the
	// cache tiers: the wall-clock of the heuristic run that produced
	// the plans (computeUs total, alignUs step 1, kernelUs/kernelOps
	// the unmemoized exact linear algebra). A disk-loaded entry
	// reports the original computation's cost.
	computeUs, alignUs, kernelUs float64
	kernelOps                    int
}

// optimizeCtx computes a plan entry from scratch via the full
// two-step heuristic, projecting the result down to what costing
// needs and recording the compute-cost attribution. When ctx carries
// an active trace it adds an "optimize" span with "alignment",
// "macro", "decompose" (from core) and an accumulated "kernel" child.
func optimizeCtx(ctx context.Context, sc *scenarios.Scenario) planEntry {
	ctx, sp := trace.StartSpan(ctx, "optimize")
	t0 := time.Now()
	stop := trackKernels()
	res, err := core.OptimizeCtx(ctx, sc.Program, sc.M, sc.Opts)
	kdur, kops := stop()
	if kops > 0 {
		trace.AddSpan(ctx, "kernel", t0, kdur,
			map[string]string{"ops": strconv.Itoa(kops)})
	}
	ent := planEntry{
		computeUs: usSince(t0),
		kernelUs:  float64(kdur) / 1e3,
		kernelOps: kops,
	}
	if err != nil {
		ent.err = err.Error()
		sp.Set("error", ent.err).End()
		return ent
	}
	ent.alignUs = float64(res.Timing.Align) / 1e3
	ent.plans = make([]planInfo, 0, len(res.Plans))
	for _, pl := range res.Plans {
		ent.plans = append(ent.plans, planInfo{
			class:          pl.Class,
			vectorizable:   pl.Vectorizable,
			macroReduction: pl.Macro != nil && pl.Macro.Kind == macro.Reduction,
			macroDims:      macroDims(pl.Macro),
			factors:        pl.Factors,
			dataflow:       pl.Dataflow,
		})
	}
	sp.SetInt("plans", int64(len(ent.plans))).End()
	return ent
}

// macroDims extracts the grid axes of a partial axis-parallel
// macro-communication: the non-zero rows of its direction matrix, in
// row order (sorted by construction). Total, hidden and non-axis
// macros report nil (machine-spanning scheduling).
func macroDims(mc *macro.Macro) []int {
	if mc == nil || !mc.Partial() || !mc.AxisParallel() {
		return nil
	}
	d := mc.Directions
	var dims []int
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if d.At(i, j) != 0 {
				dims = append(dims, i)
				break
			}
		}
	}
	return dims
}

// toRecords serializes a plan entry for the disk tier.
func toRecords(ent planEntry) ([]PlanRecord, string) {
	recs := make([]PlanRecord, 0, len(ent.plans))
	for _, p := range ent.plans {
		r := PlanRecord{
			Class:          int(p.class),
			Vectorizable:   p.vectorizable,
			MacroReduction: p.macroReduction,
			MacroDims:      p.macroDims,
		}
		for _, f := range p.factors {
			r.Factors = append(r.Factors, f.Rec())
		}
		if p.dataflow != nil {
			rec := p.dataflow.Rec()
			r.Dataflow = &rec
		}
		recs = append(recs, r)
	}
	if len(recs) > 0 {
		recs[0].ComputeUs = ent.computeUs
		recs[0].AlignUs = ent.alignUs
		recs[0].KernelUs = ent.kernelUs
		recs[0].KernelOps = ent.kernelOps
	}
	return recs, ent.err
}

// fromRecords rebuilds a plan entry from disk records, rejecting
// records that do not decode to valid matrices or classes (the caller
// treats an error as a disk miss and recomputes).
func fromRecords(recs []PlanRecord, errMsg string) (planEntry, error) {
	ent := planEntry{err: errMsg, plans: make([]planInfo, 0, len(recs))}
	for _, r := range recs {
		if r.Class < int(core.Local) || r.Class > int(core.General) {
			return planEntry{}, errBadRecord{}
		}
		p := planInfo{
			class:          core.Class(r.Class),
			vectorizable:   r.Vectorizable,
			macroReduction: r.MacroReduction,
			macroDims:      r.MacroDims,
		}
		for _, fr := range r.Factors {
			f, err := intmat.FromRec(fr)
			if err != nil {
				return planEntry{}, err
			}
			p.factors = append(p.factors, f)
		}
		if r.Dataflow != nil {
			t, err := intmat.FromRec(*r.Dataflow)
			if err != nil {
				return planEntry{}, err
			}
			p.dataflow = t
		}
		ent.plans = append(ent.plans, p)
	}
	if len(recs) > 0 {
		ent.computeUs = recs[0].ComputeUs
		ent.alignUs = recs[0].AlignUs
		ent.kernelUs = recs[0].KernelUs
		ent.kernelOps = recs[0].KernelOps
	}
	return ent, nil
}

type errBadRecord struct{}

func (errBadRecord) Error() string { return "engine: plan record has an invalid class" }

// ValidateRecords reports whether the records decode to a valid plan
// entry — the check the engine applies before trusting disk or peer
// data. The cluster replication path uses it to reject bad payloads
// at apply time instead of persisting them.
func ValidateRecords(recs []PlanRecord, errMsg string) error {
	_, err := fromRecords(recs, errMsg)
	return err
}
