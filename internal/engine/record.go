package engine

import (
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/macro"
	"repro/internal/scenarios"
)

// PlanRecord is the serializable projection of one core.Plan: exactly
// the fields the cost models and batch aggregation read. It is the
// unit the disk tier persists, so a plan loaded from a warm store
// yields byte-identical batch results to a cold recomputation.
type PlanRecord struct {
	Class          int          `json:"class"`
	Vectorizable   bool         `json:"vec,omitempty"`
	MacroReduction bool         `json:"red,omitempty"`
	Factors        []intmat.Rec `json:"factors,omitempty"`
	Dataflow       *intmat.Rec  `json:"dataflow,omitempty"`
}

// PlanStore is the disk tier consulted between the in-memory memo
// cache and a fresh computation (memory → disk → compute).
// Implementations must be safe for concurrent use and must never
// fail loudly on bad data: a missing, corrupt or mismatched entry is
// reported as ok == false, and the engine recomputes.
// internal/store provides the canonical implementation.
type PlanStore interface {
	GetPlan(key string) (plans []PlanRecord, errMsg string, ok bool)
	PutPlan(key string, plans []PlanRecord, errMsg string)
}

// planInfo is the runtime form of one plan inside a planEntry: the
// cost-relevant projection of core.Plan, whatever tier it came from.
type planInfo struct {
	class          core.Class
	vectorizable   bool
	macroReduction bool
	factors        []*intmat.Mat
	dataflow       *intmat.Mat
}

// planEntry is the plan-tier cache value: the cost-relevant plan
// summaries (or the optimization error) for one distinct optimization
// problem. Entries are shared read-only across scenarios and workers.
type planEntry struct {
	plans []planInfo
	err   string
}

// optimize computes a plan entry from scratch via the full two-step
// heuristic, projecting the result down to what costing needs.
func optimize(sc *scenarios.Scenario) planEntry {
	res, err := core.Optimize(sc.Program, sc.M, sc.Opts)
	if err != nil {
		return planEntry{err: err.Error()}
	}
	ent := planEntry{plans: make([]planInfo, 0, len(res.Plans))}
	for _, pl := range res.Plans {
		ent.plans = append(ent.plans, planInfo{
			class:          pl.Class,
			vectorizable:   pl.Vectorizable,
			macroReduction: pl.Macro != nil && pl.Macro.Kind == macro.Reduction,
			factors:        pl.Factors,
			dataflow:       pl.Dataflow,
		})
	}
	return ent
}

// toRecords serializes a plan entry for the disk tier.
func toRecords(ent planEntry) ([]PlanRecord, string) {
	recs := make([]PlanRecord, 0, len(ent.plans))
	for _, p := range ent.plans {
		r := PlanRecord{
			Class:          int(p.class),
			Vectorizable:   p.vectorizable,
			MacroReduction: p.macroReduction,
		}
		for _, f := range p.factors {
			r.Factors = append(r.Factors, f.Rec())
		}
		if p.dataflow != nil {
			rec := p.dataflow.Rec()
			r.Dataflow = &rec
		}
		recs = append(recs, r)
	}
	return recs, ent.err
}

// fromRecords rebuilds a plan entry from disk records, rejecting
// records that do not decode to valid matrices or classes (the caller
// treats an error as a disk miss and recomputes).
func fromRecords(recs []PlanRecord, errMsg string) (planEntry, error) {
	ent := planEntry{err: errMsg, plans: make([]planInfo, 0, len(recs))}
	for _, r := range recs {
		if r.Class < int(core.Local) || r.Class > int(core.General) {
			return planEntry{}, errBadRecord{}
		}
		p := planInfo{
			class:          core.Class(r.Class),
			vectorizable:   r.Vectorizable,
			macroReduction: r.MacroReduction,
		}
		for _, fr := range r.Factors {
			f, err := intmat.FromRec(fr)
			if err != nil {
				return planEntry{}, err
			}
			p.factors = append(p.factors, f)
		}
		if r.Dataflow != nil {
			t, err := intmat.FromRec(*r.Dataflow)
			if err != nil {
				return planEntry{}, err
			}
			p.dataflow = t
		}
		ent.plans = append(ent.plans, p)
	}
	return ent, nil
}

type errBadRecord struct{}

func (errBadRecord) Error() string { return "engine: plan record has an invalid class" }
