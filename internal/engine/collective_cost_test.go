package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// meshSpecs are the mesh shapes of the default, skew and big-mesh
// scenario axes.
var meshSpecs = [][2]int{{4, 4}, {8, 8}, {2, 16}, {16, 2}, {64, 2}, {2, 64}, {16, 16}}

// legacyMeshCollectiveTime reproduces the seed cost model: a software
// root-to-all (or all-to-root) loop of P−1 messages, scheduled by the
// link-contention model as one pattern.
func legacyMeshCollectiveTime(m *machine.Mesh2D, bytes int64, reduction bool) float64 {
	var msgs []machine.Message
	for r := 1; r < m.Procs(); r++ {
		msg := machine.Message{Src: 0, Dst: r, Bytes: bytes}
		if reduction {
			msg.Src, msg.Dst = msg.Dst, msg.Src
		}
		msgs = append(msgs, msg)
	}
	return m.Time(msgs)
}

func macroScenario(p, q int, algo string) *scenarios.Scenario {
	return &scenarios.Scenario{
		Machine:   scenarios.MachineSpec{Kind: scenarios.Mesh, P: p, Q: q, Algo: algo},
		N:         16,
		ElemBytes: 64,
	}
}

// TestMeshMacroNeverWorseThanLegacy is the acceptance bound at the
// engine level: on every default mesh spec, for total and axis
// macro-communications, broadcast and reduction, the selected
// collective never costs more than the old flat root-to-all.
func TestMeshMacroNeverWorseThanLegacy(t *testing.T) {
	for _, pq := range meshSpecs {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, reduction := range []bool{false, true} {
			legacy := legacyMeshCollectiveTime(m, 16*64, reduction)
			for _, dim := range []int{-1, 0, 1} {
				sc := macroScenario(pq[0], pq[1], "")
				cost, choices := meshPlanTime(sc, planInfo{
					class: core.MacroComm, macroReduction: reduction, macroDim: dim,
				})
				if cost > legacy {
					t.Errorf("mesh%dx%d dim=%d red=%v: collective cost %.0f > legacy flat %.0f",
						pq[0], pq[1], dim, reduction, cost, legacy)
				}
				if len(choices) != 1 || choices[0].Algorithm == "" {
					t.Errorf("mesh%dx%d dim=%d: macro plan recorded choices %v", pq[0], pq[1], dim, choices)
				}
			}
		}
	}
}

// TestMeshMacroForcedFlatMatchesLegacy: pinning the machine spec to
// the flat algorithm reproduces the seed cost model exactly.
func TestMeshMacroForcedFlatMatchesLegacy(t *testing.T) {
	for _, pq := range meshSpecs {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, reduction := range []bool{false, true} {
			sc := macroScenario(pq[0], pq[1], "flat")
			cost, choices := meshPlanTime(sc, planInfo{
				class: core.MacroComm, macroReduction: reduction, macroDim: -1,
			})
			if want := legacyMeshCollectiveTime(m, 16*64, reduction); cost != want {
				t.Errorf("mesh%dx%d red=%v: forced flat %.2f ≠ legacy %.2f", pq[0], pq[1], reduction, cost, want)
			}
			if len(choices) != 1 || choices[0].Algorithm != "flat" {
				t.Errorf("mesh%dx%d: forced flat chose %v", pq[0], pq[1], choices)
			}
		}
	}
}

// TestMeshMacroTopologyAware: an axis-parallel macro-communication
// prices differently on transposed mesh shapes — the tree follows the
// topology.
func TestMeshMacroTopologyAware(t *testing.T) {
	for dim := 0; dim <= 1; dim++ {
		tall, _ := meshPlanTime(macroScenario(64, 2, ""), planInfo{class: core.MacroComm, macroDim: dim})
		flat, _ := meshPlanTime(macroScenario(2, 64, ""), planInfo{class: core.MacroComm, macroDim: dim})
		if tall == flat {
			t.Errorf("dim %d: mesh64x2 and mesh2x64 macro broadcasts cost identically (%.1f µs)", dim, tall)
		}
	}
}

// TestCollectivesRecorded: scenarios whose plans include residual
// macro-communications or decomposed phases name their selected
// algorithms, and the batch report aggregates them.
func TestCollectivesRecorded(t *testing.T) {
	b := Run(suite(t), Options{Workers: 4})
	withMacro, withChoice := 0, 0
	for _, r := range b.Results {
		if r.Err != "" {
			continue
		}
		if r.Classes[core.MacroComm] > 0 || r.Classes[core.Decomposed] > 0 {
			withMacro++
			if r.Collectives != "" {
				withChoice++
				if !strings.Contains(r.Collectives, "=") {
					t.Errorf("%s: malformed collectives summary %q", r.Name, r.Collectives)
				}
			}
		}
	}
	if withMacro == 0 {
		t.Fatal("default suite has no macro/decomposed scenarios")
	}
	if withChoice == 0 {
		t.Fatal("no scenario recorded a collective choice")
	}
	if rep := b.Report(); !strings.Contains(rep, "collectives:") {
		t.Errorf("report missing the collectives line:\n%s", rep)
	}
}

// TestDecomposedPermuteNeverWorseThanDirect: routing decomposed
// phases through the permute selector can only match or improve on
// the seed's direct phase execution.
func TestDecomposedPermuteNeverWorseThanDirect(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7})
	direct := make([]scenarios.Scenario, 0, len(s))
	free := make([]scenarios.Scenario, 0, len(s))
	for _, sc := range s {
		if sc.Machine.Kind != scenarios.Mesh {
			continue
		}
		d := sc
		d.Machine.Algo = "direct"
		d.Name = "direct/" + sc.Name
		direct = append(direct, d)
		free = append(free, sc)
	}
	bd := Run(direct, Options{Workers: 4})
	bf := Run(free, Options{Workers: 4})
	for i := range bf.Results {
		rf, rd := bf.Results[i], bd.Results[i]
		if rf.Err != "" || rd.Err != "" {
			continue
		}
		// The forced-direct run also pins macro collectives to direct,
		// which is not a mesh tree name, so macros fall back to free
		// selection there; only decomposed-phase costs can differ, and
		// only downward.
		if rf.ModelTime > rd.ModelTime*(1+1e-12) {
			t.Errorf("%s: free selection %.2f > forced direct %.2f", rf.Name, rf.ModelTime, rd.ModelTime)
		}
	}
}
