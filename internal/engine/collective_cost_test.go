package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// meshSpecs are the mesh shapes of the default, skew and big-mesh
// scenario axes.
var meshSpecs = [][2]int{{4, 4}, {8, 8}, {2, 16}, {16, 2}, {64, 2}, {2, 64}, {16, 16}}

// legacyMeshCollectiveTime reproduces the seed cost model: a software
// root-to-all (or all-to-root) loop of P−1 messages, scheduled by the
// link-contention model as one pattern.
func legacyMeshCollectiveTime(m *machine.Mesh2D, bytes int64, reduction bool) float64 {
	var msgs []machine.Message
	for r := 1; r < m.Procs(); r++ {
		msg := machine.Message{Src: 0, Dst: r, Bytes: bytes}
		if reduction {
			msg.Src, msg.Dst = msg.Dst, msg.Src
		}
		msgs = append(msgs, msg)
	}
	return m.Time(msgs)
}

func macroScenario(p, q int, algo string) *scenarios.Scenario {
	return &scenarios.Scenario{
		Machine:   scenarios.MachineSpec{Kind: scenarios.Mesh, P: p, Q: q, Algo: algo},
		N:         16,
		ElemBytes: 64,
	}
}

// macroDimCases are the macroDims shapes the cost model schedules
// differently: total (nil), the two p=1 axes, and the p≥2 multi-axis
// combinations (including the virtual axis 2 of m=3 grids, which has
// no physical extent on the 2-D mesh).
var macroDimCases = [][]int{nil, {0}, {1}, {0, 1}, {0, 2}, {1, 2}, {2}}

// TestMeshMacroNeverWorseThanLegacy is the acceptance bound at the
// engine level: on every default mesh spec, for total, axis and
// per-plane macro-communications, broadcast and reduction, the
// selected collective never costs more than the old flat root-to-all.
func TestMeshMacroNeverWorseThanLegacy(t *testing.T) {
	for _, pq := range meshSpecs {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, reduction := range []bool{false, true} {
			legacy := legacyMeshCollectiveTime(m, 16*64, reduction)
			for _, dims := range macroDimCases {
				sc := macroScenario(pq[0], pq[1], "")
				cost, choices := meshPlanTime(context.Background(), sc, planInfo{
					class: core.MacroComm, macroReduction: reduction, macroDims: dims,
				}, nil, nil, nil)
				if cost > legacy {
					t.Errorf("mesh%dx%d dims=%v red=%v: collective cost %.0f > legacy flat %.0f",
						pq[0], pq[1], dims, reduction, cost, legacy)
				}
				if len(choices) != 1 || choices[0].Algorithm == "" {
					t.Errorf("mesh%dx%d dims=%v: macro plan recorded choices %v", pq[0], pq[1], dims, choices)
				}
			}
		}
	}
}

// TestMeshMacroForcedFlatMatchesLegacy: pinning the machine spec to
// the flat algorithm reproduces the seed cost model exactly.
func TestMeshMacroForcedFlatMatchesLegacy(t *testing.T) {
	for _, pq := range meshSpecs {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, reduction := range []bool{false, true} {
			sc := macroScenario(pq[0], pq[1], "flat")
			cost, choices := meshPlanTime(context.Background(), sc, planInfo{
				class: core.MacroComm, macroReduction: reduction, macroDims: nil,
			}, nil, nil, nil)
			if want := legacyMeshCollectiveTime(m, 16*64, reduction); cost != want {
				t.Errorf("mesh%dx%d red=%v: forced flat %.2f ≠ legacy %.2f", pq[0], pq[1], reduction, cost, want)
			}
			if len(choices) != 1 || choices[0].Algorithm != "flat" {
				t.Errorf("mesh%dx%d: forced flat chose %v", pq[0], pq[1], choices)
			}
		}
	}
}

// TestMeshMacroTopologyAware: axis-parallel and per-plane
// macro-communications price differently on transposed mesh shapes —
// the schedule follows the topology. The p≥2 divergence is the
// acceptance case of the per-plane refactor: a {0,1} macro on a tall
// 64×2 mesh runs a long phase and 64 short ones, its 2×64 transpose
// the opposite.
func TestMeshMacroTopologyAware(t *testing.T) {
	for _, dims := range [][]int{{0}, {1}, {0, 2}, {1, 2}} {
		tall, _ := meshPlanTime(context.Background(), macroScenario(64, 2, ""), planInfo{class: core.MacroComm, macroDims: dims}, nil, nil, nil)
		flat, _ := meshPlanTime(context.Background(), macroScenario(2, 64, ""), planInfo{class: core.MacroComm, macroDims: dims}, nil, nil, nil)
		if tall == flat {
			t.Errorf("dims %v: mesh64x2 and mesh2x64 macro broadcasts cost identically (%.1f µs)", dims, tall)
		}
	}
	// A {0,1} macro spans the whole plane, and the per-plane selector
	// tries both phase orders — so transposing the mesh transposes the
	// winning schedule and the costs coincide exactly. That symmetry is
	// the correct physics (the machines are transposes); pin it so a
	// regression in either phase order shows up.
	tall, _ := meshPlanTime(context.Background(), macroScenario(64, 2, ""), planInfo{class: core.MacroComm, macroDims: []int{0, 1}}, nil, nil, nil)
	flat, _ := meshPlanTime(context.Background(), macroScenario(2, 64, ""), planInfo{class: core.MacroComm, macroDims: []int{0, 1}}, nil, nil, nil)
	if tall != flat {
		t.Errorf("dims [0 1]: transposed meshes with both phase orders should price identically (%.1f vs %.1f µs)", tall, flat)
	}
}

// TestMeshMacroPerPlaneBound: for every default mesh spec, payload
// and pattern, a p≥2 macro under per-plane scheduling costs at most
// its machine-spanning total-collective execution (the acceptance
// criterion of the per-plane refactor — totals stay in the candidate
// pool, so the bound holds by construction and this test pins it).
func TestMeshMacroPerPlaneBound(t *testing.T) {
	for _, pq := range meshSpecs {
		for _, reduction := range []bool{false, true} {
			for _, n := range []int{4, 16, 64} {
				for _, dims := range [][]int{{0, 1}, {0, 2}, {1, 2}} {
					sc := macroScenario(pq[0], pq[1], "")
					sc.N = n
					pi := planInfo{class: core.MacroComm, macroReduction: reduction}
					pi.macroDims = dims
					plane, _ := meshPlanTime(context.Background(), sc, pi, nil, nil, nil)
					pi.macroDims = nil
					total, _ := meshPlanTime(context.Background(), sc, pi, nil, nil, nil)
					if plane > total {
						t.Errorf("mesh%dx%d dims=%v red=%v n=%d: per-plane %.2f > total %.2f",
							pq[0], pq[1], dims, reduction, n, plane, total)
					}
				}
			}
		}
	}
}

// TestMacroChoiceMemoDeterminism: memoized selection is byte-identical
// to cold selection for every scheduling mode, and repeated lookups
// hit the memo.
func TestMacroChoiceMemoDeterminism(t *testing.T) {
	cache := NewCache(0)
	for _, pq := range meshSpecs {
		for _, dims := range macroDimCases {
			sc := macroScenario(pq[0], pq[1], "")
			pi := planInfo{class: core.MacroComm, macroDims: dims}
			coldCost, coldCh := meshPlanTime(context.Background(), sc, pi, nil, nil, nil)
			for i := 0; i < 3; i++ {
				warmCost, warmCh := meshPlanTime(context.Background(), sc, pi, cache, nil, nil)
				if warmCost != coldCost || len(warmCh) != 1 || warmCh[0] != coldCh[0] {
					t.Fatalf("mesh%dx%d dims=%v: memoized selection %v (%.2f) ≠ cold %v (%.2f)",
						pq[0], pq[1], dims, warmCh, warmCost, coldCh, coldCost)
				}
			}
		}
	}
	st := cache.Stats()
	if st.SelectMisses == 0 || st.SelectHits < 2*st.SelectMisses {
		t.Errorf("memo counters off: %d hits, %d misses", st.SelectHits, st.SelectMisses)
	}
}

// TestCollectivesRecorded: scenarios whose plans include residual
// macro-communications or decomposed phases name their selected
// algorithms, and the batch report aggregates them.
func TestCollectivesRecorded(t *testing.T) {
	b := Run(suite(t), Options{Workers: 4})
	withMacro, withChoice := 0, 0
	for _, r := range b.Results {
		if r.Err != "" {
			continue
		}
		if r.Classes[core.MacroComm] > 0 || r.Classes[core.Decomposed] > 0 {
			withMacro++
			if r.Collectives != "" {
				withChoice++
				if !strings.Contains(r.Collectives, "=") {
					t.Errorf("%s: malformed collectives summary %q", r.Name, r.Collectives)
				}
			}
		}
	}
	if withMacro == 0 {
		t.Fatal("default suite has no macro/decomposed scenarios")
	}
	if withChoice == 0 {
		t.Fatal("no scenario recorded a collective choice")
	}
	if rep := b.Report(); !strings.Contains(rep, "collectives:") {
		t.Errorf("report missing the collectives line:\n%s", rep)
	}
}

// TestDecomposedPermuteNeverWorseThanDirect: routing decomposed
// phases through the permute selector can only match or improve on
// the seed's direct phase execution.
func TestDecomposedPermuteNeverWorseThanDirect(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7})
	direct := make([]scenarios.Scenario, 0, len(s))
	free := make([]scenarios.Scenario, 0, len(s))
	for _, sc := range s {
		if sc.Machine.Kind != scenarios.Mesh {
			continue
		}
		d := sc
		d.Machine.Algo = "direct"
		d.Name = "direct/" + sc.Name
		direct = append(direct, d)
		free = append(free, sc)
	}
	bd := Run(direct, Options{Workers: 4})
	bf := Run(free, Options{Workers: 4})
	for i := range bf.Results {
		rf, rd := bf.Results[i], bd.Results[i]
		if rf.Err != "" || rd.Err != "" {
			continue
		}
		// The forced-direct run also pins macro collectives to direct,
		// which is not a mesh tree name, so macros fall back to free
		// selection there; only decomposed-phase costs can differ, and
		// only downward.
		if rf.ModelTime > rd.ModelTime*(1+1e-12) {
			t.Errorf("%s: free selection %.2f > forced direct %.2f", rf.Name, rf.ModelTime, rd.ModelTime)
		}
	}
}
