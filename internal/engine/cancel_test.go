package engine

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/scenarios"
)

// cancelSuite is a suite big enough that cancelling after the first
// emitted result reliably leaves work unsubmitted.
func cancelSuite(t *testing.T) []scenarios.Scenario {
	t.Helper()
	s := scenarios.Generate(scenarios.Config{Seed: 11, Random: 10})
	if len(s) < 40 {
		t.Fatalf("suite has %d scenarios, want ≥ 40", len(s))
	}
	return s
}

// TestRunStreamCancelMidBatch: cancelling the context mid-stream
// stops the run at a scenario boundary: emission stops, RunStream
// returns context.Canceled with a partial result, unrun scenarios are
// marked with the context error, and the session stays fully usable.
func TestRunStreamCancelMidBatch(t *testing.T) {
	s := cancelSuite(t)
	sess := NewSession(Options{Workers: 2})
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var emitted int
	b, err := sess.RunStream(ctx, s, func(Result) {
		emitted++
		if emitted == 1 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("RunStream error = %v, want context.Canceled", err)
	}
	if emitted >= len(s) {
		t.Errorf("cancellation did not curtail emission: %d of %d emitted", emitted, len(s))
	}
	if len(b.Results) != len(s) {
		t.Fatalf("partial result has %d slots, want %d", len(b.Results), len(s))
	}
	cancelled := 0
	for i, r := range b.Results {
		if r.Name == "" {
			t.Errorf("result %d has no name", i)
		}
		if strings.Contains(r.Err, context.Canceled.Error()) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no scenario was marked with the context error")
	}
	if b.Errors < cancelled {
		t.Errorf("Errors = %d, want ≥ %d cancelled scenarios counted", b.Errors, cancelled)
	}

	// The pool survives: a fresh run on the same session completes
	// cleanly after the cancelled one.
	full, err := sess.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
	if full.Errors != 0 {
		t.Errorf("post-cancel run had %d errors", full.Errors)
	}
}

// TestRunStreamCancelNoGoroutineLeak: repeated cancelled runs do not
// accumulate goroutines (the feeder exits on cancellation; workers
// belong to the session).
func TestRunStreamCancelNoGoroutineLeak(t *testing.T) {
	s := cancelSuite(t)
	sess := NewSession(Options{Workers: 2})
	defer sess.Close()

	// Warm once so the baseline goroutine count is steady-state.
	if _, err := sess.Run(context.Background(), s[:4]); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		sess.RunStream(ctx, s, func(Result) {
			if n++; n == 1 {
				cancel()
			}
		})
		cancel()
	}
	// Give exiting feeders a moment, then compare against the
	// baseline with a small tolerance for runtime-internal noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after cancelled runs", base, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOptimizeCancelled: a dead context fails fast without touching
// the pool, and a live one still works.
func TestOptimizeCancelled(t *testing.T) {
	s := cancelSuite(t)
	sess := NewSession(Options{Workers: 1})
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.Optimize(ctx, &s[0])
	if err != context.Canceled {
		t.Fatalf("Optimize error = %v, want context.Canceled", err)
	}
	if res.Err == "" {
		t.Error("cancelled result has no error message")
	}

	res, err = sess.Optimize(context.Background(), &s[0])
	if err != nil || res.Err != "" {
		t.Fatalf("live Optimize failed: %v / %q", err, res.Err)
	}
}

// TestRunDeadline: a context deadline in the past cancels the whole
// batch up front.
func TestRunDeadline(t *testing.T) {
	s := cancelSuite(t)
	sess := NewSession(Options{Workers: 2})
	defer sess.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	b, err := sess.Run(ctx, s)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run error = %v, want context.DeadlineExceeded", err)
	}
	if b.Errors != len(s) {
		t.Errorf("expired deadline ran %d of %d scenarios", len(s)-b.Errors, len(s))
	}
}
