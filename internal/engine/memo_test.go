package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenarios"
)

// bigSweepConfig is the generating configuration of the published
// big-sweep baseline (baselines/big-sweep.json): the m=3 suite whose
// deep nests produce the p≥2 macro-communications the per-plane
// scheduler refines.
var bigSweepConfig = scenarios.Config{Seed: 42, Random: 6, Deep: 4, Skew: true, BigMeshes: true, M: 3}

// TestMemoDeterminismBigSweep: re-running the full big-sweep suite in
// one session serves collective selections from the memo, and the
// memoized results are byte-identical to both the first (cold) run
// and a run with the cache — and therefore the memo — disabled.
func TestMemoDeterminismBigSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full big-sweep re-run")
	}
	suite := scenarios.Generate(bigSweepConfig)
	s := NewSession(Options{Workers: 4})
	cold, err := s.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	afterCold := s.CacheStats()
	warm, err := s.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	afterWarm := s.CacheStats()
	s.Close()

	coldR, warmR := stripPhases(cold.Results), stripPhases(warm.Results)
	if !reflect.DeepEqual(coldR, warmR) {
		for i := range coldR {
			if !reflect.DeepEqual(coldR[i], warmR[i]) {
				t.Fatalf("scenario %d (%s):\n cold %+v\n warm %+v", i, suite[i].Name, coldR[i], warmR[i])
			}
		}
		t.Fatal("results differ")
	}
	if afterCold.SelectMisses == 0 {
		t.Error("cold run recorded no selection-memo misses")
	}
	if hits := afterWarm.SelectHits - afterCold.SelectHits; hits == 0 {
		t.Error("warm re-run recorded no selection-memo hits")
	}
	if misses := afterWarm.SelectMisses - afterCold.SelectMisses; misses != 0 {
		t.Errorf("warm re-run recorded %d selection-memo misses, want 0", misses)
	}

	uncached := Run(suite, Options{Workers: 4, DisableCache: true})
	uncachedR := stripPhases(uncached.Results)
	if !reflect.DeepEqual(coldR, uncachedR) {
		for i := range coldR {
			if !reflect.DeepEqual(coldR[i], uncachedR[i]) {
				t.Fatalf("scenario %d (%s):\n memoized %+v\n unmemoized %+v", i, suite[i].Name, coldR[i], uncachedR[i])
			}
		}
		t.Fatal("results differ")
	}
}

// TestBigSweepPerPlaneMacros: the big-sweep suite actually exercises
// the per-plane path — at least one scenario records a plane- or
// axis-scoped macro choice — and totals aggregate in the report.
func TestBigSweepPerPlaneMacros(t *testing.T) {
	if testing.Short() {
		t.Skip("full big-sweep run")
	}
	suite := scenarios.Generate(bigSweepConfig)
	b := Run(suite, Options{Workers: 4})
	scoped := 0
	for _, r := range b.Results {
		if r.Err != "" {
			continue
		}
		if strings.Contains(r.Collectives, "@plane") || strings.Contains(r.Collectives, "@axis") {
			scoped++
		}
	}
	if scoped == 0 {
		t.Error("no big-sweep scenario recorded a per-plane or per-line macro choice")
	}
}
