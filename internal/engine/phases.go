package engine

import (
	"runtime"
	"sync"
	"time"
)

// PhaseTimes is the per-scenario wall-clock cost attribution: where
// one scenario's engine time went, phase by phase. It rides on
// Result.Phases but is deliberately excluded from Result's JSON form
// — timings differ between runs, and snapshots must stay
// byte-identical (see store.Snapshot); emitters that want timings
// (the /v1 API, CSV) serialize it explicitly.
type PhaseTimes struct {
	// PlanSource names the tier that produced the scenario's plans
	// this run: "memory", "disk" or "compute".
	PlanSource string
	// ComputeUs, AlignUs, KernelUs and KernelOps attribute the plan
	// computation: the full two-step heuristic, step-1 alignment
	// within it, and the exact integer linear algebra (Hermite forms,
	// kernel bases) not served by the kernel memo. For "memory" and
	// "disk" plan sources they report the recorded cost of the
	// original computation — possibly from an earlier process — so
	// cost attribution survives the cache tiers; PlanSource says
	// whether the cost was paid this request.
	ComputeUs float64
	AlignUs   float64
	KernelUs  float64
	KernelOps int
	// SelectUs, SelectHits and SelectMisses cover the collective
	// selector (memoized per machine/pattern/dims/bytes): time spent
	// this run, and the memo outcome split.
	SelectUs     float64
	SelectHits   int
	SelectMisses int
	// StoreUs is the time spent on disk-tier plan lookups and
	// write-backs this run.
	StoreUs float64
	// CostUs is the cost-model walk over the plans (selection
	// included); TotalUs is the scenario's end-to-end engine time.
	CostUs  float64
	TotalUs float64
}

// SelectMemo summarizes the selection-memo outcome for this scenario:
// "hit", "miss", "mixed", or "" when no selection ran.
func (p *PhaseTimes) SelectMemo() string {
	switch {
	case p == nil || p.SelectHits+p.SelectMisses == 0:
		return ""
	case p.SelectMisses == 0:
		return "hit"
	case p.SelectHits == 0:
		return "miss"
	}
	return "mixed"
}

func usSince(t0 time.Time) float64 { return float64(time.Since(t0)) / 1e3 }

// selAcc accumulates collective-selection time and memo outcomes
// across one scenario's plans. Methods tolerate the nil receiver, so
// costing outside a scenario run needs no accumulator.
type selAcc struct {
	ns           int64
	hits, misses int
}

func (a *selAcc) observe(d time.Duration, hit bool) {
	if a == nil {
		return
	}
	a.ns += int64(d)
	if hit {
		a.hits++
	} else {
		a.misses++
	}
}

// kernelTrack maps goroutine ID → accumulator for the scenario
// computing on that goroutine. The intmat kernel hooks carry no
// context, so attribution is keyed by goroutine: kernels compute
// synchronously on the worker running the scenario.
var kernelTrack sync.Map // uint64 → *kernelAcc

type kernelAcc struct {
	dur time.Duration
	ops int
}

// observeKernel is the permanently installed process-global
// intmat.SetKernelObserver hook (see dispatch.go). Attribution is
// per-goroutine, so it is safe to share across coexisting sessions:
// only goroutines that registered via trackKernels accumulate.
func observeKernel(d time.Duration) {
	if v, ok := kernelTrack.Load(goid()); ok {
		// Only the owning goroutine reaches its accumulator, so plain
		// writes are safe.
		a := v.(*kernelAcc)
		a.dur += d
		a.ops++
	}
}

// trackKernels registers the current goroutine for kernel-time
// attribution and returns the stop function yielding the accumulated
// compute time and operation count.
func trackKernels() func() (time.Duration, int) {
	id := goid()
	a := &kernelAcc{}
	kernelTrack.Store(id, a)
	return func() (time.Duration, int) {
		kernelTrack.Delete(id)
		return a.dur, a.ops
	}
}

// goid parses the current goroutine's ID from the runtime.Stack
// header ("goroutine 123 [running]:"). It is called only around
// kernel computations — the expensive exact-linear-algebra path —
// where the stack-header cost is noise.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// PhaseTotals aggregates the session's per-phase wall-clock spend
// over every scenario it has run — the /v1/stats and metrics view of
// PhaseTimes. Align/Kernel/Compute count only scenarios whose plans
// were computed this session (PlanSource "compute"), never the
// recorded historical cost a cache or disk hit reports.
type PhaseTotals struct {
	Scenarios uint64
	ComputeUs float64
	AlignUs   float64
	KernelUs  float64
	SelectUs  float64
	StoreUs   float64
	CostUs    float64
	TotalUs   float64
}

// addPhases folds one scenario's breakdown into the session totals.
// Accumulation is in integer nanoseconds (atomic adds); toNs rounds
// rather than truncates, since the µs values are ns counts divided by
// 1e3 and truncation would drop a whole ns of float residue per
// scenario.
func (s *Session) addPhases(p *PhaseTimes) {
	toNs := func(us float64) int64 { return int64(us*1e3 + 0.5) }
	s.phaseScenarios.Add(1)
	if p.PlanSource == "compute" {
		s.phaseComputeNs.Add(toNs(p.ComputeUs))
		s.phaseAlignNs.Add(toNs(p.AlignUs))
		s.phaseKernelNs.Add(toNs(p.KernelUs))
	}
	s.phaseSelectNs.Add(toNs(p.SelectUs))
	s.phaseStoreNs.Add(toNs(p.StoreUs))
	s.phaseCostNs.Add(toNs(p.CostUs))
	s.phaseTotalNs.Add(toNs(p.TotalUs))
}

// PhaseTotals snapshots the session's cumulative phase attribution.
func (s *Session) PhaseTotals() PhaseTotals {
	return PhaseTotals{
		Scenarios: s.phaseScenarios.Load(),
		ComputeUs: float64(s.phaseComputeNs.Load()) / 1e3,
		AlignUs:   float64(s.phaseAlignNs.Load()) / 1e3,
		KernelUs:  float64(s.phaseKernelNs.Load()) / 1e3,
		SelectUs:  float64(s.phaseSelectNs.Load()) / 1e3,
		StoreUs:   float64(s.phaseStoreNs.Load()) / 1e3,
		CostUs:    float64(s.phaseCostNs.Load()) / 1e3,
		TotalUs:   float64(s.phaseTotalNs.Load()) / 1e3,
	}
}
