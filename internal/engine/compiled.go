package engine

import (
	"context"

	"repro/internal/compiled"
	"repro/internal/scenarios"
	"repro/internal/trace"
)

// CompiledStore is the optional disk tier behind the compiled-artifact
// cache, keyed by the scenario plan key. A PlanStore that also
// implements CompiledStore (internal/store does) gets artifact
// persistence wired in automatically, so lattice sweeps and daemon
// restarts skip the structural compile, not just the plan
// construction. The same fail-quietly contract as PlanStore applies.
type CompiledStore interface {
	GetCompiled(key string) (rec compiled.ArtifactRec, ok bool)
	PutCompiled(key string, rec compiled.ArtifactRec)
}

// planShapes converts a plan-tier entry to the compiled package's
// machine-independent projection. The fields correspond one to one,
// so an artifact built from a cached entry is byte-identical to one
// compiled from scratch.
func planShapes(ent planEntry) []compiled.PlanShape {
	shapes := make([]compiled.PlanShape, 0, len(ent.plans))
	for _, p := range ent.plans {
		shapes = append(shapes, compiled.PlanShape{
			Class:          p.class,
			Vectorizable:   p.vectorizable,
			MacroReduction: p.macroReduction,
			MacroDims:      p.macroDims,
			Factors:        p.factors,
			Dataflow:       p.dataflow,
		})
	}
	return shapes
}

// CompiledArtifact returns the compiled structural artifact for the
// scenario's optimization problem, through the session's cache tiers:
// artifact memory → compiled disk tier → build from the plan tier
// (which itself goes memory → disk → peer → compute). The artifact is
// machine-independent — every scenario sharing the nest's PlanKey
// shares it — and evaluating it with the session's Pricer prices any
// machine point without re-running alignment, Hermite forms or
// schedule construction. Records a "compiled.artifact" span when ctx
// carries an active trace.
func (s *Session) CompiledArtifact(ctx context.Context, sc *scenarios.Scenario) *compiled.Artifact {
	ctx, sp := trace.StartSpan(ctx, "compiled.artifact")
	defer sp.End()
	key := sc.PlanKey()
	if s.cache == nil {
		sp.Set("source", "compute")
		ent := optimizeCtx(ctx, sc)
		return compiled.New(key, planShapes(ent), ent.err)
	}
	ck := "compiled:" + key
	if v, ok := s.cache.lookup(ck); ok {
		s.cache.compiledHits.Add(1)
		sp.Set("source", "memory")
		return v.(*compiled.Artifact)
	}
	s.cache.compiledMisses.Add(1)
	if s.cstore != nil {
		_, lsp := trace.StartSpan(ctx, "store.lookup")
		lsp.Set("tier", "compiled")
		if rec, ok := s.cstore.GetCompiled(key); ok {
			if art, err := compiled.FromRec(rec); err == nil && art.Key == key {
				s.cache.compiledDiskHits.Add(1)
				s.cache.store(ck, art)
				lsp.Set("result", "hit").End()
				sp.Set("source", "disk")
				return art
			}
		}
		s.cache.compiledDiskMisses.Add(1)
		lsp.Set("result", "miss").End()
	}
	// Build from the plan tier: the structural phase is exactly the
	// plan-tier computation, so a warm plan cache (memory, disk or
	// peer) makes artifact construction a pure projection.
	ent := s.cache.planDo(key, func() planEntry {
		e, _, _ := computeOrLoad(ctx, sc, s.cache, s.store, s.remote)
		return e
	})
	art := compiled.New(key, planShapes(ent), ent.err)
	s.cache.store(ck, art)
	if s.cstore != nil {
		s.cstore.PutCompiled(key, art.Rec())
	}
	sp.Set("source", "plans")
	return art
}
