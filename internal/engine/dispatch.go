package engine

import (
	"sync"

	"repro/internal/intmat"
)

// Sessions used to be serialized process-wide because the intmat
// kernel-cache hook is a single global: two overlapping sessions (one
// cached, one not) would have leaked one session's cache into the
// other's "uncached" ablation and misattributed stats. The clustered
// serving tier needs several live sessions per process (a 2-node
// in-process cluster test runs two daemons), so the hook is now a
// permanently installed dispatcher that routes each kernel
// computation to the cache of the session whose worker goroutine is
// running it. Kernels compute synchronously on the worker, so the
// goroutine ID identifies the owning session exactly — the same
// mechanism kernel-time attribution has always used (see phases.go).
//
// A goroutine with no registered session (a DisableCache worker, or
// any non-engine caller) sees no cache at all, which preserves the
// old SetKernelCache(nil) semantics for ablations.

// workerCaches maps goroutine ID → the cache of the session whose
// worker runs on that goroutine. Workers of cache-disabled sessions
// never register.
var workerCaches sync.Map // uint64 → *Cache

// registerWorker binds the current goroutine to cache for kernel-tier
// dispatch and returns the unregister function. A nil cache is a
// no-op (DisableCache ablation).
func registerWorker(cache *Cache) func() {
	if cache == nil {
		return func() {}
	}
	id := goid()
	workerCaches.Store(id, cache)
	return func() { workerCaches.Delete(id) }
}

// cacheDispatch is the process-global intmat.KernelCache: it forwards
// Get/Put to the session cache registered for the calling goroutine,
// behaving as "no cache" for unregistered goroutines.
type cacheDispatch struct{}

func (cacheDispatch) Get(key string) (any, bool) {
	if v, ok := workerCaches.Load(goid()); ok {
		return v.(*Cache).Get(key)
	}
	return nil, false
}

func (cacheDispatch) Put(key string, v any) {
	if c, ok := workerCaches.Load(goid()); ok {
		c.(*Cache).Put(key, v)
	}
}

func init() {
	intmat.SetKernelCache(cacheDispatch{})
	intmat.SetKernelObserver(observeKernel)
}
