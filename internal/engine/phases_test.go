package engine

import (
	"context"
	"testing"

	"repro/internal/scenarios"
	"repro/internal/trace"
)

// macroSuiteScenario returns a scenario whose optimization yields at
// least one macro-communication, so collective selection runs (the
// paper's example 1 broadcasts on the fat tree).
func macroSuiteScenario(t *testing.T) *scenarios.Scenario {
	t.Helper()
	s := scenarios.Generate(scenarios.Config{Seed: 7})
	if len(s) == 0 {
		t.Fatal("empty default suite")
	}
	return &s[0]
}

// TestPhaseAttribution: a cold run attributes compute/align/kernel
// time, a warm run reports the memory tier with the recorded compute
// cost and an all-hit selection memo, and a fresh session over the
// same store reports the disk tier — with the original compute cost
// carried through the PlanRecord timing fields.
func TestPhaseAttribution(t *testing.T) {
	sc := macroSuiteScenario(t)
	st := newMemStore()
	sess := NewSession(Options{Workers: 2, Store: st})

	cold, err := sess.Optimize(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	ph := cold.Phases
	if ph == nil {
		t.Fatal("cold result has no phase breakdown")
	}
	if ph.PlanSource != "compute" {
		t.Errorf("cold plan source = %q, want compute", ph.PlanSource)
	}
	if ph.ComputeUs <= 0 || ph.AlignUs <= 0 || ph.TotalUs <= 0 {
		t.Errorf("cold run lost compute attribution: %+v", ph)
	}
	if ph.KernelOps == 0 || ph.KernelUs <= 0 {
		t.Errorf("no kernel time attributed on a cold run: %+v", ph)
	}
	if cold.Collectives == "" {
		t.Fatalf("scenario %s selected no collectives; pick one that does", sc.Name)
	}
	if ph.SelectMemo() != "miss" {
		t.Errorf("cold selection memo = %q (%d hits, %d misses), want miss",
			ph.SelectMemo(), ph.SelectHits, ph.SelectMisses)
	}

	warm, err := sess.Optimize(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	wph := warm.Phases
	if wph.PlanSource != "memory" {
		t.Errorf("warm plan source = %q, want memory", wph.PlanSource)
	}
	if wph.ComputeUs != ph.ComputeUs || wph.KernelOps != ph.KernelOps {
		t.Errorf("warm run lost the recorded compute cost: cold %+v warm %+v", ph, wph)
	}
	if wph.SelectMemo() != "hit" {
		t.Errorf("warm selection memo = %q (%d hits, %d misses), want hit",
			wph.SelectMemo(), wph.SelectHits, wph.SelectMisses)
	}

	totals := sess.PhaseTotals()
	if totals.Scenarios != 2 {
		t.Errorf("session counted %d scenarios, want 2", totals.Scenarios)
	}
	// Only the cold run computed; the warm run must not double-count
	// the recorded historical cost.
	if totals.ComputeUs != ph.ComputeUs {
		t.Errorf("session compute total %g, want the cold run's %g", totals.ComputeUs, ph.ComputeUs)
	}
	// The session accumulates in integer nanoseconds, so allow one ns
	// of rounding against the float sum of the per-scenario values.
	if totals.TotalUs < ph.TotalUs+wph.TotalUs-0.001 {
		t.Errorf("session total %g < sum of scenario totals %g", totals.TotalUs, ph.TotalUs+wph.TotalUs)
	}
	sess.Close()

	// A fresh session over the same store: plans come from disk, and
	// the PlanRecord timing fields carry the original compute cost.
	sess2 := NewSession(Options{Workers: 2, Store: st})
	defer sess2.Close()
	disk, err := sess2.Optimize(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	dph := disk.Phases
	if dph.PlanSource != "disk" {
		t.Errorf("fresh-session plan source = %q, want disk", dph.PlanSource)
	}
	if dph.StoreUs <= 0 {
		t.Errorf("disk hit attributed no store time: %+v", dph)
	}
	if dph.ComputeUs != ph.ComputeUs || dph.AlignUs != ph.AlignUs ||
		dph.KernelUs != ph.KernelUs || dph.KernelOps != ph.KernelOps {
		t.Errorf("disk-loaded entry lost the recorded compute cost:\n cold %+v\n disk %+v", ph, dph)
	}
	if ct := sess2.PhaseTotals().ComputeUs; ct != 0 {
		t.Errorf("fresh session charged %gµs of compute for a disk hit", ct)
	}
}

// spanNames flattens a recorded trace into name → spans.
func spanNames(td *trace.TraceData) map[string][]trace.SpanData {
	out := map[string][]trace.SpanData{}
	for _, sd := range td.Spans {
		out[sd.Name] = append(out[sd.Name], sd)
	}
	return out
}

// TestScenarioTrace: optimizing under an active trace records the
// full span tree — scenario, store lookup, optimize with alignment
// and kernel children, collective selection — with non-zero durations
// and the memo annotation flipping to "hit" on a warm re-run.
func TestScenarioTrace(t *testing.T) {
	sc := macroSuiteScenario(t)
	st := newMemStore()
	sess := NewSession(Options{Workers: 2, Store: st})
	defer sess.Close()
	rec := trace.NewRecorder(4)

	ctx, root := trace.StartRoot(context.Background(), rec, "cold", "")
	if _, err := sess.Optimize(ctx, sc); err != nil {
		t.Fatal(err)
	}
	root.End()
	td, ok := rec.Get(root.TraceID().String())
	if !ok {
		t.Fatal("cold trace not recorded")
	}
	names := spanNames(td)
	for _, want := range []string{"scenario", "store.lookup", "optimize", "alignment", "kernel", "collective.select"} {
		spans := names[want]
		if len(spans) == 0 {
			t.Fatalf("cold trace has no %q span:\n%s", want, td.TreeString())
		}
		for _, sd := range spans {
			if sd.DurationUs <= 0 {
				t.Errorf("%q span has zero duration", want)
			}
		}
	}
	if got := names["scenario"][0].Attrs["plan_source"]; got != "compute" {
		t.Errorf("cold scenario span plan_source = %q, want compute", got)
	}
	if got := names["store.lookup"][0].Attrs["result"]; got != "miss" {
		t.Errorf("cold store.lookup result = %q, want miss", got)
	}
	if got := names["collective.select"][0].Attrs["memo"]; got != "miss" {
		t.Errorf("cold select memo = %q, want miss", got)
	}

	ctx, root = trace.StartRoot(context.Background(), rec, "warm", "")
	if _, err := sess.Optimize(ctx, sc); err != nil {
		t.Fatal(err)
	}
	root.End()
	td, ok = rec.Get(root.TraceID().String())
	if !ok {
		t.Fatal("warm trace not recorded")
	}
	names = spanNames(td)
	if got := names["scenario"][0].Attrs["select_memo"]; got != "hit" {
		t.Errorf("warm scenario select_memo = %q, want hit:\n%s", got, td.TreeString())
	}
	for _, sd := range names["collective.select"] {
		if sd.Attrs["memo"] != "hit" {
			t.Errorf("warm select span memo = %q, want hit", sd.Attrs["memo"])
		}
	}
	if len(names["optimize"]) != 0 {
		t.Error("warm run recorded an optimize span despite the memory hit")
	}
}
