package engine

import (
	"context"

	"testing"

	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/scenarios"
)

// benchMacroPlan is the hot planInfo shape: a p≥2 broadcast macro on
// the square big mesh, the most schedule-construction-heavy selection.
var benchMacroPlan = planInfo{class: core.MacroComm, macroDims: []int{0, 1}}

func benchMacroScenario() *scenarios.Scenario {
	return &scenarios.Scenario{
		Machine:   scenarios.MachineSpec{Kind: scenarios.Mesh, P: 16, Q: 16},
		N:         16,
		ElemBytes: 64,
	}
}

// BenchmarkCollectiveMemoCold measures the unmemoized selector path
// the engine pays without a session cache: every iteration rebuilds
// and reprices every candidate schedule.
func BenchmarkCollectiveMemoCold(b *testing.B) {
	sc := benchMacroScenario()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost, _ = meshPlanTime(context.Background(), sc, benchMacroPlan, nil, nil, nil)
	}
	b.ReportMetric(cost, "model-µs")
}

// BenchmarkCollectiveMemoWarm measures the memoized path of a
// repeated suite: after the first selection, every iteration is one
// memo lookup. Compare against BenchmarkCollectiveMemoCold — the gap
// is what the session memo saves per macro-communication.
func BenchmarkCollectiveMemoWarm(b *testing.B) {
	sc := benchMacroScenario()
	cache := NewCache(0)
	meshPlanTime(context.Background(), sc, benchMacroPlan, cache, nil, nil) // populate
	b.ResetTimer()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost, _ = meshPlanTime(context.Background(), sc, benchMacroPlan, cache, nil, nil)
	}
	b.ReportMetric(cost, "model-µs")
}

// benchLatticeGrid is the 64-point capacity-planning lattice the
// compiled-tier benchmarks sweep: 4 mesh geometries × 16 payloads,
// the bytes-heavy shape of a switch-point scan (where along the
// payload axis does the chosen schedule flip?).
func benchLatticeGrid(b *testing.B) *compiled.Grid {
	g, err := compiled.ParseGrid("mesh{4..32}x8:bytes=1k..32M")
	if err != nil {
		b.Fatal(err)
	}
	if g.Points() != 64 {
		b.Fatalf("lattice grid has %d points, want 64", g.Points())
	}
	return g
}

// benchLatticeNest is the deep macro-dominated nest the lattice
// benchmarks sweep: its plans are local and macro-communication
// shapes only, so the compiled evaluator prices each lattice point
// with pure template arithmetic — the capacity-planning shape the
// compiled tier exists for. (Decomposed/general-heavy nests pay the
// same pattern simulation on both paths; they are covered by the
// equivalence tests, not the speedup benchmark.)
func benchLatticeNest() scenarios.Scenario {
	suite := scenarios.Generate(scenarios.Config{Seed: 42, Random: 1, NoExamples: true, Deep: 6, M: 3})
	for i := range suite {
		if suite[i].Program.Name == "deep005" {
			return suite[i]
		}
	}
	panic("benchmark nest deep005 missing from generated suite")
}

// BenchmarkCompiledLattice measures the compiled path over the
// 64-point lattice: one structural compile plus 64 cheap template
// evaluations per iteration (fresh pricer each iteration, so template
// compilation is charged too). Compare against
// BenchmarkUncompiledLattice — the ratio is the compile-once/
// evaluate-many win the compiled tier exists for.
func BenchmarkCompiledLattice(b *testing.B) {
	g := benchLatticeGrid(b)
	base := benchLatticeNest()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := compiled.NewPricer()
		art := compiled.Compile(&base)
		if art.Err != "" {
			b.Fatal(art.Err)
		}
		for _, ms := range g.Machines {
			for _, eb := range g.Bytes {
				pt := art.Eval(pr, ms, base.Dist, base.N, eb)
				sink += pt.ModelTime
			}
		}
	}
	b.ReportMetric(sink, "model-µs")
}

// BenchmarkUncompiledLattice is the same 64-point sweep without the
// compiled tier: every lattice point pays a full cold optimization
// and cold collective selection, exactly what a -no-cache batch of 64
// scenarios would.
func BenchmarkUncompiledLattice(b *testing.B) {
	g := benchLatticeGrid(b)
	base := benchLatticeNest()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ms := range g.Machines {
			for _, eb := range g.Bytes {
				sc := base
				sc.Machine = ms
				sc.ElemBytes = eb
				ent := optimizeCtx(context.Background(), &sc)
				if ent.err != "" {
					b.Fatal(ent.err)
				}
				for _, pl := range ent.plans {
					t, _ := planTime(context.Background(), &sc, pl, nil, nil, nil)
					sink += t
				}
			}
		}
	}
	b.ReportMetric(sink, "model-µs")
}

// BenchmarkCompiledCompile isolates the structural phase: one full
// compile of the benchmark nest.
func BenchmarkCompiledCompile(b *testing.B) {
	base := benchLatticeNest()
	for i := 0; i < b.N; i++ {
		if art := compiled.Compile(&base); art.Err != "" {
			b.Fatal(art.Err)
		}
	}
}

// BenchmarkCompiledEvalWarm isolates the numeric phase: pricing one
// lattice point against a warm template cache — the steady-state cost
// of widening a sweep by one point.
func BenchmarkCompiledEvalWarm(b *testing.B) {
	g := benchLatticeGrid(b)
	base := benchLatticeNest()
	pr := compiled.NewPricer()
	art := compiled.Compile(&base)
	if art.Err != "" {
		b.Fatal(art.Err)
	}
	for _, ms := range g.Machines {
		for _, eb := range g.Bytes {
			art.Eval(pr, ms, base.Dist, base.N, eb) // warm every template
		}
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		pt := art.Eval(pr, g.Machines[i%len(g.Machines)], base.Dist, base.N, g.Bytes[i%len(g.Bytes)])
		sink += pt.ModelTime
	}
	b.ReportMetric(sink, "model-µs")
}
