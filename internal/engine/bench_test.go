package engine

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/scenarios"
)

// benchMacroPlan is the hot planInfo shape: a p≥2 broadcast macro on
// the square big mesh, the most schedule-construction-heavy selection.
var benchMacroPlan = planInfo{class: core.MacroComm, macroDims: []int{0, 1}}

func benchMacroScenario() *scenarios.Scenario {
	return &scenarios.Scenario{
		Machine:   scenarios.MachineSpec{Kind: scenarios.Mesh, P: 16, Q: 16},
		N:         16,
		ElemBytes: 64,
	}
}

// BenchmarkCollectiveMemoCold measures the unmemoized selector path
// the engine pays without a session cache: every iteration rebuilds
// and reprices every candidate schedule.
func BenchmarkCollectiveMemoCold(b *testing.B) {
	sc := benchMacroScenario()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost, _ = meshPlanTime(context.Background(), sc, benchMacroPlan, nil, nil)
	}
	b.ReportMetric(cost, "model-µs")
}

// BenchmarkCollectiveMemoWarm measures the memoized path of a
// repeated suite: after the first selection, every iteration is one
// memo lookup. Compare against BenchmarkCollectiveMemoCold — the gap
// is what the session memo saves per macro-communication.
func BenchmarkCollectiveMemoWarm(b *testing.B) {
	sc := benchMacroScenario()
	cache := NewCache(0)
	meshPlanTime(context.Background(), sc, benchMacroPlan, cache, nil) // populate
	b.ResetTimer()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost, _ = meshPlanTime(context.Background(), sc, benchMacroPlan, cache, nil)
	}
	b.ReportMetric(cost, "model-µs")
}
