package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/scenarios"
)

// sameShardKeys returns n distinct keys that hash to the same shard
// as anchor, so LRU ordering inside one shard can be tested
// deterministically.
func sameShardKeys(c *Cache, anchor string, n int) []string {
	target := c.shard(anchor)
	keys := []string{anchor}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("%s-%d", anchor, i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestCacheEviction: the cache drops least-recently-used entries once
// past its cap and counts the evictions.
func TestCacheEviction(t *testing.T) {
	const cap = 32
	c := NewCache(cap)
	for i := 0; i < 10*cap; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > cap {
		t.Errorf("cache holds %d entries, cap %d", n, cap)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions counted after 10× overfill")
	}
	if st.Entries+int(st.Evictions) != 10*cap {
		t.Errorf("entries %d + evictions %d ≠ inserts %d", st.Entries, st.Evictions, 10*cap)
	}
}

// TestCacheLRUOrder: within one shard, a recently used entry survives
// an eviction that removes a stale one.
func TestCacheLRUOrder(t *testing.T) {
	// 16 shards × per-shard cap 2 = cap 32.
	c := NewCache(32)
	keys := sameShardKeys(c, "anchor", 3)
	c.Put(keys[0], "a")
	c.Put(keys[1], "b")
	if _, ok := c.Get(keys[0]); !ok { // refresh keys[0]
		t.Fatal("keys[0] missing before eviction")
	}
	c.Put(keys[2], "c") // shard over cap: evicts LRU = keys[1]
	if _, ok := c.lookup(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.lookup(keys[1]); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.lookup(keys[2]); !ok {
		t.Error("newly inserted entry missing")
	}
}

// TestCacheUnbounded: a negative cap disables eviction.
func TestCacheUnbounded(t *testing.T) {
	c := NewCache(-1)
	for i := 0; i < 10000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n != 10000 {
		t.Errorf("unbounded cache holds %d entries, want 10000", n)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("unbounded cache evicted %d entries", ev)
	}
}

// TestCacheCapConsistency: a run squeezed through a tiny cache must
// still produce byte-identical results — eviction costs recomputation,
// never correctness.
func TestCacheCapConsistency(t *testing.T) {
	s := suite(t)
	base := Run(s, Options{Workers: 4})
	tiny := Run(s, Options{Workers: 4, CacheCap: 16})
	if !reflect.DeepEqual(stripPhases(base.Results), stripPhases(tiny.Results)) {
		t.Fatal("results differ under a tiny cache cap")
	}
	if tiny.Cache.Evictions == 0 {
		t.Error("tiny cap saw no evictions on the default suite")
	}
	if tiny.Cache.Entries > 16 {
		t.Errorf("tiny cache holds %d entries, cap 16", tiny.Cache.Entries)
	}
}

// memStore is an in-memory PlanStore for engine-level disk-tier
// tests (the real disk implementation lives in internal/store).
type memStore struct {
	mu   sync.Mutex
	m    map[string]memPlan
	puts int
}

type memPlan struct {
	plans []PlanRecord
	err   string
}

func newMemStore() *memStore { return &memStore{m: map[string]memPlan{}} }

func (s *memStore) GetPlan(key string) ([]PlanRecord, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[key]
	return p.plans, p.err, ok
}

func (s *memStore) PutPlan(key string, plans []PlanRecord, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = memPlan{plans, errMsg}
	s.puts++
}

// TestStoreTier: a second run against a warm store computes nothing —
// every plan-tier memory miss is served from the store — and yields
// results identical to the cold run.
func TestStoreTier(t *testing.T) {
	s := suite(t)
	st := newMemStore()
	cold := Run(s, Options{Workers: 4, Store: st})
	if cold.Cache.DiskHits != 0 {
		t.Errorf("cold run had %d disk hits", cold.Cache.DiskHits)
	}
	if cold.Cache.DiskMisses != cold.Cache.PlanMisses {
		t.Errorf("cold run: %d disk misses, want %d (= plan misses)",
			cold.Cache.DiskMisses, cold.Cache.PlanMisses)
	}
	if st.puts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	warm := Run(s, Options{Workers: 4, Store: st})
	coldR, warmR := stripPhases(cold.Results), stripPhases(warm.Results)
	if !reflect.DeepEqual(coldR, warmR) {
		for i := range coldR {
			if !reflect.DeepEqual(coldR[i], warmR[i]) {
				t.Fatalf("scenario %d (%s):\n cold %+v\n warm %+v",
					i, s[i].Name, coldR[i], warmR[i])
			}
		}
		t.Fatal("results differ")
	}
	if warm.Cache.DiskMisses != 0 {
		t.Errorf("warm run missed the store %d times", warm.Cache.DiskMisses)
	}
	if warm.Cache.DiskHits != warm.Cache.PlanMisses {
		t.Errorf("warm run: %d disk hits, want %d (every memory miss served from disk)",
			warm.Cache.DiskHits, warm.Cache.PlanMisses)
	}
}

// TestStoreTierBadRecords: undecodable store records are treated as
// misses and overwritten with fresh plans, never trusted or fatal.
func TestStoreTierBadRecords(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 1, NoExamples: true})
	st := newMemStore()
	base := Run(s, Options{Workers: 2, Store: st})
	// Corrupt every stored record: invalid class and a broken matrix.
	st.mu.Lock()
	for k := range st.m {
		st.m[k] = memPlan{plans: []PlanRecord{{Class: 99}}}
	}
	st.mu.Unlock()
	again := Run(s, Options{Workers: 2, Store: st})
	if !reflect.DeepEqual(stripPhases(base.Results), stripPhases(again.Results)) {
		t.Fatal("corrupt store records changed results")
	}
	if again.Cache.DiskHits != 0 {
		t.Errorf("corrupt records produced %d disk hits", again.Cache.DiskHits)
	}
}

// TestStoreErrorCached: failing scenarios are persisted too, so a
// warm run reproduces the error without recomputation.
func TestStoreErrorCached(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 1, NoExamples: true})
	bad := s[0]
	bad.M = 0
	bad.Name = "bad/m0"
	batch := []scenarios.Scenario{bad}
	st := newMemStore()
	cold := Run(batch, Options{Store: st})
	if cold.Results[0].Err == "" {
		t.Fatal("m=0 scenario did not error")
	}
	warm := Run(batch, Options{Store: st})
	if warm.Results[0].Err != cold.Results[0].Err {
		t.Errorf("warm error %q ≠ cold error %q", warm.Results[0].Err, cold.Results[0].Err)
	}
	if warm.Cache.DiskHits != 1 {
		t.Errorf("warm run had %d disk hits, want 1", warm.Cache.DiskHits)
	}
}

// TestSessionReuse: one session serving many Optimize calls shares
// its plan cache across them, like the daemon does across requests.
func TestSessionReuse(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 2, NoExamples: true})
	sess := NewSession(Options{Workers: 2})
	defer sess.Close()
	first, err := sess.Optimize(context.Background(), &s[0])
	if err != nil {
		t.Fatal(err)
	}
	again, err := sess.Optimize(context.Background(), &s[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripPhases([]Result{first}), stripPhases([]Result{again})) {
		t.Fatal("repeated Optimize returned different results")
	}
	if hits := sess.CacheStats().PlanHits; hits == 0 {
		t.Error("second Optimize of the same scenario missed the plan cache")
	}
}

// TestRunStreamOrder: RunStream emits every result exactly once, in
// input order, and returns the same aggregate as Run.
func TestRunStreamOrder(t *testing.T) {
	s := suite(t)
	sess := NewSession(Options{Workers: 8})
	defer sess.Close()
	var streamed []Result
	b, err := sess.RunStream(context.Background(), s, func(r Result) { streamed = append(streamed, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(s) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(s))
	}
	for i := range streamed {
		if streamed[i].Name != s[i].Name {
			t.Fatalf("stream position %d: got %s, want %s", i, streamed[i].Name, s[i].Name)
		}
	}
	if !reflect.DeepEqual(streamed, b.Results) {
		t.Fatal("streamed results differ from the batch results")
	}
}
