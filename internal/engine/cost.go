package engine

import (
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// planTime costs one communication plan on the scenario's machine
// model, in model-µs. It reads only the cost-relevant projection of
// the plan (planInfo), so plans loaded from the disk store cost
// identically to freshly computed ones.
//
// Fat tree (CM-5-like): the four Table-1 primitives. The scenario's
// per-processor payload is N elements of ElemBytes; a vectorizable
// plan (Section 4.5) moves it in one operation, a non-vectorizable
// one pays N element-wise operations.
//
// Mesh (Paragon-like): plans with a concrete 2×2 data-flow matrix are
// simulated message-by-message on the N×N virtual grid under the
// scenario's distribution (AffineComm2D for decomposed factors,
// GeneralComm2D for direct general execution — the Table-2
// methodology). Macro-communications, which the mesh has no hardware
// collective for, are costed as an explicit root-to-all (or
// all-to-root, for reductions) message pattern. A general plan whose
// data-flow matrix is unknown is costed with the transpose
// permutation [[0,1],[1,0]] as a deterministic stand-in pattern.
func planTime(sc *scenarios.Scenario, pl planInfo) float64 {
	if pl.class == core.Local {
		return 0
	}
	if sc.Machine.Kind == scenarios.Mesh {
		return meshPlanTime(sc, pl)
	}
	return fatTreePlanTime(sc, pl)
}

func fatTreePlanTime(sc *scenarios.Scenario, pl planInfo) float64 {
	ft := machine.DefaultFatTree(sc.Machine.P)
	one := func(bytes int64) float64 {
		switch pl.class {
		case core.MacroComm:
			if pl.macroReduction {
				return ft.Reduction(bytes)
			}
			return ft.Broadcast(bytes)
		case core.Decomposed:
			k := len(pl.factors)
			if k == 0 {
				k = 1 // pure translation
			}
			return float64(k) * ft.Translation(bytes)
		default:
			return ft.General(1, bytes)
		}
	}
	if pl.vectorizable {
		return one(sc.ElemBytes * int64(sc.N))
	}
	return float64(sc.N) * one(sc.ElemBytes)
}

// standInGeneral is the deterministic pattern used when a general
// plan has no usable 2×2 data-flow matrix.
var standInGeneral = intmat.New(2, 2, 0, 1, 1, 0)

func meshPlanTime(sc *scenarios.Scenario, pl planInfo) float64 {
	m := machine.DefaultMesh(sc.Machine.P, sc.Machine.Q)
	n, eb := sc.N, sc.ElemBytes
	switch pl.class {
	case core.MacroComm:
		return meshCollectiveTime(m, eb*int64(n), pl.macroReduction)
	case core.Decomposed:
		if len(pl.factors) > 0 && is2x2(pl.factors[0]) {
			return machine.DecomposedTime(m, sc.Dist, pl.factors, n, n, eb)
		}
		// pure translation (T = Id), or factors outside the 2-D
		// simulator: unit-shift phases
		k := len(pl.factors)
		if k == 0 {
			k = 1
		}
		shift := m.Time(machine.AffineComm2D(m, sc.Dist, intmat.Identity(2), []int64{1, 1}, n, n, eb))
		return float64(k) * shift
	default: // General
		t := pl.dataflow
		if t == nil || !is2x2(t) {
			t = standInGeneral
		}
		return m.Time(machine.GeneralComm2D(m, sc.Dist, t, nil, n, n, eb))
	}
}

func is2x2(m *intmat.Mat) bool { return m != nil && m.Rows() == 2 && m.Cols() == 2 }

// meshCollectiveTime costs a software broadcast (root to all) or
// reduction (all to root) on the mesh: one point-to-point message per
// non-root processor, scheduled by the mesh's link-contention model.
func meshCollectiveTime(m *machine.Mesh2D, bytes int64, reduction bool) float64 {
	var msgs []machine.Message
	for r := 1; r < m.Procs(); r++ {
		msg := machine.Message{Src: 0, Dst: r, Bytes: bytes}
		if reduction {
			msg.Src, msg.Dst = msg.Dst, msg.Src
		}
		msgs = append(msgs, msg)
	}
	return m.Time(msgs)
}
