package engine

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// planTime costs one communication plan on the scenario's machine
// model, in model-µs, and reports which collective algorithms the
// cost-driven selector chose for it (empty for plans that involve no
// collective operation). It reads only the cost-relevant projection
// of the plan (planInfo), so plans loaded from the disk store cost
// identically to freshly computed ones.
//
// Fat tree (CM-5-like): macro-communications go through the
// collective selector, which keeps the hardware combining network as
// a fixed-cost algorithm next to software trees over the data
// network (at the Table-1 calibration the hardware wins, reproducing
// the old fixed pricing). The scenario's per-processor payload is N
// elements of ElemBytes; a vectorizable plan (Section 4.5) moves it
// in one operation, a non-vectorizable one pays N element-wise
// operations.
//
// Mesh (Paragon-like): plans with a concrete 2×2 data-flow matrix are
// simulated message-by-message on the N×N virtual grid under the
// scenario's distribution; each decomposed phase's aggregated pattern
// is executed by the cheapest permute algorithm (direct, or XY
// corner-phased). Macro-communications are scheduled as software
// collectives: the selector evaluates every tree algorithm
// (bisection, binomial, dim-tree, pipelined chain,
// scatter-allgather) against the flat root-to-all baseline on the
// concrete mesh instance and takes the cheapest; an axis-parallel
// p=1 macro-communication runs along its grid dimension (concurrent
// per-line trees), a total one spans the machine. A general plan
// whose data-flow matrix is unknown is costed with the transpose
// permutation [[0,1],[1,0]] as a deterministic stand-in pattern.
//
// The scenario's MachineSpec may pin the selection to one named
// algorithm (the "mesh8x8:flat" spec grammar) for ablations.
func planTime(sc *scenarios.Scenario, pl planInfo) (float64, []collective.Choice) {
	if pl.class == core.Local {
		return 0, nil
	}
	if sc.Machine.Kind == scenarios.Mesh {
		return meshPlanTime(sc, pl)
	}
	return fatTreePlanTime(sc, pl)
}

func fatTreePlanTime(sc *scenarios.Scenario, pl planInfo) (float64, []collective.Choice) {
	ft := machine.DefaultFatTree(sc.Machine.P)
	n, eb := sc.N, sc.ElemBytes
	switch pl.class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.macroReduction {
			pattern = collective.Reduction
		}
		if pl.vectorizable {
			ch := collective.SelectFatTree(ft, pattern, eb*int64(n), sc.Machine.Algo)
			return ch.Cost, []collective.Choice{ch}
		}
		ch := collective.SelectFatTree(ft, pattern, eb, sc.Machine.Algo)
		return float64(n) * ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		k := len(pl.factors)
		if k == 0 {
			k = 1 // pure translation
		}
		one := func(bytes int64) float64 { return float64(k) * ft.Translation(bytes) }
		if pl.vectorizable {
			return one(eb * int64(n)), nil
		}
		return float64(n) * one(eb), nil
	default:
		if pl.vectorizable {
			return ft.General(1, eb*int64(n)), nil
		}
		return float64(n) * ft.General(1, eb), nil
	}
}

// standInGeneral is the deterministic pattern used when a general
// plan has no usable 2×2 data-flow matrix.
var standInGeneral = intmat.New(2, 2, 0, 1, 1, 0)

func meshPlanTime(sc *scenarios.Scenario, pl planInfo) (float64, []collective.Choice) {
	m := machine.DefaultMesh(sc.Machine.P, sc.Machine.Q)
	n, eb := sc.N, sc.ElemBytes
	force := sc.Machine.Algo
	switch pl.class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.macroReduction {
			pattern = collective.Reduction
		}
		bytes := eb * int64(n)
		var ch collective.Choice
		if pl.macroDim >= 0 && pl.macroDim < 2 {
			ch = collective.SelectMeshDim(m, pattern, pl.macroDim, bytes, force)
		} else {
			ch = collective.SelectMesh(m, pattern, 0, bytes, force)
		}
		return ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		if len(pl.factors) > 0 && is2x2(pl.factors[0]) {
			// Successive phases, right to left as in the matrix
			// product; each phase's aggregated pattern runs under the
			// cheapest permute execution.
			total := 0.0
			var choices []collective.Choice
			for idx := len(pl.factors) - 1; idx >= 0; idx-- {
				msgs := machine.AffineComm2D(m, sc.Dist, pl.factors[idx], nil, n, n, eb)
				ch := collective.SelectPermute(m, msgs, force)
				total += ch.Cost
				choices = append(choices, ch)
			}
			return total, choices
		}
		// pure translation (T = Id), or factors outside the 2-D
		// simulator: unit-shift phases
		k := len(pl.factors)
		if k == 0 {
			k = 1
		}
		shift := machine.AffineComm2D(m, sc.Dist, intmat.Identity(2), []int64{1, 1}, n, n, eb)
		ch := collective.SelectPermute(m, shift, force)
		choices := make([]collective.Choice, k)
		for i := range choices {
			choices[i] = ch
		}
		return float64(k) * ch.Cost, choices
	default: // General
		t := pl.dataflow
		if t == nil || !is2x2(t) {
			t = standInGeneral
		}
		return m.Time(machine.GeneralComm2D(m, sc.Dist, t, nil, n, n, eb)), nil
	}
}

func is2x2(m *intmat.Mat) bool { return m != nil && m.Rows() == 2 && m.Cols() == 2 }
