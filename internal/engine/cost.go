package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/collective"
	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/machine"
	"repro/internal/scenarios"
	"repro/internal/trace"
)

// planTime costs one communication plan on the scenario's machine
// model, in model-µs, and reports which collective algorithms the
// cost-driven selector chose for it (empty for plans that involve no
// collective operation). It reads only the cost-relevant projection
// of the plan (planInfo), so plans loaded from the disk store cost
// identically to freshly computed ones.
//
// Fat tree (CM-5-like): macro-communications go through the
// collective selector, which keeps the hardware combining network as
// a fixed-cost algorithm next to software trees over the data
// network (at the Table-1 calibration the hardware wins, reproducing
// the old fixed pricing). The scenario's per-processor payload is N
// elements of ElemBytes; a vectorizable plan (Section 4.5) moves it
// in one operation, a non-vectorizable one pays N element-wise
// operations.
//
// Mesh (Paragon-like): plans with a concrete 2×2 data-flow matrix are
// simulated message-by-message on the N×N virtual grid under the
// scenario's distribution; each decomposed phase's aggregated pattern
// is executed by the cheapest permute algorithm (direct, XY
// corner-phased, or staggered). Macro-communications are built
// exclusively through the collective package's priced Schedule
// abstraction: the selector evaluates every tree algorithm
// (bisection, binomial, dim-tree, pipelined chain,
// scatter-allgather) against the flat root-to-all baseline on the
// concrete mesh instance and takes the cheapest; an axis-parallel
// p=1 macro-communication runs along its grid dimension (concurrent
// per-line trees), a p ≥ 2 one decomposes into per-plane two-phase
// schedules that compete with the machine-spanning execution (so it
// never prices above the old total collective), and a total one
// spans the machine. A general plan whose data-flow matrix is
// unknown is costed with the transpose permutation [[0,1],[1,0]] as
// a deterministic stand-in pattern.
//
// Collective selections are memoized in the session cache per
// (machine, pattern, dims, bytes) — see macroChoice — so repeated
// suites pay the schedule construction once per distinct key.
//
// The scenario's MachineSpec may pin the selection to one named
// algorithm (the "mesh8x8:flat" spec grammar) for ablations.
func planTime(ctx context.Context, sc *scenarios.Scenario, pl planInfo, cache *Cache, pricer *compiled.Pricer, acc *selAcc) (float64, []collective.Choice) {
	if pl.class == core.Local {
		return 0, nil
	}
	if sc.Machine.Kind == scenarios.Mesh {
		return meshPlanTime(ctx, sc, pl, cache, pricer, acc)
	}
	return fatTreePlanTime(ctx, sc, pl, cache, acc)
}

// selKey is the selection-memo identity of one collective choice: the
// machine spec (including any pinned algorithm), the pattern, the
// macro's grid axes and the payload. Everything the selector reads is
// in the key, so a memo hit returns exactly what cold selection would.
func selKey(spec scenarios.MachineSpec, p collective.Pattern, dims []int, bytes int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sel:%s|%s|", spec, p)
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	fmt.Fprintf(&b, "|%d", bytes)
	return b.String()
}

// macroChoice runs the collective selector for a macro-communication,
// memoized in the session cache per (machine, pattern, dims, bytes).
// Selection is a pure function of the key, so memoized and cold
// selections are byte-identical; with a nil cache it always selects
// cold (the -no-cache ablation). Each call feeds the scenario's
// selection accumulator and — under an active trace — records a
// "collective.select" span annotated with the memo outcome.
func macroChoice(ctx context.Context, cache *Cache, acc *selAcc, spec scenarios.MachineSpec, p collective.Pattern, dims []int, bytes int64,
	sel func() collective.Choice) collective.Choice {
	t0 := time.Now()
	_, sp := trace.StartSpan(ctx, "collective.select")
	memo := "off"
	var ch collective.Choice
	if cache == nil {
		ch = sel()
	} else {
		key := selKey(spec, p, dims, bytes)
		if v, ok := cache.lookup(key); ok {
			cache.selectHits.Add(1)
			memo = "hit"
			ch = v.(collective.Choice)
		} else {
			cache.selectMisses.Add(1)
			memo = "miss"
			ch = sel()
			cache.store(key, ch)
		}
	}
	acc.observe(time.Since(t0), memo == "hit")
	sp.Set("memo", memo).Set("pattern", fmt.Sprint(p)).Set("choice", ch.String()).End()
	return ch
}

func fatTreePlanTime(ctx context.Context, sc *scenarios.Scenario, pl planInfo, cache *Cache, acc *selAcc) (float64, []collective.Choice) {
	ft := machine.DefaultFatTree(sc.Machine.P)
	n, eb := sc.N, sc.ElemBytes
	switch pl.class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.macroReduction {
			pattern = collective.Reduction
		}
		select1 := func(bytes int64) collective.Choice {
			return macroChoice(ctx, cache, acc, sc.Machine, pattern, nil, bytes, func() collective.Choice {
				return collective.SelectFatTree(ft, pattern, bytes, sc.Machine.Algo)
			})
		}
		if pl.vectorizable {
			ch := select1(eb * int64(n))
			return ch.Cost, []collective.Choice{ch}
		}
		ch := select1(eb)
		return float64(n) * ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		k := len(pl.factors)
		if k == 0 {
			k = 1 // pure translation
		}
		one := func(bytes int64) float64 { return float64(k) * ft.Translation(bytes) }
		if pl.vectorizable {
			return one(eb * int64(n)), nil
		}
		return float64(n) * one(eb), nil
	default:
		if pl.vectorizable {
			return ft.General(1, eb*int64(n)), nil
		}
		return float64(n) * ft.General(1, eb), nil
	}
}

// standInGeneral is the deterministic pattern used when a general
// plan has no usable 2×2 data-flow matrix.
var standInGeneral = intmat.New(2, 2, 0, 1, 1, 0)

// physMacroDims projects a macro's virtual grid axes onto the 2-D
// mesh: axes ≥ 2 have no physical extent in the mesh model and are
// dropped. A one-axis (p=1) macro keeps PR 4's pure per-line
// scheduling; multi-axis (p ≥ 2) macros go per-plane — but if every
// axis projects away, nothing pins the macro to a sub-grid and it is
// scheduled machine-spanning (nil), as before.
func physMacroDims(vdims []int) []int {
	var dims []int
	for _, d := range vdims {
		if d == 0 || d == 1 {
			dims = append(dims, d)
		}
	}
	return dims
}

func meshPlanTime(ctx context.Context, sc *scenarios.Scenario, pl planInfo, cache *Cache, pricer *compiled.Pricer, acc *selAcc) (float64, []collective.Choice) {
	m := machine.DefaultMesh(sc.Machine.P, sc.Machine.Q)
	n, eb := sc.N, sc.ElemBytes
	force := sc.Machine.Algo
	switch pl.class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.macroReduction {
			pattern = collective.Reduction
		}
		bytes := eb * int64(n)
		dims := physMacroDims(pl.macroDims)
		var ch collective.Choice
		switch {
		case len(pl.macroDims) == 1 && len(dims) == 1:
			// p=1 axis macro: concurrent per-line trees along its axis.
			// The memo is keyed by the virtual axes, which determine the
			// scheduling mode (a p=1 axis-0 macro and a p≥2 {0,2} macro
			// both project to physical axis 0 but select differently).
			ch = macroChoice(ctx, cache, acc, sc.Machine, pattern, pl.macroDims, bytes, func() collective.Choice {
				return pricer.SelectMeshDim(m, pattern, dims[0], bytes, force)
			})
		case len(pl.macroDims) >= 2 && len(dims) >= 1:
			// p≥2 macro: per-plane (or per-line, if only one axis is
			// physical) scheduling competing with the machine-spanning
			// execution.
			ch = macroChoice(ctx, cache, acc, sc.Machine, pattern, pl.macroDims, bytes, func() collective.Choice {
				return pricer.SelectMeshMacro(m, pattern, dims, bytes, force)
			})
		default:
			ch = macroChoice(ctx, cache, acc, sc.Machine, pattern, nil, bytes, func() collective.Choice {
				return pricer.SelectMesh(m, pattern, bytes, force)
			})
		}
		return ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		if len(pl.factors) > 0 && is2x2(pl.factors[0]) {
			// Successive phases, right to left as in the matrix
			// product; each phase's aggregated pattern runs under the
			// cheapest permute execution.
			total := 0.0
			var choices []collective.Choice
			for idx := len(pl.factors) - 1; idx >= 0; idx-- {
				msgs := machine.AffineComm2D(m, sc.Dist, pl.factors[idx], nil, n, n, eb)
				ch := collective.SelectPermute(m, msgs, force)
				total += ch.Cost
				choices = append(choices, ch)
			}
			return total, choices
		}
		// pure translation (T = Id), or factors outside the 2-D
		// simulator: unit-shift phases
		k := len(pl.factors)
		if k == 0 {
			k = 1
		}
		shift := machine.AffineComm2D(m, sc.Dist, intmat.Identity(2), []int64{1, 1}, n, n, eb)
		ch := collective.SelectPermute(m, shift, force)
		choices := make([]collective.Choice, k)
		for i := range choices {
			choices[i] = ch
		}
		return float64(k) * ch.Cost, choices
	default: // General
		t := pl.dataflow
		if t == nil || !is2x2(t) {
			t = standInGeneral
		}
		return m.Time(machine.GeneralComm2D(m, sc.Dist, t, nil, n, n, eb)), nil
	}
}

func is2x2(m *intmat.Mat) bool { return m != nil && m.Rows() == 2 && m.Cols() == 2 }
