package engine

import (
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe memo store shared by every worker of a
// batch run. It memoizes at two tiers:
//
//   - kernel tier: Hermite normal forms, unimodular inverses and
//     integer kernel bases, installed into package intmat via
//     intmat.SetKernelCache (Get/Put below implement that interface);
//   - plan tier: the complete two-step heuristic result per distinct
//     optimization problem (canonical program + target dimension +
//     options), which subsumes the access-graph construction and its
//     maximum branching.
//
// Every memoized computation is a pure function of its canonical
// key, so a hit always returns exactly what recomputation would.
type Cache struct {
	shards [cacheShards]cacheShard

	kernelHits, kernelMisses atomic.Uint64
	planHits, planMisses     atomic.Uint64
}

const cacheShards = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]any
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]any)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

func (c *Cache) lookup(key string) (any, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

func (c *Cache) store(key string, v any) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// Get implements intmat.KernelCache (kernel tier).
func (c *Cache) Get(key string) (any, bool) {
	v, ok := c.lookup(key)
	if ok {
		c.kernelHits.Add(1)
	} else {
		c.kernelMisses.Add(1)
	}
	return v, ok
}

// Put implements intmat.KernelCache (kernel tier).
func (c *Cache) Put(key string, v any) { c.store(key, v) }

// planSlot is a single-flight cell for one plan-tier key: the first
// worker to claim the slot computes, every other worker blocks on the
// Once and then reads the settled value.
type planSlot struct {
	once sync.Once
	val  planEntry
}

// planDo returns the plan entry for key, computing it exactly once
// across all workers. The hit/miss counters are exact: misses equal
// the number of distinct keys, whatever the worker count.
func (c *Cache) planDo(key string, compute func() planEntry) planEntry {
	k := "plan:" + key
	s := c.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		v = &planSlot{}
		s.m[k] = v
	}
	s.mu.Unlock()
	if ok {
		c.planHits.Add(1)
	} else {
		c.planMisses.Add(1)
	}
	slot := v.(*planSlot)
	slot.once.Do(func() { slot.val = compute() })
	return slot.val
}

// Len returns the number of cached entries across all tiers.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats is a snapshot of cache effectiveness after a run.
type CacheStats struct {
	KernelHits, KernelMisses uint64
	PlanHits, PlanMisses     uint64
	Entries                  int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		KernelHits:   c.kernelHits.Load(),
		KernelMisses: c.kernelMisses.Load(),
		PlanHits:     c.planHits.Load(),
		PlanMisses:   c.planMisses.Load(),
		Entries:      c.Len(),
	}
}
