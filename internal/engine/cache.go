package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/intmat"
)

// Cache is a concurrency-safe memo store shared by every worker of a
// session. It memoizes at two tiers:
//
//   - kernel tier: Hermite normal forms, unimodular inverses and
//     integer kernel bases, reached from package intmat through the
//     goroutine-keyed dispatcher in dispatch.go (Get/Put below
//     implement the intmat.KernelCache interface);
//   - plan tier: the complete two-step heuristic result per distinct
//     optimization problem (canonical program + target dimension +
//     options), which subsumes the access-graph construction and its
//     maximum branching;
//   - selection tier: the collective selector's choice per distinct
//     (machine, pattern, dims, bytes) key (see macroChoice in
//     cost.go), so repeated suites stop rebuilding and repricing
//     candidate schedules — the BenchmarkCollectiveSelect hot path.
//
// Every memoized computation is a pure function of its canonical
// key, so a hit always returns exactly what recomputation would.
//
// The cache is bounded: each shard keeps an LRU list and evicts its
// least-recently-used entries once the shard exceeds its share of the
// entry cap. Eviction never affects correctness — an evicted entry is
// simply recomputed on the next request — but it does mean the miss
// counters count recomputations, not distinct keys, once the cap is
// reached.
type Cache struct {
	shards [cacheShards]cacheShard

	// kstore is the optional disk tier behind the kernel tier
	// (memory → disk → compute, like the plan tier); set once before
	// the cache is shared.
	kstore KernelStore

	kernelHits, kernelMisses             atomic.Uint64
	kernelDiskHits, kernelDiskMisses     atomic.Uint64
	planHits, planMisses                 atomic.Uint64
	diskHits, diskMisses                 atomic.Uint64
	selectHits, selectMisses             atomic.Uint64
	compiledHits, compiledMisses         atomic.Uint64
	compiledDiskHits, compiledDiskMisses atomic.Uint64
	evictions                            atomic.Uint64
}

const cacheShards = 16

// DefaultCacheCap is the default bound on cached entries across both
// tiers. Entries are small (a few matrices or plan summaries), so the
// default is generous; it exists to keep truly large suites from
// growing the process without bound (ROADMAP: eviction policy).
const DefaultCacheCap = 1 << 16

type cacheShard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru *list.List // front = most recently used; values are *cacheCell
	cap int        // max entries in this shard; 0 = unbounded
}

type cacheCell struct {
	key string
	v   any
}

// NewCache returns an empty cache bounded to capEntries entries
// (0: DefaultCacheCap; negative: unbounded).
func NewCache(capEntries int) *Cache {
	if capEntries == 0 {
		capEntries = DefaultCacheCap
	}
	perShard := 0
	if capEntries > 0 {
		perShard = (capEntries + cacheShards - 1) / cacheShards
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].cap = perShard
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// lookup returns the entry for key, marking it most recently used.
func (c *Cache) lookup(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheCell).v, true
}

// store inserts or refreshes key, evicting LRU entries past the cap.
func (c *Cache) store(key string, v any) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheCell).v = v
		s.lru.MoveToFront(el)
	} else {
		s.m[key] = s.lru.PushFront(&cacheCell{key: key, v: v})
		c.evict(s)
	}
	s.mu.Unlock()
}

// evict drops least-recently-used entries while the shard is over its
// cap. Called with the shard lock held.
func (c *Cache) evict(s *cacheShard) {
	if s.cap <= 0 {
		return
	}
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.m, back.Value.(*cacheCell).key)
		c.evictions.Add(1)
	}
}

// Get implements intmat.KernelCache (kernel tier): memory first, then
// the optional kernel disk store. A disk hit is promoted into memory
// and counted separately from memory hits; only a full miss sends the
// caller to recomputation.
func (c *Cache) Get(key string) (any, bool) {
	if v, ok := c.lookup(key); ok {
		c.kernelHits.Add(1)
		return v, true
	}
	if c.kstore != nil {
		if rec, ok := c.kstore.GetKernel(key); ok {
			if v, err := intmat.DecodeKernelValue(rec); err == nil {
				c.store(key, v)
				c.kernelDiskHits.Add(1)
				return v, true
			}
		}
		c.kernelDiskMisses.Add(1)
	}
	c.kernelMisses.Add(1)
	return nil, false
}

// Put implements intmat.KernelCache (kernel tier); fresh kernels are
// written through to the disk tier when one is attached.
func (c *Cache) Put(key string, v any) {
	c.store(key, v)
	if c.kstore != nil {
		if rec, ok := intmat.EncodeKernelValue(v); ok {
			c.kstore.PutKernel(key, rec)
		}
	}
}

// planSlot is a single-flight cell for one plan-tier key: the first
// worker to claim the slot computes, every other worker blocks on the
// Once and then reads the settled value.
type planSlot struct {
	once sync.Once
	val  planEntry
}

// planDo returns the plan entry for key, computing it at most once
// concurrently: workers racing on the same key share one computation.
// Below the eviction cap the miss counter equals the number of
// distinct keys exactly, whatever the worker count; past the cap an
// evicted key misses again on its next use.
func (c *Cache) planDo(key string, compute func() planEntry) planEntry {
	k := "plan:" + key
	s := c.shard(k)
	s.mu.Lock()
	var slot *planSlot
	if el, ok := s.m[k]; ok {
		s.lru.MoveToFront(el)
		slot = el.Value.(*cacheCell).v.(*planSlot)
		s.mu.Unlock()
		c.planHits.Add(1)
	} else {
		slot = &planSlot{}
		s.m[k] = s.lru.PushFront(&cacheCell{key: k, v: slot})
		c.evict(s)
		s.mu.Unlock()
		c.planMisses.Add(1)
	}
	slot.once.Do(func() { slot.val = compute() })
	return slot.val
}

// Len returns the number of cached entries across all tiers.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of cache effectiveness after a run.
type CacheStats struct {
	// KernelHits counts kernel-tier memory hits; KernelMisses counts
	// full misses that recomputed.
	KernelHits, KernelMisses uint64
	// KernelDiskHits/KernelDiskMisses count kernel-tier memory misses
	// served from / not found in the kernel disk store (zero without
	// one); a disk hit avoids recomputation and is counted here, not
	// in KernelHits or KernelMisses.
	KernelDiskHits, KernelDiskMisses uint64
	PlanHits, PlanMisses             uint64
	// DiskHits/DiskMisses count plan-tier memory misses that were
	// served from / not found in the disk store (zero without one).
	DiskHits, DiskMisses uint64
	// SelectHits/SelectMisses count collective-selection memo lookups:
	// a hit returns a previously selected (machine, pattern, dims,
	// bytes) choice without rebuilding any schedule.
	SelectHits, SelectMisses uint64
	// CompiledHits/CompiledMisses count compiled-artifact memory-tier
	// lookups (see Session.CompiledArtifact); CompiledDiskHits and
	// CompiledDiskMisses count the memory misses served from / not
	// found in the store's compiled tier.
	CompiledHits, CompiledMisses         uint64
	CompiledDiskHits, CompiledDiskMisses uint64
	// CompiledTemplates is the number of compiled selection templates
	// the session's pricer holds; CompiledTemplateHits/Misses count its
	// cache lookups and CompiledEvals the template evaluations (each
	// one a collective selection priced without schedule construction).
	CompiledTemplates                            int
	CompiledTemplateHits, CompiledTemplateMisses uint64
	CompiledEvals                                uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	Entries   int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		KernelHits:         c.kernelHits.Load(),
		KernelMisses:       c.kernelMisses.Load(),
		KernelDiskHits:     c.kernelDiskHits.Load(),
		KernelDiskMisses:   c.kernelDiskMisses.Load(),
		PlanHits:           c.planHits.Load(),
		PlanMisses:         c.planMisses.Load(),
		DiskHits:           c.diskHits.Load(),
		DiskMisses:         c.diskMisses.Load(),
		SelectHits:         c.selectHits.Load(),
		SelectMisses:       c.selectMisses.Load(),
		CompiledHits:       c.compiledHits.Load(),
		CompiledMisses:     c.compiledMisses.Load(),
		CompiledDiskHits:   c.compiledDiskHits.Load(),
		CompiledDiskMisses: c.compiledDiskMisses.Load(),
		Evictions:          c.evictions.Load(),
		Entries:            c.Len(),
	}
}
