package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/scenarios"
)

// TestConcurrentSessions: sessions no longer serialize process-wide —
// a 2-node in-process cluster runs two daemons, each with its own
// engine session. Two overlapping sessions (one cached, one with the
// cache-disabled ablation) must both complete, produce identical
// results, and keep their cache accounting separate: the dispatcher
// routes kernels to the cache of the session whose worker computed
// them, and the ablation session sees no cache at all.
func TestConcurrentSessions(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 6, NoExamples: true})
	cached := NewSession(Options{Workers: 2})
	defer cached.Close()
	ablate := NewSession(Options{Workers: 2, DisableCache: true})
	defer ablate.Close()

	var wg sync.WaitGroup
	var bc, ba *BatchResult
	wg.Add(2)
	go func() { defer wg.Done(); bc, _ = cached.Run(context.Background(), s) }()
	go func() { defer wg.Done(); ba, _ = ablate.Run(context.Background(), s) }()
	wg.Wait()

	if !reflect.DeepEqual(stripPhases(bc.Results), stripPhases(ba.Results)) {
		t.Fatal("concurrent cached and uncached sessions disagree")
	}
	if bc.Cache.KernelHits+bc.Cache.KernelMisses == 0 {
		t.Error("cached session's kernel tier saw no traffic")
	}
	if ba.Cache != (CacheStats{}) {
		t.Errorf("cache-disabled session accumulated stats %+v — kernel dispatch leaked across sessions", ba.Cache)
	}
}

// fakeRemote is a RemotePlanTier for engine-level tests: it serves
// plans from a fixed map and records traffic.
type fakeRemote struct {
	mu       sync.Mutex
	plans    map[string]memPlan
	fetches  int
	computed []string
}

func (r *fakeRemote) FetchPlan(_ context.Context, key string) ([]PlanRecord, string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetches++
	p, ok := r.plans[key]
	return p.plans, p.err, ok
}

func (r *fakeRemote) PlanComputed(key string, plans []PlanRecord, errMsg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.computed = append(r.computed, key)
}

// TestRemotePlanTier: a memory+disk miss consults the remote tier
// before computing; a remote hit is attributed to PlanSource "peer",
// written through to the store, and identical to a local computation.
// A remote miss computes locally and announces via PlanComputed.
func TestRemotePlanTier(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 2, NoExamples: true})
	sc := &s[0]

	// A plain run supplies the reference result and the peer's records.
	peerStore := newMemStore()
	ref := Run([]scenarios.Scenario{*sc}, Options{Workers: 1, Store: peerStore})

	remote := &fakeRemote{plans: peerStore.m}
	localStore := newMemStore()
	sess := NewSession(Options{Workers: 1, Store: localStore, Remote: remote})
	defer sess.Close()
	got, err := sess.Optimize(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phases == nil || got.Phases.PlanSource != "peer" {
		t.Fatalf("PlanSource = %v, want peer", got.Phases)
	}
	if !reflect.DeepEqual(stripPhases([]Result{got}), stripPhases(ref.Results[:1])) {
		t.Fatal("peer-served result differs from local computation")
	}
	if _, _, ok := localStore.GetPlan(sc.PlanKey()); !ok {
		t.Error("peer-served plan was not written through to the local store")
	}
	if len(remote.computed) != 0 {
		t.Errorf("remote hit still announced PlanComputed for %v", remote.computed)
	}

	// A key no peer holds: remote is consulted, misses, the plan is
	// computed locally and announced for replication. Suites cross
	// each program with several machines, so scan for a scenario whose
	// canonical key actually differs from the peer-served one.
	var cold *scenarios.Scenario
	for i := range s[1:] {
		if s[1+i].PlanKey() != sc.PlanKey() {
			cold = &s[1+i]
			break
		}
	}
	if cold == nil {
		t.Fatal("suite has no second distinct plan key")
	}
	got, err = sess.Optimize(context.Background(), cold)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phases.PlanSource != "compute" {
		t.Fatalf("cold PlanSource = %q, want compute", got.Phases.PlanSource)
	}
	if len(remote.computed) != 1 || remote.computed[0] != cold.PlanKey() {
		t.Errorf("PlanComputed announcements = %v, want the cold key once", remote.computed)
	}
}
