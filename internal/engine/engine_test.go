package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenarios"
)

func suite(t testing.TB) []scenarios.Scenario {
	t.Helper()
	s := scenarios.Generate(scenarios.Config{Seed: 7})
	if len(s) < 100 {
		t.Fatalf("default suite has %d scenarios, want ≥ 100", len(s))
	}
	return s
}

// stripPhases returns a copy of rs with the run-dependent phase
// attribution cleared: determinism tests compare everything except
// wall-clock timings, which legitimately differ between runs.
func stripPhases(rs []Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		r.Phases = nil
		out[i] = r
	}
	return out
}

// TestParallelMatchesSequential: a parallel run must be byte-identical
// to a sequential run of the same batch — same per-scenario classes,
// model times and errors, in input order.
func TestParallelMatchesSequential(t *testing.T) {
	s := suite(t)
	seq := Run(s, Options{Workers: 1})
	par := Run(s, Options{Workers: 8})
	seqR, parR := stripPhases(seq.Results), stripPhases(par.Results)
	if !reflect.DeepEqual(seqR, parR) {
		for i := range seqR {
			if !reflect.DeepEqual(seqR[i], parR[i]) {
				t.Fatalf("scenario %d (%s):\n sequential %+v\n parallel   %+v",
					i, s[i].Name, seqR[i], parR[i])
			}
		}
		t.Fatal("results differ")
	}
	if seq.ClassTotals != par.ClassTotals || seq.TotalModelTime != par.TotalModelTime || seq.Errors != par.Errors {
		t.Fatalf("aggregates differ: seq %+v par %+v", seq, par)
	}
}

// TestCacheConsistency: enabling the memo cache must not change any
// plan — classes, model times and errors are identical with and
// without it.
func TestCacheConsistency(t *testing.T) {
	s := suite(t)
	cached := Run(s, Options{Workers: 4})
	uncached := Run(s, Options{Workers: 4, DisableCache: true})
	cachedR, uncachedR := stripPhases(cached.Results), stripPhases(uncached.Results)
	if !reflect.DeepEqual(cachedR, uncachedR) {
		for i := range cachedR {
			if !reflect.DeepEqual(cachedR[i], uncachedR[i]) {
				t.Fatalf("scenario %d (%s):\n cached   %+v\n uncached %+v",
					i, s[i].Name, cachedR[i], uncachedR[i])
			}
		}
		t.Fatal("results differ")
	}
	if uncached.Cache != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", uncached.Cache)
	}
}

// TestCacheReuse: a suite that crosses each nest with several machine
// variants must hit the plan cache for every variant after the first,
// and the kernel tier must see repeated matrices too.
func TestCacheReuse(t *testing.T) {
	s := suite(t)
	b := Run(s, Options{Workers: 4})
	nMachines := 4 // default config crosses every program with 4 machines
	wantHits := uint64(len(s) - len(s)/nMachines)
	if b.Cache.PlanHits != wantHits {
		t.Errorf("plan hits = %d, want %d (suite of %d over %d machine variants)",
			b.Cache.PlanHits, wantHits, len(s), nMachines)
	}
	if b.Cache.KernelHits == 0 {
		t.Error("kernel tier saw no hits on the default suite")
	}
	if b.Cache.Entries == 0 {
		t.Error("cache is empty after the run")
	}
}

// TestAggregates: the batch totals must be the sums of the
// per-scenario results.
func TestAggregates(t *testing.T) {
	b := Run(suite(t), Options{Workers: 4})
	var classes [4]int
	var total float64
	errs := 0
	for _, r := range b.Results {
		if r.Err != "" {
			errs++
			continue
		}
		for c, n := range r.Classes {
			classes[c] += n
		}
		total += r.ModelTime
	}
	if classes != b.ClassTotals || total != b.TotalModelTime || errs != b.Errors {
		t.Fatalf("aggregates %v/%v/%d, recomputed %v/%v/%d",
			b.ClassTotals, b.TotalModelTime, b.Errors, classes, total, errs)
	}
	if classes[core.Local] == 0 {
		t.Error("no local communications in the default suite")
	}
	if b.TotalModelTime <= 0 {
		t.Error("non-positive total model time")
	}
}

// TestReport: the report mentions the headline aggregates.
func TestReport(t *testing.T) {
	b := Run(suite(t), Options{Workers: 2})
	rep := b.Report()
	for _, want := range []string{"scenarios", "local", "cache", "most expensive"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestErrorIsolation: a scenario that fails to optimize is reported
// in place without disturbing its neighbours — the rest of the batch
// must come out exactly as it would without the bad scenario.
func TestErrorIsolation(t *testing.T) {
	s := scenarios.Generate(scenarios.Config{Seed: 7, Random: 2})
	base := Run(s, Options{Workers: 4})
	// An invalid target dimension fails deterministically in the
	// access-graph build, without panicking the pool; the mangled M
	// also keeps its PlanKey from colliding with the real suite.
	bad := s[0]
	bad.M = 0
	bad.Name = "bad/m0"
	batch := append([]scenarios.Scenario{bad}, s...)
	b := Run(batch, Options{Workers: 4})
	if b.Results[0].Err == "" {
		t.Fatal("m=0 scenario did not error")
	}
	if b.Errors != base.Errors+1 {
		t.Errorf("errors = %d, want %d", b.Errors, base.Errors+1)
	}
	withBad, without := stripPhases(b.Results), stripPhases(base.Results)
	for i := range s {
		if !reflect.DeepEqual(withBad[i+1], without[i]) {
			t.Errorf("scenario %d disturbed by the failing neighbour:\n with    %+v\n without %+v",
				i, withBad[i+1], without[i])
		}
	}
}
