package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/collective"
	"repro/internal/compiled"
	"repro/internal/scenarios"
)

// fakeCompiledStore is an in-memory PlanStore + CompiledStore (the
// real implementation lives in internal/store, which cannot be
// imported from engine's internal tests).
type fakeCompiledStore struct {
	plans    map[string][]PlanRecord
	planErrs map[string]string
	compiled map[string]compiled.ArtifactRec

	compiledPuts, compiledHits uint64
}

func newFakeCompiledStore() *fakeCompiledStore {
	return &fakeCompiledStore{
		plans:    map[string][]PlanRecord{},
		planErrs: map[string]string{},
		compiled: map[string]compiled.ArtifactRec{},
	}
}

func (f *fakeCompiledStore) GetPlan(key string) ([]PlanRecord, string, bool) {
	recs, ok := f.plans[key]
	return recs, f.planErrs[key], ok
}

func (f *fakeCompiledStore) PutPlan(key string, plans []PlanRecord, errMsg string) {
	f.plans[key], f.planErrs[key] = plans, errMsg
}

func (f *fakeCompiledStore) GetCompiled(key string) (compiled.ArtifactRec, bool) {
	rec, ok := f.compiled[key]
	if ok {
		f.compiledHits++
	}
	return rec, ok
}

func (f *fakeCompiledStore) PutCompiled(key string, rec compiled.ArtifactRec) {
	f.compiled[key] = rec
	f.compiledPuts++
}

// TestCompiledArtifactTiers walks an artifact through the three-tier
// lookup: computed on the first session (plan tier shared), served
// from memory on the second request, and served from the disk tier by
// a fresh session on the same store.
func TestCompiledArtifactTiers(t *testing.T) {
	st := newFakeCompiledStore()
	suite := scenarios.Generate(scenarios.Config{Random: 1})
	sc := &suite[0]

	s1 := NewSession(Options{Workers: 1, Store: st})
	a1 := s1.CompiledArtifact(context.Background(), sc)
	if a1.Key != sc.PlanKey() {
		t.Fatalf("artifact key %q != plan key %q", a1.Key, sc.PlanKey())
	}
	cs := s1.CacheStats()
	if cs.CompiledHits != 0 || cs.CompiledMisses != 1 || cs.CompiledDiskHits != 0 || cs.CompiledDiskMisses != 1 {
		t.Fatalf("first lookup stats: %+v", cs)
	}
	a2 := s1.CompiledArtifact(context.Background(), sc)
	if a2 != a1 {
		t.Fatal("second lookup did not serve the cached artifact")
	}
	if cs = s1.CacheStats(); cs.CompiledHits != 1 {
		t.Fatalf("second lookup stats: %+v", cs)
	}
	s1.Close()

	s2 := NewSession(Options{Workers: 1, Store: st})
	defer s2.Close()
	a3 := s2.CompiledArtifact(context.Background(), sc)
	if cs = s2.CacheStats(); cs.CompiledDiskHits != 1 || cs.CompiledDiskMisses != 0 {
		t.Fatalf("warm-store lookup stats: %+v", cs)
	}

	// All three artifacts (computed, cached, disk-loaded) and a direct
	// structural compile must evaluate identically.
	direct := compiled.Compile(sc)
	pts := make([]compiled.Point, 0, 4)
	for _, a := range []*compiled.Artifact{a1, a2, a3, direct} {
		pts = append(pts, a.Eval(s2.Pricer(), sc.Machine, sc.Dist, sc.N, sc.ElemBytes))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] != pts[0] {
			t.Fatalf("artifact %d evaluates differently: %+v vs %+v", i, pts[i], pts[0])
		}
	}
	if st.compiledPuts == 0 || st.compiledHits == 0 {
		t.Fatalf("store compiled-tier traffic did not move: puts=%d hits=%d", st.compiledPuts, st.compiledHits)
	}
}

// TestCompiledEvalThroughSessionMatchesRun cross-checks the session
// path end to end: for every scenario of a mixed suite, evaluating
// the session's compiled artifact with the session's pricer must
// reproduce the session's own batch results bit-identically.
func TestCompiledEvalThroughSessionMatchesRun(t *testing.T) {
	suite := scenarios.Generate(scenarios.Config{Random: 3, Skew: true})
	s := NewSession(Options{})
	defer s.Close()
	batch, err := s.Run(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	for i := range suite {
		sc := &suite[i]
		art := s.CompiledArtifact(context.Background(), sc)
		res := batch.Results[i]
		if res.Err != "" || art.Err != "" {
			if (res.Err != "") != (art.Err != "") {
				t.Fatalf("%s: err mismatch %q vs %q", sc.Name, res.Err, art.Err)
			}
			continue
		}
		pt := art.Eval(s.Pricer(), sc.Machine, sc.Dist, sc.N, sc.ElemBytes)
		if pt.ModelTime != res.ModelTime || pt.Classes != res.Classes ||
			pt.Vectorizable != res.Vectorizable || pt.Collectives != res.Collectives {
			t.Fatalf("%s: compiled eval diverges from batch result\n  run:  %+v\n  eval: %+v", sc.Name, res, pt)
		}
	}
	if cs := s.CacheStats(); cs.CompiledEvals == 0 || cs.CompiledTemplates == 0 {
		t.Fatalf("pricer counters did not move: %+v", cs)
	}
}

// TestSelKeyDistinct is the selection-memo key property test: any
// difference in machine spec (kind, extents, pinned algorithm),
// pattern, macro dims or payload must produce a distinct key — a
// collision would serve one selection for another.
func TestSelKeyDistinct(t *testing.T) {
	specs := []scenarios.MachineSpec{
		{Kind: scenarios.Mesh, P: 8, Q: 8},
		{Kind: scenarios.Mesh, P: 8, Q: 4},
		{Kind: scenarios.Mesh, P: 4, Q: 8},
		{Kind: scenarios.Mesh, P: 8, Q: 8, Algo: "flat"},
		{Kind: scenarios.FatTree, P: 64},
		{Kind: scenarios.FatTree, P: 64, Algo: "binomial-sw"},
	}
	type in struct {
		spec  scenarios.MachineSpec
		p     collective.Pattern
		dims  string
		bytes int64
	}
	dimsCases := [][]int{nil, {0}, {1}, {0, 1}, {0, 2}}
	seen := map[string]in{}
	for _, spec := range specs {
		for _, p := range []collective.Pattern{collective.Broadcast, collective.Reduction, collective.Shift} {
			for di, dims := range dimsCases {
				for _, bytes := range []int64{1, 64, 1024, 1 << 20} {
					k := selKey(spec, p, dims, bytes)
					c := in{spec, p, fmt.Sprint(dimsCases[di]), bytes}
					if prev, dup := seen[k]; dup {
						t.Fatalf("selKey collision %q:\n  %+v\n  %+v", k, prev, c)
					}
					seen[k] = c
				}
			}
		}
	}
}
