// Package engine runs the paper's two-step heuristic over large
// batches of scenarios concurrently. A Session owns a fixed worker
// pool that fans core.Optimize out across submitted work, and a
// shared two-tier memo cache (see Cache) that computes each distinct
// optimization problem and each distinct integer-matrix kernel once,
// so suites that reuse nests across machine/distribution/size
// variants pay the expensive exact linear algebra only once. An
// optional disk tier (see PlanStore) extends the plan cache across
// processes: lookups go memory → disk → compute, and fresh plans are
// written back, so repeated CLI sweeps and daemon restarts reuse past
// work. Results are aggregated into per-class communication counts,
// model-time totals and cache statistics.
//
// Running a batch is deterministic: results are reported in input
// order and are byte-identical whatever the worker count, whether the
// cache is enabled, and whether plans come from memory, disk or fresh
// computation, because every memoized computation is a pure function
// of its canonical key, the plan tier is single-flight, and the disk
// tier persists exactly the cost-relevant projection of each plan.
// The only timing-dependent quantity is the kernel-tier hit/miss
// split in CacheStats (two workers can race to first-compute the
// same kernel); plan-tier stats are exact below the eviction cap.
//
// Every Session entry point takes a context.Context. Cancellation is
// honored at scenario boundaries: in-flight scenarios run to
// completion (their plans stay cached), unstarted ones are refused,
// and RunStream returns the partial result with ctx.Err().
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/trace"
)

// Options tune a session or batch run.
type Options struct {
	// Workers is the size of the worker pool (≤0: GOMAXPROCS).
	Workers int
	// DisableCache turns the memo cache off; every scenario then
	// recomputes its heuristic from scratch (ablation / testing).
	// Disabling the memory tier also disables the disk tier.
	DisableCache bool
	// CacheCap bounds the in-memory cache entry count
	// (0: DefaultCacheCap; negative: unbounded).
	CacheCap int
	// Store is the optional disk tier behind the plan cache
	// (internal/store provides the implementation).
	Store PlanStore
	// Remote is the optional cluster tier behind the disk tier: before
	// computing a cold plan the session asks its peers for it
	// (memory → disk → peer → compute), and freshly computed plans are
	// announced back for replication. internal/server wires this to
	// the cluster router; it is nil for single-process use.
	Remote RemotePlanTier
}

// RemotePlanTier consults cluster peers for plans the local tiers
// miss, and announces fresh local computations so peers can
// replicate them. Implementations must be safe for concurrent use
// and must treat every failure as a miss — the engine always falls
// back to computing locally.
type RemotePlanTier interface {
	// FetchPlan returns the plan records a peer holds for the
	// canonical key, or ok == false when no reachable peer has them.
	FetchPlan(ctx context.Context, key string) (plans []PlanRecord, errMsg string, ok bool)
	// PlanComputed reports a plan this session just computed (after it
	// was written to the local store), so the cluster can replicate it
	// to the key's ring successors. It must not block the caller.
	PlanComputed(key string, plans []PlanRecord, errMsg string)
}

// Result is the outcome for one scenario, in input order.
type Result struct {
	Name string
	// Classes counts the scenario's communications per core.Class
	// (indexed by the class constants Local..General).
	Classes [4]int
	// ModelTime is the modeled execution time (µs) of one sweep of
	// all residual communications on the scenario's machine.
	ModelTime float64
	// Vectorizable counts plans satisfying the Section 4.5 condition.
	Vectorizable int
	// Collectives summarizes the collective algorithms the cost model
	// selected for the scenario's residual communications, as
	// "pattern=algorithm" terms with multiplicities, sorted and
	// comma-joined (e.g. "broadcast=bisection,shift=direct*3"); empty
	// when no collective operation was priced.
	Collectives string
	// Err is the optimization error, if any ("" on success).
	Err string
	// Phases is the scenario's wall-clock cost attribution (nil for
	// results rebuilt from a snapshot). It is excluded from JSON:
	// timings are run-dependent, and snapshot files must serialize
	// byte-identically across runs.
	Phases *PhaseTimes `json:"-"`
}

// BatchResult aggregates a run.
type BatchResult struct {
	Results []Result
	Workers int
	// ClassTotals sums Classes over all successful scenarios.
	ClassTotals [4]int
	// TotalModelTime sums ModelTime (µs).
	TotalModelTime float64
	// Errors counts failed scenarios.
	Errors int
	// Cache is the cache-effectiveness snapshot (zero when disabled).
	// For a long-lived Session it covers the session's lifetime up to
	// this batch, not just this batch.
	Cache CacheStats
}

// Session is a long-lived optimization context: a persistent worker
// pool plus the shared cache tiers. A CLI batch run wraps one Run
// call in a session; the resoptd daemon keeps a single session open
// so concurrent requests share the pool, the memo cache and the disk
// store. Sessions are safe for concurrent use, and any number of
// sessions (each with its own cache) may coexist in one process: the
// process-global intmat kernel hook dispatches each kernel
// computation to the cache of the session whose worker is running it
// (see dispatch.go).
type Session struct {
	cache   *Cache
	store   PlanStore
	remote  RemotePlanTier
	workers int
	tasks   chan task
	wg      sync.WaitGroup

	// pricer serves mesh collective selections from compiled templates
	// (the compiled tier between the selection memo and cold schedule
	// construction); cstore is the optional disk tier behind the
	// compiled-artifact cache. Both are nil when the cache is disabled.
	pricer *compiled.Pricer
	cstore CompiledStore

	// Pool instrumentation (see PoolStats). busy and queued are
	// instantaneous; the totals are cumulative over the session.
	busy, queued                atomic.Int64
	scenariosDone, scenarioErrs atomic.Uint64

	// Cumulative per-phase wall-clock attribution (see PhaseTotals).
	phaseScenarios                              atomic.Uint64
	phaseComputeNs, phaseAlignNs, phaseKernelNs atomic.Int64
	phaseSelectNs, phaseStoreNs                 atomic.Int64
	phaseCostNs, phaseTotalNs                   atomic.Int64
}

type task struct {
	ctx   context.Context
	sc    *scenarios.Scenario
	idx   int
	reply chan<- indexedResult
}

type indexedResult struct {
	idx int
	res Result
}

// NewSession starts the worker pool. The caller must Close the
// session when done.
func NewSession(opts Options) *Session {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Session{workers: workers, tasks: make(chan task), remote: opts.Remote}
	if !opts.DisableCache {
		s.cache = NewCache(opts.CacheCap)
		s.store = opts.Store
		s.pricer = compiled.NewPricer()
		if ks, ok := opts.Store.(KernelStore); ok {
			// The plan store also persists kernels: wire it behind the
			// kernel memo tier so cold starts skip the linear algebra.
			s.cache.kstore = ks
		}
		if cs, ok := opts.Store.(CompiledStore); ok {
			// The plan store also persists compiled artifacts: wire it
			// behind the artifact cache so lattice sweeps start warm.
			s.cstore = cs
		}
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Bind this worker's goroutine to the session cache so the
			// process-global intmat kernel hook dispatches kernels
			// computed here into it (no-op for DisableCache sessions).
			defer registerWorker(s.cache)()
			for t := range s.tasks {
				// Cancellation is honored at scenario boundaries: a
				// worker never starts a scenario whose context is
				// already dead, but one mid-optimization runs to
				// completion (its plan stays cached for the retry).
				if err := t.ctx.Err(); err != nil {
					s.scenariosDone.Add(1)
					s.scenarioErrs.Add(1)
					t.reply <- indexedResult{t.idx, Result{Name: t.sc.Name, Err: err.Error()}}
					continue
				}
				s.busy.Add(1)
				res := s.runOne(t.ctx, t.sc)
				s.busy.Add(-1)
				s.scenariosDone.Add(1)
				if res.Err != "" {
					s.scenarioErrs.Add(1)
				}
				t.reply <- indexedResult{t.idx, res}
			}
		}()
	}
	return s
}

// Close drains the pool and unbinds its workers from the kernel-tier
// dispatch table. The session must not be used after.
func (s *Session) Close() {
	close(s.tasks)
	s.wg.Wait()
}

// Workers returns the worker-pool size.
func (s *Session) Workers() int { return s.workers }

// CacheStats snapshots the session's cache counters (zero when the
// cache is disabled), including the compiled tier's template-cache
// and evaluation counters.
func (s *Session) CacheStats() CacheStats {
	st := s.cache.Stats()
	ps := s.pricer.Stats()
	st.CompiledTemplates = ps.Templates
	st.CompiledTemplateHits = ps.TemplateHits
	st.CompiledTemplateMisses = ps.TemplateMisses
	st.CompiledEvals = ps.Evals
	return st
}

// Pricer exposes the session's compiled-selection template cache for
// callers evaluating compiled artifacts directly (the lattice
// surfaces); it is nil — still valid, falling back to cold selection
// — when the cache is disabled.
func (s *Session) Pricer() *compiled.Pricer { return s.pricer }

// PoolStats is an observability snapshot of the worker pool: the
// instantaneous load (busy workers, tasks queued waiting for one) and
// cumulative throughput over the session's lifetime.
type PoolStats struct {
	// Workers is the pool size; Busy of them are mid-optimization
	// right now.
	Workers, Busy int
	// Queued counts submitted tasks not yet picked up by a worker
	// (including the one currently in hand-off).
	Queued int
	// ScenariosDone counts tasks processed by workers, including
	// scenarios refused because their context was already cancelled;
	// ScenarioErrors counts results that carried a non-empty Err
	// (refusals included). Done − Errors is successful throughput.
	ScenariosDone, ScenarioErrors uint64
}

// PoolStats snapshots the pool instrumentation. The instantaneous
// fields are racy by nature (read without stopping the pool) — fine
// for the gauges they feed.
func (s *Session) PoolStats() PoolStats {
	return PoolStats{
		Workers:        s.workers,
		Busy:           int(s.busy.Load()),
		Queued:         int(s.queued.Load()),
		ScenariosDone:  s.scenariosDone.Load(),
		ScenarioErrors: s.scenarioErrs.Load(),
	}
}

// Optimize runs one scenario through the shared pool and cache
// tiers. It returns ctx.Err() if the context dies before a worker
// picks the scenario up; a cancellation after pickup is reported in
// Result.Err instead (the worker refuses dead work at the scenario
// boundary).
func (s *Session) Optimize(ctx context.Context, sc *scenarios.Scenario) (Result, error) {
	reply := make(chan indexedResult, 1)
	s.queued.Add(1)
	select {
	case s.tasks <- task{ctx: ctx, sc: sc, reply: reply}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		return Result{Name: sc.Name, Err: ctx.Err().Error()}, ctx.Err()
	}
	return (<-reply).res, nil
}

// Run optimizes and costs every scenario of the batch. On
// cancellation it returns the partial BatchResult alongside ctx.Err()
// (see RunStream).
func (s *Session) Run(ctx context.Context, batch []scenarios.Scenario) (*BatchResult, error) {
	return s.RunStream(ctx, batch, nil)
}

// RunStream is Run with incremental delivery: emit (when non-nil) is
// called once per scenario, in input order, as soon as that result
// and all its predecessors are done — workers keep computing ahead
// while earlier scenarios are still in flight. The returned
// BatchResult is identical to Run's.
//
// Cancelling ctx stops the run at the next scenario boundary: no new
// scenario is submitted to the pool, already-submitted scenarios
// either finish or are refused by their worker, emission stops, and
// RunStream returns the partial BatchResult together with ctx.Err().
// Scenarios that never ran carry Err set to the context error and
// count toward Errors. RunStream never leaks goroutines: the feeder
// exits on cancellation and the worker pool is owned by the session.
func (s *Session) RunStream(ctx context.Context, batch []scenarios.Scenario, emit func(Result)) (*BatchResult, error) {
	b := &BatchResult{Results: make([]Result, len(batch)), Workers: s.workers}
	reply := make(chan indexedResult, len(batch))
	// The feeder reports how many tasks it managed to submit before
	// the context died, so the collector knows how many replies to
	// await (workers reply exactly once per submitted task).
	submitted := make(chan int, 1)
	go func() {
		n := 0
		defer func() { submitted <- n }()
		for i := range batch {
			s.queued.Add(1)
			select {
			case s.tasks <- task{ctx: ctx, sc: &batch[i], idx: i, reply: reply}:
				s.queued.Add(-1)
				n++
			case <-ctx.Done():
				s.queued.Add(-1)
				return
			}
		}
	}()
	done := make([]bool, len(batch))
	next, received, total := 0, 0, -1
	for total < 0 || received < total {
		select {
		case n := <-submitted:
			total = n
		case r := <-reply:
			received++
			b.Results[r.idx] = r.res
			done[r.idx] = true
			for next < len(batch) && done[next] {
				if emit != nil && ctx.Err() == nil {
					emit(b.Results[next])
				}
				next++
			}
		}
	}
	if err := ctx.Err(); err != nil {
		for i := range b.Results {
			if !done[i] {
				b.Results[i] = Result{Name: batch[i].Name, Err: err.Error()}
			}
		}
	}

	for i := range b.Results {
		r := &b.Results[i]
		if r.Err != "" {
			b.Errors++
			continue
		}
		for c, n := range r.Classes {
			b.ClassTotals[c] += n
		}
		b.TotalModelTime += r.ModelTime
	}
	b.Cache = s.CacheStats()
	return b, ctx.Err()
}

// Run optimizes and costs every scenario of the batch in a one-shot
// session (uncancellable; use a Session for context control).
func Run(batch []scenarios.Scenario, opts Options) *BatchResult {
	s := NewSession(opts)
	defer s.Close()
	b, _ := s.Run(context.Background(), batch)
	return b
}

// runOne optimizes and costs one scenario, recording the phase
// breakdown (Result.Phases, session totals) and — when ctx carries an
// active trace — a "scenario" span with store/optimize/selection
// children.
func (s *Session) runOne(ctx context.Context, sc *scenarios.Scenario) Result {
	t0 := time.Now()
	ctx, sp := trace.StartSpan(ctx, "scenario")
	sp.Set("scenario", sc.Name)
	ph := &PhaseTimes{PlanSource: "compute"}
	out := Result{Name: sc.Name, Phases: ph}
	var ent planEntry
	if s.cache != nil {
		// If another worker is computing this key, planDo blocks on its
		// single-flight slot and the closure never runs: the plans were
		// served from (in-flight) memory as far as this scenario is
		// concerned, and the defaults below stand.
		ph.PlanSource = "memory"
		ent = s.cache.planDo(sc.PlanKey(), func() planEntry {
			e, src, storeUs := computeOrLoad(ctx, sc, s.cache, s.store, s.remote)
			ph.PlanSource, ph.StoreUs = src, storeUs
			return e
		})
	} else {
		ent = optimizeCtx(ctx, sc)
	}
	ph.ComputeUs, ph.AlignUs = ent.computeUs, ent.alignUs
	ph.KernelUs, ph.KernelOps = ent.kernelUs, ent.kernelOps
	sp.Set("plan_source", ph.PlanSource)
	if ent.err != "" {
		out.Err = ent.err
		ph.TotalUs = usSince(t0)
		s.addPhases(ph)
		sp.Set("error", ent.err).End()
		return out
	}
	costStart := time.Now()
	acc := &selAcc{}
	counts := map[string]int{}
	for _, pl := range ent.plans {
		out.Classes[pl.class]++
		if pl.vectorizable {
			out.Vectorizable++
		}
		t, choices := planTime(ctx, sc, pl, s.cache, s.pricer, acc)
		out.ModelTime += t
		for _, ch := range choices {
			counts[ch.String()]++
		}
	}
	out.Collectives = formatCollectives(counts)
	ph.SelectUs = float64(acc.ns) / 1e3
	ph.SelectHits, ph.SelectMisses = acc.hits, acc.misses
	ph.CostUs = usSince(costStart)
	ph.TotalUs = usSince(t0)
	s.addPhases(ph)
	if memo := ph.SelectMemo(); memo != "" {
		sp.Set("select_memo", memo)
	}
	sp.End()
	return out
}

// formatCollectives renders selector choices deterministically:
// sorted "pattern=algorithm" terms, "*n" multiplicities past one.
func formatCollectives(counts map[string]int) string {
	if len(counts) == 0 {
		return ""
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		if counts[k] > 1 {
			fmt.Fprintf(&b, "*%d", counts[k])
		}
	}
	return b.String()
}

// collectiveTotals re-aggregates the per-scenario Collectives
// summaries of a batch into term → total multiplicity.
func collectiveTotals(results []Result) map[string]int {
	totals := map[string]int{}
	for _, r := range results {
		if r.Err != "" || r.Collectives == "" {
			continue
		}
		for _, term := range strings.Split(r.Collectives, ",") {
			n := 1
			if i := strings.IndexByte(term, '*'); i >= 0 {
				fmt.Sscanf(term[i+1:], "%d", &n)
				term = term[:i]
			}
			totals[term] += n
		}
	}
	return totals
}

// computeOrLoad fills a plan-tier memory miss: consult the disk store
// first, then the cluster's remote tier, and recompute only when both
// miss (or serve an undecodable record). Fresh plans are written back
// to the store and announced to the remote tier so the next process —
// or the next peer — starts warm. It reports which tier produced the
// entry ("disk", "peer" or "compute") and the time spent talking to
// the store/peers, and records "store.lookup" / "cluster.fetch" spans
// when ctx carries a trace.
func computeOrLoad(ctx context.Context, sc *scenarios.Scenario, cache *Cache, store PlanStore, remote RemotePlanTier) (planEntry, string, float64) {
	key := sc.PlanKey()
	var storeUs float64
	if store != nil {
		t0 := time.Now()
		_, lsp := trace.StartSpan(ctx, "store.lookup")
		lsp.Set("tier", "plans")
		if recs, errMsg, ok := store.GetPlan(key); ok {
			if ent, err := fromRecords(recs, errMsg); err == nil {
				cache.diskHits.Add(1)
				lsp.Set("result", "hit").End()
				return ent, "disk", usSince(t0)
			}
		}
		cache.diskMisses.Add(1)
		lsp.Set("result", "miss").End()
		storeUs = usSince(t0)
	}
	if remote != nil {
		t0 := time.Now()
		_, fsp := trace.StartSpan(ctx, "cluster.fetch")
		if recs, errMsg, ok := remote.FetchPlan(ctx, key); ok {
			if ent, err := fromRecords(recs, errMsg); err == nil {
				fsp.Set("result", "hit").End()
				storeUs += usSince(t0)
				if store != nil {
					// Write-through so the peer-served plan survives a
					// restart and future lookups stay local.
					w0 := time.Now()
					store.PutPlan(key, recs, errMsg)
					storeUs += usSince(w0)
				}
				return ent, "peer", storeUs
			}
		}
		fsp.Set("result", "miss").End()
		storeUs += usSince(t0)
	}
	ent := optimizeCtx(ctx, sc)
	recs, errMsg := toRecords(ent)
	if store != nil {
		t0 := time.Now()
		store.PutPlan(key, recs, errMsg)
		storeUs += usSince(t0)
	}
	if remote != nil {
		remote.PlanComputed(key, recs, errMsg)
	}
	return ent, "compute", storeUs
}

// Report renders a human-readable batch summary: aggregate class
// counts, model time, error count, cache effectiveness, and the most
// expensive scenarios.
func (b *BatchResult) Report() string {
	var s strings.Builder
	fmt.Fprintf(&s, "batch: %d scenarios on %d workers\n", len(b.Results), b.Workers)
	fmt.Fprintf(&s, "communications: %d local, %d macro, %d decomposed, %d general\n",
		b.ClassTotals[core.Local], b.ClassTotals[core.MacroComm],
		b.ClassTotals[core.Decomposed], b.ClassTotals[core.General])
	fmt.Fprintf(&s, "total model time: %.0f µs", b.TotalModelTime)
	if b.Errors > 0 {
		fmt.Fprintf(&s, "   (%d scenarios failed)", b.Errors)
	}
	s.WriteByte('\n')
	if totals := collectiveTotals(b.Results); len(totals) > 0 {
		terms := make([]string, 0, len(totals))
		for k := range totals {
			terms = append(terms, k)
		}
		sort.Strings(terms)
		s.WriteString("collectives:")
		for _, k := range terms {
			fmt.Fprintf(&s, " %s×%d", k, totals[k])
		}
		s.WriteByte('\n')
	}
	if b.Cache != (CacheStats{}) {
		c := b.Cache
		fmt.Fprintf(&s, "cache: plan %d/%d hits, kernel %d/%d hits, select %d/%d hits, %d entries",
			c.PlanHits, c.PlanHits+c.PlanMisses,
			c.KernelHits, c.KernelHits+c.KernelMisses,
			c.SelectHits, c.SelectHits+c.SelectMisses, c.Entries)
		if c.Evictions > 0 {
			fmt.Fprintf(&s, ", %d evicted", c.Evictions)
		}
		s.WriteByte('\n')
		if c.DiskHits+c.DiskMisses > 0 {
			fmt.Fprintf(&s, "store: %d/%d plan loads served from disk\n",
				c.DiskHits, c.DiskHits+c.DiskMisses)
		}
		if c.KernelDiskHits+c.KernelDiskMisses > 0 {
			fmt.Fprintf(&s, "store: %d/%d kernel loads served from disk\n",
				c.KernelDiskHits, c.KernelDiskHits+c.KernelDiskMisses)
		}
	}
	top := make([]int, 0, len(b.Results))
	for i, r := range b.Results {
		if r.Err == "" {
			top = append(top, i)
		}
	}
	sort.Slice(top, func(x, y int) bool {
		return b.Results[top[x]].ModelTime > b.Results[top[y]].ModelTime
	})
	if len(top) > 5 {
		top = top[:5]
	}
	if len(top) > 0 {
		s.WriteString("most expensive scenarios:\n")
		for _, i := range top {
			r := b.Results[i]
			fmt.Fprintf(&s, "  %-40s %10.0f µs  (%dL %dM %dD %dG)\n", r.Name, r.ModelTime,
				r.Classes[core.Local], r.Classes[core.MacroComm],
				r.Classes[core.Decomposed], r.Classes[core.General])
		}
	}
	return s.String()
}
