// Package engine runs the paper's two-step heuristic over large
// batches of scenarios concurrently. A fixed worker pool fans
// core.Optimize out across the batch; a shared two-tier memo cache
// (see Cache) computes each distinct optimization problem and each
// distinct integer-matrix kernel once, so suites that reuse nests
// across machine/distribution/size variants pay the expensive exact
// linear algebra only once. Results are aggregated into per-class
// communication counts, model-time totals and cache statistics.
//
// Running a batch is deterministic: results are reported in input
// order and are byte-identical whatever the worker count and whether
// the cache is enabled, because every memoized computation is a pure
// function of its canonical key and the plan tier is single-flight.
// The only timing-dependent quantity is the kernel-tier hit/miss
// split in CacheStats (two workers can race to first-compute the
// same kernel); plan-tier stats are exact.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/scenarios"
)

// Options tune a batch run.
type Options struct {
	// Workers is the size of the worker pool (≤0: GOMAXPROCS).
	Workers int
	// DisableCache turns the memo cache off; every scenario then
	// recomputes its heuristic from scratch (ablation / testing).
	DisableCache bool
}

// Result is the outcome for one scenario, in input order.
type Result struct {
	Name string
	// Classes counts the scenario's communications per core.Class
	// (indexed by the class constants Local..General).
	Classes [4]int
	// ModelTime is the modeled execution time (µs) of one sweep of
	// all residual communications on the scenario's machine.
	ModelTime float64
	// Vectorizable counts plans satisfying the Section 4.5 condition.
	Vectorizable int
	// Err is the optimization error, if any ("" on success).
	Err string
}

// BatchResult aggregates a run.
type BatchResult struct {
	Results []Result
	Workers int
	// ClassTotals sums Classes over all successful scenarios.
	ClassTotals [4]int
	// TotalModelTime sums ModelTime (µs).
	TotalModelTime float64
	// Errors counts failed scenarios.
	Errors int
	// Cache is the cache-effectiveness snapshot (zero when disabled).
	Cache CacheStats
}

// installMu serializes Runs: the intmat kernel-cache hook is
// process-global, so two overlapping runs (one cached, one not)
// would otherwise leak one run's cache into the other's "uncached"
// ablation and misattribute stats. Memoized kernels are pure, so
// sharing would still be *correct* — the lock keeps runs honest.
var installMu sync.Mutex

// Run optimizes and costs every scenario of the batch.
func Run(batch []scenarios.Scenario, opts Options) *BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	installMu.Lock()
	defer installMu.Unlock()
	var cache *Cache
	if !opts.DisableCache {
		cache = NewCache()
		intmat.SetKernelCache(cache)
		defer intmat.SetKernelCache(nil)
	} else {
		intmat.SetKernelCache(nil)
	}

	b := &BatchResult{Results: make([]Result, len(batch)), Workers: workers}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				b.Results[i] = runOne(&batch[i], cache)
			}
		}()
	}
	for i := range batch {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i := range b.Results {
		r := &b.Results[i]
		if r.Err != "" {
			b.Errors++
			continue
		}
		for c, n := range r.Classes {
			b.ClassTotals[c] += n
		}
		b.TotalModelTime += r.ModelTime
	}
	b.Cache = cache.Stats()
	return b
}

// planEntry is the plan-tier cache value: the optimization result (or
// its error) for one distinct optimization problem. The cached
// *core.Result is shared read-only across scenarios and workers.
type planEntry struct {
	res *core.Result
	err string
}

func runOne(sc *scenarios.Scenario, cache *Cache) Result {
	out := Result{Name: sc.Name}
	var ent planEntry
	if cache != nil {
		ent = cache.planDo(sc.PlanKey(), func() planEntry { return optimize(sc) })
	} else {
		ent = optimize(sc)
	}
	if ent.err != "" {
		out.Err = ent.err
		return out
	}
	for _, pl := range ent.res.Plans {
		out.Classes[pl.Class]++
		if pl.Vectorizable {
			out.Vectorizable++
		}
		out.ModelTime += planTime(sc, pl)
	}
	return out
}

func optimize(sc *scenarios.Scenario) planEntry {
	res, err := core.Optimize(sc.Program, sc.M, sc.Opts)
	if err != nil {
		return planEntry{err: err.Error()}
	}
	return planEntry{res: res}
}

// Report renders a human-readable batch summary: aggregate class
// counts, model time, error count, cache effectiveness, and the most
// expensive scenarios.
func (b *BatchResult) Report() string {
	var s strings.Builder
	fmt.Fprintf(&s, "batch: %d scenarios on %d workers\n", len(b.Results), b.Workers)
	fmt.Fprintf(&s, "communications: %d local, %d macro, %d decomposed, %d general\n",
		b.ClassTotals[core.Local], b.ClassTotals[core.MacroComm],
		b.ClassTotals[core.Decomposed], b.ClassTotals[core.General])
	fmt.Fprintf(&s, "total model time: %.0f µs", b.TotalModelTime)
	if b.Errors > 0 {
		fmt.Fprintf(&s, "   (%d scenarios failed)", b.Errors)
	}
	s.WriteByte('\n')
	if b.Cache != (CacheStats{}) {
		c := b.Cache
		fmt.Fprintf(&s, "cache: plan %d/%d hits, kernel %d/%d hits, %d entries\n",
			c.PlanHits, c.PlanHits+c.PlanMisses,
			c.KernelHits, c.KernelHits+c.KernelMisses, c.Entries)
	}
	top := make([]int, 0, len(b.Results))
	for i, r := range b.Results {
		if r.Err == "" {
			top = append(top, i)
		}
	}
	sort.Slice(top, func(x, y int) bool {
		return b.Results[top[x]].ModelTime > b.Results[top[y]].ModelTime
	})
	if len(top) > 5 {
		top = top[:5]
	}
	if len(top) > 0 {
		s.WriteString("most expensive scenarios:\n")
		for _, i := range top {
			r := b.Results[i]
			fmt.Fprintf(&s, "  %-40s %10.0f µs  (%dL %dM %dD %dG)\n", r.Name, r.ModelTime,
				r.Classes[core.Local], r.Classes[core.MacroComm],
				r.Classes[core.Decomposed], r.Classes[core.General])
		}
	}
	return s.String()
}
