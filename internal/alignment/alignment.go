// Package alignment implements step 1 of the paper's heuristic: given
// the access graph and its maximum branching, it derives full-rank
// integer allocation matrices that make as many communications as
// possible local, including
//
//   - propagation of allocation matrices along the branching
//     (M_dst = M_src·W for every branching edge);
//   - re-adding non-branching edges that close identity cycles or
//     parallel paths of equal matrix weight (heuristic step (c)(i));
//   - merging components through exactly solvable matrix equations
//     (Lemma 2);
//   - zeroing deficient-rank path differences by choosing the root
//     allocation inside the left kernel of F_p1 − F_p2 (step (c)(ii)).
//
// Allocation matrices within a connected component are determined up
// to left multiplication by a unimodular matrix (paper Section 3,
// Remark); RotateComponent applies such a re-basing, which step 2 of
// the heuristic uses to make broadcasts axis-parallel and to improve
// decompositions.
package alignment

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"repro/internal/accessgraph"
	"repro/internal/affine"
	"repro/internal/intmat"
	"repro/internal/ratmat"
)

// Options tune the alignment heuristic; the zero value is the paper's
// configuration.
type Options struct {
	// UnitWeights replaces the volume (rank) edge weights with weight
	// 1, for the ablation study.
	UnitWeights bool
	// NoAugmentation skips heuristic step (c) entirely: only the
	// branching edges become local.
	NoAugmentation bool
	// NoDeficientRank skips step (c)(ii) only.
	NoDeficientRank bool
	// Seed drives the randomized retries of root instantiation.
	Seed int64
}

// Result is the outcome of the alignment step.
type Result struct {
	M       int
	Program *affine.Program
	Graph   *accessgraph.Graph
	// Branching is the maximum branching (selected edges).
	Branching []*accessgraph.Edge
	// LocalComms maps communication id → true when the communication
	// was made local.
	LocalComms map[int]bool
	// Alloc maps vertex name (statement or array) to its integer
	// allocation matrix (m×dim, full rank min(m, dim)).
	Alloc map[string]*intmat.Mat
	// Component maps vertex name to a component id of the final local
	// graph; Roots lists one root vertex name per component.
	Component map[string]int
	Roots     []string
	// DeficientZeroed counts communications zeroed by the kernel
	// trick of step (c)(ii).
	DeficientZeroed int
}

// vertex state during alignment
type vstate struct {
	root     int         // vertex index of the component root
	transfer *ratmat.Mat // P_v: M_v = M_root·P_v (dim(root)×dim(v))
}

// Align runs alignment step 1 on program p for an m-dimensional
// virtual architecture.
func Align(p *affine.Program, m int, opts Options) (*Result, error) {
	g, err := accessgraph.Build(p, m)
	if err != nil {
		return nil, err
	}
	res := &Result{
		M:          m,
		Program:    p,
		Graph:      g,
		LocalComms: map[int]bool{},
		Alloc:      map[string]*intmat.Mat{},
		Component:  map[string]int{},
	}

	// --- step (b): maximum branching ---
	bes := make([]accessgraph.BranchEdge, len(g.Edges))
	for i, e := range g.Edges {
		w := e.Volume
		if opts.UnitWeights {
			w = 1
		}
		bes[i] = accessgraph.BranchEdge{Src: e.Src, Dst: e.Dst, Weight: w}
	}
	selIdx := accessgraph.MaximumBranching(len(g.Vertices), bes)
	inBranching := make([]bool, len(g.Edges))
	for _, i := range selIdx {
		inBranching[i] = true
		res.Branching = append(res.Branching, g.Edges[i])
	}

	// --- transfer matrices along the branching ---
	n := len(g.Vertices)
	st := make([]vstate, n)
	parentEdge := make([]*accessgraph.Edge, n)
	for _, e := range res.Branching {
		parentEdge[e.Dst] = e
	}
	var resolve func(v int) error
	var resolving = make([]bool, n)
	resolve = func(v int) error {
		if st[v].transfer != nil {
			return nil
		}
		if resolving[v] {
			return fmt.Errorf("alignment: branching contains a cycle at %s", g.Vertices[v].Name)
		}
		resolving[v] = true
		defer func() { resolving[v] = false }()
		pe := parentEdge[v]
		if pe == nil {
			st[v] = vstate{root: v, transfer: ratmat.Identity(g.Vertices[v].Dim)}
			return nil
		}
		if err := resolve(pe.Src); err != nil {
			return err
		}
		st[v] = vstate{
			root:     st[pe.Src].root,
			transfer: ratmat.Mul(st[pe.Src].transfer, pe.W),
		}
		return nil
	}
	for v := 0; v < n; v++ {
		if err := resolve(v); err != nil {
			return nil, err
		}
	}
	for _, e := range res.Branching {
		res.LocalComms[e.CommID] = true
	}

	// --- step (c): augmentation ---
	type deficient struct {
		root   int
		delta  *ratmat.Mat
		commID int
	}
	var deficients []deficient
	if !opts.NoAugmentation {
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		for i, e := range g.Edges {
			if inBranching[i] || res.LocalComms[e.CommID] {
				continue
			}
			pu, pv := st[e.Src].transfer, st[e.Dst].transfer
			lhs := ratmat.Mul(pu, e.W) // constraint: M_root(u)·P_u·W = M_root(v)·P_v
			if st[e.Src].root == st[e.Dst].root {
				if lhs.Equal(pv) {
					// identity cycle / equal parallel path: free to add
					res.LocalComms[e.CommID] = true
				} else {
					deficients = append(deficients, deficient{
						root:   st[e.Src].root,
						delta:  ratmat.Sub(lhs, pv),
						commID: e.CommID,
					})
				}
				continue
			}
			// different components: try to merge by solving X·P_v = P_u·W
			// relative to root(u). Needs the constraint to be expressible
			// exactly (Lemma 2 with F = P_v).
			x := solveMerge(lhs, pv, res.M, rng)
			if x == nil {
				continue
			}
			oldRoot, newRoot := st[e.Dst].root, st[e.Src].root
			for w := 0; w < n; w++ {
				if st[w].root == oldRoot {
					st[w] = vstate{root: newRoot, transfer: ratmat.Mul(x, st[w].transfer)}
				}
			}
			res.LocalComms[e.CommID] = true
		}
	}

	// --- components & roots ---
	rootOf := map[int]int{} // root vertex -> component id
	for v := 0; v < n; v++ {
		r := st[v].root
		if _, ok := rootOf[r]; !ok {
			rootOf[r] = len(res.Roots)
			res.Roots = append(res.Roots, g.Vertices[r].Name)
		}
		res.Component[g.Vertices[v].Name] = rootOf[r]
	}

	// --- step (c)(ii): deficient-rank constraints per component ---
	chosen := map[int]*ratmat.Mat{} // root vertex -> stacked constraint matrix (augmented horizontally)
	if !opts.NoAugmentation && !opts.NoDeficientRank {
		for _, d := range deficients {
			di, _ := d.delta.ScaledInt() // kernel unaffected by positive scaling
			cur := chosen[d.root]
			var cand *intmat.Mat
			if cur == nil {
				cand = di
			} else {
				ci, _ := cur.ScaledInt()
				cand = intmat.Augment(ci, di)
			}
			lk := intmat.LeftKernelBasis(cand)
			if lk.Rows() >= min(m, g.Vertices[d.root].Dim) {
				chosen[d.root] = ratmat.FromInt(cand)
				res.LocalComms[d.commID] = true
				res.DeficientZeroed++
			}
		}
	}

	// --- instantiate allocation matrices ---
	rng := rand.New(rand.NewSource(opts.Seed + 2))
	byRoot := map[int][]int{}
	for v := 0; v < n; v++ {
		byRoot[st[v].root] = append(byRoot[st[v].root], v)
	}
	// Iterate roots in sorted order: the instantiation retries share
	// one rng stream, so map-order iteration would make the chosen
	// allocation matrices vary from call to call on multi-component
	// programs.
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		vs := byRoot[r]
		mr, err := instantiateRoot(g, st, r, vs, m, chosen[r], rng)
		if err != nil {
			return nil, err
		}
		// Scale the whole component by the lcm of all denominators so
		// every allocation matrix is integral; left scaling preserves
		// all locality equalities and every rank.
		lam := int64(1)
		for _, v := range vs {
			mv := ratmat.Mul(ratmat.FromInt(mr), st[v].transfer)
			_, l := mv.ScaledInt()
			lam = lcm(lam, l)
		}
		mrS := intmat.Scale(lam, mr)
		for _, v := range vs {
			mv := ratmat.Mul(ratmat.FromInt(mrS), st[v].transfer)
			iv, l := mv.ScaledInt()
			if l != 1 {
				return nil, fmt.Errorf("alignment: internal error: allocation of %s still rational after scaling", g.Vertices[v].Name)
			}
			res.Alloc[g.Vertices[v].Name] = iv
		}
	}

	// --- final locality bookkeeping: verify and complete ---
	for _, c := range g.Comms {
		local := commIsLocal(res, c)
		if res.LocalComms[c.ID] && !local {
			return nil, fmt.Errorf("alignment: internal error: comm %d claimed local but is not", c.ID)
		}
		res.LocalComms[c.ID] = local
	}
	return res, nil
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := gcd(a, b)
	return a / g * b
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// instantiateRoot chooses a full-rank integer root allocation matrix
// honoring the deficient-rank constraints when possible and keeping
// every derived allocation of full rank.
func instantiateRoot(g *accessgraph.Graph, st []vstate, r int, vs []int, m int, constraint *ratmat.Mat, rng *rand.Rand) (*intmat.Mat, error) {
	dim := g.Vertices[r].Dim
	rows := min(m, dim)

	ranksOK := func(mr *intmat.Mat) bool {
		if mr.Rank() != rows {
			return false
		}
		for _, v := range vs {
			mv := ratmat.Mul(ratmat.FromInt(mr), st[v].transfer)
			vi, _ := mv.ScaledInt()
			if vi.Rank() != min(m, g.Vertices[v].Dim) {
				return false
			}
		}
		return true
	}

	var candidates []*intmat.Mat
	if constraint != nil {
		ci, _ := constraint.ScaledInt()
		lk := intmat.LeftKernelBasis(ci)
		if lk.Rows() >= rows {
			base := lk.SubRows(seq(rows)...)
			candidates = append(candidates, base)
			// randomized combinations of kernel rows
			for t := 0; t < 40; t++ {
				comb := intmat.Mul(intmat.RandMat(rng, rows, lk.Rows(), 2), lk)
				candidates = append(candidates, comb)
			}
		}
	}
	// canonical [Id | 0] root, then random retries
	canon := intmat.Zero(rows, dim)
	for i := 0; i < rows; i++ {
		canon.Set(i, i, 1)
	}
	candidates = append(candidates, canon)
	for t := 0; t < 60; t++ {
		candidates = append(candidates, intmat.RandMat(rng, rows, dim, 3))
	}
	for _, c := range candidates {
		if ranksOK(c) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("alignment: cannot find a full-rank allocation for component rooted at %s", g.Vertices[r].Name)
}

// solveMerge finds a full-rank-friendly X with X·pv = lhs, or nil.
// pv is cleared of denominators first: with pv = N/λ the equation
// X·N = λ·lhs is an instance of Lemma 2 over an integer F.
func solveMerge(lhs, pv *ratmat.Mat, m int, rng *rand.Rand) *ratmat.Mat {
	n, lam := pv.ScaledInt()
	sPrime := ratmat.Scale(big.NewRat(lam, 1), lhs)
	x0, proj, ok := ratmat.SolveXF(sPrime, n)
	if !ok {
		return nil
	}
	want := min(min(x0.Rows(), x0.Cols()), m)
	if x0.Rank() >= want {
		return x0
	}
	// perturb within the affine solution space X0 + Y·proj
	for t := 0; t < 30; t++ {
		y := ratmat.FromInt(intmat.RandMat(rng, x0.Rows(), proj.Rows(), 2))
		cand := ratmat.Add(x0, ratmat.Mul(y, proj))
		if cand.Rank() >= want {
			return cand
		}
	}
	return x0
}

// commIsLocal checks M_S = M_x·F exactly on the instantiated integer
// allocations.
func commIsLocal(res *Result, c accessgraph.Comm) bool {
	ms := res.Alloc[c.Stmt.Name]
	mx := res.Alloc[c.Access.Array]
	if ms == nil || mx == nil {
		return false
	}
	return intmat.Mul(mx, c.Access.F).Equal(ms)
}

// RotateComponent left-multiplies the allocation matrices of every
// vertex in the component containing `vertex` by the unimodular
// matrix V. Local communications stay local: each local equation
// M_S = M_x·F turns into V·M_S = V·M_x·F.
func (r *Result) RotateComponent(vertex string, v *intmat.Mat) error {
	if !v.IsUnimodular() {
		return fmt.Errorf("alignment: rotation matrix %v is not unimodular", v)
	}
	comp, ok := r.Component[vertex]
	if !ok {
		return fmt.Errorf("alignment: unknown vertex %q", vertex)
	}
	for name, id := range r.Component {
		if id == comp {
			r.Alloc[name] = intmat.Mul(v, r.Alloc[name])
		}
	}
	return nil
}

// ResidualComms returns the communications that remain non-local.
func (r *Result) ResidualComms() []accessgraph.Comm {
	var out []accessgraph.Comm
	for _, c := range r.Graph.Comms {
		if !r.LocalComms[c.ID] {
			out = append(out, c)
		}
	}
	return out
}

// LocalCount returns the number of local communications.
func (r *Result) LocalCount() int {
	n := 0
	for _, ok := range r.LocalComms {
		if ok {
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
