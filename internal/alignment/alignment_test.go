package alignment

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/intmat"
)

func mustAlign(t *testing.T, p *affine.Program, m int, opts Options) *Result {
	t.Helper()
	res, err := Align(p, m, opts)
	if err != nil {
		t.Fatalf("Align(%s, %d): %v", p.Name, m, err)
	}
	return res
}

// checkInvariants verifies the structural guarantees of a Result.
func checkInvariants(t *testing.T, res *Result) {
	t.Helper()
	for name, mat := range res.Alloc {
		dim := mat.Cols()
		want := res.M
		if dim < want {
			want = dim
		}
		if mat.Rows() != want && mat.Rows() != res.M {
			t.Errorf("%s: alloc is %dx%d", name, mat.Rows(), mat.Cols())
		}
		if mat.Rank() != want {
			t.Errorf("%s: alloc %v has rank %d, want %d", name, mat, mat.Rank(), want)
		}
	}
	// every communication marked local must satisfy M_S = M_x·F
	for _, c := range res.Graph.Comms {
		ms := res.Alloc[c.Stmt.Name]
		mx := res.Alloc[c.Access.Array]
		local := intmat.Mul(mx, c.Access.F).Equal(ms)
		if res.LocalComms[c.ID] != local {
			t.Errorf("comm %d (%s in %s): LocalComms=%v but equality=%v",
				c.ID, c.Access.Array, c.Stmt.Name, res.LocalComms[c.ID], local)
		}
	}
}

func TestAlignExample1(t *testing.T) {
	res := mustAlign(t, affine.PaperExample1(), 2, Options{})
	checkInvariants(t, res)
	// The paper's outcome: 6 of the 8 graph communications local; the
	// residuals are exactly the reads of a through F3 (in S1) and F7
	// (in S2). F9 (not in graph) also stays non-local.
	if got := res.LocalCount(); got != 6 {
		t.Fatalf("local comms = %d, want 6", got)
	}
	resid := res.ResidualComms()
	if len(resid) != 3 {
		t.Fatalf("residuals = %d, want 3 (F3, F7, F9)", len(resid))
	}
	seen := map[string]int{}
	for _, c := range resid {
		seen[c.Stmt.Name]++
	}
	if seen["S1"] != 1 || seen["S2"] != 1 || seen["S3"] != 1 {
		t.Fatalf("residual distribution = %v", seen)
	}
	// Both weight-3 communications (F5 write of b in S2, F8 write of
	// c in S3) must be local.
	for _, c := range res.Graph.Comms {
		if c.Rank == 3 && !res.LocalComms[c.ID] {
			t.Fatalf("weight-3 comm %d not local", c.ID)
		}
	}
}

func TestAlignExample1Branching(t *testing.T) {
	res := mustAlign(t, affine.PaperExample1(), 2, Options{})
	if len(res.Branching) != 5 {
		t.Fatalf("branching size = %d, want 5", len(res.Branching))
	}
	w := 0
	for _, e := range res.Branching {
		w += e.Volume
	}
	if w != 12 {
		t.Fatalf("branching weight = %d, want 12", w)
	}
	// one connected component: a,b,c,S1,S2,S3 all linked
	comp := res.Component["a"]
	for _, name := range []string{"b", "c", "S1", "S2", "S3"} {
		if res.Component[name] != comp {
			t.Fatalf("%s in component %d, want %d", name, res.Component[name], comp)
		}
	}
}

func TestAlignExample5IsCommunicationFree(t *testing.T) {
	// Section 7.2: our local-first strategy finds a communication-free
	// mapping for Example 5.
	res := mustAlign(t, affine.Example5(), 2, Options{})
	checkInvariants(t, res)
	if len(res.ResidualComms()) != 0 {
		t.Fatalf("example5 should be communication-free, residuals: %v", res.ResidualComms())
	}
}

func TestAlignMatMulOneLocal(t *testing.T) {
	// matmul on a 2-D grid: only one of the three accesses can be
	// made local (they pairwise conflict), so 2 residuals remain.
	res := mustAlign(t, affine.MatMul(), 2, Options{})
	checkInvariants(t, res)
	if got := res.LocalCount(); got != 1 {
		t.Fatalf("local = %d, want 1", got)
	}
	if got := len(res.ResidualComms()); got != 2 {
		t.Fatalf("residual = %d, want 2", got)
	}
}

func TestAlignGauss(t *testing.T) {
	// Gaussian elimination: the write a(i,j) and read a(i,j) are the
	// same constraint (identity-weight cycle), so both become local;
	// a(i,k) and a(k,j) cannot both be local; a(k,k) is rank-deficient.
	res := mustAlign(t, affine.Gauss(), 2, Options{})
	checkInvariants(t, res)
	if got := res.LocalCount(); got != 2 {
		t.Fatalf("local = %d, want 2 (write+read of a(i,j)): got %d", 2, got)
	}
}

func TestAlignJacobiAllLocal(t *testing.T) {
	// all accesses share the same F (translations differ only in c):
	// everything aligns; residual communications are pure translations
	// handled by the offsets, so every comm is local in the non-local-
	// term sense.
	res := mustAlign(t, affine.Jacobi(), 2, Options{})
	checkInvariants(t, res)
	if got := len(res.ResidualComms()); got != 0 {
		t.Fatalf("jacobi residuals = %d, want 0", got)
	}
}

func TestAlignTranspose(t *testing.T) {
	res := mustAlign(t, affine.Transpose(), 2, Options{})
	checkInvariants(t, res)
	// r(i,j) = a(j,i): both accesses can be made local simultaneously
	// (M_r = Id, M_a = perm).
	if got := len(res.ResidualComms()); got != 0 {
		t.Fatalf("transpose residuals = %d, want 0", got)
	}
}

func TestAlignAblations(t *testing.T) {
	// unit weights: still a valid branching, possibly different
	// locality count; invariants must hold.
	res := mustAlign(t, affine.PaperExample1(), 2, Options{UnitWeights: true})
	checkInvariants(t, res)
	// no augmentation: the 5 branching communications are local by
	// construction; the final rescan may find more that hold by
	// accident of the chosen root, but never fewer.
	res2 := mustAlign(t, affine.PaperExample1(), 2, Options{NoAugmentation: true})
	checkInvariants(t, res2)
	if res2.LocalCount() < 5 {
		t.Fatalf("no-augmentation local = %d, want >= 5", res2.LocalCount())
	}
	full := mustAlign(t, affine.PaperExample1(), 2, Options{})
	if full.LocalCount() < res2.LocalCount() {
		t.Fatal("augmentation made things worse")
	}
}

func TestAlignVolumeWeightsMatter(t *testing.T) {
	// On Example 1 the volume weights force the two 3-D accesses to
	// be local; unit weights may pick differently, but never a larger
	// total volume than the volume-weighted run.
	vol := func(res *Result) int {
		v := 0
		for _, c := range res.Graph.Comms {
			if res.LocalComms[c.ID] {
				v += c.Rank
			}
		}
		return v
	}
	weighted := mustAlign(t, affine.PaperExample1(), 2, Options{})
	unit := mustAlign(t, affine.PaperExample1(), 2, Options{UnitWeights: true})
	if vol(weighted) < vol(unit) {
		t.Fatalf("volume-weighted local volume %d < unit-weighted %d", vol(weighted), vol(unit))
	}
}

func TestRotateComponent(t *testing.T) {
	res := mustAlign(t, affine.PaperExample1(), 2, Options{})
	before := res.LocalCount()
	v := intmat.New(2, 2, 1, 0, 1, 1)
	if err := res.RotateComponent("a", v); err != nil {
		t.Fatal(err)
	}
	// locality must be preserved
	for _, c := range res.Graph.Comms {
		ms := res.Alloc[c.Stmt.Name]
		mx := res.Alloc[c.Access.Array]
		local := intmat.Mul(mx, c.Access.F).Equal(ms)
		if res.LocalComms[c.ID] != local {
			t.Fatalf("rotation broke locality of comm %d", c.ID)
		}
	}
	if res.LocalCount() != before {
		t.Fatal("rotation changed local count")
	}
	// non-unimodular rotations must be rejected
	if err := res.RotateComponent("a", intmat.New(2, 2, 2, 0, 0, 1)); err == nil {
		t.Fatal("non-unimodular rotation accepted")
	}
	if err := res.RotateComponent("nope", v); err == nil {
		t.Fatal("unknown vertex accepted")
	}
}

func TestAlignAllExamples(t *testing.T) {
	for _, p := range affine.AllExamples() {
		res, err := Align(p, 2, Options{})
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		checkInvariants(t, res)
	}
}

func TestAlignM1(t *testing.T) {
	// 1-D virtual architecture: more freedom, at least as many local
	// communications as m=2 on the matmul example.
	res1 := mustAlign(t, affine.MatMul(), 1, Options{})
	checkInvariants(t, res1)
	res2 := mustAlign(t, affine.MatMul(), 2, Options{})
	if res1.LocalCount() < res2.LocalCount() {
		t.Fatalf("m=1 local %d < m=2 local %d", res1.LocalCount(), res2.LocalCount())
	}
}
