package collective

import (
	"math"

	"repro/internal/machine"
)

// fatTreeAlgoNames is the registry order for fat-tree selection:
// the hardware combining network first (it wins ties), then the
// software trees over the data network.
var fatTreeAlgoNames = []string{"hardware", "binomial-sw", "flat-sw", "direct"}

// FatTreeAlgorithms lists the fat-tree algorithm names in
// tie-breaking order.
func FatTreeAlgorithms() []string { return append([]string(nil), fatTreeAlgoNames...) }

// fatTreeLevels mirrors the fat tree's ⌈log₂ P⌉ depth.
func fatTreeLevels(p int) float64 {
	if p <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(p)))
}

// SelectFatTree evaluates the fat-tree algorithms for the pattern and
// payload and returns the cheapest. The CM-5-like control network
// executes broadcasts and reductions in hardware at fixed
// logarithmic cost; software alternatives over the data network pay
// the per-message send overhead per tree level ("binomial-sw") or per
// destination ("flat-sw"). Shifts are a single software message per
// processor ("direct"). force pins the choice as in SelectMesh.
func SelectFatTree(f *machine.FatTree, p Pattern, bytes int64, force string) Choice {
	type cand struct {
		name   string
		cost   float64
		rounds int
	}
	levels := fatTreeLevels(f.P)
	sw := f.SWStartup + float64(bytes)*f.PerByte
	var cands []cand
	switch p {
	case Broadcast:
		cands = []cand{
			{"hardware", f.Broadcast(bytes), 0},
			{"binomial-sw", levels * sw, int(levels)},
			{"flat-sw", float64(f.P-1) * sw, 1},
		}
	case Reduction:
		cands = []cand{
			{"hardware", f.Reduction(bytes), 0},
			{"binomial-sw", levels * sw, int(levels)},
			{"flat-sw", float64(f.P-1) * sw, 1},
		}
	case Shift:
		cands = []cand{{"direct", f.Translation(bytes), 1}}
	}
	best := Choice{Pattern: p, Cost: -1}
	for _, c := range cands {
		if force != "" && c.name != force {
			continue
		}
		if best.Cost < 0 || c.cost < best.Cost {
			best = Choice{Pattern: p, Algorithm: c.name, Cost: c.cost, Rounds: c.rounds}
		}
	}
	if best.Cost < 0 {
		return SelectFatTree(f, p, bytes, "")
	}
	return best
}
