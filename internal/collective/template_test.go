package collective

import (
	"fmt"
	"testing"

	"repro/internal/machine"
)

// templateMeshes are the geometries the equivalence tests sweep:
// square, skewed both ways, non-power-of-two, and degenerate.
var templateMeshes = [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {2, 16}, {16, 2}, {64, 2}, {2, 64}, {3, 5}, {1, 8}}

// templateBytes cross payloads from below the chain segment sizes to
// scatter-allgather territory.
var templateBytes = []int64{1, 3, 16, 64, 1024, 65536, 1 << 20, 1 << 24}

func requireSameChoice(t *testing.T, ctxt string, want, got Choice) {
	t.Helper()
	if want != got {
		t.Fatalf("%s:\n  select: %+v\n  template: %+v", ctxt, want, got)
	}
}

// TestMeshTemplateMatchesSelect checks that every template mode
// returns bit-identical Choices (algorithm, scope, rounds, and cost
// down to the last float bit) to the uncompiled Select* calls across
// meshes, patterns, dims, payloads, and force pins.
func TestMeshTemplateMatchesSelect(t *testing.T) {
	forces := []string{"", "flat", "chain", "dim-tree", "direct" /* not a mesh algo: fallback */}
	for _, sh := range templateMeshes {
		m := machine.DefaultMesh(sh[0], sh[1])
		for _, p := range []Pattern{Broadcast, Reduction} {
			for _, force := range forces {
				ctxt := func(mode string, b int64) string {
					return fmt.Sprintf("%dx%d %s force=%q %s bytes=%d", sh[0], sh[1], p, force, mode, b)
				}
				tt := NewMeshTotalTemplate(m, p, force)
				d0 := NewMeshDimTemplate(m, p, 0, force)
				d1 := NewMeshDimTemplate(m, p, 1, force)
				m1 := NewMeshMacroTemplate(m, p, []int{0}, force)
				m2 := NewMeshMacroTemplate(m, p, []int{0, 1}, force)
				m0 := NewMeshMacroTemplate(m, p, nil, force)
				for _, b := range templateBytes {
					requireSameChoice(t, ctxt("total", b), SelectMesh(m, p, 0, b, force), tt.Eval(m, b))
					requireSameChoice(t, ctxt("dim0", b), SelectMeshDim(m, p, 0, b, force), d0.Eval(m, b))
					requireSameChoice(t, ctxt("dim1", b), SelectMeshDim(m, p, 1, b, force), d1.Eval(m, b))
					requireSameChoice(t, ctxt("macro[0]", b), SelectMeshMacro(m, p, []int{0}, b, force), m1.Eval(m, b))
					requireSameChoice(t, ctxt("macro[0 1]", b), SelectMeshMacro(m, p, []int{0, 1}, b, force), m2.Eval(m, b))
					requireSameChoice(t, ctxt("macro[]", b), SelectMeshMacro(m, p, nil, b, force), m0.Eval(m, b))
				}
			}
		}
	}
}

// TestMeshTemplateAllForces pins every mesh algorithm on one square
// and one skewed mesh, so the force filter and the chain's variant
// machinery compile correctly under pinning.
func TestMeshTemplateAllForces(t *testing.T) {
	for _, sh := range [][2]int{{8, 8}, {16, 2}} {
		m := machine.DefaultMesh(sh[0], sh[1])
		for _, force := range MeshAlgorithms() {
			for _, p := range []Pattern{Broadcast, Reduction} {
				tmpl := NewMeshMacroTemplate(m, p, []int{0, 1}, force)
				dt := NewMeshDimTemplate(m, p, 1, force)
				for _, b := range []int64{1, 64, 4096, 1 << 22} {
					requireSameChoice(t, fmt.Sprintf("%dx%d force=%s %s macro bytes=%d", sh[0], sh[1], force, p, b),
						SelectMeshMacro(m, p, []int{0, 1}, b, force), tmpl.Eval(m, b))
					requireSameChoice(t, fmt.Sprintf("%dx%d force=%s %s dim1 bytes=%d", sh[0], sh[1], force, p, b),
						SelectMeshDim(m, p, 1, b, force), dt.Eval(m, b))
				}
			}
		}
	}
}

// TestMeshTemplateOutOfRangeDim mirrors SelectMeshDim's fallback for
// virtual axes with no mesh extent.
func TestMeshTemplateOutOfRangeDim(t *testing.T) {
	m := machine.DefaultMesh(4, 4)
	tmpl := NewMeshDimTemplate(m, Broadcast, 3, "")
	requireSameChoice(t, "dim3", SelectMeshDim(m, Broadcast, 3, 4096, ""), tmpl.Eval(m, 4096))
}

// TestMeshTemplateEvalAllocs is the warm-evaluator alloc-regression
// guard: a compiled template must price any payload without
// allocating.
func TestMeshTemplateEvalAllocs(t *testing.T) {
	m := machine.DefaultMesh(16, 16)
	tmpl := NewMeshMacroTemplate(m, Reduction, []int{0, 1}, "")
	bytesIn := templateBytes
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		tmpl.Eval(m, bytesIn[i%len(bytesIn)])
		i++
	}); n > 0 {
		t.Fatalf("MeshTemplate.Eval allocates %.1f times per run, want 0", n)
	}
}
