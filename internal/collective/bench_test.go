package collective

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkCollectiveSelect measures the selector hot path the engine
// hits once per macro-communication: build and price every algorithm
// on a square mesh and pick the cheapest.
func BenchmarkCollectiveSelect(b *testing.B) {
	m := machine.DefaultMesh(16, 16)
	var ch Choice
	for i := 0; i < b.N; i++ {
		ch = SelectMesh(m, Broadcast, 0, 4096, "")
	}
	b.ReportMetric(ch.Cost, "model-µs")
}

// BenchmarkCollectiveSelectSkewed covers the tall-mesh shape where
// the dimension-ordered tree matters.
func BenchmarkCollectiveSelectSkewed(b *testing.B) {
	m := machine.DefaultMesh(64, 2)
	var ch Choice
	for i := 0; i < b.N; i++ {
		ch = SelectMesh(m, Broadcast, 0, 4096, "")
	}
	b.ReportMetric(ch.Cost, "model-µs")
}

// BenchmarkCollectiveSelectFatTree prices the fixed-cost fat-tree
// candidates (no schedules to build; this is the cheap path).
func BenchmarkCollectiveSelectFatTree(b *testing.B) {
	f := machine.DefaultFatTree(64)
	var ch Choice
	for i := 0; i < b.N; i++ {
		ch = SelectFatTree(f, Reduction, 4096, "")
	}
	b.ReportMetric(ch.Cost, "model-µs")
}

// BenchmarkPermuteSelect prices the per-phase shift selection used by
// decomposed plans.
func BenchmarkPermuteSelect(b *testing.B) {
	m := machine.DefaultMesh(8, 8)
	var msgs []machine.Message
	for x := 0; x < m.P; x++ {
		for y := 0; y < m.Q; y++ {
			msgs = append(msgs, machine.Message{Src: m.Rank(x, y), Dst: m.Rank(y, x), Bytes: 256})
		}
	}
	var ch Choice
	for i := 0; i < b.N; i++ {
		ch = SelectPermute(m, msgs, "")
	}
	b.ReportMetric(ch.Cost, "model-µs")
}
