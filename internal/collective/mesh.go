package collective

import (
	"fmt"

	"repro/internal/machine"
)

// A collective on the mesh spans a set of node lines: ordered
// processor sequences that each run the same tree concurrently, round
// by round. A total collective (the whole machine) is one line of all
// P·Q ranks in row-major order starting at the root; a partial
// axis-parallel collective — the paper's p=1 macro-communication
// along one grid dimension — is one line per orthogonal coordinate,
// rooted at coordinate 0. Partial collectives are where topology
// bites: broadcasting along the 64-long dimension of a 64×2 mesh is a
// very different machine problem than along the 2-long dimension of
// its 2×64 transpose.

// meshAlgo is one software broadcast/reduction algorithm over the
// mesh. build returns the broadcast schedule for a line set;
// reductions reuse it mirrored (reversed rounds, swapped endpoints).
// totalOnly marks algorithms whose structure needs the full 2-D rank
// space and cannot run per line.
type meshAlgo struct {
	name      string
	totalOnly bool
	build     func(m *machine.Mesh2D, ls [][]int, bytes int64) []Round
}

// meshAlgos is the registry, in tie-breaking order: on equal cost the
// earlier algorithm wins, so trees are preferred over the flat
// baseline when they cost the same.
var meshAlgos = []meshAlgo{
	{"bisection", false, buildBisection},
	{"binomial", false, buildBinomial},
	{"dim-tree", true, buildDimTree},
	{"chain", false, buildChain},
	{"scatter-allgather", false, buildScatterAllgather},
	{"flat", false, buildFlat},
}

// MeshAlgorithms lists the mesh broadcast/reduction algorithm names
// in registry (tie-breaking) order.
func MeshAlgorithms() []string {
	names := make([]string, len(meshAlgos))
	for i, a := range meshAlgos {
		names[i] = a.name
	}
	return names
}

// totalLine is the single line of a machine-spanning collective:
// every rank in row-major order, rotated to start at the root.
func totalLine(m *machine.Mesh2D, root int) [][]int {
	P := m.Procs()
	line := make([]int, P)
	for i := range line {
		line[i] = (root + i) % P
	}
	return [][]int{line}
}

// dimLines are the lines of a partial collective along mesh dimension
// dim (0: within columns, along x; 1: within rows, along y), one per
// orthogonal coordinate, rooted at coordinate 0.
func dimLines(m *machine.Mesh2D, dim int) [][]int {
	var ls [][]int
	if dim == 0 {
		for y := 0; y < m.Q; y++ {
			line := make([]int, m.P)
			for x := 0; x < m.P; x++ {
				line[x] = m.Rank(x, y)
			}
			ls = append(ls, line)
		}
	} else {
		for x := 0; x < m.P; x++ {
			line := make([]int, m.Q)
			for y := 0; y < m.Q; y++ {
				line[y] = m.Rank(x, y)
			}
			ls = append(ls, line)
		}
	}
	return ls
}

// ScheduleMesh builds the named algorithm's schedule for a total
// broadcast or reduction on the mesh. Unknown names and the Shift
// pattern (see SelectPermute) return an error.
func ScheduleMesh(m *machine.Mesh2D, p Pattern, root int, bytes int64, algo string) (*Schedule, error) {
	return scheduleLines(m, p, totalLine(m, root), bytes, algo, "")
}

// ScheduleMeshDim builds the named algorithm's schedule for a partial
// collective along mesh dimension dim (concurrent per-line trees).
func ScheduleMeshDim(m *machine.Mesh2D, p Pattern, dim int, bytes int64, algo string) (*Schedule, error) {
	if dim != 0 && dim != 1 {
		return nil, fmt.Errorf("collective: mesh dimension %d out of range", dim)
	}
	return scheduleLines(m, p, dimLines(m, dim), bytes, algo, axisScope(dim))
}

// axisScope names the scope of a per-line collective along dim.
func axisScope(dim int) string { return fmt.Sprintf("axis%d", dim) }

// scheduleLines builds and prices the named algorithm's schedule over
// a line set; scope "" marks a machine-spanning total collective
// (the only place the total-only algorithms may run).
func scheduleLines(m *machine.Mesh2D, p Pattern, ls [][]int, bytes int64, algo, scope string) (*Schedule, error) {
	if p != Broadcast && p != Reduction {
		return nil, fmt.Errorf("collective: mesh schedules cover broadcast/reduction, not %s", p)
	}
	for _, a := range meshAlgos {
		if a.name != algo {
			continue
		}
		if a.totalOnly && scope != "" {
			return nil, fmt.Errorf("collective: %s applies only to total collectives", algo)
		}
		rounds := a.build(m, ls, bytes)
		if p == Reduction {
			rounds = reverseRounds(rounds)
		}
		return newSchedule(m, algo, p, scope, rounds), nil
	}
	return nil, fmt.Errorf("collective: unknown mesh algorithm %q (have %v)", algo, MeshAlgorithms())
}

// SelectMesh evaluates every mesh algorithm for a total collective
// against the concrete mesh instance and returns the cheapest. force
// pins the selection to one named algorithm; a force that names no
// applicable mesh algorithm (or "") selects freely. Selection is
// deterministic: equal costs resolve to the earlier registry entry.
func SelectMesh(m *machine.Mesh2D, p Pattern, root int, bytes int64, force string) Choice {
	return selectLines(m, p, totalLine(m, root), bytes, force, "")
}

// SelectMeshDim selects for a partial collective along mesh dimension
// dim: every line runs its tree concurrently, and the lines' shape —
// their length and how their hops map onto the grid — is what the
// algorithms compete on.
func SelectMeshDim(m *machine.Mesh2D, p Pattern, dim int, bytes int64, force string) Choice {
	if dim != 0 && dim != 1 {
		return SelectMesh(m, p, 0, bytes, force)
	}
	return selectLines(m, p, dimLines(m, dim), bytes, force, axisScope(dim))
}

// selectLines builds every applicable algorithm's schedule for the
// line set and returns the cheapest as a Choice; scope "" admits the
// total-only algorithms.
func selectLines(m *machine.Mesh2D, p Pattern, ls [][]int, bytes int64, force, scope string) Choice {
	best := Choice{Pattern: p, Cost: -1}
	for _, a := range meshAlgos {
		if force != "" && a.name != force {
			continue
		}
		if a.totalOnly && scope != "" {
			continue
		}
		sched, err := scheduleLines(m, p, ls, bytes, a.name, scope)
		if err != nil {
			continue
		}
		if ch := sched.Choice(); best.Cost < 0 || ch.Cost < best.Cost {
			best = ch
		}
	}
	if best.Cost < 0 {
		// force named an algorithm that cannot run here (a permute or
		// fat-tree name, or a total-only tree on a partial collective):
		// fall back to free selection.
		return selectLines(m, p, ls, bytes, "", scope)
	}
	return best
}

// reverseRounds mirrors a broadcast schedule into a reduction: rounds
// run in reverse order and every message flows leaf-to-root.
func reverseRounds(rounds []Round) []Round {
	out := make([]Round, 0, len(rounds))
	for i := len(rounds) - 1; i >= 0; i-- {
		r := make(Round, len(rounds[i]))
		for j, msg := range rounds[i] {
			r[j] = machine.Message{Src: msg.Dst, Dst: msg.Src, Bytes: msg.Bytes}
		}
		out = append(out, r)
	}
	return out
}

// maxLineLen returns the longest line of the set (lines of one set
// have equal length today, but the builders only assume ≥1).
func maxLineLen(ls [][]int) int {
	n := 0
	for _, l := range ls {
		if len(l) > n {
			n = len(l)
		}
	}
	return n
}

// buildFlat is the degenerate root-to-all baseline: every non-root
// processor of each line is served by one message from the line root,
// all posted in a single round (the mesh contention model then
// serializes them on the root's few outgoing links — exactly the old
// naive cost for a total collective).
func buildFlat(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	var r Round
	for _, line := range ls {
		for _, dst := range line[1:] {
			r = append(r, machine.Message{Src: line[0], Dst: dst, Bytes: bytes})
		}
	}
	if len(r) == 0 {
		return nil
	}
	return []Round{r}
}

// buildBisection is the recursive-halving (midpoint) tree: each
// holder sends to the midpoint of its line segment, splitting the
// problem in two every round. The segments of one round map to
// disjoint physical intervals, so — unlike binomial doubling, whose
// same-round paths overlap and serialize — bisection rounds are
// conflict-free wherever the grid extents are powers of two, which
// makes it the cheapest tree on every default mesh.
func buildBisection(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	n := maxLineLen(ls)
	top := 1
	for top < n {
		top *= 2
	}
	var rounds []Round
	for d := top / 2; d >= 1; d /= 2 {
		var r Round
		for _, line := range ls {
			for rel := 0; rel+d < len(line); rel += 2 * d {
				r = append(r, machine.Message{Src: line[rel], Dst: line[rel+d], Bytes: bytes})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return rounds
}

// buildBinomial is the binomial (recursive doubling) tree: in round
// k every processor that already holds the payload forwards it to
// the partner 2^k line positions away, so n processors are covered
// in ⌈log₂ n⌉ rounds. How well the doubling maps onto the physical
// grid — and how much the round's messages conflict — depends on the
// mesh shape and the line orientation.
func buildBinomial(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	n := maxLineLen(ls)
	var rounds []Round
	for dist := 1; dist < n; dist *= 2 {
		var r Round
		for _, line := range ls {
			for rel := 0; rel < dist && rel+dist < len(line); rel++ {
				r = append(r, machine.Message{Src: line[rel], Dst: line[rel+dist], Bytes: bytes})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return rounds
}

// buildDimTree is the dimension-ordered tree for total collectives: a
// binomial tree down the root's column first (phase 1, all traffic in
// the x dimension), then concurrent binomial trees along every row
// (phase 2, all traffic in the y dimension). Each phase's messages
// are axis-parallel, so cross-dimension link conflicts never arise.
func buildDimTree(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	root := 0
	if len(ls) > 0 && len(ls[0]) > 0 {
		root = ls[0][0]
	}
	rx, ry := m.Coords(root)
	var rounds []Round
	for dist := 1; dist < m.P; dist *= 2 {
		var r Round
		for rel := 0; rel < dist && rel+dist < m.P; rel++ {
			r = append(r, machine.Message{
				Src:   m.Rank((rx+rel)%m.P, ry),
				Dst:   m.Rank((rx+rel+dist)%m.P, ry),
				Bytes: bytes,
			})
		}
		rounds = append(rounds, r)
	}
	for dist := 1; dist < m.Q; dist *= 2 {
		var r Round
		for x := 0; x < m.P; x++ {
			for rel := 0; rel < dist && rel+dist < m.Q; rel++ {
				r = append(r, machine.Message{
					Src:   m.Rank(x, (ry+rel)%m.Q),
					Dst:   m.Rank(x, (ry+rel+dist)%m.Q),
					Bytes: bytes,
				})
			}
		}
		rounds = append(rounds, r)
	}
	return rounds
}

// chainSegments are the pipeline depths the chain algorithm
// considers; the cheapest segmentation for the concrete machine and
// payload wins. More segments cut the per-hop serialization of large
// payloads but pay more startups.
var chainSegments = []int{1, 2, 4, 8, 16}

// buildChain is the pipelined chain: the payload is cut into s
// segments that stream down each line, so the last processor
// finishes after n−2+s rounds of neighbor messages instead of
// waiting for the whole payload to traverse every hop. The segment
// count is chosen by cost over chainSegments.
func buildChain(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	if maxLineLen(ls) < 2 {
		return nil
	}
	var best []Round
	bestCost := -1.0
	for _, s := range chainSegments {
		if int64(s) > bytes && s > 1 {
			break // segments below one byte: stop splitting
		}
		rounds := buildChainSeg(ls, bytes, s)
		cost := MeshCost(m, rounds)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = rounds, cost
		}
	}
	return best
}

// buildChainSeg builds the chain schedule with exactly s segments:
// segment j reaches line position i (1-based) in round i−1+j.
func buildChainSeg(ls [][]int, bytes int64, s int) []Round {
	n := maxLineLen(ls)
	segBytes := (bytes + int64(s) - 1) / int64(s)
	var rounds []Round
	for t := 0; t < n-1+s-1; t++ {
		var r Round
		for _, line := range ls {
			for i := 1; i < len(line); i++ {
				j := t - (i - 1)
				if j < 0 || j >= s {
					continue
				}
				r = append(r, machine.Message{Src: line[i-1], Dst: line[i], Bytes: segBytes})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return rounds
}

// buildScatterAllgather is the large-payload broadcast: a binomial
// scatter distributes 1/n of the payload across each line in
// ⌈log₂ n⌉ rounds of halving sizes, then a ring allgather circulates
// the chunks in n−1 rounds of concurrent neighbor messages. Total
// traffic is ≈2·bytes per link instead of bytes·n, which wins once
// payloads dwarf startups.
func buildScatterAllgather(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	n := maxLineLen(ls)
	if n < 2 {
		return nil
	}
	chunk := (bytes + int64(n) - 1) / int64(n)
	top := 1
	for top < n {
		top *= 2
	}
	var rounds []Round
	// Binomial scatter: the sender at line position rel hands the
	// chunks owned by the positions [rel+dist, rel+2·dist) to its
	// partner, largest distances first.
	for dist := top / 2; dist >= 1; dist /= 2 {
		var r Round
		for _, line := range ls {
			for rel := 0; rel < len(line); rel += 2 * dist {
				if rel+dist >= len(line) {
					continue
				}
				sub := dist
				if len(line)-(rel+dist) < sub {
					sub = len(line) - (rel + dist)
				}
				r = append(r, machine.Message{Src: line[rel], Dst: line[rel+dist], Bytes: chunk * int64(sub)})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	// Ring allgather: every processor forwards one chunk to its line
	// successor each round; after n−1 rounds everyone holds all n.
	for t := 0; t < n-1; t++ {
		var r Round
		for _, line := range ls {
			for i := range line {
				r = append(r, machine.Message{Src: line[i], Dst: line[(i+1)%len(line)], Bytes: chunk})
			}
		}
		rounds = append(rounds, r)
	}
	return rounds
}
