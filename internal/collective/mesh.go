package collective

import (
	"fmt"

	"repro/internal/machine"
)

// A collective on the mesh spans a set of node lines: ordered
// processor sequences that each run the same tree concurrently, round
// by round. A total collective (the whole machine) is one line of all
// P·Q ranks in row-major order starting at the root; a partial
// axis-parallel collective — the paper's p=1 macro-communication
// along one grid dimension — is one line per orthogonal coordinate,
// rooted at coordinate 0. Partial collectives are where topology
// bites: broadcasting along the 64-long dimension of a 64×2 mesh is a
// very different machine problem than along the 2-long dimension of
// its 2×64 transpose.

// meshAlgo is one software broadcast/reduction algorithm over the
// mesh. shape emits its byte-symbolic candidate schedules for a line
// set (broadcast orientation; reductions run them mirrored — reversed
// rounds, swapped endpoints). totalOnly marks algorithms whose
// structure needs the full 2-D rank space and cannot run per line.
type meshAlgo struct {
	name      string
	totalOnly bool
	shape     func(m *machine.Mesh2D, ls [][]int) []shapeVariant
}

// meshAlgos is the registry, in tie-breaking order: on equal cost the
// earlier algorithm wins, so trees are preferred over the flat
// baseline when they cost the same.
var meshAlgos = []meshAlgo{
	{"bisection", false, shapeBisection},
	{"binomial", false, shapeBinomial},
	{"dim-tree", true, shapeDimTree},
	{"chain", false, shapeChain},
	{"scatter-allgather", false, shapeScatterAllgather},
	{"flat", false, shapeFlat},
}

// build materializes the algorithm's cheapest applicable schedule
// variant at the payload (broadcast orientation).
func (a meshAlgo) build(m *machine.Mesh2D, ls [][]int, bytes int64) []Round {
	e := newEvaluator(m)
	v := e.pickVariant(a.shape(m, ls), bytes)
	if v == nil {
		return nil
	}
	return instantiate(v.rounds, bytes)
}

// MeshAlgorithms lists the mesh broadcast/reduction algorithm names
// in registry (tie-breaking) order.
func MeshAlgorithms() []string {
	names := make([]string, len(meshAlgos))
	for i, a := range meshAlgos {
		names[i] = a.name
	}
	return names
}

// totalLine is the single line of a machine-spanning collective:
// every rank in row-major order, rotated to start at the root.
func totalLine(m *machine.Mesh2D, root int) [][]int {
	P := m.Procs()
	line := make([]int, P)
	for i := range line {
		line[i] = (root + i) % P
	}
	return [][]int{line}
}

// dimLines are the lines of a partial collective along mesh dimension
// dim (0: within columns, along x; 1: within rows, along y), one per
// orthogonal coordinate, rooted at coordinate 0.
func dimLines(m *machine.Mesh2D, dim int) [][]int {
	var ls [][]int
	if dim == 0 {
		for y := 0; y < m.Q; y++ {
			line := make([]int, m.P)
			for x := 0; x < m.P; x++ {
				line[x] = m.Rank(x, y)
			}
			ls = append(ls, line)
		}
	} else {
		for x := 0; x < m.P; x++ {
			line := make([]int, m.Q)
			for y := 0; y < m.Q; y++ {
				line[y] = m.Rank(x, y)
			}
			ls = append(ls, line)
		}
	}
	return ls
}

// ScheduleMesh builds the named algorithm's schedule for a total
// broadcast or reduction on the mesh. Unknown names and the Shift
// pattern (see SelectPermute) return an error.
func ScheduleMesh(m *machine.Mesh2D, p Pattern, root int, bytes int64, algo string) (*Schedule, error) {
	return scheduleLines(m, p, totalLine(m, root), bytes, algo, "")
}

// ScheduleMeshDim builds the named algorithm's schedule for a partial
// collective along mesh dimension dim (concurrent per-line trees).
func ScheduleMeshDim(m *machine.Mesh2D, p Pattern, dim int, bytes int64, algo string) (*Schedule, error) {
	if dim != 0 && dim != 1 {
		return nil, fmt.Errorf("collective: mesh dimension %d out of range", dim)
	}
	return scheduleLines(m, p, dimLines(m, dim), bytes, algo, axisScope(dim))
}

// axisScope names the scope of a per-line collective along dim.
func axisScope(dim int) string { return fmt.Sprintf("axis%d", dim) }

// scheduleLines builds and prices the named algorithm's schedule over
// a line set; scope "" marks a machine-spanning total collective
// (the only place the total-only algorithms may run).
func scheduleLines(m *machine.Mesh2D, p Pattern, ls [][]int, bytes int64, algo, scope string) (*Schedule, error) {
	if p != Broadcast && p != Reduction {
		return nil, fmt.Errorf("collective: mesh schedules cover broadcast/reduction, not %s", p)
	}
	for _, a := range meshAlgos {
		if a.name != algo {
			continue
		}
		if a.totalOnly && scope != "" {
			return nil, fmt.Errorf("collective: %s applies only to total collectives", algo)
		}
		rounds := a.build(m, ls, bytes)
		if p == Reduction {
			rounds = reverseRounds(rounds)
		}
		return newSchedule(m, algo, p, scope, rounds), nil
	}
	return nil, fmt.Errorf("collective: unknown mesh algorithm %q (have %v)", algo, MeshAlgorithms())
}

// SelectMesh evaluates every mesh algorithm for a total collective
// against the concrete mesh instance and returns the cheapest. force
// pins the selection to one named algorithm; a force that names no
// applicable mesh algorithm (or "") selects freely. Selection is
// deterministic: equal costs resolve to the earlier registry entry.
func SelectMesh(m *machine.Mesh2D, p Pattern, root int, bytes int64, force string) Choice {
	return selectLines(m, p, totalLine(m, root), bytes, force, "")
}

// SelectMeshDim selects for a partial collective along mesh dimension
// dim: every line runs its tree concurrently, and the lines' shape —
// their length and how their hops map onto the grid — is what the
// algorithms compete on.
func SelectMeshDim(m *machine.Mesh2D, p Pattern, dim int, bytes int64, force string) Choice {
	if dim != 0 && dim != 1 {
		return SelectMesh(m, p, 0, bytes, force)
	}
	return selectLines(m, p, dimLines(m, dim), bytes, force, axisScope(dim))
}

// selectLines builds every applicable algorithm's schedule for the
// line set and returns the cheapest as a Choice; scope "" admits the
// total-only algorithms.
func selectLines(m *machine.Mesh2D, p Pattern, ls [][]int, bytes int64, force, scope string) Choice {
	ch, _ := newEvaluator(m).selectShapes(m, p, ls, bytes, force, scope)
	return ch
}

// selectShapes is selectLines over a shared evaluator: every
// candidate prices through the same contention scratch and message
// buffer, and the winner's symbolic rounds come back alongside the
// Choice so compositions (SelectMeshPlanes) can re-price them without
// rebuilding. scope "" admits the total-only algorithms.
func (e *evaluator) selectShapes(m *machine.Mesh2D, p Pattern, ls [][]int, bytes int64, force, scope string) (Choice, []shapeRound) {
	best := Choice{Pattern: p, Cost: -1}
	var bestShapes []shapeRound
	for _, a := range meshAlgos {
		if force != "" && a.name != force {
			continue
		}
		if a.totalOnly && scope != "" {
			continue
		}
		v := e.pickVariant(a.shape(m, ls), bytes)
		if v == nil {
			continue
		}
		cost := e.price(v.rounds, p, bytes)
		if best.Cost < 0 || cost < best.Cost {
			best = Choice{Pattern: p, Algorithm: a.name, Scope: scope, Cost: cost, Rounds: len(v.rounds)}
			bestShapes = v.rounds
		}
	}
	if best.Cost < 0 {
		// force named an algorithm that cannot run here (a permute or
		// fat-tree name, or a total-only tree on a partial collective):
		// fall back to free selection.
		return e.selectShapes(m, p, ls, bytes, "", scope)
	}
	return best, bestShapes
}

// reverseRounds mirrors a broadcast schedule into a reduction: rounds
// run in reverse order and every message flows leaf-to-root.
func reverseRounds(rounds []Round) []Round {
	out := make([]Round, 0, len(rounds))
	for i := len(rounds) - 1; i >= 0; i-- {
		r := make(Round, len(rounds[i]))
		for j, msg := range rounds[i] {
			r[j] = machine.Message{Src: msg.Dst, Dst: msg.Src, Bytes: msg.Bytes}
		}
		out = append(out, r)
	}
	return out
}

// maxLineLen returns the longest line of the set (lines of one set
// have equal length today, but the builders only assume ≥1).
func maxLineLen(ls [][]int) int {
	n := 0
	for _, l := range ls {
		if len(l) > n {
			n = len(l)
		}
	}
	return n
}

// chainSegments are the pipeline depths the chain algorithm
// considers; the cheapest segmentation for the concrete machine and
// payload wins. More segments cut the per-hop serialization of large
// payloads but pay more startups.
var chainSegments = []int{1, 2, 4, 8, 16}
