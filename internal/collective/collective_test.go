package collective

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// defaultMeshes are the mesh shapes of the scenario generator's
// default, skewed and big-mesh axes — the concrete machines the
// acceptance criteria quantify over.
var defaultMeshes = [][2]int{
	{4, 4}, {8, 8}, // default suite
	{2, 16}, {16, 2}, // skew axis
	{64, 2}, {2, 64}, {16, 16}, // big-mesh axis
}

var testPayloads = []int64{64, 1024, 65536}

// flatCost reproduces the pre-collective naive root-to-all (or
// all-to-root) pricing the engine used: one message per non-root
// processor, contention-scheduled as a single pattern.
func flatCost(m *machine.Mesh2D, bytes int64, reduction bool) float64 {
	var msgs []machine.Message
	for r := 1; r < m.Procs(); r++ {
		msg := machine.Message{Src: 0, Dst: r, Bytes: bytes}
		if reduction {
			msg.Src, msg.Dst = msg.Dst, msg.Src
		}
		msgs = append(msgs, msg)
	}
	return m.Time(msgs)
}

// TestFlatMatchesLegacyCost: the "flat" algorithm is the exact
// degenerate baseline — its cost equals the old root-to-all loop, so
// selector ≤ flat means the new model never overprices a plan
// relative to the seed cost model.
func TestFlatMatchesLegacyCost(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, b := range testPayloads {
			for _, p := range []Pattern{Broadcast, Reduction} {
				sched, err := ScheduleMesh(m, p, 0, b, "flat")
				if err != nil {
					t.Fatal(err)
				}
				want := flatCost(m, b, p == Reduction)
				if got := MeshCost(m, sched.Rounds); got != want {
					t.Errorf("mesh%dx%d %s flat cost %.0f, legacy %.0f", pq[0], pq[1], p, got, want)
				}
			}
		}
	}
}

// TestBinomialNeverWorseThanFlat: on every default machine the
// binomial tree is at most as expensive as the flat baseline, for
// both broadcasts and reductions across payload sizes.
func TestBinomialNeverWorseThanFlat(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, b := range testPayloads {
			for _, p := range []Pattern{Broadcast, Reduction} {
				bin, err := ScheduleMesh(m, p, 0, b, "binomial")
				if err != nil {
					t.Fatal(err)
				}
				if got, flat := MeshCost(m, bin.Rounds), flatCost(m, b, p == Reduction); got > flat {
					t.Errorf("mesh%dx%d %s bytes=%d: binomial %.0f > flat %.0f",
						pq[0], pq[1], p, b, got, flat)
				}
			}
		}
	}
}

// TestSelectorNeverWorseThanFlat is the acceptance bound: on every
// default mesh spec the selector's choice never costs more than the
// old flat root-to-all.
func TestSelectorNeverWorseThanFlat(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, b := range testPayloads {
			for _, p := range []Pattern{Broadcast, Reduction} {
				ch := SelectMesh(m, p, 0, b, "")
				if flat := flatCost(m, b, p == Reduction); ch.Cost > flat {
					t.Errorf("mesh%dx%d %s bytes=%d: selected %s at %.0f > flat %.0f",
						pq[0], pq[1], p, b, ch.Algorithm, ch.Cost, flat)
				}
			}
		}
	}
}

// TestCostMonotonicInBytes: for every algorithm, a bigger payload is
// never cheaper on the same machine.
func TestCostMonotonicInBytes(t *testing.T) {
	m := machine.DefaultMesh(8, 8)
	for _, algo := range MeshAlgorithms() {
		prev := -1.0
		for _, b := range []int64{16, 64, 256, 1024, 4096, 16384, 65536} {
			sched, err := ScheduleMesh(m, Broadcast, 0, b, algo)
			if err != nil {
				t.Fatal(err)
			}
			cost := MeshCost(m, sched.Rounds)
			if cost < prev {
				t.Errorf("%s: cost fell from %.1f to %.1f as bytes grew to %d", algo, prev, cost, b)
			}
			prev = cost
		}
	}
}

// TestCostMonotonicInProcs: for every algorithm, a bigger (square)
// machine is never cheaper for the same payload.
func TestCostMonotonicInProcs(t *testing.T) {
	for _, algo := range MeshAlgorithms() {
		prev := -1.0
		for _, side := range []int{2, 4, 8, 16} {
			m := machine.DefaultMesh(side, side)
			sched, err := ScheduleMesh(m, Broadcast, 0, 1024, algo)
			if err != nil {
				t.Fatal(err)
			}
			cost := MeshCost(m, sched.Rounds)
			if cost < prev {
				t.Errorf("%s: cost fell from %.1f to %.1f at %dx%d", algo, prev, cost, side, side)
			}
			prev = cost
		}
	}
}

// TestSelectorDeterminism: repeated selections return the identical
// choice, on every default machine and pattern.
func TestSelectorDeterminism(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, p := range []Pattern{Broadcast, Reduction} {
			first := SelectMesh(m, p, 0, 4096, "")
			for i := 0; i < 3; i++ {
				if again := SelectMesh(m, p, 0, 4096, ""); again != first {
					t.Fatalf("mesh%dx%d %s: selection changed: %+v vs %+v", pq[0], pq[1], p, first, again)
				}
			}
			if first.Algorithm == "" {
				t.Fatalf("mesh%dx%d %s: empty selection", pq[0], pq[1], p)
			}
		}
	}
}

// TestTopologyAwareness: the same processor count arranged as a tall
// 64×2 versus a flat 2×64 mesh prices a broadcast differently — tree
// shape follows topology. The discriminating case is the paper's
// partial (p=1) axis-parallel macro-communication: along dimension 0
// a 64×2 mesh runs two 64-deep trees, a 2×64 mesh runs sixty-four
// 2-deep ones.
func TestTopologyAwareness(t *testing.T) {
	for dim := 0; dim <= 1; dim++ {
		tall := SelectMeshDim(machine.DefaultMesh(64, 2), Broadcast, dim, 4096, "")
		flat := SelectMeshDim(machine.DefaultMesh(2, 64), Broadcast, dim, 4096, "")
		if tall.Cost == flat.Cost {
			t.Errorf("dim %d: mesh64x2 and mesh2x64 broadcasts cost identically (%.1f µs); topology is being ignored",
				dim, tall.Cost)
		}
	}
}

// TestDimCollectives: partial collectives along either dimension are
// cheaper than (or equal to) the total flat root-to-all, deliver to
// every line, and are deterministic.
func TestDimCollectives(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for dim := 0; dim <= 1; dim++ {
			for _, p := range []Pattern{Broadcast, Reduction} {
				ch := SelectMeshDim(m, p, dim, 1024, "")
				if ch.Algorithm == "" {
					t.Fatalf("mesh%dx%d dim %d %s: empty selection", pq[0], pq[1], dim, p)
				}
				if flat := flatCost(m, 1024, p == Reduction); ch.Cost > flat {
					t.Errorf("mesh%dx%d dim %d %s: partial %s at %.0f > total flat %.0f",
						pq[0], pq[1], dim, p, ch.Algorithm, ch.Cost, flat)
				}
				if again := SelectMeshDim(m, p, dim, 1024, ""); again != ch {
					t.Errorf("mesh%dx%d dim %d %s: selection changed", pq[0], pq[1], dim, p)
				}
			}
			// Delivery along each line for the whole-payload trees.
			for _, algo := range []string{"flat", "bisection", "binomial"} {
				sched, err := ScheduleMeshDim(m, Broadcast, dim, 64, algo)
				if err != nil {
					t.Fatal(err)
				}
				holds := map[int]bool{}
				for _, line := range dimLines(m, dim) {
					holds[line[0]] = true
				}
				for ri, r := range sched.Rounds {
					for _, msg := range r {
						if !holds[msg.Src] {
							t.Fatalf("mesh%dx%d dim %d %s: round %d sender %d has no payload",
								pq[0], pq[1], dim, algo, ri, msg.Src)
						}
					}
					for _, msg := range r {
						holds[msg.Dst] = true
					}
				}
				if len(holds) != m.Procs() {
					t.Fatalf("mesh%dx%d dim %d %s: %d of %d processors reached",
						pq[0], pq[1], dim, algo, len(holds), m.Procs())
				}
			}
		}
	}
}

// TestGoldenScheduleBinomial: the exact binomial broadcast rounds on
// a 2×2 mesh — recursive doubling from rank 0.
func TestGoldenScheduleBinomial(t *testing.T) {
	m := machine.DefaultMesh(2, 2)
	sched, err := ScheduleMesh(m, Broadcast, 0, 100, "binomial")
	if err != nil {
		t.Fatal(err)
	}
	want := []Round{
		{{Src: 0, Dst: 1, Bytes: 100}},
		{{Src: 0, Dst: 2, Bytes: 100}, {Src: 1, Dst: 3, Bytes: 100}},
	}
	if !reflect.DeepEqual(sched.Rounds, want) {
		t.Fatalf("golden schedule mismatch:\n got  %v\n want %v", sched.Rounds, want)
	}
}

// TestBroadcastDelivery: for the whole-payload tree algorithms, every
// message is sent by a processor that already holds the payload, and
// after the last round every processor holds it. (Chain and
// scatter-allgather move partial payloads and are validated by their
// construction invariants instead.)
func TestBroadcastDelivery(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, algo := range []string{"flat", "bisection", "binomial", "dim-tree"} {
			for _, root := range []int{0, m.Procs() / 2} {
				sched, err := ScheduleMesh(m, Broadcast, root, 64, algo)
				if err != nil {
					t.Fatal(err)
				}
				holds := map[int]bool{root: true}
				for ri, r := range sched.Rounds {
					for _, msg := range r {
						if !holds[msg.Src] {
							t.Fatalf("mesh%dx%d %s root=%d: round %d sender %d has no payload",
								pq[0], pq[1], algo, root, ri, msg.Src)
						}
					}
					for _, msg := range r {
						holds[msg.Dst] = true
					}
				}
				if len(holds) != m.Procs() {
					t.Fatalf("mesh%dx%d %s root=%d: %d of %d processors reached",
						pq[0], pq[1], algo, root, len(holds), m.Procs())
				}
			}
		}
	}
}

// TestForcedAlgorithm: forcing an algorithm pins the choice; forcing
// a name that is not a mesh algorithm falls back to auto-selection.
func TestForcedAlgorithm(t *testing.T) {
	m := machine.DefaultMesh(8, 8)
	forced := SelectMesh(m, Broadcast, 0, 4096, "flat")
	if forced.Algorithm != "flat" {
		t.Fatalf("forced flat, got %s", forced.Algorithm)
	}
	if want := flatCost(m, 4096, false); forced.Cost != want {
		t.Errorf("forced flat cost %.1f, want %.1f", forced.Cost, want)
	}
	auto := SelectMesh(m, Broadcast, 0, 4096, "")
	if fallback := SelectMesh(m, Broadcast, 0, 4096, "hardware"); fallback != auto {
		t.Errorf("non-mesh force did not fall back to auto: %+v vs %+v", fallback, auto)
	}
}

// TestFatTreeSelection: at the Table-1 calibration the hardware
// combining network wins broadcasts and reductions; forcing the
// software tree prices it above hardware; shifts are a single
// software translation.
func TestFatTreeSelection(t *testing.T) {
	f := machine.DefaultFatTree(32)
	bc := SelectFatTree(f, Broadcast, 512, "")
	if bc.Algorithm != "hardware" || bc.Cost != f.Broadcast(512) {
		t.Errorf("broadcast chose %s at %.1f, want hardware at %.1f", bc.Algorithm, bc.Cost, f.Broadcast(512))
	}
	red := SelectFatTree(f, Reduction, 512, "")
	if red.Algorithm != "hardware" || red.Cost != f.Reduction(512) {
		t.Errorf("reduction chose %s at %.1f, want hardware at %.1f", red.Algorithm, red.Cost, f.Reduction(512))
	}
	sw := SelectFatTree(f, Broadcast, 512, "binomial-sw")
	if sw.Algorithm != "binomial-sw" || sw.Cost <= bc.Cost {
		t.Errorf("forced software tree: %+v (hardware %.1f)", sw, bc.Cost)
	}
	sh := SelectFatTree(f, Shift, 512, "")
	if sh.Algorithm != "direct" || sh.Cost != f.Translation(512) {
		t.Errorf("shift chose %+v, want direct at %.1f", sh, f.Translation(512))
	}
}

// TestPermuteSelection: the permute selector never exceeds the direct
// single-round execution, and is deterministic.
func TestPermuteSelection(t *testing.T) {
	m := machine.DefaultMesh(8, 8)
	// A transpose-like pattern with long crossing paths: rank (x,y) →
	// rank (y,x).
	var msgs []machine.Message
	for x := 0; x < m.P; x++ {
		for y := 0; y < m.Q; y++ {
			msgs = append(msgs, machine.Message{Src: m.Rank(x, y), Dst: m.Rank(y, x), Bytes: 256})
		}
	}
	direct := m.Time(msgs)
	ch := SelectPermute(m, msgs, "")
	if ch.Cost > direct {
		t.Errorf("permute selector chose %s at %.1f > direct %.1f", ch.Algorithm, ch.Cost, direct)
	}
	if again := SelectPermute(m, msgs, ""); again != ch {
		t.Errorf("permute selection changed: %+v vs %+v", ch, again)
	}
	if forced := SelectPermute(m, msgs, "direct"); forced.Cost != direct {
		t.Errorf("forced direct cost %.1f, want %.1f", forced.Cost, direct)
	}
}

// TestKnownAlgorithm: the registry answers for every published name
// and rejects junk.
func TestKnownAlgorithm(t *testing.T) {
	for _, n := range AllAlgorithms() {
		if !KnownAlgorithm(n) {
			t.Errorf("published algorithm %q not known", n)
		}
	}
	for _, n := range []string{"", "bogus", "Binomial", "tree"} {
		if KnownAlgorithm(n) {
			t.Errorf("junk name %q accepted", n)
		}
	}
}

// TestScheduleMeshErrors: unknown algorithms and the shift pattern
// are rejected with errors, not panics.
func TestScheduleMeshErrors(t *testing.T) {
	m := machine.DefaultMesh(4, 4)
	if _, err := ScheduleMesh(m, Broadcast, 0, 64, "bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := ScheduleMesh(m, Shift, 0, 64, "flat"); err == nil {
		t.Error("shift pattern accepted by ScheduleMesh")
	}
	if _, err := ScheduleMeshDim(m, Broadcast, 0, 64, "dim-tree"); err == nil {
		t.Error("total-only dim-tree accepted for a partial collective")
	}
	if _, err := ScheduleMeshDim(m, Broadcast, 5, 64, "flat"); err == nil {
		t.Error("out-of-range dimension accepted")
	}
}

// TestPlaneScheduleBound: on every default mesh the per-plane
// composition over the full mesh never costs more than the flat
// root-to-all, for both patterns across payloads — the plane-level
// half of the acceptance bound (SelectMeshMacro additionally keeps
// the total candidates in the pool).
func TestPlaneScheduleBound(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, b := range testPayloads {
			for _, p := range []Pattern{Broadcast, Reduction} {
				ch := SelectMeshPlanes(m, p, []Plane{FullPlane(m)}, b, "")
				if flat := flatCost(m, b, p == Reduction); ch.Cost > flat {
					t.Errorf("mesh%dx%d %s bytes=%d: plane %s at %.0f > flat %.0f",
						pq[0], pq[1], p, b, ch.Algorithm, ch.Cost, flat)
				}
				macro := SelectMeshMacro(m, p, []int{0, 1}, b, "")
				if total := SelectMesh(m, p, 0, b, ""); macro.Cost > total.Cost {
					t.Errorf("mesh%dx%d %s bytes=%d: macro %s at %.0f > total %s at %.0f",
						pq[0], pq[1], p, b, macro.Algorithm, macro.Cost, total.Algorithm, total.Cost)
				}
			}
		}
	}
}

// TestPlaneCostMonotonicInBytes: the per-plane selection never gets
// cheaper as the payload grows.
func TestPlaneCostMonotonicInBytes(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		prev := -1.0
		for _, b := range []int64{16, 64, 256, 1024, 4096, 16384, 65536} {
			ch := SelectMeshPlanes(m, Broadcast, []Plane{FullPlane(m)}, b, "")
			if ch.Cost < prev {
				t.Errorf("mesh%dx%d: plane cost fell from %.1f to %.1f as bytes grew to %d",
					pq[0], pq[1], prev, ch.Cost, b)
			}
			prev = ch.Cost
		}
	}
}

// quadrants splits a 2k×2k mesh into its four k×k planes.
func quadrants(m *machine.Mesh2D) []Plane {
	hw, hh := m.P/2, m.Q/2
	return []Plane{
		{X0: 0, Y0: 0, W: hw, H: hh},
		{X0: hw, Y0: 0, W: m.P - hw, H: hh},
		{X0: 0, Y0: hh, W: hw, H: m.Q - hh},
		{X0: hw, Y0: hh, W: m.P - hw, H: m.Q - hh},
	}
}

// TestPlaneCostMonotonicInPlaneCount: scheduling more planes of the
// same shape concurrently never gets cheaper — every added plane can
// only add messages to the merged rounds.
func TestPlaneCostMonotonicInPlaneCount(t *testing.T) {
	m := machine.DefaultMesh(16, 16)
	qs := quadrants(m)
	for _, algo := range []string{"flat", "bisection", "binomial", "chain"} {
		prev := -1.0
		for k := 1; k <= len(qs); k++ {
			sched, err := SchedulePlanes(m, Broadcast, qs[:k], 0, 1024, algo, algo)
			if err != nil {
				t.Fatal(err)
			}
			if sched.Cost < prev {
				t.Errorf("%s: cost fell from %.1f to %.1f at %d planes", algo, prev, sched.Cost, k)
			}
			prev = sched.Cost
		}
	}
}

// TestPlaneDelivery: the per-plane composition delivers the payload
// to every processor of every plane, for the whole-payload tree
// phases, in both dimension orders.
func TestPlaneDelivery(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, planes := range [][]Plane{{FullPlane(m)}} {
			for dimFirst := 0; dimFirst <= 1; dimFirst++ {
				for _, algo := range []string{"flat", "bisection", "binomial"} {
					sched, err := SchedulePlanes(m, Broadcast, planes, dimFirst, 64, algo, algo)
					if err != nil {
						t.Fatal(err)
					}
					holds := map[int]bool{}
					for _, pl := range planes {
						holds[m.Rank(pl.X0, pl.Y0)] = true
					}
					for ri, r := range sched.Rounds {
						for _, msg := range r {
							if !holds[msg.Src] {
								t.Fatalf("mesh%dx%d dimFirst=%d %s: round %d sender %d has no payload",
									pq[0], pq[1], dimFirst, algo, ri, msg.Src)
							}
						}
						for _, msg := range r {
							holds[msg.Dst] = true
						}
					}
					want := 0
					for _, pl := range planes {
						want += pl.W * pl.H
					}
					if len(holds) != want {
						t.Fatalf("mesh%dx%d dimFirst=%d %s: %d of %d processors reached",
							pq[0], pq[1], dimFirst, algo, len(holds), want)
					}
				}
			}
		}
	}
}

// TestSelectMeshMacroDeterminism: repeated macro selections return
// the identical choice for every dims shape, and the schedule behind
// the choice reprices to exactly the selected cost.
func TestSelectMeshMacroDeterminism(t *testing.T) {
	for _, pq := range defaultMeshes {
		m := machine.DefaultMesh(pq[0], pq[1])
		for _, dims := range [][]int{nil, {0}, {1}, {0, 1}} {
			for _, p := range []Pattern{Broadcast, Reduction} {
				first := SelectMeshMacro(m, p, dims, 4096, "")
				for i := 0; i < 3; i++ {
					if again := SelectMeshMacro(m, p, dims, 4096, ""); again != first {
						t.Fatalf("mesh%dx%d dims=%v %s: selection changed: %+v vs %+v",
							pq[0], pq[1], dims, p, first, again)
					}
				}
				sched, err := MacroSchedule(m, p, dims, 4096, "")
				if err != nil {
					t.Fatal(err)
				}
				if sched.Cost != first.Cost || sched.Choice() != first {
					t.Fatalf("mesh%dx%d dims=%v %s: schedule %+v does not reprice to choice %+v",
						pq[0], pq[1], dims, p, sched.Choice(), first)
				}
			}
		}
	}
}

// TestChoiceScopeString: scopes render into the summary grammar the
// snapshots and /v1 responses carry.
func TestChoiceScopeString(t *testing.T) {
	cases := []struct {
		ch   Choice
		want string
	}{
		{Choice{Pattern: Broadcast, Algorithm: "bisection"}, "broadcast=bisection"},
		{Choice{Pattern: Reduction, Algorithm: "binomial", Scope: "axis0"}, "reduction@axis0=binomial"},
		{Choice{Pattern: Broadcast, Algorithm: "bisection+flat", Scope: "plane01"}, "broadcast@plane01=bisection+flat"},
	}
	for _, c := range cases {
		if got := c.ch.String(); got != c.want {
			t.Errorf("Choice.String() = %q, want %q", got, c.want)
		}
	}
}

// TestStaggeredGoldenSchedule: the exact two staggered phases of a
// transpose-like pattern on a 2×2 mesh — even diagonals route
// x-first, odd diagonals y-first.
func TestStaggeredGoldenSchedule(t *testing.T) {
	m := machine.DefaultMesh(2, 2)
	msgs := []machine.Message{
		{Src: m.Rank(0, 1), Dst: m.Rank(1, 0), Bytes: 100}, // diag 1 → y-first via (0,0)
		{Src: m.Rank(1, 0), Dst: m.Rank(0, 1), Bytes: 100}, // diag 1 → y-first via (1,1)
		{Src: m.Rank(0, 0), Dst: m.Rank(1, 1), Bytes: 100}, // diag 0 → x-first via (1,0)
	}
	rounds := PermuteRounds(m, msgs, "staggered")
	want := []Round{
		{
			{Src: m.Rank(0, 1), Dst: m.Rank(0, 0), Bytes: 100},
			{Src: m.Rank(1, 0), Dst: m.Rank(1, 1), Bytes: 100},
			{Src: m.Rank(0, 0), Dst: m.Rank(1, 0), Bytes: 100},
		},
		{
			{Src: m.Rank(0, 0), Dst: m.Rank(1, 0), Bytes: 100},
			{Src: m.Rank(1, 1), Dst: m.Rank(0, 1), Bytes: 100},
			{Src: m.Rank(1, 0), Dst: m.Rank(1, 1), Bytes: 100},
		},
	}
	if !reflect.DeepEqual(rounds, want) {
		t.Fatalf("staggered golden schedule mismatch:\n got  %v\n want %v", rounds, want)
	}
}

// TestStaggeredSelectable: the permute selector knows the staggered
// algorithm, forcing it pins the choice, and free selection never
// exceeds it.
func TestStaggeredSelectable(t *testing.T) {
	if !KnownAlgorithm("staggered") {
		t.Fatal("staggered not in the algorithm registry")
	}
	m := machine.DefaultMesh(8, 8)
	var msgs []machine.Message
	for x := 0; x < m.P; x++ {
		for y := 0; y < m.Q; y++ {
			msgs = append(msgs, machine.Message{Src: m.Rank(x, y), Dst: m.Rank(y, x), Bytes: 256})
		}
	}
	forced := SelectPermute(m, msgs, "staggered")
	if forced.Algorithm != "staggered" {
		t.Fatalf("forced staggered, got %s", forced.Algorithm)
	}
	if free := SelectPermute(m, msgs, ""); free.Cost > forced.Cost {
		t.Errorf("free selection %s at %.1f > staggered %.1f", free.Algorithm, free.Cost, forced.Cost)
	}
}
