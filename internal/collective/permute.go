package collective

import "repro/internal/machine"

// Permute algorithms execute an arbitrary aggregated message pattern
// (a residual shift/translation phase: typically one destination per
// sender) on the mesh. "direct" posts every message in one round and
// lets the link-contention model serialize conflicts; "xy-phased"
// store-and-forwards every message at its XY corner, so each phase's
// traffic moves along a single dimension and long crossing paths
// never collide mid-route; "staggered" is the coloring variant for
// high-contention affine phases: messages are 2-colored by source
// diagonal and the colors route through opposite corners (x-first vs
// y-first), so each phase splits its traffic across both dimensions
// instead of funnelling everything through one corner set.
var permuteAlgos = []string{"direct", "xy-phased", "staggered"}

// PermuteAlgorithms lists the shift/translation algorithm names in
// tie-breaking order.
func PermuteAlgorithms() []string { return append([]string(nil), permuteAlgos...) }

// PermuteRounds builds the named permute algorithm's schedule for the
// pattern; unknown names return nil.
func PermuteRounds(m *machine.Mesh2D, msgs []machine.Message, algo string) []Round {
	switch algo {
	case "direct":
		return []Round{append(Round(nil), msgs...)}
	case "xy-phased":
		var phase1, phase2 Round
		for _, msg := range msgs {
			if msg.Src == msg.Dst {
				continue
			}
			_, sy := m.Coords(msg.Src)
			dx, _ := m.Coords(msg.Dst)
			corner := m.Rank(dx, sy)
			if corner != msg.Src {
				phase1 = append(phase1, machine.Message{Src: msg.Src, Dst: corner, Bytes: msg.Bytes})
			}
			if corner != msg.Dst {
				phase2 = append(phase2, machine.Message{Src: corner, Dst: msg.Dst, Bytes: msg.Bytes})
			}
		}
		var rounds []Round
		if len(phase1) > 0 {
			rounds = append(rounds, phase1)
		}
		if len(phase2) > 0 {
			rounds = append(rounds, phase2)
		}
		return rounds
	case "staggered":
		// Checkerboard coloring: sources on even diagonals (x+y) route
		// x-first through the (dx, sy) corner, odd diagonals y-first
		// through the (sx, dy) corner. Both phases therefore carry a
		// mix of x- and y-traffic from disjoint source sets, which is
		// what breaks up the single-corner hot spots of xy-phased on
		// dense affine patterns.
		var phase1, phase2 Round
		for _, msg := range msgs {
			if msg.Src == msg.Dst {
				continue
			}
			sx, sy := m.Coords(msg.Src)
			dx, dy := m.Coords(msg.Dst)
			corner := m.Rank(dx, sy) // x-first
			if (sx+sy)%2 == 1 {
				corner = m.Rank(sx, dy) // y-first
			}
			if corner != msg.Src {
				phase1 = append(phase1, machine.Message{Src: msg.Src, Dst: corner, Bytes: msg.Bytes})
			}
			if corner != msg.Dst {
				phase2 = append(phase2, machine.Message{Src: corner, Dst: msg.Dst, Bytes: msg.Bytes})
			}
		}
		var rounds []Round
		if len(phase1) > 0 {
			rounds = append(rounds, phase1)
		}
		if len(phase2) > 0 {
			rounds = append(rounds, phase2)
		}
		return rounds
	}
	return nil
}

// SelectPermute evaluates the permute algorithms on the concrete
// pattern and returns the cheapest (deterministic tie-breaking as in
// SelectMesh). force pins the choice to one named permute algorithm;
// other names (or "") select freely.
func SelectPermute(m *machine.Mesh2D, msgs []machine.Message, force string) Choice {
	best := Choice{Pattern: Shift, Cost: -1}
	for _, name := range permuteAlgos {
		if force != "" && name != force {
			continue
		}
		rounds := PermuteRounds(m, msgs, name)
		cost := MeshCost(m, rounds)
		if best.Cost < 0 || cost < best.Cost {
			best = Choice{Pattern: Shift, Algorithm: name, Cost: cost, Rounds: len(rounds)}
		}
	}
	if best.Cost < 0 {
		return SelectPermute(m, msgs, "")
	}
	return best
}
