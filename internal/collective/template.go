package collective

import (
	"fmt"

	"repro/internal/machine"
)

// The template layer is the compiled form of mesh collective
// selection: everything byte-independent — line sets, candidate
// schedule shapes, and each round's contention partition (which
// messages serialize into which conflict round, a function of message
// paths only) — is computed once per (mesh geometry, pattern, dims,
// force) and frozen into a MeshTemplate. Evaluating the template at a
// payload is then pure arithmetic over the frozen structure: per
// contention group, the payload-dependent message sizes reduce to a
// handful of coef·ceil(B/div) terms whose max is the group's
// serialized transfer size. Eval allocates nothing and returns
// bit-identical Choices to the Select* functions it compiles.

// byteTerm is one symbolic message-size term of a contention group:
// coef · ceil(B/div) bytes at payload B.
type byteTerm struct {
	coef, div int64
}

// contGroup is one contention round of a schedule round: the messages
// that run concurrently, reduced to their hop maximum and the deduped
// size terms (per div, only the max coef can ever win the max).
type contGroup struct {
	maxHops int
	terms   []byteTerm
}

// addTerm folds one message's size term into the group.
func (g *contGroup) addTerm(coef, div int64) {
	for i := range g.terms {
		if g.terms[i].div == div {
			if coef > g.terms[i].coef {
				g.terms[i].coef = coef
			}
			return
		}
	}
	g.terms = append(g.terms, byteTerm{coef: coef, div: div})
}

// maxBytes evaluates the group's largest message at payload B.
func (g *contGroup) maxBytes(b int64) int64 {
	mb := int64(0)
	for _, t := range g.terms {
		if v := t.coef * ((b + t.div - 1) / t.div); v > mb {
			mb = v
		}
	}
	return mb
}

// pricedRound is one schedule round with its precomputed contention
// partition, groups in creation (pricing) order.
type pricedRound struct {
	groups []contGroup
}

// foldRounds prices a priced round sequence starting from a running
// total, with exactly Mesh2D.Time's float accumulation: each schedule
// round's contention groups accumulate into their own subtotal (as
// Time does), which then adds to the running total (as MeshCost
// does). The start parameter is what makes two-phase compositions
// bit-exact: folding phase 2 from phase 1's cost reproduces the
// single-sequence fold over the concatenation.
func foldRounds(rounds []pricedRound, m *machine.Mesh2D, bytes int64, start float64) float64 {
	total := start
	for i := range rounds {
		t := 0.0
		for gi := range rounds[i].groups {
			g := &rounds[i].groups[gi]
			t += m.Startup + float64(g.maxBytes(bytes))*m.PerByte + float64(g.maxHops)*m.HopLatency
		}
		total += t
	}
	return total
}

// compileSeq freezes a symbolic schedule's contention structure under
// the pattern: reductions compile their mirrored execution (reversed
// rounds, swapped endpoints), whose paths — and therefore contention
// partition — differ from the broadcast orientation under XY routing.
func (e *evaluator) compileSeq(shapes []shapeRound, p Pattern) []pricedRound {
	out := make([]pricedRound, len(shapes))
	if p == Reduction {
		for i := len(shapes) - 1; i >= 0; i-- {
			out[len(shapes)-1-i] = e.compileRound(shapes[i], true)
		}
		return out
	}
	for i := range shapes {
		out[i] = e.compileRound(shapes[i], false)
	}
	return out
}

// compileRound partitions one round into contention groups via the
// coster's byte-independent packing and collects each group's hop
// maximum and size terms.
func (e *evaluator) compileRound(sr shapeRound, mirror bool) pricedRound {
	if cap(e.buf) < len(sr) {
		e.buf = make([]machine.Message, len(sr))
	}
	buf := e.buf[:len(sr)]
	for j, sm := range sr {
		if mirror {
			buf[j] = machine.Message{Src: sm.dst, Dst: sm.src}
		} else {
			buf[j] = machine.Message{Src: sm.src, Dst: sm.dst}
		}
	}
	if cap(e.asg) < len(sr) {
		e.asg = make([]int, len(sr))
	}
	assign := e.asg[:len(sr)]
	nr := e.ev.Assign(buf, assign)
	groups := make([]contGroup, nr)
	for i := range groups {
		groups[i].maxHops = e.ev.RoundHops(i)
	}
	for j, sm := range sr {
		if assign[j] >= 0 {
			groups[assign[j]].addTerm(sm.coef, sm.div)
		}
	}
	return pricedRound{groups: groups}
}

// variantTemplate is one compiled candidate schedule of an algorithm.
type variantTemplate struct {
	minBytes int64
	nrounds  int
	// main is the schedule priced under the template's pattern, in
	// execution order.
	main []pricedRound
	// bcast is the broadcast orientation, kept only when the algorithm
	// has several variants and the pattern is a reduction: variant
	// selection has always segmented on broadcast cost.
	bcast []pricedRound
}

// algoTemplate is one algorithm's compiled candidates.
type algoTemplate struct {
	name     string
	variants []variantTemplate
}

// pick selects the variant for the payload, mirroring
// evaluator.pickVariant: cheapest applicable by broadcast cost,
// earlier variants winning ties.
func (a *algoTemplate) pick(m *machine.Mesh2D, bytes int64) *variantTemplate {
	if len(a.variants) == 1 {
		return &a.variants[0]
	}
	var best *variantTemplate
	bestCost := -1.0
	for i := range a.variants {
		v := &a.variants[i]
		if v.minBytes > 0 && bytes < v.minBytes {
			continue
		}
		seq := v.bcast
		if seq == nil {
			seq = v.main
		}
		cost := foldRounds(seq, m, bytes, 0)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// lineTemplate is the compiled form of one selectShapes call: the
// applicable algorithms (force and totalOnly filters are
// byte-independent, so they resolve at compile time, including the
// fall-back to free selection when force names nothing applicable).
type lineTemplate struct {
	pattern Pattern
	scope   string
	algos   []algoTemplate
}

func buildLineTemplate(e *evaluator, m *machine.Mesh2D, p Pattern, ls [][]int, force, scope string) *lineTemplate {
	t := &lineTemplate{pattern: p, scope: scope}
	for _, a := range meshAlgos {
		if force != "" && a.name != force {
			continue
		}
		if a.totalOnly && scope != "" {
			continue
		}
		vs := a.shape(m, ls)
		at := algoTemplate{name: a.name, variants: make([]variantTemplate, 0, len(vs))}
		for _, v := range vs {
			vt := variantTemplate{
				minBytes: v.minBytes,
				nrounds:  len(v.rounds),
				main:     e.compileSeq(v.rounds, p),
			}
			if len(vs) > 1 && p == Reduction {
				vt.bcast = e.compileSeq(v.rounds, Broadcast)
			}
			at.variants = append(at.variants, vt)
		}
		t.algos = append(t.algos, at)
	}
	if len(t.algos) == 0 {
		return buildLineTemplate(e, m, p, ls, "", scope)
	}
	return t
}

// evalWinner selects the cheapest algorithm at the payload, returning
// the winning variant and algorithm index alongside the Choice for
// composition folds.
func (t *lineTemplate) evalWinner(m *machine.Mesh2D, bytes int64) (Choice, *variantTemplate, int) {
	best := Choice{Pattern: t.pattern, Cost: -1}
	var bestV *variantTemplate
	bestA := -1
	for ai := range t.algos {
		a := &t.algos[ai]
		v := a.pick(m, bytes)
		if v == nil {
			continue
		}
		cost := foldRounds(v.main, m, bytes, 0)
		if best.Cost < 0 || cost < best.Cost {
			best = Choice{Pattern: t.pattern, Algorithm: a.name, Scope: t.scope, Cost: cost, Rounds: v.nrounds}
			bestV, bestA = v, ai
		}
	}
	return best, bestV, bestA
}

// planeOrderTemplate compiles one dimension order of the two-phase
// plane composition. names precomputes the composed "algo1+algo2"
// rendering for every phase-algorithm pair, keeping Eval
// allocation-free.
type planeOrderTemplate struct {
	scope          string
	phase1, phase2 *lineTemplate
	names          [][]string
}

// planesTemplate compiles SelectMeshPlanes: both dimension orders,
// each phase its own line template.
type planesTemplate struct {
	pattern Pattern
	orders  [2]planeOrderTemplate
}

func buildPlanesTemplate(e *evaluator, m *machine.Mesh2D, p Pattern, planes []Plane, force string) *planesTemplate {
	t := &planesTemplate{pattern: p}
	for _, dimFirst := range []int{0, 1} {
		scope := planeScope(dimFirst)
		ls1, ls2 := planePhaseLines(m, planes, dimFirst)
		o := planeOrderTemplate{
			scope:  scope,
			phase1: buildLineTemplate(e, m, p, ls1, force, scope),
			phase2: buildLineTemplate(e, m, p, ls2, force, scope),
		}
		o.names = make([][]string, len(o.phase1.algos))
		for i := range o.phase1.algos {
			o.names[i] = make([]string, len(o.phase2.algos))
			for j := range o.phase2.algos {
				o.names[i][j] = planeAlgoName(o.phase1.algos[i].name, o.phase2.algos[j].name)
			}
		}
		t.orders[dimFirst] = o
	}
	return t
}

// eval mirrors selectPlanes. The composed cost needs no re-fold of
// the whole concatenation: MeshCost's accumulation is a left fold, so
// folding the second-executed phase from the first-executed phase's
// cost is bit-identical to pricing the concatenated rounds. For
// broadcasts phase 1 executes first; for reductions the mirrored
// composition runs phase 2's mirror first.
func (t *planesTemplate) eval(m *machine.Mesh2D, bytes int64) Choice {
	best := Choice{Pattern: t.pattern, Cost: -1}
	for oi := range t.orders {
		o := &t.orders[oi]
		ch1, v1, a1 := o.phase1.evalWinner(m, bytes)
		ch2, v2, a2 := o.phase2.evalWinner(m, bytes)
		if v1 == nil || v2 == nil {
			continue
		}
		var cost float64
		if t.pattern == Reduction {
			cost = foldRounds(v1.main, m, bytes, ch2.Cost)
		} else {
			cost = foldRounds(v2.main, m, bytes, ch1.Cost)
		}
		cand := Choice{Pattern: t.pattern, Algorithm: o.names[a1][a2],
			Scope: o.scope, Cost: cost, Rounds: v1.nrounds + v2.nrounds}
		if best.Cost < 0 || cand.Cost < best.Cost {
			best = cand
		}
	}
	return best
}

// MeshTemplate is a compiled mesh collective selection: the structure
// of one SelectMesh, SelectMeshDim or SelectMeshMacro call, reusable
// for any payload (and any link-cost calibration — the contention
// partition depends only on the grid geometry). Eval is thread-safe
// (the template is read-only after construction), allocation-free,
// and returns bit-identical Choices to the Select* call it compiles.
type MeshTemplate struct {
	p, q    int
	pattern Pattern
	// macro marks SelectMeshMacro semantics: the partial schedule
	// competes with the machine-spanning total, ties preferring the
	// partial.
	macro  bool
	total  *lineTemplate
	dim    *lineTemplate
	planes *planesTemplate
}

// TemplateBuilder compiles MeshTemplates for one mesh geometry,
// sharing the pricing scratch and the compiled substructure across
// calls: the machine-spanning total line of a (pattern, force)
// compiles once however many macro templates compete against it, and
// likewise each per-dimension line set and the full-plane
// composition. The shared pieces are read-only after construction, so
// the returned templates remain safe for concurrent Eval; the builder
// itself is not safe for concurrent use.
type TemplateBuilder struct {
	m      *machine.Mesh2D
	e      *evaluator
	totals map[string]*lineTemplate
	dims   map[string]*lineTemplate
	planes map[string]*planesTemplate
}

// NewTemplateBuilder returns an empty builder bound to the mesh
// geometry.
func NewTemplateBuilder(m *machine.Mesh2D) *TemplateBuilder {
	return &TemplateBuilder{m: m, e: newEvaluator(m),
		totals: map[string]*lineTemplate{},
		dims:   map[string]*lineTemplate{},
		planes: map[string]*planesTemplate{},
	}
}

func (b *TemplateBuilder) totalTmpl(p Pattern, force string) *lineTemplate {
	k := fmt.Sprintf("%d|%s", p, force)
	t, ok := b.totals[k]
	if !ok {
		t = buildLineTemplate(b.e, b.m, p, totalLine(b.m, 0), force, "")
		b.totals[k] = t
	}
	return t
}

func (b *TemplateBuilder) dimTmpl(p Pattern, dim int, force string) *lineTemplate {
	k := fmt.Sprintf("%d|%d|%s", p, dim, force)
	t, ok := b.dims[k]
	if !ok {
		t = buildLineTemplate(b.e, b.m, p, dimLines(b.m, dim), force, axisScope(dim))
		b.dims[k] = t
	}
	return t
}

func (b *TemplateBuilder) planesTmpl(p Pattern, force string) *planesTemplate {
	k := fmt.Sprintf("%d|%s", p, force)
	t, ok := b.planes[k]
	if !ok {
		t = buildPlanesTemplate(b.e, b.m, p, []Plane{FullPlane(b.m)}, force)
		b.planes[k] = t
	}
	return t
}

// Total compiles SelectMesh(m, p, 0, ·, force): a machine-spanning
// total collective rooted at rank 0.
func (b *TemplateBuilder) Total(p Pattern, force string) *MeshTemplate {
	return &MeshTemplate{p: b.m.P, q: b.m.Q, pattern: p, total: b.totalTmpl(p, force)}
}

// Dim compiles SelectMeshDim(m, p, dim, ·, force): concurrent
// per-line trees along one grid dimension (out-of-range dims fall
// back to the total selection, as SelectMeshDim does).
func (b *TemplateBuilder) Dim(p Pattern, dim int, force string) *MeshTemplate {
	if dim != 0 && dim != 1 {
		return b.Total(p, force)
	}
	return &MeshTemplate{p: b.m.P, q: b.m.Q, pattern: p, dim: b.dimTmpl(p, dim, force)}
}

// Macro compiles SelectMeshMacro(m, p, dims, ·, force): the partial
// schedule for the physical dims (per-line for one, per-plane for
// two) competing with the machine-spanning execution.
func (b *TemplateBuilder) Macro(p Pattern, dims []int, force string) *MeshTemplate {
	t := &MeshTemplate{p: b.m.P, q: b.m.Q, pattern: p, macro: true,
		total: b.totalTmpl(p, force)}
	switch len(dims) {
	case 0:
		t.macro = false
	case 1:
		if dims[0] != 0 && dims[0] != 1 {
			t.macro = false
			break
		}
		t.dim = b.dimTmpl(p, dims[0], force)
	default:
		t.planes = b.planesTmpl(p, force)
	}
	return t
}

// NewMeshTotalTemplate compiles SelectMesh(m, p, 0, ·, force) through
// a one-shot builder; compiling several templates of one geometry is
// cheaper through a shared TemplateBuilder.
func NewMeshTotalTemplate(m *machine.Mesh2D, p Pattern, force string) *MeshTemplate {
	return NewTemplateBuilder(m).Total(p, force)
}

// NewMeshDimTemplate compiles SelectMeshDim(m, p, dim, ·, force)
// through a one-shot builder.
func NewMeshDimTemplate(m *machine.Mesh2D, p Pattern, dim int, force string) *MeshTemplate {
	return NewTemplateBuilder(m).Dim(p, dim, force)
}

// NewMeshMacroTemplate compiles SelectMeshMacro(m, p, dims, ·, force)
// through a one-shot builder.
func NewMeshMacroTemplate(m *machine.Mesh2D, p Pattern, dims []int, force string) *MeshTemplate {
	return NewTemplateBuilder(m).Macro(p, dims, force)
}

// Eval prices the compiled selection at a payload on a mesh instance
// of the compiled geometry (m supplies the link-cost calibration;
// its extents must match compilation).
func (t *MeshTemplate) Eval(m *machine.Mesh2D, bytes int64) Choice {
	if m.P != t.p || m.Q != t.q {
		panic(fmt.Sprintf("collective: template compiled for %dx%d evaluated on %dx%d", t.p, t.q, m.P, m.Q))
	}
	if !t.macro {
		if t.dim != nil {
			ch, _, _ := t.dim.evalWinner(m, bytes)
			return ch
		}
		ch, _, _ := t.total.evalWinner(m, bytes)
		return ch
	}
	total, _, _ := t.total.evalWinner(m, bytes)
	var part Choice
	switch {
	case t.dim != nil:
		part, _, _ = t.dim.evalWinner(m, bytes)
	case t.planes != nil:
		part = t.planes.eval(m, bytes)
	default:
		return total
	}
	if part.Cost <= total.Cost {
		return part
	}
	return total
}
