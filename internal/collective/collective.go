// Package collective implements software collective-communication
// algorithms over the machine models of package machine, and a
// cost-driven selector that picks the cheapest algorithm for a
// concrete machine instance.
//
// The paper's two-step heuristic trades one general affine
// communication for residual macro-communications — broadcasts,
// reductions and shifts. How expensive that residue really is depends
// entirely on how the runtime schedules it: a root-to-all loop of
// P−1 serialized messages (the 1996 strawman) prices a broadcast at
// Θ(P) startups, while the tree schedules real runtimes of the era
// used (binomial trees on the Paragon, pipelined chains, hardware
// combining on the CM-5) bring it down to Θ(log P) or Θ(P) bytes with
// Θ(1) startups per processor. This package models those schedules
// concretely:
//
//   - every mesh algorithm emits per-round []machine.Message
//     schedules that are priced through Mesh2D.Time, so link
//     contention — the serialization of messages sharing a directed
//     mesh link — is charged exactly as for any other pattern;
//   - the fat tree keeps its hardware combining-network collectives
//     as fixed-cost algorithms the selector can choose, next to
//     software trees over the data network;
//   - Select* evaluates every applicable algorithm against the
//     concrete machine instance and returns the cheapest, with
//     deterministic tie-breaking (first algorithm in registry order
//     wins ties), so repeated selections are byte-identical.
//
// A MachineSpec can pin the selection to one named algorithm (the
// "mesh8x8:flat" spec grammar) for ablations; an algorithm that is
// not applicable to the requested pattern falls back to
// auto-selection.
package collective

import (
	"fmt"

	"repro/internal/machine"
)

// Pattern is the communication shape of a residual collective.
type Pattern int

const (
	// Broadcast moves one payload from a root to every processor.
	Broadcast Pattern = iota
	// Reduction combines one value per processor into a root
	// (scheduled as the exact mirror of a broadcast: reversed rounds
	// with src/dst swapped).
	Reduction
	// Shift is an all-to-all shift (translation): every processor
	// sends its payload to one fixed partner.
	Shift
)

func (p Pattern) String() string {
	switch p {
	case Broadcast:
		return "broadcast"
	case Reduction:
		return "reduction"
	case Shift:
		return "shift"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Round is one step of a schedule: the messages posted together.
// Messages within a round may still conflict on links; the mesh cost
// model charges that serialization.
type Round []machine.Message

// Schedule is a concrete message plan for a pattern: rounds of
// machine.Message plus the priced model cost, independent of which
// algorithm or composition built it. Everything the engine charges
// for a collective flows through a Schedule (or, for the fixed-cost
// fat-tree hardware algorithms, a Choice with no software rounds):
// per-line trees, per-plane compositions and machine-spanning totals
// are all just Schedules whose rounds were assembled differently.
type Schedule struct {
	Algorithm string
	Pattern   Pattern
	// Scope names what the schedule spans: "" for a machine-spanning
	// total collective, "axis0"/"axis1" for concurrent per-line trees
	// along one grid dimension, "plane01"/"plane10" for a two-phase
	// per-plane composition (digits give the phase order).
	Scope  string
	Rounds []Round
	// Cost is the model time (µs) of the rounds on the machine the
	// schedule was built for, priced once at construction.
	Cost float64
}

// Choice projects the schedule down to the selector's decision.
func (s *Schedule) Choice() Choice {
	return Choice{Pattern: s.Pattern, Algorithm: s.Algorithm, Scope: s.Scope,
		Cost: s.Cost, Rounds: len(s.Rounds)}
}

// newSchedule assembles and prices a mesh schedule.
func newSchedule(m *machine.Mesh2D, algo string, p Pattern, scope string, rounds []Round) *Schedule {
	return &Schedule{Algorithm: algo, Pattern: p, Scope: scope, Rounds: rounds,
		Cost: MeshCost(m, rounds)}
}

// Choice is the selector's decision for one collective operation.
type Choice struct {
	Pattern   Pattern
	Algorithm string
	// Scope is the schedule scope (see Schedule.Scope; "" for total
	// collectives and the fixed-cost fat-tree algorithms).
	Scope string
	// Cost is the model time (µs) of the chosen schedule.
	Cost float64
	// Rounds is the schedule length (0 for fixed-cost hardware
	// algorithms, which have no software rounds).
	Rounds int
}

// String renders the choice as "pattern=algorithm", or
// "pattern@scope=algorithm" for per-line and per-plane schedules.
func (c Choice) String() string {
	if c.Scope == "" {
		return c.Pattern.String() + "=" + c.Algorithm
	}
	return c.Pattern.String() + "@" + c.Scope + "=" + c.Algorithm
}

// MeshCost prices a schedule on the mesh: each round is one
// contention-scheduled pattern, rounds execute back to back. Pricing
// goes through a reusable machine.CostEval (bit-identical to
// Mesh2D.Time, without its per-round map allocations).
func MeshCost(m *machine.Mesh2D, rounds []Round) float64 {
	e := machine.NewCostEval(m)
	total := 0.0
	for _, r := range rounds {
		total += e.Time(r)
	}
	return total
}

// KnownAlgorithm reports whether name names any algorithm of this
// package (mesh tree, permute or fat-tree), so machine-spec parsing
// can reject typos up front.
func KnownAlgorithm(name string) bool {
	for _, n := range MeshAlgorithms() {
		if n == name {
			return true
		}
	}
	for _, n := range PermuteAlgorithms() {
		if n == name {
			return true
		}
	}
	for _, n := range FatTreeAlgorithms() {
		if n == name {
			return true
		}
	}
	return false
}

// AllAlgorithms returns every algorithm name this package knows, for
// error messages and documentation.
func AllAlgorithms() []string {
	var out []string
	seen := map[string]bool{}
	for _, group := range [][]string{MeshAlgorithms(), PermuteAlgorithms(), FatTreeAlgorithms()} {
		for _, n := range group {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
