package collective

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// Per-plane scheduling generalizes the p=1 per-line collectives to
// macro-communications with p ≥ 2 distributed dimensions: the macro
// decomposes into one collective per hyperplane of the non-distributed
// grid dimensions, and each plane collective runs as a two-phase
// composition — a tree along one plane dimension on the plane's root
// line, then concurrent per-line trees along the orthogonal dimension.
// On the 2-D mesh a macro spanning both physical axes has a single
// plane (the whole machine); the machinery still supports arbitrary
// plane sets because the planes of one macro execute concurrently:
// their trees' rounds are merged index-wise and priced through the
// link-contention model, overlapped rather than serialized, exactly
// like the lines of a per-line collective.

// Plane is an axis-aligned rectangular subgrid of the mesh: the
// processors (x, y) with X0 ≤ x < X0+W and Y0 ≤ y < Y0+H, rooted at
// the (X0, Y0) corner.
type Plane struct {
	X0, Y0, W, H int
}

// FullPlane is the single plane covering the whole mesh — the plane
// set of a macro-communication spanning both physical grid axes.
func FullPlane(m *machine.Mesh2D) Plane { return Plane{X0: 0, Y0: 0, W: m.P, H: m.Q} }

// valid reports whether the plane fits the mesh.
func (pl Plane) valid(m *machine.Mesh2D) bool {
	return pl.W >= 1 && pl.H >= 1 && pl.X0 >= 0 && pl.Y0 >= 0 &&
		pl.X0+pl.W <= m.P && pl.Y0+pl.H <= m.Q
}

// planeScope names the scope of a two-phase plane schedule:
// "plane01" runs dimension 0 first, "plane10" dimension 1 first.
func planeScope(dimFirst int) string {
	if dimFirst == 0 {
		return "plane01"
	}
	return "plane10"
}

// planePhaseLines decomposes a plane set into the two phase line
// sets of the composition: phase 1 is one root line per plane along
// dimFirst (at the plane's first coordinate of the orthogonal
// dimension), phase 2 is every line of every plane along the
// orthogonal dimension. After phase 1 each phase-2 line root holds
// the payload, so concatenating the phases delivers the whole plane.
func planePhaseLines(m *machine.Mesh2D, planes []Plane, dimFirst int) (phase1, phase2 [][]int) {
	for _, pl := range planes {
		if dimFirst == 0 {
			line := make([]int, pl.W)
			for i := 0; i < pl.W; i++ {
				line[i] = m.Rank(pl.X0+i, pl.Y0)
			}
			phase1 = append(phase1, line)
			for i := 0; i < pl.W; i++ {
				l2 := make([]int, pl.H)
				for j := 0; j < pl.H; j++ {
					l2[j] = m.Rank(pl.X0+i, pl.Y0+j)
				}
				phase2 = append(phase2, l2)
			}
		} else {
			line := make([]int, pl.H)
			for j := 0; j < pl.H; j++ {
				line[j] = m.Rank(pl.X0, pl.Y0+j)
			}
			phase1 = append(phase1, line)
			for j := 0; j < pl.H; j++ {
				l2 := make([]int, pl.W)
				for i := 0; i < pl.W; i++ {
					l2[i] = m.Rank(pl.X0+i, pl.Y0+j)
				}
				phase2 = append(phase2, l2)
			}
		}
	}
	return phase1, phase2
}

// planeAlgoName renders the two phase algorithms of a plane schedule
// as one name, phases in broadcast order.
func planeAlgoName(algo1, algo2 string) string { return algo1 + "+" + algo2 }

// SplitPlaneAlgorithm splits a "algo1+algo2" plane-schedule name back
// into its phase algorithms.
func SplitPlaneAlgorithm(name string) (algo1, algo2 string, ok bool) {
	i := strings.IndexByte(name, '+')
	if i < 0 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// SchedulePlanes builds and prices the two-phase per-plane schedule:
// algo1 runs along dimFirst on every plane's root line, then algo2
// along the orthogonal dimension on every plane line, all planes
// concurrently. Reductions execute the exact mirror (reversed rounds,
// swapped endpoints), as everywhere in this package; algorithm names
// always give the phases in broadcast order.
func SchedulePlanes(m *machine.Mesh2D, p Pattern, planes []Plane, dimFirst int, bytes int64, algo1, algo2 string) (*Schedule, error) {
	if p != Broadcast && p != Reduction {
		return nil, fmt.Errorf("collective: plane schedules cover broadcast/reduction, not %s", p)
	}
	if dimFirst != 0 && dimFirst != 1 {
		return nil, fmt.Errorf("collective: plane dimension %d out of range", dimFirst)
	}
	if len(planes) == 0 {
		return nil, fmt.Errorf("collective: empty plane set")
	}
	for _, pl := range planes {
		if !pl.valid(m) {
			return nil, fmt.Errorf("collective: plane %+v does not fit the %dx%d mesh", pl, m.P, m.Q)
		}
	}
	ls1, ls2 := planePhaseLines(m, planes, dimFirst)
	// Build both phases as broadcasts and mirror the concatenation for
	// reductions: reverse(b1 ++ b2) = reverse(b2) ++ reverse(b1), so
	// the phases swap order and each flows leaf-to-root.
	b1, err := buildLineRounds(m, ls1, bytes, algo1)
	if err != nil {
		return nil, err
	}
	b2, err := buildLineRounds(m, ls2, bytes, algo2)
	if err != nil {
		return nil, err
	}
	rounds := append(append([]Round{}, b1...), b2...)
	if p == Reduction {
		rounds = reverseRounds(rounds)
	}
	return newSchedule(m, planeAlgoName(algo1, algo2), p, planeScope(dimFirst), rounds), nil
}

// buildLineRounds builds the broadcast rounds of one named per-line
// algorithm over a line set (total-only algorithms are rejected: a
// plane phase is a line structure, not the 2-D rank space).
func buildLineRounds(m *machine.Mesh2D, ls [][]int, bytes int64, algo string) ([]Round, error) {
	for _, a := range meshAlgos {
		if a.name != algo {
			continue
		}
		if a.totalOnly {
			return nil, fmt.Errorf("collective: %s applies only to total collectives", algo)
		}
		return a.build(m, ls, bytes), nil
	}
	return nil, fmt.Errorf("collective: unknown mesh algorithm %q (have %v)", algo, MeshAlgorithms())
}

// SelectMeshPlanes selects the cheapest per-plane composition for the
// plane set: both dimension orders, each phase choosing its own
// algorithm. Because the phases execute back to back, their costs are
// separable and each phase is selected independently — the result is
// the exact minimum over every (order, algo1, algo2) combination.
// force pins both phases to one named line algorithm (non-applicable
// names select freely, as in SelectMesh).
func SelectMeshPlanes(m *machine.Mesh2D, p Pattern, planes []Plane, bytes int64, force string) Choice {
	return selectPlanes(newEvaluator(m), m, p, planes, bytes, force)
}

// selectPlanes is SelectMeshPlanes over a shared evaluator: the phase
// selections and the composed pricing all reuse one contention
// scratch. The composed schedule is priced as one round sequence over
// the winners' symbolic rounds, so the reported cost is bit-exact
// what MacroSchedule reprices.
func selectPlanes(e *evaluator, m *machine.Mesh2D, p Pattern, planes []Plane, bytes int64, force string) Choice {
	best := Choice{Pattern: p, Cost: -1}
	if len(planes) == 0 {
		return best
	}
	for _, pl := range planes {
		if !pl.valid(m) {
			return best
		}
	}
	for _, dimFirst := range []int{0, 1} {
		scope := planeScope(dimFirst)
		ls1, ls2 := planePhaseLines(m, planes, dimFirst)
		// selectShapes prices each candidate under the requested pattern
		// (reductions are priced on their mirrored rounds), and phase
		// costs add, so the per-phase winners compose the cheapest plane
		// schedule for this dimension order.
		ch1, s1 := e.selectShapes(m, p, ls1, bytes, force, scope)
		ch2, s2 := e.selectShapes(m, p, ls2, bytes, force, scope)
		cost := e.priceSeq([][]shapeRound{s1, s2}, p, bytes)
		cand := Choice{Pattern: p, Algorithm: planeAlgoName(ch1.Algorithm, ch2.Algorithm),
			Scope: scope, Cost: cost, Rounds: ch1.Rounds + ch2.Rounds}
		if best.Cost < 0 || cand.Cost < best.Cost {
			best = cand
		}
	}
	return best
}

// SelectMeshMacro prices a macro-communication that spans the given
// physical grid dimensions (sorted, a subset of {0, 1}):
//
//   - no dims: the macro is machine-spanning — a total collective;
//   - one dim: concurrent per-line trees along that dimension compete
//     with the machine-spanning execution (a total collective
//     over-delivers but is a valid execution of any partial macro);
//   - both dims: the per-plane composition (one plane, the whole
//     machine) competes with the machine-spanning execution.
//
// The machine-spanning candidates stay in the pool, so a p ≥ 2 macro
// never prices above its old total-collective cost; ties prefer the
// per-line/per-plane schedule. Selection is deterministic.
func SelectMeshMacro(m *machine.Mesh2D, p Pattern, dims []int, bytes int64, force string) Choice {
	e := newEvaluator(m)
	total, _ := e.selectShapes(m, p, totalLine(m, 0), bytes, force, "")
	var part Choice
	switch len(dims) {
	case 0:
		return total
	case 1:
		if dims[0] != 0 && dims[0] != 1 {
			return total
		}
		part, _ = e.selectShapes(m, p, dimLines(m, dims[0]), bytes, force, axisScope(dims[0]))
	default:
		part = selectPlanes(e, m, p, []Plane{FullPlane(m)}, bytes, force)
	}
	if part.Cost <= total.Cost {
		return part
	}
	return total
}

// MacroSchedule rebuilds the concrete schedule behind a SelectMeshMacro
// decision, for round-by-round dumps.
func MacroSchedule(m *machine.Mesh2D, p Pattern, dims []int, bytes int64, force string) (*Schedule, error) {
	ch := SelectMeshMacro(m, p, dims, bytes, force)
	switch ch.Scope {
	case "":
		return ScheduleMesh(m, p, 0, bytes, ch.Algorithm)
	case axisScope(0):
		return ScheduleMeshDim(m, p, 0, bytes, ch.Algorithm)
	case axisScope(1):
		return ScheduleMeshDim(m, p, 1, bytes, ch.Algorithm)
	default:
		algo1, algo2, ok := SplitPlaneAlgorithm(ch.Algorithm)
		if !ok {
			return nil, fmt.Errorf("collective: malformed plane algorithm %q", ch.Algorithm)
		}
		dimFirst := 0
		if ch.Scope == planeScope(1) {
			dimFirst = 1
		}
		return SchedulePlanes(m, p, []Plane{FullPlane(m)}, dimFirst, bytes, algo1, algo2)
	}
}
