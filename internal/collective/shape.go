package collective

import "repro/internal/machine"

// The mesh algorithms' schedules are byte-symbolic: which messages a
// round carries depends only on the line structure, and every
// message's payload is an integer-arithmetic function of the total
// payload B — the whole payload (coef 1, div 1), a pipeline segment
// (ceil(B/s)), or a scatter chunk multiple (sub·ceil(B/n)). Emitting
// that symbolic shape once and instantiating or pricing it per
// concrete payload is what the selection fast path and the compiled
// template tier are built on: shape construction happens once per
// (algorithm, line set), pricing is arithmetic per (payload, link
// costs).

// shapeMsg is one byte-symbolic message: at payload B it carries
// coef * ceil(B/div) bytes.
type shapeMsg struct {
	src, dst  int
	coef, div int64
}

// bytes evaluates the message size at a concrete payload.
func (s shapeMsg) bytes(b int64) int64 { return s.coef * ((b + s.div - 1) / s.div) }

// shapeRound is one schedule round in symbolic form.
type shapeRound []shapeMsg

// shapeVariant is one candidate schedule of an algorithm. Most
// algorithms emit exactly one; the pipelined chain emits one per
// segment count, applicable when the payload reaches minBytes and
// selected by broadcast cost at pricing time.
type shapeVariant struct {
	minBytes int64
	rounds   []shapeRound
}

// instantiate materializes a symbolic schedule at a concrete payload
// with exact-size allocations (broadcast orientation).
func instantiate(shapes []shapeRound, bytes int64) []Round {
	if len(shapes) == 0 {
		return nil
	}
	rounds := make([]Round, len(shapes))
	for i, sr := range shapes {
		r := make(Round, len(sr))
		for j, sm := range sr {
			r[j] = machine.Message{Src: sm.src, Dst: sm.dst, Bytes: sm.bytes(bytes)}
		}
		rounds[i] = r
	}
	return rounds
}

// evaluator bundles the reusable pricing scratch for one mesh: the
// flat-state contention evaluator plus a message buffer shared across
// rounds and candidate schedules. One evaluator prices every
// candidate of a selection (and, in SelectMeshPlanes, every phase of
// every composition) without per-candidate allocation.
type evaluator struct {
	m   *machine.Mesh2D
	ev  *machine.CostEval
	buf []machine.Message
	// asg is the round-assignment scratch of template compilation
	// (compileRound), reused across rounds and templates.
	asg []int
}

func newEvaluator(m *machine.Mesh2D) *evaluator {
	return &evaluator{m: m, ev: machine.NewCostEval(m)}
}

// priceRound prices one symbolic round at a payload; mirror swaps the
// endpoints (the reduction orientation).
func (e *evaluator) priceRound(sr shapeRound, bytes int64, mirror bool) float64 {
	if cap(e.buf) < len(sr) {
		e.buf = make([]machine.Message, len(sr))
	}
	buf := e.buf[:len(sr)]
	for j, sm := range sr {
		b := sm.bytes(bytes)
		if mirror {
			buf[j] = machine.Message{Src: sm.dst, Dst: sm.src, Bytes: b}
		} else {
			buf[j] = machine.Message{Src: sm.src, Dst: sm.dst, Bytes: b}
		}
	}
	return e.ev.Time(buf)
}

// price prices a symbolic schedule under the pattern, bit-identical
// to MeshCost over the materialized (and, for reductions, mirrored)
// rounds: reductions run the rounds reversed with swapped endpoints,
// and the per-round costs accumulate in execution order.
func (e *evaluator) price(shapes []shapeRound, p Pattern, bytes int64) float64 {
	total := 0.0
	if p == Reduction {
		for i := len(shapes) - 1; i >= 0; i-- {
			total += e.priceRound(shapes[i], bytes, true)
		}
		return total
	}
	for _, sr := range shapes {
		total += e.priceRound(sr, bytes, false)
	}
	return total
}

// priceSeq prices the concatenation of symbolic schedules executed
// back to back (the two-phase plane composition) under the pattern.
// For reductions the whole concatenation mirrors:
// reverse(b1 ++ b2) = reverse(b2) ++ reverse(b1).
func (e *evaluator) priceSeq(seqs [][]shapeRound, p Pattern, bytes int64) float64 {
	total := 0.0
	if p == Reduction {
		for si := len(seqs) - 1; si >= 0; si-- {
			for i := len(seqs[si]) - 1; i >= 0; i-- {
				total += e.priceRound(seqs[si][i], bytes, true)
			}
		}
		return total
	}
	for _, shapes := range seqs {
		for _, sr := range shapes {
			total += e.priceRound(sr, bytes, false)
		}
	}
	return total
}

// pickVariant selects an algorithm's schedule for the payload: the
// cheapest applicable variant by broadcast cost (the orientation the
// builders have always segmented on), earlier variants winning ties.
// Single-variant algorithms skip the pricing.
func (e *evaluator) pickVariant(vs []shapeVariant, bytes int64) *shapeVariant {
	switch len(vs) {
	case 0:
		return nil
	case 1:
		return &vs[0]
	}
	var best *shapeVariant
	bestCost := -1.0
	for i := range vs {
		v := &vs[i]
		if v.minBytes > 0 && bytes < v.minBytes {
			continue // segments below one byte: not applicable
		}
		cost := e.price(v.rounds, Broadcast, bytes)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// ---- shape emitters, one per mesh algorithm ----

// wholePayload is the symbolic form of an unsegmented message.
func wholePayload(src, dst int) shapeMsg { return shapeMsg{src: src, dst: dst, coef: 1, div: 1} }

// shapeFlat is the degenerate root-to-all baseline: every non-root
// processor of each line is served by one message from the line root,
// all posted in a single round (the mesh contention model then
// serializes them on the root's few outgoing links — exactly the old
// naive cost for a total collective).
func shapeFlat(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	n := 0
	for _, line := range ls {
		if len(line) > 1 {
			n += len(line) - 1
		}
	}
	if n == 0 {
		return []shapeVariant{{}}
	}
	r := make(shapeRound, 0, n)
	for _, line := range ls {
		for _, dst := range line[1:] {
			r = append(r, wholePayload(line[0], dst))
		}
	}
	return []shapeVariant{{rounds: []shapeRound{r}}}
}

// shapeBisection is the recursive-halving (midpoint) tree: each
// holder sends to the midpoint of its line segment, splitting the
// problem in two every round. The segments of one round map to
// disjoint physical intervals, so — unlike binomial doubling, whose
// same-round paths overlap and serialize — bisection rounds are
// conflict-free wherever the grid extents are powers of two, which
// makes it the cheapest tree on every default mesh.
func shapeBisection(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	n := maxLineLen(ls)
	top := 1
	for top < n {
		top *= 2
	}
	var rounds []shapeRound
	for d := top / 2; d >= 1; d /= 2 {
		var r shapeRound
		for _, line := range ls {
			for rel := 0; rel+d < len(line); rel += 2 * d {
				r = append(r, wholePayload(line[rel], line[rel+d]))
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return []shapeVariant{{rounds: rounds}}
}

// shapeBinomial is the binomial (recursive doubling) tree: in round
// k every processor that already holds the payload forwards it to
// the partner 2^k line positions away, so n processors are covered
// in ⌈log₂ n⌉ rounds. How well the doubling maps onto the physical
// grid — and how much the round's messages conflict — depends on the
// mesh shape and the line orientation.
func shapeBinomial(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	n := maxLineLen(ls)
	var rounds []shapeRound
	for dist := 1; dist < n; dist *= 2 {
		var r shapeRound
		for _, line := range ls {
			for rel := 0; rel < dist && rel+dist < len(line); rel++ {
				r = append(r, wholePayload(line[rel], line[rel+dist]))
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return []shapeVariant{{rounds: rounds}}
}

// shapeDimTree is the dimension-ordered tree for total collectives:
// a binomial tree down the root's column first (phase 1, all traffic
// in the x dimension), then concurrent binomial trees along every row
// (phase 2, all traffic in the y dimension). Each phase's messages
// are axis-parallel, so cross-dimension link conflicts never arise.
// Rounds append unconditionally (possibly empty), as this algorithm
// always has.
func shapeDimTree(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	root := 0
	if len(ls) > 0 && len(ls[0]) > 0 {
		root = ls[0][0]
	}
	rx, ry := m.Coords(root)
	var rounds []shapeRound
	for dist := 1; dist < m.P; dist *= 2 {
		var r shapeRound
		for rel := 0; rel < dist && rel+dist < m.P; rel++ {
			r = append(r, wholePayload(m.Rank((rx+rel)%m.P, ry), m.Rank((rx+rel+dist)%m.P, ry)))
		}
		rounds = append(rounds, r)
	}
	for dist := 1; dist < m.Q; dist *= 2 {
		var r shapeRound
		for x := 0; x < m.P; x++ {
			for rel := 0; rel < dist && rel+dist < m.Q; rel++ {
				r = append(r, wholePayload(m.Rank(x, (ry+rel)%m.Q), m.Rank(x, (ry+rel+dist)%m.Q)))
			}
		}
		rounds = append(rounds, r)
	}
	return []shapeVariant{{rounds: rounds}}
}

// shapeChain is the pipelined chain: the payload is cut into s
// segments that stream down each line, so the last processor finishes
// after n−2+s rounds of neighbor messages instead of waiting for the
// whole payload to traverse every hop. One variant per pipeline depth
// in chainSegments, each applicable from minBytes = s (segments below
// one byte make no sense); the cheapest applicable segmentation for
// the concrete machine and payload wins at pricing time.
func shapeChain(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	if maxLineLen(ls) < 2 {
		return []shapeVariant{{}}
	}
	vs := make([]shapeVariant, 0, len(chainSegments))
	for _, s := range chainSegments {
		v := shapeVariant{rounds: shapeChainSeg(ls, s)}
		if s > 1 {
			v.minBytes = int64(s)
		}
		vs = append(vs, v)
	}
	return vs
}

// shapeChainSeg: the chain schedule with exactly s segments; segment
// j reaches line position i (1-based) in round i−1+j.
func shapeChainSeg(ls [][]int, s int) []shapeRound {
	n := maxLineLen(ls)
	var rounds []shapeRound
	for t := 0; t < n-1+s-1; t++ {
		var r shapeRound
		for _, line := range ls {
			for i := 1; i < len(line); i++ {
				j := t - (i - 1)
				if j < 0 || j >= s {
					continue
				}
				r = append(r, shapeMsg{src: line[i-1], dst: line[i], coef: 1, div: int64(s)})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	return rounds
}

// shapeScatterAllgather is the large-payload broadcast: a binomial
// scatter distributes 1/n of the payload across each line in
// ⌈log₂ n⌉ rounds of halving sizes (the sender at position rel hands
// the chunks of [rel+dist, rel+2·dist) to its partner), then a ring
// allgather circulates the chunks in n−1 rounds of concurrent
// neighbor messages. Total traffic is ≈2·bytes per link instead of
// bytes·n, which wins once payloads dwarf startups.
func shapeScatterAllgather(m *machine.Mesh2D, ls [][]int) []shapeVariant {
	n := maxLineLen(ls)
	if n < 2 {
		return []shapeVariant{{}}
	}
	div := int64(n)
	top := 1
	for top < n {
		top *= 2
	}
	var rounds []shapeRound
	for dist := top / 2; dist >= 1; dist /= 2 {
		var r shapeRound
		for _, line := range ls {
			for rel := 0; rel < len(line); rel += 2 * dist {
				if rel+dist >= len(line) {
					continue
				}
				sub := dist
				if len(line)-(rel+dist) < sub {
					sub = len(line) - (rel + dist)
				}
				r = append(r, shapeMsg{src: line[rel], dst: line[rel+dist], coef: int64(sub), div: div})
			}
		}
		if len(r) > 0 {
			rounds = append(rounds, r)
		}
	}
	for t := 0; t < n-1; t++ {
		r := make(shapeRound, 0, len(ls))
		for _, line := range ls {
			for i := range line {
				r = append(r, shapeMsg{src: line[i], dst: line[(i+1)%len(line)], coef: 1, div: div})
			}
		}
		rounds = append(rounds, r)
	}
	return []shapeVariant{{rounds: rounds}}
}
