package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// flaky answers with the scripted status codes in order, then 200.
type flaky struct {
	codes []int
	hits  atomic.Int32
	// retryAfter, when set, is sent on every non-200.
	retryAfter string
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(f.hits.Add(1)) - 1
	if n < len(f.codes) {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.WriteHeader(f.codes[n])
		w.Write([]byte(`{"error":{"status":429,"code":"rate_limited","message":"slow down"}}`))
		return
	}
	w.Write([]byte(`{"api_version":"v1","workers":1}`))
}

// retryClient builds a client against h with retries enabled and the
// backoff sleeps recorded instead of slept.
func retryClient(t *testing.T, h http.Handler, max int) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client(), WithRetry(max))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

// TestRetryTransient: 429 and transient 5xx are retried (bounded) and
// the request eventually succeeds; backoff grows per attempt.
func TestRetryTransient(t *testing.T) {
	f := &flaky{codes: []int{429, 503, 502}}
	c, slept := retryClient(t, f, 3)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after retries: %v", err)
	}
	if got := f.hits.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4", got)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
	for i := 1; i < len(*slept); i++ {
		// Jitter adds at most 50%, so doubling keeps successive delays
		// strictly ordered past their bases.
		if (*slept)[i] < (*slept)[i-1]/2 {
			t.Errorf("backoff not growing: %v", *slept)
		}
	}
}

// TestRetryExhausted: once attempts run out the last typed error
// surfaces, not a retry-layer wrapper.
func TestRetryExhausted(t *testing.T) {
	f := &flaky{codes: []int{429, 429, 429, 429, 429}}
	c, _ := retryClient(t, f, 2)
	_, err := c.Stats(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeRateLimited {
		t.Fatalf("err = %v, want rate_limited api.Error", err)
	}
	if got := f.hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryHonorsRetryAfter: a 429's Retry-After lifts the delay
// above the computed backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	f := &flaky{codes: []int{429}, retryAfter: "7"}
	c, slept := retryClient(t, f, 1)
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] < 7*time.Second {
		t.Fatalf("slept %v, want ≥ 7s from Retry-After", *slept)
	}
}

// TestRetryOffByDefault: without WithRetry the first 429 is returned
// immediately.
func TestRetryOffByDefault(t *testing.T) {
	f := &flaky{codes: []int{429}}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("429 did not surface without retry")
	}
	if got := f.hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

// TestRetryNonTransient: a 400 is never retried — retry is for
// transient conditions, not broken requests.
func TestRetryNonTransient(t *testing.T) {
	f := &flaky{codes: []int{400, 400}}
	c, slept := retryClient(t, f, 3)
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("400 did not surface")
	}
	if len(*slept) != 0 || f.hits.Load() != 1 {
		t.Errorf("400 was retried (%d attempts, %d sleeps)", f.hits.Load(), len(*slept))
	}
}

// TestRetryConnectionError: a refused connection is retried too (the
// owner-down forwarding path sees these).
func TestRetryConnectionError(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listens anymore
	c, err := New(ts.URL, nil, WithRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	var slept int
	c.sleep = func(ctx context.Context, d time.Duration) error { slept++; return ctx.Err() }
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("dead server did not error")
	}
	if slept != 2 {
		t.Errorf("slept %d times, want 2", slept)
	}
}

// TestWithHeader: the static header reaches the server on every
// request.
func TestWithHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(api.ForwardHeader))
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client(), WithHeader(api.ForwardHeader, "node1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "node1" {
		t.Errorf("forward header = %q, want node1", got.Load())
	}
}
