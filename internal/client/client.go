// Package client is the Go client for the resoptd /v1 API. It speaks
// exclusively in internal/api wire types, so anything the server can
// say, the client can decode — and a round trip through both proves
// the contract. Used by `resopt -remote` and by the CI smoke driver.
//
//	c, _ := client.New("http://localhost:8080", nil)
//	res, err := c.Optimize(ctx, api.OptimizeRequest{Example: "matmul"})
//	sum, err := c.Batch(ctx, api.BatchSpec{Random: 20}, func(l api.BatchLine) error { ... })
//	job, err := c.SubmitJob(ctx, api.BatchSpec{Deep: 50})
//	job, err = c.WaitJob(ctx, job.ID, 0)
//	results, err := c.JobResults(ctx, job.ID)
//
// Every non-2xx response decodes into *api.Error, so callers can
// switch on err's Code (rate_limited, not_found, ...) via errors.As.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/trace"
)

// Client talks to one resoptd instance.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	headers http.Header
	// sleep is the retry-backoff clock (tests substitute a recorder).
	sleep func(context.Context, time.Duration) error
}

// Option configures a Client at construction.
type Option func(*Client)

// WithRetry enables bounded retry: up to max extra attempts per
// request on 429 (honoring Retry-After), transient 5xx (502, 503,
// 504) and connection errors, with exponential backoff plus jitter
// between attempts. Retries are off by default — interactive callers
// usually prefer the first error — and are used by the cluster
// router and resopt -remote failover.
func WithRetry(max int) Option {
	return func(c *Client) { c.retries = max }
}

// WithHeader adds a static header to every request the client sends
// (e.g. the cluster forward marker).
func WithHeader(key, value string) Option {
	return func(c *Client) {
		if c.headers == nil {
			c.headers = http.Header{}
		}
		c.headers.Set(key, value)
	}
}

// New builds a client for the daemon at baseURL (e.g.
// "http://localhost:8080"). hc == nil uses a default http.Client;
// timeouts and cancellation come from the per-call contexts either
// way, so the default client has no global timeout (batch streams
// and long polls would trip it).
func New(baseURL string, hc *http.Client, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Client{base: u, hc: hc, sleep: sleepCtx}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the client's target, as given to New.
func (c *Client) BaseURL() string { return c.base.String() }

// do issues one request; out (when non-nil) receives the decoded 2xx
// body. Non-2xx responses return *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("client: encoding %s %s request: %w", method, path, err)
		}
	}
	return c.sendRaw(ctx, method, path, data, "application/json")
}

// sendRaw issues one request from rebuildable bytes (nil data: no
// body), retrying per the WithRetry policy: connection errors, 429
// and transient 5xx are retried with exponential backoff + jitter,
// and a 429's Retry-After (delay-seconds form) takes precedence over
// the computed backoff when longer.
func (c *Client) sendRaw(ctx context.Context, method, path string, data []byte, contentType string) (*http.Response, error) {
	u := *c.base
	// A query string rides along after '?' (it must not be folded into
	// u.Path, where the '?' would be percent-escaped).
	if i := strings.IndexByte(path, '?'); i >= 0 {
		u.RawQuery = path[i+1:]
		path = path[:i]
	}
	u.Path = strings.TrimRight(u.Path, "/") + path
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if data != nil {
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
		if err != nil {
			return nil, err
		}
		if data != nil {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range c.headers {
			req.Header[k] = vs
		}
		// Propagate the caller's trace (minting one if the context has no
		// active span) so the server-side trace joins this process's.
		req.Header.Set("traceparent", trace.OutgoingTraceparent(ctx))
		resp, err := c.hc.Do(req)
		if err != nil {
			if attempt < c.retries && ctx.Err() == nil {
				if c.sleep(ctx, retryDelay(attempt, 0)) == nil {
					continue
				}
			}
			return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if attempt < c.retries && retryableStatus(resp.StatusCode) {
			delay := retryDelay(attempt, retryAfter(resp))
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if err := c.sleep(ctx, delay); err != nil {
				return nil, err
			}
			continue
		}
		return resp, nil
	}
}

// retryableStatus: the rate limiter's 429, plus the 5xx family that
// signals a transient condition rather than a broken request.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryBackoffBase is the first retry delay; each further attempt
// doubles it (capped at retryBackoffMax) before jitter.
const (
	retryBackoffBase = 100 * time.Millisecond
	retryBackoffMax  = 2 * time.Second
)

// retryDelay computes the pause before retry attempt+1: exponential
// backoff with up to 50% added jitter (decorrelating clients that
// were rate-limited together), raised to the server's Retry-After
// when that asks for more.
func retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := retryBackoffBase << attempt
	if d > retryBackoffMax || d <= 0 {
		d = retryBackoffMax
	}
	d += time.Duration(rand.Int64N(int64(d)/2 + 1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// retryAfter parses the delay-seconds form of a Retry-After header
// (what resoptd sends); absent or unparsable reads as zero.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// sleepCtx pauses for d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// responseError maps a non-2xx response to its typed *api.Error,
// synthesizing one when the body is not a well-formed envelope. The
// server's Trace-Id header is folded into the error so failure
// reports can name the server-side trace.
func responseError(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var ae *api.Error
	var env api.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error != nil {
		ae = env.Error
	} else {
		ae = api.Errorf(resp.StatusCode, api.CodeInternal, "unexpected response: %s", bytes.TrimSpace(body))
	}
	if ae.TraceID == "" {
		ae.TraceID = resp.Header.Get("Trace-Id")
	}
	return ae
}

// Optimize runs one nest synchronously.
func (c *Client) Optimize(ctx context.Context, req api.OptimizeRequest) (*api.OptimizeResponse, error) {
	var out api.OptimizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch streams a synchronous batch run: emit (when non-nil) is
// called once per NDJSON result line, in suite order, as the server
// produces them; the trailing summary is returned. A non-nil error
// from emit aborts the stream (and, by closing the body, cancels the
// server-side run at the next scenario boundary).
func (c *Client) Batch(ctx context.Context, spec api.BatchSpec, emit func(api.BatchLine) error) (*api.BatchSummary, error) {
	resp, err := c.send(ctx, http.MethodPost, "/v1/batch", spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sum *api.BatchSummary
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary"`)) {
			var s api.BatchSummary
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("client: decoding batch summary: %w", err)
			}
			sum = &s
			continue
		}
		var l api.BatchLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("client: decoding batch line: %w", err)
		}
		if emit != nil {
			if err := emit(l); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading batch stream: %w", err)
	}
	if sum == nil {
		return nil, fmt.Errorf("client: batch stream ended without a summary line")
	}
	return sum, nil
}

// Lattice streams a capacity-planning sweep: emit (when non-nil) is
// called once per NDJSON row, in grid order (machines as declared,
// payloads ascending), as the server produces them; the trailing
// summary is returned. A non-nil error from emit aborts the stream.
func (c *Client) Lattice(ctx context.Context, req api.LatticeRequest, emit func(api.LatticeRow) error) (*api.LatticeSummary, error) {
	resp, err := c.send(ctx, http.MethodPost, "/v1/lattice", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sum *api.LatticeSummary
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary"`)) {
			var s api.LatticeSummary
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("client: decoding lattice summary: %w", err)
			}
			sum = &s
			continue
		}
		var row api.LatticeRow
		if err := json.Unmarshal(line, &row); err != nil {
			return nil, fmt.Errorf("client: decoding lattice row: %w", err)
		}
		if emit != nil {
			if err := emit(row); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading lattice stream: %w", err)
	}
	if sum == nil {
		return nil, fmt.Errorf("client: lattice stream ended without a summary line")
	}
	return sum, nil
}

// SubmitJob submits a batch spec as an async job.
func (c *Client) SubmitJob(ctx context.Context, spec api.BatchSpec) (*api.Job, error) {
	var out api.Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*api.Job, error) {
	var out api.Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the server's jobs, most recent first.
func (c *Client) Jobs(ctx context.Context) ([]api.Job, error) {
	var out api.JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob cancels a queued or running job (a no-op on finished
// ones) and returns the job's state after the request.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.Job, error) {
	var out api.Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls until the job finishes (or ctx dies). poll ≤ 0
// defaults to 100ms. A rate-limited poll is not a failure: it is
// retried at the same poll interval, so pick a poll comfortably above
// 1/rate when the server runs with -rate.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*api.Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		switch {
		case err == nil:
			if job.Status.Finished() {
				return job, nil
			}
		default:
			var ae *api.Error
			if !errors.As(err, &ae) || ae.Code != api.CodeRateLimited {
				return nil, err
			}
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// JobResults fetches a finished job's full results.
func (c *Client) JobResults(ctx context.Context, id string) (*api.JobResults, error) {
	var out api.JobResults
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/results", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshots lists the server's stored snapshots.
func (c *Client) Snapshots(ctx context.Context) ([]api.SnapshotInfo, error) {
	var out api.SnapshotList
	if err := c.do(ctx, http.MethodGet, "/v1/snapshots", nil, &out); err != nil {
		return nil, err
	}
	return out.Snapshots, nil
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStats fetches the fleet-wide stats aggregation: every
// member's /v1/stats snapshot (down peers marked unreachable) plus the
// rollup. On an unclustered daemon the members list holds just that
// daemon.
func (c *Client) ClusterStats(ctx context.Context) (*api.ClusterStatsResponse, error) {
	var out api.ClusterStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/cluster/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz checks the daemon's liveness endpoint — the cluster health
// prober's probe function.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// FetchTrace retrieves a peer's locally recorded span set for one
// trace ID (the cluster-internal half of distributed trace assembly;
// ?local=1 stops the peer from fanning out in turn). A peer whose ring
// no longer holds the trace answers 404, surfaced as *api.Error with
// CodeNotFound.
func (c *Client) FetchTrace(ctx context.Context, id string) (*trace.TraceData, error) {
	var out trace.TraceData
	if err := c.do(ctx, http.MethodGet, "/debug/traces/"+url.PathEscape(id)+"?local=1", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FetchMetrics retrieves a peer's raw /metrics exposition — the
// federation endpoint's per-node fetch.
func (c *Client) FetchMetrics(ctx context.Context) ([]byte, error) {
	resp, err := c.sendRaw(ctx, http.MethodGet, "/metrics/peer", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return nil, err
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// FetchPlan retrieves a peer's stored plan by content address
// (store.PlanAddr of the canonical key). A peer that does not hold
// the plan answers 404, surfaced as *api.Error with CodeNotFound.
func (c *Client) FetchPlan(ctx context.Context, addr string) (*api.PlanExport, error) {
	var out api.PlanExport
	if err := c.do(ctx, http.MethodGet, "/v1/plans/"+url.PathEscape(addr), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PushPlan replicates a plan to a peer under its content address.
func (c *Client) PushPlan(ctx context.Context, addr string, plan *api.PlanExport) error {
	return c.do(ctx, http.MethodPut, "/v1/plans/"+url.PathEscape(addr), plan, nil)
}

// PushSnapshot replicates a recorded snapshot's exact bytes to a
// peer, preserving the byte-identical re-run guarantee across nodes.
func (c *Client) PushSnapshot(ctx context.Context, name string, data []byte) error {
	resp, err := c.sendRaw(ctx, http.MethodPut, "/v1/snapshots/"+url.PathEscape(name), data, "application/json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
