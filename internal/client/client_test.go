package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	. "repro/internal/client"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

// startServer spins a real server (engine session and all) behind an
// httptest listener and a client pointed at it.
func startServer(t *testing.T, opts server.Options) *Client {
	t.Helper()
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoundTripEveryEndpoint drives every /v1 endpoint through the Go
// client against a live server: optimize, batch (with save-as),
// snapshot listing, snapshot re-run (byte-identical + clean diff),
// the whole job lifecycle, and stats. This is the satellite
// acceptance test for the client↔server contract.
func TestRoundTripEveryEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := startServer(t, server.Options{Workers: 2, Store: st})
	ctx := context.Background()

	// POST /v1/optimize
	opt, err := c.Optimize(ctx, api.OptimizeRequest{Example: "matmul", Machine: "mesh4x4"})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if opt.Name != "matmul" || opt.Machine != "mesh4x4" ||
		opt.Local+opt.Macro+opt.Decomposed+opt.General == 0 {
		t.Errorf("Optimize response %+v", opt)
	}

	// POST /v1/batch with save_as
	spec := api.BatchSpec{Seed: 9, Random: 2, NoExamples: true, SaveAs: "rt-suite"}
	var lines []api.BatchLine
	sum, err := c.Batch(ctx, spec, func(l api.BatchLine) error { lines = append(lines, l); return nil })
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(lines) != sum.Summary.Scenarios || sum.Summary.Scenarios == 0 {
		t.Fatalf("batch streamed %d lines, summary %+v", len(lines), sum.Summary)
	}
	if sum.Summary.Snapshot != "rt-suite" {
		t.Errorf("batch not recorded: %+v", sum.Summary)
	}

	// GET /v1/snapshots
	snaps, err := c.Snapshots(ctx)
	if err != nil {
		t.Fatalf("Snapshots: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Name != "rt-suite" || !snaps[0].Rerunnable {
		t.Errorf("snapshots %+v", snaps)
	}

	// POST /v1/batch by snapshot name: byte-identical lines, clean diff.
	var rerun []api.BatchLine
	rerunSum, err := c.Batch(ctx, api.BatchSpec{Snapshot: "rt-suite"}, func(l api.BatchLine) error {
		rerun = append(rerun, l)
		return nil
	})
	if err != nil {
		t.Fatalf("Batch(snapshot): %v", err)
	}
	if !reflect.DeepEqual(lines, rerun) {
		t.Errorf("snapshot re-run differs:\n orig %+v\nrerun %+v", lines, rerun)
	}
	if d := rerunSum.Summary.Diff; d == nil || d.Regressions != 0 || d.Unchanged != len(lines) {
		t.Errorf("re-run diff %+v", rerunSum.Summary.Diff)
	}

	// POST /v1/jobs → GET /v1/jobs/{id} (via WaitJob) → GET results.
	job, err := c.SubmitJob(ctx, api.BatchSpec{Seed: 9, Random: 2, NoExamples: true})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if job.Status.Finished() {
		t.Fatalf("job born finished: %+v", job)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	job, err = c.WaitJob(waitCtx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if job.Status != api.JobDone {
		t.Fatalf("job %+v", job)
	}
	results, err := c.JobResults(ctx, job.ID)
	if err != nil {
		t.Fatalf("JobResults: %v", err)
	}
	// The async job ran the same spec as the synchronous batch: its
	// results must be identical (the engine is deterministic and the
	// suite resolver canonicalizes the spec).
	if !reflect.DeepEqual(results.Results, lines) {
		t.Errorf("job results differ from batch lines")
	}

	// GET /v1/jobs listing includes the job.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	found := false
	for _, j := range jobs {
		found = found || j.ID == job.ID
	}
	if !found {
		t.Errorf("job %s missing from listing %+v", job.ID, jobs)
	}

	// DELETE /v1/jobs/{id} on a finished job is a no-op echo.
	echoed, err := c.CancelJob(ctx, job.ID)
	if err != nil || echoed.Status != api.JobDone {
		t.Errorf("CancelJob(finished): %+v, %v", echoed, err)
	}

	// GET /v1/stats reflects the traffic.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Version != api.Version || stats.Requests.Optimize == 0 ||
		stats.Requests.Batch < 2 || stats.Requests.Jobs == 0 {
		t.Errorf("stats %+v", stats)
	}
	if stats.SuiteCache.Hits == 0 {
		t.Error("identical specs never hit the suite cache")
	}
	if stats.Store == nil {
		t.Error("store stats missing")
	}
}

// TestClientTypedErrors: non-2xx responses surface as *api.Error with
// the server's status and code.
func TestClientTypedErrors(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	_, err := c.Optimize(ctx, api.OptimizeRequest{Example: "nope"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest || ae.Status != 400 {
		t.Errorf("Optimize(bad) error = %v", err)
	}
	if len(ae.TraceID) != 32 {
		t.Errorf("error trace_id %q, want the server's 32-hex trace ID", ae.TraceID)
	}

	if _, err := c.Job(ctx, "missing"); !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Errorf("Job(missing) error = %v", err)
	}

	if _, err := c.Snapshots(ctx); !errors.As(err, &ae) || ae.Code != api.CodeNoStore {
		t.Errorf("Snapshots(no store) error = %v", err)
	}
}

// TestClientEmitAbort: an emit error aborts the stream client-side.
func TestClientEmitAbort(t *testing.T) {
	c := startServer(t, server.Options{Workers: 1})
	boom := errors.New("stop")
	n := 0
	_, err := c.Batch(context.Background(), api.BatchSpec{Seed: 2, Random: 4, NoExamples: true},
		func(api.BatchLine) error {
			if n++; n == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("Batch error = %v, want emit error", err)
	}
	if n != 1 {
		t.Errorf("emit called %d times after abort", n)
	}
}

// TestClientCancelMidBatch: cancelling the request context mid-stream
// returns promptly with a context error and the server's partial
// stream terminates cleanly (no summary, no hang).
func TestClientCancelMidBatch(t *testing.T) {
	c := startServer(t, server.Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := c.Batch(ctx, api.BatchSpec{Seed: 2, Random: 60, Deep: 5},
		func(api.BatchLine) error {
			if n++; n == 1 {
				cancel()
			}
			return nil
		})
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) && !isNetCancel(err) {
		t.Fatalf("cancelled batch error = %v", err)
	}
	// The shared session must still serve requests afterwards.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := c.Optimize(context.Background(), api.OptimizeRequest{Example: "matmul"}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("session unhealthy after cancel: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// isNetCancel recognizes the net/http surface of a cancelled request
// body read (bufio.Scanner wraps the transport error, so fall back to
// the string form).
func isNetCancel(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		strings.Contains(err.Error(), "context canceled") ||
		strings.Contains(err.Error(), "request canceled"))
}

// TestClientTraceparent: every client request carries a W3C
// traceparent header — continuing the context's active span when
// there is one, minted fresh otherwise.
func TestClientTraceparent(t *testing.T) {
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("traceparent"))
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(4)
	ctx, span := trace.StartRoot(context.Background(), rec, "cli", "")
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	span.End()

	if len(got) != 2 {
		t.Fatalf("server saw %d requests", len(got))
	}
	for i, tp := range got {
		if _, _, ok := trace.ParseTraceparent(tp); !ok {
			t.Errorf("request %d traceparent %q does not parse", i, tp)
		}
	}
	if want := span.TraceID().String(); !strings.Contains(got[1], want) {
		t.Errorf("active span's trace %s not propagated: %q", want, got[1])
	}
}
