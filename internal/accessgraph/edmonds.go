package accessgraph

// Edmonds' maximum-branching algorithm (Edmonds 1967, in the simple
// derivation of Karp 1971): given a directed multigraph with integer
// edge weights, find a branching — a subset of edges in which every
// vertex has in-degree at most one and which contains no cycle — of
// maximum total weight. Only edges of positive (adjusted) weight are
// ever selected.

// BranchEdge is an edge of the abstract branching problem.
type BranchEdge struct {
	Src, Dst int
	Weight   int
}

// bedge is the internal working edge: id points into the structure of
// the enclosing recursion level (the caller's edge slice at the top
// level, the contraction metadata below).
type bedge struct {
	src, dst, w int
	id          int
}

// MaximumBranching returns the indices into edges of a maximum-weight
// branching of the n-vertex multigraph. Self-loops are ignored.
func MaximumBranching(n int, edges []BranchEdge) []int {
	var work []bedge
	for i, be := range edges {
		if be.Src == be.Dst {
			continue
		}
		work = append(work, bedge{src: be.Src, dst: be.Dst, w: be.Weight, id: i})
	}
	return solveBranching(n, work)
}

func solveBranching(n int, es []bedge) []int {
	// pick the best positive incoming edge of each vertex
	best := make([]int, n) // index into es, or -1
	for v := range best {
		best[v] = -1
	}
	for i, ed := range es {
		if ed.w <= 0 {
			continue
		}
		if best[ed.dst] < 0 || es[best[ed.dst]].w < ed.w {
			best[ed.dst] = i
		}
	}
	cycle := findCycle(n, es, best)
	if cycle == nil {
		var out []int
		for _, bi := range best {
			if bi >= 0 {
				out = append(out, es[bi].id)
			}
		}
		return out
	}
	inCycle := make([]bool, n)
	for _, v := range cycle {
		inCycle[v] = true
	}
	// the minimum-weight selected edge on the cycle: losing it is the
	// default cost of breaking the cycle
	minI := best[cycle[0]]
	for _, v := range cycle[1:] {
		if es[best[v]].w < es[minI].w {
			minI = best[v]
		}
	}
	// contract the cycle into a supernode
	remap := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if !inCycle[v] {
			remap[v] = next
			next++
		}
	}
	super := next
	for v := 0; v < n; v++ {
		if inCycle[v] {
			remap[v] = super
		}
	}
	type centry struct {
		orig      bedge
		displaced int // es index of the cycle edge dropped if chosen; -1
	}
	var ces []bedge
	var meta []centry
	for i, ed := range es {
		su, sv := inCycle[ed.src], inCycle[ed.dst]
		switch {
		case su && sv:
			continue
		case sv: // entering the cycle: choosing it displaces best[dst]
			adj := ed.w - es[best[ed.dst]].w + es[minI].w
			ces = append(ces, bedge{src: remap[ed.src], dst: super, w: adj, id: len(meta)})
			meta = append(meta, centry{orig: es[i], displaced: best[ed.dst]})
		case su: // leaving the cycle
			ces = append(ces, bedge{src: super, dst: remap[ed.dst], w: ed.w, id: len(meta)})
			meta = append(meta, centry{orig: es[i], displaced: -1})
		default:
			ces = append(ces, bedge{src: remap[ed.src], dst: remap[ed.dst], w: ed.w, id: len(meta)})
			meta = append(meta, centry{orig: es[i], displaced: -1})
		}
	}
	sub := solveBranching(super+1, ces)
	var out []int
	displaced := minI
	for _, mi := range sub {
		m := meta[mi]
		out = append(out, m.orig.id)
		if m.displaced >= 0 {
			displaced = m.displaced
		}
	}
	for _, v := range cycle {
		if best[v] != displaced {
			out = append(out, es[best[v]].id)
		}
	}
	return out
}

// findCycle returns the vertices of some cycle formed by the selected
// in-edges (best), or nil.
func findCycle(n int, es []bedge, best []int) []int {
	state := make([]int, n) // 0 unvisited, 1 on current path, 2 done
	for start := 0; start < n; start++ {
		if state[start] != 0 {
			continue
		}
		var path []int
		v := start
		for {
			if state[v] == 1 {
				for i, u := range path {
					if u == v {
						return path[i:]
					}
				}
			}
			if state[v] == 2 || best[v] < 0 {
				break
			}
			state[v] = 1
			path = append(path, v)
			v = es[best[v]].src
		}
		for _, u := range path {
			state[u] = 2
		}
	}
	return nil
}

// BranchingWeight sums the weights of the given edge indices.
func BranchingWeight(edges []BranchEdge, sel []int) int {
	w := 0
	for _, i := range sel {
		w += edges[i].Weight
	}
	return w
}

// IsBranching verifies the branching property of the selection:
// in-degree at most one and acyclic.
func IsBranching(n int, edges []BranchEdge, sel []int) bool {
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	for _, i := range sel {
		e := edges[i]
		if parent[e.Dst] != -1 {
			return false
		}
		parent[e.Dst] = e.Src
	}
	for start := 0; start < n; start++ {
		v := start
		for steps := 0; parent[v] != -1; steps++ {
			if steps > n {
				return false
			}
			v = parent[v]
		}
	}
	return true
}

// MaximumBranchingOfGraph runs Edmonds on the access graph using the
// integer volume weights and returns the selected edges.
func (g *Graph) MaximumBranchingOfGraph() []*Edge {
	bes := make([]BranchEdge, len(g.Edges))
	for i, e := range g.Edges {
		bes[i] = BranchEdge{Src: e.Src, Dst: e.Dst, Weight: e.Volume}
	}
	sel := MaximumBranching(len(g.Vertices), bes)
	out := make([]*Edge, 0, len(sel))
	for _, i := range sel {
		out = append(out, g.Edges[i])
	}
	return out
}
