// Package accessgraph builds the m-dimensional access graph G(V,E,m)
// of an affine loop nest (paper Section 2.2.2) and extracts a maximum
// branching from it with Edmonds' algorithm (Section 2.3).
//
// Vertices are statements and arrays. A full-rank access x(F·I + c)
// of rank ≥ m in statement S contributes:
//
//   - an edge x → S with matrix weight F when q_x ≤ d (given M_x of
//     rank m, M_S = M_x·F has rank m — Lemma 1);
//   - an edge S → x with matrix weight G, G·F = Id, when d ≤ q_x
//     (given M_S of rank m, M_x = M_S·G solves M_S = M_x·F — Lemma 3);
//   - both edges when q_x = d (F square non-singular).
//
// Every edge also carries an integer weight rank(F): the dimension of
// the accessed data set, the paper's consistent estimate of the
// communication volume, so that the maximum branching zeroes out the
// largest-traffic communications first.
package accessgraph

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/ratmat"
)

// VertexKind discriminates statement and array vertices.
type VertexKind int

// Vertex kinds.
const (
	StmtVertex VertexKind = iota
	ArrayVertex
)

// Vertex is one node of the access graph.
type Vertex struct {
	Kind VertexKind
	Name string
	// Dim is the number of allocation-matrix columns for this vertex:
	// the statement depth d or the array dimension q_x.
	Dim int
}

// Comm identifies one communication of the nest: a single array
// access inside a statement.
type Comm struct {
	ID        int
	Stmt      *affine.Statement
	AccessIdx int
	Access    affine.Access
	Rank      int // rank of the access matrix F
	InGraph   bool
}

// Edge is a directed access-graph edge. The matrix weight W encodes
// the allocation constraint M_dst = M_src · W that makes the
// underlying communication local.
type Edge struct {
	Src, Dst int // vertex indices
	W        *ratmat.Mat
	Volume   int // integer weight: rank of the access matrix
	CommID   int
	// IntegerW reports whether W is integral (it always is except for
	// S → x edges whose access matrix has no integer one-sided
	// inverse).
	IntegerW bool
}

// Graph is the access graph of a program for a target dimension m.
type Graph struct {
	M        int
	Program  *affine.Program
	Vertices []Vertex
	Edges    []*Edge
	Comms    []Comm
	index    map[string]int
}

// VertexIndex returns the index of the named vertex, or -1.
func (g *Graph) VertexIndex(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	return -1
}

// EdgesOfComm returns the one or two edges representing communication
// id (two for square accesses: "a single edge with two arrows").
func (g *Graph) EdgesOfComm(id int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.CommID == id {
			out = append(out, e)
		}
	}
	return out
}

// Build constructs the access graph of p for an m-dimensional target
// virtual architecture.
func Build(p *affine.Program, m int) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("accessgraph: target dimension m = %d", m)
	}
	g := &Graph{M: m, Program: p, index: map[string]int{}}
	for _, a := range p.Arrays {
		g.index[a.Name] = len(g.Vertices)
		g.Vertices = append(g.Vertices, Vertex{Kind: ArrayVertex, Name: a.Name, Dim: a.Dim})
	}
	for _, s := range p.Statements {
		g.index[s.Name] = len(g.Vertices)
		g.Vertices = append(g.Vertices, Vertex{Kind: StmtVertex, Name: s.Name, Dim: s.Depth})
	}
	for _, s := range p.Statements {
		for ai, acc := range s.Accesses {
			comm := Comm{
				ID:        len(g.Comms),
				Stmt:      s,
				AccessIdx: ai,
				Access:    acc,
				Rank:      acc.F.Rank(),
			}
			d := s.Depth
			q := acc.F.Rows()
			full := comm.Rank == min(q, d)
			// The graph represents only communications whose access
			// matrix is of full rank ≥ m (Section 2.2.2); also the
			// heuristic distributes only statements/arrays with
			// dimension ≥ m.
			if full && comm.Rank >= m && d >= m && q >= m {
				comm.InGraph = true
				sIdx := g.index[s.Name]
				xIdx := g.index[acc.Array]
				if q <= d {
					// flat (or square): x → S with weight F
					g.Edges = append(g.Edges, &Edge{
						Src: xIdx, Dst: sIdx,
						W:        ratmat.FromInt(acc.F),
						Volume:   comm.Rank,
						CommID:   comm.ID,
						IntegerW: true,
					})
				}
				if d <= q {
					// narrow (or square): S → x with weight G, G·F = Id
					var w *ratmat.Mat
					integer := true
					if q == d {
						inv, ok := ratmat.FromInt(acc.F).Inverse()
						if !ok {
							return nil, fmt.Errorf("accessgraph: singular square full-rank matrix %v", acc.F)
						}
						w = inv
						integer = w.IsInteger()
					} else {
						w, integer = ratmat.LeftGeneralizedInverse(acc.F)
					}
					g.Edges = append(g.Edges, &Edge{
						Src: sIdx, Dst: xIdx,
						W:        w,
						Volume:   comm.Rank,
						CommID:   comm.ID,
						IntegerW: integer,
					})
				}
			}
			g.Comms = append(g.Comms, comm)
		}
	}
	return g, nil
}

// GraphComms returns the number of distinct communications that
// appear in the graph (square accesses count once).
func (g *Graph) GraphComms() int {
	n := 0
	for _, c := range g.Comms {
		if c.InGraph {
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the graph edges for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("access graph m=%d: %d vertices, %d edges\n", g.M, len(g.Vertices), len(g.Edges))
	for _, e := range g.Edges {
		s += fmt.Sprintf("  %s -> %s  vol=%d W=%v\n",
			g.Vertices[e.Src].Name, g.Vertices[e.Dst].Name, e.Volume, e.W)
	}
	return s
}
