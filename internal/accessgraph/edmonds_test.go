package accessgraph

import (
	"math/rand"
	"testing"
)

// bruteForceBranching enumerates all per-vertex in-edge choices and
// returns the maximum branching weight. Exponential; tests only.
func bruteForceBranching(n int, edges []BranchEdge) int {
	inEdges := make([][]int, n)
	for i, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		inEdges[e.Dst] = append(inEdges[e.Dst], i)
	}
	bestW := 0
	choice := make([]int, n) // -1 none, else edge idx
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			var sel []int
			for _, c := range choice {
				if c >= 0 {
					sel = append(sel, c)
				}
			}
			if IsBranching(n, edges, sel) {
				if w := BranchingWeight(edges, sel); w > bestW {
					bestW = w
				}
			}
			return
		}
		choice[v] = -1
		rec(v + 1)
		for _, ei := range inEdges[v] {
			if edges[ei].Weight <= 0 {
				continue
			}
			choice[v] = ei
			rec(v + 1)
		}
		choice[v] = -1
	}
	rec(0)
	return bestW
}

func TestMaximumBranchingSimpleChain(t *testing.T) {
	// 0 -> 1 -> 2 with positive weights: all edges selected.
	edges := []BranchEdge{{0, 1, 2}, {1, 2, 3}}
	sel := MaximumBranching(3, edges)
	if !IsBranching(3, edges, sel) {
		t.Fatal("not a branching")
	}
	if w := BranchingWeight(edges, sel); w != 5 {
		t.Fatalf("weight = %d, want 5", w)
	}
}

func TestMaximumBranchingTwoCycle(t *testing.T) {
	// two-cycle: must drop the lighter edge
	edges := []BranchEdge{{0, 1, 5}, {1, 0, 3}}
	sel := MaximumBranching(2, edges)
	if !IsBranching(2, edges, sel) {
		t.Fatal("not a branching")
	}
	if w := BranchingWeight(edges, sel); w != 5 {
		t.Fatalf("weight = %d, want 5", w)
	}
}

func TestMaximumBranchingCycleWithEntry(t *testing.T) {
	// cycle 1->2->3->1 all weight 10, entry 0->2 weight 1.
	// Optimal: enter at 2 (drop 1->2), keep 2->3, 3->1: 1+10+10 = 21,
	// or skip entry and keep two cycle edges: 20. So 21.
	edges := []BranchEdge{
		{1, 2, 10}, {2, 3, 10}, {3, 1, 10}, {0, 2, 1},
	}
	sel := MaximumBranching(4, edges)
	if !IsBranching(4, edges, sel) {
		t.Fatal("not a branching")
	}
	if w := BranchingWeight(edges, sel); w != 21 {
		t.Fatalf("weight = %d, want 21", w)
	}
}

func TestMaximumBranchingPrefersHeavyEntry(t *testing.T) {
	// cycle 1<->2 (weights 10, 9); entry 0->1 weight 10.
	// best: 0->1 (10) + 1->2 (10) = 20.
	edges := []BranchEdge{{1, 2, 10}, {2, 1, 9}, {0, 1, 10}}
	sel := MaximumBranching(3, edges)
	if w := BranchingWeight(edges, sel); w != 20 {
		t.Fatalf("weight = %d, want 20", w)
	}
	if !IsBranching(3, edges, sel) {
		t.Fatal("not a branching")
	}
}

func TestMaximumBranchingIgnoresNonPositive(t *testing.T) {
	edges := []BranchEdge{{0, 1, 0}, {1, 2, -3}}
	sel := MaximumBranching(3, edges)
	if len(sel) != 0 {
		t.Fatalf("selected %v from non-positive edges", sel)
	}
}

func TestMaximumBranchingSelfLoopIgnored(t *testing.T) {
	edges := []BranchEdge{{0, 0, 100}, {0, 1, 1}}
	sel := MaximumBranching(2, edges)
	if w := BranchingWeight(edges, sel); w != 1 {
		t.Fatalf("weight = %d, want 1", w)
	}
}

func TestMaximumBranchingNestedCycles(t *testing.T) {
	// two intertwined cycles sharing vertex 1
	edges := []BranchEdge{
		{0, 1, 4}, {1, 0, 4},
		{1, 2, 4}, {2, 1, 4},
		{3, 0, 1},
	}
	sel := MaximumBranching(4, edges)
	if !IsBranching(4, edges, sel) {
		t.Fatal("not a branching")
	}
	want := bruteForceBranching(4, edges)
	if w := BranchingWeight(edges, sel); w != want {
		t.Fatalf("weight = %d, want %d", w, want)
	}
}

func TestMaximumBranchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		ne := rng.Intn(10)
		edges := make([]BranchEdge, ne)
		for i := range edges {
			edges[i] = BranchEdge{
				Src:    rng.Intn(n),
				Dst:    rng.Intn(n),
				Weight: rng.Intn(12) - 2,
			}
		}
		sel := MaximumBranching(n, edges)
		if !IsBranching(n, edges, sel) {
			t.Fatalf("trial %d: output not a branching: %v %v", trial, edges, sel)
		}
		got := BranchingWeight(edges, sel)
		want := bruteForceBranching(n, edges)
		if got != want {
			t.Fatalf("trial %d: weight %d, brute force %d; edges %v sel %v", trial, got, want, edges, sel)
		}
	}
}

func TestMaximumBranchingDAGEqualsGreedy(t *testing.T) {
	// On a DAG the maximum branching is just each vertex's best
	// positive in-edge.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		var edges []BranchEdge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, BranchEdge{Src: i, Dst: j, Weight: rng.Intn(10)})
				}
			}
		}
		want := 0
		bestIn := make([]int, n)
		for _, e := range edges {
			if e.Weight > bestIn[e.Dst] {
				bestIn[e.Dst] = e.Weight
			}
		}
		for _, w := range bestIn {
			want += w
		}
		sel := MaximumBranching(n, edges)
		if got := BranchingWeight(edges, sel); got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got, want)
		}
	}
}
