package accessgraph

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/ratmat"
)

func TestBuildPaperExample1(t *testing.T) {
	p := affine.PaperExample1()
	g, err := Build(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Vertices) != 6 {
		t.Fatalf("vertices = %d, want 6", len(g.Vertices))
	}
	if len(g.Comms) != 9 {
		t.Fatalf("comms = %d, want 9", len(g.Comms))
	}
	// 8 of 9 communications appear (F9 is rank-deficient), and the
	// three square accesses (F2, F5, F8) plus F3 each contribute two
	// arrows: 4 flat/narrow edges + 4*2 = 12 edges.
	if got := g.GraphComms(); got != 8 {
		t.Fatalf("graph comms = %d, want 8", got)
	}
	// check orientation rules
	aIdx := g.VertexIndex("a")
	s1Idx := g.VertexIndex("S1")
	bIdx := g.VertexIndex("b")
	if aIdx < 0 || s1Idx < 0 || bIdx < 0 {
		t.Fatal("vertex lookup failed")
	}
	// F1 is narrow (3x2): only S1 -> b
	var f1Edges []*Edge
	for _, e := range g.Edges {
		if (e.Src == s1Idx && e.Dst == bIdx) || (e.Src == bIdx && e.Dst == s1Idx) {
			f1Edges = append(f1Edges, e)
		}
	}
	if len(f1Edges) != 1 || f1Edges[0].Src != s1Idx {
		t.Fatalf("F1 edges wrong: %v", f1Edges)
	}
	// weight of the S1->b edge must satisfy W·F1 = Id
	f1 := p.Statement("S1").Accesses[0].F
	if !ratmat.Mul(f1Edges[0].W, ratmat.FromInt(f1)).IsIdentity() {
		t.Fatalf("G·F1 != Id: %v", ratmat.Mul(f1Edges[0].W, ratmat.FromInt(f1)))
	}
	// F2 square: both directions between a and S1; F3 square too.
	n := 0
	for _, e := range g.Edges {
		if (e.Src == aIdx && e.Dst == s1Idx) || (e.Src == s1Idx && e.Dst == aIdx) {
			n++
		}
	}
	if n != 4 { // F2 both ways + F3 both ways
		t.Fatalf("a<->S1 edges = %d, want 4", n)
	}
}

func TestBuildVolumesAreRanks(t *testing.T) {
	g, err := Build(affine.PaperExample1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// the two weight-3 edges of the paper: F5 and F8 (3-D identity
	// accesses); everything else has volume 2.
	vol3 := 0
	for _, e := range g.Edges {
		switch e.Volume {
		case 3:
			vol3++
		case 2:
		default:
			t.Fatalf("unexpected volume %d", e.Volume)
		}
	}
	// F5 and F8 are square: two arrows each, so four volume-3 edges.
	if vol3 != 4 {
		t.Fatalf("volume-3 edges = %d, want 4", vol3)
	}
}

func TestBuildSkipsLowRankAndLowDim(t *testing.T) {
	// MatMul at m=2: c, a, b are 2-D, statement depth 3, all accesses
	// flat rank 2 => edges array -> stmt only.
	g, err := Build(affine.MatMul(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(g.Edges))
	}
	for _, e := range g.Edges {
		if g.Vertices[e.Src].Kind != ArrayVertex || g.Vertices[e.Dst].Kind != StmtVertex {
			t.Fatal("flat access must orient array -> statement")
		}
	}
	// At m=3 the arrays are too small (q=2 < 3): no edges at all.
	g3, err := Build(affine.MatMul(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g3.Edges) != 0 {
		t.Fatalf("m=3 edges = %d, want 0", len(g3.Edges))
	}
}

func TestBuildGaussExcludesRankDeficient(t *testing.T) {
	g, err := Build(affine.Gauss(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// a(k,k) access has rank 1 < 2: excluded. The other four accesses
	// (write a(i,j), read a(i,j), a(i,k), a(k,j)) are flat rank 2.
	if got := g.GraphComms(); got != 4 {
		t.Fatalf("graph comms = %d, want 4", got)
	}
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(g.Edges))
	}
}

func TestBuildRejectsBadM(t *testing.T) {
	if _, err := Build(affine.MatMul(), 0); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestEdgesOfComm(t *testing.T) {
	g, err := Build(affine.PaperExample1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Comms {
		es := g.EdgesOfComm(c.ID)
		if !c.InGraph {
			if len(es) != 0 {
				t.Fatalf("comm %d not in graph but has %d edges", c.ID, len(es))
			}
			continue
		}
		q, d := c.Access.F.Rows(), c.Stmt.Depth
		want := 1
		if q == d {
			want = 2
		}
		if len(es) != want {
			t.Fatalf("comm %d (q=%d d=%d): %d edges, want %d", c.ID, q, d, len(es), want)
		}
	}
}

func TestMaximumBranchingOfGraphExample1(t *testing.T) {
	g, err := Build(affine.PaperExample1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := g.MaximumBranchingOfGraph()
	// Expected optimum (see affine.PaperExample1 doc): 5 edges of
	// total weight 12, including one weight-3 edge for the b/S2 pair
	// and the weight-3 edge for c/S3.
	if len(sel) != 5 {
		t.Fatalf("branching edges = %d, want 5: %v", len(sel), sel)
	}
	w := 0
	distinct := map[int]bool{}
	for _, e := range sel {
		w += e.Volume
		distinct[e.CommID] = true
	}
	if w != 12 {
		t.Fatalf("branching weight = %d, want 12", w)
	}
	if len(distinct) != 5 {
		t.Fatal("branching uses both arrows of a square access")
	}
	// both weight-3 communications (F5 and F8) must be zeroed out
	n3 := 0
	for _, e := range sel {
		if e.Volume == 3 {
			n3++
		}
	}
	if n3 != 2 {
		t.Fatalf("weight-3 edges in branching = %d, want 2", n3)
	}
}

func TestGraphString(t *testing.T) {
	g, _ := Build(affine.MatMul(), 2)
	s := g.String()
	if len(s) == 0 {
		t.Fatal("empty string")
	}
}
