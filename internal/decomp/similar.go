package decomp

import "repro/internal/intmat"

// SimilarAtMost searches for a unimodular matrix M such that the
// conjugate M·T·M⁻¹ decomposes into at most maxLen elementary
// matrices (paper Section 5.2.2: alignment matrices are only fixed up
// to a left unimodular factor, so we may conjugate the data-flow
// matrix before decomposing it).
//
// It first applies the paper's sufficient condition — when c | a−1,
// the basis change e1' = ((a−1)/c·…) makes T similar to a product
// L·U — and otherwise searches conjugators with entries bounded by
// `bound`. It returns the conjugator, the factorization of M·T·M⁻¹,
// and whether the search succeeded.
func SimilarAtMost(t *intmat.Mat, maxLen int, bound int64) (conj *intmat.Mat, factors []*intmat.Mat, ok bool) {
	if t.Rows() != 2 || t.Cols() != 2 || t.Det() != 1 {
		panic("decomp: SimilarAtMost needs a 2x2 determinant-1 matrix")
	}
	// Identity conjugator first: maybe T already decomposes. The
	// paper's sufficient condition (c | a−1 ⇒ T similar to L·U) is
	// subsumed by the bounded search below, which also finds
	// conjugators the closed form misses; the paper proves a search
	// can fail for infinitely many T (genus > 2 discriminants), so ok
	// can legitimately be false.
	if fs, found := DecomposeAtMost(t, maxLen); found {
		return intmat.Identity(2), fs, true
	}
	gen := enumerateUnimodular(bound)
	for _, m := range gen {
		mi := intmat.InverseUnimodular(m)
		conj := intmat.MulAll(m, t, mi)
		if fs, found := DecomposeAtMost2IfDet1(conj, maxLen); found {
			return m, fs, true
		}
	}
	return nil, nil, false
}

// DecomposeAtMost2IfDet1 is DecomposeAtMost tolerant of det −1 inputs
// (conjugation preserves det, so this only guards internal misuse).
func DecomposeAtMost2IfDet1(t *intmat.Mat, maxLen int) ([]*intmat.Mat, bool) {
	if t.Det() != 1 {
		return nil, false
	}
	return DecomposeAtMost(t, maxLen)
}

// enumerateUnimodular returns all 2×2 unimodular matrices with
// entries in [−bound, bound] (deterministic order).
func enumerateUnimodular(bound int64) []*intmat.Mat {
	var out []*intmat.Mat
	for a := -bound; a <= bound; a++ {
		for b := -bound; b <= bound; b++ {
			for c := -bound; c <= bound; c++ {
				for d := -bound; d <= bound; d++ {
					det := a*d - b*c
					if det == 1 || det == -1 {
						out = append(out, intmat.New(2, 2, a, b, c, d))
					}
				}
			}
		}
	}
	return out
}

// DecomposeUnirow factors a non-singular n×n integer matrix T into
// "unirow" matrices — identity except for one row — the
// generalization of Section 5.3 for arbitrary determinants.
//
// The algorithm runs in two phases: Euclidean row additions (each an
// elementary, hence unirow, factor) reduce T to an upper-triangular
// matrix H without row swaps; H then factors exactly into n unirow
// matrices F_n·…·F_1, where F_k is the identity except row k−1 holds
// row k−1 of H. It succeeds for every non-singular integer matrix and
// the product of the returned factors is verified to equal T.
func DecomposeUnirow(t *intmat.Mat) ([]*intmat.Mat, bool) {
	n := t.Rows()
	if !t.IsSquare() || n == 0 || t.Det() == 0 {
		return nil, false
	}
	w := t.Clone()
	var inv []*intmat.Mat // inverses of applied row operations, in order
	addRow := func(dst, src int, k int64) {
		// w: row dst += k·row src; record the inverse factor
		for j := 0; j < n; j++ {
			w.Set(dst, j, w.At(dst, j)+k*w.At(src, j))
		}
		f := intmat.Identity(n)
		f.Set(dst, src, -k)
		inv = append(inv, f)
	}
	// pseudoSwap exchanges rows i and j (up to a sign flip of one of
	// them) using three row additions, each an elementary factor:
	// (rᵢ, rⱼ) → (rⱼ, −rᵢ).
	pseudoSwap := func(i, j int) {
		addRow(i, j, 1)
		addRow(j, i, -1)
		addRow(i, j, 1)
	}
	for col := 0; col < n; col++ {
		// classic Euclid with pivoting: bring the smallest-magnitude
		// nonzero to the diagonal, reduce everything below, repeat.
		for {
			best := -1
			for r := col; r < n; r++ {
				if w.At(r, col) == 0 {
					continue
				}
				if best < 0 || abs64(w.At(r, col)) < abs64(w.At(best, col)) {
					best = r
				}
			}
			if best < 0 {
				return nil, false // column all zero: singular (defensive)
			}
			if best != col {
				pseudoSwap(col, best)
			}
			p := w.At(col, col)
			allZero := true
			for r := col + 1; r < n; r++ {
				v := w.At(r, col)
				if v == 0 {
					continue
				}
				addRow(r, col, -v/p) // |remainder| < |p|
				if w.At(r, col) != 0 {
					allZero = false
				}
			}
			if allZero {
				break
			}
		}
	}
	// w is now upper triangular: factor it as F_n·…·F_1 with F_k the
	// identity except row k−1 = row k−1 of w.
	var tri []*intmat.Mat
	for k := n - 1; k >= 0; k-- {
		f := intmat.Identity(n)
		for j := 0; j < n; j++ {
			f.Set(k, j, w.At(k, j))
		}
		if !f.IsIdentity() {
			tri = append(tri, f)
		}
	}
	factors := append(inv, tri...)
	if len(factors) == 0 {
		factors = []*intmat.Mat{intmat.Identity(n)}
	}
	if !intmat.MulAll(factors...).Equal(t) {
		return nil, false
	}
	return factors, true
}

// IsUnirow reports whether m is the identity except for (at most) one
// row.
func IsUnirow(m *intmat.Mat) bool {
	if !m.IsSquare() {
		return false
	}
	special := -1
	for i := 0; i < m.Rows(); i++ {
		rowIsID := true
		for j := 0; j < m.Cols(); j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				rowIsID = false
				break
			}
		}
		if !rowIsID {
			if special >= 0 {
				return false
			}
			special = i
		}
	}
	return true
}
