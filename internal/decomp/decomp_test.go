package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/intmat"
)

func TestElementaryConstructors(t *testing.T) {
	if !L(3).Equal(intmat.New(2, 2, 1, 0, 3, 1)) {
		t.Fatal("L wrong")
	}
	if !U(-2).Equal(intmat.New(2, 2, 1, -2, 0, 1)) {
		t.Fatal("U wrong")
	}
	if !IsElementary(L(5)) || !IsElementary(U(1)) {
		t.Fatal("IsElementary false negative")
	}
	if IsElementary(intmat.Identity(2)) {
		t.Fatal("identity is not elementary (no off-diagonal entry)")
	}
	if IsElementary(intmat.New(2, 2, 1, 1, 1, 1)) {
		t.Fatal("two off-diagonals accepted")
	}
	if IsElementary(intmat.New(2, 2, 2, 1, 0, 1)) {
		t.Fatal("non-unit diagonal accepted")
	}
	big := intmat.Identity(4)
	big.Set(2, 0, 7)
	if !IsElementary(big) {
		t.Fatal("4x4 elementary rejected")
	}
}

func TestPaperTable2Matrix(t *testing.T) {
	// Section 5.1: T = [[1,2],[3,7]] decomposes as L·U with
	// L = [[1,0],[3,1]], U = [[1,2],[0,1]].
	T := intmat.New(2, 2, 1, 2, 3, 7)
	fs, ok := DecomposeAtMost(T, 2)
	if !ok {
		t.Fatal("T must decompose into 2 factors")
	}
	if len(fs) != 2 {
		t.Fatalf("got %d factors", len(fs))
	}
	if !fs[0].Equal(L(3)) || !fs[1].Equal(U(2)) {
		t.Fatalf("factors = %v", fs)
	}
	if MinimalLength(T) != 2 {
		t.Fatalf("minimal length = %d, want 2", MinimalLength(T))
	}
}

func TestLengthConditions(t *testing.T) {
	cases := []struct {
		m    *intmat.Mat
		want int
	}{
		{intmat.Identity(2), 0},
		{U(5), 1},
		{L(-4), 1},
		{intmat.New(2, 2, 1, 2, 3, 7), 2},    // a = 1
		{intmat.New(2, 2, 7, 3, 2, 1), 2},    // d = 1
		{intmat.New(2, 2, 3, 2, 7, 5), 3},    // b=2 | d−1=4 ⇒ length 3 (a≠1, d≠1)
		{intmat.New(2, 2, 5, 2, 2, 1), 2},    // d = 1
		{intmat.New(2, 2, 5, 3, 3, 2), 4},    // c=3 ∤ a−1=4, b=3 ∤ d−1=1 ⇒ length 4
		{intmat.New(2, 2, 2, 1, 1, 1), 2},    // d = 1
		{intmat.New(2, 2, 0, -1, 1, 0), 3},   // rotation S: a=0,d=0
		{intmat.New(2, 2, -1, 0, 0, -1), -1}, // −Id needs > 4 (or 4?) — verified below
	}
	for i, c := range cases {
		got := MinimalLength(c.m)
		if c.want == -1 {
			// just require consistency: if a length is reported, the
			// factors must multiply back (verified internally) — here
			// assert only that it is not < 3.
			if got >= 0 && got < 3 {
				t.Errorf("case %d: −Id minimal length %d < 3", i, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("case %d (%v): minimal length %d, want %d", i, c.m, got, c.want)
		}
	}
}

func TestDecomposeExhaustiveSmall(t *testing.T) {
	// Paper Section 5.2.1: every 2×2 det-1 matrix with |entries| ≤ 5
	// decomposes into at most 4 elementary matrices (the paper states
	// the bound for a larger coefficient range; 5 keeps the test fast).
	// We verify both existence and that the product reconstructs T.
	count := 0
	for a := int64(-5); a <= 5; a++ {
		for b := int64(-5); b <= 5; b++ {
			for c := int64(-5); c <= 5; c++ {
				for d := int64(-5); d <= 5; d++ {
					if a*d-b*c != 1 {
						continue
					}
					T := intmat.New(2, 2, a, b, c, d)
					if T.Equal(intmat.New(2, 2, -1, 0, 0, -1)) {
						continue // −Id: the known >4 exception shape
					}
					fs, ok := DecomposeAtMost(T, 4)
					if !ok {
						// the paper's claim tolerates rare exceptions
						// only for ±Id-like shapes; everything else
						// with small coefficients must decompose.
						if a == -1 && d == -1 && (b == 0 || c == 0) {
							continue
						}
						t.Fatalf("no ≤4 factorization for %v", T)
					}
					if len(fs) > 4 {
						t.Fatalf("%d factors for %v", len(fs), T)
					}
					count++
				}
			}
		}
	}
	if count < 250 {
		t.Fatalf("only %d matrices decomposed; enumeration bug?", count)
	}
}

func TestDecomposeEuclidAlwaysWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		T := intmat.RandUnimodular(rng, 2, 12)
		if T.Det() != 1 {
			// make det +1 by swapping rows via multiplication with a
			// det −1 fix: skip instead (RandUnimodular may give −1)
			continue
		}
		fs := DecomposeEuclid(T) // panics internally if wrong
		for _, f := range fs {
			if !IsElementary(f) {
				t.Fatalf("non-elementary factor %v for %v", f, T)
			}
		}
	}
}

func TestDecomposeShortestPreferred(t *testing.T) {
	T := intmat.New(2, 2, 1, 2, 3, 7)
	fs := Decompose(T)
	if len(fs) != 2 {
		t.Fatalf("Decompose returned %d factors, want 2", len(fs))
	}
}

func TestDecomposeEuclidMinusIdentity(t *testing.T) {
	T := intmat.New(2, 2, -1, 0, 0, -1)
	fs := DecomposeEuclid(T)
	if !intmat.MulAll(fs...).Equal(T) {
		t.Fatal("product mismatch")
	}
}

func TestSimilarAtMost(t *testing.T) {
	// T = [[3,2],[7,5]] has minimal direct length 3; conjugation can
	// reach 2 (the paper's Example-1 walkthrough does exactly this).
	T := intmat.New(2, 2, 3, 2, 7, 5)
	conj, fs, ok := SimilarAtMost(T, 2, 2)
	if !ok {
		t.Fatal("no conjugate LU form found")
	}
	mi := intmat.InverseUnimodular(conj)
	if !intmat.MulAll(conj, T, mi).Equal(intmat.MulAll(fs...)) {
		t.Fatal("conjugate factorization inconsistent")
	}
	if len(fs) > 2 {
		t.Fatalf("%d factors after conjugation", len(fs))
	}
}

func TestSimilarIdentityConjugatorWhenEasy(t *testing.T) {
	T := intmat.New(2, 2, 1, 2, 3, 7)
	conj, fs, ok := SimilarAtMost(T, 2, 1)
	if !ok || !conj.IsIdentity() || len(fs) != 2 {
		t.Fatalf("conj=%v fs=%v ok=%v", conj, fs, ok)
	}
}

func TestDecomposeUnirow2x2(t *testing.T) {
	// arbitrary determinant: T = [[2,1],[3,2]] (det 1) and
	// T = [[2,0],[0,3]] (det 6).
	for _, T := range []*intmat.Mat{
		intmat.New(2, 2, 2, 1, 3, 2),
		intmat.New(2, 2, 2, 0, 0, 3),
		intmat.New(2, 2, 1, 0, 4, 2),
	} {
		fs, ok := DecomposeUnirow(T)
		if !ok {
			t.Fatalf("no unirow factorization for %v", T)
		}
		if !intmat.MulAll(fs...).Equal(T) {
			t.Fatalf("product mismatch for %v: %v", T, fs)
		}
		for _, f := range fs {
			if !IsUnirow(f) {
				t.Fatalf("factor %v not unirow", f)
			}
		}
	}
}

func TestDecomposeUnirow3x3(t *testing.T) {
	T := intmat.New(3, 3,
		1, 2, 0,
		2, 5, 1,
		0, 1, 3)
	fs, ok := DecomposeUnirow(T)
	if !ok {
		t.Fatalf("no unirow factorization for %v", T)
	}
	if !intmat.MulAll(fs...).Equal(T) {
		t.Fatal("product mismatch")
	}
	for _, f := range fs {
		if !IsUnirow(f) {
			t.Fatalf("factor %v not unirow", f)
		}
	}
	// elimination (≤ a few ops) + n triangular factors stays small
	if len(fs) > 9 {
		t.Fatalf("%d factors, want a small number", len(fs))
	}
}

func TestDecomposeUnirowSingularRejected(t *testing.T) {
	if _, ok := DecomposeUnirow(intmat.New(2, 2, 1, 2, 2, 4)); ok {
		t.Fatal("singular matrix factorized")
	}
}

func TestIsUnirow(t *testing.T) {
	if !IsUnirow(intmat.Identity(3)) {
		t.Fatal("identity is unirow (zero special rows)")
	}
	m := intmat.Identity(3)
	m.Set(1, 0, 2)
	m.Set(1, 1, 5)
	if !IsUnirow(m) {
		t.Fatal("one special row rejected")
	}
	m.Set(2, 0, 1)
	if IsUnirow(m) {
		t.Fatal("two special rows accepted")
	}
}

func TestDecompose4StartCases(t *testing.T) {
	// construct genuine length-4 products and ensure they decompose
	// back into ≤ 4 factors.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		fs := []*intmat.Mat{
			U(int64(rng.Intn(9) - 4)),
			L(int64(rng.Intn(9) - 4)),
			U(int64(rng.Intn(9) - 4)),
			L(int64(rng.Intn(9) - 4)),
		}
		T := intmat.MulAll(fs...)
		got, ok := DecomposeAtMost(T, 4)
		if !ok {
			t.Fatalf("trial %d: product of 4 elementaries %v not decomposable ≤4", trial, T)
		}
		if !intmat.MulAll(got...).Equal(T) {
			t.Fatal("product mismatch")
		}
	}
}
