// Package decomp decomposes general affine communications into
// elementary ones (paper Section 5). A data-flow matrix T (the map
// from sending processor to receiving processor, up to a translation)
// is rewritten as a short product of elementary matrices
//
//	L(l) = [[1,0],[l,1]]   (horizontal communication)
//	U(k) = [[1,k],[0,1]]   (vertical communication)
//
// each of which moves data along a single axis of the virtual
// processor grid and therefore runs with far fewer link conflicts on
// a mesh machine than the original T.
//
// For 2×2 matrices of determinant 1 the package implements the
// paper's exact divisibility characterizations of decomposability
// into at most 2, 3 and 4 factors (Section 5.2.1), the similarity
// variant M·T·M⁻¹ (Section 5.2.2), a Euclid-style fallback that
// factors any SL2(Z) matrix, and the unirow/unicolumn factorization
// for arbitrary determinants and sizes (Section 5.3).
package decomp

import (
	"fmt"

	"repro/internal/intmat"
)

// L returns the elementary lower matrix [[1,0],[l,1]].
func L(l int64) *intmat.Mat { return intmat.New(2, 2, 1, 0, l, 1) }

// U returns the elementary upper matrix [[1,k],[0,1]].
func U(k int64) *intmat.Mat { return intmat.New(2, 2, 1, k, 0, 1) }

// IsElementary reports whether m is an n×n elementary matrix: the
// identity except for a single non-zero off-diagonal entry (the
// paper's L_i / U_i shape).
func IsElementary(m *intmat.Mat) bool {
	if !m.IsSquare() {
		return false
	}
	off := 0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			switch {
			case i == j:
				if m.At(i, j) != 1 {
					return false
				}
			case m.At(i, j) != 0:
				off++
			}
		}
	}
	return off == 1
}

// abs2x2 destructures a 2×2 matrix.
func parts(t *intmat.Mat) (a, b, c, d int64) {
	return t.At(0, 0), t.At(0, 1), t.At(1, 0), t.At(1, 1)
}

// divides reports x | y, with the convention 0 | y ⇔ y = 0.
func divides(x, y int64) bool {
	if x == 0 {
		return y == 0
	}
	return y%x == 0
}

// verify multiplies the factors and panics unless they equal t; the
// decomposition conditions are exact, so a mismatch is a bug.
func verify(t *intmat.Mat, fs []*intmat.Mat) []*intmat.Mat {
	if len(fs) == 0 {
		if !t.IsIdentity() {
			panic("decomp: empty factorization of non-identity")
		}
		return fs
	}
	if !intmat.MulAll(fs...).Equal(t) {
		panic(fmt.Sprintf("decomp: factorization of %v does not multiply back: %v", t, fs))
	}
	return fs
}

// DecomposeAtMost returns a factorization of t (2×2, det 1) into at
// most maxLen elementary matrices if one exists, trying shorter
// lengths first. ok is false if no factorization of length ≤ maxLen
// exists. maxLen is capped at 4 (the paper's practical bound: every
// small-coefficient SL2(Z) matrix needs at most 4).
func DecomposeAtMost(t *intmat.Mat, maxLen int) ([]*intmat.Mat, bool) {
	if t.Rows() != 2 || t.Cols() != 2 || t.Det() != 1 {
		panic("decomp: DecomposeAtMost needs a 2x2 determinant-1 matrix")
	}
	if maxLen > 4 {
		maxLen = 4
	}
	for n := 0; n <= maxLen; n++ {
		if fs, ok := decomposeExact(t, n); ok {
			return verify(t, fs), true
		}
	}
	return nil, false
}

// MinimalLength returns the minimal number of elementary factors for
// t (2×2, det 1), or -1 when more than 4 are needed.
func MinimalLength(t *intmat.Mat) int {
	for n := 0; n <= 4; n++ {
		if _, ok := decomposeExact(t, n); ok {
			return n
		}
	}
	return -1
}

// decomposeExact builds a factorization of exactly ≤ the given length
// (length n means "n but not fewer" is NOT guaranteed here; callers
// iterate n upward so the first hit is minimal).
func decomposeExact(t *intmat.Mat, n int) ([]*intmat.Mat, bool) {
	a, b, c, d := parts(t)
	switch n {
	case 0:
		return nil, t.IsIdentity()
	case 1:
		if a == 1 && d == 1 && c == 0 {
			return []*intmat.Mat{U(b)}, true
		}
		if a == 1 && d == 1 && b == 0 {
			return []*intmat.Mat{L(c)}, true
		}
		return nil, false
	case 2:
		// LU ⇔ a = 1;  UL ⇔ d = 1  (Section 5.2.1)
		if a == 1 {
			return []*intmat.Mat{L(c), U(b)}, true
		}
		if d == 1 {
			return []*intmat.Mat{U(b), L(c)}, true
		}
		return nil, false
	case 3:
		// U·L·U ⇔ c | a−1;  L·U·L ⇔ b | d−1
		if c != 0 && divides(c, a-1) {
			k1 := (a - 1) / c
			k2 := (d - 1) / c // c | d−1 follows from det = 1
			return []*intmat.Mat{U(k1), L(c), U(k2)}, true
		}
		if b != 0 && divides(b, d-1) {
			l1 := (d - 1) / b
			l2 := (a - 1) / b
			return []*intmat.Mat{L(l1), U(b), L(l2)}, true
		}
		return nil, false
	case 4:
		if fs, ok := decompose4UStart(a, b, c, d); ok {
			return fs, true
		}
		// L-start via transposition: Tᵗ = U-start with factors
		// transposed in reverse order.
		if fs, ok := decompose4UStart(a, c, b, d); ok {
			rev := make([]*intmat.Mat, len(fs))
			for i, f := range fs {
				rev[len(fs)-1-i] = f.Transpose()
			}
			return rev, true
		}
		return nil, false
	}
	return nil, false
}

// decompose4UStart solves T = U(k1)·L(l1)·U(k2)·L(l2) for
// T = [[a,b],[c,d]], det 1. Expanding the product gives
//
//	d = l1·k2 + 1,  b = k2 + k1·d,  c = l1 + l2·d,
//
// so k2 ranges over the divisors of d−1 and k1, l2 follow by
// divisibility by d (the paper's ∃β: (b+βd) | (d−1) condition read
// constructively).
func decompose4UStart(a, b, c, d int64) ([]*intmat.Mat, bool) {
	try := func(k1, l1, k2, l2 int64) ([]*intmat.Mat, bool) {
		fs := []*intmat.Mat{U(k1), L(l1), U(k2), L(l2)}
		if intmat.MulAll(fs...).Equal(intmat.New(2, 2, a, b, c, d)) {
			return fs, true
		}
		return nil, false
	}
	switch d {
	case 1:
		// handled at shorter lengths, but keep completeness: pad UL
		return try(b, c, 0, 0)
	case 0:
		// det ⇒ b·c = −1: k2 = b, l1 = c, then a−1 = b·l2 + k1(c+l2).
		if b*c != -1 {
			return nil, false
		}
		// choose k1 = 0, l2 = (a−1)/b (b = ±1 divides everything)
		return try(0, c, b, (a-1)/b)
	}
	for _, k2 := range divisorsOf(d - 1) {
		l1 := (d - 1) / k2
		if !divides(d, b-k2) || !divides(d, c-l1) {
			continue
		}
		k1 := (b - k2) / d
		l2 := (c - l1) / d
		if fs, ok := try(k1, l1, k2, l2); ok {
			return fs, true
		}
	}
	// d−1 == 0 is d == 1, already handled; d−1 may also be 0 divisors
	// only; as a final attempt let k2 = b mod small shifts (β search).
	return nil, false
}

// divisorsOf returns all integer divisors (positive and negative) of
// n ≠ 0; for n == 0 it returns a small symmetric probe set, since
// every integer divides 0.
func divisorsOf(n int64) []int64 {
	if n == 0 {
		out := []int64{}
		for k := int64(1); k <= 8; k++ {
			out = append(out, k, -k)
		}
		return out
	}
	if n < 0 {
		n = -n
	}
	var out []int64
	for k := int64(1); k*k <= n; k++ {
		if n%k == 0 {
			out = append(out, k, -k)
			if q := n / k; q != k {
				out = append(out, q, -q)
			}
		}
	}
	return out
}

// DecomposeEuclid factors any 2×2 determinant-1 matrix into
// elementary matrices using the Euclidean algorithm on the first
// column; the result can be longer than 4 factors but always exists.
// Adjacent factors of the same kind are merged.
func DecomposeEuclid(t *intmat.Mat) []*intmat.Mat {
	if t.Rows() != 2 || t.Cols() != 2 || t.Det() != 1 {
		panic("decomp: DecomposeEuclid needs a 2x2 determinant-1 matrix")
	}
	w := t.Clone()
	var left []*intmat.Mat // inverses of the applied row operations
	// Euclid on the first column (a, c): drive c to 0. Each pass
	// strictly reduces max(|a|, |c|) (after at most one preparatory
	// step when a = 0), so the loop terminates.
	for w.At(1, 0) != 0 {
		a, c := w.At(0, 0), w.At(1, 0)
		switch {
		case a == 0:
			// row1 += row2 so the next pass can reduce c against a
			w = intmat.Mul(U(1), w)
			left = append(left, U(-1))
		case c%a == 0:
			q := c / a
			w = intmat.Mul(L(-q), w) // row2 -= q·row1: c → 0
			left = append(left, L(q))
		case abs64(c) >= abs64(a):
			q := c / a
			w = intmat.Mul(L(-q), w) // c → c mod a, strictly smaller
			left = append(left, L(q))
		default:
			q := a / c
			w = intmat.Mul(U(-q), w) // a → a mod c, strictly smaller
			left = append(left, U(q))
		}
	}
	// now w = [[e, x],[0, f]] with e·f = 1
	if w.At(0, 0) == -1 {
		// [[-1,x],[0,-1]] = S·S·U(-x) with S = U(1)L(-1)U(1)
		for _, f := range []*intmat.Mat{U(1), L(-1), U(1), U(1), L(-1), U(1)} {
			left = append(left, f)
		}
		w = intmat.Mul(intmat.New(2, 2, -1, 0, 0, -1), w)
	}
	if x := w.At(0, 1); x != 0 {
		left = append(left, U(x))
	}
	out := compress(left)
	return verify(t, out)
}

// compress merges adjacent factors of the same elementary kind and
// drops identities.
func compress(fs []*intmat.Mat) []*intmat.Mat {
	var out []*intmat.Mat
	for _, f := range fs {
		if f.IsIdentity() {
			continue
		}
		if n := len(out); n > 0 {
			p := out[n-1]
			if p.At(1, 0) == 0 && f.At(1, 0) == 0 { // both U
				out[n-1] = U(p.At(0, 1) + f.At(0, 1))
				if out[n-1].IsIdentity() {
					out = out[:n-1]
				}
				continue
			}
			if p.At(0, 1) == 0 && f.At(0, 1) == 0 { // both L
				out[n-1] = L(p.At(1, 0) + f.At(1, 0))
				if out[n-1].IsIdentity() {
					out = out[:n-1]
				}
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// Decompose returns the shortest factorization the package can find:
// the exact ≤4 search first, then the Euclid fallback.
func Decompose(t *intmat.Mat) []*intmat.Mat {
	if fs, ok := DecomposeAtMost(t, 4); ok {
		return fs
	}
	return DecomposeEuclid(t)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
