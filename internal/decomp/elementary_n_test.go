package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/intmat"
)

func TestElementaryN(t *testing.T) {
	m := ElementaryN(3, 2, 0, 5)
	if !IsElementary(m) || m.At(2, 0) != 5 {
		t.Fatalf("ElementaryN = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("i == j accepted")
		}
	}()
	ElementaryN(3, 1, 1, 2)
}

// randSLn builds a random n×n determinant-1 matrix as a product of
// random elementary matrices.
func randSLn(rng *rand.Rand, n, ops int) *intmat.Mat {
	m := intmat.Identity(n)
	for k := 0; k < ops; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		m = intmat.Mul(m, ElementaryN(n, i, j, int64(rng.Intn(5)-2)))
	}
	return m
}

func TestDecomposeElementaryN2x2MatchesEuclid(t *testing.T) {
	T := intmat.New(2, 2, 1, 2, 3, 7)
	fs := DecomposeElementaryN(T)
	if !intmat.MulAll(fs...).Equal(T) {
		t.Fatal("product mismatch")
	}
	for _, f := range fs {
		if !IsElementary(f) {
			t.Fatalf("factor %v not elementary", f)
		}
	}
}

func TestDecomposeElementaryN3x3(t *testing.T) {
	// the Cray-T3D case the paper mentions: a 3-D data-flow matrix
	T := intmat.New(3, 3,
		1, 2, 1,
		2, 5, 3,
		1, 3, 3)
	if T.Det() != 1 {
		t.Fatalf("det = %d", T.Det())
	}
	fs := DecomposeElementaryN(T)
	if !intmat.MulAll(fs...).Equal(T) {
		t.Fatal("product mismatch")
	}
	for _, f := range fs {
		if !IsElementary(f) {
			t.Fatalf("factor %v not elementary", f)
		}
	}
}

func TestDecomposeElementaryNIdentity(t *testing.T) {
	if fs := DecomposeElementaryN(intmat.Identity(4)); len(fs) != 0 {
		t.Fatalf("identity needs %d factors", len(fs))
	}
}

func TestDecomposeElementaryNNegativePivots(t *testing.T) {
	// a matrix whose triangularization passes through −1 pivots
	T := intmat.New(2, 2, 0, -1, 1, 0) // rotation, det 1
	fs := DecomposeElementaryN(T)
	if !intmat.MulAll(fs...).Equal(T) {
		t.Fatal("product mismatch")
	}
	minus := intmat.New(3, 3,
		-1, 0, 0,
		0, -1, 0,
		0, 0, 1)
	fs = DecomposeElementaryN(minus)
	if !intmat.MulAll(fs...).Equal(minus) {
		t.Fatal("product mismatch for diag(-1,-1,1)")
	}
}

func TestDecomposeElementaryNRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3) // 2..4
		T := randSLn(rng, n, 6)
		fs := DecomposeElementaryN(T)
		if len(fs) == 0 {
			if !T.IsIdentity() {
				t.Fatalf("trial %d: empty factorization of %v", trial, T)
			}
			continue
		}
		if !intmat.MulAll(fs...).Equal(T) {
			t.Fatalf("trial %d: product mismatch for %v", trial, T)
		}
		for _, f := range fs {
			if !IsElementary(f) {
				t.Fatalf("trial %d: non-elementary factor %v", trial, f)
			}
		}
	}
}

func TestDecomposeElementaryNRejectsDetMinus1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("det -1 accepted")
		}
	}()
	DecomposeElementaryN(intmat.New(2, 2, 0, 1, 1, 0))
}
