package decomp

import "repro/internal/intmat"

// ElementaryN returns the n×n elementary matrix with entry k at
// position (i, j), i ≠ j: the identity plus one off-diagonal entry —
// a communication parallel to axis i whose stride depends on
// coordinate j (the paper's L_i/U_i shape for arbitrary dimension,
// Section 5.1: "we would have similar elementary matrices for larger
// dimensions").
func ElementaryN(n, i, j int, k int64) *intmat.Mat {
	if i == j {
		panic("decomp: ElementaryN needs i != j")
	}
	m := intmat.Identity(n)
	m.Set(i, j, k)
	return m
}

// DecomposeElementaryN factors any n×n integer matrix of determinant
// 1 into elementary matrices (one off-diagonal entry each): the
// higher-dimensional generalization the paper sketches for 3-D
// machines such as the Cray T3D.
//
// The construction is Gaussian elimination over SL_n(Z):
//
//  1. each column is gcd-chased to a ±1 pivot with zeros below it
//     (the gcd of a column divides the determinant, so it is 1);
//     row swaps are emulated by three row additions, which realize
//     (rᵢ, rⱼ) → (rⱼ, −rᵢ);
//  2. −1 pivots come in pairs (the pivot product is det = 1); each
//     pair is flipped by applying the pseudo-swap twice, which
//     negates both rows;
//  3. the upper triangle is cleared by row additions.
//
// Every operation is elementary, so t equals the product of the
// returned factors (verified). Lengths are not minimized; use
// DecomposeAtMost for the exact 2×2 bounds of Section 5.2.
func DecomposeElementaryN(t *intmat.Mat) []*intmat.Mat {
	n := t.Rows()
	if !t.IsSquare() || t.Det() != 1 {
		panic("decomp: DecomposeElementaryN needs a square determinant-1 matrix")
	}
	if n == 1 || t.IsIdentity() {
		return nil
	}
	w := t.Clone()
	var inv []*intmat.Mat // inverses of the applied row operations
	addRow := func(dst, src int, k int64) {
		if k == 0 {
			return
		}
		for c := 0; c < n; c++ {
			w.Set(dst, c, w.At(dst, c)+k*w.At(src, c))
		}
		inv = append(inv, ElementaryN(n, dst, src, -k))
	}
	pseudoSwap := func(i, j int) { // (rᵢ, rⱼ) → (rⱼ, −rᵢ)
		addRow(i, j, 1)
		addRow(j, i, -1)
		addRow(i, j, 1)
	}

	// phase 1: upper-triangularize with ±1 pivots
	for col := 0; col < n; col++ {
		for {
			best := -1
			for r := col; r < n; r++ {
				if w.At(r, col) == 0 {
					continue
				}
				if best < 0 || abs64(w.At(r, col)) < abs64(w.At(best, col)) {
					best = r
				}
			}
			if best < 0 {
				panic("decomp: singular input in DecomposeElementaryN")
			}
			if best != col {
				pseudoSwap(col, best)
			}
			p := w.At(col, col)
			done := true
			for r := col + 1; r < n; r++ {
				v := w.At(r, col)
				if v == 0 {
					continue
				}
				addRow(r, col, -v/p)
				if w.At(r, col) != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
	}

	// phase 2: flip −1 pivot pairs
	var negs []int
	for i := 0; i < n; i++ {
		if w.At(i, i) == -1 {
			negs = append(negs, i)
		}
	}
	if len(negs)%2 != 0 {
		panic("decomp: odd number of -1 pivots with det 1")
	}
	for k := 0; k+1 < len(negs); k += 2 {
		i, j := negs[k], negs[k+1]
		pseudoSwap(i, j)
		pseudoSwap(i, j) // twice: negates both rows
	}

	// phase 3: clear the upper triangle (pivots are all +1 now)
	for col := n - 1; col >= 1; col-- {
		for r := col - 1; r >= 0; r-- {
			addRow(r, col, -w.At(r, col))
		}
	}
	if !w.IsIdentity() {
		panic("decomp: reduction did not reach the identity")
	}
	if len(inv) == 0 {
		return nil
	}
	if !intmat.MulAll(inv...).Equal(t) {
		panic("decomp: DecomposeElementaryN product mismatch")
	}
	return inv
}
