package intmat

import (
	"fmt"
	"sync/atomic"
	"time"
)

// KernelCache is a memo store for the expensive kernels of this
// package (Hermite normal forms and integer kernel bases).
// Implementations must be safe for concurrent use; package engine
// provides one. Keys are canonical (operation-prefixed Mat.Key), so
// a hit is always the exact result of the same computation. The
// values stored under the keys are private to this package.
type KernelCache interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

// kernelCache holds the installed cache. An atomic.Value of a boxed
// interface allows lock-free reads on the hot path and tolerates
// concurrent SetKernelCache calls.
var kernelCache atomic.Value // of kernelCacheBox

type kernelCacheBox struct{ c KernelCache }

// SetKernelCache installs c as the memo store consulted by
// HermiteLeft, HermiteRight, InverseUnimodular and KernelBasis; nil
// disables memoization (the default). Results handed to callers are
// deep copies of the cached matrices, so a hit is observationally
// identical to recomputation and callers may freely mutate what they
// receive.
func SetKernelCache(c KernelCache) { kernelCache.Store(kernelCacheBox{c}) }

func getKernelCache() KernelCache {
	if b, ok := kernelCache.Load().(kernelCacheBox); ok {
		return b.c
	}
	return nil
}

// kernelObserver holds the installed cost observer, boxed like
// kernelCache so the hot path reads it lock-free.
var kernelObserver atomic.Value // of kernelObserverBox

type kernelObserverBox struct{ fn func(time.Duration) }

// SetKernelObserver installs fn to receive the wall-clock duration of
// every kernel computation that was NOT served from the memo cache
// (cache misses, and all computations while no cache is installed);
// nil disables observation (the default). fn must be safe for
// concurrent use — kernels compute on every engine worker. Cache hits
// are not reported: the observer attributes compute cost, not lookup
// cost.
func SetKernelObserver(fn func(time.Duration)) { kernelObserver.Store(kernelObserverBox{fn}) }

// timeKernel starts timing one kernel computation and returns the
// stop function reporting it to the installed observer (a no-op
// without one).
func timeKernel() func() {
	b, _ := kernelObserver.Load().(kernelObserverBox)
	if b.fn == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { b.fn(time.Since(t0)) }
}

// matPair is the cached value of a two-matrix kernel result.
type matPair struct{ a, b *Mat }

// memoPair memoizes a kernel returning two matrices under
// op+":"+m.Key(), cloning on both store and load. A cached value of
// the wrong shape (possible only if a persistence layer fed back a
// record under the wrong key) is ignored and recomputed.
func memoPair(op string, m *Mat, compute func(*Mat) (*Mat, *Mat)) (*Mat, *Mat) {
	c := getKernelCache()
	if c == nil {
		stop := timeKernel()
		a, b := compute(m)
		stop()
		return a, b
	}
	key := op + ":" + m.Key()
	if v, ok := c.Get(key); ok {
		if p, ok := v.(matPair); ok {
			return p.a.Clone(), p.b.Clone()
		}
	}
	stop := timeKernel()
	a, b := compute(m)
	stop()
	c.Put(key, matPair{a.Clone(), b.Clone()})
	return a, b
}

// memoOne memoizes a single-matrix kernel.
func memoOne(op string, m *Mat, compute func(*Mat) *Mat) *Mat {
	c := getKernelCache()
	if c == nil {
		stop := timeKernel()
		r := compute(m)
		stop()
		return r
	}
	key := op + ":" + m.Key()
	if v, ok := c.Get(key); ok {
		if r, ok := v.(*Mat); ok {
			return r.Clone()
		}
	}
	stop := timeKernel()
	r := compute(m)
	stop()
	c.Put(key, r.Clone())
	return r
}

// KernelRec is the portable, JSON-serializable form of one kernel
// memo value — a single matrix or a pair — so a disk tier can persist
// the kernel cache (Hermite forms, unimodular inverses, kernel bases)
// under the same op:key scheme the memo hooks use.
type KernelRec struct {
	A Rec  `json:"a"`
	B *Rec `json:"b,omitempty"`
}

// EncodeKernelValue serializes a value produced by the kernel memo
// hooks; ok is false for foreign values (which a persistence layer
// must simply skip).
func EncodeKernelValue(v any) (KernelRec, bool) {
	switch t := v.(type) {
	case *Mat:
		return KernelRec{A: t.Rec()}, true
	case matPair:
		b := t.b.Rec()
		return KernelRec{A: t.a.Rec(), B: &b}, true
	}
	return KernelRec{}, false
}

// DecodeKernelValue rebuilds a kernel memo value from its serialized
// form, validating the matrices on the way in. Unlike plan matrices,
// kernel results may legitimately be empty (a trivial kernel has a
// 0-column basis), so zero dimensions are accepted here.
func DecodeKernelValue(r KernelRec) (any, error) {
	a, err := fromRecAllowEmpty(r.A)
	if err != nil {
		return nil, err
	}
	if r.B == nil {
		return a, nil
	}
	b, err := fromRecAllowEmpty(*r.B)
	if err != nil {
		return nil, err
	}
	return matPair{a: a, b: b}, nil
}

// fromRecAllowEmpty is FromRec minus the positive-dimension
// requirement.
func fromRecAllowEmpty(r Rec) (*Mat, error) {
	if r.R < 0 || r.C < 0 {
		return nil, fmt.Errorf("intmat: invalid record dimensions %d×%d", r.R, r.C)
	}
	if len(r.V) != r.R*r.C {
		return nil, fmt.Errorf("intmat: record %d×%d has %d entries, want %d", r.R, r.C, len(r.V), r.R*r.C)
	}
	return New(r.R, r.C, r.V...), nil
}
