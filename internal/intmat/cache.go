package intmat

import "sync/atomic"

// KernelCache is a memo store for the expensive kernels of this
// package (Hermite normal forms and integer kernel bases).
// Implementations must be safe for concurrent use; package engine
// provides one. Keys are canonical (operation-prefixed Mat.Key), so
// a hit is always the exact result of the same computation. The
// values stored under the keys are private to this package.
type KernelCache interface {
	Get(key string) (any, bool)
	Put(key string, v any)
}

// kernelCache holds the installed cache. An atomic.Value of a boxed
// interface allows lock-free reads on the hot path and tolerates
// concurrent SetKernelCache calls.
var kernelCache atomic.Value // of kernelCacheBox

type kernelCacheBox struct{ c KernelCache }

// SetKernelCache installs c as the memo store consulted by
// HermiteLeft, HermiteRight, InverseUnimodular and KernelBasis; nil
// disables memoization (the default). Results handed to callers are
// deep copies of the cached matrices, so a hit is observationally
// identical to recomputation and callers may freely mutate what they
// receive.
func SetKernelCache(c KernelCache) { kernelCache.Store(kernelCacheBox{c}) }

func getKernelCache() KernelCache {
	if b, ok := kernelCache.Load().(kernelCacheBox); ok {
		return b.c
	}
	return nil
}

// matPair is the cached value of a two-matrix kernel result.
type matPair struct{ a, b *Mat }

// memoPair memoizes a kernel returning two matrices under
// op+":"+m.Key(), cloning on both store and load.
func memoPair(op string, m *Mat, compute func(*Mat) (*Mat, *Mat)) (*Mat, *Mat) {
	c := getKernelCache()
	if c == nil {
		return compute(m)
	}
	key := op + ":" + m.Key()
	if v, ok := c.Get(key); ok {
		p := v.(matPair)
		return p.a.Clone(), p.b.Clone()
	}
	a, b := compute(m)
	c.Put(key, matPair{a.Clone(), b.Clone()})
	return a, b
}

// memoOne memoizes a single-matrix kernel.
func memoOne(op string, m *Mat, compute func(*Mat) *Mat) *Mat {
	c := getKernelCache()
	if c == nil {
		return compute(m)
	}
	key := op + ":" + m.Key()
	if v, ok := c.Get(key); ok {
		return v.(*Mat).Clone()
	}
	r := compute(m)
	c.Put(key, r.Clone())
	return r
}
