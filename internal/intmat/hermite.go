package intmat

import "math/big"

// reduction holds the outcome of an integer row reduction of a matrix
// A: H = U·A = Q⁻¹·A is in row Hermite normal form (upper echelon,
// positive pivots, entries above each pivot reduced into [0, pivot)),
// Q and U are mutually inverse unimodular matrices with A = Q·H.
type reduction struct {
	H, Q, U [][]*big.Int
	rank    int
	pivots  []int // pivot column of each of the first rank rows
}

func bigIdentity(n int) [][]*big.Int {
	id := make([][]*big.Int, n)
	for i := range id {
		id[i] = make([]*big.Int, n)
		for j := range id[i] {
			if i == j {
				id[i][j] = big.NewInt(1)
			} else {
				id[i][j] = big.NewInt(0)
			}
		}
	}
	return id
}

// rowReduce computes the row Hermite normal form of m with full
// transformation bookkeeping.
func rowReduce(m *Mat) reduction {
	rows, cols := m.rows, m.cols
	W := m.toBig()
	Q := bigIdentity(rows)
	U := bigIdentity(rows)

	swap := func(i, j int) {
		if i == j {
			return
		}
		W[i], W[j] = W[j], W[i]
		U[i], U[j] = U[j], U[i]
		for r := 0; r < rows; r++ {
			Q[r][i], Q[r][j] = Q[r][j], Q[r][i]
		}
	}
	// addRow: row j += k * row i  (on W and U); Q col i -= k * col j.
	addRow := func(j, i int, k *big.Int) {
		if k.Sign() == 0 {
			return
		}
		t := new(big.Int)
		for c := 0; c < cols; c++ {
			W[j][c] = new(big.Int).Add(W[j][c], t.Mul(k, W[i][c]))
			t = new(big.Int)
		}
		for c := 0; c < rows; c++ {
			U[j][c] = new(big.Int).Add(U[j][c], t.Mul(k, U[i][c]))
			t = new(big.Int)
		}
		for r := 0; r < rows; r++ {
			Q[r][i] = new(big.Int).Sub(Q[r][i], t.Mul(k, Q[r][j]))
			t = new(big.Int)
		}
	}
	negRow := func(i int) {
		for c := 0; c < cols; c++ {
			W[i][c] = new(big.Int).Neg(W[i][c])
		}
		for c := 0; c < rows; c++ {
			U[i][c] = new(big.Int).Neg(U[i][c])
		}
		for r := 0; r < rows; r++ {
			Q[r][i] = new(big.Int).Neg(Q[r][i])
		}
	}

	rank := 0
	var pivots []int
	for col := 0; col < cols && rank < rows; col++ {
		// Euclidean elimination in column col among rows rank..rows-1.
		for {
			// pick the nonzero entry of smallest absolute value
			best := -1
			for r := rank; r < rows; r++ {
				if W[r][col].Sign() == 0 {
					continue
				}
				if best < 0 || W[r][col].CmpAbs(W[best][col]) < 0 {
					best = r
				}
			}
			if best < 0 {
				break // column is zero below rank
			}
			swap(rank, best)
			done := true
			q := new(big.Int)
			rm := new(big.Int)
			for r := rank + 1; r < rows; r++ {
				if W[r][col].Sign() == 0 {
					continue
				}
				q.QuoRem(W[r][col], W[rank][col], rm)
				addRow(r, rank, new(big.Int).Neg(q))
				if W[r][col].Sign() != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if rank < rows && W[rank][col].Sign() != 0 {
			if W[rank][col].Sign() < 0 {
				negRow(rank)
			}
			// reduce entries above the pivot into [0, pivot)
			q := new(big.Int)
			rm := new(big.Int)
			for r := 0; r < rank; r++ {
				if W[r][col].Sign() == 0 {
					continue
				}
				q.DivMod(W[r][col], W[rank][col], rm)
				addRow(r, rank, new(big.Int).Neg(q))
			}
			pivots = append(pivots, col)
			rank++
		}
	}
	return reduction{H: W, Q: Q, U: U, rank: rank, pivots: pivots}
}

// HermiteLeft returns unimodular Q and the row Hermite normal form H
// of m such that m = Q·H. H is in upper echelon form with positive
// pivots; when m has full column rank d, H = [H₁; 0] with H₁ d×d
// upper triangular — the rectangular Hermite decomposition of the
// paper's appendix (Definition 1, stated there with the lower/upper
// convention mirrored).
func HermiteLeft(m *Mat) (Q, H *Mat) {
	return memoPair("hnfL", m, func(m *Mat) (*Mat, *Mat) {
		red := rowReduce(m)
		return fromBig(red.Q), fromBig(red.H)
	})
}

// HermiteRight returns the column Hermite normal form H and a
// unimodular Q such that m = H·Q. When m has full row rank, H is a
// column echelon (lower triangular) matrix padded with zero columns.
func HermiteRight(m *Mat) (H, Q *Mat) {
	qt, ht := HermiteLeft(m.Transpose())
	return ht.Transpose(), qt.Transpose()
}

// InverseUnimodular returns the exact integer inverse of a unimodular
// matrix, panicking if m is not unimodular.
func InverseUnimodular(m *Mat) *Mat {
	if !m.IsSquare() {
		panic("intmat: InverseUnimodular of non-square matrix")
	}
	return memoOne("inv", m, func(m *Mat) *Mat {
		red := rowReduce(m)
		H := fromBig(red.H)
		if !H.IsIdentity() {
			panic("intmat: InverseUnimodular of non-unimodular matrix " + m.String())
		}
		return fromBig(red.U)
	})
}

// LeftInverseInt returns an integer matrix G with G·F = Id (F of size
// q×d, full column rank d ≤ q) when one exists over the integers, i.e.
// when the Hermite form of F is [Id; 0]. The second result reports
// success. G is the generalized left inverse used as an access-graph
// edge weight in the paper (Remark, Section 2.2.2): any G with
// G·F = Id is admissible, not only the rational pseudo-inverse.
func LeftInverseInt(f *Mat) (*Mat, bool) {
	d := f.cols
	if f.rows < d {
		return nil, false
	}
	red := rowReduce(f)
	if red.rank != d {
		return nil, false
	}
	H := fromBig(red.H)
	for j := 0; j < d; j++ {
		if H.At(j, j) != 1 {
			return nil, false
		}
	}
	U := fromBig(red.U)
	return U.SubRows(seq(d)...), true
}

// RightInverseInt returns an integer G with F·G = Id for a flat
// full-row-rank F, when one exists over the integers.
func RightInverseInt(f *Mat) (*Mat, bool) {
	g, ok := LeftInverseInt(f.Transpose())
	if !ok {
		return nil, false
	}
	return g.Transpose(), true
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
