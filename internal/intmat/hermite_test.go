package intmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHermiteLeftBasic(t *testing.T) {
	m := New(3, 2, 2, 4, 6, 8, 10, 12)
	q, h := HermiteLeft(m)
	if !q.IsUnimodular() {
		t.Fatalf("Q not unimodular: %v (det %d)", q, q.Det())
	}
	if !Mul(q, h).Equal(m) {
		t.Fatalf("Q·H = %v != %v", Mul(q, h), m)
	}
	// upper echelon: entries below each pivot row within pivot col are 0,
	// and zero rows come last.
	if h.At(1, 0) != 0 || h.At(2, 0) != 0 || h.At(2, 1) != 0 {
		t.Fatalf("H not echelon: %v", h)
	}
}

func TestHermiteLeftFullColumnRankShape(t *testing.T) {
	// For full column rank d, H must be [H1; 0] with H1 upper triangular
	// with positive diagonal.
	m := New(3, 2, 0, 1, 1, 0, 1, 1)
	q, h := HermiteLeft(m)
	if !Mul(q, h).Equal(m) {
		t.Fatal("decomposition broken")
	}
	if h.At(0, 0) <= 0 || h.At(1, 1) <= 0 {
		t.Fatalf("pivots not positive: %v", h)
	}
	if h.At(1, 0) != 0 || h.At(2, 0) != 0 || h.At(2, 1) != 0 {
		t.Fatalf("H not [H1;0]: %v", h)
	}
}

func TestHermiteRight(t *testing.T) {
	m := New(2, 3, 2, 4, 4, 6, 6, 12)
	h, q := HermiteRight(m)
	if !q.IsUnimodular() {
		t.Fatalf("Q not unimodular: %v", q)
	}
	if !Mul(h, q).Equal(m) {
		t.Fatalf("H·Q = %v != %v", Mul(h, q), m)
	}
	// column echelon: above-diagonal (j > i) entries of H are zero
	if h.At(0, 1) != 0 || h.At(0, 2) != 0 || h.At(1, 2) != 0 {
		t.Fatalf("H not lower echelon: %v", h)
	}
}

func TestHermiteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(4)
		cols := 1 + r.Intn(4)
		m := RandMat(rng, rows, cols, 6)
		q, h := HermiteLeft(m)
		if !q.IsUnimodular() || !Mul(q, h).Equal(m) {
			return false
		}
		// echelon shape: pivot columns strictly increase
		last := -1
		for i := 0; i < h.Rows(); i++ {
			p := -1
			for j := 0; j < h.Cols(); j++ {
				if h.At(i, j) != 0 {
					p = j
					break
				}
			}
			if p == -1 {
				continue
			}
			if p <= last {
				return false
			}
			last = p
		}
		return h.Rank() == m.Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseUnimodular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		u := RandUnimodular(rng, n, 8)
		inv := InverseUnimodular(u)
		if !Mul(u, inv).IsIdentity() || !Mul(inv, u).IsIdentity() {
			t.Fatalf("bad inverse: u=%v inv=%v", u, inv)
		}
	}
}

func TestInverseUnimodularPanicsOnSingular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InverseUnimodular(New(2, 2, 2, 0, 0, 2))
}

func TestLeftInverseInt(t *testing.T) {
	// Paper §2.2.2 remark: for narrow F any G with G·F = Id works.
	// F2 = [[1,0],[0,1],[1,1]]-like narrow matrices.
	f := New(3, 2, 1, 0, 0, 1, 1, 1)
	g, ok := LeftInverseInt(f)
	if !ok {
		t.Fatalf("no integer left inverse for %v", f)
	}
	if !Mul(g, f).IsIdentity() {
		t.Fatalf("G·F = %v", Mul(g, f))
	}
}

func TestLeftInverseIntNotExists(t *testing.T) {
	// Columns with content 2: no integer left inverse.
	f := New(2, 1, 2, 0)
	if _, ok := LeftInverseInt(f); ok {
		t.Fatal("claimed integer left inverse of [2;0]")
	}
	// rank deficient
	f2 := New(3, 2, 1, 1, 2, 2, 3, 3)
	if _, ok := LeftInverseInt(f2); ok {
		t.Fatal("claimed left inverse of rank-deficient matrix")
	}
}

func TestRightInverseInt(t *testing.T) {
	f := New(2, 3, 1, 0, 1, 0, 1, 0)
	g, ok := RightInverseInt(f)
	if !ok {
		t.Fatalf("no integer right inverse for %v", f)
	}
	if !Mul(f, g).IsIdentity() {
		t.Fatalf("F·G = %v", Mul(f, g))
	}
}

func TestLeftInverseIntProperty(t *testing.T) {
	// Build F = U·[Id;0] for random unimodular U: integer left inverse
	// must exist and satisfy G·F = Id.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		q := 2 + rng.Intn(3)
		d := 1 + rng.Intn(q)
		u := RandUnimodular(rng, q, 8)
		idPad := Zero(q, d)
		for i := 0; i < d; i++ {
			idPad.Set(i, i, 1)
		}
		f := Mul(u, idPad)
		g, ok := LeftInverseInt(f)
		if !ok {
			t.Fatalf("trial %d: no left inverse for %v", trial, f)
		}
		if !Mul(g, f).IsIdentity() {
			t.Fatalf("trial %d: G·F != Id", trial)
		}
	}
}
