package intmat

import (
	"math/rand"
	"testing"
)

func TestKernelBasisSimple(t *testing.T) {
	// F7 from the paper's Example 1: a(F7·I + c7) read in S2, where
	// ker F7 is spanned by (0, 1, -1).
	f7 := New(3, 3, 1, 0, 0, 0, 1, 1, 1, 1, 1)
	k := KernelBasis(f7)
	if k.Cols() != 1 {
		t.Fatalf("kernel dim = %d, want 1: %v", k.Cols(), k)
	}
	v := k.Col(0)
	if v[0] != 0 || v[1]+v[2] != 0 || v[1] == 0 {
		t.Fatalf("kernel vector = %v, want multiple of (0,1,-1)", v)
	}
	if !InKernel(f7, v) {
		t.Fatalf("basis vector not in kernel")
	}
}

func TestKernelBasisFullRankSquare(t *testing.T) {
	k := KernelBasis(Identity(3))
	if k.Cols() != 0 {
		t.Fatalf("identity kernel dim = %d", k.Cols())
	}
}

func TestKernelBasisZeroMatrix(t *testing.T) {
	k := KernelBasis(Zero(2, 3))
	if k.Cols() != 3 || k.Rank() != 3 {
		t.Fatalf("zero matrix kernel should be whole space, got %v", k)
	}
}

func TestKernelDimensionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		m := RandMat(rng, rows, cols, 5)
		k := KernelBasis(m)
		if k.Cols() != cols-m.Rank() {
			t.Fatalf("rank-nullity violated for %v: ker dim %d, rank %d", m, k.Cols(), m.Rank())
		}
		if k.Cols() > 0 {
			if !Mul(m, k).IsZero() {
				t.Fatalf("m·K != 0 for %v, K=%v", m, k)
			}
			if k.Rank() != k.Cols() {
				t.Fatalf("kernel basis not independent: %v", k)
			}
		}
	}
}

func TestLeftKernelBasis(t *testing.T) {
	m := New(3, 2, 1, 0, 0, 1, 1, 1)
	lk := LeftKernelBasis(m)
	if lk.Rows() != 1 {
		t.Fatalf("left kernel dim = %d, want 1", lk.Rows())
	}
	if !Mul(lk, m).IsZero() {
		t.Fatalf("y·m != 0: %v", Mul(lk, m))
	}
}

func TestKernelIntersection(t *testing.T) {
	a := New(1, 3, 1, 0, 0)  // ker = span{e2, e3}
	b := New(1, 3, 0, 1, -1) // ker = span{e1, (0,1,1)}
	k := KernelIntersection(a, b)
	if k.Cols() != 1 {
		t.Fatalf("intersection dim = %d, want 1", k.Cols())
	}
	v := k.Col(0)
	if v[0] != 0 || v[1] != v[2] || v[1] == 0 {
		t.Fatalf("intersection vector = %v, want multiple of (0,1,1)", v)
	}
	// nil / zero-row matrices are no-constraint placeholders
	k2 := KernelIntersection(nil, Zero(0, 3), a)
	if k2.Cols() != 2 {
		t.Fatalf("no-constraint handling broken: dim %d", k2.Cols())
	}
}
