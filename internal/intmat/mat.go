// Package intmat implements exact dense integer matrices and the
// integer linear algebra needed by affine loop-nest alignment:
// rank, determinant, Hermite normal forms, integer kernels,
// unimodular inverses and one-sided integer inverses.
//
// Entries are stored as int64. All elimination algorithms run in
// math/big internally, so intermediate coefficient growth cannot
// corrupt results; converting a result back to int64 panics if an
// entry does not fit, which for the small alignment matrices of this
// library (dimensions ≤ 8, entries ≤ a few thousand) never happens in
// practice.
package intmat

import (
	"fmt"
	"math/big"
	"strings"
)

// Mat is a dense rows×cols integer matrix. The zero value is not
// usable; construct with New, Zero, Identity, FromRows or RowVec.
type Mat struct {
	rows, cols int
	a          []int64 // row-major
}

// New returns a rows×cols matrix initialized from vals in row-major
// order. It panics unless len(vals) == rows*cols.
func New(rows, cols int, vals ...int64) *Mat {
	if rows < 0 || cols < 0 {
		panic("intmat: negative dimension")
	}
	if len(vals) != rows*cols {
		panic(fmt.Sprintf("intmat: New(%d,%d) got %d values", rows, cols, len(vals)))
	}
	a := make([]int64, rows*cols)
	copy(a, vals)
	return &Mat{rows: rows, cols: cols, a: a}
}

// Zero returns the rows×cols zero matrix.
func Zero(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("intmat: negative dimension")
	}
	return &Mat{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := Zero(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]int64) *Mat {
	if len(rows) == 0 {
		return Zero(0, 0)
	}
	c := len(rows[0])
	m := Zero(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("intmat: FromRows with ragged rows")
		}
		copy(m.a[i*c:(i+1)*c], r)
	}
	return m
}

// RowVec returns a 1×n matrix holding vals.
func RowVec(vals ...int64) *Mat { return New(1, len(vals), vals...) }

// ColVec returns an n×1 matrix holding vals.
func ColVec(vals ...int64) *Mat {
	m := Zero(len(vals), 1)
	copy(m.a, vals)
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Mat) At(i, j int) int64 {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Mat) Set(i, j int, v int64) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("intmat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	a := make([]int64, len(m.a))
	copy(a, m.a)
	return &Mat{rows: m.rows, cols: m.cols, a: a}
}

// Equal reports whether m and n have identical shape and entries.
func (m *Mat) Equal(n *Mat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry of m is zero.
func (m *Mat) IsZero() bool {
	for _, v := range m.a {
		if v != 0 {
			return false
		}
	}
	return true
}

// IsSquare reports whether m has as many rows as columns.
func (m *Mat) IsSquare() bool { return m.rows == m.cols }

// IsIdentity reports whether m is a square identity matrix.
func (m *Mat) IsIdentity() bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				return false
			}
		}
	}
	return true
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Mat) Transpose() *Mat {
	t := Zero(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Row returns a copy of row i as a slice.
func (m *Mat) Row(i int) []int64 {
	if i < 0 || i >= m.rows {
		panic("intmat: row out of range")
	}
	r := make([]int64, m.cols)
	copy(r, m.a[i*m.cols:(i+1)*m.cols])
	return r
}

// Col returns a copy of column j as a slice.
func (m *Mat) Col(j int) []int64 {
	if j < 0 || j >= m.cols {
		panic("intmat: col out of range")
	}
	c := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// SubCols returns the matrix formed by columns js of m, in order.
func (m *Mat) SubCols(js ...int) *Mat {
	s := Zero(m.rows, len(js))
	for k, j := range js {
		for i := 0; i < m.rows; i++ {
			s.Set(i, k, m.At(i, j))
		}
	}
	return s
}

// SubRows returns the matrix formed by rows is of m, in order.
func (m *Mat) SubRows(is ...int) *Mat {
	s := Zero(len(is), m.cols)
	for k, i := range is {
		for j := 0; j < m.cols; j++ {
			s.Set(k, j, m.At(i, j))
		}
	}
	return s
}

// Stack returns the (m.rows+n.rows)×cols matrix [m; n].
func Stack(m, n *Mat) *Mat {
	if m.cols != n.cols {
		panic("intmat: Stack column mismatch")
	}
	s := Zero(m.rows+n.rows, m.cols)
	copy(s.a[:len(m.a)], m.a)
	copy(s.a[len(m.a):], n.a)
	return s
}

// Augment returns the rows×(m.cols+n.cols) matrix [m | n].
func Augment(m, n *Mat) *Mat {
	if m.rows != n.rows {
		panic("intmat: Augment row mismatch")
	}
	s := Zero(m.rows, m.cols+n.cols)
	for i := 0; i < m.rows; i++ {
		copy(s.a[i*s.cols:], m.a[i*m.cols:(i+1)*m.cols])
		copy(s.a[i*s.cols+m.cols:], n.a[i*n.cols:(i+1)*n.cols])
	}
	return s
}

// String renders m like "[1 2; 3 4]".
func (m *Mat) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// toBig converts m to a big.Int matrix (row-major slice of slices).
func (m *Mat) toBig() [][]*big.Int {
	b := make([][]*big.Int, m.rows)
	for i := range b {
		b[i] = make([]*big.Int, m.cols)
		for j := range b[i] {
			b[i][j] = big.NewInt(m.At(i, j))
		}
	}
	return b
}

// fromBig converts a big.Int matrix back to a Mat, panicking if an
// entry overflows int64.
func fromBig(b [][]*big.Int) *Mat {
	rows := len(b)
	cols := 0
	if rows > 0 {
		cols = len(b[0])
	}
	m := Zero(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !b[i][j].IsInt64() {
				panic("intmat: entry overflows int64: " + b[i][j].String())
			}
			m.Set(i, j, b[i][j].Int64())
		}
	}
	return m
}
