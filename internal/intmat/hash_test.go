package intmat

import (
	"sync"
	"testing"
)

func TestKeyCanonical(t *testing.T) {
	a := New(2, 2, 1, 2, 3, 4)
	b := New(2, 2, 1, 2, 3, 4)
	if a.Key() != b.Key() {
		t.Errorf("equal matrices, different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "2x2:1,2,3,4" {
		t.Errorf("key format: %q", a.Key())
	}
	// same entries, different shape must not collide
	if New(1, 4, 1, 2, 3, 4).Key() == a.Key() {
		t.Error("1x4 and 2x2 with the same entries share a key")
	}
	if New(2, 2, 1, 2, 3, 5).Key() == a.Key() {
		t.Error("different entries share a key")
	}
}

// mapCache is a minimal KernelCache for testing the memo hooks.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]any
	hits int
}

func (c *mapCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *mapCache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// TestKernelCacheMemoizes: with a cache installed, HermiteLeft,
// InverseUnimodular and KernelBasis return identical results on hits,
// and mutating a returned matrix cannot corrupt the cached value.
func TestKernelCacheMemoizes(t *testing.T) {
	c := &mapCache{m: map[string]any{}}
	SetKernelCache(c)
	defer SetKernelCache(nil)

	m := New(3, 2, 12, 4, 6, 8, 10, 14)
	q1, h1 := HermiteLeft(m)
	q2, h2 := HermiteLeft(m)
	if !q1.Equal(q2) || !h1.Equal(h2) {
		t.Fatal("cached HermiteLeft differs from computed")
	}
	if c.hits == 0 {
		t.Fatal("second HermiteLeft call missed the cache")
	}
	// poison the returned copies; the cache must be unaffected
	q2.Set(0, 0, 999)
	h2.Set(0, 0, 999)
	q3, h3 := HermiteLeft(m)
	if !q3.Equal(q1) || !h3.Equal(h1) {
		t.Fatal("mutating a returned matrix corrupted the cache")
	}

	u := New(2, 2, 1, 1, 0, 1)
	inv1 := InverseUnimodular(u)
	inv2 := InverseUnimodular(u)
	if !inv1.Equal(inv2) {
		t.Fatal("cached InverseUnimodular differs")
	}

	k := New(2, 3, 1, 0, 0, 0, 1, 0)
	ker1 := KernelBasis(k)
	ker2 := KernelBasis(k)
	if !ker1.Equal(ker2) {
		t.Fatal("cached KernelBasis differs")
	}
	if ker1.Rows() != 3 || ker1.Cols() != 1 {
		t.Fatalf("kernel basis shape %dx%d, want 3x1", ker1.Rows(), ker1.Cols())
	}
}

// TestKernelCacheDisabled: with no cache installed everything still
// works (the default path).
func TestKernelCacheDisabled(t *testing.T) {
	SetKernelCache(nil)
	m := New(2, 2, 2, 0, 0, 2)
	_, h := HermiteLeft(m)
	if h.At(0, 0) != 2 {
		t.Errorf("HermiteLeft without cache: H = %v", h)
	}
}
