package intmat

import "math/big"

// KernelBasis returns a matrix whose columns form a basis of the
// integer kernel lattice {v ∈ Zⁿ : m·v = 0}. The result has n rows
// and (n − rank m) columns; it has zero columns count when the kernel
// is trivial (then Cols() == 0).
//
// The basis is obtained from the column Hermite reduction m·V = [B 0]:
// the trailing columns of the unimodular V span the kernel.
func KernelBasis(m *Mat) *Mat {
	return memoOne("ker", m, kernelBasis)
}

func kernelBasis(m *Mat) *Mat {
	rows, cols := m.rows, m.cols
	W := m.toBig()
	V := bigIdentity(cols)

	swapCol := func(i, j int) {
		if i == j {
			return
		}
		for r := 0; r < rows; r++ {
			W[r][i], W[r][j] = W[r][j], W[r][i]
		}
		for r := 0; r < cols; r++ {
			V[r][i], V[r][j] = V[r][j], V[r][i]
		}
	}
	// col j += k * col i
	addCol := func(j, i int, k *big.Int) {
		if k.Sign() == 0 {
			return
		}
		t := new(big.Int)
		for r := 0; r < rows; r++ {
			W[r][j] = new(big.Int).Add(W[r][j], t.Mul(k, W[r][i]))
			t = new(big.Int)
		}
		for r := 0; r < cols; r++ {
			V[r][j] = new(big.Int).Add(V[r][j], t.Mul(k, V[r][i]))
			t = new(big.Int)
		}
	}

	lead := 0
	for row := 0; row < rows && lead < cols; row++ {
		for {
			best := -1
			for c := lead; c < cols; c++ {
				if W[row][c].Sign() == 0 {
					continue
				}
				if best < 0 || W[row][c].CmpAbs(W[row][best]) < 0 {
					best = c
				}
			}
			if best < 0 {
				break
			}
			swapCol(lead, best)
			done := true
			q := new(big.Int)
			rm := new(big.Int)
			for c := lead + 1; c < cols; c++ {
				if W[row][c].Sign() == 0 {
					continue
				}
				q.QuoRem(W[row][c], W[row][lead], rm)
				addCol(c, lead, new(big.Int).Neg(q))
				if W[row][c].Sign() != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if lead < cols && W[row][lead].Sign() != 0 {
			lead++
		}
	}
	// columns lead..cols-1 of V span the kernel
	ker := Zero(cols, cols-lead)
	for j := lead; j < cols; j++ {
		for i := 0; i < cols; i++ {
			v := V[i][j]
			if !v.IsInt64() {
				panic("intmat: kernel basis entry overflows int64")
			}
			ker.Set(i, j-lead, v.Int64())
		}
	}
	return ker
}

// LeftKernelBasis returns a matrix whose rows form a basis of
// {y : y·m = 0}.
func LeftKernelBasis(m *Mat) *Mat {
	return KernelBasis(m.Transpose()).Transpose()
}

// KernelIntersection returns a basis (as columns) of the intersection
// of the kernels of the given matrices, i.e. the kernel of their
// vertical stack. All matrices must have the same column count.
// Matrices with zero rows are treated as "no constraint".
func KernelIntersection(ms ...*Mat) *Mat {
	var stacked *Mat
	for _, m := range ms {
		if m == nil || m.rows == 0 {
			continue
		}
		if stacked == nil {
			stacked = m
		} else {
			stacked = Stack(stacked, m)
		}
	}
	if stacked == nil {
		panic("intmat: KernelIntersection needs at least one non-empty matrix")
	}
	return KernelBasis(stacked)
}

// InKernel reports whether m·v = 0.
func InKernel(m *Mat, v []int64) bool {
	for _, x := range MulVec(m, v) {
		if x != 0 {
			return false
		}
	}
	return true
}
