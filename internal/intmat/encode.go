package intmat

import "fmt"

// Rec is the portable, JSON-serializable form of a Mat: row-major
// entries with explicit dimensions. It exists so higher layers (the
// engine's plan records, the disk store) can persist matrices without
// reaching into Mat's private representation; FromRec validates on
// the way back in, so a corrupted record surfaces as an error instead
// of a malformed matrix.
type Rec struct {
	R int     `json:"r"`
	C int     `json:"c"`
	V []int64 `json:"v"`
}

// Rec returns the serialized form of m.
func (m *Mat) Rec() Rec {
	r := Rec{R: m.rows, C: m.cols, V: make([]int64, 0, m.rows*m.cols)}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			r.V = append(r.V, m.At(i, j))
		}
	}
	return r
}

// FromRec reconstructs a Mat from its serialized form, rejecting
// dimension/length mismatches.
func FromRec(r Rec) (*Mat, error) {
	if r.R <= 0 || r.C <= 0 {
		return nil, fmt.Errorf("intmat: invalid record dimensions %d×%d", r.R, r.C)
	}
	if len(r.V) != r.R*r.C {
		return nil, fmt.Errorf("intmat: record %d×%d has %d entries, want %d", r.R, r.C, len(r.V), r.R*r.C)
	}
	return New(r.R, r.C, r.V...), nil
}
