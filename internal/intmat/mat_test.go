package intmat

import (
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3, 1, 2, 3, 4, 5, 6)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("bad entries: %v", m)
	}
	m.Set(1, 0, -7)
	if m.At(1, 0) != -7 {
		t.Fatalf("Set failed: %v", m)
	}
}

func TestNewPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 1, 2, 3)
}

func TestIdentityAndZero(t *testing.T) {
	id := Identity(3)
	if !id.IsIdentity() {
		t.Fatalf("Identity(3) = %v", id)
	}
	z := Zero(2, 4)
	if !z.IsZero() {
		t.Fatalf("Zero(2,4) = %v", z)
	}
	if id.IsZero() || z.IsIdentity() {
		t.Fatal("misclassified")
	}
}

func TestEqualAndClone(t *testing.T) {
	m := New(2, 2, 1, 2, 3, 4)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 9)
	if m.Equal(c) || m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
	if m.Equal(New(2, 3, 1, 2, 0, 3, 4, 0)) {
		t.Fatal("shape mismatch reported equal")
	}
}

func TestTranspose(t *testing.T) {
	m := New(2, 3, 1, 2, 3, 4, 5, 6)
	mt := m.Transpose()
	want := New(3, 2, 1, 4, 2, 5, 3, 6)
	if !mt.Equal(want) {
		t.Fatalf("transpose = %v, want %v", mt, want)
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose differs")
	}
}

func TestAddSubNegScale(t *testing.T) {
	a := New(2, 2, 1, 2, 3, 4)
	b := New(2, 2, 5, 6, 7, 8)
	if !Add(a, b).Equal(New(2, 2, 6, 8, 10, 12)) {
		t.Fatal("Add wrong")
	}
	if !Sub(b, a).Equal(New(2, 2, 4, 4, 4, 4)) {
		t.Fatal("Sub wrong")
	}
	if !Neg(a).Equal(New(2, 2, -1, -2, -3, -4)) {
		t.Fatal("Neg wrong")
	}
	if !Scale(3, a).Equal(New(2, 2, 3, 6, 9, 12)) {
		t.Fatal("Scale wrong")
	}
}

func TestMul(t *testing.T) {
	a := New(2, 3, 1, 2, 3, 4, 5, 6)
	b := New(3, 2, 7, 8, 9, 10, 11, 12)
	got := Mul(a, b)
	want := New(2, 2, 58, 64, 139, 154)
	if !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
	if !Mul(Identity(2), got).Equal(got) {
		t.Fatal("left identity fails")
	}
	if !Mul(got, Identity(2)).Equal(got) {
		t.Fatal("right identity fails")
	}
}

func TestMulAllAndMulVec(t *testing.T) {
	a := New(2, 2, 1, 1, 0, 1)
	b := New(2, 2, 1, 0, 1, 1)
	p := MulAll(a, b, a)
	want := Mul(Mul(a, b), a)
	if !p.Equal(want) {
		t.Fatalf("MulAll = %v, want %v", p, want)
	}
	v := MulVec(a, []int64{2, 3})
	if v[0] != 5 || v[1] != 3 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestStackAugmentSub(t *testing.T) {
	a := New(1, 2, 1, 2)
	b := New(2, 2, 3, 4, 5, 6)
	s := Stack(a, b)
	if !s.Equal(New(3, 2, 1, 2, 3, 4, 5, 6)) {
		t.Fatalf("Stack = %v", s)
	}
	g := Augment(b, Identity(2))
	if !g.Equal(New(2, 4, 3, 4, 1, 0, 5, 6, 0, 1)) {
		t.Fatalf("Augment = %v", g)
	}
	if !s.SubRows(0, 2).Equal(New(2, 2, 1, 2, 5, 6)) {
		t.Fatalf("SubRows = %v", s.SubRows(0, 2))
	}
	if !g.SubCols(2, 3).Equal(Identity(2)) {
		t.Fatalf("SubCols = %v", g.SubCols(2, 3))
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int
	}{
		{Identity(3), 3},
		{Zero(2, 5), 0},
		{New(2, 2, 1, 2, 2, 4), 1},
		{New(3, 2, 1, 0, 0, 1, 1, 1), 2},
		{New(2, 3, 1, 0, 1, 0, 1, 1), 2},
		// paper: F7 = [[0,1,-1],[1,0,0]] mapping (i,j,k); here its 3x2-ish analogues
		{New(2, 3, 0, 1, 1, 1, 0, 0), 2},
		{New(3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9), 2},
	}
	for i, c := range cases {
		if got := c.m.Rank(); got != c.want {
			t.Errorf("case %d: rank(%v) = %d, want %d", i, c.m, got, c.want)
		}
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int64
	}{
		{Identity(4), 1},
		{New(2, 2, 1, 2, 3, 7), 1},
		{New(2, 2, 2, 0, 0, 3), 6},
		{New(2, 2, 1, 2, 2, 4), 0},
		{New(3, 3, 0, 1, 0, 1, 0, 0, 0, 0, 1), -1},
		{New(3, 3, 2, -1, 0, -1, 2, -1, 0, -1, 2), 4},
	}
	for i, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("case %d: det(%v) = %d, want %d", i, c.m, got, c.want)
		}
	}
}

func TestIsUnimodular(t *testing.T) {
	if !New(2, 2, 1, 2, 3, 7).IsUnimodular() {
		t.Fatal("det 1 matrix not unimodular")
	}
	if !New(2, 2, 0, 1, 1, 0).IsUnimodular() {
		t.Fatal("det -1 matrix not unimodular")
	}
	if New(2, 2, 2, 0, 0, 1).IsUnimodular() {
		t.Fatal("det 2 matrix claimed unimodular")
	}
	if New(2, 3, 1, 0, 0, 0, 1, 0).IsUnimodular() {
		t.Fatal("rectangular matrix claimed unimodular")
	}
}

func TestRankInvariantUnderUnimodular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		m := RandMat(rng, rows, cols, 5)
		u := RandUnimodular(rng, rows, 6)
		v := RandUnimodular(rng, cols, 6)
		r := m.Rank()
		if got := Mul(u, m).Rank(); got != r {
			t.Fatalf("rank changed by left unimodular: %d vs %d", got, r)
		}
		if got := Mul(m, v).Rank(); got != r {
			t.Fatalf("rank changed by right unimodular: %d vs %d", got, r)
		}
	}
}

func TestOverflowPanics(t *testing.T) {
	big := int64(1) << 62
	a := New(1, 1, big)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	_ = Mul(a, a)
}

func TestString(t *testing.T) {
	m := New(2, 2, 1, -2, 0, 3)
	if got := m.String(); got != "[1 -2; 0 3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestRowColVec(t *testing.T) {
	r := RowVec(1, 2, 3)
	if r.Rows() != 1 || r.Cols() != 3 || r.At(0, 2) != 3 {
		t.Fatalf("RowVec = %v", r)
	}
	c := ColVec(4, 5)
	if c.Rows() != 2 || c.Cols() != 1 || c.At(1, 0) != 5 {
		t.Fatalf("ColVec = %v", c)
	}
	m := New(2, 2, 1, 2, 3, 4)
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row = %v", got)
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 3 {
		t.Fatalf("Col = %v", got)
	}
}
