package intmat

import (
	"strconv"
	"strings"
)

// Key returns a canonical string identity of m: two matrices have the
// same Key iff they have the same shape and entries. It is the cache
// key of the kernel memo hooks (see KernelCache); the format is
// "rowsxcols:v00,v01,…" in row-major order.
func (m *Mat) Key() string {
	var b strings.Builder
	b.Grow(8 + 3*len(m.a))
	b.WriteString(strconv.Itoa(m.rows))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(m.cols))
	b.WriteByte(':')
	for i, v := range m.a {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}
