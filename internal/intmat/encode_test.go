package intmat

import (
	"encoding/json"
	"testing"
)

// TestRecRoundTrip: Mat → Rec → JSON → Rec → Mat is the identity.
func TestRecRoundTrip(t *testing.T) {
	m := New(2, 3, 1, -2, 3, 0, 5, -6)
	data, err := json.Marshal(m.Rec())
	if err != nil {
		t.Fatal(err)
	}
	var r Rec
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	got, err := FromRec(r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round-trip %v ≠ %v", got, m)
	}
}

// TestFromRecValidation: malformed records error instead of panicking
// or producing a broken matrix.
func TestFromRecValidation(t *testing.T) {
	for name, r := range map[string]Rec{
		"zero rows":  {R: 0, C: 2, V: []int64{}},
		"neg cols":   {R: 2, C: -1, V: []int64{}},
		"too few":    {R: 2, C: 2, V: []int64{1, 2, 3}},
		"too many":   {R: 1, C: 1, V: []int64{1, 2}},
		"nil values": {R: 1, C: 1},
	} {
		if _, err := FromRec(r); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
