package intmat

import (
	"encoding/json"
	"testing"
)

// TestRecRoundTrip: Mat → Rec → JSON → Rec → Mat is the identity.
func TestRecRoundTrip(t *testing.T) {
	m := New(2, 3, 1, -2, 3, 0, 5, -6)
	data, err := json.Marshal(m.Rec())
	if err != nil {
		t.Fatal(err)
	}
	var r Rec
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	got, err := FromRec(r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round-trip %v ≠ %v", got, m)
	}
}

// TestFromRecValidation: malformed records error instead of panicking
// or producing a broken matrix.
func TestFromRecValidation(t *testing.T) {
	for name, r := range map[string]Rec{
		"zero rows":  {R: 0, C: 2, V: []int64{}},
		"neg cols":   {R: 2, C: -1, V: []int64{}},
		"too few":    {R: 2, C: 2, V: []int64{1, 2, 3}},
		"too many":   {R: 1, C: 1, V: []int64{1, 2}},
		"nil values": {R: 1, C: 1},
	} {
		if _, err := FromRec(r); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestKernelValueRoundTrip: kernel memo values — single matrices,
// pairs, and empty (trivial-kernel) bases — survive serialization.
func TestKernelValueRoundTrip(t *testing.T) {
	single := New(2, 3, 1, 2, 3, 4, 5, 6)
	rec, ok := EncodeKernelValue(single)
	if !ok {
		t.Fatal("single matrix not encodable")
	}
	v, err := DecodeKernelValue(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*Mat); !got.Equal(single) {
		t.Errorf("single round trip: %v", got)
	}

	pair := matPair{a: Identity(2), b: New(2, 2, 0, 1, 1, 0)}
	rec, ok = EncodeKernelValue(pair)
	if !ok {
		t.Fatal("pair not encodable")
	}
	v, err = DecodeKernelValue(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(matPair); !got.a.Equal(pair.a) || !got.b.Equal(pair.b) {
		t.Errorf("pair round trip: %+v", got)
	}

	empty := New(3, 0)
	rec, ok = EncodeKernelValue(empty)
	if !ok {
		t.Fatal("empty kernel basis not encodable")
	}
	v, err = DecodeKernelValue(rec)
	if err != nil {
		t.Fatalf("empty kernel basis: %v", err)
	}
	if got := v.(*Mat); got.Rows() != 3 || got.Cols() != 0 {
		t.Errorf("empty round trip: %dx%d", got.Rows(), got.Cols())
	}

	if _, ok := EncodeKernelValue("junk"); ok {
		t.Error("foreign value encoded")
	}
	if _, err := DecodeKernelValue(KernelRec{A: Rec{R: 2, C: 2, V: []int64{1}}}); err == nil {
		t.Error("mismatched record decoded")
	}
}
