package intmat

import "math/rand"

// RandUnimodular returns a random n×n unimodular matrix built from
// `ops` random elementary row operations applied to the identity
// (row additions with coefficients in [-3, 3] and row swaps). It is
// intended for property-based tests and for randomized re-basing of
// allocation matrices.
func RandUnimodular(rng *rand.Rand, n, ops int) *Mat {
	m := Identity(n)
	if n < 2 {
		return m
	}
	for k := 0; k < ops; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			// row swap instead
			j = (i + 1 + rng.Intn(n-1)) % n
			for c := 0; c < n; c++ {
				vi, vj := m.At(i, c), m.At(j, c)
				m.Set(i, c, vj)
				m.Set(j, c, vi)
			}
			continue
		}
		coef := int64(rng.Intn(7) - 3)
		for c := 0; c < n; c++ {
			m.Set(i, c, addChk(m.At(i, c), mulChk(coef, m.At(j, c))))
		}
	}
	return m
}

// RandMat returns a random rows×cols matrix with entries uniform in
// [-bound, bound]. Intended for tests.
func RandMat(rng *rand.Rand, rows, cols int, bound int64) *Mat {
	m := Zero(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Int63n(2*bound+1)-bound)
		}
	}
	return m
}

// RandFullRank returns a random rows×cols matrix of full rank with
// entries bounded by bound; it retries until full rank (tiny matrices,
// terminates almost immediately).
func RandFullRank(rng *rand.Rand, rows, cols int, bound int64) *Mat {
	for {
		m := RandMat(rng, rows, cols, bound)
		if m.FullRank() {
			return m
		}
	}
}
