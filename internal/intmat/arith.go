package intmat

import (
	"fmt"
	"math/big"
)

// checked int64 arithmetic: the alignment matrices handled by this
// library are tiny, so overflow indicates a logic error upstream and
// is reported by panicking rather than silently wrapping.

func addChk(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("intmat: int64 overflow in %d + %d", a, b))
	}
	return s
}

func mulChk(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(fmt.Sprintf("intmat: int64 overflow in %d * %d", a, b))
	}
	return p
}

// Add returns m + n.
func Add(m, n *Mat) *Mat {
	if m.rows != n.rows || m.cols != n.cols {
		panic("intmat: Add shape mismatch")
	}
	r := Zero(m.rows, m.cols)
	for i := range m.a {
		r.a[i] = addChk(m.a[i], n.a[i])
	}
	return r
}

// Sub returns m - n.
func Sub(m, n *Mat) *Mat {
	if m.rows != n.rows || m.cols != n.cols {
		panic("intmat: Sub shape mismatch")
	}
	r := Zero(m.rows, m.cols)
	for i := range m.a {
		r.a[i] = addChk(m.a[i], -n.a[i])
	}
	return r
}

// Neg returns -m.
func Neg(m *Mat) *Mat {
	r := Zero(m.rows, m.cols)
	for i := range m.a {
		r.a[i] = -m.a[i]
	}
	return r
}

// Scale returns k·m.
func Scale(k int64, m *Mat) *Mat {
	r := Zero(m.rows, m.cols)
	for i := range m.a {
		r.a[i] = mulChk(k, m.a[i])
	}
	return r
}

// Mul returns the matrix product m·n.
func Mul(m, n *Mat) *Mat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("intmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	r := Zero(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < n.cols; j++ {
			var acc int64
			for k := 0; k < m.cols; k++ {
				acc = addChk(acc, mulChk(m.At(i, k), n.At(k, j)))
			}
			r.Set(i, j, acc)
		}
	}
	return r
}

// MulAll returns the product of one or more matrices, left to right.
func MulAll(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("intmat: MulAll of nothing")
	}
	r := ms[0]
	for _, m := range ms[1:] {
		r = Mul(r, m)
	}
	return r
}

// MulVec returns m·v for a column vector v given as a slice.
func MulVec(m *Mat, v []int64) []int64 {
	if m.cols != len(v) {
		panic("intmat: MulVec shape mismatch")
	}
	out := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc int64
		for k := 0; k < m.cols; k++ {
			acc = addChk(acc, mulChk(m.At(i, k), v[k]))
		}
		out[i] = acc
	}
	return out
}

// Rank returns the rank of m, computed exactly by fraction-free
// Gaussian elimination (Bareiss) over math/big.
func (m *Mat) Rank() int {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	b := m.toBig()
	rows, cols := m.rows, m.cols
	rank := 0
	prev := big.NewInt(1)
	for col := 0; col < cols && rank < rows; col++ {
		// find pivot
		piv := -1
		for r := rank; r < rows; r++ {
			if b[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			continue
		}
		b[rank], b[piv] = b[piv], b[rank]
		p := b[rank][col]
		for r := rank + 1; r < rows; r++ {
			for c := col + 1; c < cols; c++ {
				// b[r][c] = (p*b[r][c] - b[r][col]*b[rank][c]) / prev
				t1 := new(big.Int).Mul(p, b[r][c])
				t2 := new(big.Int).Mul(b[r][col], b[rank][c])
				t1.Sub(t1, t2)
				t1.Quo(t1, prev)
				b[r][c] = t1
			}
			b[r][col] = big.NewInt(0)
		}
		prev = p
		rank++
	}
	return rank
}

// FullRank reports whether rank(m) == min(rows, cols).
func (m *Mat) FullRank() bool {
	want := m.rows
	if m.cols < want {
		want = m.cols
	}
	return m.Rank() == want
}

// DetBig returns the determinant of a square matrix as a big.Int.
func (m *Mat) DetBig() *big.Int {
	if !m.IsSquare() {
		panic("intmat: DetBig of non-square matrix")
	}
	n := m.rows
	if n == 0 {
		return big.NewInt(1)
	}
	b := m.toBig()
	sign := 1
	prev := big.NewInt(1)
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if b[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return big.NewInt(0)
		}
		if piv != col {
			b[col], b[piv] = b[piv], b[col]
			sign = -sign
		}
		p := b[col][col]
		for r := col + 1; r < n; r++ {
			for c := col + 1; c < n; c++ {
				t1 := new(big.Int).Mul(p, b[r][c])
				t2 := new(big.Int).Mul(b[r][col], b[col][c])
				t1.Sub(t1, t2)
				t1.Quo(t1, prev)
				b[r][c] = t1
			}
			b[r][col] = big.NewInt(0)
		}
		prev = p
	}
	d := new(big.Int).Set(b[n-1][n-1])
	if sign < 0 {
		d.Neg(d)
	}
	return d
}

// Det returns the determinant as int64, panicking on overflow.
func (m *Mat) Det() int64 {
	d := m.DetBig()
	if !d.IsInt64() {
		panic("intmat: determinant overflows int64")
	}
	return d.Int64()
}

// IsUnimodular reports whether m is square with determinant ±1.
func (m *Mat) IsUnimodular() bool {
	if !m.IsSquare() || m.rows == 0 {
		return m.IsSquare() // 0x0 is vacuously unimodular
	}
	d := m.DetBig()
	return d.CmpAbs(big.NewInt(1)) == 0
}
