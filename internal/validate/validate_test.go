package validate

import (
	"math/rand"
	"testing"

	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/intmat"
)

func TestCheckAllExamples(t *testing.T) {
	// soundness: on every built-in example, every communication the
	// alignment claims local generates no irregular traffic on a
	// concrete 4^d domain.
	for _, p := range affine.AllExamples() {
		res, err := alignment.Align(p, 2, alignment.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := Check(res, 4); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRunCountsExample1(t *testing.T) {
	res, err := alignment.Align(affine.PaperExample1(), 2, alignment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := Run(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) != 9 {
		t.Fatalf("traffic rows = %d, want 9", len(traffic))
	}
	locals, nonlocals := 0, 0
	for _, ct := range traffic {
		if ct.Instances == 0 {
			t.Fatal("no instances enumerated")
		}
		if res.LocalComms[ct.Comm.ID] {
			if !ct.Local() && !ct.Translation() {
				t.Fatalf("local comm %d has irregular traffic", ct.Comm.ID)
			}
			locals++
		} else {
			nonlocals++
		}
	}
	if locals != 6 || nonlocals != 3 {
		t.Fatalf("locals=%d nonlocals=%d", locals, nonlocals)
	}
	// the residual reads of a must actually move data
	for _, ct := range traffic {
		if !res.LocalComms[ct.Comm.ID] && ct.Comm.Rank >= 2 && ct.Transfers == 0 {
			t.Fatalf("residual comm %d moved no data on the test domain", ct.Comm.ID)
		}
	}
}

func TestJacobiTranslations(t *testing.T) {
	// Jacobi's shifted reads are local in the non-local-term sense:
	// on a concrete domain they appear as pure translations.
	res, err := alignment.Align(affine.Jacobi(), 2, alignment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := Run(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	translations := 0
	for _, ct := range traffic {
		if ct.Translation() {
			translations++
		}
		if ct.Transfers > 0 && ct.DistinctVectors > 1 {
			t.Fatalf("comm %d is not a translation: %d vectors", ct.Comm.ID, ct.DistinctVectors)
		}
	}
	if translations != 4 {
		t.Fatalf("translations = %d, want the 4 shifted reads", translations)
	}
}

// randomProgram builds a random valid affine program: a fuzz source
// for the whole alignment + validation stack.
func randomProgram(rng *rand.Rand) *affine.Program {
	p := &affine.Program{Name: "fuzz"}
	nArr := 1 + rng.Intn(3)
	for i := 0; i < nArr; i++ {
		p.AddArray(string(rune('a'+i)), 2+rng.Intn(2))
	}
	nStmt := 1 + rng.Intn(3)
	for i := 0; i < nStmt; i++ {
		depth := 2 + rng.Intn(2)
		names := []string{"i", "j", "k"}[:depth]
		s := p.NewStatement(string(rune('R'+i)), names...)
		nAcc := 1 + rng.Intn(3)
		for a := 0; a < nAcc; a++ {
			arr := p.Arrays[rng.Intn(len(p.Arrays))]
			f := intmat.RandMat(rng, arr.Dim, depth, 2)
			c := make([]int64, arr.Dim)
			for ci := range c {
				c[ci] = int64(rng.Intn(3) - 1)
			}
			if a == 0 && rng.Intn(2) == 0 {
				s.Write(arr.Name, f, c...)
			} else {
				s.Read(arr.Name, f, c...)
			}
		}
		if rng.Intn(3) == 0 {
			s.Seq(0)
		}
	}
	return p
}

func TestFuzzAlignmentSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(20240612))
	for trial := 0; trial < 150; trial++ {
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid program: %v", trial, err)
		}
		res, err := alignment.Align(p, 2, alignment.Options{Seed: int64(trial)})
		if err != nil {
			// rank-starved random programs may legitimately fail to
			// instantiate; that is a reported error, not a panic.
			continue
		}
		if err := Check(res, 3); err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, p)
		}
	}
}

func TestRunRejectsBadDomain(t *testing.T) {
	res, err := alignment.Align(affine.MatMul(), 2, alignment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
