// Package validate checks an alignment result against a concrete
// execution: it enumerates a finite iteration domain, places every
// statement instance and array element on its virtual processor
// using the computed allocation matrices, and counts the actual
// point-to-point transfers each access generates.
//
// This closes the loop between the algebra and the machine: a
// communication classified local by the heuristic must generate
// *zero* messages with a non-zero distance, and the message count of
// a partial broadcast must match its direction-space dimension. The
// package is used by integration tests and by cmd/resopt -verify.
package validate

import (
	"fmt"

	"repro/internal/accessgraph"
	"repro/internal/alignment"
	"repro/internal/intmat"
)

// CommTraffic summarizes the concrete traffic of one communication
// over the enumerated domain.
type CommTraffic struct {
	Comm accessgraph.Comm
	// Transfers counts (computing processor, owning processor) pairs
	// with distinct endpoints — the non-local transfers.
	Transfers int
	// Instances is the number of enumerated statement instances.
	Instances int
	// DistinctVectors is the number of distinct non-zero processor-
	// space distance vectors observed; a translation has exactly 1.
	DistinctVectors int
}

// Local reports whether the access generated no non-local transfer.
func (ct CommTraffic) Local() bool { return ct.Transfers == 0 }

// Translation reports whether every transfer has the same non-zero
// distance vector (the cheap regular case of Section 2.1's "local
// term").
func (ct CommTraffic) Translation() bool {
	return ct.Transfers > 0 && ct.DistinctVectors == 1
}

// Run enumerates the iteration domain [0, n)^depth of every statement
// and returns per-communication traffic summaries.
func Run(res *alignment.Result, n int) ([]CommTraffic, error) {
	if n < 1 {
		return nil, fmt.Errorf("validate: domain extent %d", n)
	}
	var out []CommTraffic
	for _, c := range res.Graph.Comms {
		ms := res.Alloc[c.Stmt.Name]
		mx := res.Alloc[c.Access.Array]
		if ms == nil || mx == nil {
			return nil, fmt.Errorf("validate: missing allocation for comm %d", c.ID)
		}
		ct := CommTraffic{Comm: c}
		vecs := map[string]bool{}
		iter := make([]int64, c.Stmt.Depth)
		for {
			// owner of the accessed element: M_x·(F·I + c)
			fi := intmat.MulVec(c.Access.F, iter)
			for i := range fi {
				fi[i] += c.Access.C[i]
			}
			owner := intmat.MulVec(mx, fi)
			// computing processor: M_S·I
			comp := intmat.MulVec(ms, iter)
			dist := make([]int64, len(owner))
			zero := true
			for i := range dist {
				dist[i] = comp[i] - owner[i]
				if dist[i] != 0 {
					zero = false
				}
			}
			ct.Instances++
			if !zero {
				ct.Transfers++
				vecs[fmt.Sprint(dist)] = true
			}
			if !next(iter, int64(n)) {
				break
			}
		}
		ct.DistinctVectors = len(vecs)
		out = append(out, ct)
	}
	return out, nil
}

// next advances a mixed-radix counter; false when wrapped.
func next(iter []int64, n int64) bool {
	for i := len(iter) - 1; i >= 0; i-- {
		iter[i]++
		if iter[i] < n {
			return true
		}
		iter[i] = 0
	}
	return false
}

// Check verifies the fundamental soundness property: every
// communication the alignment classified as local generates zero
// non-local transfers on the enumerated domain (the converse need not
// hold — a communication can be local on a small domain by accident).
func Check(res *alignment.Result, n int) error {
	traffic, err := Run(res, n)
	if err != nil {
		return err
	}
	for _, ct := range traffic {
		if res.LocalComms[ct.Comm.ID] && !ct.Local() {
			// The classification ignores the constant term: a local
			// communication may still be a fixed translation (the
			// "local term" of Section 2.1). Anything beyond that is a
			// soundness bug.
			if !ct.Translation() {
				return fmt.Errorf("validate: comm %d (%s in %s) classified local but has %d transfers with %d distance vectors",
					ct.Comm.ID, ct.Comm.Access.Array, ct.Comm.Stmt.Name, ct.Transfers, ct.DistinctVectors)
			}
		}
	}
	return nil
}
