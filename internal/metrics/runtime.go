package metrics

import (
	"math"
	rtmetrics "runtime/metrics"
	"sort"
	"sync"
)

// Runtime sample names read on every scrape. All of them exist under
// the supported Go toolchain; samples the runtime does not recognize
// come back as KindBad and render as zero rather than failing the
// scrape.
const (
	rtGoroutines  = "/sched/goroutines:goroutines"
	rtHeapObjects = "/memory/classes/heap/objects:bytes"
	rtHeapLive    = "/gc/heap/live:bytes"
	rtMemTotal    = "/memory/classes/total:bytes"
	rtGCCycles    = "/gc/cycles/total:gc-cycles"
	rtAllocBytes  = "/gc/heap/allocs:bytes"
	rtGCPauses    = "/sched/pauses/total/gc:seconds"
	rtSchedLat    = "/sched/latencies:seconds"
)

// goSecondsBuckets are the fixed upper bounds (seconds, log scale)
// that the runtime's variable-width histograms are folded into for
// exposition: 1µs up to 10s.
var goSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// goRuntime reads the runtime/metrics samples once per scrape (via an
// OnCollect hook) and hands the latest values to func-backed series.
type goRuntime struct {
	mu      sync.Mutex
	samples []rtmetrics.Sample
	byName  map[string]int
}

func (g *goRuntime) read() {
	g.mu.Lock()
	rtmetrics.Read(g.samples)
	g.mu.Unlock()
}

// uint64At returns the sample's value for Uint64-kind samples, 0
// otherwise.
func (g *goRuntime) uint64At(name string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.samples[g.byName[name]]
	if s.Value.Kind() != rtmetrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// histAt folds a Float64Histogram-kind sample into the fixed seconds
// buckets; other kinds yield an empty snapshot.
func (g *goRuntime) histAt(name string) HistogramSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.samples[g.byName[name]]
	if s.Value.Kind() != rtmetrics.KindFloat64Histogram {
		return HistogramSnapshot{Bounds: goSecondsBuckets, Counts: make([]uint64, len(goSecondsBuckets)+1)}
	}
	return rebucket(s.Value.Float64Histogram(), goSecondsBuckets)
}

// rebucket folds a runtime histogram (variable bucket edges, possibly
// infinite at either end) into fixed upper bounds: each source bucket
// is assigned by its upper edge, and the sum — which the runtime does
// not track — is approximated by bucket midpoints, clamped to the
// finite edge for the open-ended buckets.
func rebucket(h *rtmetrics.Float64Histogram, bounds []float64) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	if h == nil {
		return out
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		idx := len(bounds)
		if !math.IsInf(hi, +1) {
			idx = sort.SearchFloat64s(bounds, hi)
		}
		out.Counts[idx] += c
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, +1):
			mid = 0
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, +1):
			mid = lo
		}
		out.Sum += mid * float64(c)
	}
	return out
}

// RegisterGoRuntime registers the resopt_go_* family set: Go runtime
// telemetry (goroutines, heap and total memory, GC cycles and pause
// distribution, scheduler latency) exported on every scrape from a
// single runtime/metrics read. Call at most once per registry.
func RegisterGoRuntime(r *Registry) {
	names := []string{
		rtGoroutines, rtHeapObjects, rtHeapLive, rtMemTotal,
		rtGCCycles, rtAllocBytes, rtGCPauses, rtSchedLat,
	}
	g := &goRuntime{samples: make([]rtmetrics.Sample, len(names)), byName: make(map[string]int, len(names))}
	for i, n := range names {
		g.samples[i].Name = n
		g.byName[n] = i
	}
	r.OnCollect(g.read)

	r.NewGaugeFunc("resopt_go_goroutines",
		"Current number of live goroutines.",
		func() float64 { return float64(g.uint64At(rtGoroutines)) })
	r.NewGaugeFunc("resopt_go_heap_objects_bytes",
		"Bytes of memory occupied by live heap objects plus dead objects not yet swept.",
		func() float64 { return float64(g.uint64At(rtHeapObjects)) })
	r.NewGaugeFunc("resopt_go_heap_live_bytes",
		"Heap bytes that were live at the end of the previous GC cycle.",
		func() float64 { return float64(g.uint64At(rtHeapLive)) })
	r.NewGaugeFunc("resopt_go_mem_total_bytes",
		"Total memory mapped by the Go runtime, all classes.",
		func() float64 { return float64(g.uint64At(rtMemTotal)) })
	r.NewCounterFunc("resopt_go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() uint64 { return g.uint64At(rtGCCycles) })
	r.NewCounterFunc("resopt_go_alloc_bytes_total",
		"Cumulative bytes allocated on the heap since process start.",
		func() uint64 { return g.uint64At(rtAllocBytes) })
	r.NewHistogramFunc("resopt_go_gc_pause_seconds",
		"Distribution of individual GC-related stop-the-world pause latencies.",
		func() HistogramSnapshot { return g.histAt(rtGCPauses) })
	r.NewHistogramFunc("resopt_go_sched_latency_seconds",
		"Distribution of goroutine scheduling latencies (time from runnable to running).",
		func() HistogramSnapshot { return g.histAt(rtSchedLat) })
}
