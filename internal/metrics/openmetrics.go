package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ContentTypeOpenMetrics is the Content-Type of the OpenMetrics
// exposition format, served when the scraper asks for it (Prometheus
// sends it in Accept when exemplar ingestion is enabled).
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders every family in the OpenMetrics text
// format: same sample values as WriteText, plus bucket exemplars and
// the mandatory # EOF terminator. Counter families drop their _total
// suffix in the metadata lines, as the format requires.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.collect.Lock()
	defer r.collect.Unlock()
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Strings(names)
	for _, n := range names {
		r.mu.Lock()
		f := r.fams[n]
		r.mu.Unlock()
		if err := f.writeOpenMetrics(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (f *family) writeOpenMetrics(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}
	// OpenMetrics names the counter family without the _total suffix
	// its samples carry.
	famName := f.name
	if f.typ == "counter" {
		famName = strings.TrimSuffix(famName, "_total")
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.typ); err != nil {
		return err
	}
	for _, c := range children {
		if err := f.writeChildOpenMetrics(w, c); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChildOpenMetrics(w io.Writer, c *child) error {
	if f.typ != "histogram" {
		// Counters and gauges render exactly as in the text format (the
		// counter sample keeps its _total name).
		return f.writeChild(w, c)
	}
	if c.hfn != nil {
		// Snapshot histograms carry no exemplars; the text rendering is
		// already valid OpenMetrics.
		return f.writeHistSnapshot(w, c, c.hfn())
	}
	d := c.hist
	var cum uint64
	for i := 0; i <= len(f.buckets); i++ {
		bound := math.Inf(+1)
		if i < len(f.buckets) {
			cum += d.counts[i].Load()
			bound = f.buckets[i]
		} else {
			cum += d.inf.Load()
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
			renderLabels(f.labels, c.labelValues, "le", bound), cum,
			renderExemplar(d.exemplars[i].Load())); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
		renderLabels(f.labels, c.labelValues, "", 0),
		formatFloat(math.Float64frombits(d.sumBits.Load()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
		renderLabels(f.labels, c.labelValues, "", 0), cum)
	return err
}

// renderExemplar renders ` # {k="v",...} value`, or "" for nil.
func renderExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	keys := make([]string, 0, len(e.Labels))
	for k := range e.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" # {")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(e.Labels[k]))
	}
	fmt.Fprintf(&b, "} %s", formatFloat(e.Value))
	return b.String()
}

// AcceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics format.
func AcceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}
