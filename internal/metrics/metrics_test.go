package metrics

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		"requests_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("Value = %d, want 3", c.Value())
	}
}

func TestCounterVecSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("hits_total", "", "path", "code")
	v.With(`/b"quote`, "200").Inc()
	v.With("/a", "500").Add(2)
	out := scrape(t, r)
	// Children render sorted by label values; quotes are escaped.
	ia := strings.Index(out, `hits_total{path="/a",code="500"} 2`)
	ib := strings.Index(out, `hits_total{path="/b\"quote",code="200"} 1`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("bad vec rendering (ia=%d ib=%d):\n%s", ia, ib, out)
	}
	// No HELP line when help is empty, but TYPE always present.
	if strings.Contains(out, "# HELP hits_total") {
		t.Errorf("unexpected HELP for empty help:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE hits_total counter") {
		t.Errorf("missing TYPE:\n%s", out)
	}
}

func TestGaugeAndFunc(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("in_flight", "")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(0.5)
	val := 7.0
	r.NewGaugeFunc("queue_depth", "", func() float64 { return val })
	r.NewCounterFunc("scenarios_total", "", func() uint64 { return 41 })
	out := scrape(t, r)
	for _, want := range []string{"in_flight 1.5\n", "queue_depth 7\n", "scenarios_total 41\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if g.Value() != 1.5 {
		t.Errorf("gauge Value = %v", g.Value())
	}
}

func TestVecWithFunc(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("cache_hits_total", "", "tier")
	v.WithFunc(func() uint64 { return 5 }, "plan")
	v.With("kernel").Add(9)
	out := scrape(t, r)
	for _, want := range []string{
		`cache_hits_total{tier="plan"} 5`,
		`cache_hits_total{tier="kernel"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 20} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{le="0.1"} 2` + "\n", // 0.05 and the exact bound 0.1
		`latency_seconds_bucket{le="1"} 3` + "\n",
		`latency_seconds_bucket{le="10"} 3` + "\n",
		`latency_seconds_bucket{le="+Inf"} 4` + "\n",
		"latency_seconds_sum 20.65\n",
		"latency_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("dur_seconds", "", []float64{1}, "endpoint")
	hv.With("/v1/optimize").Observe(0.5)
	out := scrape(t, r)
	for _, want := range []string{
		`dur_seconds_bucket{endpoint="/v1/optimize",le="1"} 1`,
		`dur_seconds_bucket{endpoint="/v1/optimize",le="+Inf"} 1`,
		`dur_seconds_sum{endpoint="/v1/optimize"} 0.5`,
		`dur_seconds_count{endpoint="/v1/optimize"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_total", "")
	r.NewCounter("aa_total", "")
	out := scrape(t, r)
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestEmptyVecSkipped(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("unused_total", "never used", "x")
	if out := scrape(t, r); strings.Contains(out, "unused_total") {
		t.Errorf("empty family rendered:\n%s", out)
	}
}

func TestOnCollectHook(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("jobs", "", "state")
	n := 0
	r.OnCollect(func() {
		n++
		g.With("queued").Set(float64(n))
	})
	out := scrape(t, r)
	if !strings.Contains(out, `jobs{state="queued"} 1`) {
		t.Errorf("hook value missing:\n%s", out)
	}
	out = scrape(t, r)
	if !strings.Contains(out, `jobs{state="queued"} 2`) {
		t.Errorf("hook not re-run:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	mustPanic("duplicate", func() { r.NewCounter("dup_total", "") })
	mustPanic("bad name", func() { r.NewCounter("1bad", "") })
	mustPanic("bad label", func() { r.NewCounterVec("v_total", "", "le") })
	mustPanic("label arity", func() { r.NewCounterVec("w_total", "", "a").With("x", "y") })
	mustPanic("bad buckets", func() { r.NewHistogram("h", "", []float64{2, 1}) })
}

func TestTrailingInfBucketStripped(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "", []float64{1, math.Inf(+1)})
	h.Observe(0.5)
	out := scrape(t, r)
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Errorf("want exactly one +Inf bucket:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n_total", "")
	v := r.NewCounterVec("l_total", "", "k")
	h := r.NewHistogram("d_seconds", "", nil)
	g := r.NewGauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With("a").Inc()
				v.With("b").Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 10; i++ {
		scrape(t, r)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	out := scrape(t, r)
	for _, want := range []string{`l_total{k="a"} 8000`, `l_total{k="b"} 8000`, "d_seconds_count 8000", "g 8000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestExemplars: ObserveWithExemplar attaches the exemplar to the
// bucket the value lands in, visible only under OpenMetrics; the
// default text exposition is byte-identical to plain observations.
func TestExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveWithExemplar(0.05, map[string]string{"trace_id": "abc123"})
	h.ObserveWithExemplar(0.5, map[string]string{"trace_id": "def456"})
	h.ObserveWithExemplar(5, nil) // no labels: plain observation

	text := scrape(t, r)
	if strings.Contains(text, "abc123") {
		t.Errorf("text exposition leaked an exemplar:\n%s", text)
	}

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	om := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1 # {trace_id="abc123"} 0.05`,
		`lat_seconds_bucket{le="1"} 2 # {trace_id="def456"} 0.5`,
		"lat_seconds_count 3\n",
		"# EOF\n",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics missing %q in:\n%s", want, om)
		}
	}
	if strings.Contains(om, `le="+Inf"} 3 #`) {
		t.Errorf("+Inf bucket gained an exemplar from unlabeled observe:\n%s", om)
	}
}

// TestOpenMetricsCounterNaming: the counter family metadata drops the
// _total suffix its samples keep, and negotiation picks the format.
func TestOpenMetricsNegotiation(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reqs_total", "Reqs.").Inc()

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	om := b.String()
	for _, want := range []string{"# TYPE reqs counter\n", "reqs_total 1\n"} {
		if !strings.Contains(om, want) {
			t.Errorf("missing %q in:\n%s", want, om)
		}
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeOpenMetrics {
		t.Errorf("negotiated Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Errorf("OpenMetrics body lacks # EOF terminator:\n%s", body)
	}

	plain, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("default Content-Type = %q", ct)
	}
}
