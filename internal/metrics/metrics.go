// Package metrics is a dependency-free Prometheus-style metric
// registry: counters, gauges and histograms — plain, labeled, or
// backed by a read callback — rendered in the Prometheus text
// exposition format (version 0.0.4) for a GET /metrics scrape.
//
// The package exists so the daemon's observability layer does not
// drag a client library into a module that otherwise has zero
// external dependencies. It implements exactly the subset the
// resoptd ops listener needs:
//
//   - Counter / CounterVec: monotone uint64 counts (request totals,
//     bytes, sweep work);
//   - Gauge / GaugeVec: instantaneous float64 values (in-flight
//     requests, queue depth, per-tier store sizes);
//   - Histogram / HistogramVec: fixed-bucket latency distributions
//     with _bucket/_sum/_count exposition;
//   - func-backed counters and gauges (WithFunc / NewCounterFunc /
//     NewGaugeFunc), which read an existing atomic counter at scrape
//     time instead of double-counting alongside it — this is how the
//     engine's CacheStats and the store's traffic counters are
//     exported without touching their hot paths;
//   - OnCollect hooks, run at the start of every scrape, for gauges
//     whose value is a snapshot of external state (job lifecycle
//     states, store tier sizes).
//
// All metric types are safe for concurrent use. Registration is not:
// register everything up front (duplicate or malformed names panic —
// they are programmer errors), then share the registry freely.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Registry holds a set of metric families and renders them in a
// stable order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	fams    map[string]*family
	hooks   []func()
	collect sync.Mutex // serializes scrapes (hooks may not be reentrant)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric name: its metadata plus its children (one per
// distinct label-value combination; a single child with no labels for
// plain metrics).
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one sample series. Exactly one of the value holders is
// used, according to the family type: counters use num or fn, gauges
// use bits or gfn, histograms use hist or hfn.
type child struct {
	labelValues []string

	num  atomic.Uint64 // counter value
	fn   func() uint64 // counter callback (nil: use num)
	bits atomic.Uint64 // gauge value, as math.Float64bits
	gfn  func() float64
	hist *histData
	hfn  func() HistogramSnapshot // histogram callback (nil: use hist)
}

type histData struct {
	counts  []atomic.Uint64 // per-bucket (non-cumulative), one per upper bound
	inf     atomic.Uint64   // observations above the last bound
	sumBits atomic.Uint64

	// Latest exemplar per bucket (one extra slot for +Inf), kept only
	// for the OpenMetrics exposition; the 0.0.4 text format cannot
	// carry exemplars and ignores these.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it,
// rendered on histogram bucket lines under the OpenMetrics format
// (e.g. `... # {trace_id="4bf9…"} 0.032`).
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// nameOK reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for rules, but
// accepted here like the reference client does).
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates a family, panicking on duplicate or invalid names.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !nameOK(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !nameOK(l) || l == "le" {
			panic("metrics: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("metrics: duplicate registration of " + name)
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets,
		children: make(map[string]*child)}
	r.fams[name] = f
	return f
}

// OnCollect registers a hook run at the start of every scrape, before
// any family is rendered. Use it to refresh gauges that mirror
// external state (job states, store tier sizes).
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// childFor returns (creating if needed) the child for the given label
// values, which must match the family's label names in count.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.typ == "histogram" {
			c.hist = &histData{
				counts:    make([]atomic.Uint64, len(f.buckets)),
				exemplars: make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
			}
		}
		f.children[key] = c
	}
	return c
}

func labelKey(values []string) string { return strings.Join(values, "\x00") }

// --- Counter ---

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.c.num.Add(1) }

// Add adds n.
func (c Counter) Add(n uint64) { c.c.num.Add(n) }

// Value returns the current count (func-backed counters read their
// callback).
func (c Counter) Value() uint64 {
	if c.c.fn != nil {
		return c.c.fn()
	}
	return c.c.num.Load()
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v CounterVec) With(values ...string) Counter {
	c := v.f.childFor(values)
	if c.fn != nil {
		panic("metrics: " + v.f.name + ": series is func-backed")
	}
	return Counter{c}
}

// WithFunc binds the series for the given label values to a read
// callback evaluated at scrape time. The callback must be monotone
// for the exposition to be a valid counter.
func (v CounterVec) WithFunc(fn func() uint64, values ...string) {
	v.f.childFor(values).fn = fn
}

// NewCounter registers a plain counter.
func (r *Registry) NewCounter(name, help string) Counter {
	f := r.register(name, help, "counter", nil, nil)
	return Counter{f.childFor(nil)}
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, "counter", nil, nil)
	f.childFor(nil).fn = fn
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, "counter", labels, nil)}
}

// --- Gauge ---

// Gauge is an instantaneous float64 metric.
type Gauge struct{ c *child }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		if g.c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g Gauge) Value() float64 {
	if g.c.gfn != nil {
		return g.c.gfn()
	}
	return math.Float64frombits(g.c.bits.Load())
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge {
	c := v.f.childFor(values)
	if c.gfn != nil {
		panic("metrics: " + v.f.name + ": series is func-backed")
	}
	return Gauge{c}
}

// WithFunc binds the series for the given label values to a read
// callback evaluated at scrape time.
func (v GaugeVec) WithFunc(fn func() float64, values ...string) {
	v.f.childFor(values).gfn = fn
}

// NewGauge registers a plain gauge.
func (r *Registry) NewGauge(name, help string) Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return Gauge{f.childFor(nil)}
}

// NewGaugeFunc registers a gauge whose value is read from fn at
// scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.childFor(nil).gfn = fn
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// --- Histogram ---

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution metric.
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	d := h.c.hist
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if idx < len(d.counts) {
		d.counts[idx].Add(1)
	} else {
		d.inf.Add(1)
	}
	for {
		old := d.sumBits.Load()
		if d.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveWithExemplar records one value and attaches an exemplar
// (typically {"trace_id": ...}) to the bucket it lands in, replacing
// that bucket's previous exemplar. Empty labels degrade to a plain
// Observe.
func (h Histogram) ObserveWithExemplar(v float64, labels map[string]string) {
	h.Observe(v)
	if len(labels) == 0 {
		return
	}
	d := h.c.hist
	idx := sort.SearchFloat64s(h.bounds, v)
	d.exemplars[idx].Store(&Exemplar{Labels: labels, Value: v})
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f.childFor(values), v.f.buckets}
}

// checkBuckets validates and copies histogram upper bounds.
func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: " + name + ": buckets not strictly increasing")
		}
	}
	// Strip a trailing +Inf: the format's implicit last bucket.
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1]
	}
	return append([]float64(nil), buckets...)
}

// NewHistogram registers a plain histogram over the given upper
// bounds (nil: DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, "histogram", nil, checkBuckets(name, buckets))
	return Histogram{f.childFor(nil), f.buckets}
}

// NewHistogramVec registers a labeled histogram family over the given
// upper bounds (nil: DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, "histogram", labels, checkBuckets(name, buckets))}
}

// HistogramSnapshot is one scrape-time view of a distribution whose
// buckets live outside the registry — the return type of the callback
// behind NewHistogramFunc. Counts are non-cumulative and one longer
// than Bounds; the extra final slot counts observations above the last
// bound (the +Inf bucket).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// NewHistogramFunc registers a histogram whose buckets, counts and sum
// are read from fn at every scrape — for distributions maintained
// elsewhere (e.g. the Go runtime's GC pause histogram) that cannot be
// fed through Observe. The snapshot's counts must be monotone across
// scrapes for the exposition to be a valid histogram.
func (r *Registry) NewHistogramFunc(name, help string, fn func() HistogramSnapshot) {
	f := r.register(name, help, "histogram", nil, nil)
	f.childFor(nil).hfn = fn
}

// --- Exposition ---

// WriteText renders every family in the Prometheus text format,
// sorted by metric name (children sorted by label values), after
// running the collect hooks.
func (r *Registry) WriteText(w io.Writer) error {
	r.collect.Lock()
	defer r.collect.Unlock()
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Strings(names)
	for _, n := range names {
		r.mu.Lock()
		f := r.fams[n]
		r.mu.Unlock()
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the exposition (the
// GET /metrics endpoint): the 0.0.4 text format by default, or
// OpenMetrics — which carries histogram exemplars — when the scraper
// negotiates it via Accept.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if AcceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil // labeled family with no series yet: skip entirely
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for _, c := range children {
		if err := f.writeChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, c *child) error {
	switch f.typ {
	case "counter":
		v := c.num.Load()
		if c.fn != nil {
			v = c.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labels, c.labelValues, "", 0), v)
		return err
	case "gauge":
		v := math.Float64frombits(c.bits.Load())
		if c.gfn != nil {
			v = c.gfn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, c.labelValues, "", 0), formatFloat(v))
		return err
	case "histogram":
		if c.hfn != nil {
			return f.writeHistSnapshot(w, c, c.hfn())
		}
		d := c.hist
		var cum uint64
		for i, bound := range f.buckets {
			cum += d.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				renderLabels(f.labels, c.labelValues, "le", bound), cum); err != nil {
				return err
			}
		}
		cum += d.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			renderLabels(f.labels, c.labelValues, "le", math.Inf(+1)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			renderLabels(f.labels, c.labelValues, "", 0),
			formatFloat(math.Float64frombits(d.sumBits.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			renderLabels(f.labels, c.labelValues, "", 0), cum)
		return err
	}
	return nil
}

// writeHistSnapshot renders a func-backed histogram from one snapshot.
// A short Counts slice is tolerated (missing buckets read as zero) so
// a misbehaving callback degrades instead of panicking a scrape.
func (f *family) writeHistSnapshot(w io.Writer, c *child, s HistogramSnapshot) error {
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			renderLabels(f.labels, c.labelValues, "le", bound), cum); err != nil {
			return err
		}
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		renderLabels(f.labels, c.labelValues, "le", math.Inf(+1)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
		renderLabels(f.labels, c.labelValues, "", 0), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
		renderLabels(f.labels, c.labelValues, "", 0), cum)
	return err
}

// renderLabels renders a {k="v",...} block, appending an le label for
// histogram buckets; empty when there are no labels at all.
func renderLabels(names, values []string, le string, bound float64) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		if math.IsInf(bound, +1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(bound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
