package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FederateSource is one node's scrape, as fetched from its /metrics
// endpoint, tagged with the node ID to inject.
type FederateSource struct {
	Node string
	Text string
}

// fedFamily accumulates one metric family across sources: metadata
// from the first source that carries it, samples from every source in
// the order given.
type fedFamily struct {
	help, typ string
	samples   []string
}

// Federate merges several nodes' text expositions into one valid
// 0.0.4 exposition: every sample gains a node="<id>" label, samples of
// the same family are grouped under a single # HELP/# TYPE pair (the
// format forbids repeating a family), and families are emitted sorted
// by name. Input lines that are not comments or samples (blank, # EOF)
// are dropped. Sources are assumed well-formed per node; a malformed
// line is passed through labeled as best as possible rather than
// failing the merge.
func Federate(w io.Writer, sources []FederateSource) error {
	fams := map[string]*fedFamily{}
	var order []string
	famFor := func(name string) *fedFamily {
		f, ok := fams[name]
		if !ok {
			f = &fedFamily{}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, src := range sources {
		cur := "" // family of the preceding # HELP/# TYPE block
		for _, line := range strings.Split(src.Text, "\n") {
			line = strings.TrimRight(line, "\r")
			switch {
			case line == "" || line == "# EOF":
				continue
			case strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE "):
				rest := line[len("# HELP "):]
				name, val, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				cur = name
				f := famFor(name)
				if strings.HasPrefix(line, "# HELP ") {
					if f.help == "" {
						f.help = val
					}
				} else if f.typ == "" {
					f.typ = val
				}
			case strings.HasPrefix(line, "#"):
				continue
			default:
				name := line
				if i := strings.IndexAny(line, "{ "); i >= 0 {
					name = line[:i]
				}
				// Histogram/summary samples (_bucket/_sum/_count) and
				// OpenMetrics-style suffixes group under the preceding
				// metadata's family; anything else is its own family.
				fam := name
				if cur != "" && (name == cur || strings.HasPrefix(name, cur+"_")) {
					fam = cur
				}
				famFor(fam).samples = append(famFor(fam).samples, injectLabel(line, "node", src.Node))
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		if f.typ != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
				return err
			}
		}
		for _, s := range f.samples {
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// injectLabel adds key="value" as the first label of a sample line:
// after the opening brace when the sample has labels (metric names
// cannot contain '{', so the first brace starts the label block), or
// as a fresh block before the value otherwise.
func injectLabel(line, key, value string) string {
	kv := key + `="` + escapeLabel(value) + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		sep := ","
		if strings.HasPrefix(line[i+1:], "}") {
			sep = ""
		}
		return line[:i+1] + kv + sep + line[i+1:]
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line // malformed: no value; pass through untouched
	}
	return line[:i] + "{" + kv + "}" + line[i:]
}
