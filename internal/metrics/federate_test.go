package metrics

import (
	"strings"
	"testing"
)

// TestFederate: two nodes' expositions merge into one valid 0.0.4
// exposition — every sample gains the node label, each family's
// HELP/TYPE appears exactly once, histogram suffix samples stay with
// their family, and families come out sorted.
func TestFederate(t *testing.T) {
	a := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{code="200"} 5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 1.5
lat_seconds_count 3
# TYPE up gauge
up 1
`
	b := `# TYPE up gauge
up 1
# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{code="200"} 7
`
	var out strings.Builder
	err := Federate(&out, []FederateSource{{Node: "nodeA", Text: a}, {Node: "nodeB", Text: b}})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()

	for _, want := range []string{
		`reqs_total{node="nodeA",code="200"} 5`,
		`reqs_total{node="nodeB",code="200"} 7`,
		`lat_seconds_bucket{node="nodeA",le="+Inf"} 3`,
		`lat_seconds_sum{node="nodeA"} 1.5`,
		`up{node="nodeA"} 1`,
		`up{node="nodeB"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	for _, meta := range []string{"# HELP reqs_total", "# TYPE reqs_total", "# TYPE up", "# TYPE lat_seconds"} {
		if n := strings.Count(got, meta); n != 1 {
			t.Errorf("%q appears %d times, want once:\n%s", meta, n, got)
		}
	}
	// Families sorted by name: lat_seconds, reqs_total, up.
	il, ir, iu := strings.Index(got, "# TYPE lat_seconds"), strings.Index(got, "# TYPE reqs_total"), strings.Index(got, "# TYPE up")
	if !(il < ir && ir < iu) {
		t.Errorf("families not sorted (%d, %d, %d):\n%s", il, ir, iu, got)
	}
	// The histogram's suffix samples grouped under the family header,
	// not as their own families.
	if strings.Contains(got, "# TYPE lat_seconds_bucket") || strings.Contains(got, "# TYPE lat_seconds_sum") {
		t.Errorf("histogram suffixes split into own families:\n%s", got)
	}
}

// TestInjectLabel: the node label lands as the first label whatever
// the sample's shape.
func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m{a="1"} 2`, `m{node="x",a="1"} 2`},
		{`m 2`, `m{node="x"} 2`},
		{`m{} 2`, `m{node="x"} 2`},
		{`m{a="b{c"} 2`, `m{node="x",a="b{c"} 2`},
		{`garbage-no-value`, `garbage-no-value`},
	}
	for _, c := range cases {
		if got := injectLabel(c.in, "node", "x"); got != c.want {
			t.Errorf("injectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
