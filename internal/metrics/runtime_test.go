package metrics

import (
	"math"
	rtmetrics "runtime/metrics"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramFunc: a func-backed histogram renders its snapshot with
// cumulative buckets; a short Counts slice degrades to zeros instead
// of panicking the scrape.
func TestHistogramFunc(t *testing.T) {
	r := NewRegistry()
	r.NewHistogramFunc("hf_seconds", "Help.", func() HistogramSnapshot {
		return HistogramSnapshot{Bounds: []float64{0.1, 1}, Counts: []uint64{1, 2, 3}, Sum: 4.5}
	})
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE hf_seconds histogram\n",
		`hf_seconds_bucket{le="0.1"} 1` + "\n",
		`hf_seconds_bucket{le="1"} 3` + "\n",
		`hf_seconds_bucket{le="+Inf"} 6` + "\n",
		"hf_seconds_sum 4.5\n",
		"hf_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	r2 := NewRegistry()
	r2.NewHistogramFunc("short_seconds", "", func() HistogramSnapshot {
		return HistogramSnapshot{Bounds: []float64{0.5, 5}, Counts: []uint64{2}}
	})
	out = scrape(t, r2)
	for _, want := range []string{
		`short_seconds_bucket{le="5"} 2`,
		`short_seconds_bucket{le="+Inf"} 2`,
		"short_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("short snapshot: missing %q in:\n%s", want, out)
		}
	}
}

// TestRebucket: runtime histogram buckets fold into the fixed bounds
// by upper edge, open-ended buckets land in the overflow slot, and the
// approximated sum clamps the infinite edges.
func TestRebucket(t *testing.T) {
	h := &rtmetrics.Float64Histogram{
		Counts:  []uint64{2, 3, 4},
		Buckets: []float64{math.Inf(-1), 1e-7, 5e-6, math.Inf(+1)},
	}
	bounds := goSecondsBuckets
	s := rebucket(h, bounds)
	if len(s.Counts) != len(bounds)+1 {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(bounds)+1)
	}
	// (-Inf,1e-7] fits under the 1µs bound; (1e-7,5e-6] under 10µs;
	// (5e-6,+Inf) overflows.
	if s.Counts[0] != 2 || s.Counts[1] != 3 || s.Counts[len(bounds)] != 4 {
		t.Errorf("counts = %v", s.Counts)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != 9 {
		t.Errorf("total observations = %d, want 9", total)
	}
	// Sum ≈ 2·1e-7 (clamped to the finite edge) + 3·2.55e-6 + 4·5e-6.
	want := 2*1e-7 + 3*(1e-7+5e-6)/2 + 4*5e-6
	if diff := s.Sum - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
	if got := rebucket(nil, bounds); got.Sum != 0 || len(got.Counts) != len(bounds)+1 {
		t.Errorf("nil histogram snapshot: %+v", got)
	}
}

// TestRegisterGoRuntime: the resopt_go_* families expose live runtime
// telemetry — a running process has goroutines and mapped memory, and
// the histograms render as valid families.
func TestRegisterGoRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterGoRuntime(r)
	out := scrape(t, r)

	value := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(out, "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("%s value %q: %v", name, v, err)
				}
				return f
			}
		}
		t.Fatalf("no %s sample in:\n%s", name, out)
		return 0
	}
	if v := value("resopt_go_goroutines"); v < 1 {
		t.Errorf("goroutines = %g, want >= 1", v)
	}
	if v := value("resopt_go_mem_total_bytes"); v <= 0 {
		t.Errorf("mem_total_bytes = %g, want > 0", v)
	}
	if v := value("resopt_go_alloc_bytes_total"); v <= 0 {
		t.Errorf("alloc_bytes_total = %g, want > 0", v)
	}
	for _, want := range []string{
		"# TYPE resopt_go_goroutines gauge\n",
		"# TYPE resopt_go_gc_cycles_total counter\n",
		"# TYPE resopt_go_gc_pause_seconds histogram\n",
		"# TYPE resopt_go_sched_latency_seconds histogram\n",
		`resopt_go_gc_pause_seconds_bucket{le="+Inf"}`,
		"resopt_go_sched_latency_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
