package store

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// TestExportApplyRoundTrip: a plan exported by content address from
// one store applies into another and serves identically — the
// cluster replication path.
func TestExportApplyRoundTrip(t *testing.T) {
	src, dst := openTemp(t), openTemp(t)
	key := "m=2|opts={}|for i {\n a[i]=b[i]\n}"
	recs := []engine.PlanRecord{{Class: 1, Vectorizable: true}}
	src.PutPlan(key, recs, "")

	addr := PlanAddr(key)
	gotKey, gotRecs, errMsg, ok := src.ExportPlan(addr)
	if !ok || gotKey != key || errMsg != "" || !reflect.DeepEqual(gotRecs, recs) {
		t.Fatalf("export: ok=%v key=%q err=%q recs=%+v", ok, gotKey, errMsg, gotRecs)
	}
	if err := dst.ApplyPlan(gotKey, gotRecs, errMsg); err != nil {
		t.Fatal(err)
	}
	dstRecs, _, ok := dst.GetPlan(key)
	if !ok || !reflect.DeepEqual(dstRecs, recs) {
		t.Fatalf("applied plan does not serve: ok=%v recs=%+v", ok, dstRecs)
	}
}

// TestExportPlanRejects: invalid addresses, absent plans, and moved
// files (address/key mismatch) are all misses, never wrong data.
func TestExportPlanRejects(t *testing.T) {
	st := openTemp(t)
	for _, addr := range []string{"", "zz", "../../etc/passwd", PlanAddr("never stored")} {
		if _, _, _, ok := st.ExportPlan(addr); ok {
			t.Errorf("ExportPlan(%q) succeeded", addr)
		}
	}
	// A present plan exports fine; a different key's address stays a
	// miss even with files on disk.
	st.PutPlan("real key", []engine.PlanRecord{{Class: 0}}, "")
	if _, _, _, ok := st.ExportPlan(PlanAddr("real key")); !ok {
		t.Error("stored plan did not export")
	}
	if _, _, _, ok := st.ExportPlan(PlanAddr("other key")); ok {
		t.Error("absent address served a plan")
	}
}

// TestApplyPlanValidates: undecodable peer payloads are rejected at
// apply time, not persisted.
func TestApplyPlanValidates(t *testing.T) {
	st := openTemp(t)
	if err := st.ApplyPlan("", nil, ""); err == nil {
		t.Error("empty key accepted")
	}
	if err := st.ApplyPlan("k", []engine.PlanRecord{{Class: 99}}, ""); err == nil {
		t.Error("invalid class accepted")
	}
	if _, _, ok := st.GetPlan("k"); ok {
		t.Error("rejected plan was persisted anyway")
	}
	if err := st.ApplyPlan("k", []engine.PlanRecord{{Class: 1}}, ""); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestSnapshotRawRoundTrip: raw snapshot replication preserves the
// exact bytes (the byte-identical re-run guarantee) and rejects
// non-snapshot payloads and bad names.
func TestSnapshotRawRoundTrip(t *testing.T) {
	src, dst := openTemp(t), openTemp(t)
	snap := &Snapshot{Scenarios: 1, Results: []engine.Result{{Name: "s"}}}
	if _, err := src.SaveSnapshot("suite", snap); err != nil {
		t.Fatal(err)
	}
	raw, err := src.GetSnapshotRaw("suite")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.PutSnapshotRaw("suite", raw); err != nil {
		t.Fatal(err)
	}
	got, err := dst.GetSnapshotRaw("suite")
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("replicated snapshot bytes differ (err=%v)", err)
	}
	if _, err := dst.LoadSnapshot("suite"); err != nil {
		t.Fatalf("replicated snapshot does not load: %v", err)
	}
	if err := dst.PutSnapshotRaw("junk", []byte("not json")); err == nil {
		t.Error("non-snapshot payload accepted")
	}
	if err := dst.PutSnapshotRaw("../escape", raw); err == nil {
		t.Error("bad snapshot name accepted")
	}
	if _, err := dst.GetSnapshotRaw("../escape"); err == nil {
		t.Error("bad snapshot name readable")
	}
}
