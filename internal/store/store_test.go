package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/compiled"
	"repro/internal/engine"
	"repro/internal/intmat"
	"repro/internal/scenarios"
)

// stripPhases clears the run-dependent phase attribution from result
// copies, so determinism comparisons see only the plan content
// (mirrors the engine package's test helper; Phases never serialize,
// so loaded snapshots carry nil).
func stripPhases(rs []engine.Result) []engine.Result {
	out := make([]engine.Result, len(rs))
	for i, r := range rs {
		r.Phases = nil
		out[i] = r
	}
	return out
}

// stripSnap is stripPhases lifted to a snapshot copy.
func stripSnap(s *Snapshot) *Snapshot {
	c := *s
	c.Results = stripPhases(s.Results)
	return &c
}

// quiet silences the stderr warning log; warnings stay inspectable
// via Warnings().
func quiet(s *Store) *Store {
	s.logf = nil
	return s
}

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return quiet(s)
}

// TestWarmStartByteIdentical is the acceptance scenario: a second
// identical batch run against a warm store serves every plan-tier
// memory miss from disk and emits a byte-identical results file, and
// the diff of the two snapshots reports zero regressions.
func TestWarmStartByteIdentical(t *testing.T) {
	st := openTemp(t)
	suite := scenarios.Generate(scenarios.Config{Seed: 7})
	cold := engine.Run(suite, engine.Options{Workers: 4, Store: st})
	warm := engine.Run(suite, engine.Options{Workers: 4, Store: st})

	if !reflect.DeepEqual(stripPhases(cold.Results), stripPhases(warm.Results)) {
		t.Fatal("warm results differ from cold results")
	}
	total := warm.Cache.DiskHits + warm.Cache.DiskMisses
	if total == 0 || float64(warm.Cache.DiskHits) < 0.9*float64(total) {
		t.Fatalf("warm run served %d/%d plan loads from disk, want ≥ 90%%",
			warm.Cache.DiskHits, total)
	}

	var a, b bytes.Buffer
	if err := Take(cold).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Take(warm).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cold and warm snapshots serialize differently")
	}

	d := Compare(Take(cold), Take(warm))
	if d.Regressions != 0 || len(d.Changed) != 0 {
		t.Fatalf("diff of identical runs: %d regressions, %d changed", d.Regressions, len(d.Changed))
	}
	if len(st.Warnings()) != 0 {
		t.Errorf("clean round-trip produced warnings: %v", st.Warnings())
	}
}

// TestPlanRoundTrip: PutPlan/GetPlan round-trips records and the
// error string exactly.
func TestPlanRoundTrip(t *testing.T) {
	st := openTemp(t)
	recs := []engine.PlanRecord{{Class: 1, Vectorizable: true, MacroReduction: true}}
	st.PutPlan("some key", recs, "")
	got, errMsg, ok := st.GetPlan("some key")
	if !ok || errMsg != "" || !reflect.DeepEqual(got, recs) {
		t.Fatalf("round-trip: ok=%v err=%q got=%+v", ok, errMsg, got)
	}
	st.PutPlan("failing key", nil, "boom")
	_, errMsg, ok = st.GetPlan("failing key")
	if !ok || errMsg != "boom" {
		t.Fatalf("error round-trip: ok=%v err=%q", ok, errMsg)
	}
	if _, _, ok := st.GetPlan("absent key"); ok {
		t.Fatal("absent key reported present")
	}
	s := st.Stats()
	if s.PlanPuts != 2 || s.PlanGetHits != 2 || s.PlanGetMisses != 1 {
		t.Errorf("stats %+v, want 2 puts / 2 hits / 1 miss", s)
	}
}

// TestCorruptFilesSkipped: truncated or garbage plan files are
// skipped with a warning — never a panic, never wrong data — and the
// engine recomputes and heals them.
func TestCorruptFilesSkipped(t *testing.T) {
	st := openTemp(t)
	st.PutPlan("key A", []engine.PlanRecord{{Class: 2}}, "")
	path := st.planPath("key A")

	for name, corrupt := range map[string][]byte{
		"truncated": []byte(`{"key":"key A","plans":[{"cla`),
		"garbage":   []byte("\x00\x01not json"),
		"empty":     nil,
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := st.GetPlan("key A"); ok {
			t.Errorf("%s file reported a hit", name)
		}
	}
	if len(st.Warnings()) < 3 {
		t.Errorf("3 corrupt reads produced %d warnings", len(st.Warnings()))
	}

	// A key-mismatched file (e.g. moved between stores) is a miss too.
	st.PutPlan("key B", []engine.PlanRecord{{Class: 3}}, "")
	data, err := os.ReadFile(st.planPath("key B"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.GetPlan("key A"); ok {
		t.Error("key-mismatched file reported a hit")
	}

	// The engine heals the corrupt entry on its next run.
	suite := scenarios.Generate(scenarios.Config{Seed: 3, Random: 1, NoExamples: true})
	clean := engine.Run(suite, engine.Options{})
	dirty := quiet(mustOpen(t, filepath.Dir(st.Dir())))
	healed := engine.Run(suite, engine.Options{Store: dirty})
	if !reflect.DeepEqual(stripPhases(clean.Results), stripPhases(healed.Results)) {
		t.Fatal("corrupt store changed engine results")
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSnapshots: save/load/list round-trip inside the store, and
// name validation.
func TestSnapshots(t *testing.T) {
	st := openTemp(t)
	suite := scenarios.Generate(scenarios.Config{Seed: 2, Random: 1, NoExamples: true})
	snap := Take(engine.Run(suite, engine.Options{}))
	if _, err := st.SaveSnapshot("before", snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadSnapshot("before")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSnap(snap), got) {
		t.Fatal("snapshot load ≠ save")
	}
	if _, err := st.SaveSnapshot("../escape", snap); err == nil {
		t.Error("path-traversal snapshot name accepted")
	}
	if _, err := st.SaveSnapshot("after.run-2", snap); err != nil {
		t.Fatal(err)
	}
	names, err := st.ListSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"after.run-2", "before"}) {
		t.Errorf("ListSnapshots = %v", names)
	}
}

// TestEmitters: WriteJSON round-trips through ReadSnapshot; WriteCSV
// has one row per scenario plus a header.
func TestEmitters(t *testing.T) {
	suite := scenarios.Generate(scenarios.Config{Seed: 2, Random: 1, NoExamples: true})
	snap := Take(engine.Run(suite, engine.Options{}))

	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSnap(snap), got) {
		t.Fatal("JSON emit did not round-trip")
	}

	var csv bytes.Buffer
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(snap.Results)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(snap.Results)+1)
	}
	if !strings.HasPrefix(lines[0], "name,local,macro,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestCompare: regressions (new failures, worse classes, slower
// model time) are flagged; improvements and additions are not.
func TestCompare(t *testing.T) {
	base := &Snapshot{Results: []engine.Result{
		{Name: "a", Classes: [4]int{3, 1, 0, 0}, ModelTime: 100, Vectorizable: 2},
		{Name: "b", Classes: [4]int{2, 0, 1, 1}, ModelTime: 200},
		{Name: "c", Classes: [4]int{1, 0, 0, 0}, ModelTime: 0},
		{Name: "gone", Classes: [4]int{1, 0, 0, 0}},
	}}
	next := &Snapshot{Results: []engine.Result{
		// a: regressed — lost a local comm, gained a general, slower.
		{Name: "a", Classes: [4]int{2, 1, 0, 1}, ModelTime: 150, Vectorizable: 2},
		// b: improved — faster, fewer generals.
		{Name: "b", Classes: [4]int{2, 0, 2, 0}, ModelTime: 120},
		// c: now fails.
		{Name: "c", Err: "boom"},
		// new scenario.
		{Name: "fresh", Classes: [4]int{1, 0, 0, 0}},
	}}
	d := Compare(base, next)
	if d.Regressions != 2 {
		t.Errorf("regressions = %d, want 2 (a, c)", d.Regressions)
	}
	if len(d.Changed) != 3 {
		t.Errorf("changed = %d, want 3", len(d.Changed))
	}
	if !reflect.DeepEqual(d.Added, []string{"fresh"}) || !reflect.DeepEqual(d.Removed, []string{"gone"}) {
		t.Errorf("added %v / removed %v", d.Added, d.Removed)
	}
	rep := d.Report()
	for _, want := range []string{"2 regressions", "! a", "! c", "~ b", "+ fresh", "- gone", "now fails"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	same := Compare(base, base)
	if same.Regressions != 0 || len(same.Changed) != 0 || same.Unchanged != 4 {
		t.Errorf("self-diff: %+v", same)
	}
}

// TestKernelRoundTrip: kernel records persist and reload under their
// op:key, with key verification and corrupt-file tolerance.
func TestKernelRoundTrip(t *testing.T) {
	s := openTemp(t)
	rec := intmat.KernelRec{A: intmat.Rec{R: 2, C: 2, V: []int64{1, 2, 3, 4}}}
	s.PutKernel("hermiteL:2x2:1,2,3,4", rec)
	got, ok := s.GetKernel("hermiteL:2x2:1,2,3,4")
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}
	if _, ok := s.GetKernel("hermiteL:absent"); ok {
		t.Error("absent kernel key reported present")
	}
	// A moved/colliding file (stored key ≠ requested) is a miss.
	src := s.kernelPath("hermiteL:2x2:1,2,3,4")
	dst := s.kernelPath("kernel:other")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetKernel("kernel:other"); ok {
		t.Error("key-mismatched kernel file served")
	}
	// Corrupt JSON is a miss with a warning, never a panic.
	if err := os.WriteFile(dst, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetKernel("kernel:other"); ok {
		t.Error("corrupt kernel file served")
	}
	if len(s.Warnings()) == 0 {
		t.Error("no warnings recorded for bad kernel files")
	}
	st := s.Stats()
	if st.KernelPuts != 1 || st.KernelGetHits != 1 || st.KernelGetMisses < 2 {
		t.Errorf("kernel stats %+v", st)
	}
}

// TestKernelTierWarmStart: after the plan tier is wiped (GC, version
// bump, new scenarios), a warm store still serves the expensive
// linear-algebra kernels from disk — and the results are identical.
func TestKernelTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	suite := scenarios.Generate(scenarios.Config{Seed: 5, Random: 3, NoExamples: true})
	cold := engine.Run(suite, engine.Options{Workers: 2, Store: quiet(s1)})
	if s1.Stats().KernelPuts == 0 {
		t.Fatal("cold run persisted no kernels")
	}
	if cold.Cache.KernelDiskHits != 0 {
		t.Errorf("cold run had %d kernel disk hits", cold.Cache.KernelDiskHits)
	}

	// Wipe the plan tier so the warm run has to rebuild plans — but
	// the kernels it needs are all on disk.
	if err := os.RemoveAll(filepath.Join(s1.Dir(), "plans")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := engine.Run(suite, engine.Options{Workers: 2, Store: quiet(s2)})
	if !reflect.DeepEqual(stripPhases(cold.Results), stripPhases(warm.Results)) {
		t.Fatal("kernel-warm results differ from cold results")
	}
	if warm.Cache.KernelDiskHits == 0 {
		t.Error("plan-wiped warm run served no kernels from disk")
	}
	if warm.Cache.KernelMisses != 0 {
		t.Errorf("plan-wiped warm run recomputed %d kernels", warm.Cache.KernelMisses)
	}
}

// TestGCSweepsKernels: the age criterion collects kernel files like
// plan files.
func TestGCSweepsKernels(t *testing.T) {
	s := openTemp(t)
	for i, key := range []string{"k:a", "k:b", "k:c"} {
		s.PutKernel(key, intmat.KernelRec{A: intmat.Rec{R: 1, C: 1, V: []int64{int64(i)}}})
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, key := range []string{"k:a", "k:b"} {
		if err := os.Chtimes(s.kernelPath(key), old, old); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC(GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedAge != 2 || res.Kept != 1 {
		t.Fatalf("gc removed %d aged, kept %d; want 2/1 (%+v)", res.RemovedAge, res.Kept, res)
	}
	if _, ok := s.GetKernel("k:c"); !ok {
		t.Error("survivor kernel unreadable after gc")
	}
}

// TestJobRoundTrip: the jobs tier persists finished jobs and refuses
// unfinished ones and bad ids.
func TestJobRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := time.Now().UTC().Truncate(time.Second)
	rec := &JobRecord{
		Job: api.Job{ID: "job-000007", Status: api.JobDone, Created: done, Finished: &done,
			Progress: api.JobProgress{Done: 1, Total: 1}},
		Results: []api.BatchLine{{Name: "x", ModelTimeUs: 42}},
		Summary: api.BatchSummaryBody{Scenarios: 1, TotalModelTime: 42},
	}
	if err := s.SaveJob(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadJob("job-000007")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip:\n got  %+v\n want %+v", got, rec)
	}
	ids, err := s.ListJobs()
	if err != nil || !reflect.DeepEqual(ids, []string{"job-000007"}) {
		t.Fatalf("ListJobs = %v (err %v)", ids, err)
	}
	if err := s.SaveJob(&JobRecord{Job: api.Job{ID: "job-000008", Status: api.JobRunning}}); err == nil {
		t.Error("running job accepted by SaveJob")
	}
	if err := s.SaveJob(&JobRecord{Job: api.Job{ID: "../escape", Status: api.JobDone}}); err == nil {
		t.Error("path-escaping job id accepted")
	}
	if err := s.DeleteJob("job-000007"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob("job-000007"); err != nil {
		t.Errorf("deleting an absent job should be a no-op, got %v", err)
	}
	if ids, _ := s.ListJobs(); len(ids) != 0 {
		t.Errorf("jobs remain after delete: %v", ids)
	}
}

// TestCompiledTierRoundTrip exercises the compiled-artifact tier:
// persisted artifacts come back byte-identical, key verification
// rejects moved files, and the tier shows up in sizes and stats.
func TestCompiledTierRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	suite := scenarios.Generate(scenarios.Config{Random: 1})
	art := compiled.Compile(&suite[0])
	key := art.Key

	if _, ok := s.GetCompiled(key); ok {
		t.Fatal("empty store served a compiled artifact")
	}
	s.PutCompiled(key, art.Rec())
	rec, ok := s.GetCompiled(key)
	if !ok {
		t.Fatal("compiled artifact not served back")
	}
	back, err := compiled.FromRec(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, back) {
		t.Fatalf("compiled round-trip mismatch:\n  in:  %+v\n  out: %+v", art, back)
	}
	if _, ok := s.GetCompiled(key + "|other"); ok {
		t.Fatal("compiled tier served a record under the wrong key")
	}
	if ts := s.TierSizes()["compiled"]; ts.Files != 1 {
		t.Fatalf("compiled tier sizes = %+v", ts)
	}
	st := s.Stats()
	if st.CompiledPuts != 1 || st.CompiledGetHits != 1 || st.CompiledGetMisses != 2 {
		t.Fatalf("compiled tier stats = %+v", st)
	}
}
