package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenarios"
)

// quiet silences the stderr warning log; warnings stay inspectable
// via Warnings().
func quiet(s *Store) *Store {
	s.logf = nil
	return s
}

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return quiet(s)
}

// TestWarmStartByteIdentical is the acceptance scenario: a second
// identical batch run against a warm store serves every plan-tier
// memory miss from disk and emits a byte-identical results file, and
// the diff of the two snapshots reports zero regressions.
func TestWarmStartByteIdentical(t *testing.T) {
	st := openTemp(t)
	suite := scenarios.Generate(scenarios.Config{Seed: 7})
	cold := engine.Run(suite, engine.Options{Workers: 4, Store: st})
	warm := engine.Run(suite, engine.Options{Workers: 4, Store: st})

	if !reflect.DeepEqual(cold.Results, warm.Results) {
		t.Fatal("warm results differ from cold results")
	}
	total := warm.Cache.DiskHits + warm.Cache.DiskMisses
	if total == 0 || float64(warm.Cache.DiskHits) < 0.9*float64(total) {
		t.Fatalf("warm run served %d/%d plan loads from disk, want ≥ 90%%",
			warm.Cache.DiskHits, total)
	}

	var a, b bytes.Buffer
	if err := Take(cold).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Take(warm).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cold and warm snapshots serialize differently")
	}

	d := Compare(Take(cold), Take(warm))
	if d.Regressions != 0 || len(d.Changed) != 0 {
		t.Fatalf("diff of identical runs: %d regressions, %d changed", d.Regressions, len(d.Changed))
	}
	if len(st.Warnings()) != 0 {
		t.Errorf("clean round-trip produced warnings: %v", st.Warnings())
	}
}

// TestPlanRoundTrip: PutPlan/GetPlan round-trips records and the
// error string exactly.
func TestPlanRoundTrip(t *testing.T) {
	st := openTemp(t)
	recs := []engine.PlanRecord{{Class: 1, Vectorizable: true, MacroReduction: true}}
	st.PutPlan("some key", recs, "")
	got, errMsg, ok := st.GetPlan("some key")
	if !ok || errMsg != "" || !reflect.DeepEqual(got, recs) {
		t.Fatalf("round-trip: ok=%v err=%q got=%+v", ok, errMsg, got)
	}
	st.PutPlan("failing key", nil, "boom")
	_, errMsg, ok = st.GetPlan("failing key")
	if !ok || errMsg != "boom" {
		t.Fatalf("error round-trip: ok=%v err=%q", ok, errMsg)
	}
	if _, _, ok := st.GetPlan("absent key"); ok {
		t.Fatal("absent key reported present")
	}
	s := st.Stats()
	if s.PlanPuts != 2 || s.PlanGetHits != 2 || s.PlanGetMisses != 1 {
		t.Errorf("stats %+v, want 2 puts / 2 hits / 1 miss", s)
	}
}

// TestCorruptFilesSkipped: truncated or garbage plan files are
// skipped with a warning — never a panic, never wrong data — and the
// engine recomputes and heals them.
func TestCorruptFilesSkipped(t *testing.T) {
	st := openTemp(t)
	st.PutPlan("key A", []engine.PlanRecord{{Class: 2}}, "")
	path := st.planPath("key A")

	for name, corrupt := range map[string][]byte{
		"truncated": []byte(`{"key":"key A","plans":[{"cla`),
		"garbage":   []byte("\x00\x01not json"),
		"empty":     nil,
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := st.GetPlan("key A"); ok {
			t.Errorf("%s file reported a hit", name)
		}
	}
	if len(st.Warnings()) < 3 {
		t.Errorf("3 corrupt reads produced %d warnings", len(st.Warnings()))
	}

	// A key-mismatched file (e.g. moved between stores) is a miss too.
	st.PutPlan("key B", []engine.PlanRecord{{Class: 3}}, "")
	data, err := os.ReadFile(st.planPath("key B"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.GetPlan("key A"); ok {
		t.Error("key-mismatched file reported a hit")
	}

	// The engine heals the corrupt entry on its next run.
	suite := scenarios.Generate(scenarios.Config{Seed: 3, Random: 1, NoExamples: true})
	clean := engine.Run(suite, engine.Options{})
	dirty := quiet(mustOpen(t, filepath.Dir(st.Dir())))
	healed := engine.Run(suite, engine.Options{Store: dirty})
	if !reflect.DeepEqual(clean.Results, healed.Results) {
		t.Fatal("corrupt store changed engine results")
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSnapshots: save/load/list round-trip inside the store, and
// name validation.
func TestSnapshots(t *testing.T) {
	st := openTemp(t)
	suite := scenarios.Generate(scenarios.Config{Seed: 2, Random: 1, NoExamples: true})
	snap := Take(engine.Run(suite, engine.Options{}))
	if _, err := st.SaveSnapshot("before", snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadSnapshot("before")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("snapshot load ≠ save")
	}
	if _, err := st.SaveSnapshot("../escape", snap); err == nil {
		t.Error("path-traversal snapshot name accepted")
	}
	if _, err := st.SaveSnapshot("after.run-2", snap); err != nil {
		t.Fatal(err)
	}
	names, err := st.ListSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"after.run-2", "before"}) {
		t.Errorf("ListSnapshots = %v", names)
	}
}

// TestEmitters: WriteJSON round-trips through ReadSnapshot; WriteCSV
// has one row per scenario plus a header.
func TestEmitters(t *testing.T) {
	suite := scenarios.Generate(scenarios.Config{Seed: 2, Random: 1, NoExamples: true})
	snap := Take(engine.Run(suite, engine.Options{}))

	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("JSON emit did not round-trip")
	}

	var csv bytes.Buffer
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(snap.Results)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(snap.Results)+1)
	}
	if !strings.HasPrefix(lines[0], "name,local,macro,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestCompare: regressions (new failures, worse classes, slower
// model time) are flagged; improvements and additions are not.
func TestCompare(t *testing.T) {
	base := &Snapshot{Results: []engine.Result{
		{Name: "a", Classes: [4]int{3, 1, 0, 0}, ModelTime: 100, Vectorizable: 2},
		{Name: "b", Classes: [4]int{2, 0, 1, 1}, ModelTime: 200},
		{Name: "c", Classes: [4]int{1, 0, 0, 0}, ModelTime: 0},
		{Name: "gone", Classes: [4]int{1, 0, 0, 0}},
	}}
	next := &Snapshot{Results: []engine.Result{
		// a: regressed — lost a local comm, gained a general, slower.
		{Name: "a", Classes: [4]int{2, 1, 0, 1}, ModelTime: 150, Vectorizable: 2},
		// b: improved — faster, fewer generals.
		{Name: "b", Classes: [4]int{2, 0, 2, 0}, ModelTime: 120},
		// c: now fails.
		{Name: "c", Err: "boom"},
		// new scenario.
		{Name: "fresh", Classes: [4]int{1, 0, 0, 0}},
	}}
	d := Compare(base, next)
	if d.Regressions != 2 {
		t.Errorf("regressions = %d, want 2 (a, c)", d.Regressions)
	}
	if len(d.Changed) != 3 {
		t.Errorf("changed = %d, want 3", len(d.Changed))
	}
	if !reflect.DeepEqual(d.Added, []string{"fresh"}) || !reflect.DeepEqual(d.Removed, []string{"gone"}) {
		t.Errorf("added %v / removed %v", d.Added, d.Removed)
	}
	rep := d.Report()
	for _, want := range []string{"2 regressions", "! a", "! c", "~ b", "+ fresh", "- gone", "now fails"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	same := Compare(base, base)
	if same.Regressions != 0 || len(same.Changed) != 0 || same.Unchanged != 4 {
		t.Errorf("self-diff: %+v", same)
	}
}
