package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/api"
)

// JobRecord is the persisted form of one finished async batch job:
// the wire-visible Job plus its per-scenario results and summary —
// exactly the JSON shape GET /v1/jobs/{id}/results serves, so a
// reloaded job answers that endpoint byte-identically to the run that
// produced it.
type JobRecord struct {
	Job     api.Job              `json:"job"`
	Results []api.BatchLine      `json:"results"`
	Summary api.BatchSummaryBody `json:"summary"`
}

// jobID restricts persisted job ids to the server's job-%06d scheme
// (and keeps arbitrary ids from escaping the jobs/ directory).
var jobID = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

func (s *Store) jobPath(id string) (string, error) {
	if !jobID.MatchString(id) {
		return "", fmt.Errorf("store: bad job id %q", id)
	}
	return filepath.Join(s.root, "jobs", id+".json"), nil
}

// SaveJob persists a finished job under its id. Unfinished jobs are
// rejected: a running job's results are still growing, and reloading
// one after a restart would resurrect work no goroutine owns.
func (s *Store) SaveJob(rec *JobRecord) error {
	if !rec.Job.Status.Finished() {
		return fmt.Errorf("store: job %s is %s; only finished jobs persist", rec.Job.ID, rec.Job.Status)
	}
	path, err := s.jobPath(rec.Job.ID)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := s.writeAtomic(path, append(data, '\n')); err != nil {
		s.warnf("writing job %s: %v", path, err)
		return err
	}
	return nil
}

// LoadJob loads one persisted job by id. Corrupt or unreadable
// records are recorded as store warnings (visible in /v1/stats), like
// the plan and kernel tiers; a missing file is a plain error.
func (s *Store) LoadJob(id string) (*JobRecord, error) {
	path, err := s.jobPath(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.warnf("skipping unreadable job file %s: %v", path, err)
		}
		return nil, err
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		s.warnf("skipping corrupt job file %s: %v", path, err)
		return nil, fmt.Errorf("store: job %s: %w", path, err)
	}
	return &rec, nil
}

// ListJobs returns the persisted job ids, sorted (the server's
// job-%06d scheme sorts oldest first).
func (s *Store) ListJobs() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n := e.Name(); filepath.Ext(n) == ".json" {
			ids = append(ids, n[:len(n)-len(".json")])
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// DeleteJob removes a persisted job; deleting an absent job is a
// no-op (retention sweeps race with restarts).
func (s *Store) DeleteJob(id string) error {
	path, err := s.jobPath(id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		s.warnf("removing job %s: %v", path, err)
		return err
	}
	return nil
}
