package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"

	"repro/internal/engine"
)

// This file holds the replication surface the clustered serving tier
// uses: plans are addressed between nodes by content address (the
// canonical plan key contains raw program text, including newlines,
// so it cannot travel in a URL path), exported verbatim from one
// node's store, and applied into another's. Snapshots replicate as
// raw bytes so a re-run from any replica stays byte-identical to the
// original recording.

// PlanAddr returns the content address of a canonical plan key — the
// lowercase SHA-256 hex that names the key's plan file and its
// /v1/plans/{addr} resource.
func PlanAddr(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// planAddrRE matches a full SHA-256 content address.
var planAddrRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidPlanAddr reports whether addr is a well-formed content
// address, so HTTP handlers can reject junk before touching disk.
func ValidPlanAddr(addr string) bool { return planAddrRE.MatchString(addr) }

// ExportPlan loads the plan stored under a content address, returning
// the full canonical key alongside the records so the receiving node
// can verify addr == PlanAddr(key) before trusting it. ok is false
// when the address is invalid, absent, or the file is unreadable.
func (s *Store) ExportPlan(addr string) (key string, plans []engine.PlanRecord, errMsg string, ok bool) {
	if !ValidPlanAddr(addr) {
		return "", nil, "", false
	}
	path := filepath.Join(s.root, "plans", addr[:2], addr+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.warnf("skipping unreadable plan file %s: %v", path, err)
		}
		return "", nil, "", false
	}
	var f planFile
	if err := json.Unmarshal(data, &f); err != nil {
		s.warnf("skipping corrupt plan file %s: %v", path, err)
		return "", nil, "", false
	}
	if PlanAddr(f.Key) != addr {
		s.warnf("skipping plan file %s: stored key does not match address", path)
		return "", nil, "", false
	}
	return f.Key, f.Plans, f.Err, true
}

// ApplyPlan installs a plan replicated from a peer, verifying the
// records decode before persisting so a bad peer cannot poison the
// store with undecodable entries (a poisoned entry would only cost a
// recompute, but rejecting it keeps replication observable: apply
// either succeeds or errors).
func (s *Store) ApplyPlan(key string, plans []engine.PlanRecord, errMsg string) error {
	if key == "" {
		return fmt.Errorf("store: apply plan: empty key")
	}
	if err := engine.ValidateRecords(plans, errMsg); err != nil {
		return fmt.Errorf("store: apply plan %s: %w", PlanAddr(key)[:12], err)
	}
	s.PutPlan(key, plans, errMsg)
	return nil
}

// PutSnapshotRaw persists already-serialized snapshot bytes under
// name, verbatim. Replication uses this instead of decode + re-encode
// so a snapshot recorded on the owner re-runs byte-identically from
// any replica; the bytes are still required to parse as a snapshot
// before they are accepted.
func (s *Store) PutSnapshotRaw(name string, data []byte) error {
	path, err := s.snapshotPath(name)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: snapshot %s: not a snapshot: %w", name, err)
	}
	if err := s.writeAtomic(path, data); err != nil {
		s.warnf("writing snapshot %s: %v", path, err)
		return err
	}
	return nil
}

// GetSnapshotRaw reads a named snapshot's exact on-disk bytes, for
// replication to a peer.
func (s *Store) GetSnapshotRaw(name string) ([]byte, error) {
	path, err := s.snapshotPath(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
