package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
)

// seedPlans writes n distinct plan files and returns their keys.
func seedPlans(t *testing.T, s *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "key-" + string(rune('a'+i%26)) + "-" + filepath.Base(t.Name()) + "-" + time.Now().Format("150405") + "-" + string(rune('0'+i/26))
		s.PutPlan(keys[i], []engine.PlanRecord{{Class: 0}}, "")
	}
	if got := countPlans(t, s); got != n {
		t.Fatalf("seeded %d plan files, want %d", got, n)
	}
	return keys
}

func countPlans(t *testing.T, s *Store) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(filepath.Join(s.root, "plans"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// backdate shifts every plan file's mtime into the past.
func backdate(t *testing.T, s *Store, by time.Duration) {
	t.Helper()
	old := time.Now().Add(-by)
	err := filepath.WalkDir(filepath.Join(s.root, "plans"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.Chtimes(path, old, old)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGCAge: files idle past MaxAge are removed, fresh ones kept, and
// removed plans simply miss (the engine would recompute).
func TestGCAge(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := seedPlans(t, s, 6)
	backdate(t, s, 48*time.Hour)
	fresh := "fresh-key"
	s.PutPlan(fresh, []engine.PlanRecord{{Class: 1}}, "")

	res, err := s.GC(GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedAge != len(keys) || res.Kept != 1 {
		t.Errorf("GC removed %d by age, kept %d; want %d removed, 1 kept (%+v)",
			res.RemovedAge, res.Kept, len(keys), res)
	}
	if res.BytesFreed <= 0 {
		t.Errorf("BytesFreed = %d, want > 0", res.BytesFreed)
	}
	if _, _, ok := s.GetPlan(keys[0]); ok {
		t.Error("aged-out plan still readable")
	}
	if _, _, ok := s.GetPlan(fresh); !ok {
		t.Error("fresh plan was collected")
	}
}

// TestGCLRU: beyond MaxPlans the least recently *used* files go
// first — a GetPlan hit refreshes a file's recency.
func TestGCLRU(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := seedPlans(t, s, 8)
	backdate(t, s, time.Hour)
	// Touch two keys through the read path: they must survive.
	for _, k := range keys[:2] {
		if _, _, ok := s.GetPlan(k); !ok {
			t.Fatalf("seeded key %q unreadable", k)
		}
	}

	res, err := s.GC(GCOptions{MaxPlans: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedLRU != 5 || res.Kept != 3 {
		t.Errorf("GC removed %d by LRU, kept %d; want 5 removed, 3 kept", res.RemovedLRU, res.Kept)
	}
	for _, k := range keys[:2] {
		if _, _, ok := s.GetPlan(k); !ok {
			t.Errorf("recently used key %q was collected", k)
		}
	}
}

// TestGCDryRunAndTemp: DryRun counts without deleting; stale temp
// files are reclaimed, young ones kept.
func TestGCDryRunAndTemp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedPlans(t, s, 4)
	backdate(t, s, 48*time.Hour)

	shard := filepath.Join(s.root, "plans", "zz")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, ".tmp-stale")
	young := filepath.Join(shard, ".tmp-young")
	for _, p := range []string{stale, young} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	dry, err := s.GC(GCOptions{MaxAge: 24 * time.Hour, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if dry.RemovedAge != 4 || dry.RemovedTemp != 1 {
		t.Errorf("dry run reported %d/%d age/temp removals, want 4/1", dry.RemovedAge, dry.RemovedTemp)
	}
	if got := countPlans(t, s); got != 4 {
		t.Errorf("dry run deleted files: %d plan files left, want 4", got)
	}

	wet, err := s.GC(GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if wet.Removed() != 5 {
		t.Errorf("wet run removed %d files, want 5", wet.Removed())
	}
	if _, err := os.Stat(young); err != nil {
		t.Error("young temp file was reclaimed")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived")
	}
}

// TestSnapshotSpecRoundTrip: a snapshot saved with a spec loads with
// it intact, so the server can resolve re-runs by name.
func TestSnapshotSpecRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		Scenarios: 1,
		Results:   []engine.Result{{Name: "x"}},
		Spec:      &api.BatchSpec{Seed: 9, Random: 2, NoExamples: true},
	}
	if _, err := s.SaveSnapshot("withspec", snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSnapshot("withspec")
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec == nil || *got.Spec != *snap.Spec {
		t.Errorf("loaded spec %+v, want %+v", got.Spec, snap.Spec)
	}
}
