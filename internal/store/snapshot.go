package store

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/api"
	"repro/internal/engine"
)

// Snapshot is the persistable projection of an engine.BatchResult:
// the per-scenario results plus the deterministic aggregates, and
// nothing run-dependent (worker count, cache statistics). Two runs of
// the same suite — cold or warm, sequential or parallel — therefore
// serialize to byte-identical snapshots, which is what makes
// snapshots diffable across commits.
type Snapshot struct {
	Scenarios      int             `json:"scenarios"`
	ClassTotals    [4]int          `json:"class_totals"`
	TotalModelTime float64         `json:"total_model_time_us"`
	Errors         int             `json:"errors"`
	Results        []engine.Result `json:"results"`
	// Spec is the wire-level suite specification the snapshot was
	// generated from, when known. Suite generation is deterministic in
	// the spec, so a recorded spec makes the snapshot re-runnable by
	// name (api.BatchSpec.Snapshot): the server resolves the name back
	// to this spec, regenerates the identical suite, and diffs the
	// fresh results against Results.
	Spec *api.BatchSpec `json:"spec,omitempty"`
}

// Take projects a batch result down to its snapshot.
func Take(b *engine.BatchResult) *Snapshot {
	return &Snapshot{
		Scenarios:      len(b.Results),
		ClassTotals:    b.ClassTotals,
		TotalModelTime: b.TotalModelTime,
		Errors:         b.Errors,
		Results:        b.Results,
	}
}

// WriteJSON emits the snapshot as indented JSON (the -emit json
// format, and the on-disk snapshot format).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteCSV emits one row per scenario (the -emit csv format). The
// trailing phase columns carry the per-scenario cost attribution of
// the run that produced the snapshot; they are empty for snapshots
// loaded back from disk, where the attribution is not persisted.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "local", "macro", "decomposed", "general", "vectorizable", "model_time_us", "collectives", "err",
		"plan_source", "align_us", "kernel_us", "select_us", "store_us", "total_us"}); err != nil {
		return err
	}
	us := func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
	for _, r := range s.Results {
		row := []string{
			r.Name,
			strconv.Itoa(r.Classes[0]), strconv.Itoa(r.Classes[1]),
			strconv.Itoa(r.Classes[2]), strconv.Itoa(r.Classes[3]),
			strconv.Itoa(r.Vectorizable),
			strconv.FormatFloat(r.ModelTime, 'f', -1, 64),
			r.Collectives,
			r.Err,
			"", "", "", "", "", "",
		}
		if ph := r.Phases; ph != nil {
			row[9] = ph.PlanSource
			row[10], row[11] = us(ph.AlignUs), us(ph.KernelUs)
			row[12], row[13], row[14] = us(ph.SelectUs), us(ph.StoreUs), us(ph.TotalUs)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSnapshot loads a snapshot from an arbitrary JSON file (e.g. one
// written with -emit json -o).
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return &s, nil
}

// snapshotName restricts snapshot names to a safe filename alphabet.
var snapshotName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ValidSnapshotName reports whether name is acceptable to
// SaveSnapshot/LoadSnapshot, so callers can reject bad names up front
// (e.g. before streaming a batch whose results should be recorded).
func ValidSnapshotName(name string) bool { return snapshotName.MatchString(name) }

func (s *Store) snapshotPath(name string) (string, error) {
	if !snapshotName.MatchString(name) {
		return "", fmt.Errorf("store: bad snapshot name %q", name)
	}
	return filepath.Join(s.root, "snapshots", name+".json"), nil
}

// SaveSnapshot persists snap under name inside the store and returns
// its path. Write failures are returned and also recorded as store
// warnings, so callers that tolerate a lost recording (the daemon's
// save_as path answers 200 either way) still leave a trace in
// Warnings() and the stats counters.
func (s *Store) SaveSnapshot(name string, snap *Snapshot) (string, error) {
	path, err := s.snapshotPath(name)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		return "", err
	}
	if err := s.writeAtomic(path, buf.Bytes()); err != nil {
		s.warnf("writing snapshot %s: %v", path, err)
		return "", err
	}
	return path, nil
}

// LoadSnapshot loads a named snapshot from the store.
func (s *Store) LoadSnapshot(name string) (*Snapshot, error) {
	path, err := s.snapshotPath(name)
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(path)
}

// ListSnapshots returns the stored snapshot names, sorted.
func (s *Store) ListSnapshots() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "snapshots"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n := e.Name(); filepath.Ext(n) == ".json" {
			names = append(names, n[:len(n)-len(".json")])
		}
	}
	sort.Strings(names)
	return names, nil
}
