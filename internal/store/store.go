// Package store is the disk-backed, content-addressed persistence
// layer behind the optimization engine. It durably stores two kinds
// of artifacts under a versioned directory layout:
//
//   - heuristic plans, keyed by the engine's canonical plan keys
//     (scenarios.Scenario.PlanKey): one JSON file per key, named by
//     the SHA-256 of the key, under plans/<hh>/<hash>.json. The
//     engine consults this tier between its in-memory memo cache and
//     a fresh computation, so repeated CLI sweeps and daemon restarts
//     are compile-once/reuse-many across processes;
//   - kernel memo values (Hermite forms, unimodular inverses, kernel
//     bases), keyed by the intmat memo hooks' op:key scheme, under
//     kernels/<hh>/<hash>.json, so cold starts skip the exact linear
//     algebra too — a suite of fresh nests on a warm store recomputes
//     nothing it has ever factored before;
//   - compiled plan artifacts (see internal/compiled), keyed like
//     plans, under compiled/<hh>/<hash>.json, so lattice sweeps and
//     daemon restarts skip the structural compile phase entirely;
//   - batch-result snapshots (see Snapshot), under snapshots/, which
//     Compare diffs scenario-by-scenario for cross-commit regression
//     tracking;
//   - finished async jobs (see JobRecord), under jobs/, in the same
//     JSON shape the /v1/jobs results endpoint serves, so a daemon
//     restart does not lose completed work — the server reloads them
//     at startup and applies its ttl/keep retention policy.
//
// The store is safe for concurrent use; writes are atomic
// (temp-file + rename). Bad data never panics: a corrupt, truncated
// or key-mismatched plan file is skipped with a warning and the
// engine recomputes (and overwrites) it.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiled"
	"repro/internal/engine"
	"repro/internal/intmat"
)

// Version is the on-disk layout version; bumping it orphans (but does
// not delete) artifacts written by older layouts. v3: plan records
// carry the full set of macro-communication axes (the collective cost
// model schedules one-axis macros per line and multi-axis ones per
// plane; v2 recorded a single axis), and finished async jobs persist
// under jobs/ so they survive daemon restarts.
const Version = "v3"

// Store is a disk-backed plan and snapshot store rooted at one
// directory. It implements engine.PlanStore.
type Store struct {
	root string // <dir>/<Version>
	logf func(format string, args ...any)

	mu       sync.Mutex
	warnings []string

	puts, getHits, getMisses, corrupt                atomic.Uint64
	kernelPuts, kernelGetHits, kernelGetMisses       atomic.Uint64
	compiledPuts, compiledGetHits, compiledGetMisses atomic.Uint64

	// Cumulative GC work through this handle (dry runs excluded);
	// see GCTotals.
	gcSweeps, gcRemovedAge, gcRemovedLRU, gcRemovedTemp atomic.Uint64
	gcBytesFreed                                        atomic.Int64
}

var (
	_ engine.PlanStore     = (*Store)(nil)
	_ engine.KernelStore   = (*Store)(nil)
	_ engine.CompiledStore = (*Store)(nil)
)

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	root := filepath.Join(dir, Version)
	for _, d := range []string{
		filepath.Join(root, "plans"),
		filepath.Join(root, "kernels"),
		filepath.Join(root, "compiled"),
		filepath.Join(root, "snapshots"),
		filepath.Join(root, "jobs"),
	} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{root: root, logf: log.New(os.Stderr, "store: ", 0).Printf}, nil
}

// Dir returns the versioned root directory of the store.
func (s *Store) Dir() string { return s.root }

// planPath is the content address of key: plans/<hh>/<sha256>.json.
func (s *Store) planPath(key string) string {
	h := sha256.Sum256([]byte(key))
	hx := hex.EncodeToString(h[:])
	return filepath.Join(s.root, "plans", hx[:2], hx+".json")
}

// planFile is the on-disk plan format. The full key is stored for
// verification, so a hash collision or a file moved between stores is
// detected and treated as a miss instead of returning wrong plans.
type planFile struct {
	Key   string              `json:"key"`
	Err   string              `json:"err,omitempty"`
	Plans []engine.PlanRecord `json:"plans"`
}

// GetPlan implements engine.PlanStore: load the plans persisted for
// key, or ok == false when absent or unreadable.
func (s *Store) GetPlan(key string) ([]engine.PlanRecord, string, bool) {
	path := s.planPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.warnf("skipping unreadable plan file %s: %v", path, err)
		}
		s.getMisses.Add(1)
		return nil, "", false
	}
	var f planFile
	if err := json.Unmarshal(data, &f); err != nil {
		s.warnf("skipping corrupt plan file %s: %v", path, err)
		s.getMisses.Add(1)
		return nil, "", false
	}
	if f.Key != key {
		s.warnf("skipping plan file %s: stored key does not match request", path)
		s.getMisses.Add(1)
		return nil, "", false
	}
	s.getHits.Add(1)
	// Touch the file so its mtime approximates recency-of-use and the
	// LRU half of GC keeps hot plans. Best-effort: a read-only store
	// still serves hits, it just ages like an unused one.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return f.Plans, f.Err, true
}

// PutPlan implements engine.PlanStore: persist the plans for key.
// Failures are recorded as warnings, never returned — a store that
// cannot write degrades to compute-every-time.
func (s *Store) PutPlan(key string, plans []engine.PlanRecord, errMsg string) {
	path := s.planPath(key)
	data, err := json.Marshal(planFile{Key: key, Err: errMsg, Plans: plans})
	if err != nil {
		s.warnf("encoding plan for %s: %v", path, err)
		return
	}
	if err := s.writeAtomic(path, data); err != nil {
		s.warnf("writing plan file %s: %v", path, err)
		return
	}
	s.puts.Add(1)
}

// kernelPath is the content address of a kernel key:
// kernels/<hh>/<sha256>.json.
func (s *Store) kernelPath(key string) string {
	h := sha256.Sum256([]byte(key))
	hx := hex.EncodeToString(h[:])
	return filepath.Join(s.root, "kernels", hx[:2], hx+".json")
}

// kernelFile is the on-disk kernel format; the full op:key is stored
// for verification, like planFile.
type kernelFile struct {
	Key string           `json:"key"`
	Val intmat.KernelRec `json:"val"`
}

// GetKernel implements engine.KernelStore: load the kernel value
// persisted for key (an op-prefixed canonical matrix key), or
// ok == false when absent or unreadable.
func (s *Store) GetKernel(key string) (intmat.KernelRec, bool) {
	path := s.kernelPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.warnf("skipping unreadable kernel file %s: %v", path, err)
		}
		s.kernelGetMisses.Add(1)
		return intmat.KernelRec{}, false
	}
	var f kernelFile
	if err := json.Unmarshal(data, &f); err != nil {
		s.warnf("skipping corrupt kernel file %s: %v", path, err)
		s.kernelGetMisses.Add(1)
		return intmat.KernelRec{}, false
	}
	if f.Key != key {
		s.warnf("skipping kernel file %s: stored key does not match request", path)
		s.kernelGetMisses.Add(1)
		return intmat.KernelRec{}, false
	}
	s.kernelGetHits.Add(1)
	now := time.Now()
	_ = os.Chtimes(path, now, now) // recency for the GC LRU, like GetPlan
	return f.Val, true
}

// PutKernel implements engine.KernelStore: persist the kernel value
// for key. Failures degrade to recompute-next-time, like PutPlan.
func (s *Store) PutKernel(key string, rec intmat.KernelRec) {
	path := s.kernelPath(key)
	data, err := json.Marshal(kernelFile{Key: key, Val: rec})
	if err != nil {
		s.warnf("encoding kernel for %s: %v", path, err)
		return
	}
	if err := s.writeAtomic(path, data); err != nil {
		s.warnf("writing kernel file %s: %v", path, err)
		return
	}
	s.kernelPuts.Add(1)
}

// compiledPath is the content address of a compiled artifact:
// compiled/<hh>/<sha256-of-plan-key>.json.
func (s *Store) compiledPath(key string) string {
	h := sha256.Sum256([]byte(key))
	hx := hex.EncodeToString(h[:])
	return filepath.Join(s.root, "compiled", hx[:2], hx+".json")
}

// GetCompiled implements engine.CompiledStore: load the compiled
// artifact persisted for a plan key, or ok == false when absent or
// unreadable. The artifact record carries its own key, which is
// verified like planFile's.
func (s *Store) GetCompiled(key string) (compiled.ArtifactRec, bool) {
	path := s.compiledPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.warnf("skipping unreadable compiled file %s: %v", path, err)
		}
		s.compiledGetMisses.Add(1)
		return compiled.ArtifactRec{}, false
	}
	var rec compiled.ArtifactRec
	if err := json.Unmarshal(data, &rec); err != nil {
		s.warnf("skipping corrupt compiled file %s: %v", path, err)
		s.compiledGetMisses.Add(1)
		return compiled.ArtifactRec{}, false
	}
	if rec.Key != key {
		s.warnf("skipping compiled file %s: stored key does not match request", path)
		s.compiledGetMisses.Add(1)
		return compiled.ArtifactRec{}, false
	}
	s.compiledGetHits.Add(1)
	now := time.Now()
	_ = os.Chtimes(path, now, now) // recency for the GC LRU, like GetPlan
	return rec, true
}

// PutCompiled implements engine.CompiledStore: persist the compiled
// artifact for a plan key. Failures degrade to recompile-next-time,
// like PutPlan.
func (s *Store) PutCompiled(key string, rec compiled.ArtifactRec) {
	path := s.compiledPath(key)
	data, err := json.Marshal(rec)
	if err != nil {
		s.warnf("encoding compiled artifact for %s: %v", path, err)
		return
	}
	if err := s.writeAtomic(path, data); err != nil {
		s.warnf("writing compiled file %s: %v", path, err)
		return
	}
	s.compiledPuts.Add(1)
}

// writeAtomic writes data to path via a temp file in the same
// directory plus rename, so concurrent readers never observe a
// truncated file.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// warnf records (and logs) a non-fatal store problem.
func (s *Store) warnf(format string, args ...any) {
	s.corrupt.Add(1)
	msg := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.warnings = append(s.warnings, msg)
	s.mu.Unlock()
	if s.logf != nil {
		s.logf("%s", msg)
	}
}

// Warnings returns every non-fatal problem seen so far (corrupt
// files skipped, failed writes).
func (s *Store) Warnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.warnings...)
}

// Stats is a snapshot of store traffic.
type Stats struct {
	PlanPuts        uint64 `json:"plan_puts"`
	PlanGetHits     uint64 `json:"plan_get_hits"`
	PlanGetMisses   uint64 `json:"plan_get_misses"`
	KernelPuts      uint64 `json:"kernel_puts"`
	KernelGetHits   uint64 `json:"kernel_get_hits"`
	KernelGetMisses uint64 `json:"kernel_get_misses"`
	// Compiled* count compiled-artifact tier traffic.
	CompiledPuts      uint64 `json:"compiled_puts"`
	CompiledGetHits   uint64 `json:"compiled_get_hits"`
	CompiledGetMisses uint64 `json:"compiled_get_misses"`
	Warnings          uint64 `json:"warnings"`
}

// TierSize is the on-disk footprint of one store tier.
type TierSize struct {
	// Files counts stored objects (stale temp files excluded).
	Files int `json:"files"`
	// Bytes sums their sizes.
	Bytes int64 `json:"bytes"`
}

// Tiers lists the store's tier directories, in layout order.
func Tiers() []string { return []string{"plans", "kernels", "compiled", "snapshots", "jobs"} }

// TierSizes walks every tier and reports its object count and byte
// footprint. It reads the filesystem on each call — cheap for the
// file counts a GC-bounded store holds, but meant for scrape-rate
// polling (the /metrics collect hook), not per-request paths.
func (s *Store) TierSizes() map[string]TierSize {
	out := make(map[string]TierSize, 5)
	for _, tier := range Tiers() {
		var ts TierSize
		filepath.WalkDir(filepath.Join(s.root, tier), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
				return nil // a tier that vanished mid-walk just reads as empty
			}
			if info, err := d.Info(); err == nil {
				ts.Files++
				ts.Bytes += info.Size()
			}
			return nil
		})
		out[tier] = ts
	}
	return out
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		PlanPuts:          s.puts.Load(),
		PlanGetHits:       s.getHits.Load(),
		PlanGetMisses:     s.getMisses.Load(),
		KernelPuts:        s.kernelPuts.Load(),
		KernelGetHits:     s.kernelGetHits.Load(),
		KernelGetMisses:   s.kernelGetMisses.Load(),
		CompiledPuts:      s.compiledPuts.Load(),
		CompiledGetHits:   s.compiledGetHits.Load(),
		CompiledGetMisses: s.compiledGetMisses.Load(),
		Warnings:          s.corrupt.Load(),
	}
}
