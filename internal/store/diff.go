package store

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
)

// Diff is the scenario-by-scenario comparison of two snapshots,
// matched by scenario name. It separates mere changes from
// regressions — a scenario in B that optimizes strictly worse than in
// A — so CI can diff sweeps across commits and fail only on real
// deterioration.
type Diff struct {
	// Added / Removed list scenario names present in only one side.
	Added, Removed []string
	// Changed lists scenarios whose results differ.
	Changed []Change
	// Unchanged counts scenarios with identical results.
	Unchanged int
	// Regressions counts Changed entries flagged as regressions.
	Regressions int
}

// Change is one differing scenario.
type Change struct {
	Name string
	A, B engine.Result
	// Regression is set when B is strictly worse (see Compare).
	Regression bool
	// Reasons explains the regression flags.
	Reasons []string
}

// Compare diffs two snapshots, A (older) against B (newer). A
// scenario regresses when it newly fails, loses local communications,
// gains general communications, loses vectorizable plans, or its
// model time grows beyond rounding noise.
func Compare(a, b *Snapshot) *Diff {
	d := &Diff{}
	inA := make(map[string]engine.Result, len(a.Results))
	for _, r := range a.Results {
		// Phase attribution is run-dependent wall clock, never part of
		// the diffable plan identity: clear it (on this copy) so a fresh
		// run compares equal to a loaded baseline, whose Phases are nil.
		r.Phases = nil
		inA[r.Name] = r
	}
	seen := make(map[string]bool, len(b.Results))
	for _, rb := range b.Results {
		rb.Phases = nil
		ra, ok := inA[rb.Name]
		if !ok {
			d.Added = append(d.Added, rb.Name)
			continue
		}
		seen[rb.Name] = true
		if ra == rb {
			d.Unchanged++
			continue
		}
		ch := Change{Name: rb.Name, A: ra, B: rb}
		if rb.Err != "" && ra.Err == "" {
			ch.flag("now fails: %s", rb.Err)
		}
		if rb.Classes[core.Local] < ra.Classes[core.Local] {
			ch.flag("local communications %d → %d", ra.Classes[core.Local], rb.Classes[core.Local])
		}
		if rb.Classes[core.General] > ra.Classes[core.General] {
			ch.flag("general communications %d → %d", ra.Classes[core.General], rb.Classes[core.General])
		}
		if rb.Vectorizable < ra.Vectorizable {
			ch.flag("vectorizable plans %d → %d", ra.Vectorizable, rb.Vectorizable)
		}
		if rb.ModelTime > ra.ModelTime*(1+1e-9) {
			ch.flag("model time %.0f → %.0f µs", ra.ModelTime, rb.ModelTime)
		}
		if ch.Regression {
			d.Regressions++
		}
		d.Changed = append(d.Changed, ch)
	}
	for _, ra := range a.Results {
		if !seen[ra.Name] {
			d.Removed = append(d.Removed, ra.Name)
		}
	}
	return d
}

func (c *Change) flag(format string, args ...any) {
	c.Regression = true
	c.Reasons = append(c.Reasons, fmt.Sprintf(format, args...))
}

// Report renders the diff for humans.
func (d *Diff) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff: %d unchanged, %d changed (%d regressions), %d added, %d removed\n",
		d.Unchanged, len(d.Changed), d.Regressions, len(d.Added), len(d.Removed))
	for _, ch := range d.Changed {
		mark := "~"
		if ch.Regression {
			mark = "!"
		}
		fmt.Fprintf(&b, " %s %s\n", mark, ch.Name)
		for _, r := range ch.Reasons {
			fmt.Fprintf(&b, "     %s\n", r)
		}
		if !ch.Regression {
			fmt.Fprintf(&b, "     improved or shifted: classes %v → %v, time %.0f → %.0f µs\n",
				ch.A.Classes, ch.B.Classes, ch.A.ModelTime, ch.B.ModelTime)
		}
	}
	for _, n := range d.Added {
		fmt.Fprintf(&b, " + %s (new)\n", n)
	}
	for _, n := range d.Removed {
		fmt.Fprintf(&b, " - %s (gone)\n", n)
	}
	return b.String()
}
