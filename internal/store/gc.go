package store

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCOptions select what the sweep removes. The zero value removes
// nothing but stale temp files; set MaxAge and/or MaxPlans to enable
// the age and LRU criteria.
type GCOptions struct {
	// MaxAge removes plan and kernel files not used (mtime; GetPlan
	// and GetKernel touch hits) for longer than this. 0 disables the
	// age criterion.
	MaxAge time.Duration
	// MaxPlans bounds the surviving file count of each tier (plans
	// and kernels independently): after the age sweep, the least
	// recently used files beyond this many are removed. 0 disables
	// the count criterion.
	MaxPlans int
	// DryRun reports what would be removed without removing it.
	DryRun bool
}

// GCResult summarizes a sweep.
type GCResult struct {
	// Scanned is the number of plan and kernel files examined.
	Scanned int `json:"scanned"`
	// RemovedAge / RemovedLRU count removals per criterion; stale
	// temp files from interrupted writes are counted separately.
	RemovedAge  int `json:"removed_age"`
	RemovedLRU  int `json:"removed_lru"`
	RemovedTemp int `json:"removed_temp"`
	// Kept is the number of plan and kernel files surviving the sweep.
	Kept int `json:"kept"`
	// BytesFreed sums the sizes of removed files.
	BytesFreed int64 `json:"bytes_freed"`
}

// Removed is the total number of files removed by the sweep.
func (r GCResult) Removed() int { return r.RemovedAge + r.RemovedLRU + r.RemovedTemp }

// staleTempAge is how old an orphaned temp file (from an interrupted
// writeAtomic) must be before GC reclaims it; young ones may still be
// mid-write in another process.
const staleTempAge = time.Hour

// GC sweeps the plan, kernel and compiled tiers: age-expired files first, then
// the least recently used files beyond MaxPlans (mtime is the
// recency signal — GetPlan and GetKernel touch files they serve; the
// cap applies to each tier independently). Snapshots are never
// collected; they are few, named, and referenced by re-run specs.
// Removing a live plan or kernel is always safe — the engine
// recomputes and rewrites it — so GC can run concurrently with
// serving traffic. Unremovable files are recorded as store warnings
// and kept in the Kept count.
func (s *Store) GC(opts GCOptions) (GCResult, error) {
	var res GCResult
	now := time.Now()
	for _, tier := range []string{"plans", "kernels", "compiled"} {
		if err := s.gcTier(filepath.Join(s.root, tier), now, opts, &res); err != nil {
			return res, err
		}
	}
	// writeAtomic also stages temps under snapshots/ and jobs/;
	// reclaim stale ones there too. Snapshots and jobs themselves are
	// never collected here (jobs are retired by the server's ttl/keep
	// retention policy instead).
	for _, tier := range []string{"snapshots", "jobs"} {
		ents, err := os.ReadDir(filepath.Join(s.root, tier))
		if err != nil {
			continue
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			if info, err := e.Info(); err == nil && now.Sub(info.ModTime()) > staleTempAge {
				if s.gcRemove(filepath.Join(s.root, tier, e.Name()), opts.DryRun) {
					res.RemovedTemp++
				}
			}
		}
	}
	if !opts.DryRun {
		s.gcSweeps.Add(1)
		s.gcRemovedAge.Add(uint64(res.RemovedAge))
		s.gcRemovedLRU.Add(uint64(res.RemovedLRU))
		s.gcRemovedTemp.Add(uint64(res.RemovedTemp))
		s.gcBytesFreed.Add(res.BytesFreed)
	}
	return res, nil
}

// GCTotals is the cumulative work of every (non-dry-run) GC sweep
// performed through this Store handle — what the daemon's background
// sweeper and the /metrics GC counters report.
type GCTotals struct {
	Sweeps      uint64 `json:"sweeps"`
	RemovedAge  uint64 `json:"removed_age"`
	RemovedLRU  uint64 `json:"removed_lru"`
	RemovedTemp uint64 `json:"removed_temp"`
	BytesFreed  int64  `json:"bytes_freed"`
}

// Removed is the total number of files removed across all sweeps.
func (t GCTotals) Removed() uint64 { return t.RemovedAge + t.RemovedLRU + t.RemovedTemp }

// GCTotals snapshots the cumulative GC counters.
func (s *Store) GCTotals() GCTotals {
	return GCTotals{
		Sweeps:      s.gcSweeps.Load(),
		RemovedAge:  s.gcRemovedAge.Load(),
		RemovedLRU:  s.gcRemovedLRU.Load(),
		RemovedTemp: s.gcRemovedTemp.Load(),
		BytesFreed:  s.gcBytesFreed.Load(),
	}
}

// gcTier sweeps one content-addressed tier directory (plans or
// kernels) with the age and LRU criteria.
func (s *Store) gcTier(dir string, now time.Time, opts GCOptions, res *GCResult) error {
	type gcFileInfo struct {
		path  string
		mtime time.Time
		size  int64
	}
	var files []gcFileInfo
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent removal
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			if now.Sub(info.ModTime()) > staleTempAge {
				if s.gcRemove(path, opts.DryRun) {
					res.RemovedTemp++
				}
			}
			return nil
		}
		res.Scanned++
		files = append(files, gcFileInfo{path: path, mtime: info.ModTime(), size: info.Size()})
		return nil
	})
	if err != nil {
		return err
	}

	// Age sweep.
	if opts.MaxAge > 0 {
		kept := files[:0]
		for _, f := range files {
			if now.Sub(f.mtime) > opts.MaxAge {
				if s.gcRemove(f.path, opts.DryRun) {
					res.RemovedAge++
					res.BytesFreed += f.size
					continue
				}
			}
			kept = append(kept, f)
		}
		files = kept
	}

	// LRU sweep: oldest mtime first beyond the cap.
	if opts.MaxPlans > 0 && len(files) > opts.MaxPlans {
		sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
		excess := files[:len(files)-opts.MaxPlans]
		kept := files[len(files)-opts.MaxPlans:]
		for _, f := range excess {
			if s.gcRemove(f.path, opts.DryRun) {
				res.RemovedLRU++
				res.BytesFreed += f.size
			} else {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	res.Kept += len(files)

	if !opts.DryRun {
		s.pruneEmptyShards(dir)
	}
	return nil
}

// gcRemove deletes one file (or pretends to, under DryRun) and
// reports success; failures become store warnings.
func (s *Store) gcRemove(path string, dryRun bool) bool {
	if dryRun {
		return true
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		s.warnf("gc: removing %s: %v", path, err)
		return false
	}
	return true
}

// pruneEmptyShards drops now-empty <hh>/ shard directories so a
// heavily collected store does not keep 256 empty dirs around.
func (s *Store) pruneEmptyShards(plansDir string) {
	ents, err := os.ReadDir(plansDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		// Remove fails on non-empty directories, which is exactly the
		// check we want.
		os.Remove(filepath.Join(plansDir, e.Name()))
	}
}
