package macro

import (
	"testing"

	"repro/internal/accessgraph"
	"repro/internal/affine"
	"repro/internal/alignment"
	"repro/internal/intmat"
)

func mustAlign(t *testing.T, p *affine.Program, m int) *alignment.Result {
	t.Helper()
	res, err := alignment.Align(p, m, alignment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func findResidual(t *testing.T, res *alignment.Result, stmt string, accessIdx int) accessgraph.Comm {
	t.Helper()
	for _, c := range res.ResidualComms() {
		if c.Stmt.Name == stmt && c.AccessIdx == accessIdx {
			return c
		}
	}
	t.Fatalf("no residual access %d in %s", accessIdx, stmt)
	return accessgraph.Comm{}
}

func TestBroadcastDetectionExample1(t *testing.T) {
	// Section 3.1: the residual read of a through F7 in S2 is a
	// partial broadcast along ker F7, NOT axis-parallel under the
	// canonical mapping; after the unimodular rotation it is.
	res := mustAlign(t, affine.PaperExample1(), 2)
	c := findResidual(t, res, "S2", 2) // F7 read
	ms := Detect(res, c)
	var bc *Macro
	for _, m := range ms {
		if m.Kind == Broadcast {
			bc = m
		}
	}
	if bc == nil {
		t.Fatalf("no broadcast detected for F7; got %v", ms)
	}
	if !bc.Partial() || bc.P != 1 {
		t.Fatalf("broadcast p = %d, want partial with p=1", bc.P)
	}
	if bc.AxisParallel() {
		t.Fatalf("broadcast along %v should not be axis-parallel before rotation", bc.Directions)
	}
	v, err := AlignBroadcast(res, bc)
	if err != nil {
		t.Fatal(err)
	}
	if v.IsIdentity() {
		t.Fatal("rotation should be non-trivial")
	}
	if !bc.AxisParallel() {
		t.Fatalf("broadcast still not axis-parallel: %v", bc.Directions)
	}
	// rotation must not create or destroy locality
	for _, cc := range res.Graph.Comms {
		msA := res.Alloc[cc.Stmt.Name]
		mxA := res.Alloc[cc.Access.Array]
		if res.LocalComms[cc.ID] != intmat.Mul(mxA, cc.Access.F).Equal(msA) {
			t.Fatal("rotation changed locality")
		}
	}
}

func TestExample2TotalVsPartialBroadcast(t *testing.T) {
	// Example 2: a(i,j) read by every k. After alignment the residual
	// may be hidden or partial depending on the mapping; force the
	// situation of Figure 5 by using explicit allocations.
	p := affine.Example2Broadcast()
	res := mustAlign(t, p, 2)
	// craft allocations: M_S projects (i,j,k) -> (i,k): broadcast dim
	// k is visible.
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	res.Alloc["a"] = intmat.Identity(2)
	c := accessgraph.Comm{}
	for _, cc := range res.Graph.Comms {
		if !cc.Access.Write {
			c = cc
		}
	}
	ms := Detect(res, c)
	var bc *Macro
	for _, m := range ms {
		if m.Kind == Broadcast {
			bc = m
		}
	}
	if bc == nil {
		t.Fatal("no broadcast")
	}
	if !bc.Partial() || bc.P != 1 {
		t.Fatalf("p = %d, want 1", bc.P)
	}
	if !bc.AxisParallel() {
		t.Fatalf("directions %v should be axis-parallel (M_S e3 = e2)", bc.Directions)
	}

	// Hidden case: M_S kills the broadcast direction e3.
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	ms = Detect(res, c)
	for _, m := range ms {
		if m.Kind == Broadcast {
			t.Fatalf("broadcast should be hidden, got %v", m)
		}
	}
}

func TestGaussBroadcasts(t *testing.T) {
	// pivot row and pivot column reads of Gaussian elimination are
	// the textbook broadcasts; with the owner-computes mapping
	// M_S = [[0,1,0],[0,0,1]] both are partial and axis-parallel.
	res := mustAlign(t, affine.Gauss(), 2)
	res.Alloc["S"] = intmat.New(2, 3, 0, 1, 0, 0, 0, 1)
	res.Alloc["a"] = intmat.Identity(2)
	found := 0
	for _, c := range res.Graph.Comms {
		if c.Access.Write {
			continue
		}
		for _, m := range Detect(res, c) {
			if m.Kind == Broadcast && m.Partial() {
				if !m.AxisParallel() {
					t.Fatalf("gauss broadcast not axis parallel: %v", m.Directions)
				}
				found++
			}
		}
	}
	if found < 2 {
		t.Fatalf("found %d partial broadcasts, want >= 2 (pivot row + column)", found)
	}
}

func TestMatMulReduction(t *testing.T) {
	// matmul with M_S spreading k across processors: the c(i,j)
	// accumulation is a cross-processor reduction.
	res := mustAlign(t, affine.MatMul(), 2)
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1) // (i,k) mapping
	res.Alloc["c"] = intmat.Identity(2)
	var red *Macro
	for _, c := range res.Graph.Comms {
		if !c.Access.Reduction {
			continue
		}
		for _, m := range Detect(res, c) {
			if m.Kind == Reduction {
				red = m
			}
		}
	}
	if red == nil {
		t.Fatal("no reduction detected")
	}
	if red.Hidden() {
		t.Fatal("reduction should be visible with k mapped")
	}
	// owner-computes mapping hides the reduction (accumulation local)
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	for _, c := range res.Graph.Comms {
		if !c.Access.Reduction {
			continue
		}
		for _, m := range Detect(res, c) {
			if m.Kind == Reduction && !m.Hidden() {
				t.Fatalf("reduction should be hidden: %v", m)
			}
		}
	}
}

func TestGatherExample3(t *testing.T) {
	// Example 3: write a(i,j) from depth-3 statement: several sources
	// write toward the same owner when M_a·F_a has a kernel crossing
	// M_S non-trivially.
	p := affine.Example3Gather()
	res := mustAlign(t, p, 2)
	// owner of a(i,j,k) is processor (i,j); computation of iteration
	// (i,j,k) runs on processor (i,k): for fixed (i,j), the owners of
	// a(i,j,·) receive distinct elements from processors (i,·).
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	res.Alloc["a"] = intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	res.Alloc["r"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	found := false
	for _, c := range res.Graph.Comms {
		if !c.Access.Write {
			continue
		}
		for _, m := range Detect(res, c) {
			if m.Kind == Gather && m.P >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no gather detected")
	}
}

func TestScatterDetection(t *testing.T) {
	// scatter: one source processor owns data read by many.
	// r(i,j,k) = a(i,j) with M_a rank 1 in the j direction… craft:
	// M_a = [[1,0],[0,0]] is rank deficient; instead use
	// M_a·F_a with kernel: M_a = Id, F_a = [[1,0,0],[0,0,0]]-like is
	// rank deficient too. Simplest: a 1-D-ish access a(i) in a 2-D
	// array via F = [[1,0,0],[1,0,0]]… use Example2 with allocations
	// collapsing j: M_a = [[1,0],[1,0]] is rank 1 — not allowed.
	// Use F_a = [[1,0,0],[0,1,0]], M_a = [[0,1],[1,0]]: then
	// ker(M_a F_a) = span{e3}: same source for all k; M_S e3 ≠ 0 and
	// F_a e3 = 0 ⇒ no scatter (same datum: that is the broadcast).
	// A true scatter needs different data from one processor:
	// F_a = [[1,0,0],[0,1,0]] with M_a = [[1,0],[0,0]]… rank again.
	// Take a 3-D array a, F_a = Id3, M_a = [[1,0,0],[0,1,0]]:
	// ker(M_a·F_a) = span{e3}, F_a·e3 ≠ 0: processor (i,j) holds
	// a(i,j,k) for all k and sends them to distinct processors.
	p := &affine.Program{Name: "scatter"}
	p.AddArray("a", 3)
	p.AddArray("r", 3)
	p.NewStatement("S", "i", "j", "k").
		Write("r", intmat.Identity(3)).
		Read("a", intmat.Identity(3))
	res := mustAlign(t, p, 2)
	res.Alloc["a"] = intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	res.Alloc["S"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	res.Alloc["r"] = intmat.New(2, 3, 1, 0, 0, 0, 0, 1)
	found := false
	for _, c := range res.Graph.Comms {
		if c.Access.Write || c.Access.Array != "a" {
			continue
		}
		for _, m := range Detect(res, c) {
			if m.Kind == Scatter && m.P >= 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no scatter detected")
	}
}

func TestVectorizable(t *testing.T) {
	// Example 5 with Platonoff-style mapping: data read does not
	// depend on the sequential t dimension iff ker M_S ⊆ ker(M_b F_b).
	p := affine.Example5()
	res := mustAlign(t, p, 2)
	// M_S maps (i,j): ker M_S = span{e_t, e_k}. With M_b keeping the
	// t subscript (M_b = [[1,0,0],[0,1,0]]), M_b·F_b depends on t, so
	// e_t ∉ ker(M_b·F_b) ⇒ NOT vectorizable.
	res.Alloc["S"] = intmat.New(2, 4, 0, 1, 0, 0, 0, 0, 1, 0)
	res.Alloc["a"] = intmat.New(2, 4, 0, 1, 0, 0, 0, 0, 1, 0)
	res.Alloc["b"] = intmat.New(2, 3, 1, 0, 0, 0, 1, 0)
	var read accessgraph.Comm
	for _, c := range res.Graph.Comms {
		if !c.Access.Write {
			read = c
		}
	}
	if Vectorizable(res, read) {
		t.Fatal("t-dependent read claimed vectorizable")
	}
	// M_b that ignores t (M_b = [[0,1,0],[0,0,1]]): the owner of the
	// datum read does not depend on the time step ⇒ vectorizable, the
	// whole t-range of messages can be hoisted out of the loop.
	res.Alloc["b"] = intmat.New(2, 3, 0, 1, 0, 0, 0, 1)
	if !Vectorizable(res, read) {
		t.Fatal("t-independent read not vectorizable")
	}
}

func TestAxisParallelHelper(t *testing.T) {
	if !AxisParallel(intmat.New(2, 1, 1, 0)) {
		t.Fatal("e1 not axis parallel")
	}
	if AxisParallel(intmat.New(2, 1, 1, -1)) {
		t.Fatal("(1,-1) claimed axis parallel")
	}
	if !AxisParallel(intmat.New(3, 2, 1, 1, 2, 0, 0, 0)) {
		t.Fatal("rank-2 span{e1,e2} not detected")
	}
	d := intmat.New(2, 1, 1, -1)
	v := AxisAlignRotation(d)
	if !v.IsUnimodular() {
		t.Fatal("rotation not unimodular")
	}
	if !AxisParallel(intmat.Mul(v, d)) {
		t.Fatalf("V·D = %v not axis parallel", intmat.Mul(v, d))
	}
}

func TestMacroString(t *testing.T) {
	res := mustAlign(t, affine.PaperExample1(), 2)
	for _, m := range DetectAll(res) {
		if len(m.String()) == 0 {
			t.Fatal("empty String")
		}
	}
}
