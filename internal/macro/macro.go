// Package macro detects macro-communications — broadcasts, scatters,
// gathers, reductions — and message-vectorization opportunities in a
// mapped affine loop nest (paper Section 4), and computes the
// unimodular rotation that makes a partial broadcast parallel to the
// axes of the virtual processor space (Section 4.1).
//
// All conditions are kernel conditions. For an access a(F_a·I + c_a)
// in statement S with schedule θ, allocation matrices M_S, M_a:
//
//	broadcast: v ∈ ker θ ∩ ker F_a, M_S·v ≠ 0
//	  (same datum, same time step, distinct destination processors);
//	scatter:   v ∈ ker θ ∩ ker(M_a·F_a), M_S·v ≠ 0, F_a·v ≠ 0
//	  (same source processor, distinct data, distinct destinations);
//	gather:    the same kernels with the data flowing toward the
//	  array owner (write access);
//	reduction: v ∈ ker θ ∩ ker F_x, M_S·v ≠ 0 on a ⊕-accumulation
//	  (one result element combined from distinct processors);
//	message vectorization: ker M_S ⊆ ker(M_a·F_a)
//	  (the accessed datum does not depend on the time step).
package macro

import (
	"fmt"

	"repro/internal/accessgraph"
	"repro/internal/alignment"
	"repro/internal/intmat"
)

// Kind enumerates macro-communication kinds.
type Kind int

// Macro-communication kinds.
const (
	Broadcast Kind = iota
	Scatter
	Gather
	Reduction
)

func (k Kind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case Reduction:
		return "reduction"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Macro describes one detected macro-communication.
type Macro struct {
	Kind Kind
	Comm accessgraph.Comm
	// Kernel is the basis (columns, in iteration space) of the
	// directions v that generate the macro-communication.
	Kernel *intmat.Mat
	// Directions is D = M_S·Kernel (m×p in processor space) with zero
	// columns removed; its rank is the dimension of the macro-comm.
	Directions *intmat.Mat
	// P is rank(Directions): 0 = hidden by the mapping, m = total,
	// otherwise partial.
	P int
	M int
}

// Total reports whether the macro-communication spans the whole
// processor space.
func (mc *Macro) Total() bool { return mc.P == mc.M }

// Partial reports 1 ≤ p < m.
func (mc *Macro) Partial() bool { return mc.P >= 1 && mc.P < mc.M }

// Hidden reports that the mapping collapsed the macro-communication
// to a point-to-point transfer (p = 0).
func (mc *Macro) Hidden() bool { return mc.P == 0 }

// AxisParallel reports whether the direction space of the
// macro-communication is a coordinate subspace of the processor
// space: the efficient case for partial macro-communications
// (Platonoff's constraint, adopted in Section 4.1). A matrix spans a
// coordinate subspace iff its number of non-zero rows equals its rank.
func (mc *Macro) AxisParallel() bool {
	if mc.P == 0 {
		return true // nothing to route
	}
	return AxisParallel(mc.Directions)
}

// AxisParallel reports whether the column space of D is spanned by
// coordinate vectors.
func AxisParallel(d *intmat.Mat) bool {
	nz := 0
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if d.At(i, j) != 0 {
				nz++
				break
			}
		}
	}
	return nz == d.Rank()
}

// AxisAlignRotation returns a unimodular V such that V·D spans a
// coordinate subspace (Section 4.1: the left Hermite decomposition
// D = Q·[H;0] gives V = Q⁻¹).
func AxisAlignRotation(d *intmat.Mat) *intmat.Mat {
	q, _ := intmat.HermiteLeft(d)
	return intmat.InverseUnimodular(q)
}

// String renders a macro-communication.
func (mc *Macro) String() string {
	shape := "partial"
	if mc.Total() {
		shape = "total"
	} else if mc.Hidden() {
		shape = "hidden"
	}
	return fmt.Sprintf("%s %s (p=%d/%d) in %s on %s",
		shape, mc.Kind, mc.P, mc.M, mc.Comm.Stmt.Name, mc.Comm.Access.Array)
}

// Detect classifies one residual communication of an alignment
// result, returning every macro-communication pattern it matches
// (possibly none). A read access is tested for broadcast and scatter;
// a write access for gather; a reduction access for reduction.
func Detect(res *alignment.Result, c accessgraph.Comm) []*Macro {
	var out []*Macro
	theta := c.Stmt.ScheduleOrEmpty()
	ms := res.Alloc[c.Stmt.Name]
	mx := res.Alloc[c.Access.Array]
	if ms == nil || mx == nil {
		return nil
	}
	fa := c.Access.F
	mxfa := intmat.Mul(mx, fa)

	mk := func(kind Kind, kernel *intmat.Mat) *Macro {
		if kernel.Cols() == 0 {
			return nil
		}
		dirs := intmat.Mul(ms, kernel)
		return &Macro{
			Kind:       kind,
			Comm:       c,
			Kernel:     kernel,
			Directions: dropZeroCols(dirs),
			P:          dirs.Rank(),
			M:          res.M,
		}
	}

	if c.Access.Reduction {
		// one array element accumulated from several processors
		if m := mk(Reduction, intmat.KernelIntersection(theta, fa)); m != nil {
			out = append(out, m)
		}
		return out
	}
	if !c.Access.Write {
		// broadcast: same datum to several destinations
		if m := mk(Broadcast, intmat.KernelIntersection(theta, fa)); m != nil && m.P >= 1 {
			out = append(out, m)
		}
		// scatter: same source processor, different data
		k := intmat.KernelIntersection(theta, mxfa)
		if m := mk(Scatter, k); m != nil && m.P >= 1 {
			// distinct data required: F_a must not kill the kernel
			if intmat.Mul(fa, k).Rank() >= 1 {
				out = append(out, m)
			}
		}
		return out
	}
	// write access: gather — several sources into one array owner
	k := intmat.KernelIntersection(theta, mxfa)
	if m := mk(Gather, k); m != nil && m.P >= 1 {
		if intmat.Mul(fa, k).Rank() >= 1 {
			out = append(out, m)
		}
	}
	return out
}

// DetectAll classifies every residual communication of res.
func DetectAll(res *alignment.Result) []*Macro {
	var out []*Macro
	for _, c := range res.ResidualComms() {
		out = append(out, Detect(res, c)...)
	}
	return out
}

// Vectorizable reports whether the communication supports message
// vectorization (Section 4.5): the data accessed does not depend on
// the time step, i.e. ker M_S ⊆ ker(M_a·F_a), which holds iff
// rank([M_S; M_a·F_a]) = rank(M_S).
func Vectorizable(res *alignment.Result, c accessgraph.Comm) bool {
	ms := res.Alloc[c.Stmt.Name]
	mx := res.Alloc[c.Access.Array]
	if ms == nil || mx == nil {
		return false
	}
	mxfa := intmat.Mul(mx, c.Access.F)
	return intmat.Stack(ms, mxfa).Rank() == ms.Rank()
}

// AlignBroadcast rotates the component of the statement so that the
// given partial macro-communication becomes axis-parallel, and
// returns the rotation applied (identity if already axis-parallel).
func AlignBroadcast(res *alignment.Result, mc *Macro) (*intmat.Mat, error) {
	if mc.AxisParallel() {
		return intmat.Identity(res.M), nil
	}
	v := AxisAlignRotation(mc.Directions)
	if err := res.RotateComponent(mc.Comm.Stmt.Name, v); err != nil {
		return nil, err
	}
	// keep the Macro's view of the world coherent
	mc.Directions = dropZeroCols(intmat.Mul(v, mc.Directions))
	return v, nil
}

func dropZeroCols(m *intmat.Mat) *intmat.Mat {
	var keep []int
	for j := 0; j < m.Cols(); j++ {
		for i := 0; i < m.Rows(); i++ {
			if m.At(i, j) != 0 {
				keep = append(keep, j)
				break
			}
		}
	}
	return m.SubCols(keep...)
}
