package machine

import "math"

// FatTree models a CM-5-like machine: P processing nodes attached to
// a fat-tree data network plus a combining control network. The
// control network executes reductions and broadcasts in hardware in
// logarithmic time; point-to-point traffic pays a software send
// overhead, and irregular ("general") patterns additionally suffer
// data-network congestion that grows with the spread of the pattern.
//
// The constants are calibrated so that the four data movements of the
// paper's Table 1 reproduce the measured ordering on a 32-processor
// CM-5: reduction ≤ broadcast < translation ≪ general communication,
// with the general case roughly two orders of magnitude above the
// hardware-assisted operations.
type FatTree struct {
	P int

	// CtlLatency is the per-level latency of the control network (µs).
	CtlLatency float64
	// BcastFactor scales broadcast vs reduction on the control network
	// (a broadcast moves payload down every level; a reduction
	// combines single words upward).
	BcastFactor float64
	// SWStartup is the software per-message overhead of the data
	// network (µs) — the dominant cost of general communications.
	SWStartup float64
	// PerByte is the per-byte injection cost (µs).
	PerByte float64
	// CongestionRoot scales the root-contention penalty of irregular
	// patterns: a pattern whose messages cross the tree root from s
	// distinct sources serializes there.
	CongestionRoot float64
}

// DefaultFatTree returns the Table-1 calibration for p processors.
func DefaultFatTree(p int) *FatTree {
	return &FatTree{
		P:              p,
		CtlLatency:     4,
		BcastFactor:    1.5,
		SWStartup:      90,
		PerByte:        0.05,
		CongestionRoot: 0.9,
	}
}

func (f *FatTree) levels() float64 {
	if f.P <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(f.P)))
}

// Reduction returns the time to combine one value per processor into
// a single result on the control network.
func (f *FatTree) Reduction(elemBytes int64) float64 {
	return f.CtlLatency*f.levels() + float64(elemBytes)*f.PerByte
}

// Broadcast returns the time to send bytes from one processor to all
// others using the control/data network broadcast facility.
func (f *FatTree) Broadcast(bytes int64) float64 {
	return f.BcastFactor*f.CtlLatency*f.levels() + float64(bytes)*f.PerByte
}

// Translation returns the time of a uniform shift: every processor
// sends bytes to a fixed-offset partner. On a fat tree a permutation
// with a single destination per sender pays one software message and
// no endpoint contention.
func (f *FatTree) Translation(bytes int64) float64 {
	return f.SWStartup + float64(bytes)*f.PerByte + f.CtlLatency
}

// General returns the time of a general affine communication in
// which every processor sends `perSender` messages of `bytes` bytes
// to scattered destinations. Each message pays the software overhead,
// and the irregular pattern additionally serializes at the upper tree
// levels in proportion to the processor count.
func (f *FatTree) General(perSender int, bytes int64) float64 {
	if perSender < 1 {
		perSender = 1
	}
	sw := float64(perSender) * (f.SWStartup + float64(bytes)*f.PerByte)
	congestion := f.CongestionRoot * float64(f.P) * float64(bytes) * f.PerByte
	return sw + congestion + f.CtlLatency*f.levels()
}

// Table1 returns the four Table-1 data-movement times with `bytes`
// of payload per processor: reduction, broadcast, translation,
// general (in that order).
func (f *FatTree) Table1(bytes int64) (reduction, broadcast, translation, general float64) {
	return f.Reduction(bytes),
		f.Broadcast(bytes),
		f.Translation(bytes),
		f.General(1, bytes)
}
