package machine

import (
	"math/rand"
	"testing"
)

// randPattern builds a random message set over the mesh, including
// occasional local (Src == Dst) messages and duplicate endpoints.
func randPattern(rng *rand.Rand, m *Mesh2D, n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		src := rng.Intn(m.Procs())
		dst := rng.Intn(m.Procs())
		if rng.Intn(8) == 0 {
			dst = src
		}
		msgs[i] = Message{Src: src, Dst: dst, Bytes: int64(rng.Intn(1 << 14))}
	}
	return msgs
}

// TestCostEvalMatchesTime checks bit-identity of CostEval.Time against
// Mesh2D.Time over random patterns on assorted mesh shapes, reusing
// one evaluator per mesh across all patterns (the production usage).
func TestCostEvalMatchesTime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{1, 1}, {1, 8}, {8, 1}, {2, 2}, {4, 4}, {8, 8}, {3, 5}, {16, 2}, {2, 16}, {16, 16}, {64, 2}}
	for _, sh := range shapes {
		m := DefaultMesh(sh[0], sh[1])
		ev := NewCostEval(m)
		for trial := 0; trial < 50; trial++ {
			msgs := randPattern(rng, m, rng.Intn(60))
			want := m.Time(msgs)
			got := ev.Time(msgs)
			if got != want {
				t.Fatalf("mesh %dx%d trial %d: CostEval.Time = %v, Mesh2D.Time = %v", sh[0], sh[1], trial, got, want)
			}
		}
	}
}

// TestCostEvalAssign checks the exposed packing: round indices are
// dense and in first-use order, locals get -1, the per-round hop
// maxima match a recomputation, and the partition ignores byte sizes.
func TestCostEvalAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := DefaultMesh(4, 4)
	ev := NewCostEval(m)
	for trial := 0; trial < 30; trial++ {
		msgs := randPattern(rng, m, 40)
		assign := make([]int, len(msgs))
		nr := ev.Assign(msgs, assign)

		// Recompute per-round aggregates from the reported partition.
		hops := make([]int, nr)
		var maxRound int = -1
		for i, msg := range msgs {
			if msg.Src == msg.Dst {
				if assign[i] != -1 {
					t.Fatalf("local message %d assigned round %d", i, assign[i])
				}
				continue
			}
			if assign[i] < 0 || assign[i] >= nr {
				t.Fatalf("message %d assigned out-of-range round %d of %d", i, assign[i], nr)
			}
			if assign[i] > maxRound+1 {
				t.Fatalf("round indices not dense: message %d opens round %d after %d", i, assign[i], maxRound)
			}
			if assign[i] > maxRound {
				maxRound = assign[i]
			}
			h := 0
			m.walkXY(msg.Src, msg.Dst, func(linkID) { h++ })
			if h > hops[assign[i]] {
				hops[assign[i]] = h
			}
		}
		if maxRound+1 != nr {
			t.Fatalf("Assign reported %d rounds, partition uses %d", nr, maxRound+1)
		}
		for i := 0; i < nr; i++ {
			if ev.RoundHops(i) != hops[i] {
				t.Fatalf("round %d: RoundHops = %d, recomputed %d", i, ev.RoundHops(i), hops[i])
			}
		}

		// Bytes must not influence placement: zero them and repack.
		zeroed := make([]Message, len(msgs))
		for i, msg := range msgs {
			zeroed[i] = Message{Src: msg.Src, Dst: msg.Dst}
		}
		assign2 := make([]int, len(zeroed))
		if nr2 := ev.Assign(zeroed, assign2); nr2 != nr {
			t.Fatalf("byte-zeroed pattern packs into %d rounds, original %d", nr2, nr)
		}
		for i := range assign {
			if assign[i] != assign2[i] {
				t.Fatalf("message %d: round %d with bytes, %d without", i, assign[i], assign2[i])
			}
		}
	}
}
