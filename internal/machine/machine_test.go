package machine

import (
	"testing"

	"repro/internal/distrib"
	"repro/internal/intmat"
)

func TestMeshCoordsRank(t *testing.T) {
	m := DefaultMesh(4, 8)
	if m.Procs() != 32 {
		t.Fatal("procs wrong")
	}
	for r := 0; r < m.Procs(); r++ {
		x, y := m.Coords(r)
		if m.Rank(x, y) != r {
			t.Fatalf("roundtrip failed for %d", r)
		}
	}
}

func TestMeshTimeEmptyAndLocal(t *testing.T) {
	m := DefaultMesh(4, 4)
	if m.Time(nil) != 0 {
		t.Fatal("empty pattern costs time")
	}
	if m.Time([]Message{{Src: 3, Dst: 3, Bytes: 1 << 20}}) != 0 {
		t.Fatal("local message costs time")
	}
}

func TestMeshTimeSingleMessage(t *testing.T) {
	m := DefaultMesh(4, 4)
	// 1 hop, 100 bytes: startup + 100*perByte + 1*hopLat
	got := m.Time([]Message{{Src: m.Rank(0, 0), Dst: m.Rank(0, 1), Bytes: 100}})
	want := m.Startup + 100*m.PerByte + m.HopLatency
	if got != want {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func TestMeshDisjointMessagesShareRound(t *testing.T) {
	m := DefaultMesh(4, 4)
	// two messages in different rows: disjoint paths, one round
	msgs := []Message{
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 3), Bytes: 10},
		{Src: m.Rank(1, 0), Dst: m.Rank(1, 3), Bytes: 10},
	}
	one := m.Time(msgs[:1])
	both := m.Time(msgs)
	if both != one {
		t.Fatalf("disjoint messages serialized: %v vs %v", both, one)
	}
}

func TestMeshConflictingMessagesSerialize(t *testing.T) {
	m := DefaultMesh(4, 4)
	// same path: must serialize into two rounds
	msgs := []Message{
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 3), Bytes: 10},
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 3), Bytes: 10},
	}
	one := m.Time(msgs[:1])
	both := m.Time(msgs)
	if both != 2*one {
		t.Fatalf("conflicting messages not serialized: %v vs %v", both, 2*one)
	}
	// overlapping (not identical) paths also conflict
	msgs2 := []Message{
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 2), Bytes: 10},
		{Src: m.Rank(0, 1), Dst: m.Rank(0, 3), Bytes: 10},
	}
	if m.Time(msgs2) <= one {
		t.Fatal("overlapping paths did not serialize")
	}
}

func TestAggregate(t *testing.T) {
	msgs := []Message{
		{Src: 0, Dst: 1, Bytes: 10},
		{Src: 0, Dst: 1, Bytes: 20},
		{Src: 1, Dst: 0, Bytes: 5},
	}
	agg := Aggregate(msgs)
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d messages", len(agg))
	}
	if agg[0].Bytes != 30 || agg[1].Bytes != 5 {
		t.Fatalf("aggregate = %v", agg)
	}
}

func TestPatternStats(t *testing.T) {
	m := DefaultMesh(4, 4)
	msgs := []Message{
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 1), Bytes: 10},
		{Src: m.Rank(0, 0), Dst: m.Rank(1, 0), Bytes: 10},
		{Src: m.Rank(0, 0), Dst: m.Rank(0, 0), Bytes: 99}, // local: ignored
	}
	st := m.PatternStats(msgs)
	if st.Messages != 2 || st.TotalBytes != 20 || st.MaxDegree != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFatTreeTable1Ordering(t *testing.T) {
	f := DefaultFatTree(32)
	red, bc, tr, gen := f.Table1(512)
	if !(red <= bc) {
		t.Fatalf("reduction %v > broadcast %v", red, bc)
	}
	if !(bc < tr) {
		t.Fatalf("broadcast %v >= translation %v", bc, tr)
	}
	if !(tr < gen) {
		t.Fatalf("translation %v >= general %v", tr, gen)
	}
	// general communication is roughly an order of magnitude beyond
	// the hardware-assisted primitives
	if gen/bc < 10 {
		t.Fatalf("general/broadcast = %v, want >= 10", gen/bc)
	}
}

func TestFatTreeScalesWithP(t *testing.T) {
	small := DefaultFatTree(8)
	big := DefaultFatTree(512)
	if small.Reduction(64) >= big.Reduction(64) {
		t.Fatal("reduction should grow with log P")
	}
	if small.General(1, 64) >= big.General(1, 64) {
		t.Fatal("general should grow with P")
	}
}

func TestAffineCommIsPermutationAggregated(t *testing.T) {
	m := DefaultMesh(8, 8)
	cyc := distrib.Dist2D{D0: distrib.Cyclic{}, D1: distrib.Cyclic{}}
	T := intmat.New(2, 2, 1, 2, 3, 7)
	msgs := AffineComm2D(m, cyc, T, nil, 64, 64, 4)
	st := m.PatternStats(msgs)
	// CYCLIC folding of a unimodular map on a divisible grid yields a
	// physical permutation: at most one destination per sender.
	if st.MaxDegree > 1 {
		t.Fatalf("degree = %d, want 1", st.MaxDegree)
	}
	// total bytes = one element per non-local virtual processor
	if st.TotalBytes%4 != 0 || st.TotalBytes == 0 {
		t.Fatalf("bytes = %d", st.TotalBytes)
	}
}

func TestGeneralVsDecomposedTable2Shape(t *testing.T) {
	// Table 2: executing T = [[1,2],[3,7]] directly (element-wise) is
	// much slower than the vectorized L then U phases.
	m := DefaultMesh(8, 8)
	cyc := distrib.Dist2D{D0: distrib.Cyclic{}, D1: distrib.Cyclic{}}
	T := intmat.New(2, 2, 1, 2, 3, 7)
	L := intmat.New(2, 2, 1, 0, 3, 1)
	U := intmat.New(2, 2, 1, 2, 0, 1)
	if !intmat.Mul(L, U).Equal(T) {
		t.Fatal("T != L·U")
	}
	direct := m.Time(GeneralComm2D(m, cyc, T, nil, 64, 64, 64))
	tl := m.Time(AffineComm2D(m, cyc, L, nil, 64, 64, 64))
	tu := m.Time(AffineComm2D(m, cyc, U, nil, 64, 64, 64))
	if tl+tu >= direct {
		t.Fatalf("decomposition does not win: L+U = %v, direct = %v", tl+tu, direct)
	}
	if direct/(tl+tu) < 5 {
		t.Fatalf("win factor %v too small", direct/(tl+tu))
	}
	// DecomposedTime sums the phases right-to-left
	dt := DecomposedTime(m, cyc, []*intmat.Mat{L, U}, 64, 64, 64)
	if dt != tl+tu {
		t.Fatalf("DecomposedTime = %v, want %v", dt, tl+tu)
	}
}

func TestFigure8Shape(t *testing.T) {
	// grouped partition is at least as fast as BLOCK and CYCLIC(b)
	// for the U_k communication whenever k divides the virtual extent,
	// and CYCLIC is the closest standard scheme (equal at k = P).
	m := DefaultMesh(8, 8)
	n := 64
	for _, k := range []int{1, 2, 4, 8} {
		for _, eb := range []int64{16, 64, 512} {
			grp := distrib.Dist2D{D0: distrib.Grouped{K: k}, D1: distrib.Block{}}
			blk := distrib.Dist2D{D0: distrib.Block{}, D1: distrib.Block{}}
			cyb := distrib.Dist2D{D0: distrib.BlockCyclic{B: 4}, D1: distrib.Block{}}
			cy := distrib.Dist2D{D0: distrib.Cyclic{}, D1: distrib.Block{}}
			tg := m.Time(ElementaryRowComm(m, grp, int64(k), n, n, eb))
			tb := m.Time(ElementaryRowComm(m, blk, int64(k), n, n, eb))
			tcb := m.Time(ElementaryRowComm(m, cyb, int64(k), n, n, eb))
			tc := m.Time(ElementaryRowComm(m, cy, int64(k), n, n, eb))
			if tg > tb || tg > tcb {
				t.Fatalf("k=%d eb=%d: grouped %v slower than BLOCK %v or CYCLIC(4) %v", k, eb, tg, tb, tcb)
			}
			if k == 8 && (tg != 0 || tc != 0) {
				t.Fatalf("k=P: grouped %v and CYCLIC %v should be fully local", tg, tc)
			}
			if tg > tc {
				t.Fatalf("k=%d eb=%d: grouped %v slower than CYCLIC %v", k, eb, tg, tc)
			}
		}
	}
}

func TestElementaryColComm(t *testing.T) {
	m := DefaultMesh(8, 8)
	blk := distrib.Dist2D{D0: distrib.Block{}, D1: distrib.Block{}}
	msgs := ElementaryColComm(m, blk, 1, 32, 32, 8)
	st := m.PatternStats(msgs)
	if st.Messages == 0 {
		t.Fatal("no messages")
	}
	// L moves along dimension 1 only: source and destination rows equal
	for _, msg := range msgs {
		sx, _ := m.Coords(msg.Src)
		dx, _ := m.Coords(msg.Dst)
		if sx != dx {
			t.Fatalf("L communication left its row: %v", msg)
		}
	}
}

func TestBadRankPanics(t *testing.T) {
	m := DefaultMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Coords(4)
}
