package machine

import (
	"repro/internal/distrib"
	"repro/internal/intmat"
)

// AffineComm2D builds the *vectorized* message pattern of the affine
// communication (i, j) → T·(i, j)ᵗ + off on an n0×n1 virtual grid
// (toroidal virtual index space: destination coordinates are taken
// modulo the grid extents) folded onto the mesh by dist. Every
// virtual processor contributes elemBytes; messages between the same
// physical pair are combined into one.
//
// Vectorization models an elementary (axis-parallel) communication,
// whose regular stride pattern the runtime can aggregate; use
// GeneralComm2D for the direct execution of a general affine
// communication, which it cannot.
func AffineComm2D(m *Mesh2D, dist distrib.Dist2D, t *intmat.Mat, off []int64, n0, n1 int, elemBytes int64) []Message {
	if t.Rows() != 2 || t.Cols() != 2 {
		panic("machine: AffineComm2D needs a 2x2 data-flow matrix")
	}
	if len(off) == 0 {
		off = []int64{0, 0}
	}
	var msgs []Message
	for i := 0; i < n0; i++ {
		for j := 0; j < n1; j++ {
			di := mod(t.At(0, 0)*int64(i)+t.At(0, 1)*int64(j)+off[0], int64(n0))
			dj := mod(t.At(1, 0)*int64(i)+t.At(1, 1)*int64(j)+off[1], int64(n1))
			sx, sy := dist.Place(i, j, n0, n1, m.P, m.Q)
			dx, dy := dist.Place(int(di), int(dj), n0, n1, m.P, m.Q)
			msgs = append(msgs, Message{
				Src:   m.Rank(sx, sy),
				Dst:   m.Rank(dx, dy),
				Bytes: elemBytes,
			})
		}
	}
	return Aggregate(msgs)
}

// GeneralComm2D builds the direct, element-wise execution of a
// general affine communication: one message per virtual processor,
// with no pairwise aggregation. This is how a 1990s runtime executes
// an irregular pattern it cannot derive a closed-form schedule for —
// the paper's motivation for decomposing general communications
// ("better have several simple communications than a complicated
// one", Section 5.1).
func GeneralComm2D(m *Mesh2D, dist distrib.Dist2D, t *intmat.Mat, off []int64, n0, n1 int, elemBytes int64) []Message {
	if t.Rows() != 2 || t.Cols() != 2 {
		panic("machine: GeneralComm2D needs a 2x2 data-flow matrix")
	}
	if len(off) == 0 {
		off = []int64{0, 0}
	}
	var msgs []Message
	for i := 0; i < n0; i++ {
		for j := 0; j < n1; j++ {
			di := mod(t.At(0, 0)*int64(i)+t.At(0, 1)*int64(j)+off[0], int64(n0))
			dj := mod(t.At(1, 0)*int64(i)+t.At(1, 1)*int64(j)+off[1], int64(n1))
			sx, sy := dist.Place(i, j, n0, n1, m.P, m.Q)
			dx, dy := dist.Place(int(di), int(dj), n0, n1, m.P, m.Q)
			msgs = append(msgs, Message{
				Src:   m.Rank(sx, sy),
				Dst:   m.Rank(dx, dy),
				Bytes: elemBytes,
			})
		}
	}
	return msgs
}

// ElementaryRowComm builds the pattern of the elementary
// communication U(k): (i, j) → (i + k·j, j): data moves only along
// dimension 0, within the k residue classes of i mod k.
func ElementaryRowComm(m *Mesh2D, dist distrib.Dist2D, k int64, n0, n1 int, elemBytes int64) []Message {
	u := intmat.New(2, 2, 1, k, 0, 1)
	return AffineComm2D(m, dist, u, nil, n0, n1, elemBytes)
}

// ElementaryColComm builds the pattern of L(l): (i, j) → (i, j + l·i).
func ElementaryColComm(m *Mesh2D, dist distrib.Dist2D, l int64, n0, n1 int, elemBytes int64) []Message {
	lm := intmat.New(2, 2, 1, 0, l, 1)
	return AffineComm2D(m, dist, lm, nil, n0, n1, elemBytes)
}

// DecomposedTime executes a factorized communication as successive
// phases (the paper: "communication L and U are performed one after
// the other, not in parallel") and returns the summed phase times.
// Factors are applied right to left, as in the matrix product; the
// intermediate virtual positions follow the partial products.
func DecomposedTime(m *Mesh2D, dist distrib.Dist2D, factors []*intmat.Mat, n0, n1 int, elemBytes int64) float64 {
	total := 0.0
	for idx := len(factors) - 1; idx >= 0; idx-- {
		msgs := AffineComm2D(m, dist, factors[idx], nil, n0, n1, elemBytes)
		total += m.Time(msgs)
	}
	return total
}

func mod(a, n int64) int64 {
	r := a % n
	if r < 0 {
		r += n
	}
	return r
}
