package machine

import "fmt"

// CostEval is a reusable contention-cost evaluator for one mesh. It
// computes exactly what Mesh2D.Time computes — the same greedy
// round packing in the same order, the same float accumulation — but
// keeps its working state (per-round link-occupancy bitmaps, path
// scratch) allocated across calls, so pricing thousands of candidate
// schedules costs zero steady-state allocations instead of one
// map[linkID]bool per round per call.
//
// It additionally exposes the packing itself (Assign): the partition
// of a pattern into contention rounds depends only on message paths,
// never on payload sizes, which is what lets a compiled schedule
// template precompute its contention structure once and re-price it
// for any byte size with pure arithmetic (see internal/collective's
// template layer).
//
// A CostEval is bound to one mesh geometry and is not safe for
// concurrent use; give each goroutine its own.
type CostEval struct {
	m *Mesh2D
	// nlinks is the directed-link index space: 2 dims x 2 dirs per
	// node. Indices are ((x*Q+y)*2+dim)*2+dirIdx with dirIdx 0 for
	// dir -1 and 1 for dir +1.
	nlinks  int
	rounds  []costRound
	nrounds int
	path    []int32
}

// costRound mirrors Mesh2D.Time's per-round state with a flat bitmap
// plus a dirty list for O(links touched) clearing between calls.
type costRound struct {
	used     []bool
	dirty    []int32
	maxBytes int64
	maxHops  int
}

// NewCostEval builds an evaluator for the mesh.
func NewCostEval(m *Mesh2D) *CostEval {
	if m.P < 1 || m.Q < 1 {
		panic(fmt.Sprintf("machine: cost evaluator needs a non-empty mesh, got %dx%d", m.P, m.Q))
	}
	return &CostEval{m: m, nlinks: m.P * m.Q * 4}
}

// Time prices the pattern, bit-identical to m.Time(msgs).
func (e *CostEval) Time(msgs []Message) float64 {
	nr := e.Assign(msgs, nil)
	total := 0.0
	for i := 0; i < nr; i++ {
		r := &e.rounds[i]
		total += e.m.Startup + float64(r.maxBytes)*e.m.PerByte + float64(r.maxHops)*e.m.HopLatency
	}
	return total
}

// Assign packs the pattern into contention rounds exactly as Time
// does and returns the round count. When assign is non-nil (length ≥
// len(msgs)) it receives each message's round index, -1 for local
// (Src == Dst) messages. The packing reads only message endpoints —
// payload sizes never influence placement — so an Assign over a
// schedule's structure is valid for every byte size. Per-round
// aggregates from the packing remain readable via RoundHops until the
// next Time/Assign call.
func (e *CostEval) Assign(msgs []Message, assign []int) int {
	e.reset()
	nr := 0
	for mi := range msgs {
		msg := &msgs[mi]
		if msg.Src == msg.Dst {
			if assign != nil {
				assign[mi] = -1
			}
			continue
		}
		e.walk(msg.Src, msg.Dst)
		placed := -1
		for ri := 0; ri < nr; ri++ {
			r := &e.rounds[ri]
			free := true
			for _, l := range e.path {
				if r.used[l] {
					free = false
					break
				}
			}
			if free {
				r.occupy(e.path)
				if msg.Bytes > r.maxBytes {
					r.maxBytes = msg.Bytes
				}
				if len(e.path) > r.maxHops {
					r.maxHops = len(e.path)
				}
				placed = ri
				break
			}
		}
		if placed < 0 {
			r := e.grow(nr)
			nr++
			r.occupy(e.path)
			r.maxBytes = msg.Bytes
			r.maxHops = len(e.path)
			placed = nr - 1
		}
		if assign != nil {
			assign[mi] = placed
		}
	}
	e.nrounds = nr
	return nr
}

// RoundHops returns the longest path (in hops) of contention round i
// of the last Time/Assign call.
func (e *CostEval) RoundHops(i int) int { return e.rounds[i].maxHops }

// reset clears the previous call's round state, touching only the
// links it actually occupied.
func (e *CostEval) reset() {
	for i := 0; i < e.nrounds; i++ {
		r := &e.rounds[i]
		for _, l := range r.dirty {
			r.used[l] = false
		}
		r.dirty = r.dirty[:0]
		r.maxBytes = 0
		r.maxHops = 0
	}
	e.nrounds = 0
}

// grow returns round i, allocating its bitmap on first use.
func (e *CostEval) grow(i int) *costRound {
	for len(e.rounds) <= i {
		e.rounds = append(e.rounds, costRound{used: make([]bool, e.nlinks)})
	}
	return &e.rounds[i]
}

// occupy marks a path's links used. Paths within a round are disjoint
// by construction (the caller only places on free links) and a single
// XY walk never repeats a link, so dirty entries stay unique.
func (r *costRound) occupy(path []int32) {
	for _, l := range path {
		r.used[l] = true
		r.dirty = append(r.dirty, l)
	}
}

// walk fills e.path with the directed-link indices of the XY route —
// the flat-index twin of Mesh2D.walkXY, emitting links in the same
// order.
func (e *CostEval) walk(src, dst int) {
	m := e.m
	e.path = e.path[:0]
	x1, y1 := m.Coords(src)
	x2, y2 := m.Coords(dst)
	for x := x1; x != x2; {
		dir := 1
		if x2 < x {
			dir = -1
		}
		e.path = append(e.path, e.linkIndex(x, y1, 0, dir))
		x += dir
	}
	for y := y1; y != y2; {
		dir := 1
		if y2 < y {
			dir = -1
		}
		e.path = append(e.path, e.linkIndex(x2, y, 1, dir))
		y += dir
	}
}

// linkIndex flattens a directed link to its index in [0, nlinks).
func (e *CostEval) linkIndex(x, y, dim, dir int) int32 {
	dirIdx := 0
	if dir > 0 {
		dirIdx = 1
	}
	return int32(((x*e.m.Q+y)*2+dim)*2 + dirIdx)
}
