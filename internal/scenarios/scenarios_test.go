package scenarios

import (
	"math/rand"
	"testing"
)

// TestGenerateDeterministic: the same config yields the same suite,
// name for name and key for key.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("scenario %d: name %q vs %q", i, a[i].Name, b[i].Name)
		}
		if a[i].PlanKey() != b[i].PlanKey() {
			t.Fatalf("scenario %d (%s): plan keys differ", i, a[i].Name)
		}
	}
	c := Generate(Config{Seed: 43})
	diff := false
	for i := range a {
		if i < len(c) && a[i].PlanKey() != c[i].PlanKey() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 generated identical suites")
	}
}

// TestDefaultSuiteSize: the defaults produce the ≥100-scenario batch
// the benchmarks rely on.
func TestDefaultSuiteSize(t *testing.T) {
	s := Generate(Config{})
	if len(s) != 100 {
		t.Fatalf("default suite has %d scenarios, want 100", len(s))
	}
}

// TestRandomNestsValid: generated nests always satisfy the Program
// invariants (RandomNest panics otherwise) and have the advertised
// shape bounds.
func TestRandomNestsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := RandomNest(rng, "t")
		if len(p.Arrays) < 2 || len(p.Arrays) > 3 {
			t.Fatalf("nest %d: %d arrays", i, len(p.Arrays))
		}
		if len(p.Statements) < 1 || len(p.Statements) > 2 {
			t.Fatalf("nest %d: %d statements", i, len(p.Statements))
		}
		for _, s := range p.Statements {
			if s.Depth < 2 || s.Depth > 3 {
				t.Fatalf("nest %d: statement depth %d", i, s.Depth)
			}
		}
	}
}

// TestPlanKeySharing: scenarios that differ only in machine,
// distribution or size share a plan key; different nests do not.
func TestPlanKeySharing(t *testing.T) {
	s := Generate(Config{Seed: 5, Random: 1, NoExamples: true})
	if len(s) < 2 {
		t.Fatal("need at least two scenarios")
	}
	if s[0].PlanKey() != s[1].PlanKey() {
		t.Error("machine variants of the same nest have different plan keys")
	}
	other := Generate(Config{Seed: 6, Random: 1, NoExamples: true})
	if s[0].PlanKey() == other[0].PlanKey() {
		t.Error("different random nests share a plan key")
	}
}

// TestDeepNestsValid: deep nests respect the advertised depth range
// and still validate.
func TestDeepNestsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		p := RandomDeepNest(rng, "d")
		for _, s := range p.Statements {
			if s.Depth < 4 || s.Depth > 5 {
				t.Fatalf("deep nest %d: statement depth %d, want 4-5", i, s.Depth)
			}
		}
	}
}

// TestScaledSuite: Deep + Skew + m=3 extend the suite with deep nests
// crossed against skewed grids, deterministically.
func TestScaledSuite(t *testing.T) {
	cfg := Config{Seed: 11, Random: 1, Deep: 3, Skew: true, M: 3, NoExamples: true}
	s := Generate(cfg)
	// (1 random + 3 deep) nests × (4 default + 3 skewed) machines.
	if len(s) != 4*7 {
		t.Fatalf("scaled suite has %d scenarios, want %d", len(s), 4*7)
	}
	deep, skewed := 0, 0
	for _, sc := range s {
		if sc.M != 3 {
			t.Fatalf("%s: M = %d, want 3", sc.Name, sc.M)
		}
		if len(sc.Name) >= 4 && sc.Name[:4] == "deep" {
			deep++
		}
		switch sc.Machine.String() {
		case "mesh2x16", "mesh16x2", "fattree128":
			skewed++
		}
	}
	if deep != 3*7 {
		t.Errorf("%d deep scenarios, want %d", deep, 3*7)
	}
	if skewed != 4*3 {
		t.Errorf("%d skewed-machine scenarios, want %d", skewed, 4*3)
	}
	again := Generate(cfg)
	for i := range s {
		if s[i].Name != again[i].Name || s[i].PlanKey() != again[i].PlanKey() {
			t.Fatalf("scaled suite not deterministic at %d", i)
		}
	}
}

// TestSeedStability: generalizing the nest generator must not change
// what historical seeds produce (disk-store keys depend on it).
func TestSeedStability(t *testing.T) {
	s := Generate(Config{Seed: 7, Random: 2, NoExamples: true})
	deep := Generate(Config{Seed: 7, Random: 2, Deep: 1, NoExamples: true})
	for i := range s {
		if s[i].PlanKey() != deep[i].PlanKey() {
			t.Fatalf("adding deep nests changed random nest %d (%s)", i, s[i].Name)
		}
	}
}

// TestParseMachineSpec: round-trips and rejections.
func TestParseMachineSpec(t *testing.T) {
	for _, spec := range []MachineSpec{
		{Kind: FatTree, P: 32},
		{Kind: FatTree, P: 128},
		{Kind: Mesh, P: 4, Q: 4},
		{Kind: Mesh, P: 16, Q: 2},
	} {
		got, err := ParseMachineSpec(spec.String())
		if err != nil || got != spec {
			t.Errorf("ParseMachineSpec(%q) = %v, %v", spec.String(), got, err)
		}
	}
	for _, bad := range []string{"", "torus4", "mesh4", "meshx4", "fattree", "fattree-2", "mesh0x4", "fattree32x"} {
		if _, err := ParseMachineSpec(bad); err == nil {
			t.Errorf("ParseMachineSpec(%q) accepted", bad)
		}
	}
}

// TestMachineSpec: string forms and processor counts.
func TestMachineSpec(t *testing.T) {
	ft := MachineSpec{Kind: FatTree, P: 32}
	if ft.String() != "fattree32" || ft.Procs() != 32 {
		t.Errorf("fat tree spec: %s/%d", ft, ft.Procs())
	}
	m := MachineSpec{Kind: Mesh, P: 4, Q: 8}
	if m.String() != "mesh4x8" || m.Procs() != 32 {
		t.Errorf("mesh spec: %s/%d", m, m.Procs())
	}
}

// TestDistributionCoverage: the rotation must pair every machine
// with every distribution family and every size across the default
// suite (a naive running counter aliases with the machine count and
// pins each machine to a single distribution).
func TestDistributionCoverage(t *testing.T) {
	s := Generate(Config{Seed: 1})
	seen := map[string]map[string]bool{}
	sizes := map[string]map[int]bool{}
	for _, sc := range s {
		m := sc.Machine.String()
		if seen[m] == nil {
			seen[m] = map[string]bool{}
			sizes[m] = map[int]bool{}
		}
		seen[m][sc.Dist.Name()] = true
		sizes[m][sc.N] = true
	}
	for m, ds := range seen {
		if len(ds) != len(dists) {
			t.Errorf("machine %s sees %d distribution families, want %d: %v", m, len(ds), len(dists), ds)
		}
		if len(sizes[m]) < 2 {
			t.Errorf("machine %s sees only sizes %v", m, sizes[m])
		}
	}
}

// TestParseMachineSpecAlgo: the extended grammar accepts a pinned
// collective algorithm and rejects unknown names.
func TestParseMachineSpecAlgo(t *testing.T) {
	for _, spec := range []MachineSpec{
		{Kind: Mesh, P: 8, Q: 8, Algo: "flat"},
		{Kind: Mesh, P: 64, Q: 2, Algo: "bisection"},
		{Kind: FatTree, P: 32, Algo: "binomial-sw"},
	} {
		got, err := ParseMachineSpec(spec.String())
		if err != nil || got != spec {
			t.Errorf("ParseMachineSpec(%q) = %v, %v", spec.String(), got, err)
		}
	}
	if s := (MachineSpec{Kind: Mesh, P: 8, Q: 8, Algo: "flat"}).String(); s != "mesh8x8:flat" {
		t.Errorf("pinned spec renders as %q", s)
	}
	for _, bad := range []string{"mesh8x8:", "mesh8x8:bogus", "fattree32:Binomial", ":flat", "mesh8x8:flat:flat"} {
		if _, err := ParseMachineSpec(bad); err == nil {
			t.Errorf("ParseMachineSpec(%q) accepted", bad)
		}
	}
}

// TestBigMeshes: the big-mesh axis appends the three tree-shape
// machines without disturbing the rest of the suite.
func TestBigMeshes(t *testing.T) {
	cfg := Config{Seed: 11, Random: 2, BigMeshes: true, NoExamples: true}
	s := Generate(cfg)
	// 2 nests × (4 default + 3 big) machines.
	if len(s) != 2*7 {
		t.Fatalf("big-mesh suite has %d scenarios, want %d", len(s), 2*7)
	}
	big := map[string]int{}
	for _, sc := range s {
		switch sc.Machine.String() {
		case "mesh64x2", "mesh2x64", "mesh16x16":
			big[sc.Machine.String()]++
		}
	}
	for _, name := range []string{"mesh64x2", "mesh2x64", "mesh16x16"} {
		if big[name] != 2 {
			t.Errorf("%s appears %d times, want 2", name, big[name])
		}
	}
}
