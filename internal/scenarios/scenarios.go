// Package scenarios generates diverse optimization workloads for the
// batch engine: every built-in example nest of package affine
// (matmul, Gauss, Jacobi/ADI-style sweeps, the paper examples) plus
// parameterized random affine nests, each crossed with machine models
// (CM-5-like fat trees, Paragon-like meshes), data distributions and
// problem sizes. Generation is fully deterministic in Config.Seed, so
// a suite can be regenerated bit-identically for cache-consistency
// and concurrency-determinism tests.
package scenarios

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/affine"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/intmat"
)

// MachineKind selects one of the two machine models of the paper's
// evaluation.
type MachineKind int

const (
	// FatTree is the CM-5-like model (machine.FatTree).
	FatTree MachineKind = iota
	// Mesh is the Paragon-like 2-D mesh model (machine.Mesh2D).
	Mesh
)

// MachineSpec names a concrete machine configuration: P processors
// for a fat tree, a P×Q grid for a mesh. Algo optionally pins the
// collective-algorithm selection on this machine to one named
// algorithm (see internal/collective), the ablation knob of the
// extended spec grammar: "mesh8x8:flat" prices every residual
// macro-communication with the flat root-to-all schedule at its
// scope — machine-spanning for total macros (the seed cost model,
// exactly), one root-to-all loop per line or per plane phase for
// partial ones — and "fattree32:binomial-sw" forbids the hardware
// combining network.
type MachineSpec struct {
	Kind MachineKind
	P, Q int
	Algo string
}

func (s MachineSpec) String() string {
	base := fmt.Sprintf("fattree%d", s.P)
	if s.Kind == Mesh {
		base = fmt.Sprintf("mesh%dx%d", s.P, s.Q)
	}
	if s.Algo != "" {
		return base + ":" + s.Algo
	}
	return base
}

// ParseMachineSpec parses the String form back into a spec:
// "fattreeP" or "meshPxQ" with positive extents, optionally followed
// by ":algorithm" to pin the collective algorithm.
func ParseMachineSpec(s string) (MachineSpec, error) {
	base, algo := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		base, algo = s[:i], s[i+1:]
		if !collective.KnownAlgorithm(algo) {
			return MachineSpec{}, fmt.Errorf("scenarios: unknown collective algorithm %q in machine spec %q (have %v)",
				algo, s, collective.AllAlgorithms())
		}
	}
	spec := MachineSpec{Algo: algo}
	if n, err := fmt.Sscanf(base, "fattree%d", &spec.P); err == nil && n == 1 && spec.P > 0 {
		if base == fmt.Sprintf("fattree%d", spec.P) {
			return spec, nil
		}
	}
	spec = MachineSpec{Kind: Mesh, Algo: algo}
	if n, err := fmt.Sscanf(base, "mesh%dx%d", &spec.P, &spec.Q); err == nil && n == 2 && spec.P > 0 && spec.Q > 0 {
		if base == fmt.Sprintf("mesh%dx%d", spec.P, spec.Q) {
			return spec, nil
		}
	}
	return MachineSpec{}, fmt.Errorf(`scenarios: bad machine spec %q (want "fattreeP" or "meshPxQ", optionally ":algorithm")`, s)
}

// Procs returns the processor count of the machine.
func (s MachineSpec) Procs() int {
	if s.Kind == Mesh {
		return s.P * s.Q
	}
	return s.P
}

// Scenario is one unit of batch work: optimize Program for an
// M-dimensional virtual grid under Opts, then cost the resulting
// plans on Machine with the given distribution, virtual grid extent N
// (per dimension) and per-element payload.
type Scenario struct {
	Name      string
	Program   *affine.Program
	M         int
	Opts      core.Options
	Machine   MachineSpec
	Dist      distrib.Dist2D
	N         int
	ElemBytes int64
}

// PlanKey is the canonical identity of the scenario's *optimization*
// input (program structure, target dimension, heuristic options).
// Scenarios that differ only in machine, distribution or size share a
// PlanKey, which is exactly what lets the engine compute the
// expensive heuristic once per distinct nest. Program.String renders
// every array, depth, schedule and access matrix, so equal keys imply
// equal optimization problems.
func (sc *Scenario) PlanKey() string {
	return fmt.Sprintf("m=%d|opts=%+v|%s", sc.M, sc.Opts, sc.Program)
}

// Config parameterizes suite generation. The zero value of every
// field selects a sensible default.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Random is the number of random affine nests to generate in
	// addition to the built-in examples (default 15).
	Random int
	// Deep is the number of additional deep random nests (depth 4–5,
	// see RandomDeepNest) to generate; default 0. Deep nests exercise
	// the m = 3 target-dimension path (the Cray T3D case the paper
	// sketches) and give the disk store large plans to persist.
	Deep int
	// Skew appends skewed machine grids (2×16 and 16×2 meshes, a
	// 128-node fat tree) to the machine list, so suites also cover
	// far-from-square processor arrangements.
	Skew bool
	// BigMeshes appends the large mesh shapes where collective tree
	// shape matters — a tall 64×2, a flat 2×64 and a square 16×16 —
	// so suites exercise the topology-aware algorithm selection.
	BigMeshes bool
	// NoExamples drops the built-in example nests from the suite.
	NoExamples bool
	// Machines lists the machine configurations to cross programs
	// with (default: fat trees of 32 and 64 nodes, 4×4 and 8×8
	// meshes).
	Machines []MachineSpec
	// Sizes lists virtual grid extents (default 16, 32).
	Sizes []int
	// ElemBytes is the payload per virtual grid point (default 64).
	ElemBytes int64
	// M is the target grid dimension (default 2).
	M int
	// Opts are the heuristic options applied to every scenario (zero
	// value: the paper's configuration).
	Opts core.Options
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Random == 0 {
		c.Random = 15
	}
	if len(c.Machines) == 0 {
		c.Machines = []MachineSpec{
			{Kind: FatTree, P: 32},
			{Kind: FatTree, P: 64},
			{Kind: Mesh, P: 4, Q: 4},
			{Kind: Mesh, P: 8, Q: 8},
		}
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{16, 32}
	}
	if c.Skew {
		c.Machines = append(append([]MachineSpec{}, c.Machines...),
			MachineSpec{Kind: Mesh, P: 2, Q: 16},
			MachineSpec{Kind: Mesh, P: 16, Q: 2},
			MachineSpec{Kind: FatTree, P: 128},
		)
	}
	if c.BigMeshes {
		c.Machines = append(append([]MachineSpec{}, c.Machines...),
			MachineSpec{Kind: Mesh, P: 64, Q: 2},
			MachineSpec{Kind: Mesh, P: 2, Q: 64},
			MachineSpec{Kind: Mesh, P: 16, Q: 16},
		)
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 64
	}
	if c.M == 0 {
		c.M = 2
	}
	return c
}

// dists is the distribution rotation applied across scenarios: the
// four distribution families of the paper's Figure 8.
var dists = []distrib.Dist2D{
	{D0: distrib.Block{}, D1: distrib.Block{}},
	{D0: distrib.Cyclic{}, D1: distrib.Cyclic{}},
	{D0: distrib.BlockCyclic{B: 4}, D1: distrib.Block{}},
	{D0: distrib.Grouped{K: 2}, D1: distrib.Block{}},
}

// Generate returns the scenario suite of cfg: (examples + random
// nests) × machines, with distributions and sizes rotated so the
// suite covers every combination family without a full cross
// product. The result is deterministic in cfg.
func Generate(cfg Config) []Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var progs []*affine.Program
	if !cfg.NoExamples {
		progs = append(progs, affine.AllExamples()...)
	}
	for i := 0; i < cfg.Random; i++ {
		progs = append(progs, RandomNest(rng, fmt.Sprintf("rand%03d", i)))
	}
	for i := 0; i < cfg.Deep; i++ {
		progs = append(progs, RandomDeepNest(rng, fmt.Sprintf("deep%03d", i)))
	}

	var out []Scenario
	for pi, p := range progs {
		for mi, ms := range cfg.Machines {
			// Rotate distributions and sizes by program+machine index
			// so every machine sees every distribution family and
			// every size across the suite. (A single running counter
			// would alias: counter mod len(machines) equals the
			// machine index, pinning each machine to one slot.)
			d := dists[(pi+mi)%len(dists)]
			n := cfg.Sizes[(pi+mi)%len(cfg.Sizes)]
			out = append(out, Scenario{
				Name:      fmt.Sprintf("%s/%s/%s/n%d", p.Name, ms, d.Name(), n),
				Program:   p,
				M:         cfg.M,
				Opts:      cfg.Opts,
				Machine:   ms,
				Dist:      d,
				N:         n,
				ElemBytes: cfg.ElemBytes,
			})
		}
	}
	return out
}

// RandomNest builds a random valid affine nest: 1–2 statements of
// depth 2–3 over 2–3 arrays, each statement with one full-rank write
// (sometimes a reduction) and 1–3 reads through small random affine
// matrices. Offsets are small constants; an outermost sequential loop
// is added occasionally. The result always passes Validate.
func RandomNest(rng *rand.Rand, name string) *affine.Program {
	return randomNest(rng, name, 2, 3)
}

// RandomDeepNest is RandomNest scaled up: statements of depth 4–5,
// the deeper iteration spaces the ROADMAP asks for. Deep nests pair
// with target dimension m = 3 to exercise the elementary-N
// decomposition path.
func RandomDeepNest(rng *rand.Rand, name string) *affine.Program {
	return randomNest(rng, name, 4, 5)
}

// randomNest draws a nest with statement depths in [minDepth,
// maxDepth]. For the historical 2–3 range it consumes the rng in
// exactly the original RandomNest order, so seeded suites are stable
// across this generalization.
func randomNest(rng *rand.Rand, name string, minDepth, maxDepth int) *affine.Program {
	idxNames := []string{"i", "j", "k", "l", "m", "n", "o"}
	p := &affine.Program{Name: name}
	nArr := 2 + rng.Intn(2)
	for a := 0; a < nArr; a++ {
		dim := 2 + rng.Intn(2)
		p.AddArray(fmt.Sprintf("%s_a%d", name, a), dim)
	}
	nStmt := 1 + rng.Intn(2)
	for s := 0; s < nStmt; s++ {
		depth := minDepth + rng.Intn(maxDepth-minDepth+1)
		idx := idxNames[:depth]
		st := p.NewStatement(fmt.Sprintf("%s_S%d", name, s), idx...)

		// one write (or reduction) through a full-rank access
		wArr := p.Arrays[rng.Intn(len(p.Arrays))]
		wf := randAccess(rng, wArr.Dim, depth, true)
		if rng.Intn(4) == 0 {
			st.Reduce(wArr.Name, wf, randOffsets(rng, wArr.Dim)...)
		} else {
			st.Write(wArr.Name, wf, randOffsets(rng, wArr.Dim)...)
		}

		nReads := 1 + rng.Intn(3)
		for r := 0; r < nReads; r++ {
			rArr := p.Arrays[rng.Intn(len(p.Arrays))]
			rf := randAccess(rng, rArr.Dim, depth, rng.Intn(3) > 0)
			st.Read(rArr.Name, rf, randOffsets(rng, rArr.Dim)...)
		}
		if depth >= 3 && rng.Intn(3) == 0 {
			st.Seq(0)
		}
	}
	if err := p.Validate(); err != nil {
		// randAccess and randOffsets respect every structural
		// invariant, so this is unreachable; fail loudly if the
		// generator regresses.
		panic("scenarios: generated invalid nest: " + err.Error())
	}
	return p
}

// randAccess returns a random dim×depth access matrix with entries in
// [-2, 2]; when fullRank is set it retries until rank min(dim, depth)
// so the access participates in the access graph.
func randAccess(rng *rand.Rand, dim, depth int, fullRank bool) *intmat.Mat {
	want := dim
	if depth < dim {
		want = depth
	}
	for {
		f := intmat.RandMat(rng, dim, depth, 2)
		if !fullRank || f.Rank() == want {
			return f
		}
	}
}

func randOffsets(rng *rand.Rand, dim int) []int64 {
	c := make([]int64, dim)
	for i := range c {
		c[i] = int64(rng.Intn(5) - 2)
	}
	return c
}
