// Package baselines implements the two comparison strategies the
// paper discusses (Section 6):
//
//   - FeautrierGreedy: the greedy volume-ordered zeroing heuristic of
//     Feautrier — process communications by decreasing data volume
//     and make each local if consistent with the constraints already
//     accepted (no branching optimality, no residual optimization);
//   - Platonoff: the macro-first strategy — detect broadcasts in the
//     initial code, constrain the mapping to *preserve* them
//     (axis-parallel), and only then zero out the remaining
//     communications greedily.
//
// The paper's Section 7.2 contrasts Platonoff with the local-first
// strategy on Example 5: preserving the broadcast costs n partial
// broadcasts where the local-first mapping is communication-free.
package baselines

import (
	"math/big"
	"sort"

	"repro/internal/accessgraph"
	"repro/internal/affine"
	"repro/internal/intmat"
	"repro/internal/ratmat"
)

// Outcome summarizes a baseline mapping.
type Outcome struct {
	M int
	// LocalComms maps communication id → made local.
	LocalComms map[int]bool
	// Preserved lists the communication ids whose broadcast the
	// strategy deliberately kept (Platonoff only).
	Preserved []int
	Graph     *accessgraph.Graph
}

// LocalCount returns the number of local communications.
func (o *Outcome) LocalCount() int {
	n := 0
	for _, ok := range o.LocalComms {
		if ok {
			n++
		}
	}
	return n
}

// ResidualCount returns the number of non-local communications
// (including those not representable in the access graph).
func (o *Outcome) ResidualCount() int {
	return len(o.Graph.Comms) - o.LocalCount()
}

// greedyState tracks the union of accepted locality equations via
// component representatives and rational transfer matrices, exactly
// like the alignment solver but driven by an arbitrary edge order.
type greedyState struct {
	root     []int
	transfer []*ratmat.Mat
}

func newGreedyState(g *accessgraph.Graph) *greedyState {
	st := &greedyState{
		root:     make([]int, len(g.Vertices)),
		transfer: make([]*ratmat.Mat, len(g.Vertices)),
	}
	for v := range g.Vertices {
		st.root[v] = v
		st.transfer[v] = ratmat.Identity(g.Vertices[v].Dim)
	}
	return st
}

// tryAdd attempts to accept the locality equation of edge e,
// reporting whether the system stays consistent.
func (st *greedyState) tryAdd(g *accessgraph.Graph, e *accessgraph.Edge) bool {
	pu, pv := st.transfer[e.Src], st.transfer[e.Dst]
	lhs := ratmat.Mul(pu, e.W)
	if st.root[e.Src] == st.root[e.Dst] {
		return lhs.Equal(pv)
	}
	// merge: express root(dst) in terms of root(src): X·P_v = P_u·W;
	// with P_v = N/λ the equation becomes X·N = λ·(P_u·W) (Lemma 2).
	n, lam := pv.ScaledInt()
	x0, _, ok := ratmat.SolveXF(ratmat.Scale(big.NewRat(lam, 1), lhs), n)
	if !ok {
		return false
	}
	oldRoot, newRoot := st.root[e.Dst], st.root[e.Src]
	for v := range st.root {
		if st.root[v] == oldRoot {
			st.root[v] = newRoot
			st.transfer[v] = ratmat.Mul(x0, st.transfer[v])
		}
	}
	return true
}

// FeautrierGreedy processes graph edges by decreasing volume weight
// and accepts every one consistent with those already accepted.
func FeautrierGreedy(p *affine.Program, m int) (*Outcome, error) {
	g, err := accessgraph.Build(p, m)
	if err != nil {
		return nil, err
	}
	out := &Outcome{M: m, Graph: g, LocalComms: map[int]bool{}}
	st := newGreedyState(g)
	edges := append([]*accessgraph.Edge(nil), g.Edges...)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Volume > edges[j].Volume })
	for _, e := range edges {
		if out.LocalComms[e.CommID] {
			continue
		}
		if st.tryAdd(g, e) {
			out.LocalComms[e.CommID] = true
		}
	}
	return out, nil
}

// Platonoff implements the macro-first strategy of Section 6.1:
//
//  1. locate broadcasts in the initial code: read accesses whose
//     kernel ker θ ∩ ker F_a is non-trivial;
//  2. constrain the mapping to preserve them: the access carrying the
//     broadcast must NOT be made local (locality would give
//     M_S·v = M_a·F_a·v = 0 and hide the broadcast);
//  3. zero out the remaining communications greedily.
func Platonoff(p *affine.Program, m int) (*Outcome, error) {
	g, err := accessgraph.Build(p, m)
	if err != nil {
		return nil, err
	}
	out := &Outcome{M: m, Graph: g, LocalComms: map[int]bool{}}

	// step 1-2: broadcast candidates to preserve
	preserve := map[int]bool{}
	for _, c := range g.Comms {
		if c.Access.Write {
			continue
		}
		k := intmat.KernelIntersection(c.Stmt.ScheduleOrEmpty(), c.Access.F)
		if k.Cols() > 0 {
			preserve[c.ID] = true
			out.Preserved = append(out.Preserved, c.ID)
		}
	}

	// step 3: greedy zeroing of everything else
	st := newGreedyState(g)
	edges := append([]*accessgraph.Edge(nil), g.Edges...)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Volume > edges[j].Volume })
	for _, e := range edges {
		if preserve[e.CommID] || out.LocalComms[e.CommID] {
			continue
		}
		if st.tryAdd(g, e) {
			out.LocalComms[e.CommID] = true
		}
	}
	return out, nil
}
