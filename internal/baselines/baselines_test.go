package baselines

import (
	"testing"

	"repro/internal/affine"
	"repro/internal/alignment"
)

func TestExample5OursVsPlatonoff(t *testing.T) {
	// Section 7.2: the macro-first strategy preserves the broadcast
	// and keeps a residual communication; the local-first strategy is
	// communication-free on the same nest.
	p := affine.Example5()

	pl, err := Platonoff(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Preserved) != 1 {
		t.Fatalf("preserved = %v, want exactly the b read", pl.Preserved)
	}
	if pl.ResidualCount() != 1 {
		t.Fatalf("platonoff residuals = %d, want 1 (the preserved broadcast)", pl.ResidualCount())
	}

	ours, err := alignment.Align(p, 2, alignment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ours.ResidualComms()) != 0 {
		t.Fatal("local-first mapping should be communication-free")
	}
}

func TestFeautrierGreedyExample1(t *testing.T) {
	out, err := FeautrierGreedy(affine.PaperExample1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// greedy must zero out a consistent subset; on Example 1 it can
	// reach at most the branching+augmentation optimum of 6.
	if out.LocalCount() < 4 || out.LocalCount() > 6 {
		t.Fatalf("greedy local = %d, want 4..6", out.LocalCount())
	}
	// both volume-3 communications must be local (processed first)
	for _, c := range out.Graph.Comms {
		if c.Rank == 3 && !out.LocalComms[c.ID] {
			t.Fatal("greedy skipped a volume-3 communication")
		}
	}
}

func TestGreedyNeverBeatsEdmondsOnVolume(t *testing.T) {
	// the volume made local by the greedy heuristic is never larger
	// than the branching-based alignment's on our examples.
	for _, p := range affine.AllExamples() {
		g, err := FeautrierGreedy(p, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		a, err := alignment.Align(p, 2, alignment.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		gv, av := 0, 0
		for _, c := range g.Graph.Comms {
			if g.LocalComms[c.ID] {
				gv += c.Rank
			}
		}
		for _, c := range a.Graph.Comms {
			if a.LocalComms[c.ID] {
				av += c.Rank
			}
		}
		if gv > av {
			t.Errorf("%s: greedy volume %d > aligned volume %d", p.Name, gv, av)
		}
	}
}

func TestPlatonoffPreservesGaussBroadcasts(t *testing.T) {
	out, err := Platonoff(affine.Gauss(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// the pivot-row and pivot-column reads both carry broadcasts in
	// the initial code (kernels e_j and e_i within ker θ).
	if len(out.Preserved) < 2 {
		t.Fatalf("preserved = %d, want >= 2", len(out.Preserved))
	}
	for _, id := range out.Preserved {
		if out.LocalComms[id] {
			t.Fatal("preserved broadcast was made local")
		}
	}
}

func TestOutcomeCounts(t *testing.T) {
	out, err := FeautrierGreedy(affine.Transpose(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.LocalCount()+out.ResidualCount() != len(out.Graph.Comms) {
		t.Fatal("counts inconsistent")
	}
	if out.ResidualCount() != 0 {
		t.Fatalf("transpose should be fully local under greedy too, residual=%d", out.ResidualCount())
	}
}
