package compiled

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/intmat"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// Point is the evaluation of one artifact at one machine point: the
// same aggregate the engine reports per scenario (class counts, model
// time, vectorizable count, collective summary), minus the run-side
// bookkeeping.
type Point struct {
	// Classes counts the nest's communications per core.Class.
	Classes [4]int
	// ModelTime is the modeled execution time (µs) of one sweep of all
	// residual communications.
	ModelTime float64
	// Vectorizable counts plans satisfying the Section 4.5 condition.
	Vectorizable int
	// Collectives is the deterministic collective summary, rendered
	// exactly as engine results render it.
	Collectives string
}

// standInGeneral is the deterministic pattern used when a general
// plan has no usable 2×2 data-flow matrix (mirrors the engine).
var standInGeneral = intmat.New(2, 2, 0, 1, 1, 0)

// Eval prices the artifact's plans at one machine point. It replays
// the engine's cost dispatch exactly — mesh macro-communications
// through the pricer's compiled templates (or cold selection for a
// nil pricer), decomposed and general plans through the same
// simulation and permute selection the engine calls — so the Point is
// bit-identical to optimizing the corresponding scenario uncompiled.
// An errored artifact returns the zero Point.
func (a *Artifact) Eval(pr *Pricer, spec scenarios.MachineSpec, dist distrib.Dist2D, n int, elemBytes int64) Point {
	var pt Point
	if a.Err != "" {
		return pt
	}
	counts := map[string]int{}
	for _, pl := range a.Plans {
		pt.Classes[pl.Class]++
		if pl.Vectorizable {
			pt.Vectorizable++
		}
		var t float64
		var choices []collective.Choice
		if pl.Class == core.Local {
			continue
		}
		if spec.Kind == scenarios.Mesh {
			t, choices = meshShapeTime(pr, spec, dist, n, elemBytes, pl)
		} else {
			t, choices = fatTreeShapeTime(spec, n, elemBytes, pl)
		}
		pt.ModelTime += t
		for _, ch := range choices {
			counts[ch.String()]++
		}
	}
	pt.Collectives = formatCollectives(counts)
	return pt
}

// physMacroDims projects a macro's virtual grid axes onto the 2-D
// mesh, exactly as the engine does: axes ≥ 2 have no physical extent
// and are dropped.
func physMacroDims(vdims []int) []int {
	var dims []int
	for _, d := range vdims {
		if d == 0 || d == 1 {
			dims = append(dims, d)
		}
	}
	return dims
}

func meshShapeTime(pr *Pricer, spec scenarios.MachineSpec, dist distrib.Dist2D, n int, eb int64, pl PlanShape) (float64, []collective.Choice) {
	m := machine.DefaultMesh(spec.P, spec.Q)
	force := spec.Algo
	switch pl.Class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.MacroReduction {
			pattern = collective.Reduction
		}
		bytes := eb * int64(n)
		dims := physMacroDims(pl.MacroDims)
		var ch collective.Choice
		switch {
		case len(pl.MacroDims) == 1 && len(dims) == 1:
			ch = pr.SelectMeshDim(m, pattern, dims[0], bytes, force)
		case len(pl.MacroDims) >= 2 && len(dims) >= 1:
			ch = pr.SelectMeshMacro(m, pattern, dims, bytes, force)
		default:
			ch = pr.SelectMesh(m, pattern, bytes, force)
		}
		return ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		if len(pl.Factors) > 0 && is2x2(pl.Factors[0]) {
			total := 0.0
			var choices []collective.Choice
			for idx := len(pl.Factors) - 1; idx >= 0; idx-- {
				msgs := machine.AffineComm2D(m, dist, pl.Factors[idx], nil, n, n, eb)
				ch := collective.SelectPermute(m, msgs, force)
				total += ch.Cost
				choices = append(choices, ch)
			}
			return total, choices
		}
		k := len(pl.Factors)
		if k == 0 {
			k = 1
		}
		shift := machine.AffineComm2D(m, dist, intmat.Identity(2), []int64{1, 1}, n, n, eb)
		ch := collective.SelectPermute(m, shift, force)
		choices := make([]collective.Choice, k)
		for i := range choices {
			choices[i] = ch
		}
		return float64(k) * ch.Cost, choices
	default: // General
		t := pl.Dataflow
		if t == nil || !is2x2(t) {
			t = standInGeneral
		}
		return m.Time(machine.GeneralComm2D(m, dist, t, nil, n, n, eb)), nil
	}
}

func fatTreeShapeTime(spec scenarios.MachineSpec, n int, eb int64, pl PlanShape) (float64, []collective.Choice) {
	ft := machine.DefaultFatTree(spec.P)
	switch pl.Class {
	case core.MacroComm:
		pattern := collective.Broadcast
		if pl.MacroReduction {
			pattern = collective.Reduction
		}
		if pl.Vectorizable {
			ch := collective.SelectFatTree(ft, pattern, eb*int64(n), spec.Algo)
			return ch.Cost, []collective.Choice{ch}
		}
		ch := collective.SelectFatTree(ft, pattern, eb, spec.Algo)
		return float64(n) * ch.Cost, []collective.Choice{ch}
	case core.Decomposed:
		k := len(pl.Factors)
		if k == 0 {
			k = 1
		}
		one := func(bytes int64) float64 { return float64(k) * ft.Translation(bytes) }
		if pl.Vectorizable {
			return one(eb * int64(n)), nil
		}
		return float64(n) * one(eb), nil
	default:
		if pl.Vectorizable {
			return ft.General(1, eb*int64(n)), nil
		}
		return float64(n) * ft.General(1, eb), nil
	}
}

func is2x2(m *intmat.Mat) bool { return m != nil && m.Rows() == 2 && m.Cols() == 2 }
