package compiled

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/collective"
	"repro/internal/machine"
)

// Pricer caches compiled collective.MeshTemplates per selection
// structure — (mode, mesh geometry, pattern, dims, force) — and
// serves mesh collective selections by evaluating the cached template
// at the requested payload. Template compilation is byte-independent,
// so one template prices every payload (and every link-cost
// calibration of its geometry); evaluation is allocation-free and
// bit-identical to the corresponding collective.Select* call.
//
// A Pricer is safe for concurrent use; template compilation is
// single-flight per key. The nil *Pricer is valid and falls back to
// cold selection, so callers can thread an optional pricer without
// guarding call sites.
type Pricer struct {
	mu   sync.Mutex
	tmpl map[string]*tmplSlot
	bld  map[string]*builderSlot

	hits, misses atomic.Uint64
	evals        atomic.Uint64
}

type tmplSlot struct {
	once sync.Once
	t    *collective.MeshTemplate
}

// builderSlot serializes template compilation per mesh geometry: all
// templates of one geometry build through one shared
// collective.TemplateBuilder, so the expensive substructure (the
// machine-spanning total line every macro template competes against,
// the per-dimension line sets, the full-plane composition) compiles
// once per geometry instead of once per template.
type builderSlot struct {
	mu sync.Mutex
	b  *collective.TemplateBuilder
}

// NewPricer returns an empty template cache.
func NewPricer() *Pricer {
	return &Pricer{tmpl: map[string]*tmplSlot{}, bld: map[string]*builderSlot{}}
}

// builder returns the geometry's shared template builder, creating it
// on first use. Templates are calibration-independent, so one builder
// serves every mesh instance of the geometry.
func (pr *Pricer) builder(m *machine.Mesh2D) *builderSlot {
	k := fmt.Sprintf("%dx%d", m.P, m.Q)
	pr.mu.Lock()
	defer pr.mu.Unlock()
	bs, ok := pr.bld[k]
	if !ok {
		bs = &builderSlot{b: collective.NewTemplateBuilder(m)}
		pr.bld[k] = bs
	}
	return bs
}

// PricerStats snapshots the pricer's counters.
type PricerStats struct {
	// Templates is the number of compiled templates held.
	Templates int
	// TemplateHits/TemplateMisses count template-cache lookups; a miss
	// compiled a new template.
	TemplateHits, TemplateMisses uint64
	// Evals counts template evaluations (one per priced selection).
	Evals uint64
}

// Stats snapshots the counters (zero for a nil pricer).
func (pr *Pricer) Stats() PricerStats {
	if pr == nil {
		return PricerStats{}
	}
	pr.mu.Lock()
	n := len(pr.tmpl)
	pr.mu.Unlock()
	return PricerStats{
		Templates:      n,
		TemplateHits:   pr.hits.Load(),
		TemplateMisses: pr.misses.Load(),
		Evals:          pr.evals.Load(),
	}
}

// templateKey identifies one selection structure. Everything
// byte-independent that Select* reads is in the key; bytes and the
// link-cost calibration are evaluation inputs.
func templateKey(mode string, m *machine.Mesh2D, p collective.Pattern, dims []int, force string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%dx%d|%s|", mode, m.P, m.Q, p)
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte('|')
	b.WriteString(force)
	return b.String()
}

// template returns the compiled template for key, compiling at most
// once concurrently.
func (pr *Pricer) template(key string, build func() *collective.MeshTemplate) *collective.MeshTemplate {
	pr.mu.Lock()
	slot, ok := pr.tmpl[key]
	if !ok {
		slot = &tmplSlot{}
		pr.tmpl[key] = slot
	}
	pr.mu.Unlock()
	if ok {
		pr.hits.Add(1)
	} else {
		pr.misses.Add(1)
	}
	slot.once.Do(func() { slot.t = build() })
	return slot.t
}

// SelectMesh is collective.SelectMesh(m, p, 0, bytes, force) through
// the template cache.
func (pr *Pricer) SelectMesh(m *machine.Mesh2D, p collective.Pattern, bytes int64, force string) collective.Choice {
	if pr == nil {
		return collective.SelectMesh(m, p, 0, bytes, force)
	}
	bs := pr.builder(m)
	t := pr.template(templateKey("total", m, p, nil, force), func() *collective.MeshTemplate {
		bs.mu.Lock()
		defer bs.mu.Unlock()
		return bs.b.Total(p, force)
	})
	pr.evals.Add(1)
	return t.Eval(m, bytes)
}

// SelectMeshDim is collective.SelectMeshDim through the template
// cache.
func (pr *Pricer) SelectMeshDim(m *machine.Mesh2D, p collective.Pattern, dim int, bytes int64, force string) collective.Choice {
	if pr == nil {
		return collective.SelectMeshDim(m, p, dim, bytes, force)
	}
	bs := pr.builder(m)
	t := pr.template(templateKey("dim", m, p, []int{dim}, force), func() *collective.MeshTemplate {
		bs.mu.Lock()
		defer bs.mu.Unlock()
		return bs.b.Dim(p, dim, force)
	})
	pr.evals.Add(1)
	return t.Eval(m, bytes)
}

// SelectMeshMacro is collective.SelectMeshMacro through the template
// cache.
func (pr *Pricer) SelectMeshMacro(m *machine.Mesh2D, p collective.Pattern, dims []int, bytes int64, force string) collective.Choice {
	if pr == nil {
		return collective.SelectMeshMacro(m, p, dims, bytes, force)
	}
	bs := pr.builder(m)
	t := pr.template(templateKey("macro", m, p, dims, force), func() *collective.MeshTemplate {
		bs.mu.Lock()
		defer bs.mu.Unlock()
		return bs.b.Macro(p, dims, force)
	})
	pr.evals.Add(1)
	return t.Eval(m, bytes)
}
