// Package compiled factors one full optimization run into a
// structural phase done once per nest and a cheap numeric evaluator
// run once per machine point. The structural phase (Compile) pays for
// alignment, Hermite forms and plan construction through core; its
// result — an Artifact — is the machine-independent projection of the
// plans. The numeric phase (Artifact.Eval) prices those plans on a
// concrete machine instance through the same cost model the engine
// uses, with mesh collective selection served from compiled
// collective.MeshTemplates cached in a Pricer, so sweeping a lattice
// of (P, Q, bytes) points costs one structural compile plus one cheap
// arithmetic evaluation per point instead of one cold optimize each.
//
// Equivalence is the package's contract: for any scenario, Eval
// returns bit-identical model time, class counts and collective
// summaries to running the scenario through engine's uncompiled
// costing — templates compile the exact Select* structure (see
// internal/collective), and Eval replays the engine's planTime
// dispatch term for term.
package compiled

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/macro"
	"repro/internal/scenarios"
)

// PlanShape is the machine-independent projection of one core.Plan:
// exactly the fields the cost models read. It mirrors the engine's
// plan records, so an artifact built from either a fresh optimization
// or a stored plan entry evaluates identically.
type PlanShape struct {
	Class          core.Class
	Vectorizable   bool
	MacroReduction bool
	// MacroDims lists the virtual grid axes of a partial axis-parallel
	// macro-communication (nil: machine-spanning scheduling).
	MacroDims []int
	Factors   []*intmat.Mat
	Dataflow  *intmat.Mat
}

// Artifact is the compiled structural form of one optimization
// problem: the plan shapes of its nest, reusable across every
// machine, distribution, size and payload. Artifacts are read-only
// after construction and safe for concurrent Eval.
type Artifact struct {
	// Key is the scenario plan key the artifact was compiled from
	// (scenarios.Scenario.PlanKey) — machine-independent by
	// construction.
	Key string
	// Err is the optimization error ("" on success); an errored
	// artifact evaluates to the zero Point at every machine.
	Err   string
	Plans []PlanShape
}

// New assembles an artifact from already-projected plan shapes (the
// engine uses this to convert a cached plan entry without re-running
// the heuristic).
func New(key string, plans []PlanShape, errMsg string) *Artifact {
	return &Artifact{Key: key, Err: errMsg, Plans: plans}
}

// Compile runs the structural phase for a scenario's optimization
// problem: the full two-step heuristic, projected down to plan
// shapes. Only the nest-side fields of sc are read (Program, M,
// Opts); machine, distribution and size belong to Eval.
func Compile(sc *scenarios.Scenario) *Artifact {
	a := &Artifact{Key: sc.PlanKey()}
	res, err := core.Optimize(sc.Program, sc.M, sc.Opts)
	if err != nil {
		a.Err = err.Error()
		return a
	}
	a.Plans = make([]PlanShape, 0, len(res.Plans))
	for _, pl := range res.Plans {
		a.Plans = append(a.Plans, PlanShape{
			Class:          pl.Class,
			Vectorizable:   pl.Vectorizable,
			MacroReduction: pl.Macro != nil && pl.Macro.Kind == macro.Reduction,
			MacroDims:      macroGridDims(pl.Macro),
			Factors:        pl.Factors,
			Dataflow:       pl.Dataflow,
		})
	}
	return a
}

// macroGridDims extracts the grid axes of a partial axis-parallel
// macro-communication — the non-zero rows of its direction matrix, in
// row order — matching the engine's projection exactly. Total, hidden
// and non-axis macros report nil.
func macroGridDims(mc *macro.Macro) []int {
	if mc == nil || !mc.Partial() || !mc.AxisParallel() {
		return nil
	}
	d := mc.Directions
	var dims []int
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if d.At(i, j) != 0 {
				dims = append(dims, i)
				break
			}
		}
	}
	return dims
}

// formatCollectives renders selector choices deterministically —
// sorted "pattern=algorithm" terms, "*n" multiplicities past one —
// byte-identical to the engine's rendering.
func formatCollectives(counts map[string]int) string {
	if len(counts) == 0 {
		return ""
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		if counts[k] > 1 {
			fmt.Fprintf(&b, "*%d", counts[k])
		}
	}
	return b.String()
}
