package compiled

import (
	"errors"

	"repro/internal/core"
	"repro/internal/intmat"
)

// PlanShapeRec is the serializable form of one PlanShape, using the
// same field layout and tags as the engine's plan records so stored
// artifacts stay human-diffable next to the plan tier.
type PlanShapeRec struct {
	Class          int          `json:"class"`
	Vectorizable   bool         `json:"vec,omitempty"`
	MacroReduction bool         `json:"red,omitempty"`
	MacroDims      []int        `json:"mdims,omitempty"`
	Factors        []intmat.Rec `json:"factors,omitempty"`
	Dataflow       *intmat.Rec  `json:"dataflow,omitempty"`
}

// ArtifactRec is the serializable form of an Artifact — the unit the
// disk store's compiled tier persists.
type ArtifactRec struct {
	Key   string         `json:"key"`
	Err   string         `json:"err,omitempty"`
	Plans []PlanShapeRec `json:"plans,omitempty"`
}

// Rec serializes the artifact.
func (a *Artifact) Rec() ArtifactRec {
	rec := ArtifactRec{Key: a.Key, Err: a.Err}
	for _, p := range a.Plans {
		pr := PlanShapeRec{
			Class:          int(p.Class),
			Vectorizable:   p.Vectorizable,
			MacroReduction: p.MacroReduction,
			MacroDims:      p.MacroDims,
		}
		for _, f := range p.Factors {
			pr.Factors = append(pr.Factors, f.Rec())
		}
		if p.Dataflow != nil {
			dr := p.Dataflow.Rec()
			pr.Dataflow = &dr
		}
		rec.Plans = append(rec.Plans, pr)
	}
	return rec
}

var errBadShape = errors.New("compiled: artifact record has an invalid class")

// FromRec rebuilds an artifact from its stored form, rejecting
// records that do not decode to valid matrices or classes (callers
// treat an error as a store miss and recompile).
func FromRec(rec ArtifactRec) (*Artifact, error) {
	a := &Artifact{Key: rec.Key, Err: rec.Err, Plans: make([]PlanShape, 0, len(rec.Plans))}
	for _, pr := range rec.Plans {
		if pr.Class < int(core.Local) || pr.Class > int(core.General) {
			return nil, errBadShape
		}
		p := PlanShape{
			Class:          core.Class(pr.Class),
			Vectorizable:   pr.Vectorizable,
			MacroReduction: pr.MacroReduction,
			MacroDims:      pr.MacroDims,
		}
		for _, fr := range pr.Factors {
			f, err := intmat.FromRec(fr)
			if err != nil {
				return nil, err
			}
			p.Factors = append(p.Factors, f)
		}
		if pr.Dataflow != nil {
			t, err := intmat.FromRec(*pr.Dataflow)
			if err != nil {
				return nil, err
			}
			p.Dataflow = t
		}
		a.Plans = append(a.Plans, p)
	}
	return a, nil
}
