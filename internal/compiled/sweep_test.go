package compiled

import (
	"testing"

	"repro/internal/scenarios"
)

// TestGridSweep checks the sweep contract: one row per lattice point,
// machines in declaration order with payloads ascending (even when the
// grid lists them out of order), every row identical to a direct Eval
// at its point, and switch flags exactly where the selection changes.
func TestGridSweep(t *testing.T) {
	g, err := ParseGrid("mesh{4..16}x8:bytes=32k,1k,4M")
	if err != nil {
		t.Fatal(err)
	}
	suite := scenarios.Generate(scenarios.Config{Random: 1})
	sc := &suite[0]
	art := Compile(sc)
	if art.Err != "" {
		t.Fatal(art.Err)
	}
	pr := NewPricer()
	rows := g.Sweep(art, pr, sc.Dist, sc.N)
	if len(rows) != g.Points() {
		t.Fatalf("%d rows for %d points", len(rows), g.Points())
	}
	i := 0
	for _, ms := range g.Machines {
		prev := ""
		for _, eb := range []int64{1024, 32 << 10, 4 << 20} {
			row := rows[i]
			if row.Machine != ms || row.ElemBytes != eb {
				t.Fatalf("row %d is (%v, %d), want (%v, %d)", i, row.Machine, row.ElemBytes, ms, eb)
			}
			if pt := art.Eval(pr, ms, sc.Dist, sc.N, eb); pt != row.Point {
				t.Fatalf("row %d diverges from direct Eval: %+v vs %+v", i, row.Point, pt)
			}
			wantSwitch := prev != "" && row.Point.Collectives != prev
			if row.Switched != wantSwitch {
				t.Fatalf("row %d: switched=%v, want %v (prev %q, now %q)", i, row.Switched, wantSwitch, prev, row.Point.Collectives)
			}
			if row.Switched && row.SwitchedFrom != prev {
				t.Fatalf("row %d: switched_from %q, want %q", i, row.SwitchedFrom, prev)
			}
			prev = row.Point.Collectives
			i++
		}
	}

	// An errored artifact sweeps to nothing.
	if rows := g.Sweep(&Artifact{Err: "boom"}, pr, sc.Dist, sc.N); rows != nil {
		t.Fatalf("errored artifact swept %d rows", len(rows))
	}
}
