package compiled

import (
	"sort"

	"repro/internal/distrib"
	"repro/internal/scenarios"
)

// SweepRow is one lattice point of a grid sweep: the artifact priced
// at (Machine, ElemBytes), with switch-point detection along the
// payload axis.
type SweepRow struct {
	Machine   scenarios.MachineSpec
	ElemBytes int64
	Point     Point
	// Switched marks that the collective selection differs from the
	// previous (smaller) payload on the same machine; SwitchedFrom is
	// the selection it displaced.
	Switched     bool
	SwitchedFrom string
}

// Sweep prices the artifact at every lattice point of the grid:
// machines in declaration order (outer), payloads ascending (inner),
// so switch points along the payload axis land on adjacent rows. The
// same sweep backs POST /v1/lattice and resopt -lattice. Returns nil
// for an errored artifact.
func (g *Grid) Sweep(a *Artifact, pr *Pricer, dist distrib.Dist2D, n int) []SweepRow {
	if a.Err != "" {
		return nil
	}
	bytes := append([]int64(nil), g.Bytes...)
	sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
	rows := make([]SweepRow, 0, g.Points())
	for _, ms := range g.Machines {
		prev, first := "", true
		for _, eb := range bytes {
			pt := a.Eval(pr, ms, dist, n, eb)
			row := SweepRow{Machine: ms, ElemBytes: eb, Point: pt}
			if !first && pt.Collectives != prev {
				row.Switched, row.SwitchedFrom = true, prev
			}
			prev, first = pt.Collectives, false
			rows = append(rows, row)
		}
	}
	return rows
}
