package compiled

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/machine"
)

// TestTemplateKeyDistinct is the key-collision property test for the
// template cache: any difference in mode, geometry, pattern, dims or
// force must produce a distinct key, or the pricer would serve one
// structure for another.
func TestTemplateKeyDistinct(t *testing.T) {
	type in struct {
		mode  string
		p, q  int
		pat   collective.Pattern
		dims  []int
		force string
	}
	ins := []in{}
	for _, mode := range []string{"total", "dim", "macro"} {
		for _, sh := range [][2]int{{4, 4}, {4, 2}, {2, 4}, {16, 16}} {
			for _, pat := range []collective.Pattern{collective.Broadcast, collective.Reduction} {
				for _, dims := range [][]int{nil, {0}, {1}, {0, 1}, {0, 2}} {
					for _, force := range []string{"", "flat", "chain"} {
						ins = append(ins, in{mode, sh[0], sh[1], pat, dims, force})
					}
				}
			}
		}
	}
	seen := map[string]in{}
	for _, c := range ins {
		k := templateKey(c.mode, &machine.Mesh2D{P: c.p, Q: c.q}, c.pat, c.dims, c.force)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision %q:\n  %+v\n  %+v", k, prev, c)
		}
		seen[k] = c
	}
}
