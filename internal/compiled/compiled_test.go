package compiled_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/collective"
	"repro/internal/compiled"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/scenarios"
)

// TestPricerMatchesSelect checks that every pricer entry point is
// bit-identical to the cold collective selection it compiles, across
// geometries, patterns, payloads and force pins — and that the nil
// pricer falls back cleanly.
func TestPricerMatchesSelect(t *testing.T) {
	meshes := [][2]int{{4, 4}, {8, 8}, {16, 2}, {3, 5}, {1, 1}}
	payloads := []int64{1, 64, 4096, 1 << 20}
	var nilPricer *compiled.Pricer
	for _, prName := range []string{"pricer", "nil"} {
		pr := compiled.NewPricer()
		if prName == "nil" {
			pr = nilPricer
		}
		for _, sh := range meshes {
			m := machine.DefaultMesh(sh[0], sh[1])
			for _, p := range []collective.Pattern{collective.Broadcast, collective.Reduction} {
				for _, force := range []string{"", "flat", "chain"} {
					for _, b := range payloads {
						ctxt := fmt.Sprintf("%s %dx%d %s force=%q bytes=%d", prName, sh[0], sh[1], p, force, b)
						if want, got := collective.SelectMesh(m, p, 0, b, force), pr.SelectMesh(m, p, b, force); want != got {
							t.Fatalf("%s total: select %+v != pricer %+v", ctxt, want, got)
						}
						for dim := 0; dim < 2; dim++ {
							if want, got := collective.SelectMeshDim(m, p, dim, b, force), pr.SelectMeshDim(m, p, dim, b, force); want != got {
								t.Fatalf("%s dim%d: select %+v != pricer %+v", ctxt, dim, want, got)
							}
						}
						for _, dims := range [][]int{nil, {0}, {1}, {0, 1}, {0, 2}, {2, 3}} {
							if want, got := collective.SelectMeshMacro(m, p, dims, b, force), pr.SelectMeshMacro(m, p, dims, b, force); want != got {
								t.Fatalf("%s macro%v: select %+v != pricer %+v", ctxt, dims, want, got)
							}
						}
					}
				}
			}
		}
		if pr != nil {
			st := pr.Stats()
			if st.Templates == 0 || st.Evals == 0 {
				t.Fatalf("pricer stats did not move: %+v", st)
			}
			if st.TemplateHits == 0 || st.TemplateMisses != uint64(st.Templates) {
				t.Fatalf("template cache stats inconsistent: %+v", st)
			}
		}
	}
}

// bigSweepConfig is the configuration behind baselines/big-sweep.json
// — the widest suite the repo pins byte-identically in CI.
func bigSweepConfig() scenarios.Config {
	return scenarios.Config{Seed: 42, Random: 6, Deep: 4, Skew: true, BigMeshes: true, M: 3}
}

// TestCompiledEvalMatchesEngine is the tentpole equivalence check:
// compiling each distinct nest once and evaluating the artifact at
// each scenario's machine point must reproduce the engine's
// uncompiled batch results bit-identically — model time to the last
// float bit, class counts, vectorizable counts and collective
// summaries — across the full big-sweep suite.
func TestCompiledEvalMatchesEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("big-sweep equivalence is not a -short test")
	}
	suite := scenarios.Generate(bigSweepConfig())
	batch := engine.Run(suite, engine.Options{})

	arts := map[string]*compiled.Artifact{}
	pr := compiled.NewPricer()
	for i := range suite {
		sc := &suite[i]
		art, ok := arts[sc.PlanKey()]
		if !ok {
			art = compiled.Compile(sc)
			arts[sc.PlanKey()] = art
		}
		res := batch.Results[i]
		if (res.Err != "") != (art.Err != "") {
			t.Fatalf("%s: engine err %q vs artifact err %q", sc.Name, res.Err, art.Err)
		}
		if art.Err != "" {
			continue
		}
		pt := art.Eval(pr, sc.Machine, sc.Dist, sc.N, sc.ElemBytes)
		if pt.ModelTime != res.ModelTime || pt.Classes != res.Classes ||
			pt.Vectorizable != res.Vectorizable || pt.Collectives != res.Collectives {
			t.Fatalf("%s: compiled eval diverges\n  engine:   t=%v classes=%v vec=%d coll=%q\n  compiled: t=%v classes=%v vec=%d coll=%q",
				sc.Name, res.ModelTime, res.Classes, res.Vectorizable, res.Collectives,
				pt.ModelTime, pt.Classes, pt.Vectorizable, pt.Collectives)
		}
	}
	if len(arts) >= len(suite) {
		t.Fatalf("expected nest sharing across machine points: %d artifacts for %d scenarios", len(arts), len(suite))
	}
}

// TestArtifactRecRoundTrip round-trips a real compiled artifact
// through its stored form.
func TestArtifactRecRoundTrip(t *testing.T) {
	suite := scenarios.Generate(scenarios.Config{Random: 2})
	for i := range suite {
		art := compiled.Compile(&suite[i])
		back, err := compiled.FromRec(art.Rec())
		if err != nil {
			t.Fatalf("%s: round-trip error: %v", suite[i].Name, err)
		}
		if !reflect.DeepEqual(art, back) {
			t.Fatalf("%s: round-trip mismatch:\n  in:  %+v\n  out: %+v", suite[i].Name, art, back)
		}
		pt1 := art.Eval(nil, suite[i].Machine, suite[i].Dist, suite[i].N, suite[i].ElemBytes)
		pt2 := back.Eval(nil, suite[i].Machine, suite[i].Dist, suite[i].N, suite[i].ElemBytes)
		if pt1 != pt2 {
			t.Fatalf("%s: round-tripped artifact evaluates differently", suite[i].Name)
		}
	}
	if _, err := compiled.FromRec(compiled.ArtifactRec{Plans: []compiled.PlanShapeRec{{Class: 99}}}); err == nil {
		t.Fatal("bad class decoded without error")
	}
}

// TestParseGrid covers the lattice grammar: expansions, defaults, and
// rejections.
func TestParseGrid(t *testing.T) {
	g, err := compiled.ParseGrid("mesh{4..64}x{2..64}:bytes=1k..16M")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Machines) != 5*6 || len(g.Bytes) != 15 {
		t.Fatalf("mesh{4..64}x{2..64}:bytes=1k..16M expanded to %d machines × %d payloads", len(g.Machines), len(g.Bytes))
	}
	if g.Machines[0] != (scenarios.MachineSpec{Kind: scenarios.Mesh, P: 4, Q: 2}) {
		t.Fatalf("first machine = %v", g.Machines[0])
	}
	if g.Bytes[0] != 1024 || g.Bytes[len(g.Bytes)-1] != 16<<20 {
		t.Fatalf("bytes endpoints = %d..%d", g.Bytes[0], g.Bytes[len(g.Bytes)-1])
	}

	g, err = compiled.ParseGrid("mesh8x{2,4,8}")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Machines) != 3 || len(g.Bytes) != 1 || g.Bytes[0] != 64 {
		t.Fatalf("mesh8x{2,4,8} = %d machines, bytes %v", len(g.Machines), g.Bytes)
	}

	g, err = compiled.ParseGrid("fattree{32..256}:bytes=64,4k,1M")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Machines) != 4 || g.Machines[3].P != 256 || len(g.Bytes) != 3 || g.Bytes[2] != 1<<20 {
		t.Fatalf("fattree grid = %+v bytes %v", g.Machines, g.Bytes)
	}

	for _, bad := range []string{
		"", "torus4x4", "mesh4", "mesh{4..}x4", "meshx4", "mesh4x4junk",
		"mesh{8..4}x4", "mesh0x4", "mesh4x4:bytes=", "mesh4x4:bytes=0",
		// Oversized machines: few lattice points, runaway node counts.
		"mesh{2..65536}x{2..65536}:bytes=1..1M",
		"mesh{2..1048576}x{2..1048576}", "fattree1048576",
	} {
		if _, err := compiled.ParseGrid(bad); err == nil {
			t.Fatalf("ParseGrid(%q) accepted", bad)
		}
	}
}
