package compiled

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scenarios"
)

// Grid is a parsed capacity-planning lattice: a set of machine
// configurations crossed with a set of per-element payload sizes.
// Sweeps iterate machines in declaration order (outer) and bytes
// ascending (inner), so switch points along the payload axis are
// adjacent rows.
type Grid struct {
	Machines []scenarios.MachineSpec
	Bytes    []int64
}

// Points returns the lattice size.
func (g *Grid) Points() int { return len(g.Machines) * len(g.Bytes) }

// maxGridPoints bounds a single sweep; a lattice past this is almost
// certainly a typo in a range.
const maxGridPoints = 65536

// maxMachineNodes bounds one machine configuration. Template
// compilation walks every grid line of a machine, so a runaway extent
// (mesh{2..1048576}x…) must be rejected at parse time even when the
// lattice's point count is small.
const maxMachineNodes = 1 << 14

// ParseGrid parses the lattice grammar:
//
//	mesh{4..64}x{2..64}:bytes=1k..16M
//	mesh8x{2,4,8}
//	fattree{32..256}:bytes=64,4k,1M
//
// A machine extent is a bare value, a {a,b,c} list, or a {a..b}
// doubling range (a, 2a, 4a, … ≤ b). The optional :bytes= suffix
// uses the same value/list/doubling forms without braces, with k/M
// suffixes meaning KiB/MiB; it defaults to the suite default payload
// of 64 bytes per element.
func ParseGrid(s string) (*Grid, error) {
	spec := strings.TrimSpace(s)
	g := &Grid{Bytes: []int64{64}}
	if i := strings.Index(spec, ":bytes="); i >= 0 {
		bytesPart := spec[i+len(":bytes="):]
		spec = spec[:i]
		bs, err := expandSizes(bytesPart)
		if err != nil {
			return nil, fmt.Errorf("compiled: bad bytes range %q: %w", bytesPart, err)
		}
		g.Bytes = bs
	}
	switch {
	case strings.HasPrefix(spec, "mesh"):
		rest := spec[len("mesh"):]
		ptok, rest, err := cutExtent(rest)
		if err != nil {
			return nil, fmt.Errorf("compiled: bad mesh grid %q: %w", s, err)
		}
		if !strings.HasPrefix(rest, "x") {
			return nil, fmt.Errorf("compiled: bad mesh grid %q: want meshPxQ extents", s)
		}
		qtok, rest, err := cutExtent(rest[1:])
		if err != nil {
			return nil, fmt.Errorf("compiled: bad mesh grid %q: %w", s, err)
		}
		if rest != "" {
			return nil, fmt.Errorf("compiled: trailing %q in grid %q", rest, s)
		}
		ps, err := expandInts(ptok)
		if err != nil {
			return nil, fmt.Errorf("compiled: bad mesh extent %q: %w", ptok, err)
		}
		qs, err := expandInts(qtok)
		if err != nil {
			return nil, fmt.Errorf("compiled: bad mesh extent %q: %w", qtok, err)
		}
		for _, p := range ps {
			for _, q := range qs {
				g.Machines = append(g.Machines, scenarios.MachineSpec{Kind: scenarios.Mesh, P: p, Q: q})
			}
		}
	case strings.HasPrefix(spec, "fattree"):
		ptok, rest, err := cutExtent(spec[len("fattree"):])
		if err != nil {
			return nil, fmt.Errorf("compiled: bad fattree grid %q: %w", s, err)
		}
		if rest != "" {
			return nil, fmt.Errorf("compiled: trailing %q in grid %q", rest, s)
		}
		ps, err := expandInts(ptok)
		if err != nil {
			return nil, fmt.Errorf("compiled: bad fattree extent %q: %w", ptok, err)
		}
		for _, p := range ps {
			g.Machines = append(g.Machines, scenarios.MachineSpec{Kind: scenarios.FatTree, P: p})
		}
	default:
		return nil, fmt.Errorf(`compiled: bad grid %q (want "mesh..." or "fattree...")`, s)
	}
	if g.Points() > maxGridPoints {
		return nil, fmt.Errorf("compiled: grid %q expands to %d points (max %d)", s, g.Points(), maxGridPoints)
	}
	for _, ms := range g.Machines {
		nodes := ms.P
		if ms.Kind == scenarios.Mesh {
			nodes = ms.P * ms.Q
		}
		if nodes > maxMachineNodes {
			return nil, fmt.Errorf("compiled: machine %s in grid %q has %d nodes (max %d)", ms, s, nodes, maxMachineNodes)
		}
	}
	return g, nil
}

// cutExtent splits one machine extent — a {…} group or a bare run of
// digits — off the front of s.
func cutExtent(s string) (tok, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("missing extent")
	}
	if s[0] == '{' {
		i := strings.IndexByte(s, '}')
		if i < 0 {
			return "", "", fmt.Errorf("unclosed brace")
		}
		return s[1:i], s[i+1:], nil
	}
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("missing extent")
	}
	return s[:i], s[i:], nil
}

// expandInts expands one extent token: "a..b" doubling, "a,b,c"
// list, or a single value. All values must be positive.
func expandInts(tok string) ([]int, error) {
	var out []int
	add := func(v int64) { out = append(out, int(v)) }
	if err := expandToken(tok, parseInt, add); err != nil {
		return nil, err
	}
	return out, nil
}

// expandSizes is expandInts over byte sizes with k/M suffixes.
func expandSizes(tok string) ([]int64, error) {
	var out []int64
	if err := expandToken(tok, parseSize, func(v int64) { out = append(out, v) }); err != nil {
		return nil, err
	}
	return out, nil
}

// expandToken drives the shared range grammar over a value parser.
func expandToken(tok string, parse func(string) (int64, error), add func(int64)) error {
	if a, b, ok := strings.Cut(tok, ".."); ok {
		lo, err := parse(a)
		if err != nil {
			return err
		}
		hi, err := parse(b)
		if err != nil {
			return err
		}
		if lo > hi {
			return fmt.Errorf("empty range %s..%s", a, b)
		}
		for v := lo; v <= hi; v *= 2 {
			add(v)
		}
		return nil
	}
	for _, part := range strings.Split(tok, ",") {
		v, err := parse(part)
		if err != nil {
			return err
		}
		add(v)
	}
	return nil
}

func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// parseSize parses a byte size with an optional k (KiB) or M (MiB)
// suffix.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
