package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/api"
	"repro/internal/compiled"
)

// handleLattice serves POST /v1/lattice: one nest swept over a
// capacity-planning grid. The nest's optimization is resolved through
// the compiled-plan tier (memory → compiled store tier → one
// structural compile), then every grid point is priced by template
// evaluation against the shared session pricer — the sweep never
// re-optimizes per point. Rows stream as NDJSON in grid order
// (machines as declared, payloads ascending), with switch points —
// payload thresholds where the selected collective schedule changes —
// flagged in place, and a summary line terminates the stream.
func (s *Server) handleLattice(w http.ResponseWriter, r *http.Request) {
	s.lattices.Add(1)
	var req api.LatticeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	if req.Grid == "" {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, `"grid" is required`))
		return
	}
	grid, err := compiled.ParseGrid(req.Grid)
	if err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "%v", err))
		return
	}
	sc, aerr := scenarioFromRequest(&api.OptimizeRequest{
		Example:         req.Example,
		Nest:            req.Nest,
		M:               req.M,
		N:               req.N,
		NoMacro:         req.NoMacro,
		NoDecomposition: req.NoDecomposition,
	})
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	art := s.session.CompiledArtifact(r.Context(), sc)
	if art.Err != "" {
		s.writeError(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeUnprocessable, "optimization failed: %s", art.Err))
		return
	}
	rows := grid.Sweep(art, s.session.Pricer(), sc.Dist, sc.N)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	switches := 0
	for _, row := range rows {
		if row.Switched {
			switches++
		}
		enc.Encode(api.LatticeRow{
			Machine:      row.Machine.String(),
			ElemBytes:    row.ElemBytes,
			Classes:      row.Point.Classes,
			Vectorizable: row.Point.Vectorizable,
			ModelTimeUs:  row.Point.ModelTime,
			Collectives:  row.Point.Collectives,
			Switched:     row.Switched,
			SwitchedFrom: row.SwitchedFrom,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(api.LatticeSummary{Summary: api.LatticeSummaryBody{
		Name:     sc.Name,
		Grid:     req.Grid,
		Points:   len(rows),
		Machines: len(grid.Machines),
		Switches: switches,
	}})
}
