package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/affine"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenarios"
	"repro/internal/store"
)

// direct computes the reference answer for an example nest straight
// through core.Optimize, the way the acceptance criterion phrases it.
func direct(t *testing.T, prog *affine.Program, m int) api.OptimizeResponse {
	t.Helper()
	res, err := core.Optimize(prog, m, core.Options{})
	if err != nil {
		t.Fatalf("core.Optimize(%s): %v", prog.Name, err)
	}
	out := api.OptimizeResponse{Name: prog.Name}
	for _, pl := range res.Plans {
		switch pl.Class {
		case core.Local:
			out.Local++
		case core.MacroComm:
			out.Macro++
		case core.Decomposed:
			out.Decomposed++
		case core.General:
			out.General++
		}
		if pl.Vectorizable {
			out.Vectorizable++
		}
	}
	return out
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestConcurrentOptimize is the acceptance scenario: ≥ 32 concurrent
// /v1/optimize requests (under -race in CI), each response identical
// to a direct core.Optimize call.
func TestConcurrentOptimize(t *testing.T) {
	examples := affine.AllExamples()
	// Reference answers first: core.Optimize runs outside the session
	// (sessions hold the process-global engine lock until Close).
	want := make(map[string]api.OptimizeResponse, len(examples))
	for _, p := range examples {
		want[p.Name] = direct(t, p, 2)
	}

	srv := New(Options{Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := examples[c%len(examples)]
			data, _ := json.Marshal(api.OptimizeRequest{Example: p.Name})
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", p.Name, resp.StatusCode)
				return
			}
			if v := resp.Header.Get(api.VersionHeader); v != api.Version {
				errs <- fmt.Errorf("%s: version header %q", p.Name, v)
				return
			}
			var got api.OptimizeResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			w := want[p.Name]
			if got.Local != w.Local || got.Macro != w.Macro ||
				got.Decomposed != w.Decomposed || got.General != w.General ||
				got.Vectorizable != w.Vectorizable {
				errs <- fmt.Errorf("%s: server %+v ≠ direct %+v", p.Name, got, w)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.session.CacheStats()
	if st.PlanHits == 0 {
		t.Error("32 clients over few nests produced no shared plan-cache hits")
	}
}

// TestOptimizeNestSource: a nest given as nestlang source optimizes
// and costs like the equivalent scenario.
func TestOptimizeNestSource(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const nest = `
nest t {
  array a[2]
  array b[2]
  loop (i, j) {
    S: a[i, j] = f(b[j, i])
  }
}
`
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Nest: nest, Machine: "mesh4x4", N: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got api.OptimizeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Machine != "mesh4x4" {
		t.Errorf("machine = %q", got.Machine)
	}
	if got.Local+got.Macro+got.Decomposed+got.General == 0 {
		t.Error("no communications classified")
	}
}

// TestOptimizeErrors: bad inputs are 4xx with a typed JSON error, and
// never kill the shared session.
func TestOptimizeErrors(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		req  api.OptimizeRequest
		code int
		kind string
	}{
		"no program":   {api.OptimizeRequest{}, http.StatusBadRequest, api.CodeBadRequest},
		"both":         {api.OptimizeRequest{Example: "matmul", Nest: "x"}, http.StatusBadRequest, api.CodeBadRequest},
		"unknown":      {api.OptimizeRequest{Example: "nope"}, http.StatusBadRequest, api.CodeBadRequest},
		"bad nest":     {api.OptimizeRequest{Nest: "not a nest"}, http.StatusBadRequest, api.CodeBadRequest},
		"bad machine":  {api.OptimizeRequest{Example: "matmul", Machine: "torus9"}, http.StatusBadRequest, api.CodeBadRequest},
		"bad optimize": {api.OptimizeRequest{Example: "matmul", M: -1}, http.StatusUnprocessableEntity, api.CodeUnprocessable},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.code, body)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Errorf("%s: no typed error in %s", name, body)
			continue
		}
		if env.Error.Code != tc.kind || env.Error.Status != tc.code || env.Error.Message == "" {
			t.Errorf("%s: error %+v, want code %s status %d", name, env.Error, tc.kind, tc.code)
		}
	}

	// The session still works after the failures.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session broken after bad requests: status %d", resp.StatusCode)
	}
}

// TestBatchStream: /v1/batch streams one NDJSON line per scenario, in
// suite order, with a trailing summary matching a direct engine run.
func TestBatchStream(t *testing.T) {
	cfg := scenarios.Config{Seed: 3, Random: 2, NoExamples: true}
	suite := scenarios.Generate(cfg)
	ref := engine.Run(suite, engine.Options{}) // before the server session opens

	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	data, _ := json.Marshal(api.BatchSpec{Seed: 3, Random: 2, NoExamples: true})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines, sum := decodeStream(t, resp)
	if len(lines) != len(ref.Results) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(ref.Results))
	}
	for i, l := range lines {
		r := ref.Results[i]
		if l.Name != r.Name || l.Classes != r.Classes || l.ModelTimeUs != r.ModelTime ||
			l.Vectorizable != r.Vectorizable || l.Err != r.Err {
			t.Errorf("line %d: %+v ≠ engine %+v", i, l, r)
		}
	}
	if sum.Summary.Scenarios != len(ref.Results) || sum.Summary.ClassTotals != ref.ClassTotals ||
		sum.Summary.TotalModelTime != ref.TotalModelTime || sum.Summary.Errors != ref.Errors {
		t.Errorf("summary %+v ≠ engine aggregates", sum.Summary)
	}
}

// decodeStream splits an NDJSON batch response into lines + summary.
func decodeStream(t *testing.T, resp *http.Response) ([]api.BatchLine, api.BatchSummary) {
	t.Helper()
	var lines []api.BatchLine
	var sum api.BatchSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if strings.Contains(string(line), `"summary"`) {
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var l api.BatchLine
		if err := json.Unmarshal(line, &l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, sum
}

// TestBatchLimits: oversized suite specs are rejected on both the v1
// and the deprecated path.
func TestBatchLimits(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const huge = 1 << 62 // random+deep would overflow int
	for name, req := range map[string]api.BatchSpec{
		"oversized": {Random: 100000},
		"negative":  {Random: -1},
		"overflow":  {Random: huge, Deep: huge},
	} {
		for _, path := range []string{"/v1/batch", "/batch"} {
			resp, _ := postJSON(t, ts.Client(), ts.URL+path, req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", name, path, resp.StatusCode)
			}
		}
	}
}

// TestLegacyShims: the unversioned endpoints still serve the old
// routes through the v1 handlers and announce their deprecation.
func TestLegacyShims(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /optimize: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /optimize missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/optimize") {
		t.Errorf("legacy /optimize Link = %q", link)
	}
	var legacy api.OptimizeResponse
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	resp2, body2 := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/v1/optimize: status %d", resp2.StatusCode)
	}
	var v1 api.OptimizeResponse
	if err := json.Unmarshal(body2, &v1); err != nil {
		t.Fatal(err)
	}
	// Phase timings are run-dependent wall clock; drop them before the
	// value compare.
	legacy.Phases, v1.Phases = nil, nil
	if legacy != v1 {
		t.Errorf("legacy response %+v ≠ v1 response %+v", legacy, v1)
	}

	resp3, _ := postJSON(t, ts.Client(), ts.URL+"/batch", api.BatchSpec{Random: 1, NoExamples: true})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /batch: status %d, Deprecation %q", resp3.StatusCode, resp3.Header.Get("Deprecation"))
	}

	resp4, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK || resp4.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /stats: status %d, Deprecation %q", resp4.StatusCode, resp4.Header.Get("Deprecation"))
	}
	// The legacy body keeps its pre-/v1 shape: CamelCase cache keys.
	statsBody, err := io.ReadAll(resp4.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(statsBody), `"PlanMisses"`) || strings.Contains(string(statsBody), `"plan_misses"`) {
		t.Errorf("legacy /stats body changed shape: %s", statsBody)
	}
}

// TestStats: /v1/stats reports the shared cache, the store, request
// counters and the suite cache.
func TestStats(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: st})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	// Two identical batch specs: the second must hit the suite cache.
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", api.BatchSpec{Random: 1, NoExamples: true})
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Version != api.Version {
		t.Errorf("api_version = %q", got.Version)
	}
	if got.Requests.Optimize != 2 {
		t.Errorf("optimize requests = %d, want 2", got.Requests.Optimize)
	}
	if got.Requests.Batch != 2 {
		t.Errorf("batch requests = %d, want 2", got.Requests.Batch)
	}
	if got.Cache.PlanMisses == 0 {
		t.Error("cache stats empty after requests")
	}
	if got.Cache.PlanHits == 0 {
		t.Error("second identical request missed the shared plan cache")
	}
	if got.SuiteCache.Hits == 0 || got.SuiteCache.Misses == 0 {
		t.Errorf("suite cache = %+v, want ≥1 hit and ≥1 miss", got.SuiteCache)
	}
	if got.Store == nil || got.Store.PlanPuts == 0 {
		t.Errorf("store stats missing or empty: %+v", got.Store)
	}
	if got.Workers <= 0 {
		t.Errorf("workers = %d", got.Workers)
	}
}
