package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenarios"
	"repro/internal/store"
)

// direct computes the reference answer for an example nest straight
// through core.Optimize, the way the acceptance criterion phrases it.
func direct(t *testing.T, prog *affine.Program, m int) OptimizeResponse {
	t.Helper()
	res, err := core.Optimize(prog, m, core.Options{})
	if err != nil {
		t.Fatalf("core.Optimize(%s): %v", prog.Name, err)
	}
	out := OptimizeResponse{Name: prog.Name}
	for _, pl := range res.Plans {
		switch pl.Class {
		case core.Local:
			out.Local++
		case core.MacroComm:
			out.Macro++
		case core.Decomposed:
			out.Decomposed++
		case core.General:
			out.General++
		}
		if pl.Vectorizable {
			out.Vectorizable++
		}
	}
	return out
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestConcurrentOptimize is the acceptance scenario: ≥ 32 concurrent
// /optimize requests (under -race in CI), each response identical to
// a direct core.Optimize call.
func TestConcurrentOptimize(t *testing.T) {
	examples := affine.AllExamples()
	// Reference answers first: core.Optimize runs outside the session
	// (sessions hold the process-global engine lock until Close).
	want := make(map[string]OptimizeResponse, len(examples))
	for _, p := range examples {
		want[p.Name] = direct(t, p, 2)
	}

	srv := New(Options{Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := examples[c%len(examples)]
			data, _ := json.Marshal(OptimizeRequest{Example: p.Name})
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", p.Name, resp.StatusCode)
				return
			}
			var got OptimizeResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			w := want[p.Name]
			if got.Local != w.Local || got.Macro != w.Macro ||
				got.Decomposed != w.Decomposed || got.General != w.General ||
				got.Vectorizable != w.Vectorizable {
				errs <- fmt.Errorf("%s: server %+v ≠ direct %+v", p.Name, got, w)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.session.CacheStats()
	if st.PlanHits == 0 {
		t.Error("32 clients over few nests produced no shared plan-cache hits")
	}
}

// TestOptimizeNestSource: a nest given as nestlang source optimizes
// and costs like the equivalent scenario.
func TestOptimizeNestSource(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const nest = `
nest t {
  array a[2]
  array b[2]
  loop (i, j) {
    S: a[i, j] = f(b[j, i])
  }
}
`
	resp, body := postJSON(t, ts.Client(), ts.URL+"/optimize", OptimizeRequest{Nest: nest, Machine: "mesh4x4", N: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got OptimizeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Machine != "mesh4x4" {
		t.Errorf("machine = %q", got.Machine)
	}
	if got.Local+got.Macro+got.Decomposed+got.General == 0 {
		t.Error("no communications classified")
	}
}

// TestOptimizeErrors: bad inputs are 4xx with a JSON error, and never
// kill the shared session.
func TestOptimizeErrors(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		req  OptimizeRequest
		code int
	}{
		"no program":   {OptimizeRequest{}, http.StatusBadRequest},
		"both":         {OptimizeRequest{Example: "matmul", Nest: "x"}, http.StatusBadRequest},
		"unknown":      {OptimizeRequest{Example: "nope"}, http.StatusBadRequest},
		"bad nest":     {OptimizeRequest{Nest: "not a nest"}, http.StatusBadRequest},
		"bad machine":  {OptimizeRequest{Example: "matmul", Machine: "torus9"}, http.StatusBadRequest},
		"bad optimize": {OptimizeRequest{Example: "matmul", M: -1}, http.StatusUnprocessableEntity},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/optimize", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: no JSON error in %s", name, body)
		}
	}

	// The session still works after the failures.
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/optimize", OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session broken after bad requests: status %d", resp.StatusCode)
	}
}

// TestBatchStream: /batch streams one NDJSON line per scenario, in
// suite order, with a trailing summary matching a direct engine run.
func TestBatchStream(t *testing.T) {
	cfg := scenarios.Config{Seed: 3, Random: 2, NoExamples: true}
	suite := scenarios.Generate(cfg)
	ref := engine.Run(suite, engine.Options{}) // before the server session opens

	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	data, _ := json.Marshal(BatchRequest{Seed: 3, Random: 2, NoExamples: true})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []BatchLine
	var sum BatchSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if strings.Contains(string(line), `"summary"`) {
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var l BatchLine
		if err := json.Unmarshal(line, &l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(ref.Results) {
		t.Fatalf("streamed %d lines, want %d", len(lines), len(ref.Results))
	}
	for i, l := range lines {
		r := ref.Results[i]
		if l.Name != r.Name || l.Classes != r.Classes || l.ModelTimeUs != r.ModelTime ||
			l.Vectorizable != r.Vectorizable || l.Err != r.Err {
			t.Errorf("line %d: %+v ≠ engine %+v", i, l, r)
		}
	}
	if sum.Summary.Scenarios != len(ref.Results) || sum.Summary.ClassTotals != ref.ClassTotals ||
		sum.Summary.TotalModelTime != ref.TotalModelTime || sum.Summary.Errors != ref.Errors {
		t.Errorf("summary %+v ≠ engine aggregates", sum.Summary)
	}
}

// TestBatchLimits: oversized suite specs are rejected.
func TestBatchLimits(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const huge = 1 << 62 // random+deep would overflow int
	for name, req := range map[string]BatchRequest{
		"oversized": {Random: 100000},
		"negative":  {Random: -1},
		"overflow":  {Random: huge, Deep: huge},
	} {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/batch", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestStats: /stats reports the shared cache, the store and request
// counters.
func TestStats(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: st})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/optimize", OptimizeRequest{Example: "matmul"})
	postJSON(t, ts.Client(), ts.URL+"/optimize", OptimizeRequest{Example: "matmul"})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Requests.Optimize != 2 {
		t.Errorf("optimize requests = %d, want 2", got.Requests.Optimize)
	}
	if got.Cache.PlanMisses == 0 {
		t.Error("cache stats empty after requests")
	}
	if got.Cache.PlanHits == 0 {
		t.Error("second identical request missed the shared plan cache")
	}
	if got.Store == nil || got.Store.PlanPuts == 0 {
		t.Errorf("store stats missing or empty: %+v", got.Store)
	}
	if got.Workers <= 0 {
		t.Errorf("workers = %d", got.Workers)
	}
}
