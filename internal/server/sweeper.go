package server

import (
	"context"
	"log/slog"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

// SweepOptions configure the daemon's background sweeper: a ticker
// that applies the job retention policy and the store GC without a
// client asking. Before the sweeper, retention was pull-driven —
// GET /v1/jobs?ttl&keep pruned and resopt -gc swept, so an idle
// daemon accumulated finished jobs and cold plans forever.
type SweepOptions struct {
	// Interval is the tick period; ≤ 0 disables the sweeper.
	Interval time.Duration
	// JobTTL retires finished jobs whose completion is older than
	// this (0: no age bound). Queued and running jobs are never
	// touched.
	JobTTL time.Duration
	// JobKeep retains at most this many finished jobs, newest first
	// (0: no count bound).
	JobKeep int
	// GCAge removes plan/kernel files unused for longer than this
	// from the store (0: no age criterion).
	GCAge time.Duration
	// GCKeep bounds the surviving file count per store tier
	// (0: no count criterion).
	GCKeep int
}

// enabled reports whether the options turn the sweeper on at all.
func (o SweepOptions) enabled() bool { return o.Interval > 0 }

// sweepsJobs / sweepsStore report which halves of the sweep have
// criteria configured.
func (o SweepOptions) sweepsJobs() bool  { return o.JobTTL > 0 || o.JobKeep > 0 }
func (o SweepOptions) sweepsStore() bool { return o.GCAge > 0 || o.GCKeep > 0 }

// StartSweeper launches the background sweeper goroutine. It ticks
// every opts.Interval until ctx is cancelled or the server is Closed,
// whichever comes first; Close waits for the goroutine to exit, so a
// closed server has no sweep in flight. Work is reported through the
// sweeper metrics (resoptd_sweeper_*) and the store's GC counters,
// and summarized in /v1/stats. Calling it with a disabled Interval,
// or more than once, is a no-op beyond the first enabled call.
func (s *Server) StartSweeper(ctx context.Context, opts SweepOptions) {
	if !opts.enabled() || !s.sweepOpts.CompareAndSwap(nil, &opts) {
		return
	}
	s.sweepWG.Add(1)
	go func() {
		defer s.sweepWG.Done()
		ticker := time.NewTicker(opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.sweepOnce(opts, time.Now().UTC())
			case <-ctx.Done():
				return
			case <-s.sweepStop:
				return
			}
		}
	}()
}

// sweepOnce is one tick: job retention, then store GC. Ticks log at
// debug level — they are periodic background noise unless someone is
// chasing retention behavior.
func (s *Server) sweepOnce(opts SweepOptions, now time.Time) {
	var pruned, removed int
	if opts.sweepsJobs() {
		pruned = s.jobs.prune(opts.JobTTL, opts.JobKeep, now)
		s.obs.sweepJobs.Add(uint64(pruned))
	}
	if s.store != nil && opts.sweepsStore() {
		// GC failures are already recorded as store warnings; the
		// sweeper just moves on to the next tick.
		if res, err := s.store.GC(store.GCOptions{MaxAge: opts.GCAge, MaxPlans: opts.GCKeep}); err == nil {
			removed = res.Removed()
		}
	}
	s.obs.sweepRuns.Inc()
	s.logger.Debug("sweep tick",
		slog.Int("jobs_pruned", pruned),
		slog.Int("files_removed", removed))
}

// sweeperStats summarizes the sweeper for /v1/stats (nil when the
// sweeper was never started).
func (s *Server) sweeperStats() *api.SweeperStats {
	opts := s.sweepOpts.Load()
	if opts == nil {
		return nil
	}
	st := &api.SweeperStats{
		IntervalSeconds: opts.Interval.Seconds(),
		Runs:            s.obs.sweepRuns.Value(),
		JobsPruned:      s.obs.sweepJobs.Value(),
	}
	if s.store != nil {
		gc := s.store.GCTotals()
		st.GCSweeps = gc.Sweeps
		st.GCRemoved = gc.Removed()
		st.GCBytesFreed = gc.BytesFreed
	}
	return st
}
