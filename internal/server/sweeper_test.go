package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

// scrapeMetrics fetches the Prometheus exposition from an ops handler
// and returns the body.
func scrapeMetrics(t *testing.T, ops *httptest.Server) string {
	t.Helper()
	resp, err := ops.Client().Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of an exact series line ("name" or
// `name{label="x"}`) from an exposition body, or -1 if absent.
func metricValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == series {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestSweeperPrunesFinishedJobs is the acceptance criterion: a server
// sweeping with a tiny job TTL retires a finished job from memory and
// from the persisted jobs/ tier without any client request, while a
// queued job survives, and the sweeper metrics record the work.
func TestSweeperPrunesFinishedJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Store: st})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	// One finished job, persisted to the store.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", api.BatchSpec{Seed: 7, Random: 1, NoExamples: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	waitJobFinished(t, ts, job.ID)
	if ids, err := st.ListJobs(); err != nil || len(ids) != 1 {
		t.Fatalf("want 1 persisted job before sweeping, got %v (err %v)", ids, err)
	}

	// One queued job that never runs: the sweeper must not touch it.
	queued, _ := srv.jobs.create(api.BatchSpec{Random: 1, NoExamples: true}, 1)

	// Sweep aggressively: every tick, any finished job is expired.
	// This is the test-speed equivalent of
	// `resoptd -sweep-interval 50ms -job-ttl 1ns`.
	srv.StartSweeper(context.Background(), SweepOptions{Interval: 10 * time.Millisecond, JobTTL: time.Nanosecond})

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, inMem := srv.jobs.get(job.ID)
		ids, err := st.ListJobs()
		if err != nil {
			t.Fatal(err)
		}
		if !inMem && len(ids) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never pruned job %s (in memory: %v, on disk: %v)", job.ID, inMem, ids)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := srv.jobs.get(queued.snapshot().ID); !ok {
		t.Fatalf("sweeper pruned the queued job %s", queued.snapshot().ID)
	}

	// The work is visible in the metrics and in /v1/stats.
	m := scrapeMetrics(t, ops)
	if v := metricValue(m, "resoptd_sweeper_runs_total"); v < 1 {
		t.Errorf("resoptd_sweeper_runs_total = %v, want >= 1", v)
	}
	if v := metricValue(m, "resoptd_sweeper_jobs_pruned_total"); v < 1 {
		t.Errorf("resoptd_sweeper_jobs_pruned_total = %v, want >= 1", v)
	}
	_, body = get(t, ts, "/v1/stats")
	var stats api.StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sweeper == nil || stats.Sweeper.Runs < 1 || stats.Sweeper.JobsPruned < 1 {
		t.Errorf("stats.Sweeper = %+v, want runs and jobs_pruned >= 1", stats.Sweeper)
	}
}

// TestSweeperStoreGC: with an age criterion the sweeper GCs cold plan
// files from the store on its own, and the GC counters move.
func TestSweeperStoreGC(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Store: st})

	// Populate the plans/ tier.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, body)
	}
	if n := st.TierSizes()["plans"].Files; n == 0 {
		t.Fatal("no plan files persisted before sweeping")
	}

	srv.StartSweeper(context.Background(), SweepOptions{Interval: 10 * time.Millisecond, GCAge: time.Nanosecond})
	deadline := time.Now().Add(10 * time.Second)
	for st.TierSizes()["plans"].Files > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never GCed the plans tier: %+v", st.TierSizes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	gc := st.GCTotals()
	if gc.Sweeps == 0 || gc.Removed() == 0 {
		t.Errorf("GC totals did not move: %+v", gc)
	}
}

// TestSweeperStopsOnClose: Close stops the sweeper even when the
// caller's context is still live, and waits for it — no tick runs
// after Close returns.
func TestSweeperStopsOnClose(t *testing.T) {
	srv := New(Options{Workers: 1})
	srv.StartSweeper(context.Background(), SweepOptions{Interval: 5 * time.Millisecond, JobKeep: 1})
	waitSweeps(t, srv, 1)
	srv.Close() // hangs if the goroutine ignores sweepStop
	runs := srv.obs.sweepRuns.Value()
	time.Sleep(50 * time.Millisecond)
	if after := srv.obs.sweepRuns.Value(); after != runs {
		t.Fatalf("sweeper still ticking after Close: %d -> %d runs", runs, after)
	}
}

// TestSweeperStopsOnCancel: cancelling the start context stops the
// ticker.
func TestSweeperStopsOnCancel(t *testing.T) {
	srv := New(Options{Workers: 1})
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	srv.StartSweeper(ctx, SweepOptions{Interval: 5 * time.Millisecond, JobKeep: 1})
	waitSweeps(t, srv, 1)
	cancel()
	time.Sleep(25 * time.Millisecond) // let a cancelled tick drain
	runs := srv.obs.sweepRuns.Value()
	time.Sleep(50 * time.Millisecond)
	if after := srv.obs.sweepRuns.Value(); after != runs {
		t.Fatalf("sweeper still ticking after cancel: %d -> %d runs", runs, after)
	}
}

// TestStartSweeperNoops: a disabled interval never starts the
// goroutine, and a second StartSweeper keeps the first configuration.
func TestStartSweeperNoops(t *testing.T) {
	srv := New(Options{Workers: 1})
	t.Cleanup(srv.Close)
	srv.StartSweeper(context.Background(), SweepOptions{Interval: 0, JobTTL: time.Hour})
	if srv.sweeperStats() != nil {
		t.Fatal("disabled sweeper reported stats")
	}
	first := SweepOptions{Interval: 5 * time.Millisecond, JobKeep: 3}
	srv.StartSweeper(context.Background(), first)
	srv.StartSweeper(context.Background(), SweepOptions{Interval: time.Hour, JobTTL: time.Hour})
	if got := srv.sweepOpts.Load(); *got != first {
		t.Fatalf("second StartSweeper replaced options: %+v", got)
	}
	waitSweeps(t, srv, 1)
}

// waitSweeps polls until the sweeper has completed at least n ticks.
func waitSweeps(t *testing.T, srv *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.obs.sweepRuns.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never reached %d runs", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
