package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/affine"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/store"
)

// clusterNode is one member of an in-process test cluster.
type clusterNode struct {
	id  string
	srv *Server
	ts  *httptest.Server
	st  *store.Store
}

// startClusterPair boots a real 2-node cluster in-process: two
// servers with their own stores, each behind its own listener,
// configured as members nodeA and nodeB of the same ring. The
// background prober is off (ClusterProbeInterval < 0) so health
// state moves only on the traffic the test sends — deterministic.
func startClusterPair(t *testing.T, tweak func(*Options)) (a, b *clusterNode) {
	t.Helper()
	// The membership needs both URLs before either Server exists, so
	// each listener starts on a handler indirection filled in below.
	var hA, hB atomic.Value
	lazy := func(h *atomic.Value) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		})
	}
	tsA := httptest.NewServer(lazy(&hA))
	tsB := httptest.NewServer(lazy(&hB))
	nodes := map[string]string{"nodeA": tsA.URL, "nodeB": tsB.URL}

	mk := func(self string, ts *httptest.Server, h *atomic.Value) *clusterNode {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{Self: self, Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Store: st, Cluster: cl, ClusterProbeInterval: -1}
		if tweak != nil {
			tweak(&opts)
		}
		srv := New(opts)
		h.Store(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		return &clusterNode{id: self, srv: srv, ts: ts, st: st}
	}
	return mk("nodeA", tsA, &hA), mk("nodeB", tsB, &hB)
}

// requestOwnedBy finds an example nest whose canonical plan key the
// ring assigns to the wanted node.
func requestOwnedBy(t *testing.T, n *clusterNode, owner string) api.OptimizeRequest {
	t.Helper()
	for _, p := range affine.AllExamples() {
		for _, machine := range []string{"", "mesh4x4", "hypercube6"} {
			req := api.OptimizeRequest{Example: p.Name, Machine: machine}
			sc, aerr := scenarioFromRequest(&req)
			if aerr != nil {
				continue
			}
			if n.srv.clusterRt.cl.Owner(sc.PlanKey()) == owner {
				return req
			}
		}
	}
	t.Fatalf("no example owned by %s", owner)
	return api.OptimizeRequest{}
}

func optimizeVia(t *testing.T, n *clusterNode, req api.OptimizeRequest, header string) (*http.Response, *api.OptimizeResponse, []byte) {
	t.Helper()
	data, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, n.ts.URL+"/v1/optimize", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if header != "" {
		hr.Header.Set(api.ForwardHeader, header)
	}
	resp, err := n.ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var out api.OptimizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decoding optimize response: %v (%s)", err, buf.Bytes())
		}
	}
	return resp, &out, buf.Bytes()
}

func nodeStatsOf(t *testing.T, n *clusterNode) *api.NodeStats {
	t.Helper()
	resp, body := get(t, n.ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Node == nil {
		t.Fatal("clustered daemon reports no node stats")
	}
	return st.Node
}

// TestClusterForwarding is the routing acceptance test: a key owned
// by node B requested via node A is proxied to B — the response says
// which node answered, A's trace tree carries the cluster.forward
// child span, and both nodes' counters and metrics move.
func TestClusterForwarding(t *testing.T) {
	a, b := startClusterPair(t, nil)
	req := requestOwnedBy(t, a, "nodeB")

	resp, out, body := optimizeVia(t, a, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize via A: status %d: %s", resp.StatusCode, body)
	}
	if out.Node != "nodeB" {
		t.Errorf("answering node = %q, want nodeB", out.Node)
	}

	// The hop shows up as a child span in A's trace tree.
	found := false
	for _, td := range a.srv.tracer.List(0, 10) {
		for _, sp := range td.Spans {
			if sp.Name == "cluster.forward" {
				found = true
				if sp.Parent == "" {
					t.Error("cluster.forward is not a child span")
				}
				if sp.Attrs["peer"] != "nodeB" {
					t.Errorf("forward span peer = %q, want nodeB", sp.Attrs["peer"])
				}
			}
		}
	}
	if !found {
		t.Error("no cluster.forward span recorded on node A")
	}

	// Node sections on both sides.
	nsA, nsB := nodeStatsOf(t, a), nodeStatsOf(t, b)
	if nsA.ID != "nodeA" || nsA.RingSize != 2 || nsA.Replicas != 2 || len(nsA.Peers) != 1 {
		t.Errorf("node A stats %+v", nsA)
	}
	if nsA.ForwardsOut != 1 {
		t.Errorf("A forwards_out = %d, want 1", nsA.ForwardsOut)
	}
	if nsB.ForwardsIn != 1 {
		t.Errorf("B forwards_in = %d, want 1", nsB.ForwardsIn)
	}
	if !nsA.Peers[0].Up || nsA.Peers[0].Node != "nodeB" {
		t.Errorf("A's view of B: %+v", nsA.Peers[0])
	}

	// A key A owns itself is answered locally.
	local := requestOwnedBy(t, a, "nodeA")
	if _, out, _ := optimizeVia(t, a, local, ""); out.Node != "nodeA" {
		t.Errorf("locally owned key answered by %q", out.Node)
	}
	if ns := nodeStatsOf(t, a); ns.ForwardsOut != 1 {
		t.Errorf("local key was forwarded (forwards_out = %d)", ns.ForwardsOut)
	}

	// The metric family moved on both nodes (what the CI smoke greps).
	var mbuf bytes.Buffer
	a.srv.Registry().WriteText(&mbuf)
	if !strings.Contains(mbuf.String(), `resopt_cluster_forwards_total{peer="nodeB",direction="out"} 1`) {
		t.Error("node A /metrics does not count the forward out")
	}
	mbuf.Reset()
	b.srv.Registry().WriteText(&mbuf)
	if !strings.Contains(mbuf.String(), `resopt_cluster_forwards_total{peer="nodeA",direction="in"} 1`) {
		t.Error("node B /metrics does not count the forward in")
	}
}

// TestClusterSingleFlight is the cross-replica single-flight
// acceptance test: one cold key, concurrent requests against both
// nodes, exactly one computation cluster-wide — the non-owner
// forwards everything and computes nothing, the owner's single-flight
// collapses the rest, and the finished plan replicates back.
func TestClusterSingleFlight(t *testing.T) {
	a, b := startClusterPair(t, nil)
	req := requestOwnedBy(t, a, "nodeB")

	const perNode = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*perNode)
	for i := 0; i < perNode; i++ {
		for _, n := range []*clusterNode{a, b} {
			wg.Add(1)
			go func(n *clusterNode) {
				defer wg.Done()
				resp, out, body := optimizeVia(t, n, req, "")
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("via %s: status %d: %s", n.id, resp.StatusCode, body)
					return
				}
				if out.Node != "nodeB" {
					errs <- fmt.Errorf("via %s: answered by %q, want nodeB", n.id, out.Node)
				}
			}(n)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The non-owner never touched its engine.
	if got := a.srv.session.PhaseTotals().Scenarios; got != 0 {
		t.Errorf("node A ran %d scenarios, want 0 (all forwarded)", got)
	}
	// The owner went cold exactly once: one disk miss, one stored plan.
	if got := b.srv.session.CacheStats().DiskMisses; got != 1 {
		t.Errorf("node B disk misses = %d, want 1 (single compute)", got)
	}
	if got := b.st.Stats().PlanPuts; got != 1 {
		t.Errorf("node B plan puts = %d, want 1", got)
	}

	// The finished plan replicates to the other ring successor.
	sc, _ := scenarioFromRequest(&req)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := a.st.GetPlan(sc.PlanKey()); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plan never replicated to node A's store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ns := nodeStatsOf(t, b); ns.PlansReplicated == 0 {
		t.Error("node B reports no replicated plans")
	}
}

// TestClusterPeerPlanTier: a node going cold on a key consults the
// replica peers' stores before computing (engine.RemotePlanTier), and
// serves the peer's plan with identical results.
func TestClusterPeerPlanTier(t *testing.T) {
	a, b := startClusterPair(t, nil)
	req := requestOwnedBy(t, a, "nodeA")

	// Let A compute the key with B marked down, so the plan does not
	// replicate and B's disk stays cold.
	a.srv.clusterRt.cl.Health().ReportFailure("nodeB", fmt.Errorf("test: holding replication back"))
	_, outA, _ := optimizeVia(t, a, req, "")
	if outA.Node != "nodeA" {
		t.Fatalf("owner A did not answer (node %q)", outA.Node)
	}
	sc, _ := scenarioFromRequest(&req)
	if _, _, ok := b.st.GetPlan(sc.PlanKey()); ok {
		t.Fatal("plan replicated to B despite down mark; test premise broken")
	}

	// B computes the same key "cold" (the forward header pins it
	// local); the peer tier finds A's plan instead of recomputing.
	resp, outB, body := optimizeVia(t, b, req, "nodeA")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize via B: status %d: %s", resp.StatusCode, body)
	}
	if outB.Node != "nodeB" {
		t.Errorf("loop-guarded request answered by %q, want nodeB", outB.Node)
	}
	if ns := nodeStatsOf(t, b); ns.PeerPlanHits != 1 {
		t.Errorf("B peer plan hits = %d, want 1", ns.PeerPlanHits)
	}
	// Same plans, same numbers — wherever the plan came from.
	outA.Node, outB.Node = "", ""
	outA.Phases, outB.Phases = nil, nil
	if !equalJSON(t, outA, outB) {
		t.Errorf("peer-served result differs:\n A: %+v\n B: %+v", outA, outB)
	}
	// Write-through: B's store now holds the plan for next time.
	if _, _, ok := b.st.GetPlan(sc.PlanKey()); !ok {
		t.Error("peer-fetched plan not written through to B's store")
	}
}

func equalJSON(t *testing.T, a, b any) bool {
	t.Helper()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return bytes.Equal(ja, jb)
}

// TestClusterLoopProtection: a request already carrying the forward
// header is answered locally no matter who owns the key — one hop,
// never two.
func TestClusterLoopProtection(t *testing.T) {
	a, _ := startClusterPair(t, nil)
	req := requestOwnedBy(t, a, "nodeB")
	_, out, _ := optimizeVia(t, a, req, "nodeB")
	if out.Node != "nodeA" {
		t.Errorf("forwarded request re-forwarded (answered by %q)", out.Node)
	}
	ns := nodeStatsOf(t, a)
	if ns.ForwardsOut != 0 || ns.ForwardsIn != 1 {
		t.Errorf("forwards out/in = %d/%d, want 0/1", ns.ForwardsOut, ns.ForwardsIn)
	}
}

// TestClusterOwnerDownFallback: when the key's owner is unreachable
// the receiving node computes locally instead of failing, marks the
// owner down, and skips the proxy on the next request.
func TestClusterOwnerDownFallback(t *testing.T) {
	a, b := startClusterPair(t, nil)
	req := requestOwnedBy(t, a, "nodeB")
	b.ts.Close() // nodeB vanishes mid-flight

	resp, out, body := optimizeVia(t, a, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback compute failed: status %d: %s", resp.StatusCode, body)
	}
	if out.Node != "nodeA" {
		t.Errorf("fallback answered by %q, want nodeA", out.Node)
	}
	ns := nodeStatsOf(t, a)
	if ns.ForwardFallbacks == 0 {
		t.Error("fallback not counted")
	}
	if len(ns.Peers) != 1 || ns.Peers[0].Up {
		t.Errorf("dead peer still reported up: %+v", ns.Peers)
	}
	// Next request skips the dead owner without a connection attempt.
	before := ns.ForwardFallbacks
	if _, out, _ := optimizeVia(t, a, req, ""); out.Node != "nodeA" {
		t.Errorf("second fallback answered by %q", out.Node)
	}
	if ns := nodeStatsOf(t, a); ns.ForwardFallbacks != before+1 {
		t.Errorf("down-peer fast path not taken (fallbacks %d → %d)", before, ns.ForwardFallbacks)
	}
}

// TestClusterSnapshotReplication: a batch recorded through node A
// lands byte-identically in node B's store at save time, and re-runs
// byte-identically from the non-owner.
func TestClusterSnapshotReplication(t *testing.T) {
	a, b := startClusterPair(t, nil)
	spec := api.BatchSpec{Seed: 5, Random: 2, NoExamples: true, SaveAs: "big-sweep"}
	orig, sum := batchNDJSON(t, a.ts, spec)
	if sum.Summary.Snapshot != "big-sweep" {
		t.Fatalf("batch was not recorded: %+v", sum.Summary)
	}
	rawA, errA := a.st.GetSnapshotRaw("big-sweep")
	rawB, errB := b.st.GetSnapshotRaw("big-sweep")
	if errA != nil || errB != nil {
		t.Fatalf("snapshot missing after replication: A=%v B=%v", errA, errB)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("replicated snapshot is not byte-identical")
	}
	if ns := nodeStatsOf(t, a); ns.ID != "nodeA" {
		t.Errorf("node stats id %q", ns.ID)
	}

	// Re-run from the replica: same lines, clean diff.
	rerun, rerunSum := batchNDJSON(t, b.ts, api.BatchSpec{Snapshot: "big-sweep"})
	if strings.Join(rerun, "\n") != strings.Join(orig, "\n") {
		t.Errorf("re-run from node B not byte-identical:\n orig: %v\nrerun: %v", orig, rerun)
	}
	if d := rerunSum.Summary.Diff; d == nil || d.Regressions != 0 || d.Changed != 0 || d.Unchanged != sum.Summary.Scenarios {
		t.Errorf("re-run diff not clean: %+v", rerunSum.Summary.Diff)
	}
}

// TestClusterPeerEndpointsGated: the replication endpoints are
// cluster-internal — no peer credential, no service; standalone
// daemons do not even route them.
func TestClusterPeerEndpointsGated(t *testing.T) {
	a, _ := startClusterPair(t, nil)
	addr := strings.Repeat("ab", 32)

	resp, body := get(t, a.ts, "/v1/plans/"+addr)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("plan get without credential: status %d: %s", resp.StatusCode, body)
	}
	var env api.ErrorEnvelope
	if json.Unmarshal(body, &env); env.Error == nil || env.Error.Code != api.CodeForbidden || env.Error.Node != "nodeA" {
		t.Errorf("forbidden error body: %s", body)
	}

	hr, _ := http.NewRequest(http.MethodPut, a.ts.URL+"/v1/snapshots/x", strings.NewReader("{}"))
	resp2, err := a.ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Errorf("snapshot put without credential: status %d", resp2.StatusCode)
	}

	// With the credential, a malformed address is a 400, not a 403.
	hr, _ = http.NewRequest(http.MethodGet, a.ts.URL+"/v1/plans/nothex", nil)
	hr.Header.Set(api.ForwardHeader, "nodeB")
	resp3, err := a.ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad address with credential: status %d", resp3.StatusCode)
	}

	// Standalone daemons have no cluster routes at all.
	_, ts := newTestServer(t, Options{})
	resp4, _ := get(t, ts, "/v1/plans/"+addr)
	if resp4.StatusCode != http.StatusNotFound {
		t.Errorf("standalone daemon routes /v1/plans: status %d", resp4.StatusCode)
	}
}

// TestClusterRateLimitExemption: the public token bucket does not
// throttle authenticated peer traffic or health probes — otherwise a
// forwarded request would be charged twice and probes would read as
// outages.
func TestClusterRateLimitExemption(t *testing.T) {
	a, _ := startClusterPair(t, func(o *Options) {
		o.RatePerSec = 0.001
		o.RateBurst = 1
	})

	// Public traffic: the bucket holds exactly one request.
	if resp, _ := get(t, a.ts, "/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first public request: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, a.ts, "/v1/stats"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second public request: status %d, want 429", resp.StatusCode)
	}

	// Peer traffic keeps flowing.
	for i := 0; i < 5; i++ {
		hr, _ := http.NewRequest(http.MethodGet, a.ts.URL+"/v1/stats", nil)
		hr.Header.Set(api.ForwardHeader, "nodeB")
		resp, err := a.ts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("peer request %d rate limited: status %d", i, resp.StatusCode)
		}
	}
	// A spoofed header naming a non-member buys nothing.
	hr, _ := http.NewRequest(http.MethodGet, a.ts.URL+"/v1/stats", nil)
	hr.Header.Set(api.ForwardHeader, "mallory")
	resp, err := a.ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("unknown peer id bypassed the limiter: status %d", resp.StatusCode)
	}
	// Probes always pass.
	for i := 0; i < 3; i++ {
		if resp, _ := get(t, a.ts, "/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz rate limited: status %d", resp.StatusCode)
		}
	}
}
