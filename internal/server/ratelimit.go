package server

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter: each client key
// (the request's remote host) owns a bucket refilled at rate tokens
// per second up to burst. A request takes one token; an empty bucket
// rejects with the time until the next token.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	clients   map[string]*bucket
	lastPrune time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map; past it, buckets idle long enough
// to have refilled completely are pruned (forgetting a full bucket is
// lossless — a new client starts full anyway). Pruning is amortized
// to once per pruneInterval so a flood of distinct addresses cannot
// turn every admission into an O(map) scan under the mutex, and past
// the hard cap the map is reset outright: bounded memory matters more
// than briefly re-granting bursts to abusive traffic.
const (
	maxClients    = 4096
	hardClientCap = 2 * maxClients
	pruneInterval = time.Second
)

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		b = 2 * rate
	}
	if b < 1 {
		b = 1
	}
	return &rateLimiter{rate: rate, burst: b, clients: make(map[string]*bucket)}
}

// allow takes a token from key's bucket. When it cannot, it returns
// ok == false and how long until a token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (retryAfter time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bk, exists := l.clients[key]
	if !exists {
		if len(l.clients) >= maxClients && now.Sub(l.lastPrune) >= pruneInterval {
			l.pruneLocked(now)
			l.lastPrune = now
		}
		if len(l.clients) >= hardClientCap {
			l.clients = make(map[string]*bucket)
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.clients[key] = bk
	} else {
		bk.tokens += now.Sub(bk.last).Seconds() * l.rate
		if bk.tokens > l.burst {
			bk.tokens = l.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return 0, true
	}
	return time.Duration((1 - bk.tokens) / l.rate * float64(time.Second)), false
}

// pruneLocked drops buckets idle long enough to be full again.
func (l *rateLimiter) pruneLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, bk := range l.clients {
		if now.Sub(bk.last) > idle {
			delete(l.clients, k)
		}
	}
}

// Rate-limiter client-key modes (Options.RateKey).
//
// The header-keyed modes trust the header: a client that can reach
// the daemon directly and mint arbitrary header values mints
// arbitrary buckets, so they only bound *well-behaved* clients
// unless a fronting proxy authenticates X-Api-Key or overwrites
// X-Forwarded-For. Deploy them behind such a proxy (the scenario
// they exist for — without them, everyone behind it shares one IP
// bucket); keep the default IP keying for directly exposed daemons.
const (
	// RateKeyIP keys buckets on the remote host (the default). Behind
	// one proxy every client shares a bucket.
	RateKeyIP = "ip"
	// RateKeyAPIKey keys buckets on the X-Api-Key request header,
	// falling back to the remote host for anonymous requests.
	RateKeyAPIKey = "api-key"
	// RateKeyForwarded keys buckets on the first (client) hop of
	// X-Forwarded-For, falling back to the remote host when absent.
	RateKeyForwarded = "forwarded"
)

// RateKeyModes lists the accepted Options.RateKey values.
func RateKeyModes() []string { return []string{RateKeyIP, RateKeyAPIKey, RateKeyForwarded} }

// rateKeyFunc maps a mode name to its client-key extractor.
func rateKeyFunc(mode string) (func(*http.Request) string, error) {
	switch mode {
	case "", RateKeyIP:
		return clientIP, nil
	case RateKeyAPIKey:
		return func(r *http.Request) string {
			if k := r.Header.Get("X-Api-Key"); k != "" {
				// Prefixed so a key can never collide with an address.
				return "key:" + k
			}
			return clientIP(r)
		}, nil
	case RateKeyForwarded:
		return func(r *http.Request) string {
			if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
				first := xff
				if i := strings.IndexByte(xff, ','); i >= 0 {
					first = xff[:i]
				}
				if hop := strings.TrimSpace(first); hop != "" {
					return "fwd:" + hop
				}
			}
			return clientIP(r)
		}, nil
	}
	return nil, fmt.Errorf("server: unknown rate-key mode %q (have %v)", mode, RateKeyModes())
}

// clientIP identifies the client by remote host without the
// ephemeral port.
func clientIP(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
