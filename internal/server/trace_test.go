package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/store"
	"repro/internal/trace"
)

// getTrace fetches one recorded trace from the ops listener and
// returns its span tree flattened into a name → spans index.
func getTrace(t *testing.T, ops *httptest.Server, id string) (traceDetail, map[string][]*trace.SpanNode) {
	t.Helper()
	resp, err := ops.Client().Get(ops.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", id, resp.StatusCode)
	}
	var td traceDetail
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	byName := map[string][]*trace.SpanNode{}
	var walk func(ns []*trace.SpanNode)
	walk = func(ns []*trace.SpanNode) {
		for _, n := range ns {
			byName[n.Name] = append(byName[n.Name], n)
			walk(n.Children)
		}
	}
	walk(td.Spans)
	return td, byName
}

// TestOptimizeTraced is the acceptance scenario over HTTP: a cold
// /v1/optimize yields a retrievable trace whose scenario span has
// alignment, kernel, collective-selection and store-lookup children
// with non-zero durations, and the response carries the same phase
// breakdown; the warm re-run is served from memory with the selection
// memoized.
func TestOptimizeTraced(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Store: st})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	// example1 has a broadcast, so collective selection runs.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "example1", Machine: "fattree32"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(TraceHeader)
	if len(id) != 32 {
		t.Fatalf("Trace-Id header %q, want a 32-hex trace ID", id)
	}
	var out api.OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Phases == nil {
		t.Fatal("cold response has no phase breakdown")
	}
	if out.Phases.PlanSource != "compute" || out.Phases.TotalUs <= 0 || out.Phases.KernelOps <= 0 {
		t.Fatalf("cold phases %+v", out.Phases)
	}

	td, spans := getTrace(t, ops, id)
	if td.TraceID != id || len(td.Spans) != 1 || td.Spans[0].Name != "http" {
		t.Fatalf("trace %s: %d roots, first %q", id, len(td.Spans), td.Spans[0].Name)
	}
	for _, name := range []string{"scenario", "store.lookup", "optimize", "alignment", "kernel", "collective.select"} {
		ns := spans[name]
		if len(ns) == 0 {
			t.Fatalf("trace has no %q span; got %v", name, keys(spans))
		}
		for _, n := range ns {
			if n.DurationUs <= 0 {
				t.Errorf("%s span has zero duration", name)
			}
		}
	}
	if got := spans["scenario"][0].Attrs["plan_source"]; got != "compute" {
		t.Errorf("scenario plan_source %q", got)
	}
	if got := spans["store.lookup"][0].Attrs["result"]; got != "miss" {
		t.Errorf("cold store.lookup result %q", got)
	}

	// Warm re-run: plan cache hit, memoized selection, no optimize span.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "example1", Machine: "fattree32"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm optimize status %d: %s", resp.StatusCode, body)
	}
	var warm api.OptimizeResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Phases == nil || warm.Phases.PlanSource != "memory" || warm.Phases.SelectMemo != "hit" {
		t.Fatalf("warm phases %+v", warm.Phases)
	}
	_, spans = getTrace(t, ops, resp.Header.Get(TraceHeader))
	if len(spans["optimize"]) != 0 {
		t.Error("warm run re-ran the optimizer")
	}
	for _, n := range spans["collective.select"] {
		if n.Attrs["memo"] != "hit" {
			t.Errorf("warm selection span memo %q", n.Attrs["memo"])
		}
	}

	// The listing shows both traces, newest first; min filters.
	lresp, err := ops.Client().Get(ops.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list traceListResponse
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil || list.Held < 2 || list.Total < 2 || len(list.Traces) < 2 {
		t.Fatalf("trace listing: err %v, %+v", err, list)
	}
	lresp, err = ops.Client().Get(ops.URL + "/debug/traces?min=10h")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil || len(list.Traces) != 0 {
		t.Fatalf("min=10h listing not empty: err %v, %d traces", err, len(list.Traces))
	}
}

func keys(m map[string][]*trace.SpanNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceparentPropagation: a valid inbound W3C traceparent is
// adopted as the request's trace ID; a malformed one is ignored and a
// fresh root minted.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	const inbound = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(`{"example":"matmul"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+inbound+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != inbound {
		t.Errorf("valid traceparent not adopted: Trace-Id %q, want %q", got, inbound)
	}

	for _, bad := range []string{"not-a-traceparent", "00-" + inbound, "00-zzzz-0123456789abcdef-01"} {
		req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize",
			strings.NewReader(`{"example":"matmul"}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", bad)
		resp, err = ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(TraceHeader)
		if got == inbound || len(got) != 32 {
			t.Errorf("traceparent %q: Trace-Id %q, want a fresh 32-hex ID", bad, got)
		}
	}
}

// TestBatchTimings: phase breakdowns appear on NDJSON lines only when
// the spec opts in, so the default stream stays byte-deterministic.
func TestBatchTimings(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	spec := api.BatchSpec{Seed: 11, Random: 2, NoExamples: true}
	lines, _ := batchNDJSON(t, ts, spec)
	for _, ln := range lines {
		if strings.Contains(ln, `"phases"`) {
			t.Fatalf("phases on a line without timings:true: %s", ln)
		}
	}

	spec.Timings = true
	lines, _ = batchNDJSON(t, ts, spec)
	if len(lines) == 0 {
		t.Fatal("no batch lines")
	}
	for _, ln := range lines {
		var bl api.BatchLine
		if err := json.Unmarshal([]byte(ln), &bl); err != nil {
			t.Fatal(err)
		}
		if bl.Phases == nil || bl.Phases.TotalUs <= 0 || bl.Phases.PlanSource == "" {
			t.Fatalf("timings:true line missing phases: %s", ln)
		}
	}
}

// TestErrorCarriesTraceID: error envelopes echo the request's trace
// ID so a failure report can be matched to its recorded trace.
func TestErrorCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "no-such-example"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Error api.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.TraceID == "" || env.Error.TraceID != resp.Header.Get(TraceHeader) {
		t.Errorf("error trace_id %q, header %q", env.Error.TraceID, resp.Header.Get(TraceHeader))
	}
}

// TestJobTraceID: async jobs mint their own root trace, returned in
// the 202 body so the submitter can follow the background work.
func TestJobTraceID(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", api.BatchSpec{Seed: 5, Random: 1, NoExamples: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if len(job.TraceID) != 32 {
		t.Fatalf("job trace_id %q, want a 32-hex trace ID", job.TraceID)
	}
	if job.TraceID == resp.Header.Get(TraceHeader) {
		t.Error("job root trace must be distinct from the submitting request's")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jresp, jbody := getJSON(t, ts, "/v1/jobs/"+job.ID)
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("job get status %d", jresp.StatusCode)
		}
		if err := json.Unmarshal(jbody, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.Status != api.JobDone {
		t.Fatalf("job finished %q", job.Status)
	}

	_, spans := getTrace(t, ops, job.TraceID)
	if len(spans["job"]) != 1 || len(spans["scenario"]) == 0 {
		t.Fatalf("job trace spans: %v", keys(spans))
	}
	if got := spans["job"][0].Attrs["status"]; got != string(api.JobDone) {
		t.Errorf("job span status %q", got)
	}
}

// getJSON is a small GET helper mirroring postJSON.
func getJSON(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestStatsPhaseTotals: /v1/stats aggregates the session's phase
// attribution.
func TestStatsPhaseTotals(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Phases.Scenarios == 0 || stats.Phases.TotalUs <= 0 || stats.Phases.ComputeUs <= 0 {
		t.Fatalf("stats phases %+v", stats.Phases)
	}
}
