// Package server exposes the optimization engine as an HTTP service
// (the resoptd daemon). One long-lived engine.Session backs every
// request: concurrent clients share the worker pool, the in-memory
// memo cache and the optional disk store, so a nest optimized once —
// by anyone, in any process that shared the store — is served from
// cache thereafter (the ResFed-style compile-once/reuse-many model).
//
// Endpoints:
//
//	POST /optimize  one nest (built-in example or nestlang source) →
//	                classification counts and model time
//	POST /batch     suite spec → NDJSON stream of per-scenario
//	                results, in input order, ending in a summary line
//	GET  /stats     cache, store and request counters
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/affine"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/engine"
	"repro/internal/nestlang"
	"repro/internal/scenarios"
	"repro/internal/store"
)

// Options configure a server.
type Options struct {
	// Workers sizes the shared engine pool (≤0: GOMAXPROCS).
	Workers int
	// CacheCap bounds the in-memory cache (0: engine default).
	CacheCap int
	// Store is the optional disk tier shared by every request.
	Store *store.Store
}

// Server owns the shared session. Create with New, serve via
// Handler, and Close on shutdown.
type Server struct {
	session *engine.Session
	store   *store.Store
	mux     *http.ServeMux

	optimizes, batches atomic.Uint64
}

// New starts the shared engine session and builds the route table.
func New(opts Options) *Server {
	eo := engine.Options{Workers: opts.Workers, CacheCap: opts.CacheCap}
	if opts.Store != nil {
		eo.Store = opts.Store
	}
	s := &Server{session: engine.NewSession(eo), store: opts.Store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "resoptd: POST /optimize, POST /batch, GET /stats\n")
	})
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the shared session down. Call only after the HTTP
// server has stopped serving requests.
func (s *Server) Close() { s.session.Close() }

// maxBody bounds request bodies; nest sources are tiny.
const maxBody = 1 << 20

// OptimizeRequest is the POST /optimize body. Exactly one of Example
// (a built-in nest name, see `resopt -list`) or Nest (nestlang
// source) selects the program.
type OptimizeRequest struct {
	Example string `json:"example,omitempty"`
	Nest    string `json:"nest,omitempty"`
	// M is the target virtual grid dimension (default 2).
	M int `json:"m,omitempty"`
	// Machine is a spec like "fattree32" or "mesh4x4"
	// (default fattree32); N and ElemBytes size the payload
	// (defaults 16 and 64).
	Machine   string `json:"machine,omitempty"`
	N         int    `json:"n,omitempty"`
	ElemBytes int64  `json:"elem_bytes,omitempty"`
	// NoMacro / NoDecomposition are the heuristic ablations.
	NoMacro         bool `json:"no_macro,omitempty"`
	NoDecomposition bool `json:"no_decomposition,omitempty"`
}

// OptimizeResponse is the POST /optimize reply: the per-class
// communication counts of the optimized nest (identical to a direct
// core.Optimize call) plus the modeled time on the chosen machine.
type OptimizeResponse struct {
	Name         string  `json:"name"`
	Machine      string  `json:"machine"`
	Local        int     `json:"local"`
	Macro        int     `json:"macro"`
	Decomposed   int     `json:"decomposed"`
	General      int     `json:"general"`
	Vectorizable int     `json:"vectorizable"`
	ModelTimeUs  float64 `json:"model_time_us"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimizes.Add(1)
	var req OptimizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sc, err := scenarioFromRequest(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.session.Optimize(sc)
	if res.Err != "" {
		httpError(w, http.StatusUnprocessableEntity, "optimization failed: %s", res.Err)
		return
	}
	writeJSON(w, http.StatusOK, OptimizeResponse{
		Name:         res.Name,
		Machine:      sc.Machine.String(),
		Local:        res.Classes[core.Local],
		Macro:        res.Classes[core.MacroComm],
		Decomposed:   res.Classes[core.Decomposed],
		General:      res.Classes[core.General],
		Vectorizable: res.Vectorizable,
		ModelTimeUs:  res.ModelTime,
	})
}

// scenarioFromRequest resolves the program and fills the machine and
// payload defaults.
func scenarioFromRequest(req *OptimizeRequest) (*scenarios.Scenario, error) {
	var prog *affine.Program
	switch {
	case req.Example != "" && req.Nest != "":
		return nil, fmt.Errorf(`give "example" or "nest", not both`)
	case req.Example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == req.Example {
				prog = p
			}
		}
		if prog == nil {
			return nil, fmt.Errorf("unknown example %q", req.Example)
		}
	case req.Nest != "":
		p, err := nestlang.Parse(req.Nest)
		if err != nil {
			return nil, fmt.Errorf("parsing nest: %w", err)
		}
		prog = p
	default:
		return nil, fmt.Errorf(`give "example" or "nest"`)
	}
	m := req.M
	if m == 0 {
		m = 2
	}
	ms := scenarios.MachineSpec{Kind: scenarios.FatTree, P: 32}
	if req.Machine != "" {
		var err error
		ms, err = scenarios.ParseMachineSpec(req.Machine)
		if err != nil {
			return nil, err
		}
	}
	n := req.N
	if n <= 0 {
		n = 16
	}
	eb := req.ElemBytes
	if eb <= 0 {
		eb = 64
	}
	return &scenarios.Scenario{
		Name:      prog.Name,
		Program:   prog,
		M:         m,
		Opts:      core.Options{NoMacro: req.NoMacro, NoDecomposition: req.NoDecomposition},
		Machine:   ms,
		Dist:      distrib.Dist2D{D0: distrib.Block{}, D1: distrib.Block{}},
		N:         n,
		ElemBytes: eb,
	}, nil
}

// BatchRequest is the POST /batch body: a scenarios.Config spec.
type BatchRequest struct {
	Seed       int64 `json:"seed,omitempty"`
	Random     int   `json:"random,omitempty"`
	Deep       int   `json:"deep,omitempty"`
	Skew       bool  `json:"skew,omitempty"`
	NoExamples bool  `json:"no_examples,omitempty"`
	M          int   `json:"m,omitempty"`
	NoMacro    bool  `json:"no_macro,omitempty"`
	NoDecomp   bool  `json:"no_decomposition,omitempty"`
}

// maxSuiteNests bounds /batch suite generation per request.
const maxSuiteNests = 1000

// BatchLine is one NDJSON line of the /batch stream.
type BatchLine struct {
	Name         string  `json:"name"`
	Classes      [4]int  `json:"classes"`
	Vectorizable int     `json:"vectorizable"`
	ModelTimeUs  float64 `json:"model_time_us"`
	Err          string  `json:"err,omitempty"`
}

// BatchSummary is the final NDJSON line of the /batch stream.
type BatchSummary struct {
	Summary struct {
		Scenarios      int     `json:"scenarios"`
		ClassTotals    [4]int  `json:"class_totals"`
		TotalModelTime float64 `json:"total_model_time_us"`
		Errors         int     `json:"errors"`
	} `json:"summary"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Bound each field before summing: two huge values could overflow
	// the sum past the guard.
	if req.Random < 0 || req.Deep < 0 ||
		req.Random > maxSuiteNests || req.Deep > maxSuiteNests ||
		req.Random+req.Deep > maxSuiteNests {
		httpError(w, http.StatusBadRequest, "random+deep must be in [0, %d]", maxSuiteNests)
		return
	}
	suite := scenarios.Generate(scenarios.Config{
		Seed:       req.Seed,
		Random:     req.Random,
		Deep:       req.Deep,
		Skew:       req.Skew,
		NoExamples: req.NoExamples,
		M:          req.M,
		Opts:       core.Options{NoMacro: req.NoMacro, NoDecomposition: req.NoDecomp},
	})
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	b := s.session.RunStream(suite, func(res engine.Result) {
		enc.Encode(BatchLine{
			Name:         res.Name,
			Classes:      res.Classes,
			Vectorizable: res.Vectorizable,
			ModelTimeUs:  res.ModelTime,
			Err:          res.Err,
		})
		if flusher != nil {
			flusher.Flush()
		}
	})
	var sum BatchSummary
	sum.Summary.Scenarios = len(b.Results)
	sum.Summary.ClassTotals = b.ClassTotals
	sum.Summary.TotalModelTime = b.TotalModelTime
	sum.Summary.Errors = b.Errors
	enc.Encode(sum)
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Workers  int               `json:"workers"`
	Cache    engine.CacheStats `json:"cache"`
	Store    *store.Stats      `json:"store,omitempty"`
	Requests struct {
		Optimize uint64 `json:"optimize"`
		Batch    uint64 `json:"batch"`
	} `json:"requests"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Workers: s.session.Workers(), Cache: s.session.CacheStats()}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	resp.Requests.Optimize = s.optimizes.Load()
	resp.Requests.Batch = s.batches.Load()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
