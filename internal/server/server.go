// Package server exposes the optimization engine as an HTTP service
// (the resoptd daemon). One long-lived engine.Session backs every
// request: concurrent clients share the worker pool, the in-memory
// memo cache and the optional disk store, so a nest optimized once —
// by anyone, in any process that shared the store — is served from
// cache thereafter (the ResFed-style compile-once/reuse-many model).
//
// The wire contract lives in internal/api and is served under the
// versioned /v1 prefix:
//
//	POST   /v1/optimize          one nest → classification counts + model time
//	POST   /v1/batch             suite spec → NDJSON stream of per-scenario
//	                             results ending in a summary line; specs may
//	                             name a stored snapshot to re-run and diff it
//	POST   /v1/lattice           nest × capacity-planning grid → NDJSON rows
//	                             of per-point model costs and switch points,
//	                             priced through the compiled-plan tier
//	POST   /v1/jobs              submit a batch spec as an async job
//	GET    /v1/jobs              list jobs, most recent first
//	GET    /v1/jobs/{id}         poll one job
//	DELETE /v1/jobs/{id}         cancel a queued/running job
//	GET    /v1/jobs/{id}/results full results once the job finished
//	GET    /v1/snapshots         stored snapshots (re-runnable ones flagged)
//	GET    /v1/stats             cache, store, suite-cache, request and job
//	                             counters
//	GET    /v1/cluster/stats     every fleet member's stats plus an
//	                             aggregated rollup (standalone: just self)
//
// The pre-/v1 endpoints (POST /optimize, POST /batch, GET /stats)
// remain as thin deprecated shims over the same handlers; they send
// a Deprecation header and a Link to their successor.
//
// Request contexts are threaded into the engine: a client that
// disconnects (or times out) cancels its in-flight work at the next
// scenario boundary. Optional per-client token-bucket rate limiting
// (Options.RatePerSec) answers excess traffic with a typed 429.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
)

// Options configure a server.
type Options struct {
	// Workers sizes the shared engine pool (≤0: GOMAXPROCS).
	Workers int
	// CacheCap bounds the in-memory cache (0: engine default).
	CacheCap int
	// Store is the optional disk tier shared by every request; it also
	// enables the snapshot endpoints and snapshot-named batch specs.
	Store *store.Store
	// RatePerSec enables per-client token-bucket rate limiting at this
	// sustained request rate (0: disabled).
	RatePerSec float64
	// RateBurst is the bucket depth (0: twice the rate, minimum 1).
	RateBurst int
	// RateKey selects what identifies a client for rate limiting:
	// RateKeyIP (the default), RateKeyAPIKey (X-Api-Key header) or
	// RateKeyForwarded (first X-Forwarded-For hop, for daemons behind
	// a trusted proxy). Unknown modes panic in New; resoptd validates
	// its -rate-key flag first.
	RateKey string
	// JobsCap bounds retained finished jobs (0: DefaultJobsCap).
	JobsCap int
	// Logger receives the structured request and job-lifecycle logs
	// (nil: discard).
	Logger *slog.Logger
	// TraceSlow promotes requests at least this slow to a warning log
	// carrying their full span tree (0: disabled).
	TraceSlow time.Duration
	// TraceCap bounds the in-memory trace ring (0: the recorder
	// default).
	TraceCap int
	// Cluster, when set, runs this daemon as one node of a static
	// cluster: optimize requests are routed to key owners over the
	// consistent ring, cold plans consult replica peers before
	// computing, and finished plans/snapshots replicate to ring
	// successors (see cluster.go).
	Cluster *cluster.Cluster
	// ClusterProbeInterval paces the background peer-health sweep
	// (0: the cluster package default; < 0: no background prober —
	// health then moves only on live traffic, which tests use for
	// determinism).
	ClusterProbeInterval time.Duration
}

// Server owns the shared session. Create with New, serve via
// Handler, and Close on shutdown.
type Server struct {
	session  *engine.Session
	store    *store.Store
	mux      *http.ServeMux
	limiter  *rateLimiter
	rateKey  func(*http.Request) string
	resolver *suiteResolver
	jobs     *jobManager
	jobWG    sync.WaitGroup
	obs      *observability

	tracer    *trace.Recorder
	logger    *slog.Logger
	traceSlow time.Duration

	// clusterRt is the cluster routing state (nil when standalone).
	clusterRt *clusterRuntime

	// Background sweeper state (see StartSweeper).
	sweepOpts atomic.Pointer[SweepOptions]
	sweepStop chan struct{}
	sweepWG   sync.WaitGroup

	optimizes, batches, lattices, jobReqs, rateLimited atomic.Uint64
}

// New starts the shared engine session and builds the route table.
func New(opts Options) *Server {
	eo := engine.Options{Workers: opts.Workers, CacheCap: opts.CacheCap}
	if opts.Store != nil {
		eo.Store = opts.Store
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		store:     opts.Store,
		mux:       http.NewServeMux(),
		resolver:  newSuiteResolver(suiteCacheCap),
		jobs:      newJobManager(opts.JobsCap, opts.Store),
		sweepStop: make(chan struct{}),
		tracer:    trace.NewRecorder(opts.TraceCap),
		logger:    logger,
		traceSlow: opts.TraceSlow,
	}
	if opts.Cluster != nil {
		s.clusterRt = newClusterRuntime(opts.Cluster)
		// The engine consults replica peers between its disk tier and a
		// cold computation, and announces finished plans for
		// replication: cross-replica single-flight.
		eo.Remote = remoteTier{s}
		// Every recorded span carries this node's identity, so merged
		// cross-node trees can attribute each span to its member.
		s.tracer.SetNode(opts.Cluster.Self())
	}
	s.session = engine.NewSession(eo)
	s.obs = newObservability(s)
	if opts.RatePerSec > 0 {
		keyFn, err := rateKeyFunc(opts.RateKey)
		if err != nil {
			panic(err) // invalid enum is a programmer error; flags validate first
		}
		s.limiter = newRateLimiter(opts.RatePerSec, opts.RateBurst)
		s.rateKey = keyFn
	}

	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/lattice", s.handleLattice)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	// The fleet aggregation is routed unconditionally: standalone
	// daemons answer with themselves as the only member, so dashboards
	// need not care whether a target is clustered.
	s.mux.HandleFunc("GET /v1/cluster/stats", s.handleClusterStats)

	// Deprecated unversioned shims. /stats keeps its pre-/v1 body
	// shape (Go-default CamelCase cache keys): legacy monitoring
	// clients unmarshal those field names, and serving them
	// snake_case would silently zero their counters.
	s.mux.HandleFunc("POST /optimize", deprecated("/v1/optimize", s.handleOptimize))
	s.mux.HandleFunc("POST /batch", deprecated("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("GET /stats", deprecated("/v1/stats", s.handleLegacyStats))

	// Liveness on the API listener too: peers probe each other's
	// /healthz, and a load balancer in front of a cluster needs it on
	// the public port (the ops listener keeps its own copy).
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.healthzBody())
	})
	if s.clusterRt != nil {
		// Cluster-internal endpoints, only routed when clustered
		// (standalone daemons 404 them): plan/snapshot replication, plus
		// the local-only trace and metrics reads behind distributed trace
		// assembly and metrics federation.
		s.mux.HandleFunc("GET /v1/plans/{addr}", s.handlePlanGet)
		s.mux.HandleFunc("PUT /v1/plans/{addr}", s.handlePlanPut)
		s.mux.HandleFunc("PUT /v1/snapshots/{name}", s.handleSnapshotPut)
		s.mux.HandleFunc("GET /debug/traces/{id}", s.handlePeerTrace)
		s.mux.HandleFunc("GET /metrics/peer", s.handlePeerMetrics)
		s.startProber(opts.ClusterProbeInterval)
	}

	s.mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "resoptd /v1: POST /v1/optimize, POST /v1/batch, POST /v1/lattice, POST|GET /v1/jobs, GET /v1/jobs/{id}[/results], GET /v1/snapshots, GET /v1/stats\n")
	})
	return s
}

// deprecated wraps a v1 handler as an unversioned shim: same
// behavior, plus the deprecation headers pointing at the successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Handler returns the HTTP handler: request tracing (outermost, so
// everything below runs under the root span), metric instrumentation,
// version stamping and rate limiting around the route table.
func (s *Server) Handler() http.Handler {
	return s.traced(s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Version)
		// Intra-cluster traffic (authenticated by the forward header
		// naming a known peer) and health probes bypass the public rate
		// limit: throttling a peer's forward would double-charge the
		// same client request, and throttled probes read as an outage.
		if s.limiter != nil && r.URL.Path != "/healthz" && !s.isPeerRequest(r) {
			if retry, ok := s.limiter.allow(s.rateKey(r), time.Now()); !ok {
				s.rateLimited.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())+1))
				s.writeError(w, api.Errorf(http.StatusTooManyRequests, api.CodeRateLimited,
					"rate limit exceeded; retry in %s", retry.Round(time.Millisecond)))
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})))
}

// Close stops the background sweeper, cancels outstanding jobs, waits
// for their runs to drain, and shuts the shared session down. Call
// only after the HTTP server has stopped serving requests.
func (s *Server) Close() {
	close(s.sweepStop)
	s.sweepWG.Wait()
	s.jobs.shutdown()
	s.jobWG.Wait()
	if s.clusterRt != nil && s.clusterRt.probeCancel != nil {
		s.clusterRt.probeCancel()
	}
	s.session.Close()
	if s.clusterRt != nil {
		// After the session drains no worker announces new plans; wait
		// out the in-flight replication fan-outs and the prober.
		s.clusterRt.wg.Wait()
	}
}

// maxBody bounds request bodies; nest sources are tiny.
const maxBody = 1 << 20

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimizes.Add(1)
	var req api.OptimizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	sc, aerr := scenarioFromRequest(&req)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	if s.clusterRt != nil {
		if from := r.Header.Get(api.ForwardHeader); from != "" {
			// Already forwarded once: answer locally no matter who owns
			// the key (the loop guard).
			s.noteForwardedIn(from)
		} else if s.forwardOptimize(w, r, &req, sc) {
			return
		}
	}
	res, err := s.session.Optimize(r.Context(), sc)
	if err != nil {
		// The client is gone (or its deadline passed); status is moot
		// but a typed body keeps proxies and logs coherent.
		s.writeError(w, api.Errorf(http.StatusRequestTimeout, api.CodeCancelled, "request cancelled: %v", err))
		return
	}
	if res.Err != "" {
		s.writeError(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeUnprocessable, "optimization failed: %s", res.Err))
		return
	}
	writeJSON(w, http.StatusOK, api.OptimizeResponse{
		Node:         s.nodeID(),
		Name:         res.Name,
		Machine:      sc.Machine.String(),
		Local:        res.Classes[core.Local],
		Macro:        res.Classes[core.MacroComm],
		Decomposed:   res.Classes[core.Decomposed],
		General:      res.Classes[core.General],
		Vectorizable: res.Vectorizable,
		ModelTimeUs:  res.ModelTime,
		Collectives:  res.Collectives,
		Phases:       phaseBreakdown(res.Phases),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	var spec api.BatchSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&spec); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	rb, aerr := s.resolveBatch(spec)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sum, _ := s.runBatch(r.Context(), rb, func(line api.BatchLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	})
	// On cancellation the client is usually gone; writing the summary
	// is then a no-op, but a server-side deadline still delivers a
	// well-terminated stream with summary.cancelled set.
	enc.Encode(api.BatchSummary{Summary: sum})
}

// runBatch runs a resolved batch on the shared session, streaming
// lines to emit, and assembles the summary: aggregates, the
// server-side diff against the baseline snapshot (for snapshot-named
// specs) and the save-as recording. Shared by the synchronous /v1/batch
// stream and async jobs.
func (s *Server) runBatch(ctx context.Context, rb *resolvedBatch, emit func(api.BatchLine)) (api.BatchSummaryBody, error) {
	b, runErr := s.session.RunStream(ctx, rb.suite, func(res engine.Result) {
		line := api.BatchLine{
			Name:         res.Name,
			Classes:      res.Classes,
			Vectorizable: res.Vectorizable,
			ModelTimeUs:  res.ModelTime,
			Collectives:  res.Collectives,
			Err:          res.Err,
		}
		if rb.timings {
			line.Phases = phaseBreakdown(res.Phases)
		}
		emit(line)
	})
	sum := api.BatchSummaryBody{
		Scenarios:      len(b.Results),
		ClassTotals:    b.ClassTotals,
		TotalModelTime: b.TotalModelTime,
		Errors:         b.Errors,
	}
	if runErr != nil {
		sum.Cancelled = true
		return sum, runErr
	}
	snap := store.Take(b)
	spec := rb.genSpec
	snap.Spec = &spec
	if rb.baseline != nil {
		_, dsp := trace.StartSpan(ctx, "snapshot.diff")
		d := store.Compare(rb.baseline, snap)
		dsp.Set("baseline", rb.baselineName).SetInt("regressions", int64(d.Regressions)).End()
		sum.Diff = &api.DiffSummary{
			Baseline:    rb.baselineName,
			Unchanged:   d.Unchanged,
			Changed:     len(d.Changed),
			Regressions: d.Regressions,
			Added:       len(d.Added),
			Removed:     len(d.Removed),
		}
	}
	if rb.saveAs != "" {
		// The name and the store were validated at resolve time, so a
		// failure here is an I/O problem. SaveSnapshot records it in
		// the store's warning log (visible in /v1/stats); the summary
		// omits the recording so clients can tell it did not stick.
		_, ssp := trace.StartSpan(ctx, "snapshot.save")
		_, err := s.store.SaveSnapshot(rb.saveAs, snap)
		if err == nil {
			sum.Snapshot = rb.saveAs
			s.replicateSnapshot(ctx, rb.saveAs)
		} else {
			ssp.Set("error", err.Error())
		}
		ssp.Set("name", rb.saveAs).End()
	}
	return sum, nil
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, errNoStore())
		return
	}
	names, err := s.store.ListSnapshots()
	if err != nil {
		s.writeError(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "listing snapshots: %v", err))
		return
	}
	list := api.SnapshotList{Snapshots: []api.SnapshotInfo{}}
	for _, name := range names {
		snap, err := s.store.LoadSnapshot(name)
		if err != nil {
			continue // raced with deletion or corrupt: skip, don't fail the listing
		}
		list.Snapshots = append(list.Snapshots, api.SnapshotInfo{
			Name:           name,
			Scenarios:      snap.Scenarios,
			Errors:         snap.Errors,
			TotalModelTime: snap.TotalModelTime,
			Rerunnable:     snap.Spec != nil,
		})
	}
	writeJSON(w, http.StatusOK, list)
}

func errNoStore() *api.Error {
	return api.Errorf(http.StatusServiceUnavailable, api.CodeNoStore, "this daemon has no plan store (start resoptd with -store)")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsResponse())
}

// legacyStatsResponse reproduces the pre-/v1 GET /stats body: the
// engine's CacheStats serialized with its Go field names and only the
// request counters that endpoint had.
type legacyStatsResponse struct {
	Workers  int               `json:"workers"`
	Cache    engine.CacheStats `json:"cache"`
	Store    *store.Stats      `json:"store,omitempty"`
	Requests struct {
		Optimize uint64 `json:"optimize"`
		Batch    uint64 `json:"batch"`
	} `json:"requests"`
}

func (s *Server) handleLegacyStats(w http.ResponseWriter, r *http.Request) {
	resp := legacyStatsResponse{Workers: s.session.Workers(), Cache: s.session.CacheStats()}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	resp.Requests.Optimize = s.optimizes.Load()
	resp.Requests.Batch = s.batches.Load()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *api.Error) {
	// The traced middleware stamped the Trace-Id header before
	// dispatch; copying it into the body lets clients report the ID
	// even when they only kept the decoded error.
	if e.TraceID == "" {
		e.TraceID = w.Header().Get(TraceHeader)
	}
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}
