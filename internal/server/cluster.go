// Cluster routing: the server-side half of the clustered serving
// tier. When Options.Cluster is set, each resoptd node owns a shard
// of the canonical plan-key space (internal/cluster's consistent
// ring) and the handlers here keep the fleet coherent:
//
//   - /v1/optimize requests for keys owned elsewhere are proxied to
//     the owner (one hop at most — api.ForwardHeader is the loop
//     guard), with local compute as the fallback when the owner is
//     down.
//   - Cold plans consult the replica set's stores before computing
//     (engine.RemotePlanTier), and finished plans are pushed to the
//     ring successors asynchronously.
//   - Recorded snapshots are replicated synchronously at save time,
//     byte-identically, so any replica re-runs them bit-for-bit.
//
// The peer endpoints (GET/PUT /v1/plans/{addr}, PUT
// /v1/snapshots/{name}) are cluster-internal: they require the
// forward header to name a known peer, the same trusted-network
// credential that exempts peer traffic from the public rate limit.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/scenarios"
	"repro/internal/store"
	"repro/internal/trace"
)

// replicateTimeout bounds one background replication fan-out; plan
// payloads are small, so a slow peer is a down peer.
const replicateTimeout = 10 * time.Second

// forwardRetries is the per-peer client retry budget. Kept low: a
// forward that cannot get through quickly should fall back to local
// compute, not queue behind backoff sleeps.
const forwardRetries = 1

// clusterRuntime is the per-node routing state: one client per peer
// (carrying the forward header), the prober lifecycle, and the
// counters behind NodeStats / the resopt_cluster_* metric families.
type clusterRuntime struct {
	cl    *cluster.Cluster
	peers map[string]*client.Client

	// probeCancel stops the background prober; wg tracks it plus the
	// async plan-replication goroutines (drained in Close).
	probeCancel context.CancelFunc
	wg          sync.WaitGroup

	forwardsOut, forwardsIn, forwardFallbacks atomic.Uint64
	peerPlanHits, plansReplicated             atomic.Uint64
	snapshotsReplicated                       atomic.Uint64
}

// newClusterRuntime builds the routing state. Peer clients reuse
// internal/client wholesale: retry with backoff, traceparent
// propagation, and the static forward header identifying this node.
func newClusterRuntime(cl *cluster.Cluster) *clusterRuntime {
	rt := &clusterRuntime{cl: cl, peers: make(map[string]*client.Client, cl.Size()-1)}
	for _, id := range cl.Peers() {
		pc, err := client.New(cl.URL(id), nil,
			client.WithHeader(api.ForwardHeader, cl.Self()),
			client.WithRetry(forwardRetries))
		if err != nil {
			// Membership URLs were validated by cluster.New/ParseSpec;
			// reaching here is a programmer error.
			panic(err)
		}
		rt.peers[id] = pc
	}
	return rt
}

// startProber runs the periodic health sweep against every peer's
// GET /healthz. interval < 0 disables it (tests drive ProbeAll
// directly); 0 means the cluster package default.
func (s *Server) startProber(interval time.Duration) {
	if interval < 0 {
		return
	}
	rt := s.clusterRt
	ctx, cancel := context.WithCancel(context.Background())
	rt.probeCancel = cancel
	probe := func(ctx context.Context, url string) error {
		pc, err := client.New(url, nil, client.WithHeader(api.ForwardHeader, rt.cl.Self()))
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		return pc.Healthz(ctx)
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.cl.Health().Run(ctx, probe, interval)
	}()
}

// isPeerRequest reports whether r carries a forward header naming a
// known peer — the intra-cluster credential (trusted network).
func (s *Server) isPeerRequest(r *http.Request) bool {
	return s.clusterRt != nil && s.clusterRt.cl.IsPeer(r.Header.Get(api.ForwardHeader))
}

// nodeID returns this node's cluster ID ("" when not clustered).
func (s *Server) nodeID() string {
	if s.clusterRt == nil {
		return ""
	}
	return s.clusterRt.cl.Self()
}

// forwardOptimize proxies an optimize request to the owner of its
// plan key when that owner is another, healthy node. It reports
// whether the response (success or the owner's typed error) was
// written; false means the caller should compute locally — either
// this node owns the key, or the owner is down/unreachable (the
// fallback that keeps a degraded cluster serving).
func (s *Server) forwardOptimize(w http.ResponseWriter, r *http.Request, req *api.OptimizeRequest, sc *scenarios.Scenario) bool {
	rt := s.clusterRt
	owner := rt.cl.Owner(sc.PlanKey())
	if owner == rt.cl.Self() {
		return false
	}
	if !rt.cl.Health().Up(owner) {
		rt.forwardFallbacks.Add(1)
		return false
	}
	ctx, sp := trace.StartSpan(r.Context(), "cluster.forward")
	sp.Set("peer", owner)
	start := time.Now()
	resp, err := rt.peers[owner].Optimize(ctx, *req)
	if err != nil {
		var ae *api.Error
		if !errors.As(err, &ae) {
			// Transport-level failure: mark the owner down and serve the
			// request locally rather than failing it.
			rt.cl.Health().ReportFailure(owner, err)
			rt.forwardFallbacks.Add(1)
			sp.Set("error", err.Error()).Set("fallback", "local").End()
			return false
		}
		// The owner answered with a typed error (bad program, rejected
		// nest, ...): relay it verbatim — recomputing locally would just
		// fail the same way.
		rt.cl.Health().ReportSuccess(owner)
		s.countForward(rt, owner, start)
		sp.Set("status", ae.Code).End()
		s.writeError(w, ae)
		return true
	}
	rt.cl.Health().ReportSuccess(owner)
	s.countForward(rt, owner, start)
	sp.End()
	if resp.Node == "" {
		resp.Node = owner
	}
	writeJSON(w, http.StatusOK, resp)
	return true
}

func (s *Server) countForward(rt *clusterRuntime, owner string, start time.Time) {
	rt.forwardsOut.Add(1)
	s.obs.forwards.With(owner, "out").Inc()
	s.obs.forwardLatency.With(owner).Observe(time.Since(start).Seconds())
}

// noteForwardedIn accounts a request a peer proxied to this node.
func (s *Server) noteForwardedIn(from string) {
	rt := s.clusterRt
	if rt == nil || !rt.cl.IsPeer(from) {
		return
	}
	rt.forwardsIn.Add(1)
	s.obs.forwards.With(from, "in").Inc()
}

// remoteTier adapts the cluster runtime to engine.RemotePlanTier: the
// peer tier the engine consults between its disk store and a cold
// computation, and the announcement hook that replicates finished
// plans to the ring successors.
type remoteTier struct{ s *Server }

// FetchPlan asks the key's replica peers for a stored plan. 404s and
// transport errors are misses (the engine computes); any answer —
// including a miss — is a health signal.
func (t remoteTier) FetchPlan(ctx context.Context, key string) ([]engine.PlanRecord, string, bool) {
	rt := t.s.clusterRt
	addr := store.PlanAddr(key)
	for _, node := range rt.cl.ReplicaSet(key) {
		if node == rt.cl.Self() || !rt.cl.Health().Up(node) {
			continue
		}
		pe, err := rt.peers[node].FetchPlan(ctx, addr)
		if err != nil {
			var ae *api.Error
			if errors.As(err, &ae) {
				rt.cl.Health().ReportSuccess(node) // the peer answered; a 404 is a healthy miss
			} else {
				rt.cl.Health().ReportFailure(node, err)
			}
			continue
		}
		rt.cl.Health().ReportSuccess(node)
		if pe.Key != key {
			continue // address collision or a confused peer; never serve it
		}
		var recs []engine.PlanRecord
		if len(pe.Plans) > 0 {
			if json.Unmarshal(pe.Plans, &recs) != nil {
				continue
			}
		}
		if engine.ValidateRecords(recs, pe.Err) != nil {
			continue
		}
		rt.peerPlanHits.Add(1)
		return recs, pe.Err, true
	}
	return nil, "", false
}

// PlanComputed pushes a freshly computed plan to the key's other
// replicas. It must not block the optimizing worker, so the fan-out
// runs in a goroutine tracked by the runtime's wait group.
func (t remoteTier) PlanComputed(key string, recs []engine.PlanRecord, errMsg string) {
	rt := t.s.clusterRt
	var targets []string
	for _, node := range rt.cl.ReplicaSet(key) {
		if node != rt.cl.Self() {
			targets = append(targets, node)
		}
	}
	if len(targets) == 0 {
		return
	}
	data, err := json.Marshal(recs)
	if err != nil {
		return
	}
	pe := &api.PlanExport{Key: key, Err: errMsg, Plans: data}
	addr := store.PlanAddr(key)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		for _, node := range targets {
			if !rt.cl.Health().Up(node) {
				continue
			}
			if err := rt.peers[node].PushPlan(ctx, addr, pe); err != nil {
				var ae *api.Error
				if !errors.As(err, &ae) {
					rt.cl.Health().ReportFailure(node, err)
				}
				continue
			}
			rt.cl.Health().ReportSuccess(node)
			rt.plansReplicated.Add(1)
		}
	}()
}

// replicateSnapshot copies a just-saved snapshot to its replica
// peers, as the exact bytes on disk — the byte-identical re-run
// guarantee must survive the hop. Synchronous: when the save-as batch
// returns, the replicas hold the snapshot (or were down).
func (s *Server) replicateSnapshot(ctx context.Context, name string) {
	rt := s.clusterRt
	if rt == nil {
		return
	}
	data, err := s.store.GetSnapshotRaw(name)
	if err != nil {
		return
	}
	_, sp := trace.StartSpan(ctx, "cluster.replicate")
	sp.Set("snapshot", name)
	copies := 0
	for _, node := range rt.cl.ReplicaSet("snapshot:" + name) {
		if node == rt.cl.Self() || !rt.cl.Health().Up(node) {
			continue
		}
		if err := rt.peers[node].PushSnapshot(ctx, name, data); err != nil {
			var ae *api.Error
			if !errors.As(err, &ae) {
				rt.cl.Health().ReportFailure(node, err)
			}
			continue
		}
		rt.cl.Health().ReportSuccess(node)
		rt.snapshotsReplicated.Add(1)
		copies++
	}
	sp.SetInt("replicas", int64(copies)).End()
}

// maxPlanBody and maxSnapshotBody bound the peer replication
// payloads; snapshots of big sweeps run to a few MB.
const (
	maxPlanBody     = 4 << 20
	maxSnapshotBody = 64 << 20
)

func errNotPeer() *api.Error {
	return api.Errorf(http.StatusForbidden, api.CodeForbidden,
		"cluster-internal endpoint (requests must carry %s naming a member)", api.ForwardHeader)
}

// handlePlanGet serves GET /v1/plans/{addr}: the cross-replica
// single-flight lookup. The address is the content hash of the full
// plan key (keys contain newlines and cannot travel in a path); the
// response carries the full key so the caller can verify.
func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	if !s.isPeerRequest(r) {
		s.writeError(w, errNotPeer())
		return
	}
	if s.store == nil {
		s.writeError(w, errNoStore())
		return
	}
	addr := r.PathValue("addr")
	if !store.ValidPlanAddr(addr) {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad plan address %q", addr))
		return
	}
	key, recs, errMsg, ok := s.store.ExportPlan(addr)
	if !ok {
		s.writeError(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no plan at %s", addr))
		return
	}
	data, err := json.Marshal(recs)
	if err != nil {
		s.writeError(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "encoding plan: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.PlanExport{Key: key, Err: errMsg, Plans: data})
}

// handlePlanPut serves PUT /v1/plans/{addr}: a peer replicating a
// finished plan into this node's store. The payload is re-validated —
// address against key, records against the engine's schema — before
// anything is persisted.
func (s *Server) handlePlanPut(w http.ResponseWriter, r *http.Request) {
	if !s.isPeerRequest(r) {
		s.writeError(w, errNotPeer())
		return
	}
	if s.store == nil {
		s.writeError(w, errNoStore())
		return
	}
	addr := r.PathValue("addr")
	if !store.ValidPlanAddr(addr) {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad plan address %q", addr))
		return
	}
	var pe api.PlanExport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPlanBody)).Decode(&pe); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	if store.PlanAddr(pe.Key) != addr {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "plan key does not hash to %s", addr))
		return
	}
	var recs []engine.PlanRecord
	if len(pe.Plans) > 0 {
		if err := json.Unmarshal(pe.Plans, &recs); err != nil {
			s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad plan records: %v", err))
			return
		}
	}
	if err := s.store.ApplyPlan(pe.Key, recs, pe.Err); err != nil {
		s.writeError(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeUnprocessable, "plan rejected: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleSnapshotPut serves PUT /v1/snapshots/{name}: a peer
// replicating a recorded snapshot, raw bytes end to end.
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	if !s.isPeerRequest(r) {
		s.writeError(w, errNotPeer())
		return
	}
	if s.store == nil {
		s.writeError(w, errNoStore())
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "reading snapshot body: %v", err))
		return
	}
	if err := s.store.PutSnapshotRaw(r.PathValue("name"), data); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "snapshot rejected: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// nodeStats assembles the "node" stats section (nil when not
// clustered).
func (s *Server) nodeStats() *api.NodeStats {
	rt := s.clusterRt
	if rt == nil {
		return nil
	}
	ns := &api.NodeStats{
		ID:               rt.cl.Self(),
		RingSize:         rt.cl.Size(),
		Replicas:         rt.cl.Replicas(),
		Peers:            []api.PeerStatus{},
		ForwardsOut:      rt.forwardsOut.Load(),
		ForwardsIn:       rt.forwardsIn.Load(),
		ForwardFallbacks: rt.forwardFallbacks.Load(),
		PeerPlanHits:     rt.peerPlanHits.Load(),
		PlansReplicated:  rt.plansReplicated.Load(),
	}
	for _, p := range rt.cl.Health().Status() {
		ns.Peers = append(ns.Peers, api.PeerStatus{
			Node: p.Node, URL: p.URL, Up: p.Up,
			Failures: p.Failures, LastErr: p.LastErr, SinceMs: p.SinceMs,
		})
	}
	return ns
}

// writeError writes a typed error stamped with this node's identity,
// so a client talking to a cluster can tell which member answered
// (forwarded errors keep the owner's stamp).
func (s *Server) writeError(w http.ResponseWriter, e *api.Error) {
	if e.Node == "" {
		e.Node = s.nodeID()
	}
	writeError(w, e)
}
