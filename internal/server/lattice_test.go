package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/store"
)

// TestLatticeStream drives POST /v1/lattice end to end: the NDJSON
// row stream (ordering, switch-point flags), the summary line,
// per-point agreement with /v1/optimize, the compiled-tier counters
// in /v1/stats, and the Go client's streaming decode of the same
// endpoint.
func TestLatticeStream(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Store: st})

	const gridSpec = "mesh{4..32}x8:bytes=1k..32M"
	req := api.LatticeRequest{Example: "matmul", Grid: gridSpec}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/lattice", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lattice status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var rows []api.LatticeRow
	var sum api.LatticeSummary
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.Contains(line, `"summary"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var row api.LatticeRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 64 {
		t.Fatalf("got %d rows, want 64", len(rows))
	}
	s := sum.Summary
	if s.Name != "matmul" || s.Grid != gridSpec || s.Points != 64 || s.Machines != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.Switches == 0 {
		t.Fatal("no switch points found; the sweep should cross algorithm thresholds")
	}

	// Ordering and switch-flag consistency: payloads strictly ascend
	// within each machine block, the first row of a block never
	// switches, and a switched row names the selection it displaced.
	switches := 0
	for i, row := range rows {
		newMachine := i == 0 || rows[i-1].Machine != row.Machine
		if !newMachine && rows[i-1].ElemBytes >= row.ElemBytes {
			t.Fatalf("row %d: payloads not ascending (%d after %d)", i, row.ElemBytes, rows[i-1].ElemBytes)
		}
		if newMachine && row.Switched {
			t.Fatalf("row %d: first payload of %s flagged as switch", i, row.Machine)
		}
		if row.Switched {
			switches++
			if row.SwitchedFrom != rows[i-1].Collectives {
				t.Fatalf("row %d: switched_from %q != previous collectives %q", i, row.SwitchedFrom, rows[i-1].Collectives)
			}
			if row.Collectives == rows[i-1].Collectives {
				t.Fatalf("row %d: flagged as switch but selection unchanged", i)
			}
		} else if !newMachine && row.Collectives != rows[i-1].Collectives {
			t.Fatalf("row %d: selection changed without a switch flag", i)
		}
	}
	if switches != s.Switches {
		t.Fatalf("summary counts %d switches, rows carry %d", s.Switches, switches)
	}

	// Spot-check compiled pricing against the uncompiled optimize
	// endpoint at a few lattice points, including a switch point.
	checked := 0
	for i, row := range rows {
		if i%23 != 0 && !row.Switched {
			continue
		}
		oresp, obody := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{
			Example: "matmul", Machine: row.Machine, ElemBytes: row.ElemBytes,
		})
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("optimize status %d: %s", oresp.StatusCode, obody)
		}
		var ores api.OptimizeResponse
		if err := json.Unmarshal(obody, &ores); err != nil {
			t.Fatal(err)
		}
		if ores.ModelTimeUs != row.ModelTimeUs || ores.Collectives != row.Collectives ||
			ores.Vectorizable != row.Vectorizable {
			t.Fatalf("lattice row diverges from optimize at %s/%d bytes:\n  row: %+v\n  opt: %+v",
				row.Machine, row.ElemBytes, row, ores)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d equivalence spot-checks ran", checked)
	}

	// The same sweep through the Go client: identical rows, summary,
	// and a compiled-tier memory hit this time.
	c, err := client.New(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	var got []api.LatticeRow
	csum, err := c.Lattice(context.Background(), req, func(row api.LatticeRow) error {
		got = append(got, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) || *csum != sum {
		t.Fatalf("client stream diverges: %d rows, summary %+v", len(got), csum.Summary)
	}
	for i := range got {
		if got[i] != rows[i] {
			t.Fatalf("client row %d diverges: %+v vs %+v", i, got[i], rows[i])
		}
	}

	// Stats surface the new tier: request counter, artifact lookups
	// (one miss then one memory hit), template/eval traffic, and the
	// store's compiled-tier puts.
	stresp, stbody := get(t, ts, "/v1/stats")
	if stresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", stresp.StatusCode)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(stbody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests.Lattice != 2 {
		t.Fatalf("lattice request count %d, want 2", stats.Requests.Lattice)
	}
	cs := stats.Cache
	if cs.CompiledMisses == 0 || cs.CompiledHits == 0 {
		t.Fatalf("compiled artifact counters did not move: %+v", cs)
	}
	if cs.CompiledEvals == 0 || cs.CompiledTemplates == 0 || cs.CompiledTemplateMisses == 0 {
		t.Fatalf("pricer counters did not move: %+v", cs)
	}
	if stats.Store == nil || stats.Store.CompiledPuts == 0 {
		t.Fatalf("store compiled tier saw no puts: %+v", stats.Store)
	}
}

// TestLatticeErrors: malformed lattice requests answer typed 4xx.
func TestLatticeErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, tc := range map[string]struct {
		req  api.LatticeRequest
		code string
	}{
		"missing grid":    {api.LatticeRequest{Example: "matmul"}, api.CodeBadRequest},
		"bad grid":        {api.LatticeRequest{Example: "matmul", Grid: "torus4x4"}, api.CodeBadRequest},
		"missing nest":    {api.LatticeRequest{Grid: "mesh4x4"}, api.CodeBadRequest},
		"unknown example": {api.LatticeRequest{Example: "nope", Grid: "mesh4x4"}, api.CodeBadRequest},
		"both sources":    {api.LatticeRequest{Example: "matmul", Nest: "x", Grid: "mesh4x4"}, api.CodeBadRequest},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/lattice", tc.req)
		var env api.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Fatalf("%s: not an error envelope: %s", name, body)
		}
		if resp.StatusCode != env.Error.Status || env.Error.Code != tc.code {
			t.Fatalf("%s: got %d/%s, want code %s", name, resp.StatusCode, env.Error.Code, tc.code)
		}
	}
	// A giant grid is rejected before any work happens.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/lattice",
		api.LatticeRequest{Example: "matmul", Grid: fmt.Sprintf("mesh{2..%d}x{2..%d}:bytes=1..1M", 1<<20, 1<<20)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized grid answered %d: %s", resp.StatusCode, body)
	}
}
