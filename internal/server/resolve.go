package server

import (
	"container/list"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/affine"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/nestlang"
	"repro/internal/scenarios"
	"repro/internal/store"
)

// scenarioFromRequest resolves the program and fills the machine and
// payload defaults for a single-nest optimize request.
func scenarioFromRequest(req *api.OptimizeRequest) (*scenarios.Scenario, *api.Error) {
	badReq := func(format string, args ...any) *api.Error {
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, format, args...)
	}
	var prog *affine.Program
	switch {
	case req.Example != "" && req.Nest != "":
		return nil, badReq(`give "example" or "nest", not both`)
	case req.Example != "":
		for _, p := range affine.AllExamples() {
			if p.Name == req.Example {
				prog = p
			}
		}
		if prog == nil {
			return nil, badReq("unknown example %q", req.Example)
		}
	case req.Nest != "":
		p, err := nestlang.Parse(req.Nest)
		if err != nil {
			return nil, badReq("parsing nest: %v", err)
		}
		prog = p
	default:
		return nil, badReq(`give "example" or "nest"`)
	}
	m := req.M
	if m == 0 {
		m = 2
	}
	ms := scenarios.MachineSpec{Kind: scenarios.FatTree, P: 32}
	if req.Machine != "" {
		var err error
		ms, err = scenarios.ParseMachineSpec(req.Machine)
		if err != nil {
			return nil, badReq("%v", err)
		}
	}
	n := req.N
	if n <= 0 {
		n = 16
	}
	eb := req.ElemBytes
	if eb <= 0 {
		eb = 64
	}
	return &scenarios.Scenario{
		Name:      prog.Name,
		Program:   prog,
		M:         m,
		Opts:      core.Options{NoMacro: req.NoMacro, NoDecomposition: req.NoDecomposition},
		Machine:   ms,
		Dist:      distrib.Dist2D{D0: distrib.Block{}, D1: distrib.Block{}},
		N:         n,
		ElemBytes: eb,
	}, nil
}

// resolvedBatch is a batch spec after resolution: the normalized
// generation spec (snapshot names resolved to their recorded specs,
// recording stripped), the concrete suite, and the side-effects the
// runner applies (baseline to diff against, snapshot name to save as).
type resolvedBatch struct {
	genSpec      api.BatchSpec
	suite        []scenarios.Scenario
	baseline     *store.Snapshot
	baselineName string
	saveAs       string
	timings      bool
}

// resolveBatch turns a wire spec into a runnable batch. Both the v1
// and the legacy /batch path go through here, so identical specs hit
// the resolved-suite cache instead of regenerating the suite per
// request, and snapshot-named specs re-run the recorded suite.
func (s *Server) resolveBatch(spec api.BatchSpec) (*resolvedBatch, *api.Error) {
	// Timings and SaveAs are per-request behavior, not suite identity:
	// strip them before the spec is compared, cached or recorded.
	rb := &resolvedBatch{saveAs: spec.SaveAs, timings: spec.Timings}
	spec.SaveAs, spec.Timings = "", false

	if spec.Snapshot != "" {
		if spec != (api.BatchSpec{Snapshot: spec.Snapshot}) {
			return nil, api.Errorf(http.StatusBadRequest, api.CodeBadRequest,
				`"snapshot" re-runs a recorded spec; drop the generation fields`)
		}
		if s.store == nil {
			return nil, errNoStore()
		}
		snap, err := s.store.LoadSnapshot(spec.Snapshot)
		if err != nil {
			return nil, api.Errorf(http.StatusNotFound, api.CodeNotFound, "snapshot %q: %v", spec.Snapshot, err)
		}
		if snap.Spec == nil {
			return nil, api.Errorf(http.StatusUnprocessableEntity, api.CodeUnprocessable,
				"snapshot %q predates spec recording and cannot be re-run by name", spec.Snapshot)
		}
		rb.baseline, rb.baselineName = snap, spec.Snapshot
		spec = *snap.Spec
		// Recorded specs are already normalized, but never let a
		// hand-edited snapshot chain into another one (or force
		// timings on every re-run).
		spec.Snapshot, spec.SaveAs, spec.Timings = "", "", false
	}

	if spec.Random < 0 || spec.Deep < 0 ||
		spec.Random > api.MaxSuiteNests || spec.Deep > api.MaxSuiteNests ||
		spec.Random+spec.Deep > api.MaxSuiteNests {
		return nil, api.Errorf(http.StatusBadRequest, api.CodeBadRequest,
			"random+deep must be in [0, %d]", api.MaxSuiteNests)
	}
	if rb.saveAs != "" {
		if s.store == nil {
			return nil, errNoStore()
		}
		if !store.ValidSnapshotName(rb.saveAs) {
			return nil, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad snapshot name %q", rb.saveAs)
		}
	}

	rb.genSpec = spec
	rb.suite = s.resolver.get(spec)
	return rb, nil
}

// SpecConfig converts a normalized wire spec into the scenario
// generator's configuration. Exported so the CLI records the exact
// spec↔config correspondence the server uses.
func SpecConfig(spec api.BatchSpec) scenarios.Config {
	return scenarios.Config{
		Seed:       spec.Seed,
		Random:     spec.Random,
		Deep:       spec.Deep,
		Skew:       spec.Skew,
		BigMeshes:  spec.BigMeshes,
		NoExamples: spec.NoExamples,
		M:          spec.M,
		Opts:       core.Options{NoMacro: spec.NoMacro, NoDecomposition: spec.NoDecomposition},
	}
}

// suiteCacheCap bounds the resolved-suite cache. Suites are a few
// hundred small structs each; a handful of distinct specs covers a
// polling fleet re-running the same recorded suites.
const suiteCacheCap = 32

// suiteResolver memoizes Generate by spec. Generation is
// deterministic in the spec, and the engine never mutates scenarios
// (workers read them and write only their own results), so one cached
// suite can back any number of concurrent runs.
type suiteResolver struct {
	mu      sync.Mutex
	cap     int
	entries map[api.BatchSpec]*list.Element
	lru     *list.List // front = most recently used; values are *suiteCell

	hits, misses atomic.Uint64
}

type suiteCell struct {
	spec  api.BatchSpec
	suite []scenarios.Scenario
}

func newSuiteResolver(capEntries int) *suiteResolver {
	return &suiteResolver{cap: capEntries, entries: make(map[api.BatchSpec]*list.Element), lru: list.New()}
}

// get returns the suite for spec, generating it at most once while it
// stays cached. BatchSpec is a comparable value type, so the map key
// is the spec itself — no canonical string needed.
func (r *suiteResolver) get(spec api.BatchSpec) []scenarios.Scenario {
	r.mu.Lock()
	if el, ok := r.entries[spec]; ok {
		r.lru.MoveToFront(el)
		suite := el.Value.(*suiteCell).suite
		r.mu.Unlock()
		r.hits.Add(1)
		return suite
	}
	r.mu.Unlock()
	// Generate outside the lock: suites can take milliseconds and two
	// racing requests generating the same deterministic suite is
	// cheaper than serializing every resolution.
	suite := scenarios.Generate(SpecConfig(spec))
	r.mu.Lock()
	if el, ok := r.entries[spec]; ok {
		// Lost the race; adopt the winner's slice so callers share.
		r.lru.MoveToFront(el)
		suite = el.Value.(*suiteCell).suite
	} else {
		r.entries[spec] = r.lru.PushFront(&suiteCell{spec: spec, suite: suite})
		for r.lru.Len() > r.cap {
			back := r.lru.Back()
			r.lru.Remove(back)
			delete(r.entries, back.Value.(*suiteCell).spec)
		}
	}
	r.mu.Unlock()
	r.misses.Add(1)
	return suite
}

func (r *suiteResolver) stats() api.SuiteCacheStats {
	return api.SuiteCacheStats{Hits: r.hits.Load(), Misses: r.misses.Load()}
}
