package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
)

// DefaultJobsCap bounds retained finished jobs; running jobs are
// never evicted, so a burst of submissions can exceed the cap until
// its jobs finish.
const DefaultJobsCap = 64

// jobManager owns the async batch jobs of one server: submission,
// polling, cancellation, results, and bounded retention.
type jobManager struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*jobState
	order []string // submission order, oldest first (for listing + eviction)
	cap   int
}

// jobState is one job: the wire-visible Job plus the run machinery.
// The mutex guards every field; the run goroutine and HTTP handlers
// touch jobs concurrently.
type jobState struct {
	mu      sync.Mutex
	job     api.Job
	cancel  context.CancelFunc
	lines   []api.BatchLine
	summary api.BatchSummaryBody
}

func newJobManager(capJobs int) *jobManager {
	if capJobs <= 0 {
		capJobs = DefaultJobsCap
	}
	return &jobManager{jobs: make(map[string]*jobState), cap: capJobs}
}

// create registers a queued job for spec over a suite of total
// scenarios and returns it with its private run context.
func (m *jobManager) create(spec api.BatchSpec, total int) (*jobState, context.Context) {
	// Jobs outlive the submitting request, so the run context is
	// rooted at Background, not at the request.
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	js := &jobState{
		job: api.Job{
			ID:       fmt.Sprintf("job-%06d", m.seq),
			Status:   api.JobQueued,
			Spec:     spec,
			Created:  time.Now().UTC(),
			Progress: api.JobProgress{Total: total},
		},
		cancel: cancel,
	}
	m.jobs[js.job.ID] = js
	m.order = append(m.order, js.job.ID)
	m.evictLocked()
	return js, ctx
}

// evictLocked drops the oldest finished jobs beyond the cap.
func (m *jobManager) evictLocked() {
	if len(m.jobs) <= m.cap {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		js := m.jobs[id]
		if len(m.jobs) > m.cap && js.snapshot().Status.Finished() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (m *jobManager) get(id string) (*jobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	return js, ok
}

// list snapshots every job, most recent first.
func (m *jobManager) list() []api.Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]api.Job, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, m.jobs[m.order[i]].snapshot())
	}
	return out
}

func (m *jobManager) stats() api.JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st api.JobStats
	for _, js := range m.jobs {
		switch js.snapshot().Status {
		case api.JobQueued:
			st.Queued++
		case api.JobRunning:
			st.Running++
		case api.JobDone:
			st.Done++
		case api.JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// shutdown cancels every unfinished job; the server closes the
// session only after their RunStreams return.
func (m *jobManager) shutdown() {
	m.mu.Lock()
	states := make([]*jobState, 0, len(m.jobs))
	for _, js := range m.jobs {
		states = append(states, js)
	}
	m.mu.Unlock()
	for _, js := range states {
		js.cancel()
	}
}

// snapshot copies the wire-visible job under the lock.
func (js *jobState) snapshot() api.Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.job
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.jobReqs.Add(1)
	var spec api.BatchSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&spec); err != nil {
		writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	rb, aerr := s.resolveBatch(spec)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	js, ctx := s.jobs.create(spec, len(rb.suite))
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(ctx, js, rb)
	}()
	writeJSON(w, http.StatusAccepted, js.snapshot())
}

// runJob drives one async batch on the shared session.
func (s *Server) runJob(ctx context.Context, js *jobState, rb *resolvedBatch) {
	js.mu.Lock()
	now := time.Now().UTC()
	js.job.Status = api.JobRunning
	js.job.Started = &now
	js.mu.Unlock()

	sum, runErr := s.runBatch(ctx, rb, func(line api.BatchLine) {
		js.mu.Lock()
		js.lines = append(js.lines, line)
		js.job.Progress.Done = len(js.lines)
		js.mu.Unlock()
	})

	js.mu.Lock()
	defer js.mu.Unlock()
	done := time.Now().UTC()
	js.job.Finished = &done
	js.summary = sum
	if runErr != nil {
		js.job.Status = api.JobCancelled
		js.job.Error = runErr.Error()
		return
	}
	js.job.Status = api.JobDone
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	id := r.PathValue("id")
	js, ok := s.jobs.get(id)
	if !ok {
		writeError(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no job %q", id))
		return nil, false
	}
	return js, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if js, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, js.snapshot())
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.JobList{Jobs: s.jobs.list()})
}

// handleJobCancel cancels a queued or running job. Cancelling a
// finished job is a harmless no-op returning its final state, so
// clients can fire-and-forget.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	js, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	js.cancel()
	writeJSON(w, http.StatusOK, js.snapshot())
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	js, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	js.mu.Lock()
	job := js.job
	results := append([]api.BatchLine(nil), js.lines...)
	summary := js.summary
	js.mu.Unlock()
	if !job.Status.Finished() {
		writeError(w, api.Errorf(http.StatusConflict, api.CodeJobRunning,
			"job %s is %s (%d/%d done); poll until it finishes", job.ID, job.Status, job.Progress.Done, job.Progress.Total))
		return
	}
	writeJSON(w, http.StatusOK, api.JobResults{Job: job, Results: results, Summary: summary})
}
