package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/store"
	"repro/internal/trace"
)

// DefaultJobsCap bounds retained finished jobs; running jobs are
// never evicted, so a burst of submissions can exceed the cap until
// its jobs finish.
const DefaultJobsCap = 64

// jobManager owns the async batch jobs of one server: submission,
// polling, cancellation, results, bounded retention, and — when the
// daemon has a store — persistence. Finished jobs are written to the
// store's jobs/ tier and reloaded at startup, so completed work
// survives restarts; the ttl/keep retention policy of GET /v1/jobs
// prunes both the in-memory map and the persisted tier.
type jobManager struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*jobState
	order []string // submission order, oldest first (for listing + eviction)
	cap   int
	store *store.Store // nil: memory only
}

// jobState is one job: the wire-visible Job plus the run machinery.
// The mutex guards every field; the run goroutine and HTTP handlers
// touch jobs concurrently.
type jobState struct {
	mu      sync.Mutex
	job     api.Job
	cancel  context.CancelFunc
	lines   []api.BatchLine
	summary api.BatchSummaryBody
}

func newJobManager(capJobs int, st *store.Store) *jobManager {
	if capJobs <= 0 {
		capJobs = DefaultJobsCap
	}
	m := &jobManager{jobs: make(map[string]*jobState), cap: capJobs, store: st}
	m.reload()
	return m
}

// reload restores persisted finished jobs from the store, oldest
// first, and advances the id sequence past them so new submissions
// never collide with reloaded ids. Unreadable records are skipped
// (the store logs them); reloading never fails the daemon.
func (m *jobManager) reload() {
	if m.store == nil {
		return
	}
	ids, err := m.store.ListJobs()
	if err != nil {
		return
	}
	for _, id := range ids {
		rec, err := m.store.LoadJob(id)
		if err != nil || !rec.Job.Status.Finished() {
			continue
		}
		js := &jobState{
			job:     rec.Job,
			cancel:  func() {}, // nothing to cancel: the run is long gone
			lines:   rec.Results,
			summary: rec.Summary,
		}
		m.jobs[id] = js
		m.order = append(m.order, id)
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	m.evictLocked()
}

// persist writes a finished job through to the store (no-op without
// one). The write happens under the manager lock, after re-checking
// membership: a job becomes visibly Finished before it is persisted,
// so a concurrent retention prune (or cap eviction) may have already
// retired it — writing the file afterwards would resurrect a
// deliberately deleted job at the next restart. Failures degrade to
// memory-only retention; the store records a warning visible in
// /v1/stats.
func (m *jobManager) persist(js *jobState) {
	if m.store == nil {
		return
	}
	js.mu.Lock()
	rec := store.JobRecord{Job: js.job, Results: js.lines, Summary: js.summary}
	js.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[rec.Job.ID]; !ok {
		return // retired while finishing: stay deleted
	}
	_ = m.store.SaveJob(&rec)
}

// create registers a queued job for spec over a suite of total
// scenarios and returns it with its private run context.
func (m *jobManager) create(spec api.BatchSpec, total int) (*jobState, context.Context) {
	// Jobs outlive the submitting request, so the run context is
	// rooted at Background, not at the request.
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	js := &jobState{
		job: api.Job{
			ID:       fmt.Sprintf("job-%06d", m.seq),
			Status:   api.JobQueued,
			Spec:     spec,
			Created:  time.Now().UTC(),
			Progress: api.JobProgress{Total: total},
		},
		cancel: cancel,
	}
	m.jobs[js.job.ID] = js
	m.order = append(m.order, js.job.ID)
	m.evictLocked()
	return js, ctx
}

// evictLocked drops the oldest finished jobs beyond the cap, from
// memory and from the persisted tier (the cap is the retention bound;
// a job evicted here is gone, not merely cold).
func (m *jobManager) evictLocked() {
	if len(m.jobs) <= m.cap {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		js := m.jobs[id]
		if len(m.jobs) > m.cap && js.snapshot().Status.Finished() {
			m.dropLocked(id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// dropLocked removes one job from the map and the persisted tier
// (the caller maintains m.order).
func (m *jobManager) dropLocked(id string) {
	delete(m.jobs, id)
	if m.store != nil {
		_ = m.store.DeleteJob(id)
	}
}

// prune applies the ttl/keep retention policy and returns how many
// jobs it dropped: finished jobs whose completion is older than ttl
// are dropped (0: no age bound), then all but the newest keep
// finished jobs are dropped (0: no count bound). The two criteria run
// as separate passes in that order — otherwise an expired job later
// in submission order would inflate the finished count and push a
// non-expired older job over the count bound. Queued and running jobs
// are never pruned. Dropping removes the job from memory and from the
// persisted tier.
func (m *jobManager) prune(ttl time.Duration, keep int, now time.Time) int {
	if ttl <= 0 && keep <= 0 {
		return 0
	}
	dropped := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	if ttl > 0 {
		kept := m.order[:0]
		for _, id := range m.order {
			job := m.jobs[id].snapshot()
			if job.Status.Finished() && job.Finished != nil && now.Sub(*job.Finished) > ttl {
				m.dropLocked(id)
				dropped++
				continue
			}
			kept = append(kept, id)
		}
		m.order = kept
	}
	if keep > 0 {
		finished := 0
		for _, id := range m.order {
			if m.jobs[id].snapshot().Status.Finished() {
				finished++
			}
		}
		kept := m.order[:0]
		for _, id := range m.order {
			// m.order is oldest first, so dropping while more than keep
			// finished jobs remain keeps exactly the newest keep.
			if m.jobs[id].snapshot().Status.Finished() && finished > keep {
				m.dropLocked(id)
				dropped++
				finished--
				continue
			}
			kept = append(kept, id)
		}
		m.order = kept
	}
	return dropped
}

func (m *jobManager) get(id string) (*jobState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[id]
	return js, ok
}

// list snapshots every job, most recent first.
func (m *jobManager) list() []api.Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]api.Job, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, m.jobs[m.order[i]].snapshot())
	}
	return out
}

func (m *jobManager) stats() api.JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st api.JobStats
	for _, js := range m.jobs {
		switch js.snapshot().Status {
		case api.JobQueued:
			st.Queued++
		case api.JobRunning:
			st.Running++
		case api.JobDone:
			st.Done++
		case api.JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// shutdown cancels every unfinished job; the server closes the
// session only after their RunStreams return.
func (m *jobManager) shutdown() {
	m.mu.Lock()
	states := make([]*jobState, 0, len(m.jobs))
	for _, js := range m.jobs {
		states = append(states, js)
	}
	m.mu.Unlock()
	for _, js := range states {
		js.cancel()
	}
}

// snapshot copies the wire-visible job under the lock.
func (js *jobState) snapshot() api.Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.job
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.jobReqs.Add(1)
	var spec api.BatchSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&spec); err != nil {
		s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	rb, aerr := s.resolveBatch(spec)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	js, ctx := s.jobs.create(spec, len(rb.suite))
	// The job outlives the submitting request, so it gets its own root
	// trace — minted before the 202 so the response carries the ID —
	// linked back to the submitting request's trace via submitted_by.
	ctx, root := trace.StartRoot(ctx, s.tracer, "job", "")
	root.Set("job_id", js.job.ID)
	if sub := trace.FromContext(r.Context()); sub != nil {
		root.Set("submitted_by", sub.TraceID().String())
	}
	js.mu.Lock()
	js.job.TraceID = root.TraceID().String()
	js.mu.Unlock()
	s.logger.Info("job submitted",
		slog.String("job_id", js.job.ID),
		slog.Int("scenarios", len(rb.suite)),
		slog.String("trace_id", js.job.TraceID))
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(ctx, js, rb, root)
	}()
	writeJSON(w, http.StatusAccepted, js.snapshot())
}

// runJob drives one async batch on the shared session, under the
// job's own root span.
func (s *Server) runJob(ctx context.Context, js *jobState, rb *resolvedBatch, root *trace.Span) {
	js.mu.Lock()
	now := time.Now().UTC()
	js.job.Status = api.JobRunning
	js.job.Started = &now
	js.mu.Unlock()

	sum, runErr := s.runBatch(ctx, rb, func(line api.BatchLine) {
		js.mu.Lock()
		js.lines = append(js.lines, line)
		js.job.Progress.Done = len(js.lines)
		js.mu.Unlock()
	})

	js.mu.Lock()
	done := time.Now().UTC()
	js.job.Finished = &done
	js.summary = sum
	if runErr != nil {
		js.job.Status = api.JobCancelled
		js.job.Error = runErr.Error()
		root.Set("error", js.job.Error)
	} else {
		js.job.Status = api.JobDone
	}
	job := js.job
	js.mu.Unlock()
	root.Set("status", string(job.Status)).SetInt("scenarios", int64(sum.Scenarios)).End()
	s.logger.Info("job finished",
		slog.String("job_id", job.ID),
		slog.String("status", string(job.Status)),
		slog.Int("scenarios", sum.Scenarios),
		slog.Int("errors", sum.Errors),
		slog.Duration("duration", done.Sub(job.Created)),
		slog.String("trace_id", job.TraceID))
	// Persist the terminal state so the job survives a daemon restart
	// (cancelled jobs too: their completed prefix is real work).
	s.jobs.persist(js)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	id := r.PathValue("id")
	js, ok := s.jobs.get(id)
	if !ok {
		s.writeError(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no job %q", id))
		return nil, false
	}
	return js, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if js, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, js.snapshot())
	}
}

// handleJobList lists jobs, most recent first. The optional ttl and
// keep query parameters apply the retention policy before listing:
// ?ttl=1h drops finished jobs that completed more than an hour ago,
// ?keep=10 drops all but the 10 newest finished jobs. Both prune the
// persisted tier too, so retention survives restarts; queued and
// running jobs are never pruned.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var ttl time.Duration
	var keep int
	if v := q.Get("ttl"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad ttl %q (want a positive Go duration like 30m)", v))
			return
		}
		ttl = d
	}
	if v := q.Get("keep"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad keep %q (want a non-negative integer)", v))
			return
		}
		keep = n
	}
	s.jobs.prune(ttl, keep, time.Now().UTC())
	writeJSON(w, http.StatusOK, api.JobList{Jobs: s.jobs.list()})
}

// handleJobCancel cancels a queued or running job. Cancelling a
// finished job is a harmless no-op returning its final state, so
// clients can fire-and-forget.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	js, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	js.cancel()
	writeJSON(w, http.StatusOK, js.snapshot())
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	js, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	js.mu.Lock()
	job := js.job
	results := append([]api.BatchLine(nil), js.lines...)
	summary := js.summary
	js.mu.Unlock()
	if !job.Status.Finished() {
		s.writeError(w, api.Errorf(http.StatusConflict, api.CodeJobRunning,
			"job %s is %s (%d/%d done); poll until it finishes", job.ID, job.Status, job.Progress.Done, job.Progress.Total))
		return
	}
	writeJSON(w, http.StatusOK, api.JobResults{Job: job, Results: results, Summary: summary})
}
