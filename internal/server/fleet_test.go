package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/trace"
)

// opsServer exposes a cluster node's ops listener for tests.
func opsServer(t *testing.T, n *clusterNode) *httptest.Server {
	t.Helper()
	ops := httptest.NewServer(n.srv.OpsHandler())
	t.Cleanup(ops.Close)
	return ops
}

// forwardedTraceID runs one request via a that the ring forwards to b
// and returns its trace ID. Both recorders hold the trace afterwards:
// a's with the cluster.forward span, b's with the forwarded request's
// own root adopted from a's traceparent.
func forwardedTraceID(t *testing.T, a *clusterNode) string {
	t.Helper()
	req := requestOwnedBy(t, a, "nodeB")
	resp, out, body := optimizeVia(t, a, req, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize via A: status %d: %s", resp.StatusCode, body)
	}
	if out.Node != "nodeB" {
		t.Fatalf("answering node %q, want nodeB", out.Node)
	}
	id := resp.Header.Get(TraceHeader)
	if len(id) != 32 {
		t.Fatalf("Trace-Id %q, want a 32-hex trace ID", id)
	}
	return id
}

// TestClusterTraceAssembly is the tentpole acceptance test: after a
// forwarded request, the origin node's GET /debug/traces/{id} returns
// one stitched tree holding spans from both nodes, with the remote
// request's root nested under the cluster.forward span; ?local=1
// returns the local span set only (the fan-out's own loop guard); and
// the listing carries node_id and root status. Run under -race, the
// repeated fetch also pins down merge determinism.
func TestClusterTraceAssembly(t *testing.T) {
	a, b := startClusterPair(t, nil)
	id := forwardedTraceID(t, a)
	ops := opsServer(t, a)

	td, spans := getTrace(t, ops, id)
	if td.NodeID != "nodeA" {
		t.Errorf("detail node_id %q, want nodeA", td.NodeID)
	}
	if len(td.MissingNodes) != 0 {
		t.Errorf("missing_nodes %v with both nodes up", td.MissingNodes)
	}
	nodesSeen := map[string]bool{}
	for _, ns := range spans {
		for _, n := range ns {
			nodesSeen[n.NodeID] = true
		}
	}
	if !nodesSeen["nodeA"] || !nodesSeen["nodeB"] {
		t.Fatalf("merged tree spans from %v, want both nodes", nodesSeen)
	}
	fwds := spans["cluster.forward"]
	if len(fwds) != 1 {
		t.Fatalf("%d cluster.forward spans, want 1", len(fwds))
	}
	var remoteRoot *trace.SpanNode
	for _, c := range fwds[0].Children {
		if c.NodeID == "nodeB" && c.Name == "http" {
			remoteRoot = c
		}
	}
	if remoteRoot == nil {
		t.Fatalf("remote request root not nested under cluster.forward: %+v", fwds[0].Children)
	}
	if len(spans["scenario"]) == 0 || spans["scenario"][0].NodeID != "nodeB" {
		t.Errorf("remote scenario span missing or unstamped: %+v", spans["scenario"])
	}

	// Merged output is deterministic fetch over fetch.
	again, _ := getTrace(t, ops, id)
	if !equalJSON(t, td, again) {
		t.Error("repeated assembly returned a different tree")
	}

	// ?local=1 disables the fan-out: nodeA's own spans only.
	resp, err := ops.Client().Get(ops.URL + "/debug/traces/" + id + "?local=1")
	if err != nil {
		t.Fatal(err)
	}
	var localTd traceDetail
	err = json.NewDecoder(resp.Body).Decode(&localTd)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var walk func(ns []*trace.SpanNode)
	walk = func(ns []*trace.SpanNode) {
		for _, n := range ns {
			if n.NodeID != "nodeA" {
				t.Errorf("?local=1 leaked a %s span (%s)", n.NodeID, n.Name)
			}
			walk(n.Children)
		}
	}
	walk(localTd.Spans)

	// The listing triages without opening traces: node, spans, status.
	lresp, err := ops.Client().Get(ops.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list traceListResponse
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil || len(list.Traces) == 0 {
		t.Fatalf("trace listing: err %v, %+v", err, list)
	}
	for _, sum := range list.Traces {
		if sum.TraceID != id {
			continue
		}
		if sum.NodeID != "nodeA" || sum.Status != http.StatusOK || sum.Spans == 0 {
			t.Errorf("listing entry %+v, want node_id nodeA, status 200, spans > 0", sum)
		}
	}

	// The same stitched view reaches B's ops listener for B's half.
	opsB := opsServer(t, b)
	if tdB, _ := getTrace(t, opsB, id); tdB.NodeID != "nodeB" {
		t.Errorf("B's detail node_id %q", tdB.NodeID)
	}
}

// TestClusterTraceAssemblyPeerDown: the peer vanishing between the
// request and the trace fetch yields the local half plus a
// missing_nodes marker — HTTP 200, never an error.
func TestClusterTraceAssemblyPeerDown(t *testing.T) {
	a, b := startClusterPair(t, nil)
	id := forwardedTraceID(t, a)
	b.ts.Close() // nodeB goes away before anyone looks at the trace

	td, spans := getTrace(t, opsServer(t, a), id)
	if len(td.MissingNodes) != 1 || td.MissingNodes[0] != "nodeB" {
		t.Errorf("missing_nodes %v, want [nodeB]", td.MissingNodes)
	}
	if len(spans["cluster.forward"]) != 1 {
		t.Error("local half of the tree lost")
	}
	for _, ns := range spans {
		for _, n := range ns {
			if n.NodeID == "nodeB" {
				t.Errorf("span %s claims nodeB with nodeB down", n.Name)
			}
		}
	}
	// The failed fetch marked the peer down: the next assembly skips it
	// without a connection attempt and still reports it missing.
	if a.srv.clusterRt.cl.Health().Up("nodeB") {
		t.Error("failed trace fetch did not mark nodeB down")
	}
	if td2, _ := getTrace(t, opsServer(t, a), id); len(td2.MissingNodes) != 1 {
		t.Errorf("second fetch missing_nodes %v", td2.MissingNodes)
	}
}

// TestClusterTraceEvictedOnRemote: the remote ring evicting the trace
// is a healthy miss — partial tree, missing_nodes marker, and the peer
// stays up.
func TestClusterTraceEvictedOnRemote(t *testing.T) {
	a, b := startClusterPair(t, nil)
	id := forwardedTraceID(t, a)

	// Flood B's ring until the forwarded trace falls out.
	for i := 0; i < trace.DefaultRecorderCap+8; i++ {
		_, root := trace.StartRoot(context.Background(), b.srv.tracer, fmt.Sprintf("filler-%d", i), "")
		root.End()
	}
	if _, ok := b.srv.tracer.Get(id); ok {
		t.Fatal("trace still in B's ring; eviction premise broken")
	}

	td, spans := getTrace(t, opsServer(t, a), id)
	if len(td.MissingNodes) != 1 || td.MissingNodes[0] != "nodeB" {
		t.Errorf("missing_nodes %v, want [nodeB]", td.MissingNodes)
	}
	if len(spans["cluster.forward"]) != 1 {
		t.Error("local half of the tree lost")
	}
	if !a.srv.clusterRt.cl.Health().Up("nodeB") {
		t.Error("an evicted trace (healthy 404) marked the peer down")
	}
}

// TestClusterPeerTraceGated: the API-listener trace and metrics
// endpoints are cluster-internal, like the replication routes.
func TestClusterPeerTraceGated(t *testing.T) {
	a, _ := startClusterPair(t, nil)
	id := forwardedTraceID(t, a)

	resp, body := get(t, a.ts, "/debug/traces/"+id)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("peer trace without credential: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = get(t, a.ts, "/metrics/peer")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("peer metrics without credential: status %d", resp.StatusCode)
	}

	// With the credential, the raw local span set comes back.
	hr, _ := http.NewRequest(http.MethodGet, a.ts.URL+"/debug/traces/"+id+"?local=1", nil)
	hr.Header.Set(api.ForwardHeader, "nodeB")
	presp, err := a.ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var td trace.TraceData
	err = json.NewDecoder(presp.Body).Decode(&td)
	presp.Body.Close()
	if err != nil || presp.StatusCode != http.StatusOK {
		t.Fatalf("peer trace fetch: status %d, err %v", presp.StatusCode, err)
	}
	if td.TraceID != id || td.NodeID != "nodeA" || len(td.Spans) == 0 {
		t.Errorf("peer trace body: %+v", td)
	}

	// Standalone daemons do not route the peer endpoints at all.
	_, ts := newTestServer(t, Options{})
	if resp, _ := get(t, ts, "/debug/traces/"+id); resp.StatusCode != http.StatusNotFound {
		t.Errorf("standalone routes the peer trace endpoint: status %d", resp.StatusCode)
	}
}

// TestClusterStats: /v1/cluster/stats reports every member's snapshot
// plus the rollup; a dead peer degrades to an unreachable entry
// without failing the endpoint.
func TestClusterStats(t *testing.T) {
	a, b := startClusterPair(t, nil)
	forwardedTraceID(t, a) // one forwarded optimize: counters on both sides

	resp, body := get(t, a.ts, "/v1/cluster/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster stats status %d: %s", resp.StatusCode, body)
	}
	var cs api.ClusterStatsResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Node != "nodeA" {
		t.Errorf("reporting node %q", cs.Node)
	}
	if len(cs.Members) != 2 || cs.Members[0].ID != "nodeA" || cs.Members[1].ID != "nodeB" {
		t.Fatalf("members %+v, want nodeA and nodeB sorted", cs.Members)
	}
	for _, m := range cs.Members {
		if m.Status != api.MemberOK || m.Stats == nil || m.URL == "" {
			t.Errorf("member %s: %+v", m.ID, m)
		}
	}
	ru := cs.Rollup
	if ru.Nodes != 2 || ru.Unreachable != 0 {
		t.Errorf("rollup nodes/unreachable = %d/%d", ru.Nodes, ru.Unreachable)
	}
	if ru.ForwardsOut != 1 || ru.ForwardsIn != 1 {
		t.Errorf("rollup forwards out/in = %d/%d, want 1/1", ru.ForwardsOut, ru.ForwardsIn)
	}
	if ru.Workers != cs.Members[0].Stats.Workers+cs.Members[1].Stats.Workers {
		t.Errorf("rollup workers %d not the member sum", ru.Workers)
	}
	if ru.Phases.Scenarios == 0 || ru.Phases.TotalUs <= 0 {
		t.Errorf("rollup phases %+v", ru.Phases)
	}
	if ru.KernelHitRate < 0 || ru.KernelHitRate > 1 || ru.PlanHitRate < 0 || ru.PlanHitRate > 1 {
		t.Errorf("hit rates out of range: plan %g kernel %g", ru.PlanHitRate, ru.KernelHitRate)
	}

	// Kill B: the endpoint keeps answering, B becomes unreachable.
	b.ts.Close()
	resp, body = get(t, a.ts, "/v1/cluster/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster stats with dead peer: status %d", resp.StatusCode)
	}
	cs = api.ClusterStatsResponse{}
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	var down *api.ClusterMemberStats
	for i := range cs.Members {
		if cs.Members[i].ID == "nodeB" {
			down = &cs.Members[i]
		}
	}
	if down == nil || down.Status != api.MemberUnreachable || down.Error == "" || down.Stats != nil {
		t.Fatalf("dead member entry: %+v", down)
	}
	if cs.Rollup.Unreachable != 1 || cs.Rollup.Nodes != 2 {
		t.Errorf("rollup with dead peer: %+v", cs.Rollup)
	}
	// A's own forward counter survives in the rollup.
	if cs.Rollup.ForwardsOut != 1 {
		t.Errorf("rollup forwards_out = %d after losing B", cs.Rollup.ForwardsOut)
	}
}

// TestClusterStatsStandalone: a standalone daemon answers the same
// endpoint with itself as the only member, so dashboards need not
// care about the deployment shape.
func TestClusterStatsStandalone(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := get(t, ts, "/v1/cluster/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cs api.ClusterStatsResponse
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Node != "" || len(cs.Members) != 1 || cs.Members[0].ID != "self" {
		t.Errorf("standalone members: node %q, %+v", cs.Node, cs.Members)
	}
	if cs.Members[0].Stats == nil || cs.Rollup.Nodes != 1 || cs.Rollup.Unreachable != 0 {
		t.Errorf("standalone rollup: %+v", cs.Rollup)
	}
}

// TestClusterMetricsFederation: GET /metrics/cluster on the ops
// listener merges both nodes' scrapes into one exposition with node
// labels, single metadata per family, and the runtime telemetry
// present for every member.
func TestClusterMetricsFederation(t *testing.T) {
	a, b := startClusterPair(t, nil)
	forwardedTraceID(t, a)

	resp, body := get(t, opsServer(t, a), "/metrics/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/cluster status %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		`resopt_go_goroutines{node="nodeA"}`,
		`resopt_go_goroutines{node="nodeB"}`,
		`resopt_cluster_forwards_total{node="nodeA",peer="nodeB",direction="out"} 1`,
		`resopt_cluster_forwards_total{node="nodeB",peer="nodeA",direction="in"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated scrape missing %q", want)
		}
	}
	for _, meta := range []string{"# TYPE resopt_go_goroutines gauge", "# TYPE resopt_cluster_forwards_total counter"} {
		if n := strings.Count(out, meta); n != 1 {
			t.Errorf("%q appears %d times in the federated scrape, want once", meta, n)
		}
	}

	// A dead peer is simply absent, not an error.
	b.ts.Close()
	resp, body = get(t, opsServer(t, a), "/metrics/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/cluster with dead peer: status %d", resp.StatusCode)
	}
	out = string(body)
	if !strings.Contains(out, `node="nodeA"`) || strings.Contains(out, `node="nodeB"`) {
		t.Error("dead peer handling: want nodeA present, nodeB absent")
	}
}

// TestClusterHealthzDegraded: /healthz reports the fleet view — ok
// with every peer up, degraded (still HTTP 200) when one is marked
// down — on both the API and ops listeners.
func TestClusterHealthzDegraded(t *testing.T) {
	a, _ := startClusterPair(t, nil)
	check := func(wantStatus string, wantUp float64) {
		t.Helper()
		for _, src := range []struct {
			name string
			ts   *httptest.Server
		}{{"api", a.ts}, {"ops", opsServer(t, a)}} {
			resp, body := get(t, src.ts, "/healthz")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s healthz status %d", src.name, resp.StatusCode)
			}
			var h map[string]any
			if err := json.Unmarshal(body, &h); err != nil {
				t.Fatal(err)
			}
			if h["status"] != wantStatus || h["node"] != "nodeA" {
				t.Errorf("%s healthz %v, want status %q", src.name, h, wantStatus)
			}
			if h["peers_up"] != wantUp || h["peers_total"] != 1.0 {
				t.Errorf("%s healthz peers %v/%v, want %v/1", src.name, h["peers_up"], h["peers_total"], wantUp)
			}
		}
	}
	check("ok", 1)
	a.srv.clusterRt.cl.Health().ReportFailure("nodeB", fmt.Errorf("test: down"))
	check("degraded", 0)
	a.srv.clusterRt.cl.Health().ReportSuccess("nodeB")
	check("ok", 1)
}
