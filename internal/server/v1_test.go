package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// batchNDJSON posts a batch spec and returns the raw line bytes
// (without the summary) plus the decoded summary.
func batchNDJSON(t *testing.T, ts *httptest.Server, spec api.BatchSpec) ([]string, api.BatchSummary) {
	t.Helper()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/batch", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var lines []string
	var sum api.BatchSummary
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.Contains(line, `"summary"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		lines = append(lines, line)
	}
	return lines, sum
}

// TestSnapshotRerunByteIdentical is the acceptance criterion: a batch
// submitted by snapshot name resolves the recorded spec and returns
// byte-identical result lines, and the server-side diff is clean.
func TestSnapshotRerunByteIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Store: st})

	spec := api.BatchSpec{Seed: 5, Random: 2, NoExamples: true, SaveAs: "suiteA"}
	orig, origSum := batchNDJSON(t, ts, spec)
	if origSum.Summary.Snapshot != "suiteA" {
		t.Fatalf("run was not recorded: summary %+v", origSum.Summary)
	}

	rerun, rerunSum := batchNDJSON(t, ts, api.BatchSpec{Snapshot: "suiteA"})
	if strings.Join(rerun, "\n") != strings.Join(orig, "\n") {
		t.Errorf("re-run by snapshot name is not byte-identical:\n orig: %v\nrerun: %v", orig, rerun)
	}
	d := rerunSum.Summary.Diff
	if d == nil {
		t.Fatal("re-run summary has no server-side diff")
	}
	if d.Baseline != "suiteA" || d.Regressions != 0 || d.Changed != 0 || d.Added != 0 || d.Removed != 0 {
		t.Errorf("diff not clean: %+v", d)
	}
	if d.Unchanged != origSum.Summary.Scenarios {
		t.Errorf("diff unchanged = %d, want %d", d.Unchanged, origSum.Summary.Scenarios)
	}

	// The snapshot listing flags it re-runnable.
	resp, body := get(t, ts, "/v1/snapshots")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshots status %d", resp.StatusCode)
	}
	var list api.SnapshotList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Snapshots) != 1 || list.Snapshots[0].Name != "suiteA" || !list.Snapshots[0].Rerunnable {
		t.Errorf("snapshot list %+v", list)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSnapshotSpecErrors: snapshot-named specs reject conflicting
// generation fields, unknown names, and spec-less snapshots.
func TestSnapshotSpecErrors(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot("nospec", &store.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Store: st})

	for name, tc := range map[string]struct {
		spec api.BatchSpec
		code int
		kind string
	}{
		"mixed":    {api.BatchSpec{Snapshot: "x", Random: 3}, http.StatusBadRequest, api.CodeBadRequest},
		"unknown":  {api.BatchSpec{Snapshot: "missing"}, http.StatusNotFound, api.CodeNotFound},
		"no spec":  {api.BatchSpec{Snapshot: "nospec"}, http.StatusUnprocessableEntity, api.CodeUnprocessable},
		"bad save": {api.BatchSpec{Random: 1, SaveAs: "../evil"}, http.StatusBadRequest, api.CodeBadRequest},
	} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/batch", tc.spec)
		var env api.ErrorEnvelope
		if resp.StatusCode != tc.code || json.Unmarshal(body, &env) != nil || env.Error == nil || env.Error.Code != tc.kind {
			t.Errorf("%s: status %d body %s, want %d/%s", name, resp.StatusCode, body, tc.code, tc.kind)
		}
	}
}

// TestNoStoreTyped503: without a store, snapshot-dependent requests
// are a typed 503. (Separate test: engine sessions serialize, so a
// second live server inside another test would deadlock.)
func TestNoStoreTyped503(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, do := range map[string]func() (*http.Response, []byte){
		"snapshot spec": func() (*http.Response, []byte) {
			return postJSON(t, ts.Client(), ts.URL+"/v1/batch", api.BatchSpec{Snapshot: "x"})
		},
		"snapshot list": func() (*http.Response, []byte) { return get(t, ts, "/v1/snapshots") },
		"save_as": func() (*http.Response, []byte) {
			return postJSON(t, ts.Client(), ts.URL+"/v1/batch", api.BatchSpec{Random: 1, SaveAs: "s"})
		},
	} {
		resp, body := do()
		var env api.ErrorEnvelope
		if resp.StatusCode != http.StatusServiceUnavailable || json.Unmarshal(body, &env) != nil || env.Error == nil || env.Error.Code != api.CodeNoStore {
			t.Errorf("%s: status %d body %s, want typed 503", name, resp.StatusCode, body)
		}
	}
}

// TestJobLifecycle: submit → poll → results, with progress counts and
// spec echo.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	spec := api.BatchSpec{Seed: 4, Random: 2, NoExamples: true}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Spec != spec || job.Progress.Total == 0 {
		t.Fatalf("submitted job %+v", job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !job.Status.Finished() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", job.ID, job)
		}
		time.Sleep(10 * time.Millisecond)
		resp, body = get(t, ts, "/v1/jobs/"+job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.Status != api.JobDone {
		t.Fatalf("job finished as %s: %+v", job.Status, job)
	}
	if job.Progress.Done != job.Progress.Total {
		t.Errorf("progress %+v not complete", job.Progress)
	}
	if job.Started == nil || job.Finished == nil {
		t.Error("missing started/finished timestamps")
	}

	resp, body = get(t, ts, "/v1/jobs/"+job.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, body)
	}
	var results api.JobResults
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Results) != job.Progress.Total {
		t.Errorf("results has %d lines, want %d", len(results.Results), job.Progress.Total)
	}
	if results.Summary.Scenarios != job.Progress.Total {
		t.Errorf("summary %+v", results.Summary)
	}

	// And a job batch matches the synchronous batch of the same spec.
	lines, _ := batchNDJSON(t, ts, spec)
	for i, l := range lines {
		var bl api.BatchLine
		if err := json.Unmarshal([]byte(l), &bl); err != nil {
			t.Fatal(err)
		}
		if bl != results.Results[i] {
			t.Errorf("line %d: job %+v ≠ batch %+v", i, results.Results[i], bl)
		}
	}

	// The job shows up in the listing.
	resp, body = get(t, ts, "/v1/jobs")
	var list api.JobList
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &list) != nil || len(list.Jobs) == 0 {
		t.Errorf("job list: status %d body %s", resp.StatusCode, body)
	}
}

// TestJobResultsConflictAndCancel: results before completion are a
// typed 409; DELETE cancels a running job which then reports its
// partial results with a cancelled summary.
func TestJobResultsConflictAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// A big enough suite that it is still running when we poke it.
	spec := api.BatchSpec{Seed: 6, Random: 40, Deep: 5}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, ts, "/v1/jobs/"+job.ID+"/results")
	var env api.ErrorEnvelope
	if resp.StatusCode != http.StatusConflict || json.Unmarshal(body, &env) != nil || env.Error == nil || env.Error.Code != api.CodeJobRunning {
		t.Fatalf("early results: status %d body %s", resp.StatusCode, body)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body = get(t, ts, "/v1/jobs/"+job.ID)
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status.Finished() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job never settled: %+v", job)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The job may have finished before the cancel landed; both ends
	// are legal, but a cancelled job must carry the context error and
	// serve its partial results.
	if job.Status == api.JobCancelled {
		if job.Error == "" {
			t.Error("cancelled job has no error")
		}
		resp, body = get(t, ts, "/v1/jobs/"+job.ID+"/results")
		var results api.JobResults
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &results) != nil {
			t.Fatalf("cancelled results: status %d", resp.StatusCode)
		}
		if !results.Summary.Cancelled {
			t.Errorf("cancelled summary %+v", results.Summary)
		}
		if len(results.Results) >= job.Progress.Total {
			t.Errorf("cancelled job has full results: %d of %d", len(results.Results), job.Progress.Total)
		}
	}

	// Unknown job IDs are typed 404s on every job route.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/results"} {
		resp, body = get(t, ts, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d body %s", path, resp.StatusCode, body)
		}
	}
}

// TestBatchClientDisconnect: a client closing its connection mid-
// stream cancels the engine work at a scenario boundary and leaves
// the session healthy for the next request.
func TestBatchClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})

	spec, _ := json.Marshal(api.BatchSpec{Seed: 8, Random: 60, Deep: 5})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line of the stream, then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first byte: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The shared session must settle and stay usable: a full request
	// afterwards succeeds. (Server-side the RunStream returns with the
	// request context's error; give it a moment to unwind.)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session unhealthy after disconnect: status %d body %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = srv
}

// TestRateLimit: with -rate configured, a client hammering the API
// gets typed 429s with Retry-After, and the rejection is counted.
func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{RatePerSec: 1, RateBurst: 2})

	var limited int
	var lastBody []byte
	var retryAfter string
	for i := 0; i < 10; i++ {
		resp, body := get(t, ts, "/v1/stats")
		if resp.StatusCode == http.StatusTooManyRequests {
			limited++
			lastBody = body
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if limited == 0 {
		t.Fatal("10 rapid requests at 1 rps / burst 2 were never limited")
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(lastBody, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeRateLimited {
		t.Errorf("429 body %s", lastBody)
	}
	if retryAfter == "" {
		t.Error("429 without Retry-After")
	}

	// The counter surfaces once a request gets through again.
	time.Sleep(1100 * time.Millisecond)
	resp, body := get(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after cooldown: %d", resp.StatusCode)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests.RateLimited == 0 {
		t.Error("rate-limited requests not counted")
	}
}

// TestRateKeyModes: the api-key and forwarded modes give distinct
// clients distinct buckets (all test traffic shares one source IP),
// while unknown header values fall back to the shared IP bucket.
func TestRateKeyModes(t *testing.T) {
	headerGet := func(ts *httptest.Server, header, value string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		if value != "" {
			req.Header.Set(header, value)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	t.Run("api-key", func(t *testing.T) {
		_, ts := newTestServer(t, Options{RatePerSec: 0.001, RateBurst: 2, RateKey: RateKeyAPIKey})
		// Two clients, two keys: each gets its own burst of 2.
		for i := 0; i < 2; i++ {
			if code := headerGet(ts, "X-Api-Key", "alpha"); code != http.StatusOK {
				t.Fatalf("alpha request %d: %d", i, code)
			}
			if code := headerGet(ts, "X-Api-Key", "beta"); code != http.StatusOK {
				t.Fatalf("beta request %d: %d", i, code)
			}
		}
		// Both buckets are now empty; a third request per key is limited.
		if code := headerGet(ts, "X-Api-Key", "alpha"); code != http.StatusTooManyRequests {
			t.Errorf("alpha over burst: %d, want 429", code)
		}
		// A keyless request falls back to the (untouched) IP bucket.
		if code := headerGet(ts, "X-Api-Key", ""); code != http.StatusOK {
			t.Errorf("anonymous fallback: %d, want 200", code)
		}
	})

	t.Run("forwarded", func(t *testing.T) {
		_, ts := newTestServer(t, Options{RatePerSec: 0.001, RateBurst: 2, RateKey: RateKeyForwarded})
		// Distinct first hops get distinct buckets; later hops are the
		// proxy chain and must not matter.
		for i := 0; i < 2; i++ {
			if code := headerGet(ts, "X-Forwarded-For", "10.0.0.1, 192.168.0.9"); code != http.StatusOK {
				t.Fatalf("hop1 request %d: %d", i, code)
			}
			if code := headerGet(ts, "X-Forwarded-For", "10.0.0.2, 192.168.0.9"); code != http.StatusOK {
				t.Fatalf("hop2 request %d: %d", i, code)
			}
		}
		if code := headerGet(ts, "X-Forwarded-For", "10.0.0.1, 172.16.0.1"); code != http.StatusTooManyRequests {
			t.Errorf("same first hop via another proxy: %d, want 429", code)
		}
		if code := headerGet(ts, "X-Forwarded-For", ""); code != http.StatusOK {
			t.Errorf("headerless fallback: %d, want 200", code)
		}
	})

	t.Run("ip-default", func(t *testing.T) {
		_, ts := newTestServer(t, Options{RatePerSec: 0.001, RateBurst: 2})
		// In the default mode every header is ignored: all traffic
		// shares the loopback bucket.
		headerGet(ts, "X-Api-Key", "alpha")
		headerGet(ts, "X-Api-Key", "beta")
		if code := headerGet(ts, "X-Api-Key", "gamma"); code != http.StatusTooManyRequests {
			t.Errorf("ip mode over burst: %d, want 429", code)
		}
	})
}

// TestV1BatchCollectives: a mesh-bearing suite reports selected
// collective algorithms on its result lines, and the big_meshes axis
// resolves server-side.
func TestV1BatchCollectives(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	lines, sum := batchNDJSON(t, ts, api.BatchSpec{Random: 2, NoExamples: true, BigMeshes: true, Seed: 9})
	// 2 nests × (4 default + 3 big) machines.
	if sum.Summary.Scenarios != 14 {
		t.Fatalf("big_meshes suite ran %d scenarios, want 14", sum.Summary.Scenarios)
	}
	withColl, bigMesh := 0, 0
	for _, raw := range lines {
		var l api.BatchLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatal(err)
		}
		if l.Collectives != "" {
			withColl++
			if !strings.Contains(l.Collectives, "=") {
				t.Errorf("%s: malformed collectives %q", l.Name, l.Collectives)
			}
		}
		if strings.Contains(l.Name, "mesh64x2") || strings.Contains(l.Name, "mesh2x64") || strings.Contains(l.Name, "mesh16x16") {
			bigMesh++
		}
	}
	if bigMesh != 6 {
		t.Errorf("%d big-mesh scenarios, want 6", bigMesh)
	}
	if withColl == 0 {
		t.Error("no batch line reported collectives")
	}
}
