package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/store"
)

// TestOpsEndpoints: the ops handler serves /healthz, the Prometheus
// exposition and the pprof profiles, and the exposition covers every
// subsystem — server, engine pool, caches, store tiers and jobs —
// from the first scrape after traffic.
func TestOpsEndpoints(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Store: st})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	// Drive one API request so the labeled request families have
	// children (empty vecs are omitted from the exposition).
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/optimize", api.OptimizeRequest{Example: "matmul"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, body)
	}

	resp, err = ops.Client().Get(ops.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d decode err %v", resp.StatusCode, err)
	}
	if health.Status != "ok" || health.Version != buildinfo.Version || health.Go != runtime.Version() {
		t.Fatalf("healthz payload %+v", health)
	}

	resp, err = ops.Client().Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
	m := string(mb)
	for _, want := range []string{
		`resoptd_http_requests_total{endpoint="/v1/optimize",code="200"} 1`,
		`# TYPE resoptd_http_request_duration_seconds histogram`,
		`resoptd_http_in_flight_requests 0`,
		`resoptd_http_rate_limited_total 0`,
		`resopt_engine_workers 2`,
		`resopt_engine_cache_hits_total{tier="plan"}`,
		`resopt_engine_cache_misses_total{tier="kernel"}`,
		`resopt_store_objects{tier="plans"}`,
		`resopt_store_gc_sweeps_total`,
		`resoptd_jobs{state="queued"} 0`,
		`resoptd_suite_cache_misses_total`,
		`resoptd_build_info{version="` + buildinfo.Version + `",goversion="` + runtime.Version() + `"} 1`,
		`resopt_engine_phase_time_us_total{phase="compute"}`,
		`resopt_engine_phase_time_us_total{phase="total"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// pprof: the index and one profile respond.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1"} {
		resp, err := ops.Client().Get(ops.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// The ops index lists the endpoints; API routes are not served.
	resp, err = ops.Client().Get(ops.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ops listener served /v1/stats: status %d", resp.StatusCode)
	}
}

// TestInstrumentStreaming: the instrumenting middleware preserves the
// Flusher the NDJSON batch handler needs, counts request and response
// bytes, and labels by route pattern, not raw URL.
func TestInstrumentStreaming(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	lines, sum := batchNDJSON(t, ts, api.BatchSpec{Seed: 3, Random: 2, NoExamples: true})
	if len(lines) == 0 || sum.Summary.Scenarios != len(lines) {
		t.Fatalf("batch returned %d lines, summary %+v", len(lines), sum.Summary)
	}

	// A 404 on an unrouted path must not mint a new label value.
	resp, err := ts.Client().Get(ts.URL + "/no/such/path-" + t.Name())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	m := scrapeMetrics(t, ops)
	if !strings.Contains(m, `resoptd_http_requests_total{endpoint="/v1/batch",code="200"} 1`) {
		t.Errorf("batch request not counted:\n%s", m)
	}
	if v := metricValue(m, `resoptd_http_request_bytes_total{endpoint="/v1/batch"}`); v <= 0 {
		t.Errorf("request bytes not counted: %v", v)
	}
	if v := metricValue(m, `resoptd_http_response_bytes_total{endpoint="/v1/batch"}`); v <= 0 {
		t.Errorf("response bytes not counted: %v", v)
	}
	if strings.Contains(m, t.Name()) {
		t.Error("raw URL path leaked into a metric label")
	}
	if !strings.Contains(m, `endpoint="(unmatched)"`) {
		t.Error("404 not recorded under the (unmatched) label")
	}
}
