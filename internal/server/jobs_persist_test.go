package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

// waitJobFinished polls a job until it reaches a terminal state.
func waitJobFinished(t *testing.T, ts *httptest.Server, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := get(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		var job api.Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status.Finished() {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsSurviveRestart: a finished job persists into the store and
// a fresh daemon over the same store serves it — listing, polling and
// results are byte-identical to the run that produced it, and new
// submissions never reuse a persisted id.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First daemon: run one job to completion.
	srv1 := New(Options{Workers: 2, Store: st})
	ts1 := httptest.NewServer(srv1.Handler())
	spec := api.BatchSpec{Seed: 4, Random: 2, NoExamples: true}
	resp, body := postJSON(t, ts1.Client(), ts1.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job api.Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	job = waitJobFinished(t, ts1, job.ID)
	_, body = get(t, ts1, "/v1/jobs/"+job.ID+"/results")
	var before api.JobResults
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close() // sessions serialize; close before starting the next daemon

	// Second daemon over the same store: the job is still there.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{Workers: 2, Store: st2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()

	resp, body = get(t, ts2, "/v1/jobs")
	var list api.JobList
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &list) != nil {
		t.Fatalf("job list after restart: status %d body %s", resp.StatusCode, body)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == job.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing after restart: %+v", job.ID, list.Jobs)
	}

	resp, body = get(t, ts2, "/v1/jobs/"+job.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results after restart: status %d: %s", resp.StatusCode, body)
	}
	var after api.JobResults
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Results) != len(before.Results) || after.Summary != before.Summary {
		t.Errorf("results changed across restart:\n before %+v\n after  %+v", before.Summary, after.Summary)
	}
	for i := range before.Results {
		if after.Results[i] != before.Results[i] {
			t.Errorf("line %d changed across restart: %+v vs %+v", i, before.Results[i], after.Results[i])
		}
	}

	// A new submission on the fresh daemon takes the next id, not the
	// persisted one.
	resp, body = postJSON(t, ts2.Client(), ts2.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d: %s", resp.StatusCode, body)
	}
	var job2 api.Job
	if err := json.Unmarshal(body, &job2); err != nil {
		t.Fatal(err)
	}
	if job2.ID == job.ID {
		t.Fatalf("restarted daemon reused persisted job id %s", job.ID)
	}
	waitJobFinished(t, ts2, job2.ID)
}

// TestJobListRetention: GET /v1/jobs honors the ttl and keep query
// parameters — expired and over-count finished jobs disappear from
// the listing, from memory and from the persisted tier; bad values
// are typed 400s.
func TestJobListRetention(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{Workers: 2, Store: st})

	spec := api.BatchSpec{Seed: 4, Random: 1, NoExamples: true}
	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d: %s", resp.StatusCode, body)
		}
		var job api.Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		waitJobFinished(t, ts, job.ID)
		ids = append(ids, job.ID)
	}

	for _, bad := range []string{"/v1/jobs?ttl=banana", "/v1/jobs?keep=-1"} {
		if resp, _ := get(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// keep=2 drops the oldest finished job everywhere.
	resp, body := get(t, ts, "/v1/jobs?keep=2")
	var list api.JobList
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &list) != nil {
		t.Fatalf("keep listing: status %d body %s", resp.StatusCode, body)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("keep=2 left %d jobs: %+v", len(list.Jobs), list.Jobs)
	}
	for _, j := range list.Jobs {
		if j.ID == ids[0] {
			t.Errorf("oldest job %s survived keep=2", ids[0])
		}
	}
	if resp, _ := get(t, ts, "/v1/jobs/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pruned job still polls: status %d", resp.StatusCode)
	}
	if stored, err := st.ListJobs(); err != nil || len(stored) != 2 {
		t.Errorf("persisted tier after keep=2: %v (err %v)", stored, err)
	}

	// A generous ttl keeps everything; a zero-duration-ago ttl is not
	// expressible (ttl must be positive), so age out with a tiny ttl
	// after the jobs' finish timestamps have passed.
	if resp, _ := get(t, ts, "/v1/jobs?ttl=24h"); resp.StatusCode != http.StatusOK {
		t.Errorf("ttl listing: status %d", resp.StatusCode)
	}
	time.Sleep(20 * time.Millisecond)
	resp, body = get(t, ts, "/v1/jobs?ttl=1ms")
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &list) != nil {
		t.Fatalf("ttl listing: status %d body %s", resp.StatusCode, body)
	}
	if len(list.Jobs) != 0 {
		t.Errorf("ttl=1ms left %d jobs", len(list.Jobs))
	}
	if stored, err := st.ListJobs(); err != nil || len(stored) != 0 {
		t.Errorf("persisted tier after ttl sweep: %v (err %v)", stored, err)
	}
	_ = srv
}

// TestPruneTTLBeforeKeep: the two retention criteria are separate
// passes, ttl first — an expired job later in submission order must
// not inflate the finished count and push a non-expired older job
// over the count bound.
func TestPruneTTLBeforeKeep(t *testing.T) {
	now := time.Now().UTC()
	recent := now.Add(-time.Minute)  // job A: submitted first, finished recently
	stale := now.Add(-2 * time.Hour) // job B: submitted later, finished long ago
	m := newJobManager(8, nil)
	for _, j := range []struct {
		id       string
		finished time.Time
	}{{"job-000001", recent}, {"job-000002", stale}} {
		fin := j.finished
		m.jobs[j.id] = &jobState{
			job:    api.Job{ID: j.id, Status: api.JobDone, Finished: &fin},
			cancel: func() {},
		}
		m.order = append(m.order, j.id)
	}
	m.prune(time.Hour, 1, now)
	if len(m.order) != 1 || m.order[0] != "job-000001" {
		t.Fatalf("prune(ttl=1h, keep=1) kept %v, want [job-000001]: the stale job must age out before the count bound applies", m.order)
	}
}
