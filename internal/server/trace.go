package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/trace"
)

// TraceHeader is the response header echoing the request's trace ID,
// so any client (or error report) can be correlated with
// GET /debug/traces/{id} on the ops listener.
const TraceHeader = "Trace-Id"

// traced is the outermost middleware: every request runs under a root
// span — adopted from a valid inbound W3C traceparent header, freshly
// minted otherwise — whose ID is echoed in the Trace-Id response
// header before the handler runs. After dispatch it closes the root
// span with the matched route and status, records the trace, and
// writes the structured request log; requests slower than
// Options.TraceSlow are promoted to a warning carrying the full span
// tree.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, root := trace.StartRoot(r.Context(), s.tracer, "http", r.Header.Get("traceparent"))
		root.Set("method", r.Method)
		traceID := root.TraceID().String()
		w.Header().Set(TraceHeader, traceID)
		// The mux sets r.Pattern on the request pointer it serves, so
		// the re-contexted request must be the one passed down — and the
		// one read back for the endpoint label.
		r = r.WithContext(ctx)
		tw := &obsResponseWriter{ResponseWriter: w}
		next.ServeHTTP(tw, r)

		dur := time.Since(start)
		endpoint, status := endpointLabel(r), tw.statusCode()
		root.Set("endpoint", endpoint).SetInt("status", int64(status))
		root.EndWith(dur)

		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", status),
			slog.Duration("duration", dur),
			slog.String("trace_id", traceID),
		}
		if s.traceSlow > 0 && dur >= s.traceSlow {
			if td, ok := s.tracer.Get(traceID); ok {
				// Clustered, a slow request may have spent its time on a
				// peer: stitch the remote span sets in so the warning shows
				// the whole tree (assembleTrace is a no-op standalone or
				// when nothing was forwarded).
				merged, missing := s.assembleTrace(r.Context(), td)
				attrs = append(attrs, slog.String("spans", "\n"+merged.TreeString()))
				if len(missing) > 0 {
					attrs = append(attrs, slog.Any("missing_nodes", missing))
				}
			}
			s.logger.Warn("slow request", attrs...)
			return
		}
		s.logger.Info("request", attrs...)
	})
}

// phaseBreakdown maps the engine's per-scenario attribution onto the
// wire type (nil in, nil out).
func phaseBreakdown(ph *engine.PhaseTimes) *api.PhaseBreakdown {
	if ph == nil {
		return nil
	}
	return &api.PhaseBreakdown{
		PlanSource: ph.PlanSource,
		ComputeUs:  ph.ComputeUs,
		AlignUs:    ph.AlignUs,
		KernelUs:   ph.KernelUs,
		KernelOps:  ph.KernelOps,
		SelectUs:   ph.SelectUs,
		SelectMemo: ph.SelectMemo(),
		StoreUs:    ph.StoreUs,
		CostUs:     ph.CostUs,
		TotalUs:    ph.TotalUs,
	}
}

// traceSummary is one entry of the GET /debug/traces listing.
type traceSummary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUs float64   `json:"duration_us"`
	Spans      int       `json:"spans"`
	// NodeID is the recording cluster member ("" standalone); Status is
	// the root span's HTTP status (0 for non-request traces such as
	// async jobs) — enough to triage a listing without opening each
	// trace.
	NodeID string `json:"node_id,omitempty"`
	Status int    `json:"status,omitempty"`
}

// traceListResponse is the GET /debug/traces body.
type traceListResponse struct {
	Traces []traceSummary `json:"traces"`
	// Held / Total report ring occupancy: traces currently retrievable
	// versus ever recorded.
	Held  int    `json:"held"`
	Total uint64 `json:"total"`
}

// traceDetail is the GET /debug/traces/{id} body: the recorded trace
// with its spans resolved into a tree — clustered, the tree merged
// from every node the request touched.
type traceDetail struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUs float64   `json:"duration_us"`
	Dropped    int       `json:"dropped_spans,omitempty"`
	// NodeID is the node that served this detail (the trace's local
	// recorder); MissingNodes lists peers the request was forwarded to
	// whose span sets could not be fetched (down, or trace evicted).
	NodeID       string            `json:"node_id,omitempty"`
	MissingNodes []string          `json:"missing_nodes,omitempty"`
	Spans        []*trace.SpanNode `json:"spans"`
}

// handleTraces lists recently recorded traces, newest first. Query
// parameters: min (a Go duration; only traces at least that long) and
// limit (at most that many entries).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var min time.Duration
	if v := r.URL.Query().Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad min %q (want a Go duration like 50ms)", v))
			return
		}
		min = d
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad limit %q (want a non-negative integer)", v))
			return
		}
		limit = n
	}
	resp := traceListResponse{Traces: []traceSummary{}, Held: s.tracer.Len(), Total: s.tracer.Total()}
	for _, td := range s.tracer.List(min, limit) {
		sum := traceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationUs: td.DurationUs,
			Spans:      len(td.Spans),
			NodeID:     td.NodeID,
		}
		if root := td.Root(); root != nil {
			if st, err := strconv.Atoi(root.Attrs["status"]); err == nil {
				sum.Status = st
			}
		}
		resp.Traces = append(resp.Traces, sum)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.tracer.Get(id)
	if !ok {
		s.writeError(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no recorded trace %q (the ring holds the most recent %d)", id, s.tracer.Len()))
		return
	}
	// Clustered, assemble the full cross-node tree unless the caller
	// asked for the local span set only (?local=1 — the loop guard the
	// assembly fan-out itself uses).
	var missing []string
	if r.URL.Query().Get("local") == "" {
		td, missing = s.assembleTrace(r.Context(), td)
	}
	writeJSON(w, http.StatusOK, traceDetail{
		TraceID:      td.TraceID,
		Name:         td.Name,
		Start:        td.Start,
		DurationUs:   td.DurationUs,
		Dropped:      td.Dropped,
		NodeID:       td.NodeID,
		MissingNodes: missing,
		Spans:        td.Tree(),
	})
}
