// Fleet observability: the cluster-wide views of the per-node
// telemetry surfaces. Distributed trace assembly stitches a forwarded
// request's span tree back together from every involved node's ring
// (assembleTrace); GET /v1/cluster/stats aggregates every member's
// /v1/stats into per-node snapshots plus a fleet rollup; and the ops
// listener's GET /metrics/cluster federates the members' scrapes into
// one exposition distinguished by a node label. All cross-node
// fetches are bounded by fleetFetchTimeout and degrade per member —
// a down peer shows up as unreachable (or missing_nodes) instead of
// failing the call.
package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// fleetFetchTimeout bounds one per-peer observability fetch (stats,
// trace span set, metrics scrape). Short: these are debugging and
// dashboard reads, and a slow peer should degrade the view, not hang
// it.
const fleetFetchTimeout = 2 * time.Second

// statsResponse assembles this node's GET /v1/stats body — shared by
// handleStats and the per-member snapshots of /v1/cluster/stats.
func (s *Server) statsResponse() api.StatsResponse {
	c := s.session.CacheStats()
	resp := api.StatsResponse{
		Version: api.Version,
		Workers: s.session.Workers(),
		Cache: api.CacheStats{
			KernelHits:       c.KernelHits,
			KernelMisses:     c.KernelMisses,
			KernelDiskHits:   c.KernelDiskHits,
			KernelDiskMisses: c.KernelDiskMisses,
			PlanHits:         c.PlanHits,
			PlanMisses:       c.PlanMisses,
			DiskHits:         c.DiskHits,
			DiskMisses:       c.DiskMisses,
			SelectHits:       c.SelectHits,
			SelectMisses:     c.SelectMisses,

			CompiledHits:           c.CompiledHits,
			CompiledMisses:         c.CompiledMisses,
			CompiledDiskHits:       c.CompiledDiskHits,
			CompiledDiskMisses:     c.CompiledDiskMisses,
			CompiledTemplates:      c.CompiledTemplates,
			CompiledTemplateHits:   c.CompiledTemplateHits,
			CompiledTemplateMisses: c.CompiledTemplateMisses,
			CompiledEvals:          c.CompiledEvals,

			Evictions: c.Evictions,
			Entries:   c.Entries,
		},
		SuiteCache: s.resolver.stats(),
		Jobs:       s.jobs.stats(),
	}
	pt := s.session.PhaseTotals()
	resp.Phases = api.PhaseTotals{
		Scenarios: pt.Scenarios,
		ComputeUs: pt.ComputeUs,
		AlignUs:   pt.AlignUs,
		KernelUs:  pt.KernelUs,
		SelectUs:  pt.SelectUs,
		StoreUs:   pt.StoreUs,
		CostUs:    pt.CostUs,
		TotalUs:   pt.TotalUs,
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &api.StoreStats{
			PlanPuts:          st.PlanPuts,
			PlanGetHits:       st.PlanGetHits,
			PlanGetMisses:     st.PlanGetMisses,
			KernelPuts:        st.KernelPuts,
			KernelGetHits:     st.KernelGetHits,
			KernelGetMisses:   st.KernelGetMisses,
			CompiledPuts:      st.CompiledPuts,
			CompiledGetHits:   st.CompiledGetHits,
			CompiledGetMisses: st.CompiledGetMisses,
			Warnings:          st.Warnings,
		}
	}
	resp.Requests = api.RequestStats{
		Optimize:    s.optimizes.Load(),
		Batch:       s.batches.Load(),
		Lattice:     s.lattices.Load(),
		Jobs:        s.jobReqs.Load(),
		RateLimited: s.rateLimited.Load(),
	}
	resp.Sweeper = s.sweeperStats()
	resp.Node = s.nodeStats()
	return resp
}

// handleClusterStats serves GET /v1/cluster/stats: this node's stats
// plus every peer's, fetched concurrently with a per-peer timeout,
// and the fleet rollup. Down or unresponsive peers are reported as
// unreachable members; the endpoint itself never fails on their
// account. Standalone daemons answer with themselves as the only
// member, so monitoring can target the endpoint uniformly.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	self := s.statsResponse()
	rt := s.clusterRt
	resp := api.ClusterStatsResponse{Node: s.nodeID()}
	selfID, selfURL := "self", ""
	if rt != nil {
		selfID = rt.cl.Self()
		selfURL = rt.cl.URL(selfID)
	}
	members := []api.ClusterMemberStats{{ID: selfID, URL: selfURL, Status: api.MemberOK, Stats: &self}}
	if rt != nil {
		peers := rt.cl.Peers()
		lastErr := map[string]string{}
		for _, st := range rt.cl.Health().Status() {
			lastErr[st.Node] = st.LastErr
		}
		fetched := make([]api.ClusterMemberStats, len(peers))
		var wg sync.WaitGroup
		for i, peer := range peers {
			fetched[i] = api.ClusterMemberStats{ID: peer, URL: rt.cl.URL(peer)}
			if !rt.cl.Health().Up(peer) {
				fetched[i].Status = api.MemberUnreachable
				fetched[i].Error = lastErr[peer]
				if fetched[i].Error == "" {
					fetched[i].Error = "marked down"
				}
				continue
			}
			wg.Add(1)
			go func(m *api.ClusterMemberStats, pc *client.Client, peer string) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(r.Context(), fleetFetchTimeout)
				defer cancel()
				st, err := pc.Stats(ctx)
				if err != nil {
					var ae *api.Error
					if !errors.As(err, &ae) {
						rt.cl.Health().ReportFailure(peer, err)
					}
					m.Status = api.MemberUnreachable
					m.Error = err.Error()
					return
				}
				rt.cl.Health().ReportSuccess(peer)
				m.Status = api.MemberOK
				m.Stats = st
			}(&fetched[i], rt.peers[peer], peer)
		}
		wg.Wait()
		members = append(members, fetched...)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	resp.Members = members
	resp.Rollup = rollupStats(members)
	writeJSON(w, http.StatusOK, resp)
}

// rollupStats aggregates the reachable members into the fleet view:
// sums for every counter, hit rates recomputed from the summed
// numerators and denominators.
func rollupStats(members []api.ClusterMemberStats) api.ClusterRollup {
	var ru api.ClusterRollup
	ru.Nodes = len(members)
	for _, m := range members {
		if m.Stats == nil {
			ru.Unreachable++
			continue
		}
		st := m.Stats
		ru.Workers += st.Workers

		ru.Requests.Optimize += st.Requests.Optimize
		ru.Requests.Batch += st.Requests.Batch
		ru.Requests.Lattice += st.Requests.Lattice
		ru.Requests.Jobs += st.Requests.Jobs
		ru.Requests.RateLimited += st.Requests.RateLimited

		ru.Cache.KernelHits += st.Cache.KernelHits
		ru.Cache.KernelMisses += st.Cache.KernelMisses
		ru.Cache.KernelDiskHits += st.Cache.KernelDiskHits
		ru.Cache.KernelDiskMisses += st.Cache.KernelDiskMisses
		ru.Cache.PlanHits += st.Cache.PlanHits
		ru.Cache.PlanMisses += st.Cache.PlanMisses
		ru.Cache.DiskHits += st.Cache.DiskHits
		ru.Cache.DiskMisses += st.Cache.DiskMisses
		ru.Cache.SelectHits += st.Cache.SelectHits
		ru.Cache.SelectMisses += st.Cache.SelectMisses
		ru.Cache.CompiledHits += st.Cache.CompiledHits
		ru.Cache.CompiledMisses += st.Cache.CompiledMisses
		ru.Cache.CompiledDiskHits += st.Cache.CompiledDiskHits
		ru.Cache.CompiledDiskMisses += st.Cache.CompiledDiskMisses
		ru.Cache.CompiledTemplates += st.Cache.CompiledTemplates
		ru.Cache.CompiledTemplateHits += st.Cache.CompiledTemplateHits
		ru.Cache.CompiledTemplateMisses += st.Cache.CompiledTemplateMisses
		ru.Cache.CompiledEvals += st.Cache.CompiledEvals
		ru.Cache.Evictions += st.Cache.Evictions
		ru.Cache.Entries += st.Cache.Entries

		ru.SuiteCache.Hits += st.SuiteCache.Hits
		ru.SuiteCache.Misses += st.SuiteCache.Misses

		ru.Jobs.Queued += st.Jobs.Queued
		ru.Jobs.Running += st.Jobs.Running
		ru.Jobs.Done += st.Jobs.Done
		ru.Jobs.Cancelled += st.Jobs.Cancelled

		ru.Phases.Scenarios += st.Phases.Scenarios
		ru.Phases.ComputeUs += st.Phases.ComputeUs
		ru.Phases.AlignUs += st.Phases.AlignUs
		ru.Phases.KernelUs += st.Phases.KernelUs
		ru.Phases.SelectUs += st.Phases.SelectUs
		ru.Phases.StoreUs += st.Phases.StoreUs
		ru.Phases.CostUs += st.Phases.CostUs
		ru.Phases.TotalUs += st.Phases.TotalUs

		if st.Store != nil {
			if ru.Store == nil {
				ru.Store = &api.StoreStats{}
			}
			ru.Store.PlanPuts += st.Store.PlanPuts
			ru.Store.PlanGetHits += st.Store.PlanGetHits
			ru.Store.PlanGetMisses += st.Store.PlanGetMisses
			ru.Store.KernelPuts += st.Store.KernelPuts
			ru.Store.KernelGetHits += st.Store.KernelGetHits
			ru.Store.KernelGetMisses += st.Store.KernelGetMisses
			ru.Store.CompiledPuts += st.Store.CompiledPuts
			ru.Store.CompiledGetHits += st.Store.CompiledGetHits
			ru.Store.CompiledGetMisses += st.Store.CompiledGetMisses
			ru.Store.Warnings += st.Store.Warnings
		}
		if st.Sweeper != nil {
			if ru.Sweeper == nil {
				ru.Sweeper = &api.SweeperStats{IntervalSeconds: st.Sweeper.IntervalSeconds}
			}
			ru.Sweeper.Runs += st.Sweeper.Runs
			ru.Sweeper.JobsPruned += st.Sweeper.JobsPruned
			ru.Sweeper.GCSweeps += st.Sweeper.GCSweeps
			ru.Sweeper.GCRemoved += st.Sweeper.GCRemoved
			ru.Sweeper.GCBytesFreed += st.Sweeper.GCBytesFreed
		}
		if st.Node != nil {
			ru.ForwardsOut += st.Node.ForwardsOut
			ru.ForwardsIn += st.Node.ForwardsIn
			ru.ForwardFallbacks += st.Node.ForwardFallbacks
			ru.PeerPlanHits += st.Node.PeerPlanHits
			ru.PlansReplicated += st.Node.PlansReplicated
		}
	}
	if lookups := ru.Cache.PlanHits + ru.Cache.PlanMisses; lookups > 0 {
		ru.PlanHitRate = float64(ru.Cache.PlanHits+ru.Cache.DiskHits) / float64(lookups)
	}
	if lookups := ru.Cache.KernelHits + ru.Cache.KernelMisses; lookups > 0 {
		ru.KernelHitRate = float64(ru.Cache.KernelHits+ru.Cache.KernelDiskHits) / float64(lookups)
	}
	return ru
}

// assembleTrace stitches td — a locally recorded trace — together with
// the span sets of every peer the request was forwarded to, identified
// by the peer attribute on cluster.forward spans. Peers are fetched
// concurrently (skipping ones marked down), sorted by node ID for a
// deterministic merged span order, and peers that could not contribute
// (down, unreachable, or with the trace already evicted from their
// ring) are returned as the missing-nodes list rather than erroring.
// Standalone, or with no forwards in the trace, td comes back as is.
func (s *Server) assembleTrace(ctx context.Context, td *trace.TraceData) (*trace.TraceData, []string) {
	rt := s.clusterRt
	if rt == nil {
		return td, nil
	}
	seen := map[string]bool{}
	var order []string
	for _, sd := range td.Spans {
		peer := sd.Attrs["peer"]
		if sd.Name != "cluster.forward" || peer == "" || peer == rt.cl.Self() || seen[peer] {
			continue
		}
		seen[peer] = true
		order = append(order, peer)
	}
	if len(order) == 0 {
		return td, nil
	}
	sort.Strings(order)
	remotes := make([]*trace.TraceData, len(order))
	var wg sync.WaitGroup
	for i, peer := range order {
		pc, known := rt.peers[peer]
		if !known || !rt.cl.Health().Up(peer) {
			continue
		}
		wg.Add(1)
		go func(i int, peer string, pc *client.Client) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
			defer cancel()
			ftd, err := pc.FetchTrace(fctx, td.TraceID)
			if err != nil {
				var ae *api.Error
				if errors.As(err, &ae) {
					// The peer answered: an evicted trace is a healthy miss.
					rt.cl.Health().ReportSuccess(peer)
				} else {
					rt.cl.Health().ReportFailure(peer, err)
				}
				return
			}
			rt.cl.Health().ReportSuccess(peer)
			remotes[i] = ftd
		}(i, peer, pc)
	}
	wg.Wait()
	var fetched []*trace.TraceData
	var missing []string
	for i, peer := range order {
		if remotes[i] != nil {
			fetched = append(fetched, remotes[i])
		} else {
			missing = append(missing, peer)
		}
	}
	return trace.Merge(td, fetched...), missing
}

// handlePeerTrace serves the cluster-internal GET /debug/traces/{id}
// on the API listener: the local span set only, never fanning out —
// the ?local=1 convention that makes cross-node assembly loop-free.
// Peer-gated like the replication endpoints.
func (s *Server) handlePeerTrace(w http.ResponseWriter, r *http.Request) {
	if !s.isPeerRequest(r) {
		s.writeError(w, errNotPeer())
		return
	}
	id := r.PathValue("id")
	td, ok := s.tracer.Get(id)
	if !ok {
		s.writeError(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no recorded trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// handlePeerMetrics serves the cluster-internal GET /metrics/peer on
// the API listener: this node's raw exposition, fetched by peers'
// /metrics/cluster federation (the ops listener's address is not part
// of cluster membership, so the scrape must ride the API port).
func (s *Server) handlePeerMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.isPeerRequest(r) {
		s.writeError(w, errNotPeer())
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	s.obs.reg.WriteText(w)
}

// handleMetricsCluster serves GET /metrics/cluster on the ops
// listener: the fleet's expositions — this node's own scrape plus
// every reachable peer's, fetched concurrently — federated into one
// valid exposition with a node label distinguishing the members.
// Unreachable peers are simply absent from the output.
func (s *Server) handleMetricsCluster(w http.ResponseWriter, r *http.Request) {
	var selfBuf bytes.Buffer
	s.obs.reg.WriteText(&selfBuf)
	selfID := s.nodeID()
	if selfID == "" {
		selfID = "self"
	}
	sources := []metrics.FederateSource{{Node: selfID, Text: selfBuf.String()}}
	if rt := s.clusterRt; rt != nil {
		peers := rt.cl.Peers()
		texts := make([]string, len(peers))
		var wg sync.WaitGroup
		for i, peer := range peers {
			if !rt.cl.Health().Up(peer) {
				continue
			}
			wg.Add(1)
			go func(i int, peer string, pc *client.Client) {
				defer wg.Done()
				fctx, cancel := context.WithTimeout(r.Context(), fleetFetchTimeout)
				defer cancel()
				text, err := pc.FetchMetrics(fctx)
				if err != nil {
					var ae *api.Error
					if !errors.As(err, &ae) {
						rt.cl.Health().ReportFailure(peer, err)
					}
					return
				}
				rt.cl.Health().ReportSuccess(peer)
				texts[i] = string(text)
			}(i, peer, rt.peers[peer])
		}
		wg.Wait()
		for i, peer := range peers {
			if texts[i] != "" {
				sources = append(sources, metrics.FederateSource{Node: peer, Text: texts[i]})
			}
		}
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].Node < sources[j].Node })
	w.Header().Set("Content-Type", metrics.ContentType)
	metrics.Federate(w, sources)
}

// healthzBody builds the liveness body shared by the API and ops
// /healthz endpoints. Clustered daemons report their fleet view:
// peers_up/peers_total, and status degrades to "degraded" — still
// HTTP 200; the node itself serves — when any peer is marked down.
func (s *Server) healthzBody() map[string]any {
	body := map[string]any{"status": "ok", "version": buildinfo.Version}
	rt := s.clusterRt
	if rt == nil {
		return body
	}
	body["node"] = rt.cl.Self()
	up, total := 0, 0
	for _, st := range rt.cl.Health().Status() {
		total++
		if st.Up {
			up++
		}
	}
	body["peers_up"] = up
	body["peers_total"] = total
	if up < total {
		body["status"] = "degraded"
	}
	return body
}
