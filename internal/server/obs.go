package server

import (
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
)

// observability is the server's metric surface: one registry holding
// the HTTP-layer instruments plus func-backed mirrors of the engine,
// store and job counters. Everything is registered once in New, so
// the /metrics exposition is complete from the first scrape — a
// counter that has never moved still reports 0 instead of being
// absent (absent series break Prometheus rate() over restarts).
type observability struct {
	reg *metrics.Registry

	requests  metrics.CounterVec   // resoptd_http_requests_total{endpoint,code}
	latency   metrics.HistogramVec // resoptd_http_request_duration_seconds{endpoint}
	inFlight  metrics.Gauge        // resoptd_http_in_flight_requests
	bytesIn   metrics.CounterVec   // resoptd_http_request_bytes_total{endpoint}
	bytesOut  metrics.CounterVec   // resoptd_http_response_bytes_total{endpoint}
	sweepRuns metrics.Counter      // resoptd_sweeper_runs_total
	sweepJobs metrics.Counter      // resoptd_sweeper_jobs_pruned_total

	// Cluster families (registered only when the daemon is clustered).
	forwards       metrics.CounterVec   // resopt_cluster_forwards_total{peer,direction}
	forwardLatency metrics.HistogramVec // resopt_cluster_forward_seconds{peer}
}

// newObservability builds the registry for one server and registers
// every metric family against its live data sources.
func newObservability(s *Server) *observability {
	reg := metrics.NewRegistry()
	o := &observability{
		reg: reg,
		requests: reg.NewCounterVec("resoptd_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "endpoint", "code"),
		latency: reg.NewHistogramVec("resoptd_http_request_duration_seconds",
			"HTTP request latency, by route pattern.", nil, "endpoint"),
		inFlight: reg.NewGauge("resoptd_http_in_flight_requests",
			"HTTP requests currently being served."),
		bytesIn: reg.NewCounterVec("resoptd_http_request_bytes_total",
			"Request body bytes read, by route pattern.", "endpoint"),
		bytesOut: reg.NewCounterVec("resoptd_http_response_bytes_total",
			"Response body bytes written, by route pattern.", "endpoint"),
		sweepRuns: reg.NewCounter("resoptd_sweeper_runs_total",
			"Background sweeper ticks completed."),
		sweepJobs: reg.NewCounter("resoptd_sweeper_jobs_pruned_total",
			"Finished jobs retired by the background sweeper."),
	}
	reg.NewCounterFunc("resoptd_http_rate_limited_total",
		"Requests rejected by the per-client rate limiter.",
		func() uint64 { return s.rateLimited.Load() })

	// Go runtime telemetry (resopt_go_*): goroutines, heap, GC and
	// scheduler latency, read from runtime/metrics once per scrape.
	metrics.RegisterGoRuntime(reg)

	// Build identity, the standard always-1 info gauge.
	reg.NewGaugeVec("resoptd_build_info",
		"Build metadata; always 1. Version is stamped via ldflags.",
		"version", "goversion").
		With(buildinfo.Version, runtime.Version()).Set(1)

	// Engine phase attribution: where optimization wall-clock goes.
	phase := reg.NewCounterVec("resopt_engine_phase_time_us_total",
		"Cumulative engine wall-clock attributed to optimizer phases, in microseconds.", "phase")
	totals := s.session.PhaseTotals
	phase.WithFunc(func() uint64 { return uint64(totals().ComputeUs) }, "compute")
	phase.WithFunc(func() uint64 { return uint64(totals().AlignUs) }, "align")
	phase.WithFunc(func() uint64 { return uint64(totals().KernelUs) }, "kernel")
	phase.WithFunc(func() uint64 { return uint64(totals().SelectUs) }, "select")
	phase.WithFunc(func() uint64 { return uint64(totals().StoreUs) }, "store")
	phase.WithFunc(func() uint64 { return uint64(totals().CostUs) }, "cost")
	phase.WithFunc(func() uint64 { return uint64(totals().TotalUs) }, "total")

	// Job lifecycle gauges, refreshed per scrape.
	jobs := reg.NewGaugeVec("resoptd_jobs", "Async batch jobs by lifecycle state.", "state")
	queued, running := jobs.With("queued"), jobs.With("running")
	done, cancelled := jobs.With("done"), jobs.With("cancelled")
	reg.OnCollect(func() {
		st := s.jobs.stats()
		queued.Set(float64(st.Queued))
		running.Set(float64(st.Running))
		done.Set(float64(st.Done))
		cancelled.Set(float64(st.Cancelled))
	})

	// Engine worker pool.
	pool := s.session.PoolStats
	reg.NewGaugeFunc("resopt_engine_workers", "Worker pool size.",
		func() float64 { return float64(pool().Workers) })
	reg.NewGaugeFunc("resopt_engine_busy_workers", "Workers currently optimizing a scenario.",
		func() float64 { return float64(pool().Busy) })
	reg.NewGaugeFunc("resopt_engine_queue_depth", "Submitted scenarios waiting for a worker.",
		func() float64 { return float64(pool().Queued) })
	reg.NewCounterFunc("resopt_engine_scenarios_total", "Scenarios processed by the worker pool.",
		func() uint64 { return pool().ScenariosDone })
	reg.NewCounterFunc("resopt_engine_scenario_errors_total", "Scenario results carrying an error (cancellations included).",
		func() uint64 { return pool().ScenarioErrors })

	// Engine memo-cache tiers, mirrored from CacheStats: plan = whole
	// heuristic results, kernel = exact linear algebra, select = the
	// collective-selection memo, *_disk = the store tier behind each.
	hits := reg.NewCounterVec("resopt_engine_cache_hits_total",
		"Memo-cache hits by tier.", "tier")
	misses := reg.NewCounterVec("resopt_engine_cache_misses_total",
		"Memo-cache misses by tier.", "tier")
	cache := s.session.CacheStats
	hits.WithFunc(func() uint64 { return cache().PlanHits }, "plan")
	misses.WithFunc(func() uint64 { return cache().PlanMisses }, "plan")
	hits.WithFunc(func() uint64 { return cache().KernelHits }, "kernel")
	misses.WithFunc(func() uint64 { return cache().KernelMisses }, "kernel")
	hits.WithFunc(func() uint64 { return cache().SelectHits }, "select")
	misses.WithFunc(func() uint64 { return cache().SelectMisses }, "select")
	hits.WithFunc(func() uint64 { return cache().DiskHits }, "plan_disk")
	misses.WithFunc(func() uint64 { return cache().DiskMisses }, "plan_disk")
	hits.WithFunc(func() uint64 { return cache().KernelDiskHits }, "kernel_disk")
	misses.WithFunc(func() uint64 { return cache().KernelDiskMisses }, "kernel_disk")
	hits.WithFunc(func() uint64 { return cache().CompiledHits }, "compiled")
	misses.WithFunc(func() uint64 { return cache().CompiledMisses }, "compiled")
	hits.WithFunc(func() uint64 { return cache().CompiledDiskHits }, "compiled_disk")
	misses.WithFunc(func() uint64 { return cache().CompiledDiskMisses }, "compiled_disk")
	hits.WithFunc(func() uint64 { return cache().CompiledTemplateHits }, "compiled_template")
	misses.WithFunc(func() uint64 { return cache().CompiledTemplateMisses }, "compiled_template")
	reg.NewCounterFunc("resopt_engine_compiled_evals_total",
		"Selection-template evaluations by the compiled-plan tier (one per priced lattice point selection).",
		func() uint64 { return cache().CompiledEvals })
	reg.NewGaugeFunc("resopt_engine_compiled_templates",
		"Compiled selection templates held by the session pricer.",
		func() float64 { return float64(cache().CompiledTemplates) })
	reg.NewCounterFunc("resopt_engine_cache_evictions_total", "Entries dropped by the LRU bound.",
		func() uint64 { return cache().Evictions })
	reg.NewGaugeFunc("resopt_engine_cache_entries", "Entries resident in the memo cache.",
		func() float64 { return float64(cache().Entries) })

	// Resolved-suite cache.
	reg.NewCounterFunc("resoptd_suite_cache_hits_total", "Batch specs resolved from the suite cache.",
		func() uint64 { return s.resolver.stats().Hits })
	reg.NewCounterFunc("resoptd_suite_cache_misses_total", "Batch specs that regenerated their suite.",
		func() uint64 { return s.resolver.stats().Misses })

	if s.store != nil {
		o.registerStore(s.store)
	}
	if s.clusterRt != nil {
		o.registerCluster(s.clusterRt)
	}
	return o
}

// registerCluster adds the clustered-serving families: forward
// traffic by peer and direction, forward latency, peer liveness
// refreshed per scrape, and the replication/single-flight counters.
// Every per-peer child is pre-seeded so the exposition carries the
// full fleet at 0 from the first scrape (the CI cluster smoke greps
// resopt_cluster_forwards_total before and after traffic).
func (o *observability) registerCluster(rt *clusterRuntime) {
	reg := o.reg
	o.forwards = reg.NewCounterVec("resopt_cluster_forwards_total",
		"Optimize requests proxied between cluster nodes, by peer and direction (out = sent to the key's owner, in = answered for a peer).",
		"peer", "direction")
	o.forwardLatency = reg.NewHistogramVec("resopt_cluster_forward_seconds",
		"Latency of forwarded optimize requests, by owning peer.", nil, "peer")
	peerUp := reg.NewGaugeVec("resopt_cluster_peer_up",
		"Peer liveness as tracked by this node (1 = believed up).", "peer")
	upGauges := make(map[string]metrics.Gauge, len(rt.peers))
	for _, id := range rt.cl.Peers() {
		o.forwards.With(id, "out")
		o.forwards.With(id, "in")
		o.forwardLatency.With(id)
		upGauges[id] = peerUp.With(id)
	}
	reg.OnCollect(func() {
		for _, st := range rt.cl.Health().Status() {
			if g, ok := upGauges[st.Node]; ok {
				if st.Up {
					g.Set(1)
				} else {
					g.Set(0)
				}
			}
		}
	})
	reg.NewGaugeFunc("resopt_cluster_ring_size", "Cluster members (self included).",
		func() float64 { return float64(rt.cl.Size()) })
	reg.NewCounterFunc("resopt_cluster_forward_fallbacks_total",
		"Forwards that fell back to local compute because the owner was down or unreachable.",
		func() uint64 { return rt.forwardFallbacks.Load() })
	reg.NewCounterFunc("resopt_cluster_peer_plan_hits_total",
		"Cold plans served from a replica peer's store instead of recomputed.",
		func() uint64 { return rt.peerPlanHits.Load() })
	reg.NewCounterFunc("resopt_cluster_plans_replicated_total",
		"Finished plans pushed to ring successors.",
		func() uint64 { return rt.plansReplicated.Load() })
	reg.NewCounterFunc("resopt_cluster_snapshots_replicated_total",
		"Recorded snapshots pushed to replica peers.",
		func() uint64 { return rt.snapshotsReplicated.Load() })
}

// registerStore adds the disk-tier families: traffic counters
// mirrored from store.Stats, per-tier object/byte gauges walked at
// scrape time, and cumulative GC results.
func (o *observability) registerStore(st *store.Store) {
	reg := o.reg
	puts := reg.NewCounterVec("resopt_store_puts_total", "Objects written, by tier.", "tier")
	getHits := reg.NewCounterVec("resopt_store_get_hits_total", "Disk lookups served, by tier.", "tier")
	getMisses := reg.NewCounterVec("resopt_store_get_misses_total", "Disk lookups missed, by tier.", "tier")
	puts.WithFunc(func() uint64 { return st.Stats().PlanPuts }, "plans")
	getHits.WithFunc(func() uint64 { return st.Stats().PlanGetHits }, "plans")
	getMisses.WithFunc(func() uint64 { return st.Stats().PlanGetMisses }, "plans")
	puts.WithFunc(func() uint64 { return st.Stats().KernelPuts }, "kernels")
	getHits.WithFunc(func() uint64 { return st.Stats().KernelGetHits }, "kernels")
	getMisses.WithFunc(func() uint64 { return st.Stats().KernelGetMisses }, "kernels")
	puts.WithFunc(func() uint64 { return st.Stats().CompiledPuts }, "compiled")
	getHits.WithFunc(func() uint64 { return st.Stats().CompiledGetHits }, "compiled")
	getMisses.WithFunc(func() uint64 { return st.Stats().CompiledGetMisses }, "compiled")
	reg.NewCounterFunc("resopt_store_warnings_total",
		"Non-fatal store problems (corrupt files skipped, failed writes).",
		func() uint64 { return st.Stats().Warnings })

	objects := reg.NewGaugeVec("resopt_store_objects", "Objects on disk, by tier.", "tier")
	bytes := reg.NewGaugeVec("resopt_store_bytes", "Bytes on disk, by tier.", "tier")
	tierGauges := make(map[string][2]metrics.Gauge, 4)
	for _, tier := range store.Tiers() {
		tierGauges[tier] = [2]metrics.Gauge{objects.With(tier), bytes.With(tier)}
	}
	reg.OnCollect(func() {
		for tier, sz := range st.TierSizes() {
			g := tierGauges[tier]
			g[0].Set(float64(sz.Files))
			g[1].Set(float64(sz.Bytes))
		}
	})

	reg.NewCounterFunc("resopt_store_gc_sweeps_total", "GC sweeps completed (dry runs excluded).",
		func() uint64 { return st.GCTotals().Sweeps })
	removed := reg.NewCounterVec("resopt_store_gc_removed_total", "Files removed by GC, by criterion.", "criterion")
	removed.WithFunc(func() uint64 { return st.GCTotals().RemovedAge }, "age")
	removed.WithFunc(func() uint64 { return st.GCTotals().RemovedLRU }, "lru")
	removed.WithFunc(func() uint64 { return st.GCTotals().RemovedTemp }, "temp")
	reg.NewCounterFunc("resopt_store_gc_bytes_freed_total", "Bytes reclaimed by GC.",
		func() uint64 { return uint64(st.GCTotals().BytesFreed) })
}

// OpsHandler returns the operational endpoint set, meant for a
// separate listener (resoptd -ops-addr) that is not exposed to API
// clients:
//
//	GET /metrics           Prometheus text exposition of every family
//	                       (OpenMetrics with exemplars when negotiated)
//	GET /metrics/cluster   the fleet's expositions federated into one,
//	                       distinguished by an injected node label
//	GET /healthz           liveness/readiness probe: {"status":"ok",...}
//	                       with the stamped build version; clustered, it
//	                       reports peers_up/peers_total and degrades the
//	                       status (still 200) when any peer is down
//	GET /debug/traces      recent request traces (?min=50ms&limit=10)
//	GET /debug/traces/{id} one trace as a JSON span tree — clustered,
//	                       stitched across every node the request
//	                       touched (?local=1 for this node's spans only)
//	GET /debug/pprof/*     the standard runtime profiles
//
// pprof is wired explicitly rather than through the side effect of
// importing net/http/pprof (which registers on http.DefaultServeMux —
// a mux this server never serves).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.obs.reg.Handler())
	mux.HandleFunc("GET /metrics/cluster", s.handleMetricsCluster)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := s.healthzBody()
		body["go"] = runtime.Version()
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "resoptd ops: GET /metrics, GET /healthz, GET /debug/traces[/{id}], GET /debug/pprof/\n")
	})
	return mux
}

// Registry exposes the server's metric registry (tests, embedders).
func (s *Server) Registry() *metrics.Registry { return s.obs.reg }

// instrument wraps the API handler chain with the HTTP-layer
// metrics: in-flight gauge, per-endpoint request/latency/byte
// accounting. It must be outermost so rate-limited rejections are
// observed too.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.obs.inFlight.Inc()
		defer s.obs.inFlight.Dec()
		cr := &countingReadCloser{rc: r.Body}
		r.Body = cr
		ow := &obsResponseWriter{ResponseWriter: w}
		next.ServeHTTP(ow, r)
		endpoint := endpointLabel(r)
		s.obs.requests.With(endpoint, strconv.Itoa(ow.statusCode())).Inc()
		// Exemplar: link the latency bucket to this request's trace, so
		// a scraper ingesting OpenMetrics can jump from a histogram
		// spike to /debug/traces/{id}.
		var exemplar map[string]string
		if sp := trace.FromContext(r.Context()); sp != nil {
			exemplar = map[string]string{"trace_id": sp.TraceID().String()}
		}
		s.obs.latency.With(endpoint).ObserveWithExemplar(time.Since(start).Seconds(), exemplar)
		s.obs.bytesIn.With(endpoint).Add(uint64(cr.n))
		s.obs.bytesOut.With(endpoint).Add(uint64(ow.bytes))
	})
}

// endpointLabel maps a served request to a bounded metric label: the
// mux pattern that matched (path part only — the method is implied by
// the route set), or "(unmatched)" for 404s and requests rejected
// before routing (rate limiting). Raw URL paths are never used as
// labels; they are attacker-controlled and of unbounded cardinality.
func endpointLabel(r *http.Request) string {
	pat := r.Pattern
	if pat == "" {
		return "(unmatched)"
	}
	if _, path, ok := strings.Cut(pat, " "); ok {
		return path
	}
	return pat
}

// countingReadCloser counts the request-body bytes actually read.
type countingReadCloser struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReadCloser) Close() error { return c.rc.Close() }

// obsResponseWriter captures status and body size. It implements
// http.Flusher unconditionally (delegating when the underlying writer
// supports it), because the NDJSON batch stream flushes per line.
type obsResponseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *obsResponseWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *obsResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *obsResponseWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
