// Package buildinfo carries the build-time version stamp shared by
// every binary in this module. Version defaults to "dev" and is
// overridden at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3" ./...
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is this build's version string ("dev" unless stamped via
// ldflags).
var Version = "dev"

// String renders the one-line banner printed by each command's
// -version flag: "<cmd> <version> (<go runtime>)".
func String(cmd string) string {
	return fmt.Sprintf("%s %s (%s)", cmd, Version, runtime.Version())
}
