// Package cluster turns a fleet of resoptd replicas into one serving
// tier. It is dependency-free plumbing: a consistent-hash ring with
// virtual nodes assigns every canonical plan key an owner and a set
// of replica successors; a static-membership config names the peers
// (flag or JSON file); and a health tracker probes each peer's
// /healthz, marking nodes down and back up with backoff so routing
// falls back to local compute instead of dead peers. The HTTP side —
// request forwarding, the peer plan/snapshot endpoints, and the
// engine's remote plan tier — lives in internal/server, which owns
// the daemon's client and trace wiring.
//
// Placement is deterministic: every node computes the same ring from
// the same membership list, so any node can route for any key with no
// coordination. Membership changes move only the keys between a
// leaving/joining node's ring points and their predecessors — the
// consistent-hashing minimal-disruption property the ring tests pin.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64
// points per node keeps the ring balanced within a few percent for
// small static fleets while the ring stays tiny (a few KB).
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over node IDs. Build one
// with NewRing; rebuild on membership change (rings are cheap).
type Ring struct {
	points []point // sorted by hash
	nodes  []string
}

type point struct {
	hash uint64
	node string
}

// hash64 is the ring's placement hash: the first 8 bytes of
// SHA-256, big-endian. Stable across processes, architectures and
// releases — placement must agree fleet-wide.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with vnodes virtual nodes per node
// (≤0: DefaultVNodes). Node order does not matter; duplicates are
// collapsed.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash64(fmt.Sprintf("%s|%d", n, i)), n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic on (vanishingly rare) hash ties
	})
	return r
}

// Nodes returns the distinct member IDs, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the number of distinct nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Owner returns the node owning key: the first ring point at or after
// hash(key), wrapping. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hash64(key))].node
}

// Successors returns the first n distinct nodes at or after hash(key)
// on the ring — the owner first, then the replica set that follows
// it. Fewer than n nodes on the ring returns them all.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.search(hash64(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search returns the index of the first point with hash ≥ h,
// wrapping to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
