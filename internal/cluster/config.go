package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
)

// DefaultReplicas is the replication factor R: finished plans and
// snapshots are copied to this many ring successors of the owner, so
// re-runs survive a node loss and land warm on non-owner nodes.
const DefaultReplicas = 2

// Config is the static membership of a cluster, as resolved from the
// resoptd -cluster / -cluster-file / -node-id flags.
type Config struct {
	// Self is this node's ID; it must be a key of Nodes.
	Self string
	// Nodes maps node ID → base URL (e.g. "http://10.0.0.1:8080").
	Nodes map[string]string
	// VNodes is the virtual-node count per node (≤0: DefaultVNodes).
	VNodes int
	// Replicas is the replication factor R (≤0: DefaultReplicas).
	// It counts the owner: R=2 means owner + one successor.
	Replicas int
}

// ParseSpec parses the -cluster flag value: comma-separated
// "id=baseURL" pairs, e.g. "node1=http://a:8080,node2=http://b:8080".
func ParseSpec(spec string) (map[string]string, error) {
	nodes := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: bad member %q (want id=url)", part)
		}
		if _, dup := nodes[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		parsed, err := url.Parse(u)
		if err != nil || parsed.Scheme == "" || parsed.Host == "" {
			return nil, fmt.Errorf("cluster: node %s: bad url %q", id, u)
		}
		nodes[id] = strings.TrimRight(u, "/")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return nodes, nil
}

// LoadFile reads the -cluster-file JSON variant: an object mapping
// node ID → base URL.
func LoadFile(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var raw map[string]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	// Re-validate through the same path as the flag form.
	parts := make([]string, 0, len(raw))
	for id, u := range raw {
		parts = append(parts, id+"="+u)
	}
	sort.Strings(parts)
	return ParseSpec(strings.Join(parts, ","))
}

// Cluster is a node's view of the fleet: the ring, the membership,
// and the per-peer health tracker. Safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	health *Health
}

// New validates cfg and builds the node's cluster view.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: node id not set")
	}
	if _, ok := cfg.Nodes[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: node id %q is not a member", cfg.Self)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	ids := make([]string, 0, len(cfg.Nodes))
	peers := map[string]string{}
	for id, u := range cfg.Nodes {
		ids = append(ids, id)
		if id != cfg.Self {
			peers[id] = u
		}
	}
	return &Cluster{cfg: cfg, ring: NewRing(ids, cfg.VNodes), health: newHealth(peers)}, nil
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// Size returns the member count (self included).
func (c *Cluster) Size() int { return c.ring.Size() }

// Replicas returns the replication factor R (owner included).
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// URL returns the base URL of a member ("" for unknown IDs).
func (c *Cluster) URL(node string) string { return c.cfg.Nodes[node] }

// Owner returns the node owning key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Successors returns the owner and the following distinct nodes, n
// total — the key's replica set when n = Replicas().
func (c *Cluster) Successors(key string, n int) []string { return c.ring.Successors(key, n) }

// ReplicaSet returns the Replicas() ring successors of key, owner
// first.
func (c *Cluster) ReplicaSet(key string) []string {
	return c.ring.Successors(key, c.cfg.Replicas)
}

// Peers returns every member except self, sorted.
func (c *Cluster) Peers() []string {
	peers := make([]string, 0, len(c.cfg.Nodes)-1)
	for _, id := range c.ring.Nodes() {
		if id != c.cfg.Self {
			peers = append(peers, id)
		}
	}
	return peers
}

// IsPeer reports whether id names a member other than self — the
// check behind the intra-cluster rate-limit exemption.
func (c *Cluster) IsPeer(id string) bool {
	_, ok := c.cfg.Nodes[id]
	return ok && id != c.cfg.Self
}

// Health returns the peer health tracker.
func (c *Cluster) Health() *Health { return c.health }
