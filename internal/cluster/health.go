package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Probe checks one peer's liveness (internal/server wires this to
// GET {url}/healthz via the shared client). A nil error marks the
// peer up.
type Probe func(ctx context.Context, url string) error

// Backoff bounds for re-probing a down peer: the first retry comes
// after probeBackoffMin, doubling per consecutive failure up to
// probeBackoffMax.
const (
	probeBackoffMin = 500 * time.Millisecond
	probeBackoffMax = 30 * time.Second
)

// Health tracks per-peer liveness. Peers start up (optimistic: the
// first forward discovers a dead peer and marks it down); failures
// reported by the router or the prober mark a peer down with
// exponential backoff on re-probes, and a successful probe or
// forward marks it back up. Safe for concurrent use.
type Health struct {
	mu    sync.Mutex
	peers map[string]*peerHealth

	// now is the clock (tests substitute a fake).
	now func() time.Time
}

type peerHealth struct {
	url      string
	down     bool
	failures int       // consecutive, resets on success
	lastErr  string    // most recent failure ("" when up)
	since    time.Time // when the current up/down state began
	retryAt  time.Time // down only: earliest next probe
}

func newHealth(peers map[string]string) *Health {
	h := &Health{peers: map[string]*peerHealth{}, now: time.Now}
	for id, u := range peers {
		h.peers[id] = &peerHealth{url: u}
	}
	return h
}

// Up reports whether the peer is believed healthy. Unknown peers are
// down.
func (h *Health) Up(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[node]
	return ok && !p.down
}

// ReportSuccess marks the peer up and resets its backoff. Call it on
// any successful exchange with the peer, not only probes — live
// traffic is the cheapest health signal.
func (h *Health) ReportSuccess(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[node]; ok {
		if p.down || p.since.IsZero() {
			p.since = h.now()
		}
		p.down = false
		p.failures = 0
		p.lastErr = ""
	}
}

// ReportFailure marks the peer down and pushes its next probe out
// exponentially with consecutive failures.
func (h *Health) ReportFailure(node string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[node]
	if !ok {
		return
	}
	if !p.down {
		p.since = h.now()
	}
	p.down = true
	p.failures++
	if err != nil {
		p.lastErr = err.Error()
	}
	backoff := probeBackoffMin << (p.failures - 1)
	if backoff > probeBackoffMax || backoff <= 0 {
		backoff = probeBackoffMax
	}
	p.retryAt = h.now().Add(backoff)
}

// PeerStatus is one peer's health snapshot, for /v1/stats.
type PeerStatus struct {
	Node     string `json:"node"`
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
	// SinceMs is how long the peer has been in its current state.
	SinceMs int64 `json:"since_ms,omitempty"`
}

// Status snapshots every peer, sorted by node ID.
func (h *Health) Status() []PeerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerStatus, 0, len(h.peers))
	for id, p := range h.peers {
		st := PeerStatus{Node: id, URL: p.url, Up: !p.down, Failures: p.failures, LastErr: p.lastErr}
		if !p.since.IsZero() {
			st.SinceMs = h.now().Sub(p.since).Milliseconds()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ProbeAll runs one probe pass: every down peer whose backoff has
// elapsed is probed, plus every up peer when force is set (the
// periodic sweep checks everyone; the down-recovery path only what's
// due — backoff always gates down peers). It returns the number of
// peers probed. Probes run sequentially — fleets are small and
// probes cheap.
func (h *Health) ProbeAll(ctx context.Context, probe Probe, force bool) int {
	type target struct{ id, url string }
	h.mu.Lock()
	now := h.now()
	var due []target
	for id, p := range h.peers {
		if (force && !p.down) || (p.down && !now.Before(p.retryAt)) {
			due = append(due, target{id, p.url})
		}
	}
	h.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].id < due[j].id })
	for _, t := range due {
		if ctx.Err() != nil {
			break
		}
		if err := probe(ctx, t.url); err != nil {
			h.ReportFailure(t.id, err)
		} else {
			h.ReportSuccess(t.id)
		}
	}
	return len(due)
}

// Run probes the fleet every interval until ctx is cancelled: a full
// sweep per tick, which both discovers dead peers before traffic
// does and recovers marked-down peers whose backoff has elapsed.
func (h *Health) Run(ctx context.Context, probe Probe, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.ProbeAll(ctx, probe, true)
		}
	}
}
